package couchgo

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// newPublicCluster spins up an n-node everything-everywhere cluster
// through the public API only.
func newPublicCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterOptions{Dir: t.TempDir(), NumVBuckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < nodes; i++ {
		if err := c.AddNode(fmt.Sprintf("node%d", i), AllServices); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateBucket("default", BucketOptions{NumReplicas: min(nodes-1, 1)}); err != nil {
		t.Fatal(err)
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPublicKVRoundTrip(t *testing.T) {
	c := newPublicCluster(t, 2)
	b, err := c.Bucket("default")
	if err != nil {
		t.Fatal(err)
	}
	type profile struct {
		Name  string `json:"name"`
		Email string `json:"email"`
	}
	cas, err := b.Upsert("user::1", profile{Name: "Dipti", Email: "dipti@couchbase.com"})
	if err != nil || cas == 0 {
		t.Fatal(err)
	}
	doc, err := b.Get("user::1")
	if err != nil {
		t.Fatal(err)
	}
	var p profile
	if err := doc.Decode(&p); err != nil || p.Name != "Dipti" {
		t.Fatalf("decode: %+v %v", p, err)
	}
	// Insert conflicts; Replace works; Remove removes.
	if _, err := b.Insert("user::1", p); err != ErrKeyExists {
		t.Errorf("insert existing: %v", err)
	}
	if _, err := b.Replace("user::1", profile{Name: "D2"}, doc.CAS); err != nil {
		t.Errorf("replace with cas: %v", err)
	}
	if _, err := b.Replace("user::1", profile{Name: "D3"}, doc.CAS); err != ErrCASMismatch {
		t.Errorf("stale cas: %v", err)
	}
	if err := b.Remove("user::1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("user::1"); err != ErrKeyNotFound {
		t.Errorf("after remove: %v", err)
	}
}

func TestPublicDurability(t *testing.T) {
	c := newPublicCluster(t, 2)
	b, _ := c.Bucket("default")
	if _, err := b.Write("k", map[string]any{"v": 1}, WriteOptions{
		Durability: DurabilityOptions{ReplicateTo: 1, PersistTo: true, Timeout: 10 * time.Second},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicN1QL(t *testing.T) {
	c := newPublicCluster(t, 2)
	b, _ := c.Bucket("default")
	for i := 0; i < 10; i++ {
		b.Upsert(fmt.Sprintf("p%02d", i), map[string]any{"name": fmt.Sprintf("u%02d", i), "age": 20 + i})
	}
	if _, err := c.Query("CREATE PRIMARY INDEX ON `default`"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("CREATE INDEX byAge ON `default`(age)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.QueryWithOptions(
		"SELECT name FROM `default` WHERE age >= $min ORDER BY age",
		QueryOptions{Args: map[string]any{"min": 25.0}, Consistency: RequestPlus})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	// DML.
	res, err = c.QueryWithOptions("DELETE FROM `default` WHERE age > 27", QueryOptions{Consistency: RequestPlus})
	if err != nil {
		t.Fatal(err)
	}
	if res.MutationCount != 2 {
		t.Fatalf("deleted %d", res.MutationCount)
	}
}

func TestPublicViews(t *testing.T) {
	c := newPublicCluster(t, 2)
	b, _ := c.Bucket("default")
	if err := b.DefineView("byCity", ViewDefinition{
		Filter: "doc.city IS NOT MISSING",
		Key:    "doc.city",
		Value:  "doc.name",
		Reduce: "_count",
	}); err != nil {
		t.Fatal(err)
	}
	b.Upsert("a", map[string]any{"city": "SF", "name": "A"})
	b.Upsert("b", map[string]any{"city": "NY", "name": "B"})
	b.Upsert("c", map[string]any{"city": "SF", "name": "C"})
	rows, err := b.ViewQuery("byCity", ViewQueryOptions{Stale: StaleFalse, Key: "SF", HasKey: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	rows, _ = b.ViewQuery("byCity", ViewQueryOptions{Stale: StaleFalse, Reduce: true})
	if rows[0].Value != 3.0 {
		t.Fatalf("reduce: %+v", rows)
	}
	if err := b.DropView("byCity"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSearch(t *testing.T) {
	c := newPublicCluster(t, 1)
	b, _ := c.Bucket("default")
	if err := b.CreateSearchIndex("content", "title"); err != nil {
		t.Fatal(err)
	}
	b.Upsert("d1", map[string]any{"title": "distributed database systems"})
	b.Upsert("d2", map[string]any{"title": "cache invalidation"})
	hits, err := b.Search("content", SearchTerm, "database", 10, true)
	if err != nil || len(hits) != 1 || hits[0].ID != "d1" {
		t.Fatalf("hits: %+v %v", hits, err)
	}
	hits, _ = b.Search("content", SearchPrefix, "cach", 10, true)
	if len(hits) != 1 || hits[0].ID != "d2" {
		t.Fatalf("prefix hits: %+v", hits)
	}
	hits, _ = b.Search("content", SearchPhrase, "database systems", 10, true)
	if len(hits) != 1 {
		t.Fatalf("phrase hits: %+v", hits)
	}
	if err := b.DropSearchIndex("content"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicXDCR(t *testing.T) {
	west := newPublicCluster(t, 1)
	east := newPublicCluster(t, 2)
	rep, err := west.ReplicateTo(east, "default", "default", XDCROptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	wb, _ := west.Bucket("default")
	eb, _ := east.Bucket("default")
	wb.Upsert("traveler", map[string]any{"from": "west"})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := eb.Get("traveler"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replication timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := rep.Stats(); st.Applied == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestPublicTopologyOps(t *testing.T) {
	c := newPublicCluster(t, 3)
	b, _ := c.Bucket("default")
	for i := 0; i < 30; i++ {
		if _, err := b.Write(fmt.Sprintf("k%02d", i), map[string]any{"i": i}, WriteOptions{
			Durability: DurabilityOptions{ReplicateTo: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Orchestrator() != "node0" {
		t.Errorf("orchestrator: %s", c.Orchestrator())
	}
	c.Kill("node2")
	if err := c.Failover("node2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := b.Get(fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatalf("get after failover+rebalance: %v", err)
		}
	}
}

func TestPublicLocks(t *testing.T) {
	c := newPublicCluster(t, 1)
	b, _ := c.Bucket("default")
	b.Upsert("doc", map[string]any{"v": 1})
	locked, err := b.GetAndLock("doc", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Upsert("doc", map[string]any{"v": 2}); err != ErrLocked {
		t.Errorf("write while locked: %v", err)
	}
	if err := b.Unlock("doc", locked.CAS); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Upsert("doc", map[string]any{"v": 2}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicExpiry(t *testing.T) {
	c := newPublicCluster(t, 1)
	b, _ := c.Bucket("default")
	if _, err := b.Write("ephemeral", map[string]any{"v": 1}, WriteOptions{
		Expiry: time.Now().Unix() - 1, // already expired
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("ephemeral"); err != ErrKeyNotFound {
		t.Errorf("expired doc: %v", err)
	}
}

func TestPublicAnalytics(t *testing.T) {
	c := newPublicCluster(t, 2)
	b, _ := c.Bucket("default")
	for i := 0; i < 3; i++ {
		b.Upsert(fmt.Sprintf("dept::%d", i), map[string]any{"type": "dept", "did": i, "name": fmt.Sprintf("D%d", i)})
	}
	for i := 0; i < 9; i++ {
		b.Upsert(fmt.Sprintf("emp::%d", i), map[string]any{"type": "emp", "dept": i % 3, "salary": (i + 1) * 100})
	}
	if err := c.EnableAnalytics("default"); err != nil {
		t.Fatal(err)
	}
	// The general join that the operational query service rejects.
	if _, err := c.Query("SELECT * FROM `default` e JOIN `default` d ON e.dept = d.did"); err == nil {
		t.Fatal("query service should reject general joins")
	}
	rows, err := c.AnalyticsQuery("default", `
		SELECT d.name, SUM(e.salary) AS payroll
		FROM `+"`default`"+` e JOIN `+"`default`"+` d ON e.dept = d.did
		WHERE e.type = "emp" AND d.type = "dept"
		GROUP BY d.name ORDER BY d.name`,
		AnalyticsOptions{Consistent: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	total := 0.0
	for _, r := range rows {
		total += r.(map[string]any)["payroll"].(float64)
	}
	if total != 4500.0 {
		t.Fatalf("payroll total: %v", total)
	}
}

func TestPublicSubdocAPI(t *testing.T) {
	c := newPublicCluster(t, 2)
	b, _ := c.Bucket("default")
	b.Upsert("profile", map[string]any{"name": "A", "logins": 0, "tags": []any{"new"}})
	// Path-level lookup without fetching the document.
	v, err := b.LookupIn("profile", "name")
	if err != nil || v != "A" {
		t.Fatalf("lookup: %v %v", v, err)
	}
	// Atomic counter.
	for i := 0; i < 5; i++ {
		if _, err := b.Increment("profile", "logins", 1); err != nil {
			t.Fatal(err)
		}
	}
	n, _ := b.LookupIn("profile", "logins")
	if n != 5.0 {
		t.Fatalf("counter: %v", n)
	}
	// Deep mutate-in creates structure.
	if _, err := b.MutateIn("profile", "prefs.theme", "dark", 0); err != nil {
		t.Fatal(err)
	}
	v, _ = b.LookupIn("profile", "prefs.theme")
	if v != "dark" {
		t.Fatalf("mutate-in: %v", v)
	}
	// Array append + remove.
	if _, err := b.ArrayAppendIn("profile", "tags", "vip", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RemoveIn("profile", "prefs.theme", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.LookupIn("profile", "prefs.theme"); err == nil {
		t.Fatal("removed path still present")
	}
	// Sub-document mutations are real mutations: indexes see them.
	if _, err := c.Query("CREATE INDEX byLogins ON `default`(logins)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.QueryWithOptions("SELECT logins FROM `default` WHERE logins = 5",
		QueryOptions{Consistency: RequestPlus})
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("index after subdoc: %v %v", res, err)
	}
}

func TestPublicTouchAndAppend(t *testing.T) {
	c := newPublicCluster(t, 1)
	b, _ := c.Bucket("default")
	b.Upsert("doc", map[string]any{"v": 1})
	if err := b.Touch("doc", time.Now().Unix()+3600); err != nil {
		t.Fatal(err)
	}
	d, _ := b.Get("doc")
	if d.Expiry == 0 {
		t.Fatal("touch did not set expiry")
	}
	// Raw byte append via the internal client surface.
	cl := c.Internal()
	bcl, _ := cl.OpenBucket("default")
	bcl.Set(context.Background(), "log", []byte("a"), 0)
	bcl.Append(context.Background(), "log", []byte("b"), 0)
	bcl.Prepend(context.Background(), "log", []byte("-"), 0)
	it, _ := bcl.Get(context.Background(), "log")
	if string(it.Value) != "-ab" {
		t.Fatalf("concat: %q", it.Value)
	}
}

func TestPublicDurabilityTimeoutError(t *testing.T) {
	// A single-node bucket can never satisfy ReplicateTo(1): the wait
	// must surface as the public ErrTimeout.
	c := newPublicCluster(t, 1)
	b, _ := c.Bucket("default")
	_, err := b.Write("k", map[string]any{"v": 1}, WriteOptions{
		Durability: DurabilityOptions{ReplicateTo: 1, Timeout: 50 * time.Millisecond},
	})
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}
