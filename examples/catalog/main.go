// Product-catalog / SKU management: the paper's second motivating
// workload ("applications such as catalog and SKU management systems
// need the ability to change and update information on the fly", §1).
//
// Demonstrates the query-side features on one bucket holding two
// document types (unnormalized, schema-flexible):
//
//   - USE KEYS key-value-speed lookups from N1QL (§3.2.3)
//   - the paper's NEST example: orders nested into a profile
//   - the paper's UNNEST example: distinct categories in use
//   - a selective (partial) index (§3.3.4)
//   - an array index accelerating ANY ... SATISFIES (§6.1.2)
//   - a covering index (§5.1.2) shown via EXPLAIN
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"couchgo"
)

func main() {
	cluster, err := couchgo.NewCluster(couchgo.ClusterOptions{NumVBuckets: 64})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	must(cluster.AddNode("node0", couchgo.AllServices))
	must(cluster.AddNode("node1", couchgo.AllServices))
	must(cluster.CreateBucket("catalog", couchgo.BucketOptions{}))
	bucket, err := cluster.Bucket("catalog")
	must(err)

	// Two document types in one bucket, as in the paper's
	// profiles_orders example.
	must2(bucket.Upsert("borkar123", map[string]any{
		"doc_type":         "user_profile",
		"personal_details": map[string]any{"name": "Dipti Borkar"},
		"shipped_order_history": []any{
			map[string]any{"order_id": "order::1001"},
			map[string]any{"order_id": "order::1002"},
		},
	}))
	must2(bucket.Upsert("order::1001", map[string]any{
		"doc_type": "order", "total": 129.99,
		"items": []any{map[string]any{"sku": "couch-1", "qty": 1}},
	}))
	must2(bucket.Upsert("order::1002", map[string]any{
		"doc_type": "order", "total": 24.50,
		"items": []any{map[string]any{"sku": "base-2", "qty": 3}},
	}))
	products := []struct {
		key        string
		name       string
		price      float64
		categories []any
	}{
		{"product::couch-1", "Memory-First Couch", 899, []any{"furniture", "living-room"}},
		{"product::base-2", "Data Base", 49, []any{"furniture", "office"}},
		{"product::lamp-3", "Query Lamp", 25, []any{"lighting", "office"}},
	}
	for _, p := range products {
		must2(bucket.Upsert(p.key, map[string]any{
			"doc_type": "product", "name": p.name, "price": p.price, "categories": p.categories,
		}))
	}
	must2(cluster.Query("CREATE PRIMARY INDEX ON catalog"))

	// 1. USE KEYS: key-value retrieval performance from the query path.
	res := query(cluster, `SELECT personal_details FROM catalog USE KEYS "borkar123"`)
	fmt.Printf("USE KEYS:         %s\n", jsonOf(res.Rows[0]))

	// 2. The paper's NEST example (§3.2.3): a profile with its orders
	// embedded as an array.
	res = query(cluster, `
		SELECT PO.personal_details, orders
		FROM catalog PO
		USE KEYS 'borkar123'
		NEST catalog AS orders
		ON KEYS ARRAY s.order_id FOR s IN PO.shipped_order_history END`)
	fmt.Printf("NEST result:      %s\n", jsonOf(res.Rows[0]))

	// 3. The paper's UNNEST example: distinct categories in use.
	res = query(cluster, `
		SELECT DISTINCT (categories) FROM catalog
		UNNEST catalog.categories AS categories
		ORDER BY categories`)
	fmt.Print("UNNEST:           categories in use:")
	for _, r := range res.Rows {
		fmt.Printf(" %v", r.(map[string]any)["categories"])
	}
	fmt.Println()

	// 4. Selective index (§3.3.4): only premium products are indexed.
	must2(cluster.Query(`CREATE INDEX premium ON catalog(price) WHERE price > 100`))
	res = query(cluster, `SELECT name, price FROM catalog WHERE price > 100 ORDER BY price`)
	fmt.Printf("Partial index:    %d premium product(s): %s\n", len(res.Rows), jsonOf(res.Rows))

	// 5. Array index (§6.1.2) accelerating an ANY predicate.
	must2(cluster.Query(`CREATE INDEX byCategory ON catalog(ARRAY c FOR c IN categories END)`))
	res = query(cluster, `
		SELECT name FROM catalog
		WHERE ANY c IN categories SATISFIES c = "office" END
		ORDER BY name`)
	fmt.Printf("Array index:      office products: %s\n", jsonOf(res.Rows))
	explain := query(cluster, `EXPLAIN SELECT name FROM catalog WHERE ANY c IN categories SATISFIES c = "office" END`)
	fmt.Printf("  plan uses:      %v\n", firstOp(explain)["index"])

	// 6. Covering index (§5.1.2): the query is answered from the index
	// alone — EXPLAIN shows no Fetch operator.
	must2(cluster.Query(`CREATE INDEX names ON catalog(name)`))
	explain = query(cluster, `EXPLAIN SELECT name FROM catalog WHERE name > "A"`)
	fmt.Printf("Covering index:   covering=%v (no Fetch in plan)\n", firstOp(explain)["covering"])
}

func query(c *couchgo.Cluster, stmt string) *couchgo.QueryResult {
	res, err := c.QueryWithOptions(stmt, couchgo.QueryOptions{Consistency: couchgo.RequestPlus})
	if err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
	return res
}

func firstOp(res *couchgo.QueryResult) map[string]any {
	plan := res.Rows[0].(map[string]any)
	return plan["operators"].([]any)[0].(map[string]any)
}

func jsonOf(v any) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must2[T any](_ T, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
