// Quickstart: a single-process cluster exercising every access path
// the paper describes — key-value, view, and N1QL — plus full-text
// search, in under a hundred lines.
package main

import (
	"fmt"
	"log"

	"couchgo"
)

func main() {
	// A 2-node cluster with every service on every node, like the
	// paper's appendix deployment. 64 vBuckets keep the demo snappy;
	// production uses the default 1024.
	cluster, err := couchgo.NewCluster(couchgo.ClusterOptions{NumVBuckets: 64})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	must(cluster.AddNode("node0", couchgo.AllServices))
	must(cluster.AddNode("node1", couchgo.AllServices))
	must(cluster.CreateBucket("default", couchgo.BucketOptions{NumReplicas: 1}))

	bucket, err := cluster.Bucket("default")
	if err != nil {
		log.Fatal(err)
	}

	// --- Access path 1: key-value (§3.1.1) ---
	_, err = bucket.Upsert("borkar123", map[string]any{
		"name":  "Dipti Borkar",
		"email": "dipti@couchbase.com",
		"role":  "author",
	})
	must(err)
	doc, err := bucket.Get("borkar123")
	must(err)
	fmt.Printf("KV get:      %s (cas %d)\n", doc.Content, doc.CAS)

	// --- Access path 2: view query (§3.1.2) ---
	must(bucket.DefineView("profile", couchgo.ViewDefinition{
		Filter: "doc.name IS NOT MISSING",
		Key:    "doc.name",
		Value:  "doc.email",
	}))
	rows, err := bucket.ViewQuery("profile", couchgo.ViewQueryOptions{
		Stale: couchgo.StaleFalse, // wait for the indexer: fresh results
	})
	must(err)
	for _, r := range rows {
		fmt.Printf("View row:    %v -> %v (doc %s)\n", r.Key, r.Value, r.ID)
	}

	// --- Access path 3: N1QL (§3.1.3) ---
	_, err = cluster.Query("CREATE PRIMARY INDEX ON `default`")
	must(err)
	res, err := cluster.QueryWithOptions(
		`SELECT name, email FROM `+"`default`"+` WHERE role = "author"`,
		couchgo.QueryOptions{Consistency: couchgo.RequestPlus},
	)
	must(err)
	for _, row := range res.Rows {
		fmt.Printf("N1QL row:    %v\n", row)
	}

	// --- Bonus: full-text search (§6.1.3) ---
	must(bucket.CreateSearchIndex("people", "name"))
	hits, err := bucket.Search("people", couchgo.SearchTerm, "dipti", 10, true)
	must(err)
	for _, h := range hits {
		fmt.Printf("FTS hit:     %s (score %d)\n", h.ID, h.Score)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
