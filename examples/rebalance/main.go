// Elastic scaling and high availability (§4.1.1, §4.3.1): scale a
// cluster out with rebalance under live traffic, crash a node, and
// watch automatic failover (orchestrator re-election included) keep
// every document readable.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"couchgo"
)

func main() {
	cluster, err := couchgo.NewCluster(couchgo.ClusterOptions{
		NumVBuckets:     64,
		FailoverTimeout: 300 * time.Millisecond, // auto-failover
	})
	must(err)
	defer cluster.Close()
	must(cluster.AddNode("node0", couchgo.AllServices))
	must(cluster.AddNode("node1", couchgo.AllServices))
	must(cluster.CreateBucket("default", couchgo.BucketOptions{NumReplicas: 1}))
	bucket, err := cluster.Bucket("default")
	must(err)

	// Load data with replication durability (so a node crash cannot
	// lose acknowledged writes).
	const docs = 500
	for i := 0; i < docs; i++ {
		_, err := bucket.Write(fmt.Sprintf("doc::%04d", i), map[string]any{"i": i},
			couchgo.WriteOptions{Durability: couchgo.DurabilityOptions{ReplicateTo: 1}})
		must(err)
	}
	fmt.Printf("loaded %d documents on 2 nodes; orchestrator=%s\n", docs, cluster.Orchestrator())

	// Keep a client hammering reads while topology changes happen.
	var reads, readErrors atomic.Int64
	stop := make(chan struct{})
	go func() {
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := bucket.Get(fmt.Sprintf("doc::%04d", i%docs)); err != nil {
				readErrors.Add(1)
			}
			reads.Add(1)
			i++
		}
	}()

	// Scale out: add a third node and rebalance.
	must(cluster.AddNode("node2", couchgo.AllServices))
	start := time.Now()
	must(cluster.Rebalance())
	fmt.Printf("rebalanced onto 3 nodes in %v (reads so far: %d, errors: %d)\n",
		time.Since(start).Round(time.Millisecond), reads.Load(), readErrors.Load())

	// Crash the orchestrator. The heartbeat detector fails it over and
	// the next node takes over as orchestrator.
	must(cluster.Kill("node0"))
	deadline := time.Now().Add(10 * time.Second)
	for cluster.Orchestrator() != "node1" {
		if time.Now().After(deadline) {
			log.Fatal("orchestrator never changed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Wait for automatic failover to restore full availability.
	for {
		ok := true
		for i := 0; i < docs; i += 97 {
			if _, err := bucket.Get(fmt.Sprintf("doc::%04d", i)); err != nil {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("auto-failover did not restore availability")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("node0 crashed; auto-failover promoted replicas; orchestrator=%s\n", cluster.Orchestrator())

	// Rebalance the survivors and verify every document.
	must(cluster.Rebalance())
	close(stop)
	missing := 0
	for i := 0; i < docs; i++ {
		if _, err := bucket.Get(fmt.Sprintf("doc::%04d", i)); err != nil {
			missing++
		}
	}
	fmt.Printf("after failover + rebalance: %d/%d documents readable (total reads during chaos: %d)\n",
		docs-missing, docs, reads.Load())
	if missing > 0 {
		log.Fatalf("%d documents lost", missing)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
