// Operational analytics (§6.2): the paper's medium-term plan,
// implemented. A DCP-fed shadow dataset executes rich analytical
// queries — including the general joins N1QL forbids — with complete
// performance isolation from the front-end OLTP workload.
package main

import (
	"fmt"
	"log"

	"couchgo"
)

func main() {
	cluster, err := couchgo.NewCluster(couchgo.ClusterOptions{NumVBuckets: 64})
	must(err)
	defer cluster.Close()
	// MDS topology: OLTP nodes vs a dedicated analytics node.
	must(cluster.AddNode("oltp0", couchgo.DataService|couchgo.QueryService|couchgo.IndexService))
	must(cluster.AddNode("oltp1", couchgo.DataService|couchgo.QueryService|couchgo.IndexService))
	must(cluster.AddNode("analytics0", couchgo.AnalyticsService))
	must(cluster.CreateBucket("commerce", couchgo.BucketOptions{}))
	bucket, err := cluster.Bucket("commerce")
	must(err)

	// The operational workload: customers and orders in one bucket.
	regions := []string{"west", "east", "emea"}
	for i := 0; i < 9; i++ {
		_, err := bucket.Upsert(fmt.Sprintf("customer::%d", i), map[string]any{
			"type": "customer", "cid": i, "region": regions[i%3],
		})
		must(err)
	}
	for i := 0; i < 60; i++ {
		_, err := bucket.Upsert(fmt.Sprintf("order::%d", i), map[string]any{
			"type": "order", "customer": i % 9, "total": (i%7 + 1) * 25,
		})
		must(err)
	}

	// The general join is rejected on the operational path (§3.2.4)...
	_, err = cluster.Query(`SELECT * FROM commerce o JOIN commerce c ON o.customer = c.cid`)
	fmt.Printf("N1QL query service says: %v\n\n", err)

	// ...but the analytics service runs it, over its DCP-fed shadow.
	must(cluster.EnableAnalytics("commerce"))
	rows, err := cluster.AnalyticsQuery("commerce", `
		SELECT c.region, COUNT(*) AS orders, SUM(o.total) AS revenue, AVG(o.total) AS avg_order
		FROM commerce o
		JOIN commerce c ON o.customer = c.cid
		WHERE o.type = "order" AND c.type = "customer"
		GROUP BY c.region
		ORDER BY c.region`,
		couchgo.AnalyticsOptions{Consistent: true})
	must(err)
	fmt.Println("revenue by region (general hash join + grouping on the analytics shadow):")
	for _, r := range rows {
		m := r.(map[string]any)
		fmt.Printf("  %-5v orders=%-3v revenue=%-6v avg=%.1f\n",
			m["region"], m["orders"], m["revenue"], m["avg_order"])
	}

	// Insight feeds back "almost instantly": a fresh write is visible
	// to a consistent analytics query right away.
	_, err = bucket.Upsert("order::new", map[string]any{"type": "order", "customer": 0, "total": 10000})
	must(err)
	rows, err = cluster.AnalyticsQuery("commerce",
		`SELECT SUM(o.total) AS total FROM commerce o WHERE o.type = "order"`,
		couchgo.AnalyticsOptions{Consistent: true})
	must(err)
	fmt.Printf("\ntotal revenue including the just-written order: %v\n", rows[0].(map[string]any)["total"])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
