// User-profile store: the paper's canonical low-latency OLTP workload
// ("1-3 milliseconds being a common latency expectation for
// applications like user profile stores", §1).
//
// Demonstrates the concurrency and durability toolbox of §3.1.1/§2.3.2:
//
//   - CAS optimistic locking with the read-modify-retry loop
//   - per-mutation durability (ReplicateTo / PersistTo)
//   - hard locks (GetAndLock / Unlock)
//   - TTL-based session documents
//   - measured latency of the memory-first write path
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"couchgo"
)

type Profile struct {
	Name       string `json:"name"`
	Email      string `json:"email"`
	LoginCount int    `json:"login_count"`
}

func main() {
	cluster, err := couchgo.NewCluster(couchgo.ClusterOptions{NumVBuckets: 64})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	for i := 0; i < 3; i++ {
		must(cluster.AddNode(fmt.Sprintf("node%d", i), couchgo.AllServices))
	}
	must(cluster.CreateBucket("profiles", couchgo.BucketOptions{NumReplicas: 1}))
	bucket, err := cluster.Bucket("profiles")
	if err != nil {
		log.Fatal(err)
	}

	// Create a profile with replication durability: the write is
	// acknowledged only after one replica holds it in memory.
	_, err = bucket.Write("user::alice", Profile{Name: "Alice", Email: "alice@example.com"},
		couchgo.WriteOptions{Durability: couchgo.DurabilityOptions{ReplicateTo: 1}})
	must(err)
	fmt.Println("created user::alice (replicated to 1)")

	// CAS retry loop: two "application servers" bump the login counter
	// concurrently; optimistic locking resolves the race.
	done := make(chan bool)
	bump := func(who string) {
		for {
			doc, err := bucket.Get("user::alice")
			must(err)
			var p Profile
			must(doc.Decode(&p))
			p.LoginCount++
			_, err = bucket.Write("user::alice", p, couchgo.WriteOptions{CAS: doc.CAS})
			if err == couchgo.ErrCASMismatch {
				continue // someone else won; re-read and retry
			}
			must(err)
			fmt.Printf("%s bumped login_count to %d\n", who, p.LoginCount)
			done <- true
			return
		}
	}
	go bump("app-server-1")
	go bump("app-server-2")
	<-done
	<-done

	// Hard lock for a critical update (the stricter option of §3.1.1).
	locked, err := bucket.GetAndLock("user::alice", 15)
	must(err)
	if _, err := bucket.Upsert("user::alice", Profile{}); err != couchgo.ErrLocked {
		log.Fatalf("expected ErrLocked, got %v", err)
	}
	fmt.Println("concurrent write rejected while hard-locked")
	var p Profile
	json.Unmarshal(locked.Content, &p)
	p.Email = "alice@newdomain.example"
	_, err = bucket.Write("user::alice", p, couchgo.WriteOptions{CAS: locked.CAS})
	must(err)
	fmt.Println("locked update applied (lock released by CAS write)")

	// Session document with a TTL.
	_, err = bucket.Write("session::alice", map[string]any{"token": "xyz"},
		couchgo.WriteOptions{Expiry: time.Now().Unix() + 1})
	must(err)
	if _, err := bucket.Get("session::alice"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("session created with 1s TTL")
	time.Sleep(1100 * time.Millisecond)
	if _, err := bucket.Get("session::alice"); err == couchgo.ErrKeyNotFound {
		fmt.Println("session expired")
	}

	// The memory-first latency claim: time a batch of gets.
	start := time.Now()
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := bucket.Get("user::alice"); err != nil {
			log.Fatal(err)
		}
	}
	per := time.Since(start) / n
	fmt.Printf("read latency: %v per KV get (memory-first, paper expects ~1-3ms on a real network)\n", per)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
