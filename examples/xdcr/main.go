// Cross-datacenter replication (§4.6): two clusters with different
// topologies, bidirectional XDCR, filtered replication, and the
// deterministic conflict resolution of §4.6.1.
package main

import (
	"fmt"
	"log"
	"time"

	"couchgo"
)

func main() {
	// Two "datacenters" with different node counts — XDCR is cluster
	// topology aware.
	west := newDC("west", 2)
	defer west.Close()
	east := newDC("east", 3)
	defer east.Close()

	wb, _ := west.Bucket("default")
	eb, _ := east.Bucket("default")

	// Bidirectional replication, filtering only user documents.
	w2e, err := west.ReplicateTo(east, "default", "default", couchgo.XDCROptions{FilterExpr: "^user::"})
	must(err)
	defer w2e.Stop()
	e2w, err := east.ReplicateTo(west, "default", "default", couchgo.XDCROptions{FilterExpr: "^user::"})
	must(err)
	defer e2w.Stop()

	// West writes a user and a session; only the user replicates.
	must2(wb.Upsert("user::1", map[string]any{"home": "west"}))
	must2(wb.Upsert("session::1", map[string]any{"token": "local-only"}))
	waitFor(func() bool { _, err := eb.Get("user::1"); return err == nil })
	fmt.Println("user::1 replicated west -> east")
	if _, err := eb.Get("session::1"); err == couchgo.ErrKeyNotFound {
		fmt.Println("session::1 filtered out (doc-ID regex)")
	}

	// Concurrent conflicting updates: west updates twice, east once.
	// "The document with the most updates is considered the winner."
	for i := 0; i < 2; i++ {
		must2(wb.Upsert("user::2", map[string]any{"winner": "west", "rev": i + 1}))
	}
	must2(eb.Upsert("user::2", map[string]any{"winner": "east", "rev": 1}))
	waitFor(func() bool {
		w, err1 := wb.Get("user::2")
		e, err2 := eb.Get("user::2")
		return err1 == nil && err2 == nil && string(w.Content) == string(e.Content)
	})
	final, _ := wb.Get("user::2")
	fmt.Printf("conflict resolved identically on both sides: %s\n", final.Content)

	st := w2e.Stats()
	fmt.Printf("west->east stats: sent=%d applied=%d rejected=%d filtered=%d\n",
		st.Sent, st.Applied, st.Rejected, st.Filtered)
}

func newDC(name string, nodes int) *couchgo.Cluster {
	c, err := couchgo.NewCluster(couchgo.ClusterOptions{NumVBuckets: 32})
	must(err)
	for i := 0; i < nodes; i++ {
		must(c.AddNode(fmt.Sprintf("%s-n%d", name, i), couchgo.AllServices))
	}
	must(c.CreateBucket("default", couchgo.BucketOptions{}))
	return c
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timeout waiting for replication")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must2[T any](_ T, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
