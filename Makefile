# Tier-1 gate plus the repo-specific static analyzer, formatting,
# full-tree race detection, and fuzz smoke runs.

.PHONY: verify build test race vet fmtcheck couchvet fuzz-smoke bench-smoke cluster-test trace-demo health-demo

verify: fmtcheck vet build test couchvet race

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

fmtcheck:
	@out=$$(gofmt -l cmd internal); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# couchvet runs all eight rules plus the unused-pragma audit; vetfmt
# turns the JSON findings into GitHub Actions ::error annotations and
# is the pipe's exit status, so an empty stream (couchvet crashed)
# fails the gate instead of passing silently.
couchvet:
	go run ./cmd/couchvet -json ./... | go run ./cmd/vetfmt

race:
	go test -race ./...

# End-to-end tracing demo: a small YCSB run with 1-in-8 sampling,
# printing the slowest cross-layer trace per phase (DESIGN.md §7).
trace-demo:
	go run ./cmd/ycsb -workload a -records 2000 -ops 4000 -threads 8 -nodes 2 -vbuckets 32 -trace 8

# Health engine demo: inject a feed stall behind a live REST facade
# and watch GET /health walk ok -> warn -> critical -> ok with the
# journal's health events printed at the end (DESIGN.md §8).
health-demo:
	go run ./cmd/healthdemo

# Process-level cluster tests: build the real cbserver binary (with
# -race, as are the tests), launch three OS processes speaking the
# binary KV wire protocol, then (a) kill -9 one and assert
# auto-failover with no acknowledged write lost, and (b) push a
# ReplicateTo=1 write through one node and fetch its distributed
# trace — stitched across all three processes — from another node.
# Behind a build tag so tier-1 `make test` stays fast.
cluster-test:
	go test -tags clustertest -race -count=1 -timeout 10m -v ./integration

# Each fuzz target gets a short bounded run; any crasher fails the
# target. Lengthen with FUZZTIME=1m etc. for local soak runs.
FUZZTIME ?= 10s

# Hot-path microbenchmarks with allocation reporting. Not a perf gate
# (CI machines are too noisy for ns/op thresholds) — the allocs/op
# column is the thing to watch, and the hard allocation limits live in
# the TestXxxZeroAlloc / TestXxxAllocBudget gates run by `make test`.
bench-smoke:
	go test -run='^$$' -bench='BenchmarkGetResident|BenchmarkSetOverwrite|BenchmarkGetParallel' -benchmem -benchtime=1000x ./internal/cache
	go test -run='^$$' -bench='BenchmarkFrameAppend' -benchmem -benchtime=1000x ./internal/memcproto
	go test -run='^$$' -bench='BenchmarkSetPublish' -benchmem -benchtime=1000x ./internal/vbucket

fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzCollate -fuzztime=$(FUZZTIME) ./internal/value
	go test -run='^$$' -fuzz=FuzzPathParse -fuzztime=$(FUZZTIME) ./internal/value
	go test -run='^$$' -fuzz=FuzzRecordDecode -fuzztime=$(FUZZTIME) ./internal/storage
	go test -run='^$$' -fuzz=FuzzFrameDecode -fuzztime=$(FUZZTIME) ./internal/memcproto
	go test -run='^$$' -fuzz=FuzzTraceContext -fuzztime=$(FUZZTIME) ./internal/memcproto
