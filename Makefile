# Tier-1 gate plus the race-sensitive instrumented packages.

.PHONY: verify build test race vet

verify: vet build test race

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/metrics ./internal/rest ./internal/dcp ./internal/feed ./internal/core
