// Benchmarks reproducing every table/figure in the paper's evaluation
// (Appendix §10: Figures 15 and 16) plus the body's quantitative
// claims as ablations. See DESIGN.md §2 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Run: go test -bench=. -benchmem
package couchgo

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/executor"
	"couchgo/internal/gsi"
	"couchgo/internal/storage"
	"couchgo/internal/vbucket"
	"couchgo/internal/views"
	"couchgo/internal/ycsb"
)

// benchCluster builds the appendix deployment: 4 nodes, all services
// everywhere. 64 vBuckets keep setup fast; the partition count does
// not change the code paths exercised.
func benchCluster(b *testing.B, cfg core.Config, replicas int) *core.Cluster {
	b.Helper()
	if cfg.Dir == "" {
		cfg.Dir = b.TempDir()
	}
	if cfg.NumVBuckets == 0 {
		cfg.NumVBuckets = 64
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	for i := 0; i < 4; i++ {
		if _, err := c.AddNode(cmap.NodeID(fmt.Sprintf("node%d", i)), cmap.AllServices); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.CreateBucket("bench", core.BucketOptions{NumReplicas: replicas}); err != nil {
		b.Fatal(err)
	}
	return c
}

// --- Figure 15: YCSB workload A throughput vs client threads ---
//
// Paper: 4-node cluster, 10M docs, 4 clients × 12..32 threads;
// ~178K ops/sec at 128 threads. Scaled here to an in-process cluster
// and 5K records (shape target: throughput per thread count).

func BenchmarkFigure15WorkloadA(b *testing.B) {
	const records = 5000
	c := benchCluster(b, core.Config{}, 0)
	db, err := ycsb.NewCouchDB(c, "bench")
	if err != nil {
		b.Fatal(err)
	}
	loader := &ycsb.Runner{DB: db, RecordCount: records, Threads: 8, Record: ycsb.RecordBuilder{FieldCount: 10, FieldLength: 100}}
	if err := loader.Load(); err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{48, 64, 96, 128} {
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			r := &ycsb.Runner{
				DB: db, Workload: ycsb.WorkloadA, RecordCount: records,
				Threads: threads, Ops: b.N,
				Record: ycsb.RecordBuilder{FieldCount: 10, FieldLength: 100},
			}
			b.ResetTimer()
			res := r.Run()
			b.ReportMetric(res.Throughput, "ops/sec")
			if res.Errors > 0 {
				b.Fatalf("%d errors", res.Errors)
			}
		})
	}
}

// --- Figure 16: YCSB workload E (N1QL range scans) vs threads ---
//
// Paper: ~5400 queries/sec at 128 threads with the query
// `SELECT meta().id FROM bucket WHERE meta().id >= $1 LIMIT $2`.

func BenchmarkFigure16WorkloadE(b *testing.B) {
	const records = 5000
	c := benchCluster(b, core.Config{}, 0)
	if _, err := c.Query("CREATE PRIMARY INDEX ON `bench`", executor.Options{}); err != nil {
		b.Fatal(err)
	}
	db, err := ycsb.NewCouchDB(c, "bench")
	if err != nil {
		b.Fatal(err)
	}
	loader := &ycsb.Runner{DB: db, RecordCount: records, Threads: 8, Record: ycsb.RecordBuilder{FieldCount: 10, FieldLength: 100}}
	if err := loader.Load(); err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{48, 64, 96, 128} {
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			r := &ycsb.Runner{
				DB: db, Workload: ycsb.WorkloadE, RecordCount: records,
				Threads: threads, Ops: b.N,
				Record: ycsb.RecordBuilder{FieldCount: 10, FieldLength: 100},
			}
			b.ResetTimer()
			res := r.Run()
			b.ReportMetric(res.Throughput, "queries/sec")
			if res.Errors > 0 {
				b.Fatalf("%d errors", res.Errors)
			}
		})
	}
}

// --- Claim §1 / §2.3.3: sub-millisecond memory-first KV operations ---

func BenchmarkKVLatency(b *testing.B) {
	c := benchCluster(b, core.Config{}, 1)
	cl, err := c.OpenBucket("bench")
	if err != nil {
		b.Fatal(err)
	}
	doc := []byte(`{"name": "user", "age": 30, "city": "SF"}`)
	cl.Set(context.Background(), "warm", doc, 0)
	b.Run("Get", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cl.Get(context.Background(), "warm"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cl.Set(context.Background(), "warm", doc, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Claim §2.3.2 / §3.1.1: the durability-cost ladder ---
//
// "Most users choose to receive a response immediately once the data
// hits memory, or ... replicate the data to one other node ... the
// latency hit with the replication option is significantly less than
// waiting for persistence, especially when using spinning disks."
// Expected ordering: Async < ReplicateTo1 < PersistTo1 << SpinningDisk.

func BenchmarkDurabilityLevels(b *testing.B) {
	doc := []byte(`{"payload": "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}`)
	run := func(b *testing.B, c *core.Cluster, dur core.DurabilityOptions) {
		cl, err := c.OpenBucket("bench")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key := fmt.Sprintf("doc%06d", i%1024)
			if _, err := cl.SetWithOptions(context.Background(), key, doc, 0, 0, 0, dur); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Async", func(b *testing.B) {
		c := benchCluster(b, core.Config{}, 1)
		run(b, c, core.DurabilityOptions{})
	})
	b.Run("ReplicateTo1", func(b *testing.B) {
		c := benchCluster(b, core.Config{}, 1)
		run(b, c, core.DurabilityOptions{ReplicateTo: 1})
	})
	b.Run("PersistTo1", func(b *testing.B) {
		c := benchCluster(b, core.Config{}, 1)
		run(b, c, core.DurabilityOptions{PersistTo: true})
	})
	b.Run("PersistTo1-SpinningDisk", func(b *testing.B) {
		// 4ms simulated device latency per flush batch ≈ a 7200rpm seek.
		c := benchCluster(b, core.Config{DiskDelay: 4 * time.Millisecond}, 1)
		run(b, c, core.DurabilityOptions{PersistTo: true})
	})
}

// --- Claim §5.1.2: covering indexes beat index+fetch ---

func BenchmarkCoveringVsFetch(b *testing.B) {
	c := benchCluster(b, core.Config{}, 0)
	cl, _ := c.OpenBucket("bench")
	for i := 0; i < 2000; i++ {
		doc := fmt.Sprintf(`{"email": "user%05d@x.com", "age": %d, "bio": "%s"}`,
			i, 20+i%50, "filler filler filler filler filler filler filler")
		cl.Set(context.Background(), fmt.Sprintf("u%05d", i), []byte(doc), 0)
	}
	if _, err := c.Query("CREATE INDEX byEmail ON `bench`(email)", executor.Options{}); err != nil {
		b.Fatal(err)
	}
	// Warm the index.
	if _, err := c.Query(`SELECT email FROM `+"`bench`"+` WHERE email >= "user00000@x.com" LIMIT 1`,
		executor.Options{Consistency: executor.RequestPlus}); err != nil {
		b.Fatal(err)
	}
	// Covered: only the indexed field is projected.
	b.Run("Covering", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := c.Query(`SELECT email FROM `+"`bench`"+` WHERE email >= "user01000@x.com" AND email < "user01100@x.com"`, executor.Options{})
			if err != nil || len(res.Rows) != 100 {
				b.Fatalf("%d rows, %v", len(res.Rows), err)
			}
		}
	})
	// Not covered: projecting a non-indexed field forces the Fetch.
	b.Run("IndexPlusFetch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := c.Query(`SELECT email, age FROM `+"`bench`"+` WHERE email >= "user01000@x.com" AND email < "user01100@x.com"`, executor.Options{})
			if err != nil || len(res.Rows) != 100 {
				b.Fatalf("%d rows, %v", len(res.Rows), err)
			}
		}
	})
}

// --- Claim §4.5.3: PrimaryScan cost grows linearly with bucket size ---

func BenchmarkPrimaryScanLinear(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000, 8000} {
		b.Run(fmt.Sprintf("docs-%d", n), func(b *testing.B) {
			c := benchCluster(b, core.Config{}, 0)
			cl, _ := c.OpenBucket("bench")
			for i := 0; i < n; i++ {
				cl.Set(context.Background(), fmt.Sprintf("d%06d", i), []byte(fmt.Sprintf(`{"v": %d}`, i)), 0)
			}
			if _, err := c.Query("CREATE PRIMARY INDEX ON `bench`", executor.Options{}); err != nil {
				b.Fatal(err)
			}
			stmt := "SELECT COUNT(*) AS n FROM `bench` WHERE v >= 0"
			if _, err := c.Query(stmt, executor.Options{Consistency: executor.RequestPlus}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.Query(stmt, executor.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if got := res.Rows[0].(map[string]any)["n"]; got != float64(n) {
					b.Fatalf("count %v, want %d", got, n)
				}
			}
		})
	}
}

// --- Claim §3.1.2 / §3.2.3: stale=ok vs stale=false under writes ---

func BenchmarkScanConsistency(b *testing.B) {
	setup := func(b *testing.B) (*core.Cluster, func()) {
		c := benchCluster(b, core.Config{}, 0)
		cl, _ := c.OpenBucket("bench")
		for i := 0; i < 1000; i++ {
			cl.Set(context.Background(), fmt.Sprintf("d%05d", i), []byte(fmt.Sprintf(`{"age": %d}`, i%80)), 0)
		}
		if _, err := c.Query("CREATE INDEX byAge ON `bench`(age)", executor.Options{}); err != nil {
			b.Fatal(err)
		}
		// Background writer keeps the index slightly behind. Throttled:
		// an unthrottled writer on a single-core host outruns the
		// indexer without bound and request_plus waits diverge.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			ticker := time.NewTicker(500 * time.Microsecond)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				cl.Set(context.Background(), fmt.Sprintf("d%05d", i%1000), []byte(fmt.Sprintf(`{"age": %d}`, i%80)), 0)
				i++
			}
		}()
		return c, func() { close(stop); wg.Wait() }
	}
	stmt := "SELECT age FROM `bench` WHERE age = 40"
	b.Run("NotBounded", func(b *testing.B) {
		c, stop := setup(b)
		defer stop()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Query(stmt, executor.Options{Consistency: executor.NotBounded}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RequestPlus", func(b *testing.B) {
		c, stop := setup(b)
		defer stop()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Query(stmt, executor.Options{Consistency: executor.RequestPlus}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Claim §6.1.1: memory-optimized GSI vs standard (disk) mode ---
//
// "These new indexes will reside completely in memory, dramatically
// reducing dependence on disk ... as indexes can keep up with higher
// mutation rates." Measured at the indexer-maintenance level.

func BenchmarkGSIStorageModes(b *testing.B) {
	mkIndexer := func(b *testing.B, mode gsi.StorageMode) *gsi.Indexer {
		def := gsi.Def{Name: "bench", Keyspace: "bench", SecExprs: []string{"age"}, Mode: mode}
		ix, err := gsi.NewStandaloneIndexer(def, filepath.Join(b.TempDir(), "idx.log"))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(ix.Close)
		return ix
	}
	run := func(b *testing.B, ix *gsi.Indexer) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Apply(gsi.KeyVersion{
				Index: "bench", VB: 0, Seqno: uint64(i + 1),
				DocID:   fmt.Sprintf("doc%07d", i%10000),
				Entries: [][]any{{float64(i % 100)}},
			})
		}
	}
	b.Run("Standard-Maintain", func(b *testing.B) { run(b, mkIndexer(b, gsi.Standard)) })
	b.Run("MemoryOptimized-Maintain", func(b *testing.B) { run(b, mkIndexer(b, gsi.MemoryOptimized)) })

	scan := func(b *testing.B, ix *gsi.Indexer) {
		for i := 0; i < 10000; i++ {
			ix.Apply(gsi.KeyVersion{Index: "bench", VB: 0, Seqno: uint64(i + 1),
				DocID: fmt.Sprintf("doc%07d", i), Entries: [][]any{{float64(i % 100)}}})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			items, err := ix.Scan(context.Background(), gsi.ScanOptions{EqualKey: []any{float64(i % 100)}, HasEqual: true})
			if err != nil || len(items) == 0 {
				b.Fatal("empty scan")
			}
		}
	}
	b.Run("Standard-Scan", func(b *testing.B) { scan(b, mkIndexer(b, gsi.Standard)) })
	b.Run("MemoryOptimized-Scan", func(b *testing.B) { scan(b, mkIndexer(b, gsi.MemoryOptimized)) })
}

// --- Claim §4.3.3: append-only sequential writes + online compaction ---

func BenchmarkStorageAppendAndCompact(b *testing.B) {
	b.Run("Append", func(b *testing.B) {
		f, err := storage.Open(filepath.Join(b.TempDir(), "vb.couch"), false)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		val := make([]byte, 1024)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := storage.Record{
				Meta:  storage.Meta{Key: fmt.Sprintf("k%07d", i%5000), Seqno: uint64(i + 1), CAS: uint64(i)},
				Value: val,
			}
			if err := f.Append([]storage.Record{rec}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Compact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f, err := storage.Open(filepath.Join(b.TempDir(), fmt.Sprintf("vb%d.couch", i)), false)
			if err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 512)
			seq := uint64(0)
			for k := 0; k < 500; k++ {
				for ver := 0; ver < 10; ver++ {
					seq++
					f.Append([]storage.Record{{
						Meta:  storage.Meta{Key: fmt.Sprintf("k%04d", k), Seqno: seq},
						Value: val,
					}})
				}
			}
			b.StartTimer()
			if err := f.Compact(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			f.Close()
			b.StartTimer()
		}
	})
}

// --- Claim §3.1.2 / §4.3.3: reduce values pre-computed in the tree ---
//
// "This allows for very fast aggregation at query time": a reduce
// query reads O(log n) node annotations instead of scanning rows.

func BenchmarkViewReduceVsScan(b *testing.B) {
	setup := func(b *testing.B) (*views.Engine, *vbucket.VBucket) {
		f, err := storage.Open(filepath.Join(b.TempDir(), "vb.couch"), false)
		if err != nil {
			b.Fatal(err)
		}
		vb := vbucket.New(0, f, vbucket.Active, vbucket.Config{})
		b.Cleanup(func() { vb.Close(); f.Close() })
		eng := views.NewEngine()
		b.Cleanup(eng.Close)
		eng.AttachVB(0, vb.Producer())
		if err := eng.Define(views.Definition{
			Name:   "sales",
			Map:    views.MapSpec{Key: "doc.region", Value: "doc.amount"},
			Reduce: "_sum",
		}); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 20000; i++ {
			doc := fmt.Sprintf(`{"region": "r%02d", "amount": %d}`, i%20, i%500)
			vb.Set(context.Background(), fmt.Sprintf("sale%06d", i), []byte(doc), 0, 0, 0, 0)
		}
		// Let the indexer catch up once.
		if _, err := eng.Query(context.Background(), "sales", views.QueryOptions{
			Stale: views.StaleFalse, WaitSeqnos: map[int]uint64{0: vb.HighSeqno()},
		}); err != nil {
			b.Fatal(err)
		}
		return eng, vb
	}
	b.Run("ReduceFromTree", func(b *testing.B) {
		eng, _ := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := eng.Query(context.Background(), "sales", views.QueryOptions{Reduce: true})
			if err != nil || len(rows) != 1 {
				b.Fatal(err)
			}
		}
	})
	b.Run("ScanAndAggregate", func(b *testing.B) {
		eng, _ := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := eng.Query(context.Background(), "sales", views.QueryOptions{})
			if err != nil {
				b.Fatal(err)
			}
			sum := 0.0
			for _, r := range rows {
				sum += r.Value.(float64)
			}
			if sum == 0 {
				b.Fatal("zero sum")
			}
		}
	})
}

// --- Claim §2.3.2: write aggregation at the persistence level ---
//
// "Asynchrony 'buys time' for the system to handle spikes in the load;
// it also provides an opportunity for repeated updates to an object to
// be aggregated at the level of persistence." The flusher deduplicates
// each batch by key; a hot-key workload should therefore write far
// fewer disk records per client mutation than a unique-key workload.

func BenchmarkWriteAggregation(b *testing.B) {
	run := func(b *testing.B, hotKeys int) {
		f, err := storage.Open(filepath.Join(b.TempDir(), "vb.couch"), false)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		// A slow simulated disk lets the queue build up, creating the
		// aggregation opportunity the paper describes.
		vb := vbucket.New(0, f, vbucket.Active, vbucket.Config{DiskDelay: 2 * time.Millisecond})
		defer vb.Close()
		val := []byte(`{"v": "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}`)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key := fmt.Sprintf("k%07d", i%hotKeys)
			if _, err := vb.Set(context.Background(), key, val, 0, 0, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
		if err := vb.DrainDisk(60 * time.Second); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		// Disk records actually written per client mutation: the
		// aggregation factor.
		written := countRecords(b, f)
		b.ReportMetric(float64(written)/float64(b.N), "disk_records/op")
	}
	b.Run("HotKeys-16", func(b *testing.B) { run(b, 16) })
	b.Run("UniqueKeys", func(b *testing.B) { run(b, 1<<30) })
}

// countRecords derives how many record versions the file holds. All
// records in this bench are the same size, so bytes convert to record
// counts exactly: total = live / (1 - fragmentation).
func countRecords(b *testing.B, f *storage.VBFile) int {
	frag := f.Fragmentation()
	if frag >= 1 {
		b.Fatal("bad fragmentation")
	}
	return int(float64(f.Stats().Items)/(1-frag) + 0.5)
}

// TestMain silences example/bench storage noise in CI environments.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
