package couchgo_test

import (
	"fmt"
	"log"

	"couchgo"
)

// Example shows the three access paths of paper §3.1 on one bucket:
// key-value, view, and N1QL.
func Example() {
	cluster, err := couchgo.NewCluster(couchgo.ClusterOptions{NumVBuckets: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.AddNode("node0", couchgo.AllServices)
	cluster.CreateBucket("default", couchgo.BucketOptions{})
	bucket, _ := cluster.Bucket("default")

	// Key-value.
	bucket.Upsert("borkar123", map[string]any{"name": "Dipti", "email": "dipti@couchbase.com"})
	doc, _ := bucket.Get("borkar123")
	fmt.Println("kv:", string(doc.Content))

	// View.
	bucket.DefineView("profile", couchgo.ViewDefinition{Key: "doc.name", Value: "doc.email"})
	rows, _ := bucket.ViewQuery("profile", couchgo.ViewQueryOptions{Stale: couchgo.StaleFalse})
	fmt.Println("view:", rows[0].Key, "->", rows[0].Value)

	// N1QL.
	cluster.Query("CREATE PRIMARY INDEX ON `default`")
	res, _ := cluster.QueryWithOptions(
		`SELECT email FROM `+"`default`"+` WHERE name = "Dipti"`,
		couchgo.QueryOptions{Consistency: couchgo.RequestPlus})
	fmt.Println("n1ql:", res.Rows[0].(map[string]any)["email"])

	// Output:
	// kv: {"email":"dipti@couchbase.com","name":"Dipti"}
	// view: Dipti -> dipti@couchbase.com
	// n1ql: dipti@couchbase.com
}

// ExampleBucket_Write demonstrates per-mutation durability (§2.3.2).
func ExampleBucket_Write() {
	cluster, _ := couchgo.NewCluster(couchgo.ClusterOptions{NumVBuckets: 16})
	defer cluster.Close()
	cluster.AddNode("node0", couchgo.AllServices)
	cluster.AddNode("node1", couchgo.AllServices)
	cluster.CreateBucket("default", couchgo.BucketOptions{NumReplicas: 1})
	bucket, _ := cluster.Bucket("default")

	_, err := bucket.Write("important", map[string]any{"v": 1}, couchgo.WriteOptions{
		Durability: couchgo.DurabilityOptions{ReplicateTo: 1, PersistTo: true},
	})
	fmt.Println("durable write:", err == nil)
	// Output:
	// durable write: true
}

// ExampleBucket_Increment shows the atomic sub-document counter.
func ExampleBucket_Increment() {
	cluster, _ := couchgo.NewCluster(couchgo.ClusterOptions{NumVBuckets: 16})
	defer cluster.Close()
	cluster.AddNode("node0", couchgo.AllServices)
	cluster.CreateBucket("default", couchgo.BucketOptions{})
	bucket, _ := cluster.Bucket("default")

	bucket.Upsert("stats", map[string]any{"hits": 0})
	bucket.Increment("stats", "hits", 1)
	n, _ := bucket.Increment("stats", "hits", 1)
	fmt.Println("hits:", n)
	// Output:
	// hits: 2
}
