package main

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func fabricatedClusterSnapshot() clusterSnapshot {
	mkNode := func(name string, kvP50, wireP99 float64, lag float64) map[string]any {
		return map[string]any{
			"node":           name,
			"uptime_seconds": 330.0,
			"metrics": map[string]any{
				"couchgo_kv_op_duration_seconds": map[string]any{
					`{op="set"}`: map[string]any{"count": 100.0, "p50": kvP50, "p99": kvP50 * 4},
				},
				"couchgo_transport_op_seconds": map[string]any{
					`{opcode="set",result="ok"}`: map[string]any{"count": 80.0, "p50": wireP99 / 3, "p99": wireP99},
				},
			},
			"dcp_lag": map[string]any{"default/replica:b": lag},
		}
	}
	return clusterSnapshot{
		Addr: "http://localhost:8091",
		When: time.Date(2026, 1, 2, 10, 30, 0, 0, time.UTC),
		Metrics: map[string]any{
			"nodes": map[string]any{
				"127.0.0.1:11210": mkNode("127.0.0.1:11210", 0.0004, 0.003, 5),
				"127.0.0.1:11211": mkNode("127.0.0.1:11211", 0.0009, 0.008, 0),
			},
			"errors": map[string]any{},
		},
		Health: map[string]any{
			"status": "warn",
			"nodes": map[string]any{
				"127.0.0.1:11210": map[string]any{"status": "ok", "checks": []any{}},
				"127.0.0.1:11211": map[string]any{
					"status": "warn",
					"checks": []any{map[string]any{
						"name": "flusher", "state": "warn", "detail": "queue deep",
					}},
				},
			},
			"errors": map[string]any{"127.0.0.1:11212": "dial: connection refused"},
		},
		Events: []map[string]any{
			{"time": "2026-01-02T10:29:58Z", "severity": "info", "type": "topology",
				"msg": "applied cluster map", "origin": "127.0.0.1:11211"},
		},
	}
}

func TestRenderCluster(t *testing.T) {
	out := renderCluster(fabricatedClusterSnapshot(), 10)

	for _, want := range []string{
		"CLUSTER HEALTH: WARN",
		"127.0.0.1:11210",
		"127.0.0.1:11211",
		"KV-p50", "WIRE-p99", "DCP-LAG",
		"flusher", "queue deep",
		"connection refused",
		"applied cluster map",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster frame missing %q:\n%s", want, out)
		}
	}
	// Per-node quantiles render as latencies, and the origin tag rides
	// the merged event line.
	if !strings.Contains(out, "µs") && !strings.Contains(out, "ms") {
		t.Errorf("no latency figures rendered:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	foundEvent := false
	for _, l := range lines {
		if strings.Contains(l, "applied cluster map") && strings.Contains(l, "127.0.0.1:11211") {
			foundEvent = true
		}
	}
	if !foundEvent {
		t.Errorf("event line not origin-tagged:\n%s", out)
	}
}

func TestRenderClusterPollFailure(t *testing.T) {
	s := clusterSnapshot{Addr: "http://x", When: time.Now(), Err: errors.New("connection refused")}
	out := renderCluster(s, 5)
	if !strings.Contains(out, "poll failed") || !strings.Contains(out, "connection refused") {
		t.Errorf("failure banner missing:\n%s", out)
	}
}

func TestFamQuantilesWeights(t *testing.T) {
	m := map[string]any{
		"fam": map[string]any{
			"a": map[string]any{"count": 90.0, "p50": 0.001, "p99": 0.002},
			"b": map[string]any{"count": 10.0, "p50": 0.011, "p99": 0.022},
			"c": map[string]any{"count": 0.0, "p50": 99.0, "p99": 99.0}, // idle series must not skew
		},
	}
	p50, p99 := famQuantiles(m, "fam")
	if p50 < 0.0019 || p50 > 0.0021 {
		t.Fatalf("weighted p50 = %v, want ~0.002", p50)
	}
	if p99 < 0.0039 || p99 > 0.0041 {
		t.Fatalf("weighted p99 = %v, want ~0.004", p99)
	}
	if a, b := famQuantiles(m, "absent"); a != 0 || b != 0 {
		t.Fatal("absent family must yield zeros")
	}
}
