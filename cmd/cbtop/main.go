// Command cbtop is a live terminal console over a running cbserver —
// the reproduction's cbstats/"Couchbase console" view. Each frame
// shows build/uptime, the health watchdog's verdict per check,
// per-bucket per-node stats (items, memory, flush queue, DCP lag), KV
// and query latency quantiles, and a tail of the cluster event
// journal.
//
// Usage:
//
//	cbtop -addr http://localhost:8091
//	cbtop -interval 2s -events 15
//	cbtop -count 1        # one frame, no screen clearing (scripts)
//	cbtop -cluster        # federated all-nodes view via /cluster/*
//
// -cluster renders the whole networked cluster through any one
// node's /cluster/metrics, /cluster/health, and /cluster/events
// aggregates: one row per member with KV and wire latency quantiles
// and DCP lag, a worst-of health roll-up, and the origin-tagged
// merged event tail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8091", "cbserver base URL")
		server    = flag.String("server", "", "cbserver host:port (shorthand for -addr http://host:port)")
		interval  = flag.Duration("interval", time.Second, "refresh interval")
		count     = flag.Int("count", 0, "frames to draw before exiting (0: forever)")
		maxEvents = flag.Int("events", 10, "event-tail length")
		clusterUI = flag.Bool("cluster", false, "render the federated all-nodes view (/cluster/* aggregates)")
	)
	flag.Parse()
	if *server != "" {
		*addr = "http://" + *server
	}

	client := &http.Client{Timeout: 5 * time.Second}
	var tail []map[string]any
	var sinceSeq uint64
	clear := *count != 1 // a single scripted frame shouldn't wipe the scrollback

	for frame := 0; *count == 0 || frame < *count; frame++ {
		if frame > 0 {
			time.Sleep(*interval)
		}
		if *clusterUI {
			cs := clusterSnapshot{Addr: *addr, When: time.Now()}
			cs.Err = poll(client, *addr+"/cluster/metrics", &cs.Metrics)
			if cs.Err == nil {
				cs.Err = poll(client, *addr+"/cluster/health", &cs.Health)
			}
			if cs.Err == nil {
				var evResp struct {
					Events []map[string]any `json:"events"`
				}
				url := fmt.Sprintf("%s/cluster/events?limit=%d", *addr, *maxEvents)
				if err := poll(client, url, &evResp); err == nil {
					cs.Events = evResp.Events
				}
			}
			if clear {
				fmt.Print("\x1b[H\x1b[2J")
			}
			fmt.Print(renderCluster(cs, *maxEvents))
			continue
		}
		s := snapshot{Addr: *addr, When: time.Now()}
		s.Err = poll(client, *addr+"/stats/detail", &s.Detail)
		if s.Err == nil {
			s.Err = poll(client, *addr+"/health", &s.Health)
		}
		if s.Err == nil {
			var evResp struct {
				Events  []map[string]any `json:"events"`
				LastSeq uint64           `json:"last_seq"`
			}
			url := fmt.Sprintf("%s/events?since=%d", *addr, sinceSeq)
			if err := poll(client, url, &evResp); err == nil {
				tail = append(tail, evResp.Events...)
				if len(tail) > *maxEvents {
					tail = tail[len(tail)-*maxEvents:]
				}
				sinceSeq = evResp.LastSeq
			}
			s.Events = tail
		}
		if clear {
			fmt.Print("\x1b[H\x1b[2J")
		}
		fmt.Print(render(s, *maxEvents))
	}
	_ = os.Stdout.Sync()
}

// poll GETs a JSON endpoint into out. Non-2xx/503 bodies still decode
// (the /health endpoint speaks JSON at 503 by design).
func poll(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
