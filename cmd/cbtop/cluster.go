package main

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// clusterSnapshot is one poll of the federated /cluster/* surface on
// any single node: every member's metrics payload, the worst-of
// health roll-up, and the seq-merged event tail. renderCluster is a
// pure function over it, same as render over snapshot.
type clusterSnapshot struct {
	Addr    string
	When    time.Time
	Err     error
	Metrics map[string]any   // GET /cluster/metrics
	Health  map[string]any   // GET /cluster/health
	Events  []map[string]any // GET /cluster/events, oldest first
}

// renderCluster draws the all-nodes frame: one row per member with
// its KV and wire latency quantiles and DCP replication lag, under a
// worst-of cluster health header.
func renderCluster(s clusterSnapshot, maxEvents int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cbtop -cluster — %s @ %s\n", s.Addr, s.When.Format("15:04:05"))
	if s.Err != nil {
		fmt.Fprintf(&b, "\n  !! poll failed: %v\n", s.Err)
		return b.String()
	}

	// --- worst-of health roll-up ---
	status := "unknown"
	if v, ok := s.Health["status"].(string); ok {
		status = v
	}
	fmt.Fprintf(&b, "\nCLUSTER HEALTH: %s\n", strings.ToUpper(status))
	if nodes, ok := s.Health["nodes"].(map[string]any); ok {
		for _, name := range sortedKeys(nodes) {
			nh, _ := nodes[name].(map[string]any)
			st, _ := nh["status"].(string)
			marker := "  "
			switch st {
			case "warn":
				marker = " !"
			case "critical":
				marker = "!!"
			}
			detail := ""
			if checks, ok := nh["checks"].([]any); ok {
				worst := ""
				for _, raw := range checks {
					chk, _ := raw.(map[string]any)
					if chk == nil {
						continue
					}
					if cs, _ := chk["state"].(string); cs != "" && cs != "ok" {
						worst = fmt.Sprintf("%v: %v", chk["name"], chk["detail"])
					}
				}
				detail = worst
			}
			fmt.Fprintf(&b, "  %s %-22s %-8s %s\n", marker, name, st, detail)
		}
	}
	if errs, ok := s.Health["errors"].(map[string]any); ok {
		for _, name := range sortedKeys(errs) {
			fmt.Fprintf(&b, "  !! %-22s %-8s %v\n", name, "critical", errs[name])
		}
	}

	// --- per-node metrics rows ---
	if nodes, ok := s.Metrics["nodes"].(map[string]any); ok && len(nodes) > 0 {
		fmt.Fprintf(&b, "\n%-22s %8s %9s %9s %9s %9s %8s\n",
			"NODE", "UP", "KV-p50", "KV-p99", "WIRE-p50", "WIRE-p99", "DCP-LAG")
		for _, name := range sortedKeys(nodes) {
			nm, _ := nodes[name].(map[string]any)
			if nm == nil {
				continue
			}
			m, _ := nm["metrics"].(map[string]any)
			kv50, kv99 := famQuantiles(m, "couchgo_kv_op_duration_seconds")
			w50, w99 := famQuantiles(m, "couchgo_transport_op_seconds")
			var lag float64
			if lags, ok := nm["dcp_lag"].(map[string]any); ok {
				for _, v := range lags {
					lag += num(v)
				}
			}
			fmt.Fprintf(&b, "%-22s %8s %9s %9s %9s %9s %8.0f\n",
				name, fmtUptime(num(nm["uptime_seconds"])),
				fmtLatency(kv50), fmtLatency(kv99),
				fmtLatency(w50), fmtLatency(w99), lag)
		}
	}
	if errs, ok := s.Metrics["errors"].(map[string]any); ok {
		for _, name := range sortedKeys(errs) {
			fmt.Fprintf(&b, "%-22s  !! %v\n", name, errs[name])
		}
	}

	// --- merged event tail (origin-tagged) ---
	b.WriteString("\nEVENTS")
	if len(s.Events) == 0 {
		b.WriteString(" (none)\n")
		return b.String()
	}
	b.WriteString("\n")
	start := 0
	if len(s.Events) > maxEvents {
		start = len(s.Events) - maxEvents
	}
	for _, e := range s.Events[start:] {
		ts := ""
		if raw, ok := e["time"].(string); ok {
			if t, err := time.Parse(time.RFC3339Nano, raw); err == nil {
				ts = t.Format("15:04:05")
			}
		}
		sev, _ := e["severity"].(string)
		origin, _ := e["origin"].(string)
		fmt.Fprintf(&b, "  %s %-8s %-22s %-10v %v\n",
			ts, strings.ToUpper(sev), origin, e["type"], e["msg"])
	}
	return b.String()
}

// famQuantiles rolls one node's histogram family up into headline
// p50/p99 numbers: the count-weighted mean of each series' quantile.
// Quantiles don't merge exactly, but for a console view a weighted
// blend beats showing one arbitrary op — hot ops dominate, idle ops
// don't skew.
func famQuantiles(m map[string]any, fam string) (p50, p99 float64) {
	series, ok := m[fam].(map[string]any)
	if !ok {
		return 0, 0
	}
	var total float64
	for _, raw := range series {
		h, ok := raw.(map[string]any)
		if !ok {
			continue
		}
		n := num(h["count"])
		if n <= 0 {
			continue
		}
		total += n
		p50 += num(h["p50"]) * n
		p99 += num(h["p99"]) * n
	}
	if total == 0 {
		return 0, 0
	}
	return p50 / total, p99 / total
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
