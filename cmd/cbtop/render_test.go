package main

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func fabricatedSnapshot() snapshot {
	return snapshot{
		Addr: "http://localhost:8091",
		When: time.Date(2026, 1, 2, 10, 30, 0, 0, time.UTC),
		Detail: map[string]any{
			"server": map[string]any{
				"version": "0.6.0", "go": "go1.22", "uptime_seconds": 125.0,
			},
			"buckets": map[string]any{
				"default": map[string]any{
					"nodes": []any{
						map[string]any{
							"ID": "node0", "Alive": true, "Items": 1500.0,
							"MemUsed": 2097152.0, "QueueDepth": 12.0, "Tombstones": 3.0,
							"DCPLags": map[string]any{"replica:node1": 7.0, "gsi": 2.0},
						},
						map[string]any{
							"ID": "node1", "Alive": false, "Items": 900.0,
							"MemUsed": 1024.0, "QueueDepth": 0.0, "Tombstones": 0.0,
						},
					},
				},
			},
			"transport": map[string]any{
				"server_conns": 5.0, "client_conns": 2.0,
				"bytes_in": 1048576.0, "bytes_out": 2097152.0,
				"not_my_vbucket": 4.0, "dial_errors": 0.0,
				"dcp_streams_serving": 42.0,
			},
			"metrics": map[string]any{
				"couchgo_kv_op_duration_seconds": map[string]any{
					`{op="set"}`: map[string]any{
						"count": 4000.0, "p50": 0.0002, "p95": 0.0015, "p99": 0.004, "max": 0.12,
					},
				},
				"couchgo_query_duration_seconds": map[string]any{
					"": map[string]any{
						"count": 12.0, "p50": 0.03, "p95": 0.2, "p99": 1.5, "max": 2.5,
					},
				},
				"couchgo_storage_group_commit_batches":      map[string]any{"": 120.0},
				"couchgo_storage_group_commit_riders_total": map[string]any{"": 480.0},
				"couchgo_storage_group_commit_coalesced_appends": map[string]any{
					"": map[string]any{"count": 120.0, "mean": 5.0, "max": 32.0},
				},
				"couchgo_flusher_queue_depth": map[string]any{"": 7.0},
				"couchgo_transport_frames_per_syscall": map[string]any{
					"": map[string]any{"count": 9000.0, "mean": 2.4, "p99": 16.0, "max": 64.0},
				},
			},
		},
		Health: map[string]any{
			"status": "warn",
			"checks": []any{
				map[string]any{"name": "node:node1", "state": "critical", "detail": "node down with mapped partitions"},
				map[string]any{"name": "feed:stalls", "state": "warn", "detail": "1 drain(s) stalled for 2s"},
				map[string]any{"name": "cache:memory", "state": "ok", "detail": "bucket default at 40% of quota"},
			},
		},
		Events: []map[string]any{
			{"time": "2026-01-02T10:29:58Z", "severity": "warn", "type": "feed", "msg": "feed stall: consumer backpressure", "node": ""},
			{"time": "2026-01-02T10:29:59Z", "severity": "critical", "type": "health", "msg": "health check node:node1 -> critical", "node": "node0"},
		},
	}
}

func TestRenderFullFrame(t *testing.T) {
	out := render(fabricatedSnapshot(), 10)
	for _, want := range []string{
		"couchgo 0.6.0 (go1.22) up 2m5s",
		"HEALTH: WARN",
		"!! node:node1",
		" ! feed:stalls",
		"DCP-LAG",
		"node0",
		"2.0MiB", // MemUsed 2 MiB
		"9",      // summed lag 7+2
		"TRANSPORT  conns 5 srv / 2 cli",
		"nmvb 4",
		"dcp-streams 42",
		"KV LATENCY",
		`op="set"`,
		"200µs", // p50 0.0002s
		"QUERY LATENCY",
		"HOT PATH",
		"120 fsyncs",
		"480 riders",
		"appends/fsync mean 5.0 max 32",
		"flush queue           7 entries",
		"frames/write mean 2.4 p99 16 max 64",
		"EVENTS",
		"CRITICAL",
		"health check node:node1 -> critical [node0]",
		"10:29:58",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEventTailBounded(t *testing.T) {
	s := fabricatedSnapshot()
	out := render(s, 1)
	if strings.Contains(out, "feed stall: consumer backpressure") {
		t.Fatalf("tail not bounded to newest event:\n%s", out)
	}
	if !strings.Contains(out, "health check node:node1 -> critical") {
		t.Fatalf("newest event missing:\n%s", out)
	}
}

func TestRenderPollError(t *testing.T) {
	s := snapshot{Addr: "http://x", When: time.Now(), Err: errors.New("connection refused")}
	out := render(s, 10)
	if !strings.Contains(out, "poll failed: connection refused") {
		t.Fatalf("no error banner:\n%s", out)
	}
}

func TestRenderEmptySnapshot(t *testing.T) {
	out := render(snapshot{Addr: "http://x", When: time.Now()}, 10)
	if !strings.Contains(out, "EVENTS (none)") {
		t.Fatalf("empty snapshot render:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := fmtBytes(3 << 30); got != "3.0GiB" {
		t.Errorf("fmtBytes = %s", got)
	}
	if got := fmtLatency(0); got != "-" {
		t.Errorf("fmtLatency(0) = %s", got)
	}
	if got := fmtLatency(2.5); got != "2.50s" {
		t.Errorf("fmtLatency(2.5) = %s", got)
	}
	if got := fmtUptime(3725); got != "1h2m" {
		t.Errorf("fmtUptime = %s", got)
	}
}
