package main

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// snapshot is one poll of the server's observability surface, already
// decoded from JSON. render is a pure function over it so the display
// logic is testable without a server.
type snapshot struct {
	Addr   string
	When   time.Time
	Err    error            // poll failure; renders as a banner
	Detail map[string]any   // GET /stats/detail
	Health map[string]any   // GET /health
	Events []map[string]any // tail of the event journal, oldest first
}

// render draws one full frame. maxEvents bounds the event tail.
func render(s snapshot, maxEvents int) string {
	var b strings.Builder

	// --- header ---
	fmt.Fprintf(&b, "cbtop — %s @ %s", s.Addr, s.When.Format("15:04:05"))
	if srv, ok := s.Detail["server"].(map[string]any); ok {
		fmt.Fprintf(&b, "   couchgo %v (%v) up %s",
			srv["version"], srv["go"], fmtUptime(num(srv["uptime_seconds"])))
	}
	b.WriteString("\n")
	if s.Err != nil {
		fmt.Fprintf(&b, "\n  !! poll failed: %v\n", s.Err)
		return b.String()
	}

	// --- health ---
	status := "unknown"
	if v, ok := s.Health["status"].(string); ok {
		status = v
	}
	fmt.Fprintf(&b, "\nHEALTH: %s\n", strings.ToUpper(status))
	if checks, ok := s.Health["checks"].([]any); ok {
		for _, raw := range checks {
			chk, ok := raw.(map[string]any)
			if !ok {
				continue
			}
			marker := "  "
			switch chk["state"] {
			case "warn":
				marker = " !"
			case "critical":
				marker = "!!"
			}
			fmt.Fprintf(&b, "  %s %-16v %-8v %v\n", marker, chk["name"], chk["state"], chk["detail"])
		}
	}

	// --- buckets ---
	if buckets, ok := s.Detail["buckets"].(map[string]any); ok && len(buckets) > 0 {
		fmt.Fprintf(&b, "\n%-10s %-8s %-5s %9s %10s %7s %7s %8s\n",
			"BUCKET", "NODE", "ALIVE", "ITEMS", "MEM", "QUEUE", "TOMB", "DCP-LAG")
		names := make([]string, 0, len(buckets))
		for name := range buckets {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bm, _ := buckets[name].(map[string]any)
			nodes, _ := bm["nodes"].([]any)
			for _, raw := range nodes {
				st, ok := raw.(map[string]any)
				if !ok {
					continue
				}
				var lag float64
				if lags, ok := st["DCPLags"].(map[string]any); ok {
					for _, v := range lags {
						lag += num(v)
					}
				}
				fmt.Fprintf(&b, "%-10s %-8v %-5v %9.0f %10s %7.0f %7.0f %8.0f\n",
					name, st["ID"], st["Alive"], num(st["Items"]),
					fmtBytes(num(st["MemUsed"])), num(st["QueueDepth"]),
					num(st["Tombstones"]), lag)
			}
		}
	}

	// --- wire transport (networked cluster mode only) ---
	if tr, ok := s.Detail["transport"].(map[string]any); ok {
		fmt.Fprintf(&b, "\nTRANSPORT  conns %0.f srv / %0.f cli   in %s  out %s   nmvb %.0f   dcp-streams %.0f\n",
			num(tr["server_conns"]), num(tr["client_conns"]),
			fmtBytes(num(tr["bytes_in"])), fmtBytes(num(tr["bytes_out"])),
			num(tr["not_my_vbucket"]), num(tr["dcp_streams_serving"]))
	}

	// --- KV / query latencies from the registry snapshot ---
	if m, ok := s.Detail["metrics"].(map[string]any); ok {
		b.WriteString(renderHotPath(m))
		b.WriteString(renderLatencies(m))
	}

	// --- event tail ---
	b.WriteString("\nEVENTS")
	if len(s.Events) == 0 {
		b.WriteString(" (none)\n")
		return b.String()
	}
	b.WriteString("\n")
	start := 0
	if len(s.Events) > maxEvents {
		start = len(s.Events) - maxEvents
	}
	for _, e := range s.Events[start:] {
		ts := ""
		if raw, ok := e["time"].(string); ok {
			if t, err := time.Parse(time.RFC3339Nano, raw); err == nil {
				ts = t.Format("15:04:05")
			}
		}
		sev, _ := e["severity"].(string)
		fmt.Fprintf(&b, "  %s %-8s %-10v %v", ts, strings.ToUpper(sev), e["type"], e["msg"])
		if node, ok := e["node"].(string); ok && node != "" {
			fmt.Fprintf(&b, " [%s]", node)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// renderHotPath surfaces the write-path efficiency counters: group
// commit (how many appends each fsync covered), the disk-write queue
// backlog, and wire write coalescing (frames per socket syscall). A
// healthy loaded node shows coalesced appends > 1 and frames/write
// climbing with concurrency; a deep flush queue means the disk is
// behind.
func renderHotPath(m map[string]any) string {
	famSum := func(fam string) (float64, bool) {
		series, ok := m[fam].(map[string]any)
		if !ok || len(series) == 0 {
			return 0, false
		}
		var sum float64
		for _, v := range series {
			sum += num(v)
		}
		return sum, true
	}
	famHist := func(fam string) (map[string]any, bool) {
		series, ok := m[fam].(map[string]any)
		if !ok {
			return nil, false
		}
		for _, v := range series {
			if h, ok := v.(map[string]any); ok && num(h["count"]) > 0 {
				return h, true
			}
		}
		return nil, false
	}

	batches, okB := famSum("couchgo_storage_group_commit_batches")
	riders, okR := famSum("couchgo_storage_group_commit_riders_total")
	queue, okQ := famSum("couchgo_flusher_queue_depth")
	coal, okC := famHist("couchgo_storage_group_commit_coalesced_appends")
	frames, okF := famHist("couchgo_transport_frames_per_syscall")
	if !okB && !okR && !okQ && !okC && !okF {
		return ""
	}

	var b strings.Builder
	b.WriteString("\nHOT PATH\n")
	if okB || okR {
		fmt.Fprintf(&b, "  group commit   %8.0f fsyncs   %8.0f riders", batches, riders)
		if okC {
			fmt.Fprintf(&b, "   appends/fsync mean %.1f max %.0f", num(coal["mean"]), num(coal["max"]))
		}
		b.WriteString("\n")
	}
	if okQ {
		fmt.Fprintf(&b, "  flush queue    %8.0f entries\n", queue)
	}
	if okF {
		fmt.Fprintf(&b, "  wire coalesce  %8.0f writes   frames/write mean %.1f p99 %.0f max %.0f\n",
			num(frames["count"]), num(frames["mean"]), num(frames["p99"]), num(frames["max"]))
	}
	return b.String()
}

// renderLatencies picks the operator-facing histogram families out of
// the registry snapshot: per-op KV latency and overall query latency.
func renderLatencies(m map[string]any) string {
	var b strings.Builder
	writeFam := func(title, fam string) {
		series, ok := m[fam].(map[string]any)
		if !ok || len(series) == 0 {
			return
		}
		labels := make([]string, 0, len(series))
		for ls := range series {
			labels = append(labels, ls)
		}
		sort.Strings(labels)
		fmt.Fprintf(&b, "\n%s\n", title)
		fmt.Fprintf(&b, "  %-18s %9s %9s %9s %9s %9s\n", "", "count", "p50", "p95", "p99", "max")
		for _, ls := range labels {
			h, ok := series[ls].(map[string]any)
			if !ok {
				continue
			}
			name := strings.Trim(ls, "{}")
			if name == "" {
				name = "(all)"
			}
			fmt.Fprintf(&b, "  %-18s %9.0f %9s %9s %9s %9s\n",
				name, num(h["count"]),
				fmtLatency(num(h["p50"])), fmtLatency(num(h["p95"])),
				fmtLatency(num(h["p99"])), fmtLatency(num(h["max"])))
		}
	}
	writeFam("KV LATENCY", "couchgo_kv_op_duration_seconds")
	writeFam("QUERY LATENCY", "couchgo_query_duration_seconds")
	writeFam("WIRE OP LATENCY", "couchgo_transport_op_seconds")
	return b.String()
}

// num coerces any JSON number (or Go numeric, in tests) to float64.
func num(v any) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case int:
		return float64(n)
	case int64:
		return float64(n)
	case uint64:
		return float64(n)
	}
	return 0
}

func fmtUptime(secs float64) string {
	d := time.Duration(secs) * time.Second
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%dh%dm", int(d.Hours()), int(d.Minutes())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%ds", int(d.Minutes()), int(d.Seconds())%60)
	}
	return fmt.Sprintf("%ds", int(d.Seconds()))
}

func fmtBytes(n float64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", n/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", n/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", n/(1<<10))
	}
	return fmt.Sprintf("%.0fB", n)
}

func fmtLatency(secs float64) string {
	switch {
	case secs <= 0:
		return "-"
	case secs < time.Millisecond.Seconds():
		return fmt.Sprintf("%.0fµs", secs*1e6)
	case secs < time.Second.Seconds():
		return fmt.Sprintf("%.1fms", secs*1e3)
	}
	return fmt.Sprintf("%.2fs", secs)
}
