// Command healthdemo is `make health-demo`: an end-to-end tour of the
// health engine. It boots an in-process cluster behind the REST
// facade, injects a real feed stall (a consumer parked on a gate
// behind a 1-slot buffer), and polls GET /health while the watchdog
// walks the feed:stalls check ok -> warn -> critical, then releases
// the consumer and watches it recover. The transitions land in the
// event journal too, printed at the end from GET /events.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/dcp"
	"couchgo/internal/feed"
	"couchgo/internal/health"
	"couchgo/internal/rest"
)

type nullSource struct{}

func (nullSource) Snapshot(uint64) ([]dcp.Mutation, uint64, error) { return nil, 0, nil }

type gatedConsumer struct{ gate chan struct{} }

func (g *gatedConsumer) Apply(int, dcp.Mutation) { <-g.gate }

func main() {
	c, err := core.NewCluster(core.Config{NumVBuckets: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		if _, err := c.AddNode(cmap.NodeID(fmt.Sprintf("node%d", i)), cmap.AllServices); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.CreateBucket("default", core.BucketOptions{NumReplicas: 1}); err != nil {
		log.Fatal(err)
	}

	w := health.New(health.Options{Interval: 250 * time.Millisecond, RaiseAfter: 2, ClearAfter: 2})
	health.RegisterClusterChecks(w, c, health.ClusterCheckConfig{FeedStallCritAfter: 2 * time.Second})
	w.Start()
	defer w.Stop()

	api := rest.NewServer(c)
	api.SetHealth(w)
	srv := httptest.NewServer(api)
	defer srv.Close()
	fmt.Printf("cluster up behind %s; watchdog ticking every 250ms\n\n", srv.URL)

	fmt.Println("injecting feed stall: 1-slot buffer, consumer parked on a gate")
	src := dcp.NewProducer(0, nullSource{})
	defer src.Close()
	cons := &gatedConsumer{gate: make(chan struct{})}
	f := feed.New("demo-stall", cons, feed.Config{Service: "demo", Buffer: 1})
	defer f.Close()
	if err := f.Attach(0, src); err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		src.Publish(dcp.Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}

	released := false
	release := time.After(3500 * time.Millisecond)
	last := ""
	deadline := time.After(30 * time.Second)
	for {
		select {
		case <-release:
			if !released {
				fmt.Println("\nreleasing the consumer gate (stall clears)")
				close(cons.gate)
				released = true
			}
		case <-deadline:
			log.Fatal("demo timed out waiting for recovery")
		case <-time.After(250 * time.Millisecond):
		}
		status, body := getHealth(srv.URL)
		if body != last {
			fmt.Printf("GET /health -> %d %s\n", status, body)
			last = body
		}
		if released && body == "ok" {
			break
		}
	}

	fmt.Println("\nhealth transitions as the journal recorded them:")
	resp, err := http.Get(srv.URL + "/events?type=health")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Events []struct {
			Seq      uint64            `json:"seq"`
			Severity string            `json:"severity"`
			Msg      string            `json:"msg"`
			Fields   map[string]string `json:"fields"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	for _, e := range out.Events {
		fmt.Printf("  #%d [%s] %s (%s)\n", e.Seq, e.Severity, e.Msg, e.Fields["detail"])
	}
}

// getHealth returns the status code and the overall status string.
func getHealth(base string) (int, string) {
	resp, err := http.Get(base + "/health")
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	var out struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, err.Error()
	}
	return resp.StatusCode, out.Status
}
