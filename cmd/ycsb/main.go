// Command ycsb reproduces the paper's appendix evaluation (Figures 15
// and 16): YCSB workloads against an in-process couchgo cluster, with
// the client thread count swept as in the paper (4 client machines ×
// 12..32 threads = 48..128 total).
//
// Figure 15 (workload A, 50% read / 50% update, zipfian):
//
//	ycsb -workload a -records 100000 -ops 200000
//
// Figure 16 (workload E, short N1QL range scans):
//
//	ycsb -workload e -records 100000 -ops 20000
//
// The output is one row per thread count: the same series the paper
// plots. Absolute numbers are machine-local (the paper ran a 4-node
// hardware cluster driven by 4 separate client hosts); the shape is
// the comparison target — see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/executor"
	"couchgo/internal/trace"
	"couchgo/internal/transport"
	"couchgo/internal/ycsb"
)

func main() {
	var (
		workload = flag.String("workload", "a", "YCSB workload: a|b|c|d|e")
		records  = flag.Int64("records", 100000, "records to load (paper used 10M)")
		ops      = flag.Int("ops", 200000, "operations per thread-count measurement")
		threads  = flag.String("threads", "48,64,80,96,112,128", "comma-separated total client thread counts (paper: 4 clients x 12..32)")
		nodes    = flag.Int("nodes", 4, "cluster nodes (paper: 4)")
		vbuckets = flag.Int("vbuckets", 128, "vBucket count (1024 in production; lower is faster to set up)")
		dir      = flag.String("dir", "", "storage directory (default temp)")
		doTrace  = flag.Int("trace", 0, "sample 1 in N operations for end-to-end tracing and print the slowest trace per phase (0 disables)")
		server   = flag.String("server", "", "KV wire address (host:port) of a running cbserver; drives the workload over TCP through the smart client instead of an in-process cluster (workloads a-d)")
		bucket   = flag.String("bucket", "", `bucket name (default "ycsb" in-process, "default" with -server)`)
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (client-side cost accounting)")
		gcPct    = flag.Int("gc-percent", 300, "Go GC target percentage for the client process; on a shared machine the driver's GC cycles steal CPU from the system under test")
	)
	flag.Parse()

	if *gcPct > 0 {
		debug.SetGCPercent(*gcPct)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *doTrace > 0 {
		trace.Default.SetRate(*doTrace)
	}

	w, err := ycsb.WorkloadByName(*workload)
	if err != nil {
		log.Fatal(err)
	}

	if *server != "" {
		if w.ScanProportion > 0 {
			log.Fatal("workload e needs N1QL scans, which the KV wire protocol does not serve; use in-process mode")
		}
		if *bucket == "" {
			*bucket = "default"
		}
		runAgainstServer(w, *server, *bucket, *records, *ops, *threads)
		return
	}
	if *bucket == "" {
		*bucket = "ycsb"
	}

	cluster, err := core.NewCluster(core.Config{Dir: *dir, NumVBuckets: *vbuckets})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	for i := 0; i < *nodes; i++ {
		if _, err := cluster.AddNode(cmap.NodeID(fmt.Sprintf("node%d", i)), cmap.AllServices); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.CreateBucket(*bucket, core.BucketOptions{}); err != nil {
		log.Fatal(err)
	}
	if w.ScanProportion > 0 {
		// Workload E scans run through N1QL over the primary index.
		if _, err := cluster.Query(fmt.Sprintf("CREATE PRIMARY INDEX ON `%s`", *bucket), executor.Options{}); err != nil {
			log.Fatal(err)
		}
	}
	db, err := ycsb.NewCouchDB(cluster, *bucket)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("# loading %d records into %d-node cluster (%d vbuckets)\n", *records, *nodes, *vbuckets)
	loader := &ycsb.Runner{DB: db, RecordCount: *records, Threads: 16, Record: ycsb.DefaultRecord}
	if err := loader.Load(); err != nil {
		log.Fatal(err)
	}
	printSlowest("load")

	fmt.Printf("# workload %s: %d ops per measurement\n", w.Name, *ops)
	fmt.Printf("# figure: %s\n", figureFor(w.Name))
	for _, ts := range strings.Split(*threads, ",") {
		tc, err := strconv.Atoi(strings.TrimSpace(ts))
		if err != nil || tc <= 0 {
			log.Fatalf("bad thread count %q", ts)
		}
		r := &ycsb.Runner{
			DB:          db,
			Workload:    w,
			RecordCount: *records,
			Threads:     tc,
			Ops:         *ops,
			Record:      ycsb.DefaultRecord,
		}
		fmt.Println(r.Run())
		printSlowest(fmt.Sprintf("%d threads", tc))
	}
}

// runAgainstServer drives the workload through the smart client over
// the binary KV wire protocol: the cluster map arrives in-band from
// the seed address, and every op crosses a real socket. Used to
// measure the loopback-TCP tax against the in-process numbers (see
// BENCH_transport.json).
func runAgainstServer(w ycsb.Workload, server, bucket string, records int64, ops int, threads string) {
	pool := transport.NewPool()
	defer pool.Close()
	router := transport.NewRouter(bucket, []string{server}, pool)
	db := &ycsb.CouchDB{Client: core.NewClient(router, bucket), Bucket: bucket}

	fmt.Printf("# loading %d records via %s (bucket %q, wire protocol)\n", records, server, bucket)
	loader := &ycsb.Runner{DB: db, RecordCount: records, Threads: 16, Record: ycsb.DefaultRecord}
	if err := loader.Load(); err != nil {
		log.Fatal(err)
	}
	printSlowest("load")

	fmt.Printf("# workload %s over TCP: %d ops per measurement\n", w.Name, ops)
	for _, ts := range strings.Split(threads, ",") {
		tc, err := strconv.Atoi(strings.TrimSpace(ts))
		if err != nil || tc <= 0 {
			log.Fatalf("bad thread count %q", ts)
		}
		r := &ycsb.Runner{
			DB:          db,
			Workload:    w,
			RecordCount: records,
			Threads:     tc,
			Ops:         ops,
			Record:      ycsb.DefaultRecord,
		}
		fmt.Println(r.Run())
		printSlowest(fmt.Sprintf("%d threads", tc))
	}
}

// printSlowest reports the slowest sampled trace of the phase that
// just finished, then resets retention so phases don't mix. No-op
// while tracing is disabled.
func printSlowest(phase string) {
	if trace.Default.Rate() <= 0 {
		return
	}
	if t := trace.Default.Slowest(""); t != nil {
		fmt.Printf("# slowest trace, %s:\n", phase)
		for _, line := range strings.Split(strings.TrimRight(trace.Format(t), "\n"), "\n") {
			fmt.Println("#   " + line)
		}
	}
	trace.Default.Clear()
}

func figureFor(name string) string {
	switch name {
	case "A":
		return "Figure 15 — simple operation throughput (ops/sec) vs threads"
	case "E":
		return "Figure 16 — range query throughput (queries/sec) vs threads"
	}
	return "supplemental workload " + name
}
