// Command cbq is an interactive N1QL shell, talking to a cbserver's
// query endpoint (the paper's "interactive client tools" for N1QL).
//
// Usage:
//
//	cbq -url http://localhost:8091
//	> CREATE PRIMARY INDEX ON default;
//	> SELECT meta().id FROM default LIMIT 5;
//	> \consistency request_plus
//	> \timings
//	> \quit
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
)

func main() {
	url := flag.String("url", "http://localhost:8091", "cbserver base URL")
	flag.Parse()

	consistency := ""
	timings := false
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder

	fmt.Println("cbq shell — end statements with ';', \\quit to exit")
	fmt.Print("> ")
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == `\quit` || trimmed == `\q`:
			return
		case strings.HasPrefix(trimmed, `\consistency`):
			parts := strings.Fields(trimmed)
			if len(parts) == 2 && (parts[1] == "request_plus" || parts[1] == "not_bounded") {
				consistency = parts[1]
				fmt.Printf("scan_consistency = %s\n> ", consistency)
			} else {
				fmt.Print("usage: \\consistency request_plus|not_bounded\n> ")
			}
			continue
		case trimmed == `\timings`:
			timings = !timings
			fmt.Printf("profile timings = %v\n> ", timings)
			continue
		}
		pending.WriteString(line)
		pending.WriteString(" ")
		if !strings.HasSuffix(trimmed, ";") {
			fmt.Print("… ")
			continue
		}
		stmt := strings.TrimSpace(pending.String())
		pending.Reset()
		runStatement(*url, stmt, consistency, timings)
		fmt.Print("> ")
	}
}

func runStatement(base, stmt, consistency string, timings bool) {
	req := map[string]any{
		"statement":        strings.TrimSuffix(stmt, ";"),
		"scan_consistency": consistency,
	}
	if timings {
		req["profile"] = "timings"
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fmt.Printf("bad response: %v\n", err)
		return
	}
	if e, ok := out["error"]; ok {
		fmt.Printf("error: %v\n", e)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if rows, ok := out["results"].([]any); ok && len(rows) > 0 {
		for _, r := range rows {
			enc.Encode(r)
		}
	}
	if mc, ok := out["mutationCount"].(float64); ok && mc > 0 {
		fmt.Printf("mutations: %.0f\n", mc)
	}
	if prof, ok := out["profile"].(map[string]any); ok {
		fmt.Println("profile:")
		enc.Encode(prof)
	}
	fmt.Printf("status: %v\n", out["status"])
}
