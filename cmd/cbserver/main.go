// Command cbserver runs a couchgo cluster and serves its HTTP API:
// the KV document endpoints, view queries, the N1QL query service, and
// cluster administration (rebalance/failover).
//
// Usage:
//
//	cbserver -listen :8091 -nodes 4 -replicas 1 -bucket default
//
// Then:
//
//	curl -X PUT localhost:8091/buckets/default/docs/user::1 -d '{"name":"Dipti"}'
//	curl localhost:8091/buckets/default/docs/user::1
//	curl -X POST localhost:8091/query -d '{"statement":"CREATE PRIMARY INDEX ON default"}'
//	curl -X POST localhost:8091/query -d '{"statement":"SELECT * FROM default"}'
//	curl localhost:8091/metrics
//	curl localhost:8091/stats/detail
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/rest"
)

func main() {
	var (
		listen    = flag.String("listen", ":8091", "HTTP listen address")
		nodes     = flag.Int("nodes", 4, "number of cluster nodes")
		replicas  = flag.Int("replicas", 1, "bucket replica count (0-3)")
		vbuckets  = flag.Int("vbuckets", cmap.NumVBuckets, "vBucket count")
		dir       = flag.String("dir", "", "storage directory (default: temp)")
		bucket    = flag.String("bucket", "default", "bucket to create")
		syncWrite = flag.Bool("sync", false, "fsync every persisted batch")
		slowQuery = flag.Duration("slow-query-threshold", 100*time.Millisecond, "N1QL latency before a statement lands in the slow-query log")
		slowLog   = flag.Int("slow-query-log-size", 64, "slow-query ring buffer capacity")
	)
	flag.Parse()

	cluster, err := core.NewCluster(core.Config{
		Dir:                *dir,
		NumVBuckets:        *vbuckets,
		SyncPersist:        *syncWrite,
		FailoverTimeout:    2 * time.Second,
		SlowQueryThreshold: *slowQuery,
		SlowQueryLogSize:   *slowLog,
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Close()

	for i := 0; i < *nodes; i++ {
		id := cmap.NodeID(fmt.Sprintf("node%d", i))
		if _, err := cluster.AddNode(id, cmap.AllServices); err != nil {
			log.Fatalf("add node: %v", err)
		}
	}
	if err := cluster.CreateBucket(*bucket, core.BucketOptions{NumReplicas: *replicas}); err != nil {
		log.Fatalf("create bucket: %v", err)
	}
	log.Printf("cluster up: %d nodes, bucket %q (%d vbuckets, %d replicas), orchestrator %s",
		*nodes, *bucket, *vbuckets, *replicas, cluster.Orchestrator())

	srv := &http.Server{Addr: *listen, Handler: rest.NewServer(cluster)}
	go func() {
		log.Printf("listening on %s", *listen)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
	srv.Close()
}
