// Command cbserver runs a couchgo cluster and serves its HTTP API:
// the KV document endpoints, view queries, the N1QL query service, and
// cluster administration (rebalance/failover).
//
// Usage:
//
//	cbserver -listen :8091 -nodes 4 -replicas 1 -bucket default
//
// Networked cluster mode (-kv-addr): each process runs ONE local node
// and serves the binary KV wire protocol; N processes form a cluster.
// The first process (no -join) is the coordinator seed and waits for
// -cluster-size members before minting the cluster map:
//
//	cbserver -listen :8091 -kv-addr :11210 -cluster-size 3 -replicas 1
//	cbserver -listen :8092 -kv-addr :11211 -join 127.0.0.1:11210
//	cbserver -listen :8093 -kv-addr :11212 -join 127.0.0.1:11210
//
// Every process's REST document endpoints route cluster-wide through
// a hybrid smart client (loopback to the local node, sockets to
// peers), and /stats/detail gains a "transport" block.
//
// Then:
//
//	curl -X PUT localhost:8091/buckets/default/docs/user::1 -d '{"name":"Dipti"}'
//	curl localhost:8091/buckets/default/docs/user::1
//	curl -X POST localhost:8091/query -d '{"statement":"CREATE PRIMARY INDEX ON default"}'
//	curl -X POST localhost:8091/query -d '{"statement":"SELECT * FROM default"}'
//	curl localhost:8091/metrics
//	curl localhost:8091/stats/detail
//
// Request tracing (off unless -trace-rate > 0):
//
//	cbserver -trace-rate 100 -trace-threshold 50ms
//	curl localhost:8091/traces
//	curl localhost:8091/traces/42
//	curl -X POST localhost:8091/traces/config -d '{"rate": 1}'
//
// Observability (always on; see cmd/cbtop for the live console):
//
//	curl localhost:8091/health
//	curl 'localhost:8091/events?severity=warn'
//	curl 'localhost:8091/events/stream?since=0&timeout=10s'
//
// -auto-failover arms the watchdog: a node held critical (down with
// mapped partitions) for consecutive health ticks is failed over.
//
// Profiling (off unless -debug-addr is set): -debug-addr :6060 serves
// net/http/pprof and expvar on a separate listener that should stay
// private to operators.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"time"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/health"
	"couchgo/internal/rest"
	"couchgo/internal/trace"
	"couchgo/internal/transport"
)

func main() {
	var (
		listen       = flag.String("listen", ":8091", "HTTP listen address")
		nodes        = flag.Int("nodes", 4, "number of cluster nodes")
		replicas     = flag.Int("replicas", 1, "bucket replica count (0-3)")
		vbuckets     = flag.Int("vbuckets", cmap.NumVBuckets, "vBucket count")
		dir          = flag.String("dir", "", "storage directory (default: temp)")
		bucket       = flag.String("bucket", "default", "bucket to create")
		syncWrite    = flag.Bool("sync", false, "fsync every persisted batch")
		slowQuery    = flag.Duration("slow-query-threshold", 100*time.Millisecond, "N1QL latency before a statement lands in the slow-query log")
		slowLog      = flag.Int("slow-query-log-size", 64, "slow-query ring buffer capacity")
		traceRate    = flag.Int("trace-rate", 0, "sample 1 in N requests for end-to-end tracing (0 disables)")
		traceSlow    = flag.Duration("trace-threshold", trace.DefaultSlowThreshold, "latency above which a sampled trace is always retained")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (empty disables)")
		healthEvery  = flag.Duration("health-interval", time.Second, "watchdog evaluation interval for /health")
		autoFailover = flag.Bool("auto-failover", false, "fail over a node the watchdog holds critical (sustained down with mapped partitions)")

		kvAddr      = flag.String("kv-addr", "", "binary KV wire-protocol listen address; enables networked cluster mode (one local node per process)")
		join        = flag.String("join", "", "seed process's KV address to join (empty makes this process the coordinator seed)")
		clusterSize = flag.Int("cluster-size", 1, "member processes (including the seed) the coordinator waits for before minting the cluster map")
		advertise   = flag.String("advertise", "", "KV address peers should dial (default: the bound -kv-addr)")
		kvHeartbeat = flag.Duration("kv-heartbeat", 500*time.Millisecond, "member heartbeat interval in networked cluster mode")
		kvFailover  = flag.Duration("kv-failover-after", 0, "heartbeat silence before the coordinator fails a member over (default 5 heartbeats)")
		gcPercent   = flag.Int("gc-percent", 300, "Go GC target percentage (GOGC); a memory-first cache holds a large stable resident set that each GC cycle rescans, so the default trades headroom for fewer cycles. The item pager, not the GC, bounds cache memory")
	)
	flag.Parse()

	if *gcPercent > 0 {
		debug.SetGCPercent(*gcPercent)
	}

	if *kvAddr != "" && *nodes != 1 {
		log.Printf("networked cluster mode: each process runs one local node (-nodes %d ignored)", *nodes)
		*nodes = 1
	}

	trace.Default.SetRate(*traceRate)
	trace.Default.SetThreshold("", *traceSlow)

	cluster, err := core.NewCluster(core.Config{
		Dir:                *dir,
		NumVBuckets:        *vbuckets,
		SyncPersist:        *syncWrite,
		FailoverTimeout:    2 * time.Second,
		SlowQueryThreshold: *slowQuery,
		SlowQueryLogSize:   *slowLog,
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Close()

	for i := 0; i < *nodes; i++ {
		id := cmap.NodeID(fmt.Sprintf("node%d", i))
		if _, err := cluster.AddNode(id, cmap.AllServices); err != nil {
			log.Fatalf("add node: %v", err)
		}
	}
	if err := cluster.CreateBucket(*bucket, core.BucketOptions{NumReplicas: *replicas}); err != nil {
		log.Fatalf("create bucket: %v", err)
	}
	log.Printf("cluster up: %d nodes, bucket %q (%d vbuckets, %d replicas), orchestrator %s",
		*nodes, *bucket, *vbuckets, *replicas, cluster.Orchestrator())
	if *traceRate > 0 {
		log.Printf("tracing 1 in %d requests (slow threshold %s); inspect at /traces", *traceRate, *traceSlow)
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}

	// Health watchdog: the standard rule set over this cluster, served
	// at /health. With -auto-failover, a node check held critical for
	// RaiseAfter consecutive ticks triggers the same failover path an
	// operator would hit — the journal records the whole causal chain.
	watchdog := health.New(health.Options{Interval: *healthEvery})
	health.RegisterClusterChecks(watchdog, cluster, health.ClusterCheckConfig{})
	if *autoFailover {
		watchdog.OnTransition(func(st health.CheckStatus) {
			id := health.NodeIDFromCheck(st.Name)
			if id == "" || st.State != health.Critical {
				return
			}
			log.Printf("auto-failover: %s (%s)", id, st.Detail)
			if err := cluster.Failover(id); err != nil {
				log.Printf("auto-failover %s: %v", id, err)
			}
		})
		log.Printf("auto-failover armed (health interval %s)", *healthEvery)
	}
	watchdog.Start()
	defer watchdog.Stop()

	api := rest.NewServer(cluster)
	api.SetHealth(watchdog)

	if *kvAddr != "" {
		node, err := transport.StartNode(transport.NodeOptions{
			Cluster:           cluster,
			LocalNode:         cmap.NodeID("node0"),
			Bucket:            *bucket,
			KVAddr:            *kvAddr,
			Advertise:         *advertise,
			Join:              *join,
			ClusterSize:       *clusterSize,
			HeartbeatInterval: *kvHeartbeat,
			FailoverAfter:     *kvFailover,
			// Peers fetch this node's metrics/health/events/traces over
			// the wire (OpFederate) through the REST layer's Observe.
			Observe: api.Observe,
		})
		if err != nil {
			log.Fatalf("kv transport: %v", err)
		}
		defer node.Close()
		api.SetKVClient(*bucket, core.NewClient(node.Router(), *bucket))
		api.SetTransportStats(func() any { return transport.Stats() })
		api.SetNodeID(node.KVAddr())
		api.SetFederation(node.Federation())
		if *join == "" {
			log.Printf("kv transport on %s (coordinator seed, waiting for %d members)", node.KVAddr(), *clusterSize)
		} else {
			log.Printf("kv transport on %s (joining %s)", node.KVAddr(), *join)
		}
	}
	srv := &http.Server{Addr: *listen, Handler: api}
	go func() {
		log.Printf("listening on %s", *listen)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
	srv.Close()
}

// serveDebug exposes the Go runtime's profiling surface on its own
// listener, kept off the data-plane mux so operators can firewall it
// separately. Registration is explicit (the pprof/expvar import side
// effects target http.DefaultServeMux, which we never serve).
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	log.Printf("debug server (pprof, expvar) on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("debug server: %v", err)
	}
}
