// Command couchvet is the repo-specific static analyzer: it loads
// every package in the module and enforces the concurrency and
// error-handling invariants described in internal/lint (lockblock,
// mixedatomic, unlockedescape, leakedgoroutine, droppederror).
//
// Usage:
//
//	couchvet [-rules r1,r2] [-json] [./... | pkgdir ...]
//
// With no arguments (or `./...`) the whole module is checked. Package
// directory arguments restrict which packages' findings are reported;
// the whole module is still loaded so cross-package types resolve.
// With -json, findings are printed to stdout as one JSON array of
// {file, line, col, rule, message} records — an empty run prints `[]`,
// so downstream formatters (cmd/vetfmt) can tell "clean" from
// "crashed". Exit status: 0 clean, 1 findings, 2 load/usage error.
//
// Deliberate exceptions are annotated in source:
//
//	//couchvet:ignore <rule> -- reason
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"couchgo/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "couchvet:", err)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "couchvet:", err)
		os.Exit(2)
	}

	keep, err := pathFilter(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "couchvet:", err)
		os.Exit(2)
	}

	pkgs, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "couchvet:", err)
		os.Exit(2)
	}
	if keep != nil {
		kept := pkgs[:0]
		for _, p := range pkgs {
			if keep(p.Path) {
				kept = append(kept, p)
			}
		}
		pkgs = kept
	}

	diags := lint.RunAll(pkgs, analyzers)
	if *jsonOut {
		writeJSON(diags)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "couchvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// finding is the -json record shape. Kept flat and stable: cmd/vetfmt
// and CI annotation tooling parse it.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func writeJSON(diags []lint.Diagnostic) {
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, finding{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "couchvet:", err)
		os.Exit(2)
	}
}

func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	if rules == "" {
		return lint.All, nil
	}
	byName := make(map[string]*lint.Analyzer)
	for _, a := range lint.All {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(rules, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// pathFilter maps directory arguments to an import-path predicate.
// `./...` (or no args) means no filter (nil). A trailing /... on a
// directory includes its subtree.
func pathFilter(root string, args []string) (func(string) bool, error) {
	if len(args) == 0 {
		return nil, nil
	}
	exact := make(map[string]bool)
	var prefixes []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return nil, nil
		}
		subtree := strings.HasSuffix(arg, "/...")
		arg = strings.TrimSuffix(arg, "/...")
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("argument %s is outside the module", arg)
		}
		path := lint.ModulePath
		if rel != "." {
			path = lint.ModulePath + "/" + filepath.ToSlash(rel)
		}
		exact[path] = true
		if subtree {
			prefixes = append(prefixes, path+"/")
		}
	}
	return func(path string) bool {
		if exact[path] {
			return true
		}
		for _, pre := range prefixes {
			if strings.HasPrefix(path, pre) {
				return true
			}
		}
		return false
	}, nil
}
