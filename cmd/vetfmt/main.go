// Command vetfmt turns couchvet's -json finding stream into GitHub
// Actions annotations:
//
//	go run ./cmd/couchvet -json ./... | go run ./cmd/vetfmt
//
// Each finding becomes a `::error file=...,line=...::rule: message`
// line, which Actions renders inline on the PR diff. Exit status: 0
// when the input is an empty finding array, 1 when there are
// findings, 2 when stdin is empty or not valid couchvet JSON.
//
// The strictness on malformed input is the point of the pipe: couchvet
// crashing (exit 2, nothing on stdout) must fail the CI step, and a
// shell pipeline's status is the last command's. vetfmt refusing empty
// input means a dead producer cannot masquerade as a clean run.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetfmt: read stdin:", err)
		os.Exit(2)
	}
	if len(strings.TrimSpace(string(data))) == 0 {
		fmt.Fprintln(os.Stderr, "vetfmt: empty input — did couchvet crash? (expected a JSON array, [] when clean)")
		os.Exit(2)
	}
	var findings []finding
	if err := json.Unmarshal(data, &findings); err != nil {
		fmt.Fprintln(os.Stderr, "vetfmt: invalid couchvet JSON:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		// %%0A etc. are not needed: couchvet messages are single-line.
		fmt.Printf("::error file=%s,line=%d,col=%d::%s: %s\n", f.File, f.Line, f.Col, f.Rule, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vetfmt: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
