//go:build clustertest

// Package integration holds process-level cluster tests: they build
// the real cbserver binary, launch several OS processes, and kill one
// with SIGKILL — nothing in-process stands in for the failure. Heavy
// by design, so the package hides behind the clustertest build tag
// and runs via `make cluster-test` (tier-1 stays fast).
package integration

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"couchgo/internal/cache"
	"couchgo/internal/core"
	"couchgo/internal/transport"
)

// freePorts reserves n distinct TCP ports by binding and releasing
// them. A race with other processes is possible but harmless in CI.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	listeners := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		listeners = append(listeners, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return ports
}

// buildServer compiles cbserver once into the test's temp dir.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cbserver")
	cmd := exec.Command("go", "build", "-race", "-o", bin, "couchgo/cmd/cbserver")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build cbserver: %v\n%s", err, out)
	}
	return bin
}

type proc struct {
	cmd    *exec.Cmd
	kvAddr string
	http   string
}

func startProc(t *testing.T, bin string, httpPort, kvPort int, args ...string) *proc {
	t.Helper()
	kvAddr := fmt.Sprintf("127.0.0.1:%d", kvPort)
	base := []string{
		"-listen", fmt.Sprintf("127.0.0.1:%d", httpPort),
		"-kv-addr", kvAddr,
		"-replicas", "1",
		"-vbuckets", "64",
		"-kv-heartbeat", "100ms",
		"-kv-failover-after", "500ms",
		"-dir", t.TempDir(),
	}
	cmd := exec.Command(bin, append(base, args...)...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start cbserver: %v", err)
	}
	p := &proc{cmd: cmd, kvAddr: kvAddr, http: fmt.Sprintf("http://127.0.0.1:%d", httpPort)}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	return p
}

// events fetches one process's journal as raw JSON text.
func (p *proc) events(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(p.http + "/events")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestThreeProcessClusterKill9 is the acceptance run: three cbserver
// processes form a cluster over the binary KV wire protocol, serve
// durable writes (ReplicateTo=1, every ack gated on a cross-process
// replica ack), survive kill -9 of one member through the
// coordinator's auto-failover, and lose no acknowledged write.
func TestThreeProcessClusterKill9(t *testing.T) {
	bin := buildServer(t)
	ports := freePorts(t, 6)

	seed := startProc(t, bin, ports[0], ports[1], "-cluster-size", "3")
	p1 := startProc(t, bin, ports[2], ports[3], "-join", seed.kvAddr)
	p2 := startProc(t, bin, ports[4], ports[5], "-join", seed.kvAddr)
	procs := []*proc{seed, p1, p2}

	// A smart client over the real wire protocol, seeded with the
	// coordinator's KV address; the cluster map arrives in-band.
	pool := transport.NewPool()
	defer pool.Close()
	router := transport.NewRouter("default", []string{seed.kvAddr}, pool)
	cl := core.NewClient(router, "default")
	ctx := context.Background()

	// Formation: durable writes only succeed once the minted map is
	// applied everywhere and replica streams flow between processes.
	waitFor(t, 30*time.Second, "cluster formation (first durable write)", func() bool {
		_, err := cl.SetWithOptions(ctx, "probe", []byte(`{"probe":true}`), 0, 0, 0,
			core.DurabilityOptions{ReplicateTo: 1, Timeout: 2 * time.Second})
		if err != nil {
			router.Invalidate()
		}
		return err == nil
	})

	const writes = 100
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if _, err := cl.SetWithOptions(ctx, key, []byte(fmt.Sprintf(`{"i":%d}`, i)), 0, 0, 0,
			core.DurabilityOptions{ReplicateTo: 1, Timeout: 10 * time.Second}); err != nil {
			t.Fatalf("durable Set %s: %v", key, err)
		}
	}

	// kill -9 a non-coordinator member: no shutdown hooks run, its
	// sockets die mid-stream.
	victim := p1
	if err := victim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	victim.cmd.Wait()

	// Auto-failover: the seed's journal must show the causal chain —
	// the member's health check held critical, then the failover.
	waitFor(t, 30*time.Second, "auto-failover journal entries", func() bool {
		ev := seed.events(t)
		return strings.Contains(ev, "health check member:"+victim.kvAddr) &&
			strings.Contains(ev, "auto-failover: member failed over")
	})

	// The survivor that held the victim's replicas must have promoted
	// them (vb takeover) when the re-minted map arrived.
	waitFor(t, 30*time.Second, "vb takeover on a survivor", func() bool {
		return strings.Contains(seed.events(t), "vb takeover") ||
			strings.Contains(p2.events(t), "vb takeover")
	})

	// No acknowledged write lost: every durable write must still read
	// back through the re-routed map. Retries cover the convergence
	// window while the smart client refreshes its map via NMVB.
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("doc-%d", i)
		var it cache.Item
		var err error
		deadline := time.Now().Add(30 * time.Second)
		for {
			it, err = cl.Get(ctx, key)
			if err == nil || time.Now().After(deadline) {
				break
			}
			router.Invalidate()
			time.Sleep(100 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("Get %s after kill -9: %v", key, err)
		}
		if want := fmt.Sprintf(`{"i":%d}`, i); string(it.Value) != want {
			t.Fatalf("Get %s after kill -9: value %q, want %q", key, it.Value, want)
		}
	}

	// Survivors must still accept durable writes against the reduced
	// replica set (vbuckets that lost their only replica have an empty
	// ack set, so ReplicateTo=1 would block forever; plain writes and
	// persistence must keep working).
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("post-failover-%d", i)
		if _, err := cl.Set(ctx, key, []byte(`{"after":true}`), 0); err != nil {
			t.Fatalf("post-failover Set %s: %v", key, err)
		}
	}

	_ = procs
}
