//go:build clustertest

package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// traceNode mirrors the stitched span tree of GET /traces/{id}.
type traceNode struct {
	Name     string       `json:"name"`
	Node     string       `json:"node"`
	Children []*traceNode `json:"children"`
}

func walkTrace(n *traceNode, visit func(*traceNode)) {
	if n == nil {
		return
	}
	visit(n)
	for _, c := range n.Children {
		walkTrace(c, visit)
	}
}

// TestDistributedTrace is the tentpole acceptance run for wire trace
// propagation: three cbserver processes sampling every request, one
// ReplicateTo=1 write through one node's REST API, and the returned
// trace ID fetched from a DIFFERENT node must come back as a single
// stitched tree whose spans cross all three process boundaries —
// client REST root, active's server:set, replica's replica:apply.
func TestDistributedTrace(t *testing.T) {
	bin := buildServer(t)
	ports := freePorts(t, 6)

	seed := startProc(t, bin, ports[0], ports[1], "-cluster-size", "3", "-trace-rate", "1")
	p1 := startProc(t, bin, ports[2], ports[3], "-join", seed.kvAddr, "-trace-rate", "1")
	p2 := startProc(t, bin, ports[4], ports[5], "-join", seed.kvAddr, "-trace-rate", "1")
	all := map[string]bool{seed.kvAddr: true, p1.kvAddr: true, p2.kvAddr: true}

	client := &http.Client{Timeout: 15 * time.Second}

	put := func(key string) (traceID string, ok bool) {
		req, err := http.NewRequest(http.MethodPut,
			seed.http+"/buckets/default/docs/"+key+"?replicate_to=1",
			bytes.NewReader([]byte(`{"traced":true}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", false
		}
		return resp.Header.Get("X-Trace-Id"), true
	}

	// Formation: a durable REST write through the seed only succeeds
	// once the map is minted and replica streams flow.
	waitFor(t, 30*time.Second, "cluster formation (first durable REST write)", func() bool {
		_, ok := put("probe")
		return ok
	})

	// The key's vBucket placement decides which processes the write
	// crosses; roughly a third of keys route client → active →
	// replica across three distinct processes. Hunt for one, fetching
	// each stitched trace from a node that did NOT serve the REST
	// write.
	var lastNodes []string
	found := false
	for i := 0; i < 200 && !found; i++ {
		id, ok := put(fmt.Sprintf("traced-%d", i))
		if !ok || id == "" {
			continue
		}
		resp, err := client.Get(p2.http + "/traces/" + id)
		if err != nil {
			continue
		}
		var out struct {
			Nodes []string   `json:"nodes"`
			Spans *traceNode `json:"spans"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		lastNodes = out.Nodes

		spanNodes := map[string]bool{}
		names := map[string]bool{}
		walkTrace(out.Spans, func(n *traceNode) {
			if n.Node != "" {
				spanNodes[n.Node] = true
			}
			names[n.Name] = true
		})
		if len(spanNodes) < 3 {
			continue
		}
		for n := range spanNodes {
			if !all[n] {
				t.Fatalf("stitched tree names unknown node %q (members %v)", n, all)
			}
		}
		if out.Spans == nil || out.Spans.Name != "rest:put" {
			t.Fatalf("stitched root is %+v, want the client's rest:put", out.Spans)
		}
		if !names["replica:apply"] {
			t.Fatalf("three-process trace missing replica:apply: %v", names)
		}
		found = true
	}
	if !found {
		t.Fatalf("no write produced a three-process stitched trace (last contributing nodes: %v)", lastNodes)
	}

	// Federation sanity on the same cluster: /cluster/metrics from any
	// node labels a series payload for every live member.
	resp, err := client.Get(p1.http + "/cluster/metrics")
	if err != nil {
		t.Fatalf("/cluster/metrics: %v", err)
	}
	defer resp.Body.Close()
	var cm struct {
		Nodes  map[string]json.RawMessage `json:"nodes"`
		Errors map[string]string          `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cm); err != nil {
		t.Fatalf("/cluster/metrics decode: %v", err)
	}
	if len(cm.Errors) > 0 {
		t.Fatalf("/cluster/metrics errors: %v", cm.Errors)
	}
	for addr := range all {
		if _, ok := cm.Nodes[addr]; !ok {
			t.Fatalf("/cluster/metrics missing member %s (have %d nodes)", addr, len(cm.Nodes))
		}
	}
}
