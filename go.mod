module couchgo

go 1.22
