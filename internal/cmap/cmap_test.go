package cmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVBucketIDDeterministicAndInRange(t *testing.T) {
	f := func(key string) bool {
		a := VBucketID(key, NumVBuckets)
		b := VBucketID(key, NumVBuckets)
		return a == b && a >= 0 && a < NumVBuckets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVBucketIDSpread(t *testing.T) {
	// Keys should spread over partitions reasonably evenly.
	counts := make([]int, 64)
	r := rand.New(rand.NewSource(1))
	n := 64 * 200
	for i := 0; i < n; i++ {
		key := "doc-" + string(rune('a'+r.Intn(26))) + string(rune('a'+r.Intn(26))) + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) + string(rune('0'+(i/100)%10)) + string(rune('0'+(i/1000)%10))
		counts[VBucketID(key, 64)]++
	}
	for vb, c := range counts {
		if c == 0 {
			t.Errorf("vbucket %d received no keys out of %d", vb, n)
		}
	}
}

func TestBuildBalancedInvariants(t *testing.T) {
	nodes := []NodeID{"n1", "n2", "n3", "n4"}
	m := BuildBalanced(1, nodes, 64, 2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumReplicas != 2 {
		t.Fatalf("NumReplicas = %d", m.NumReplicas)
	}
	// Actives are evenly spread: 64/4 = 16 each.
	for _, n := range nodes {
		if got := len(m.ActiveVBuckets(n)); got != 16 {
			t.Errorf("node %s has %d actives, want 16", n, got)
		}
		if got := len(m.ReplicaVBuckets(n)); got != 32 {
			t.Errorf("node %s has %d replicas, want 32", n, got)
		}
	}
}

func TestBuildBalancedClampsReplicas(t *testing.T) {
	m := BuildBalanced(1, []NodeID{"a", "b"}, 16, 3)
	if m.NumReplicas != 1 {
		t.Errorf("replicas should clamp to nodes-1, got %d", m.NumReplicas)
	}
	m = BuildBalanced(1, []NodeID{"a"}, 16, 3)
	if m.NumReplicas != 0 {
		t.Errorf("single node should have 0 replicas, got %d", m.NumReplicas)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m = BuildBalanced(1, []NodeID{"a", "b", "c", "d", "e", "f"}, 16, 9)
	if m.NumReplicas != MaxReplicas {
		t.Errorf("replicas should clamp to MaxReplicas, got %d", m.NumReplicas)
	}
}

func TestActiveAndReplicasDisjoint(t *testing.T) {
	m := BuildBalanced(1, []NodeID{"a", "b", "c"}, 48, 2)
	for vb := 0; vb < 48; vb++ {
		act := m.Active(vb)
		for _, r := range m.Replicas(vb) {
			if r == act {
				t.Fatalf("vb %d replica on same node as active", vb)
			}
		}
		if len(m.Replicas(vb)) != 2 {
			t.Fatalf("vb %d has %d replicas", vb, len(m.Replicas(vb)))
		}
	}
}

func TestNodeForKey(t *testing.T) {
	m := BuildBalanced(1, []NodeID{"a", "b", "c", "d"}, NumVBuckets, 1)
	node, vb := m.NodeForKey("user::1234")
	if node == "" {
		t.Fatal("no node for key")
	}
	if m.Active(vb) != node {
		t.Fatal("NodeForKey disagrees with Active")
	}
}

func TestFailoverPromotesReplica(t *testing.T) {
	m := BuildBalanced(1, []NodeID{"a", "b", "c"}, 24, 1)
	after := m.FailoverNode("b")
	if after.Rev != m.Rev+1 {
		t.Errorf("failover should bump rev: %d -> %d", m.Rev, after.Rev)
	}
	for vb := 0; vb < 24; vb++ {
		if m.Active(vb) == "b" {
			// Replica must have been promoted.
			want := m.Replicas(vb)[0]
			if got := after.Active(vb); got != want {
				t.Errorf("vb %d active after failover = %s, want promoted replica %s", vb, got, want)
			}
		} else if after.Active(vb) != m.Active(vb) {
			t.Errorf("vb %d active changed though node was alive", vb)
		}
		for _, r := range after.Replicas(vb) {
			if r == "b" {
				t.Errorf("vb %d still has replica on failed node", vb)
			}
		}
	}
}

func TestFailoverUnknownNodeIsNoop(t *testing.T) {
	m := BuildBalanced(1, []NodeID{"a", "b"}, 8, 1)
	after := m.FailoverNode("zz")
	for vb := 0; vb < 8; vb++ {
		if after.Active(vb) != m.Active(vb) {
			t.Fatal("unknown-node failover changed actives")
		}
	}
}

func TestFailoverLastCopyLost(t *testing.T) {
	m := BuildBalanced(1, []NodeID{"solo"}, 8, 0)
	after := m.FailoverNode("solo")
	for vb := 0; vb < 8; vb++ {
		if after.Active(vb) != "" {
			t.Fatal("active should be gone when last copy fails")
		}
	}
}

func TestDiffMoves(t *testing.T) {
	before := BuildBalanced(1, []NodeID{"a", "b"}, 16, 1)
	after := BuildBalanced(2, []NodeID{"a", "b", "c"}, 16, 1)
	moves := DiffMoves(before, after)
	if len(moves) == 0 {
		t.Fatal("adding a node must produce moves")
	}
	toC := 0
	for _, mv := range moves {
		if mv.To == "c" {
			toC++
		}
		if mv.To == mv.From {
			t.Errorf("self-move emitted: %+v", mv)
		}
	}
	if toC == 0 {
		t.Error("no moves landed on the new node")
	}
	// A no-op diff yields no moves.
	if n := len(DiffMoves(after, after)); n != 0 {
		t.Errorf("self-diff produced %d moves", n)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := BuildBalanced(1, []NodeID{"a", "b"}, 8, 1)
	cp := m.Clone()
	cp.Chains[0][0] = -1
	if m.Chains[0][0] == -1 {
		t.Fatal("Clone shares chain storage")
	}
}

func TestServiceSet(t *testing.T) {
	ss := ServiceSet(ServiceData | ServiceQuery)
	if !ss.Has(ServiceData) || !ss.Has(ServiceQuery) || ss.Has(ServiceIndex) {
		t.Error("ServiceSet.Has wrong")
	}
	if ss.String() != "data,query" {
		t.Errorf("String() = %q", ss.String())
	}
	if ServiceSet(0).String() != "none" {
		t.Error("empty set should print none")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := BuildBalanced(1, []NodeID{"a", "b", "c"}, 8, 1)
	m.Chains[3] = []int{0, 0}
	if m.Validate() == nil {
		t.Error("repeated node in chain should fail validation")
	}
	m = BuildBalanced(1, []NodeID{"a"}, 8, 0)
	m.Chains[0][0] = 7
	if m.Validate() == nil {
		t.Error("out-of-range index should fail validation")
	}
}

// TestQuickBalancedMapsAreValidAndFair: for arbitrary node counts and
// replica requests, BuildBalanced yields a structurally valid map with
// actives spread within one vBucket of perfectly even.
func TestQuickBalancedMapsAreValidAndFair(t *testing.T) {
	f := func(nNodes, nReplicas uint8) bool {
		n := int(nNodes%12) + 1
		r := int(nReplicas % 5)
		var nodes []NodeID
		for i := 0; i < n; i++ {
			nodes = append(nodes, NodeID(rune('a'+i)))
		}
		m := BuildBalanced(1, nodes, 96, r)
		if err := m.Validate(); err != nil {
			t.Logf("invalid: %v", err)
			return false
		}
		min, max := 1<<30, 0
		for _, id := range nodes {
			c := len(m.ActiveVBuckets(id))
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Logf("unfair: %d..%d actives over %d nodes", min, max, n)
			return false
		}
		// Failover of any node keeps the map valid.
		after := m.FailoverNode(nodes[0])
		return after.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
