// Package cmap implements the cluster map: the assignment of the
// bucket's 1024 logical partitions (vBuckets) to cluster nodes, the
// CRC32 key-hashing scheme smart clients use to route requests
// (paper §4.1, Figure 5), and the balanced-map computation the
// orchestrator uses for rebalance (§4.3.1).
package cmap

import (
	"fmt"
	"hash/crc32"
	"sort"
)

// NumVBuckets is the fixed partition count of a Couchbase bucket. The
// paper: "Each bucket is split into 1024 logical partitions called
// vBuckets. This is not a configurable number." We keep it configurable
// in Map for unit tests but default to this constant everywhere else.
const NumVBuckets = 1024

// MaxReplicas is the maximum replica count: "A bucket can be replicated
// up to 3 times, giving the user up to 4 copies of their data."
const MaxReplicas = 3

// NodeID identifies a cluster node (host:port or a symbolic name).
type NodeID string

// Service identifies one of the multi-dimensional-scaling services a
// node can run (§4.4).
type Service int

const (
	ServiceData Service = 1 << iota
	ServiceIndex
	ServiceQuery
	ServiceFTS
	ServiceAnalytics
)

// ServiceSet is a bitmask of services.
type ServiceSet int

// Has reports whether the set contains s.
func (ss ServiceSet) Has(s Service) bool { return int(ss)&int(s) != 0 }

// String lists the services in the set.
func (ss ServiceSet) String() string {
	names := []struct {
		s Service
		n string
	}{
		{ServiceData, "data"}, {ServiceIndex, "index"}, {ServiceQuery, "query"},
		{ServiceFTS, "fts"}, {ServiceAnalytics, "analytics"},
	}
	out := ""
	for _, e := range names {
		if ss.Has(e.s) {
			if out != "" {
				out += ","
			}
			out += e.n
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// AllServices is the uniform "every service on every node" topology.
const AllServices = ServiceSet(ServiceData | ServiceIndex | ServiceQuery | ServiceFTS | ServiceAnalytics)

// VBucketID computes the partition for a document key. This is the
// memcached/Couchbase scheme: CRC32 of the key, upper 16 bits, masked,
// modulo the partition count, so any client in any language agrees.
func VBucketID(key string, numVBuckets int) int {
	crc := crc32.ChecksumIEEE([]byte(key))
	return int((crc>>16)&0x7fff) % numVBuckets
}

// Map is a versioned assignment of vBuckets to nodes. Index 0 of each
// chain is the active copy; the rest are replicas (-1 = no copy).
// Maps are immutable once published; rebalance builds a new Map with a
// higher Rev and streams it to nodes and smart clients.
type Map struct {
	Rev         int64
	NumVBuckets int
	NumReplicas int
	// Nodes running the data service, in a stable order.
	Nodes []NodeID
	// Chains[vb][0] = active node index into Nodes, Chains[vb][1..] =
	// replica node indexes; -1 means the copy does not exist.
	Chains [][]int
}

// Clone returns a deep copy with the same Rev.
func (m *Map) Clone() *Map {
	cp := &Map{
		Rev:         m.Rev,
		NumVBuckets: m.NumVBuckets,
		NumReplicas: m.NumReplicas,
		Nodes:       append([]NodeID(nil), m.Nodes...),
		Chains:      make([][]int, len(m.Chains)),
	}
	for i, c := range m.Chains {
		cp.Chains[i] = append([]int(nil), c...)
	}
	return cp
}

// Active returns the node holding the active copy of vb, or "" if none.
func (m *Map) Active(vb int) NodeID {
	if vb < 0 || vb >= len(m.Chains) {
		return ""
	}
	i := m.Chains[vb][0]
	if i < 0 || i >= len(m.Nodes) {
		return ""
	}
	return m.Nodes[i]
}

// Replicas returns the nodes holding replica copies of vb.
func (m *Map) Replicas(vb int) []NodeID {
	if vb < 0 || vb >= len(m.Chains) {
		return nil
	}
	var out []NodeID
	for _, i := range m.Chains[vb][1:] {
		if i >= 0 && i < len(m.Nodes) {
			out = append(out, m.Nodes[i])
		}
	}
	return out
}

// NodeForKey routes a key to the node holding its active vBucket.
func (m *Map) NodeForKey(key string) (NodeID, int) {
	vb := VBucketID(key, m.NumVBuckets)
	return m.Active(vb), vb
}

// ActiveVBuckets returns the vBuckets whose active copy lives on node.
func (m *Map) ActiveVBuckets(node NodeID) []int {
	var out []int
	for vb := range m.Chains {
		if m.Active(vb) == node {
			out = append(out, vb)
		}
	}
	return out
}

// ReplicaVBuckets returns the vBuckets with a replica copy on node.
func (m *Map) ReplicaVBuckets(node NodeID) []int {
	var out []int
	for vb := range m.Chains {
		for _, r := range m.Replicas(vb) {
			if r == node {
				out = append(out, vb)
				break
			}
		}
	}
	return out
}

func (m *Map) nodeIndex(n NodeID) int {
	for i, id := range m.Nodes {
		if id == n {
			return i
		}
	}
	return -1
}

// BuildBalanced computes an even assignment of actives and replicas
// over nodes. Actives are striped round-robin; replica i of vBucket vb
// goes to the (i+1)-th next node in the ring, so no chain repeats a
// node. numReplicas is clamped to MaxReplicas and to len(nodes)-1.
func BuildBalanced(rev int64, nodes []NodeID, numVBuckets, numReplicas int) *Map {
	sorted := append([]NodeID(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if numReplicas > MaxReplicas {
		numReplicas = MaxReplicas
	}
	if numReplicas > len(sorted)-1 {
		numReplicas = len(sorted) - 1
	}
	if numReplicas < 0 {
		numReplicas = 0
	}
	m := &Map{
		Rev:         rev,
		NumVBuckets: numVBuckets,
		NumReplicas: numReplicas,
		Nodes:       sorted,
		Chains:      make([][]int, numVBuckets),
	}
	n := len(sorted)
	for vb := 0; vb < numVBuckets; vb++ {
		chain := make([]int, numReplicas+1)
		if n == 0 {
			for i := range chain {
				chain[i] = -1
			}
		} else {
			for i := range chain {
				chain[i] = (vb + i) % n
			}
		}
		m.Chains[vb] = chain
	}
	return m
}

// FailoverNode produces a successor map with node removed: for every
// vBucket whose active lived on node, the first live replica is
// promoted ("the cluster will promote one of the replica partitions to
// active status"); replica slots on node are vacated. vBuckets with no
// surviving copy keep an empty (-1) chain — data loss, as in the real
// system when replicas are exhausted.
func (m *Map) FailoverNode(node NodeID) *Map {
	out := m.Clone()
	out.Rev++
	dead := out.nodeIndex(node)
	if dead < 0 {
		return out
	}
	for vb, chain := range out.Chains {
		// Drop the dead node from the chain, preserving order.
		nc := make([]int, 0, len(chain))
		for _, idx := range chain {
			if idx != dead {
				nc = append(nc, idx)
			}
		}
		for len(nc) < len(chain) {
			nc = append(nc, -1)
		}
		out.Chains[vb] = nc
	}
	return out
}

// Moves describes one vBucket transfer computed by diffing two maps.
type Move struct {
	VB   int
	From NodeID // "" when the copy is newly created
	To   NodeID
	// Position in the chain at the destination: 0 = active, >0 replica.
	Position int
}

// DiffMoves lists the transfers needed to get from m to target. A move
// is emitted for every (vb, position) whose node changes.
func DiffMoves(m, target *Map) []Move {
	var moves []Move
	for vb := 0; vb < target.NumVBuckets && vb < m.NumVBuckets; vb++ {
		tc := target.Chains[vb]
		for pos := 0; pos < len(tc); pos++ {
			var from, to NodeID
			if pos < len(m.Chains[vb]) && m.Chains[vb][pos] >= 0 && m.Chains[vb][pos] < len(m.Nodes) {
				from = m.Nodes[m.Chains[vb][pos]]
			}
			if tc[pos] >= 0 && tc[pos] < len(target.Nodes) {
				to = target.Nodes[tc[pos]]
			}
			if to != "" && to != from {
				moves = append(moves, Move{VB: vb, From: from, To: to, Position: pos})
			}
		}
	}
	return moves
}

// Validate checks structural invariants: chain lengths, index bounds,
// and no node repeated within a chain. It returns the first violation.
func (m *Map) Validate() error {
	if len(m.Chains) != m.NumVBuckets {
		return fmt.Errorf("cmap: %d chains for %d vbuckets", len(m.Chains), m.NumVBuckets)
	}
	for vb, chain := range m.Chains {
		if len(chain) != m.NumReplicas+1 {
			return fmt.Errorf("cmap: vb %d chain length %d, want %d", vb, len(chain), m.NumReplicas+1)
		}
		seen := map[int]bool{}
		for _, idx := range chain {
			if idx < -1 || idx >= len(m.Nodes) {
				return fmt.Errorf("cmap: vb %d node index %d out of range", vb, idx)
			}
			if idx >= 0 {
				if seen[idx] {
					return fmt.Errorf("cmap: vb %d repeats node %d in chain", vb, idx)
				}
				seen[idx] = true
			}
		}
	}
	return nil
}
