// Package metrics is the observability substrate of the cluster:
// allocation-free atomic counters, gauges, and fixed-bucket log₂
// latency histograms with quantile extraction. The hot path (Inc,
// Add, Observe) takes no locks and allocates nothing; all aggregation
// happens snapshot-on-read.
//
// The paper's headline claims are quantitative — "1-3 ms latency at
// very high throughput" (§1), replication ≪ persistence on the
// durability ladder (§2.3.2) — and a memory-first system is operated
// by watching residency, drain queues, and stream lag. This package
// is what the rest of the system reports those numbers through; the
// REST layer exposes it as Prometheus text (`GET /metrics`) and
// structured JSON (`GET /stats/detail`).
package metrics

import (
	"math/bits"
	rand "math/rand/v2"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// SetMax raises the gauge to v if v is greater — a monotone
// high-watermark update safe under concurrent writers.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// numBuckets covers raw values up to 2^39-1; in nanoseconds that is
// ~9.2 minutes, far beyond any latency this system produces. Larger
// values clamp into the last bucket.
const numBuckets = 40

// Histogram is a fixed-bucket log₂ histogram. Bucket i counts raw
// values v with bits.Len64(v) == i, i.e. v ∈ [2^(i-1), 2^i) (bucket 0
// holds only v == 0). Observations are single atomic adds; there is
// no lock and no allocation. Duration histograms record nanoseconds;
// plain value histograms (batch sizes, row counts) record the value
// itself — the scale field maps raw units to exposition units.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // raw units (ns for duration histograms)
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
	// scale converts raw units to exposition units: 1e-9 for
	// nanoseconds→seconds, 1 for plain values. Set at construction,
	// read-only afterwards.
	scale float64
}

// NewHistogram returns a standalone duration histogram (ns→seconds),
// unattached to any registry. Use Registry.Histogram for exported
// metrics.
func NewHistogram() *Histogram { return &Histogram{scale: 1e-9} }

func bucketIndex(v uint64) int {
	i := bits.Len64(v)
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return i
}

// Observe records a duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.ObserveValue(uint64(d))
}

// ObserveSince records the elapsed time since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// ObserveValue records a raw value.
func (h *Histogram) ObserveValue(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram. Reads of the
// live histogram are not atomic with respect to each other, so a
// snapshot taken under concurrent writes may be off by in-flight
// observations — fine for monitoring.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64 // raw units
	Max     uint64 // raw units
	Buckets [numBuckets]uint64
	Scale   float64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		Scale: h.scale,
	}
	if s.Scale == 0 {
		s.Scale = 1
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns the q-th quantile (clamped to [0, 1]) in raw
// units, linearly interpolated within the log₂ bucket holding the
// rank. Edge cases are exact rather than interpolated: an empty
// histogram returns 0, q >= 1 (or a single observation) returns the
// tracked maximum, and q <= 0 returns the lower bound of the first
// populated bucket.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 || s.Count == 1 {
		// The true maximum is tracked exactly; interpolating within
		// the top bucket would only blur it.
		return float64(s.Max)
	}
	if q < 0 {
		q = 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := bucketBounds(i)
			est := lo + (hi-lo)*(rank-cum)/float64(n)
			// The true maximum tightens the estimate: no observation
			// exceeds it (Max is 0 when every observation was 0, so
			// the clamp must apply at zero too).
			if m := float64(s.Max); est > m {
				est = m
			}
			return est
		}
		cum = next
	}
	return float64(s.Max)
}

// QuantileDuration is Quantile for nanosecond histograms.
func (s *HistSnapshot) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}

// MaxDuration returns the maximum observation of a ns histogram.
func (s *HistSnapshot) MaxDuration() time.Duration { return time.Duration(s.Max) }

// Mean returns the mean observation in raw units (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketBounds returns the [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (i - 1)), float64(uint64(1) << i)
}

// upperBound returns the inclusive upper bound of bucket i (the
// largest raw value it can hold), used as the Prometheus `le` edge.
func upperBound(i int) uint64 {
	if i >= numBuckets-1 {
		return 1<<63 - 1
	}
	return uint64(1)<<i - 1
}

// sampleMask enables 1-in-16 sampling for hot-path latency timing:
// two clock reads plus a histogram observation cost ~70ns, which is
// material against a ~400ns cache hit. Uniform random sampling leaves
// latency quantiles unbiased; histogram counts reflect samples, not
// ops (op totals come from counters).
const sampleMask = 15

// Sample reports whether this operation should be timed, returning
// the start timestamp when it should. The fast path is one cheap
// per-thread random draw and a mask.
func Sample() (time.Time, bool) {
	if rand.Uint64()&sampleMask != 0 {
		return time.Time{}, false
	}
	return time.Now(), true
}
