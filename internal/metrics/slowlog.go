package metrics

import (
	"sync"
	"time"
)

// SlowQuery is one entry in the slow-query log.
type SlowQuery struct {
	Statement string        `json:"statement"`
	Elapsed   time.Duration `json:"-"`
	ElapsedMS float64       `json:"elapsed_ms"`
	At        time.Time     `json:"at"`
}

// SlowQueryLog is a bounded ring buffer of queries that exceeded a
// threshold. Fast queries pay one comparison; slow ones take a short
// mutex — by definition off the fast path.
type SlowQueryLog struct {
	threshold time.Duration
	mu        sync.Mutex
	buf       []SlowQuery
	next      int // ring write position
	total     uint64
}

// NewSlowQueryLog returns a log keeping the most recent size entries
// at or above threshold. size <= 0 defaults to 64; threshold <= 0
// defaults to 100ms.
func NewSlowQueryLog(threshold time.Duration, size int) *SlowQueryLog {
	if size <= 0 {
		size = 64
	}
	if threshold <= 0 {
		threshold = 100 * time.Millisecond
	}
	return &SlowQueryLog{threshold: threshold, buf: make([]SlowQuery, 0, size)}
}

// Threshold returns the configured slowness cutoff.
func (l *SlowQueryLog) Threshold() time.Duration { return l.threshold }

// Observe records stmt if elapsed crossed the threshold, reporting
// whether it did.
func (l *SlowQueryLog) Observe(stmt string, elapsed time.Duration) bool {
	if elapsed < l.threshold {
		return false
	}
	e := SlowQuery{
		Statement: stmt,
		Elapsed:   elapsed,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		At:        time.Now(),
	}
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.total++
	l.mu.Unlock()
	return true
}

// Total returns how many queries ever crossed the threshold,
// including ones the ring has since overwritten.
func (l *SlowQueryLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns the retained slow queries, most recent first.
func (l *SlowQueryLog) Entries() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, len(l.buf))
	// Newest entry is just before the ring write position.
	for i := 0; i < len(l.buf); i++ {
		idx := (l.next - 1 - i + len(l.buf)) % len(l.buf)
		out = append(out, l.buf[idx])
	}
	return out
}
