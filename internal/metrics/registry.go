package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind distinguishes metric families in the registry.
type Kind uint8

// Metric kinds, mirroring the Prometheus TYPE line.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type series struct {
	labels string // rendered `{k="v",...}` with keys sorted, or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type family struct {
	kind   Kind
	series map[string]*series
}

// Registry is a get-or-create store of named metric families. Lookup
// takes a mutex, so callers hold the returned handle in a package
// variable rather than re-resolving on the hot path.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// Default is the process-wide registry every service instruments
// into. Multiple in-process clusters (tests, embedded use) share it;
// counters are monotone so shared accumulation stays Prometheus-safe.
var Default = NewRegistry()

func (r *Registry) get(name string, kind Kind, labels []string) *series {
	ls := LabelString(labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{kind: kind, series: map[string]*series{}}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = &Histogram{scale: 1e-9}
		}
		f.series[ls] = s
	}
	return s
}

// Counter returns the counter with the given name and label pairs,
// creating it on first use. Labels are alternating key, value.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.get(name, KindCounter, labels).c
}

// Gauge returns the gauge with the given name and label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.get(name, KindGauge, labels).g
}

// Histogram returns the duration histogram (nanoseconds in, seconds
// out) with the given name and label pairs.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.get(name, KindHistogram, labels).h
}

// ValueHistogram returns a unitless histogram (batch sizes, row
// counts): raw values are exposed as-is rather than scaled to
// seconds. Record through ObserveValue.
func (r *Registry) ValueHistogram(name string, labels ...string) *Histogram {
	h := r.get(name, KindHistogram, labels).h
	h.scale = 1
	return h
}

// LabelString renders alternating key, value pairs as a Prometheus
// label block `{k="v",...}` with keys sorted, or "" for no labels.
func LabelString(labels ...string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("metrics: odd label list")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteTo dumps every registered metric in Prometheus text exposition
// format, families sorted by name, series sorted by label string.
func (r *Registry) WriteTo(tw *TextWriter) {
	type snap struct {
		name   string
		kind   Kind
		series []*series
	}
	r.mu.Lock()
	fams := make([]snap, 0, len(r.fams))
	for name, f := range r.fams {
		sn := snap{name: name, kind: f.kind}
		for _, s := range f.series {
			sn.series = append(sn.series, s)
		}
		sort.Slice(sn.series, func(i, j int) bool { return sn.series[i].labels < sn.series[j].labels })
		fams = append(fams, sn)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		for _, s := range f.series {
			switch f.kind {
			case KindCounter:
				tw.Counter(f.name, s.labels, s.c.Value())
			case KindGauge:
				tw.Gauge(f.name, s.labels, float64(s.g.Value()))
			case KindHistogram:
				tw.Histogram(f.name, s.labels, s.h.Snapshot())
			}
		}
	}
}

// HistogramStats is the JSON form of a histogram snapshot. All
// quantile fields are in exposition units (seconds for duration
// histograms, raw for value histograms).
type HistogramStats struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// Stats converts a snapshot to its JSON form.
func (s HistSnapshot) Stats() HistogramStats {
	return HistogramStats{
		Count: s.Count,
		Sum:   float64(s.Sum) * s.Scale,
		Mean:  s.Mean() * s.Scale,
		P50:   s.Quantile(0.50) * s.Scale,
		P95:   s.Quantile(0.95) * s.Scale,
		P99:   s.Quantile(0.99) * s.Scale,
		P999:  s.Quantile(0.999) * s.Scale,
		Max:   float64(s.Max) * s.Scale,
	}
}

// Snapshot returns the registry as a JSON-marshalable tree:
// name → label string → value (number for counters/gauges,
// HistogramStats for histograms).
func (r *Registry) Snapshot() map[string]map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]map[string]any, len(r.fams))
	for name, f := range r.fams {
		m := make(map[string]any, len(f.series))
		for ls, s := range f.series {
			switch f.kind {
			case KindCounter:
				m[ls] = s.c.Value()
			case KindGauge:
				m[ls] = s.g.Value()
			case KindHistogram:
				m[ls] = s.h.Snapshot().Stats()
			}
		}
		out[name] = m
	}
	return out
}

// TextWriter emits Prometheus text exposition format. It writes each
// family's `# TYPE` line exactly once, so registry output and
// scrape-time computed gauges (DCP lag, queue depths) can share one
// writer without duplicate headers.
type TextWriter struct {
	w     io.Writer
	typed map[string]Kind
	err   error
}

// NewTextWriter wraps w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: w, typed: map[string]Kind{}}
}

// Err returns the first write error, if any.
func (t *TextWriter) Err() error { return t.err }

func (t *TextWriter) printf(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

func (t *TextWriter) typeLine(name string, kind Kind) {
	if prev, ok := t.typed[name]; ok {
		if prev != kind {
			t.err = fmt.Errorf("metrics: %s written as both %s and %s", name, prev, kind)
		}
		return
	}
	t.typed[name] = kind
	t.printf("# TYPE %s %s\n", name, kind)
}

// Counter writes one counter sample. labels is a pre-rendered label
// block from LabelString (or "").
func (t *TextWriter) Counter(name, labels string, v uint64) {
	t.typeLine(name, KindCounter)
	t.printf("%s%s %d\n", name, labels, v)
}

// Gauge writes one gauge sample.
func (t *TextWriter) Gauge(name, labels string, v float64) {
	t.typeLine(name, KindGauge)
	t.printf("%s%s %s\n", name, labels, formatFloat(v))
}

// Histogram writes one histogram series: cumulative `_bucket` lines
// up to the highest populated bucket, then `+Inf`, `_sum`, `_count`.
func (t *TextWriter) Histogram(name, labels string, s HistSnapshot) {
	t.typeLine(name, KindHistogram)
	last := -1
	for i, n := range s.Buckets {
		if n > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += s.Buckets[i]
		le := formatFloat(float64(upperBound(i)) * s.Scale)
		t.printf("%s_bucket%s %d\n", name, withLabel(labels, "le", le), cum)
	}
	t.printf("%s_bucket%s %d\n", name, withLabel(labels, "le", "+Inf"), s.Count)
	t.printf("%s_sum%s %s\n", name, labels, formatFloat(float64(s.Sum)*s.Scale))
	t.printf("%s_count%s %d\n", name, labels, s.Count)
}

// withLabel appends one extra label pair to a pre-rendered block.
func withLabel(labels, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
