package metrics

import (
	"bufio"
	"fmt"
	"math"
	rand "math/rand/v2"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter: %d", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge: %d", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram()
	h.ObserveValue(0)
	h.ObserveValue(1)
	h.ObserveValue(2)
	h.ObserveValue(3)
	h.ObserveValue(1024)
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1030 || s.Max != 1024 {
		t.Fatalf("snapshot: %+v", s)
	}
	// 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 1024 → bucket 11.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 11: 1}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Errorf("bucket %d: got %d want %d", i, n, want[i])
		}
	}
}

func TestHistogramClampsToLastBucket(t *testing.T) {
	h := NewHistogram()
	h.ObserveValue(math.MaxUint64)
	s := h.Snapshot()
	if s.Buckets[numBuckets-1] != 1 {
		t.Fatalf("huge value not clamped: %v", s.Buckets)
	}
	h.Observe(-time.Second)
	if s := h.Snapshot(); s.Buckets[0] != 1 {
		t.Fatalf("negative duration not clamped to zero: %v", s.Buckets)
	}
}

// Quantiles of a log₂ histogram are interpolated within a bucket, so
// the estimate can be off by at most the bucket width: the true value
// and estimate always share a factor-of-2 bracket.
func TestQuantileKnownDistributions(t *testing.T) {
	t.Run("uniform", func(t *testing.T) {
		h := NewHistogram()
		for v := uint64(1); v <= 100000; v++ {
			h.ObserveValue(v)
		}
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
			truth := q * 100000
			got := s.Quantile(q)
			if got < truth/2 || got > truth*2 {
				t.Errorf("q=%v: got %v, truth %v", q, got, truth)
			}
		}
		if s.Quantile(1) != 100000 {
			t.Errorf("p100 should be the max: %v", s.Quantile(1))
		}
	})
	t.Run("bimodal", func(t *testing.T) {
		// 90 fast ops at 1µs, 10 slow ops at 1ms: p50 must sit in
		// the fast mode's bucket, p95 and p99 in the slow mode's.
		h := NewHistogram()
		for i := 0; i < 90; i++ {
			h.Observe(time.Microsecond)
		}
		for i := 0; i < 10; i++ {
			h.Observe(time.Millisecond)
		}
		s := h.Snapshot()
		if p50 := s.QuantileDuration(0.5); p50 < 512*time.Nanosecond || p50 > 1024*time.Nanosecond {
			t.Errorf("p50: %v", p50)
		}
		if p99 := s.QuantileDuration(0.99); p99 < 512*time.Microsecond || p99 > 1048*time.Microsecond {
			t.Errorf("p99: %v", p99)
		}
		if s.MaxDuration() != time.Millisecond {
			t.Errorf("max: %v", s.MaxDuration())
		}
	})
	t.Run("exponential", func(t *testing.T) {
		r := rand.New(rand.NewPCG(1, 2))
		h := NewHistogram()
		const mean = 50000.0 // 50µs
		for i := 0; i < 200000; i++ {
			h.ObserveValue(uint64(r.ExpFloat64() * mean))
		}
		s := h.Snapshot()
		for _, c := range []struct{ q, truth float64 }{
			{0.5, mean * math.Ln2},
			{0.95, mean * math.Log(20)},
			{0.99, mean * math.Log(100)},
		} {
			got := s.Quantile(c.q)
			if got < c.truth/2 || got > c.truth*2 {
				t.Errorf("q=%v: got %v, truth %v", c.q, got, c.truth)
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		h := NewHistogram()
		s := h.Snapshot()
		if s.Quantile(0.99) != 0 || s.Mean() != 0 {
			t.Error("empty histogram should report zeros")
		}
	})
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.ObserveValue(uint64(g*10000 + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 80000 {
		t.Fatalf("count: %d", s.Count)
	}
	if s.Max != 79999 {
		t.Fatalf("max: %d", s.Max)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("ops_total", "op", "get")
	c2 := r.Counter("ops_total", "op", "get")
	if c1 != c2 {
		t.Fatal("same name+labels must return the same counter")
	}
	if c3 := r.Counter("ops_total", "op", "set"); c3 == c1 {
		t.Fatal("different labels must return distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("ops_total")
}

func TestLabelString(t *testing.T) {
	if got := LabelString(); got != "" {
		t.Errorf("empty: %q", got)
	}
	if got := LabelString("b", "2", "a", "1"); got != `{a="1",b="2"}` {
		t.Errorf("sorted: %q", got)
	}
	if got := LabelString("k", "a\"b\\c\nd"); got != `{k="a\"b\\c\nd"}` {
		t.Errorf("escaped: %q", got)
	}
}

// parsePromText validates Prometheus text exposition output: every
// line is a comment or `name{labels} value`, TYPE lines precede their
// family's samples, and no sample line repeats.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad kind in %q", line)
			}
			if typed[parts[2]] {
				t.Fatalf("duplicate TYPE for %s", parts[2])
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("no value separator in %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		var val float64
		if _, err := fmt.Sscanf(valStr, "%g", &val); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated label block in %q", line)
			}
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("sample %q precedes its TYPE line", line)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = val
	}
	return samples
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("couchgo_test_hits_total").Add(7)
	r.Counter("couchgo_test_ops_total", "op", "get").Add(3)
	r.Counter("couchgo_test_ops_total", "op", "set").Add(4)
	r.Gauge("couchgo_test_depth").Set(-2)
	h := r.Histogram("couchgo_test_latency_seconds", "op", "get")
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)

	var b strings.Builder
	tw := NewTextWriter(&b)
	r.WriteTo(tw)
	// A scrape-time computed gauge shares the writer.
	tw.Gauge("couchgo_test_lag", LabelString("stream", "replica:n1"), 12)
	if tw.Err() != nil {
		t.Fatal(tw.Err())
	}

	samples := parsePromText(t, b.String())
	if samples["couchgo_test_hits_total"] != 7 {
		t.Errorf("hits: %v", samples)
	}
	if samples[`couchgo_test_ops_total{op="set"}`] != 4 {
		t.Errorf("ops set: %v", samples)
	}
	if samples["couchgo_test_depth"] != -2 {
		t.Errorf("depth: %v", samples)
	}
	if samples[`couchgo_test_lag{stream="replica:n1"}`] != 12 {
		t.Errorf("lag: %v", samples)
	}
	if samples[`couchgo_test_latency_seconds_count{op="get"}`] != 2 {
		t.Errorf("hist count: %v", samples)
	}
	if samples[`couchgo_test_latency_seconds_bucket{op="get",le="+Inf"}`] != 2 {
		t.Errorf("hist +Inf: %v", samples)
	}
	// Cumulative buckets never decrease.
	var prev float64
	for i := 0; i < numBuckets; i++ {
		key := fmt.Sprintf(`couchgo_test_latency_seconds_bucket{op="get",le="%s"}`,
			formatFloat(float64(upperBound(i))*1e-9))
		if v, ok := samples[key]; ok {
			if v < prev {
				t.Errorf("bucket %d decreased: %v < %v", i, v, prev)
			}
			prev = v
		}
	}
	if prev != 2 {
		t.Errorf("last bucket should hold all observations: %v", prev)
	}
}

func TestSlowQueryLog(t *testing.T) {
	l := NewSlowQueryLog(10*time.Millisecond, 3)
	if l.Observe("fast", time.Millisecond) {
		t.Fatal("fast query logged")
	}
	for i := 0; i < 5; i++ {
		if !l.Observe(fmt.Sprintf("q%d", i), 20*time.Millisecond) {
			t.Fatal("slow query not logged")
		}
	}
	if l.Total() != 5 {
		t.Fatalf("total: %d", l.Total())
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("ring size: %d", len(got))
	}
	// Most recent first, oldest two evicted.
	for i, want := range []string{"q4", "q3", "q2"} {
		if got[i].Statement != want {
			t.Fatalf("entries: %v", got)
		}
	}
}

func TestSample(t *testing.T) {
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if t0, ok := Sample(); ok {
			if t0.IsZero() {
				t.Fatal("sampled without timestamp")
			}
			hits++
		}
	}
	// 1-in-16 sampling: expect ~6250, allow wide slack.
	if hits < n/32 || hits > n/8 {
		t.Fatalf("sample rate off: %d/%d", hits, n)
	}
}

// TestQuantileEdgeCases pins the exact (non-interpolated) answers at
// the boundaries of the quantile function's domain.
func TestQuantileEdgeCases(t *testing.T) {
	single := NewHistogram()
	single.ObserveValue(300)

	zeros := NewHistogram()
	for i := 0; i < 10; i++ {
		zeros.ObserveValue(0)
	}

	spread := NewHistogram()
	for _, v := range []uint64{2, 3, 5, 700} {
		spread.ObserveValue(v)
	}

	cases := []struct {
		name string
		h    *Histogram
		q    float64
		want float64
	}{
		{"empty/q0", NewHistogram(), 0, 0},
		{"empty/q0.5", NewHistogram(), 0.5, 0},
		{"empty/q1", NewHistogram(), 1, 0},
		{"single/q0.5 is the one value", single, 0.5, 300},
		{"single/q1 is the one value", single, 1, 300},
		{"single/negative q clamps", single, -3, 300},
		{"all-zero/q1 must not interpolate above max", zeros, 1, 0},
		{"all-zero/q0.5 must not interpolate above max", zeros, 0.5, 0},
		{"spread/q1 is exact max not bucket bound", spread, 1, 700},
		{"spread/q above 1 clamps to max", spread, 1.5, 700},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			snap := c.h.Snapshot()
			if got := snap.Quantile(c.q); got != c.want {
				t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
			}
		})
	}

	// q <= 0 with multiple observations: lower bound of the first
	// populated bucket (2 and 3 share bucket [2,4)).
	snap := spread.Snapshot()
	if got := snap.Quantile(0); got != 2 {
		t.Fatalf("Quantile(0) = %v, want 2", got)
	}
}

// TestSlowQueryLogConcurrent hammers Observe from many goroutines
// while Entries/Total snapshot concurrently — the ring must stay
// internally consistent under -race.
func TestSlowQueryLogConcurrent(t *testing.T) {
	l := NewSlowQueryLog(time.Millisecond, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Observe(fmt.Sprintf("w%d-%d", g, i), 2*time.Millisecond)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := l.Entries(); len(got) > 8 {
					t.Errorf("ring overflow: %d entries", len(got))
					return
				}
				l.Total()
			}
		}()
	}
	wg.Wait()
	if total := l.Total(); total != 8*200 {
		t.Fatalf("total = %d, want %d", total, 8*200)
	}
	got := l.Entries()
	if len(got) != 8 {
		t.Fatalf("retained %d, want 8", len(got))
	}
	for _, e := range got {
		if e.Statement == "" || e.Elapsed != 2*time.Millisecond {
			t.Fatalf("corrupt entry: %+v", e)
		}
	}
}

// TestGaugeSetMax exercises the CAS high-watermark under contention:
// the final value must be the global max ever offered.
func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.SetMax(int64(w*1000 + i))
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 7999 {
		t.Fatalf("SetMax converged to %d, want 7999", got)
	}
	g.SetMax(5) // lower value must not regress the watermark
	if got := g.Value(); got != 7999 {
		t.Fatalf("SetMax regressed to %d", got)
	}
}
