package storage

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openSynced(t *testing.T) *VBFile {
	t.Helper()
	v, err := Open(filepath.Join(t.TempDir(), "vb.couch"), true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	return v
}

// TestGroupCommitRiders drives the leader/rider protocol
// deterministically: with an fsync "in flight" (the syncing flag held
// by the test), concurrent durable appends must write their batches
// and then park as riders — not return, since nothing covers them yet
// — and must all complete together the moment the watermark advances
// past their batches.
func TestGroupCommitRiders(t *testing.T) {
	v := openSynced(t)

	// Pose as an in-flight fsync leader.
	v.syncMu.Lock()
	v.syncing = true
	v.syncMu.Unlock()

	ridersBefore := mGroupCommitRiders.Value()

	const appenders = 4
	done := make(chan error, appenders)
	for i := 0; i < appenders; i++ {
		go func(i int) {
			done <- v.Append([]Record{rec(fmt.Sprintf("k%d", i), uint64(i+1), "v")})
		}(i)
	}

	// All four batches reach the file while the "fsync" runs...
	deadline := time.Now().Add(5 * time.Second)
	for {
		v.mu.Lock()
		seq := v.appendSeq
		v.mu.Unlock()
		if seq == appenders {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("appendSeq stuck at %d", seq)
		}
		time.Sleep(time.Millisecond)
	}
	// ...but none may be acknowledged before an fsync covers them:
	// that is the durability contract the group commit must not bend.
	select {
	case err := <-done:
		t.Fatalf("durable append returned (%v) before any fsync covered it", err)
	case <-time.After(50 * time.Millisecond):
	}

	// The leader's fsync completes, covering every batch written while
	// it ran. All riders return together.
	v.syncMu.Lock()
	v.syncedSeq = appenders
	v.syncing = false
	v.syncCond.Broadcast()
	v.syncMu.Unlock()

	for i := 0; i < appenders; i++ {
		if err := <-done; err != nil {
			t.Fatalf("rider append: %v", err)
		}
	}
	if got := mGroupCommitRiders.Value() - ridersBefore; got != appenders {
		t.Errorf("rider count advanced by %d, want %d", got, appenders)
	}
}

// TestGroupCommitConcurrentAppends hammers one durable file from many
// goroutines: every append must succeed, every record must be
// readable, and the number of fsync batches must not exceed the
// number of appends (coalescing can only shrink it).
func TestGroupCommitConcurrentAppends(t *testing.T) {
	v := openSynced(t)

	batchesBefore := mGroupCommitBatches.Value()

	const goroutines, per = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*per)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("g%d-i%d", g, i)
				errs <- v.Append([]Record{rec(key, uint64(g*per+i+1), "v-"+key)})
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for g := 0; g < goroutines; g++ {
		for i := 0; i < per; i++ {
			key := fmt.Sprintf("g%d-i%d", g, i)
			got, err := v.Get(key)
			if err != nil || string(got.Value) != "v-"+key {
				t.Fatalf("Get(%s) = %q, %v", key, got.Value, err)
			}
		}
	}

	batches := mGroupCommitBatches.Value() - batchesBefore
	if batches == 0 || batches > goroutines*per {
		t.Errorf("fsync batches = %d, want 1..%d", batches, goroutines*per)
	}
}

// TestGroupCommitStickyError: after a failed fsync the durable prefix
// is unknowable, so every later durable append must fail fast rather
// than pretend.
func TestGroupCommitStickyError(t *testing.T) {
	v := openSynced(t)
	if err := v.Append([]Record{rec("a", 1, "v")}); err != nil {
		t.Fatal(err)
	}

	v.syncMu.Lock()
	v.syncErr = fmt.Errorf("disk on fire")
	v.syncMu.Unlock()

	if err := v.Append([]Record{rec("b", 2, "v")}); err == nil {
		t.Fatal("durable append succeeded after a failed fsync")
	}
}

// TestGroupCommitCompactRace interleaves durable appends with
// compactions: Compact swaps the descriptor a leader may be about to
// fsync, so the quiesce barrier is load-bearing. Run with -race.
func TestGroupCommitCompactRace(t *testing.T) {
	v := openSynced(t)

	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Rewrite a small key set so compaction has garbage.
				key := fmt.Sprintf("w%d-k%d", w, i%3)
				if err := v.Append([]Record{rec(key, uint64(w*1_000_000+i+1), "v")}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	for i := 0; i < 10; i++ {
		if err := v.Compact(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Every live key must still be intact after the churn.
	for w := 0; w < writers; w++ {
		for k := 0; k < 3; k++ {
			if _, err := v.Get(fmt.Sprintf("w%d-k%d", w, k)); err != nil {
				t.Errorf("w%d-k%d lost: %v", w, k, err)
			}
		}
	}
}

// TestSyncerCoalescesAcrossFiles checks the device-level tier: many
// files fsyncing through one Syncer all complete, and a round fsyncs
// each distinct descriptor once.
func TestSyncerCoalescesAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	s := NewSyncer()
	const files = 4
	vs := make([]*VBFile, files)
	for i := range vs {
		v, err := Open(filepath.Join(dir, fmt.Sprintf("vb_%d.couch", i)), true)
		if err != nil {
			t.Fatal(err)
		}
		v.syncer = s
		t.Cleanup(func() { v.Close() })
		vs[i] = v
	}

	var wg sync.WaitGroup
	errs := make(chan error, files*8)
	for i, v := range vs {
		for j := 0; j < 8; j++ {
			wg.Add(1)
			go func(v *VBFile, i, j int) {
				defer wg.Done()
				errs <- v.Append([]Record{rec(fmt.Sprintf("f%d-k%d", i, j), uint64(i*100+j+1), "v")})
			}(v, i, j)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
