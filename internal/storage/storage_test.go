package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T) *VBFile {
	t.Helper()
	v, err := Open(filepath.Join(t.TempDir(), "vb_0000.couch"), false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	return v
}

func rec(key string, seqno uint64, val string) Record {
	return Record{
		Meta:  Meta{Key: key, Seqno: seqno, CAS: seqno * 10, RevSeqno: seqno, Flags: 3, Expiry: 0},
		Value: []byte(val),
	}
}

func TestAppendGetRoundTrip(t *testing.T) {
	v := openTemp(t)
	if err := v.Append([]Record{rec("a", 1, "va"), rec("b", 2, "vb")}); err != nil {
		t.Fatal(err)
	}
	got, err := v.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Value) != "va" || got.Seqno != 1 || got.CAS != 10 || got.Flags != 3 {
		t.Errorf("got %+v", got)
	}
	if _, err := v.Get("missing"); err != ErrNotFound {
		t.Errorf("missing key: %v", err)
	}
}

func TestNewestVersionWins(t *testing.T) {
	v := openTemp(t)
	v.Append([]Record{rec("k", 1, "old")})
	v.Append([]Record{rec("k", 2, "new")})
	got, _ := v.Get("k")
	if string(got.Value) != "new" {
		t.Errorf("value = %q", got.Value)
	}
	st := v.Stats()
	if st.Items != 1 || st.HighSeqno != 2 {
		t.Errorf("stats: %+v", st)
	}
	if v.Fragmentation() <= 0 {
		t.Error("overwrite should create fragmentation")
	}
}

func TestTombstones(t *testing.T) {
	v := openTemp(t)
	v.Append([]Record{rec("k", 1, "v")})
	del := rec("k", 2, "")
	del.Deleted = true
	v.Append([]Record{del})
	if _, err := v.Get("k"); err != ErrNotFound {
		t.Errorf("deleted key should be not found: %v", err)
	}
	meta, err := v.GetMeta("k")
	if err != nil || !meta.Deleted || meta.Seqno != 2 {
		t.Errorf("tombstone meta: %+v %v", meta, err)
	}
}

func TestRecoveryAfterReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vb.couch")
	v, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		v.Append([]Record{rec(fmt.Sprintf("k%02d", i), uint64(i+1), fmt.Sprintf("v%d", i))})
	}
	v.Close()

	v2, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.HighSeqno() != 50 {
		t.Errorf("recovered high seqno = %d", v2.HighSeqno())
	}
	got, err := v2.Get("k17")
	if err != nil || string(got.Value) != "v17" {
		t.Errorf("recovered doc: %+v %v", got, err)
	}
	// Appends continue after recovery.
	if err := v2.Append([]Record{rec("new", 51, "nv")}); err != nil {
		t.Fatal(err)
	}
	got, _ = v2.Get("new")
	if string(got.Value) != "nv" {
		t.Error("append after recovery failed")
	}
}

func TestCrashRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vb.couch")
	v, _ := Open(path, false)
	v.Append([]Record{rec("good", 1, "v1"), rec("good2", 2, "v2")})
	v.Close()

	// Simulate a torn write: append garbage / half a record.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{recordMagic, 0, 5, 0}) // half a header
	f.Close()

	v2, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.HighSeqno() != 2 {
		t.Errorf("high seqno after recovery = %d", v2.HighSeqno())
	}
	if _, err := v2.Get("good"); err != nil {
		t.Error("valid prefix lost in recovery")
	}
	// The file was truncated; new appends decode cleanly after reopen.
	v2.Append([]Record{rec("post", 3, "pv")})
	v2.Close()
	v3, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer v3.Close()
	if got, err := v3.Get("post"); err != nil || string(got.Value) != "pv" {
		t.Errorf("post-recovery append lost: %v", err)
	}
}

func TestCorruptMiddleRecordStopsScan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vb.couch")
	v, _ := Open(path, false)
	v.Append([]Record{rec("a", 1, "va")})
	off := v.Stats().FileBytes
	v.Append([]Record{rec("b", 2, "vb")})
	v.Close()

	// Flip a byte inside the second record's body.
	f, _ := os.OpenFile(path, os.O_WRONLY, 0)
	f.WriteAt([]byte{0xFF}, off+headerSize)
	f.Close()

	v2, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if _, err := v2.Get("a"); err != nil {
		t.Error("record before corruption should survive")
	}
	if _, err := v2.Get("b"); err != ErrNotFound {
		t.Error("corrupt record should be dropped")
	}
}

func TestScanBySeqno(t *testing.T) {
	v := openTemp(t)
	v.Append([]Record{rec("a", 1, "v1"), rec("b", 2, "v2"), rec("c", 3, "v3")})
	v.Append([]Record{rec("a", 4, "v4")}) // supersedes seqno 1
	var seen []uint64
	err := v.ScanBySeqno(0, 100, func(r Record) bool {
		seen = append(seen, r.Seqno)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only latest versions, in seqno order: b@2, c@3, a@4.
	want := []uint64{2, 3, 4}
	if len(seen) != len(want) {
		t.Fatalf("seen %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen %v, want %v", seen, want)
		}
	}
	// Range restriction.
	seen = nil
	v.ScanBySeqno(2, 3, func(r Record) bool { seen = append(seen, r.Seqno); return true })
	if len(seen) != 1 || seen[0] != 3 {
		t.Errorf("range scan seen %v", seen)
	}
	// Early stop.
	count := 0
	v.ScanBySeqno(0, 100, func(r Record) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestCompactReclaimsSpaceAndPreservesData(t *testing.T) {
	v := openTemp(t)
	for i := 0; i < 10; i++ {
		for ver := 0; ver < 20; ver++ {
			v.Append([]Record{rec(fmt.Sprintf("k%d", i), uint64(i*20+ver+1), fmt.Sprintf("val-%d-%d", i, ver))})
		}
	}
	del := rec("k0", 1000, "")
	del.Deleted = true
	v.Append([]Record{del})

	before := v.Stats()
	frag := v.Fragmentation()
	if frag < 0.5 {
		t.Fatalf("expected heavy fragmentation, got %v", frag)
	}
	if err := v.Compact(); err != nil {
		t.Fatal(err)
	}
	after := v.Stats()
	if after.FileBytes >= before.FileBytes {
		t.Errorf("compaction did not shrink file: %d -> %d", before.FileBytes, after.FileBytes)
	}
	if v.Fragmentation() != 0 {
		t.Errorf("fragmentation after compact = %v", v.Fragmentation())
	}
	// All latest values survive.
	for i := 1; i < 10; i++ {
		got, err := v.Get(fmt.Sprintf("k%d", i))
		if err != nil || string(got.Value) != fmt.Sprintf("val-%d-19", i) {
			t.Errorf("k%d after compact: %+v %v", i, got, err)
		}
	}
	// Tombstone survives compaction (replicas may still need it).
	meta, err := v.GetMeta("k0")
	if err != nil || !meta.Deleted {
		t.Errorf("tombstone lost in compaction: %+v %v", meta, err)
	}
	// Writes continue after compaction.
	if err := v.Append([]Record{rec("post", 2000, "pv")}); err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Get("post"); string(got.Value) != "pv" {
		t.Error("append after compact failed")
	}
	if after.HighSeqno != before.HighSeqno {
		t.Errorf("compaction changed high seqno %d -> %d", before.HighSeqno, after.HighSeqno)
	}
}

func TestCompactThenReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vb.couch")
	v, _ := Open(path, false)
	v.Append([]Record{rec("a", 1, "old"), rec("a", 2, "new"), rec("b", 3, "bv")})
	if err := v.Compact(); err != nil {
		t.Fatal(err)
	}
	v.Close()
	v2, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if got, err := v2.Get("a"); err != nil || string(got.Value) != "new" {
		t.Errorf("after compact+reopen: %+v %v", got, err)
	}
}

func TestSyncOnWrite(t *testing.T) {
	v, err := Open(filepath.Join(t.TempDir(), "vb.couch"), true)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.Append([]Record{rec("k", 1, "v")}); err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Get("k"); string(got.Value) != "v" {
		t.Error("synced write not readable")
	}
}

func TestClosedFileErrors(t *testing.T) {
	v := openTemp(t)
	v.Close()
	if err := v.Append([]Record{rec("k", 1, "v")}); err != ErrClosed {
		t.Errorf("append after close: %v", err)
	}
	if _, err := v.Get("k"); err != ErrClosed {
		t.Errorf("get after close: %v", err)
	}
	if err := v.Compact(); err != ErrClosed {
		t.Errorf("compact after close: %v", err)
	}
	if err := v.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestEmptyAppendIsNoop(t *testing.T) {
	v := openTemp(t)
	if err := v.Append(nil); err != nil {
		t.Fatal(err)
	}
	if v.Stats().FileBytes != 0 {
		t.Error("empty append wrote bytes")
	}
}

func TestLargeValues(t *testing.T) {
	v := openTemp(t)
	big := make([]byte, 1<<20)
	rand.New(rand.NewSource(7)).Read(big)
	r := rec("big", 1, "")
	r.Value = big
	if err := v.Append([]Record{r}); err != nil {
		t.Fatal(err)
	}
	got, err := v.Get("big")
	if err != nil || len(got.Value) != len(big) {
		t.Fatalf("big value: %v len=%d", err, len(got.Value))
	}
	for i := range big {
		if got.Value[i] != big[i] {
			t.Fatalf("big value corrupted at %d", i)
		}
	}
}

func TestStoreManagesVBFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(filepath.Join(dir, "data"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f0, err := s.VB(0)
	if err != nil {
		t.Fatal(err)
	}
	f0b, _ := s.VB(0)
	if f0 != f0b {
		t.Error("VB should return the same handle")
	}
	f1, _ := s.VB(1)
	f0.Append([]Record{rec("a", 1, "v")})
	f1.Append([]Record{rec("b", 1, "v")})
	if err := s.DropVB(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "data", "vb_0000.couch")); !os.IsNotExist(err) {
		t.Error("dropped vb file still exists")
	}
	// Dropping an unopened, nonexistent vb is fine.
	if err := s.DropVB(99); err != nil {
		t.Errorf("drop of unknown vb: %v", err)
	}
}

// TestRandomOpsAgainstModel drives the file with random ops and checks
// it against an in-memory model, reopening periodically to exercise
// recovery.
func TestRandomOpsAgainstModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vb.couch")
	v, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	deleted := map[string]bool{}
	r := rand.New(rand.NewSource(42))
	seqno := uint64(0)
	for i := 0; i < 600; i++ {
		key := fmt.Sprintf("k%02d", r.Intn(30))
		seqno++
		switch r.Intn(10) {
		case 0: // delete
			d := rec(key, seqno, "")
			d.Deleted = true
			if err := v.Append([]Record{d}); err != nil {
				t.Fatal(err)
			}
			delete(model, key)
			deleted[key] = true
		case 1: // compact
			if err := v.Compact(); err != nil {
				t.Fatal(err)
			}
		case 2: // reopen
			v.Close()
			if v, err = Open(path, false); err != nil {
				t.Fatal(err)
			}
		default: // write
			val := fmt.Sprintf("v%d", i)
			if err := v.Append([]Record{rec(key, seqno, val)}); err != nil {
				t.Fatal(err)
			}
			model[key] = val
			delete(deleted, key)
		}
	}
	for key, want := range model {
		got, err := v.Get(key)
		if err != nil || string(got.Value) != want {
			t.Errorf("model mismatch for %s: got %q err %v want %q", key, got.Value, err, want)
		}
	}
	for key := range deleted {
		if _, err := v.Get(key); err != ErrNotFound {
			t.Errorf("deleted key %s resurfaced: %v", key, err)
		}
	}
	v.Close()
}
