// Package storage implements the append-only storage engine of the data
// service (paper §4.3.3): "With Couchbase's append-only storage engine
// design, document mutations always go to the end of a file. ... This
// improves disk write performance, as all updates are written
// sequentially. Compaction is periodically run, based on a
// fragmentation threshold, and while the system is online, to clean up
// stale data from the append-only storage."
//
// Each vBucket persists to its own file (as couchstore does). A file is
// a sequence of CRC-protected records; the newest record for a key
// wins. Recovery scans the file, stops at the first torn or corrupt
// record, and truncates the tail — the contract the asynchronous write
// path relies on: a crash loses only unflushed (still-in-memory)
// mutations, never corrupts flushed ones.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"couchgo/internal/events"
	"couchgo/internal/metrics"
)

// Storage-engine metrics, process-wide across every vBucket file.
// Fsync timing is the durability ladder's expensive rung (§2.3.2:
// replication ≪ persistence); compactions and reclaimed bytes track
// the append-only files' garbage collection.
var (
	mBytesWritten   = metrics.Default.Counter("couchgo_storage_bytes_written_total")
	mFsyncDuration  = metrics.Default.Histogram("couchgo_storage_fsync_duration_seconds")
	mCompactions    = metrics.Default.Counter("couchgo_storage_compactions_total")
	mBytesReclaimed = metrics.Default.Counter("couchgo_storage_compaction_reclaimed_bytes_total")

	// Group-commit accounting (DESIGN.md §10). A "batch" is one
	// leader fsync; a "rider" is an Append whose durability was
	// satisfied by some other caller's fsync. coalesced_appends is how
	// many append batches one fsync made durable; device_sync_files is
	// how many distinct vBucket files one device-level sync round
	// coalesced.
	mGroupCommitBatches   = metrics.Default.Counter("couchgo_storage_group_commit_batches")
	mGroupCommitRiders    = metrics.Default.Counter("couchgo_storage_group_commit_riders_total")
	mGroupCommitCoalesced = metrics.Default.ValueHistogram("couchgo_storage_group_commit_coalesced_appends")
	mDeviceSyncFiles      = metrics.Default.ValueHistogram("couchgo_storage_device_sync_files")

	// Secondary-path errors that cannot be propagated without masking
	// the primary failure (closing a file while unwinding, removing a
	// leftover compaction temp file). They must still be visible: a
	// leaking descriptor or an undeletable temp file is an operational
	// problem long before it is a correctness one.
	mCloseErrors  = metrics.Default.Counter("couchgo_storage_side_errors_total", "op", "close")
	mRemoveErrors = metrics.Default.Counter("couchgo_storage_side_errors_total", "op", "remove")
)

// closeCounted closes f, counting (rather than silently dropping) an
// error, for paths where a close failure must not mask the primary
// error being returned.
func closeCounted(f *os.File) {
	if err := f.Close(); err != nil {
		mCloseErrors.Inc()
	}
}

// Errors returned by the storage engine.
var (
	ErrNotFound = errors.New("storage: key not found")
	ErrClosed   = errors.New("storage: file closed")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta is the document metadata persisted alongside each value. It
// mirrors cache.Item's durable fields.
type Meta struct {
	Key      string
	Seqno    uint64
	CAS      uint64
	RevSeqno uint64
	Flags    uint32
	Expiry   int64
	Deleted  bool
}

// Record is one persisted mutation.
type Record struct {
	Meta
	Value []byte
}

const recordMagic = 0xC7

// record layout:
//
//	magic(1) flags(1) keyLen(2) valLen(4) seqno(8) cas(8) revSeqno(8)
//	docFlags(4) expiry(8) key valLen crc32c(4)
const headerSize = 1 + 1 + 2 + 4 + 8 + 8 + 8 + 4 + 8

func encodedSize(r *Record) int64 {
	return int64(headerSize + len(r.Key) + len(r.Value) + 4)
}

func encodeRecord(buf []byte, r *Record) []byte {
	start := len(buf)
	var flags byte
	if r.Deleted {
		flags |= 1
	}
	var hdr [headerSize]byte
	hdr[0] = recordMagic
	hdr[1] = flags
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(r.Key)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(r.Value)))
	binary.LittleEndian.PutUint64(hdr[8:], r.Seqno)
	binary.LittleEndian.PutUint64(hdr[16:], r.CAS)
	binary.LittleEndian.PutUint64(hdr[24:], r.RevSeqno)
	binary.LittleEndian.PutUint32(hdr[32:], r.Flags)
	binary.LittleEndian.PutUint64(hdr[36:], uint64(r.Expiry))
	buf = append(buf, hdr[:]...)
	buf = append(buf, r.Key...)
	buf = append(buf, r.Value...)
	crc := crc32.Checksum(buf[start:], castagnoli)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(buf, tail[:]...)
}

// decodeRecord parses one record from data. It returns the record, the
// total bytes consumed, and ok=false when the bytes do not form a
// complete valid record (torn tail).
func decodeRecord(data []byte) (Record, int, bool) {
	if len(data) < headerSize || data[0] != recordMagic {
		return Record{}, 0, false
	}
	keyLen := int(binary.LittleEndian.Uint16(data[2:]))
	valLen := int(binary.LittleEndian.Uint32(data[4:]))
	total := headerSize + keyLen + valLen + 4
	if len(data) < total {
		return Record{}, 0, false
	}
	crcWant := binary.LittleEndian.Uint32(data[total-4:])
	if crc32.Checksum(data[:total-4], castagnoli) != crcWant {
		return Record{}, 0, false
	}
	r := Record{
		Meta: Meta{
			Key:      string(data[headerSize : headerSize+keyLen]),
			Seqno:    binary.LittleEndian.Uint64(data[8:]),
			CAS:      binary.LittleEndian.Uint64(data[16:]),
			RevSeqno: binary.LittleEndian.Uint64(data[24:]),
			Flags:    binary.LittleEndian.Uint32(data[32:]),
			Expiry:   int64(binary.LittleEndian.Uint64(data[36:])),
			Deleted:  data[1]&1 != 0,
		},
	}
	if valLen > 0 {
		r.Value = append([]byte(nil), data[headerSize+keyLen:headerSize+keyLen+valLen]...)
	}
	return r, total, true
}

// recInfo is the in-memory index entry for the newest version of a key.
type recInfo struct {
	Meta
	offset int64 // record start in file
	size   int64
}

// VBFile is the storage for one vBucket: an append-only file plus an
// in-memory by-ID index rebuilt at open.
//
// Durability uses group commit (DESIGN.md §10): Append writes and
// indexes the batch under mu, then — when syncOnWrite is set — rides
// the leader/rider fsync protocol below instead of fsyncing inline.
// Lock order is strictly mu → syncMu is never taken; the two are
// disjoint: mu guards file contents and the index, syncMu guards only
// the fsync watermark. The fsync itself runs with neither lock held,
// so readers and the next writer proceed while the disk churns.
type VBFile struct {
	mu   sync.Mutex
	f    *os.File
	path string
	sync bool

	byID      map[string]recInfo
	fileBytes int64
	liveBytes int64 // bytes of current-version records
	highSeqno uint64
	closed    bool

	// Group-commit state. appendSeq (under mu) numbers append batches
	// monotonically — unlike file offsets it survives compaction
	// rewrites, which shrink the file. syncedSeq is the highest batch
	// known durable; a writer whose batch ≤ syncedSeq is covered.
	// syncing marks an in-flight leader (or a Compact/Close quiesce
	// barrier). syncErr is sticky: after a failed fsync the durable
	// prefix is unknowable, so every later durable append fails too.
	appendSeq int64
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncing   bool
	syncedSeq int64
	syncErr   error

	// syncer, when non-nil, coalesces this file's leader fsyncs with
	// other files on the same device (set by Store.VB).
	syncer *Syncer
}

// Open opens (creating if absent) the vBucket file at path. syncOnWrite
// requests fsync after each batch append (durable persistence); with it
// off, durability is at the mercy of the OS page cache — the tradeoff
// the paper's asynchronous design deliberately exposes.
func Open(path string, syncOnWrite bool) (*VBFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	v := &VBFile{f: f, path: path, sync: syncOnWrite, byID: make(map[string]recInfo)}
	v.syncCond = sync.NewCond(&v.syncMu)
	if err := v.recover(); err != nil {
		closeCounted(f)
		return nil, err
	}
	return v, nil
}

// recover scans the file, building the index and truncating any torn
// tail left by a crash. It takes the lock for the analyzer's benefit:
// the file has not escaped Open yet, so there is no contention.
func (v *VBFile) recover() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	data, err := io.ReadAll(v.f)
	if err != nil {
		return err
	}
	off := int64(0)
	for off < int64(len(data)) {
		rec, n, ok := decodeRecord(data[off:])
		if !ok {
			// Torn or corrupt tail: truncate. Everything before is valid.
			if err := v.f.Truncate(off); err != nil {
				return err
			}
			break
		}
		v.indexRecordLocked(&rec, off, int64(n))
		off += int64(n)
	}
	v.fileBytes = off
	_, err = v.f.Seek(off, io.SeekStart)
	return err
}

func (v *VBFile) indexRecordLocked(rec *Record, off, size int64) {
	if old, ok := v.byID[rec.Key]; ok {
		v.liveBytes -= old.size
	}
	v.byID[rec.Key] = recInfo{Meta: rec.Meta, offset: off, size: size}
	v.liveBytes += size
	if rec.Seqno > v.highSeqno {
		v.highSeqno = rec.Seqno
	}
}

// Append writes a batch of records sequentially at the end of the file.
// The batch is a single write syscall (the disk-write queue aggregates
// mutations, §2.3.2). When syncOnWrite is set, Append does not return
// until its bytes are covered by an fsync — its own or a concurrent
// leader's (group commit) — so the caller's durability watermark may
// advance the moment Append returns.
func (v *VBFile) Append(recs []Record) error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	if len(recs) == 0 {
		v.mu.Unlock()
		return nil
	}
	var buf []byte
	offsets := make([]int64, len(recs))
	off := v.fileBytes
	for i := range recs {
		offsets[i] = off
		before := len(buf)
		buf = encodeRecord(buf, &recs[i])
		off += int64(len(buf) - before)
	}
	if _, err := v.f.Write(buf); err != nil {
		v.mu.Unlock()
		return err
	}
	mBytesWritten.Add(uint64(len(buf)))
	for i := range recs {
		v.indexRecordLocked(&recs[i], offsets[i], encodedSize(&recs[i]))
	}
	v.fileBytes = off
	v.appendSeq++
	seq := v.appendSeq
	v.mu.Unlock()
	if v.sync {
		return v.syncTo(seq)
	}
	return nil
}

// syncTo blocks until the durable watermark covers append batch seq,
// joining or leading a group commit. At most one fsync per file is in
// flight; every caller that arrives while it runs waits, and when it
// completes, all callers whose batch it covered return together
// (riders). A caller it did not cover becomes the next leader.
func (v *VBFile) syncTo(seq int64) error {
	v.syncMu.Lock()
	rode := false
	for {
		// Coverage first: batches already durable stay durable even if
		// a later fsync failed or the file has since been closed.
		if v.syncedSeq >= seq {
			v.syncMu.Unlock()
			if rode {
				mGroupCommitRiders.Inc()
			}
			return nil
		}
		if v.syncErr != nil {
			err := v.syncErr
			v.syncMu.Unlock()
			return err
		}
		if !v.syncing {
			break
		}
		rode = true
		v.syncCond.Wait()
	}
	// Lead: fsync with no locks held. Claim only batches written
	// before the fsync started — a write racing the fsync may or may
	// not be on disk when it returns, so target is read first.
	v.syncing = true
	prevSynced := v.syncedSeq
	v.syncMu.Unlock()

	v.mu.Lock()
	target := v.appendSeq // every batch ≤ target hit the file under mu
	f := v.f
	closed := v.closed
	v.mu.Unlock()

	var err error
	if closed {
		err = ErrClosed
	} else if v.syncer != nil {
		err = v.syncer.Sync(f)
	} else {
		t0 := time.Now()
		err = f.Sync()
		mFsyncDuration.ObserveSince(t0)
	}

	v.syncMu.Lock()
	v.syncing = false
	if err != nil {
		v.syncErr = err
	} else {
		if target > v.syncedSeq {
			v.syncedSeq = target
		}
		mGroupCommitBatches.Inc()
		if target > prevSynced {
			mGroupCommitCoalesced.ObserveValue(uint64(target - prevSynced))
		}
	}
	v.syncCond.Broadcast()
	v.syncMu.Unlock()
	return err
}

// quiesceSync blocks new fsync leaders and waits out an in-flight one.
// Compact and Close use it before swapping or closing the descriptor a
// leader might be fsyncing with no lock held. Callers must not hold mu
// when calling: an in-flight leader briefly takes mu on its way to the
// fsync, so waiting for it while holding mu would deadlock.
func (v *VBFile) quiesceSync() {
	v.syncMu.Lock()
	for v.syncing {
		v.syncCond.Wait()
	}
	v.syncing = true
	v.syncMu.Unlock()
}

// Get reads the newest version of key. Deleted keys report ErrNotFound
// (tombstone metadata is still reachable via GetMeta).
func (v *VBFile) Get(key string) (Record, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.getLocked(key)
}

func (v *VBFile) getLocked(key string) (Record, error) {
	if v.closed {
		return Record{}, ErrClosed
	}
	info, ok := v.byID[key]
	if !ok || info.Deleted {
		return Record{}, ErrNotFound
	}
	return v.readAtLocked(info)
}

func (v *VBFile) readAtLocked(info recInfo) (Record, error) {
	buf := make([]byte, info.size)
	if _, err := v.f.ReadAt(buf, info.offset); err != nil {
		return Record{}, fmt.Errorf("storage: read %s@%d: %w", info.Key, info.offset, err)
	}
	rec, _, ok := decodeRecord(buf)
	if !ok {
		return Record{}, fmt.Errorf("storage: corrupt record for %s at offset %d", info.Key, info.offset)
	}
	return rec, nil
}

// GetMeta returns the newest metadata for key, including tombstones.
func (v *VBFile) GetMeta(key string) (Meta, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	info, ok := v.byID[key]
	if !ok {
		return Meta{}, ErrNotFound
	}
	return info.Meta, nil
}

// HighSeqno returns the highest persisted sequence number. The
// durability watermark PersistTo waits on.
func (v *VBFile) HighSeqno() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.highSeqno
}

// ScanBySeqno iterates the newest version of every key (including
// tombstones) with seqno in (fromExclusive, toInclusive], in seqno
// order. DCP backfill for late-joining streams runs on this.
func (v *VBFile) ScanBySeqno(fromExclusive, toInclusive uint64, fn func(Record) bool) error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	infos := make([]recInfo, 0, len(v.byID))
	for _, info := range v.byID {
		if info.Seqno > fromExclusive && info.Seqno <= toInclusive {
			infos = append(infos, info)
		}
	}
	v.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Seqno < infos[j].Seqno })
	for _, info := range infos {
		v.mu.Lock()
		if v.closed {
			v.mu.Unlock()
			return ErrClosed
		}
		// Re-check: the key may have been superseded since the snapshot;
		// the newer version will carry a higher seqno and is either in
		// range (visited later is wrong — skip stale) or beyond range.
		cur, ok := v.byID[info.Key]
		if !ok || cur.Seqno != info.Seqno {
			v.mu.Unlock()
			continue
		}
		rec, err := v.readAtLocked(info)
		v.mu.Unlock()
		if err != nil {
			return err
		}
		if !fn(rec) {
			return nil
		}
	}
	return nil
}

// Stats describes file health for compaction decisions.
type Stats struct {
	FileBytes int64
	LiveBytes int64
	Items     int
	HighSeqno uint64
}

// Stats returns a snapshot of file statistics.
func (v *VBFile) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return Stats{FileBytes: v.fileBytes, LiveBytes: v.liveBytes, Items: len(v.byID), HighSeqno: v.highSeqno}
}

// Fragmentation returns the fraction of the file occupied by stale
// record versions, the paper's compaction trigger metric.
func (v *VBFile) Fragmentation() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.fileBytes == 0 {
		return 0
	}
	return float64(v.fileBytes-v.liveBytes) / float64(v.fileBytes)
}

// Compact rewrites the file keeping only the newest version of each key
// (tombstones included, so replicas and indexes can still learn of
// deletions), then atomically swaps it in. The vBucket stays readable
// and writable from the caller's perspective; only this file's own
// operations serialize with the copy. The quiesce barrier keeps a
// group-commit leader from fsyncing the descriptor being swapped out.
func (v *VBFile) Compact() error {
	v.quiesceSync()
	seqAtSwap, err := v.compactSwap()
	v.syncMu.Lock()
	v.syncing = false
	if err == nil && seqAtSwap > v.syncedSeq {
		// Every append batch up to the swap is in the rewritten file,
		// which was fully synced before the rename. Claim exactly
		// those: an append racing in after compactSwap released mu has
		// a higher batch seq and still owes an fsync.
		v.syncedSeq = seqAtSwap
	}
	v.syncCond.Broadcast()
	v.syncMu.Unlock()
	return err
}

// compactSwap does the rewrite and swap under mu, returning the append
// watermark the new file covers.
func (v *VBFile) compactSwap() (int64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return 0, ErrClosed
	}
	startEv := events.New(events.Compaction, events.SevInfo, "compaction started")
	startEv.Fields = map[string]string{
		"path":       v.path,
		"file_bytes": strconv.FormatInt(v.fileBytes, 10),
		"live_bytes": strconv.FormatInt(v.liveBytes, 10),
	}
	events.Default.Publish(startEv)
	tmpPath := v.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	// After a successful rename the temp path no longer exists; on any
	// failure path this cleans up the partial file. Either way a
	// removal error (other than "already gone") is counted, not lost.
	defer func() {
		if err := os.Remove(tmpPath); err != nil && !os.IsNotExist(err) {
			mRemoveErrors.Inc()
		}
	}()

	infos := make([]recInfo, 0, len(v.byID))
	for _, info := range v.byID {
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Seqno < infos[j].Seqno })

	newIndex := make(map[string]recInfo, len(infos))
	var buf []byte
	var off int64
	var live int64
	for _, info := range infos {
		rec, err := v.readAtLocked(info)
		if err != nil {
			closeCounted(tmp)
			return 0, err
		}
		buf = encodeRecord(buf[:0], &rec)
		if _, err := tmp.Write(buf); err != nil {
			closeCounted(tmp)
			return 0, err
		}
		size := int64(len(buf))
		newIndex[rec.Key] = recInfo{Meta: rec.Meta, offset: off, size: size}
		off += size
		live += size
	}
	if err := tmp.Sync(); err != nil {
		closeCounted(tmp)
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmpPath, v.path); err != nil {
		return 0, err
	}
	nf, err := os.OpenFile(v.path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := nf.Seek(off, io.SeekStart); err != nil {
		closeCounted(nf)
		return 0, err
	}
	// The swap already succeeded; a close failure on the replaced
	// handle cannot be propagated meaningfully, only counted.
	closeCounted(v.f)
	v.f = nf
	mCompactions.Inc()
	reclaimed := v.fileBytes - off
	if reclaimed > 0 {
		mBytesReclaimed.Add(uint64(reclaimed))
	}
	doneEv := events.New(events.Compaction, events.SevInfo, "compaction done")
	doneEv.Fields = map[string]string{
		"path":            v.path,
		"file_bytes":      strconv.FormatInt(off, 10),
		"reclaimed_bytes": strconv.FormatInt(reclaimed, 10),
	}
	events.Default.Publish(doneEv)
	v.byID = newIndex
	v.fileBytes = off
	v.liveBytes = live
	return v.appendSeq, nil
}

// Close releases the file handle. The quiesce barrier waits out an
// in-flight group-commit fsync before the descriptor goes away.
func (v *VBFile) Close() error {
	v.quiesceSync()
	v.mu.Lock()
	var err error
	if !v.closed {
		v.closed = true
		err = v.f.Close()
	}
	v.mu.Unlock()
	v.syncMu.Lock()
	v.syncing = false
	if v.syncErr == nil {
		// Wake pending riders: their batches will never be fsynced.
		v.syncErr = ErrClosed
	}
	v.syncCond.Broadcast()
	v.syncMu.Unlock()
	return err
}

// Remove closes and deletes the file (vBucket dropped from this node).
// A close failure does not stop the removal; both errors are reported.
func (v *VBFile) Remove() error {
	return errors.Join(v.Close(), os.Remove(v.path))
}

// Syncer coalesces fsync requests from many vBucket files that share
// one device. It runs the same leader/rider protocol as VBFile group
// commit, one level up: the first caller in a round becomes the
// device leader, fsyncs every distinct file that queued a ticket
// while the previous round ran, and completes all their tickets
// together. No background goroutine — leadership is carried by
// whichever caller arrives at the right moment.
type Syncer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	syncing bool
	pending []*syncTicket
}

type syncTicket struct {
	f    *os.File
	err  error
	done bool
}

// NewSyncer creates a device-level fsync coalescer.
func NewSyncer() *Syncer {
	s := &Syncer{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Sync makes f durable, batching the fsync with any other files whose
// requests arrive while a round is in flight.
func (s *Syncer) Sync(f *os.File) error {
	t := &syncTicket{f: f}
	s.mu.Lock()
	s.pending = append(s.pending, t)
	for {
		if t.done {
			err := t.err
			s.mu.Unlock()
			return err
		}
		if !s.syncing {
			// Lead this round: take the whole queue (our ticket
			// included) and fsync each distinct file once, locks
			// released so the next round can queue behind us.
			s.syncing = true
			batch := s.pending
			s.pending = nil
			s.mu.Unlock()

			errs := make(map[*os.File]error, 1)
			seen := make(map[*os.File]bool, 1)
			for _, tk := range batch {
				if seen[tk.f] {
					continue
				}
				seen[tk.f] = true
				t0 := time.Now()
				errs[tk.f] = tk.f.Sync()
				mFsyncDuration.ObserveSince(t0)
			}
			mDeviceSyncFiles.ObserveValue(uint64(len(seen)))

			s.mu.Lock()
			for _, tk := range batch {
				tk.err = errs[tk.f]
				tk.done = true
			}
			s.syncing = false
			s.cond.Broadcast()
			continue // own ticket is now done; loop exits above
		}
		s.cond.Wait()
	}
}

// Store manages the per-vBucket files of one bucket on one node.
type Store struct {
	mu     sync.Mutex
	dir    string
	sync   bool
	syncer *Syncer
	files  map[int]*VBFile
}

// NewStore creates a store rooted at dir (created if needed). With
// syncOnWrite set, all the store's files share one device-level
// Syncer, so fsyncs for different vBuckets coalesce too.
func NewStore(dir string, syncOnWrite bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{dir: dir, sync: syncOnWrite, files: make(map[int]*VBFile)}
	if syncOnWrite {
		st.syncer = NewSyncer()
	}
	return st, nil
}

// VB returns (opening lazily) the file for vBucket vb.
func (s *Store) VB(vb int) (*VBFile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[vb]; ok {
		return f, nil
	}
	f, err := Open(filepath.Join(s.dir, fmt.Sprintf("vb_%04d.couch", vb)), s.sync)
	if err != nil {
		return nil, err
	}
	f.syncer = s.syncer
	s.files[vb] = f
	return f, nil
}

// DropVB deletes vb's file (after a rebalance moves the partition away).
func (s *Store) DropVB(vb int) error {
	s.mu.Lock()
	f, ok := s.files[vb]
	delete(s.files, vb)
	s.mu.Unlock()
	if !ok {
		p := filepath.Join(s.dir, fmt.Sprintf("vb_%04d.couch", vb))
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
		return nil
	}
	return f.Remove()
}

// Close closes every open file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = make(map[int]*VBFile)
	return first
}
