// Package storage implements the append-only storage engine of the data
// service (paper §4.3.3): "With Couchbase's append-only storage engine
// design, document mutations always go to the end of a file. ... This
// improves disk write performance, as all updates are written
// sequentially. Compaction is periodically run, based on a
// fragmentation threshold, and while the system is online, to clean up
// stale data from the append-only storage."
//
// Each vBucket persists to its own file (as couchstore does). A file is
// a sequence of CRC-protected records; the newest record for a key
// wins. Recovery scans the file, stops at the first torn or corrupt
// record, and truncates the tail — the contract the asynchronous write
// path relies on: a crash loses only unflushed (still-in-memory)
// mutations, never corrupts flushed ones.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"couchgo/internal/events"
	"couchgo/internal/metrics"
)

// Storage-engine metrics, process-wide across every vBucket file.
// Fsync timing is the durability ladder's expensive rung (§2.3.2:
// replication ≪ persistence); compactions and reclaimed bytes track
// the append-only files' garbage collection.
var (
	mBytesWritten   = metrics.Default.Counter("couchgo_storage_bytes_written_total")
	mFsyncDuration  = metrics.Default.Histogram("couchgo_storage_fsync_duration_seconds")
	mCompactions    = metrics.Default.Counter("couchgo_storage_compactions_total")
	mBytesReclaimed = metrics.Default.Counter("couchgo_storage_compaction_reclaimed_bytes_total")

	// Secondary-path errors that cannot be propagated without masking
	// the primary failure (closing a file while unwinding, removing a
	// leftover compaction temp file). They must still be visible: a
	// leaking descriptor or an undeletable temp file is an operational
	// problem long before it is a correctness one.
	mCloseErrors  = metrics.Default.Counter("couchgo_storage_side_errors_total", "op", "close")
	mRemoveErrors = metrics.Default.Counter("couchgo_storage_side_errors_total", "op", "remove")
)

// closeCounted closes f, counting (rather than silently dropping) an
// error, for paths where a close failure must not mask the primary
// error being returned.
func closeCounted(f *os.File) {
	if err := f.Close(); err != nil {
		mCloseErrors.Inc()
	}
}

// Errors returned by the storage engine.
var (
	ErrNotFound = errors.New("storage: key not found")
	ErrClosed   = errors.New("storage: file closed")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta is the document metadata persisted alongside each value. It
// mirrors cache.Item's durable fields.
type Meta struct {
	Key      string
	Seqno    uint64
	CAS      uint64
	RevSeqno uint64
	Flags    uint32
	Expiry   int64
	Deleted  bool
}

// Record is one persisted mutation.
type Record struct {
	Meta
	Value []byte
}

const recordMagic = 0xC7

// record layout:
//
//	magic(1) flags(1) keyLen(2) valLen(4) seqno(8) cas(8) revSeqno(8)
//	docFlags(4) expiry(8) key valLen crc32c(4)
const headerSize = 1 + 1 + 2 + 4 + 8 + 8 + 8 + 4 + 8

func encodedSize(r *Record) int64 {
	return int64(headerSize + len(r.Key) + len(r.Value) + 4)
}

func encodeRecord(buf []byte, r *Record) []byte {
	start := len(buf)
	var flags byte
	if r.Deleted {
		flags |= 1
	}
	var hdr [headerSize]byte
	hdr[0] = recordMagic
	hdr[1] = flags
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(r.Key)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(r.Value)))
	binary.LittleEndian.PutUint64(hdr[8:], r.Seqno)
	binary.LittleEndian.PutUint64(hdr[16:], r.CAS)
	binary.LittleEndian.PutUint64(hdr[24:], r.RevSeqno)
	binary.LittleEndian.PutUint32(hdr[32:], r.Flags)
	binary.LittleEndian.PutUint64(hdr[36:], uint64(r.Expiry))
	buf = append(buf, hdr[:]...)
	buf = append(buf, r.Key...)
	buf = append(buf, r.Value...)
	crc := crc32.Checksum(buf[start:], castagnoli)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(buf, tail[:]...)
}

// decodeRecord parses one record from data. It returns the record, the
// total bytes consumed, and ok=false when the bytes do not form a
// complete valid record (torn tail).
func decodeRecord(data []byte) (Record, int, bool) {
	if len(data) < headerSize || data[0] != recordMagic {
		return Record{}, 0, false
	}
	keyLen := int(binary.LittleEndian.Uint16(data[2:]))
	valLen := int(binary.LittleEndian.Uint32(data[4:]))
	total := headerSize + keyLen + valLen + 4
	if len(data) < total {
		return Record{}, 0, false
	}
	crcWant := binary.LittleEndian.Uint32(data[total-4:])
	if crc32.Checksum(data[:total-4], castagnoli) != crcWant {
		return Record{}, 0, false
	}
	r := Record{
		Meta: Meta{
			Key:      string(data[headerSize : headerSize+keyLen]),
			Seqno:    binary.LittleEndian.Uint64(data[8:]),
			CAS:      binary.LittleEndian.Uint64(data[16:]),
			RevSeqno: binary.LittleEndian.Uint64(data[24:]),
			Flags:    binary.LittleEndian.Uint32(data[32:]),
			Expiry:   int64(binary.LittleEndian.Uint64(data[36:])),
			Deleted:  data[1]&1 != 0,
		},
	}
	if valLen > 0 {
		r.Value = append([]byte(nil), data[headerSize+keyLen:headerSize+keyLen+valLen]...)
	}
	return r, total, true
}

// recInfo is the in-memory index entry for the newest version of a key.
type recInfo struct {
	Meta
	offset int64 // record start in file
	size   int64
}

// VBFile is the storage for one vBucket: an append-only file plus an
// in-memory by-ID index rebuilt at open.
type VBFile struct {
	mu   sync.Mutex
	f    *os.File
	path string
	sync bool

	byID      map[string]recInfo
	fileBytes int64
	liveBytes int64 // bytes of current-version records
	highSeqno uint64
	closed    bool
}

// Open opens (creating if absent) the vBucket file at path. syncOnWrite
// requests fsync after each batch append (durable persistence); with it
// off, durability is at the mercy of the OS page cache — the tradeoff
// the paper's asynchronous design deliberately exposes.
func Open(path string, syncOnWrite bool) (*VBFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	v := &VBFile{f: f, path: path, sync: syncOnWrite, byID: make(map[string]recInfo)}
	if err := v.recover(); err != nil {
		closeCounted(f)
		return nil, err
	}
	return v, nil
}

// recover scans the file, building the index and truncating any torn
// tail left by a crash. It takes the lock for the analyzer's benefit:
// the file has not escaped Open yet, so there is no contention.
func (v *VBFile) recover() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	data, err := io.ReadAll(v.f)
	if err != nil {
		return err
	}
	off := int64(0)
	for off < int64(len(data)) {
		rec, n, ok := decodeRecord(data[off:])
		if !ok {
			// Torn or corrupt tail: truncate. Everything before is valid.
			if err := v.f.Truncate(off); err != nil {
				return err
			}
			break
		}
		v.indexRecordLocked(&rec, off, int64(n))
		off += int64(n)
	}
	v.fileBytes = off
	_, err = v.f.Seek(off, io.SeekStart)
	return err
}

func (v *VBFile) indexRecordLocked(rec *Record, off, size int64) {
	if old, ok := v.byID[rec.Key]; ok {
		v.liveBytes -= old.size
	}
	v.byID[rec.Key] = recInfo{Meta: rec.Meta, offset: off, size: size}
	v.liveBytes += size
	if rec.Seqno > v.highSeqno {
		v.highSeqno = rec.Seqno
	}
}

// Append writes a batch of records sequentially at the end of the file.
// The batch is a single write syscall (the disk-write queue aggregates
// mutations, §2.3.2), followed by one fsync when syncOnWrite is set.
func (v *VBFile) Append(recs []Record) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	offsets := make([]int64, len(recs))
	off := v.fileBytes
	for i := range recs {
		offsets[i] = off
		before := len(buf)
		buf = encodeRecord(buf, &recs[i])
		off += int64(len(buf) - before)
	}
	if _, err := v.f.Write(buf); err != nil {
		return err
	}
	mBytesWritten.Add(uint64(len(buf)))
	if v.sync {
		t0 := time.Now()
		if err := v.f.Sync(); err != nil {
			return err
		}
		mFsyncDuration.ObserveSince(t0)
	}
	for i := range recs {
		v.indexRecordLocked(&recs[i], offsets[i], encodedSize(&recs[i]))
	}
	v.fileBytes = off
	return nil
}

// Get reads the newest version of key. Deleted keys report ErrNotFound
// (tombstone metadata is still reachable via GetMeta).
func (v *VBFile) Get(key string) (Record, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.getLocked(key)
}

func (v *VBFile) getLocked(key string) (Record, error) {
	if v.closed {
		return Record{}, ErrClosed
	}
	info, ok := v.byID[key]
	if !ok || info.Deleted {
		return Record{}, ErrNotFound
	}
	return v.readAtLocked(info)
}

func (v *VBFile) readAtLocked(info recInfo) (Record, error) {
	buf := make([]byte, info.size)
	if _, err := v.f.ReadAt(buf, info.offset); err != nil {
		return Record{}, fmt.Errorf("storage: read %s@%d: %w", info.Key, info.offset, err)
	}
	rec, _, ok := decodeRecord(buf)
	if !ok {
		return Record{}, fmt.Errorf("storage: corrupt record for %s at offset %d", info.Key, info.offset)
	}
	return rec, nil
}

// GetMeta returns the newest metadata for key, including tombstones.
func (v *VBFile) GetMeta(key string) (Meta, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	info, ok := v.byID[key]
	if !ok {
		return Meta{}, ErrNotFound
	}
	return info.Meta, nil
}

// HighSeqno returns the highest persisted sequence number. The
// durability watermark PersistTo waits on.
func (v *VBFile) HighSeqno() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.highSeqno
}

// ScanBySeqno iterates the newest version of every key (including
// tombstones) with seqno in (fromExclusive, toInclusive], in seqno
// order. DCP backfill for late-joining streams runs on this.
func (v *VBFile) ScanBySeqno(fromExclusive, toInclusive uint64, fn func(Record) bool) error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	infos := make([]recInfo, 0, len(v.byID))
	for _, info := range v.byID {
		if info.Seqno > fromExclusive && info.Seqno <= toInclusive {
			infos = append(infos, info)
		}
	}
	v.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Seqno < infos[j].Seqno })
	for _, info := range infos {
		v.mu.Lock()
		if v.closed {
			v.mu.Unlock()
			return ErrClosed
		}
		// Re-check: the key may have been superseded since the snapshot;
		// the newer version will carry a higher seqno and is either in
		// range (visited later is wrong — skip stale) or beyond range.
		cur, ok := v.byID[info.Key]
		if !ok || cur.Seqno != info.Seqno {
			v.mu.Unlock()
			continue
		}
		rec, err := v.readAtLocked(info)
		v.mu.Unlock()
		if err != nil {
			return err
		}
		if !fn(rec) {
			return nil
		}
	}
	return nil
}

// Stats describes file health for compaction decisions.
type Stats struct {
	FileBytes int64
	LiveBytes int64
	Items     int
	HighSeqno uint64
}

// Stats returns a snapshot of file statistics.
func (v *VBFile) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return Stats{FileBytes: v.fileBytes, LiveBytes: v.liveBytes, Items: len(v.byID), HighSeqno: v.highSeqno}
}

// Fragmentation returns the fraction of the file occupied by stale
// record versions, the paper's compaction trigger metric.
func (v *VBFile) Fragmentation() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.fileBytes == 0 {
		return 0
	}
	return float64(v.fileBytes-v.liveBytes) / float64(v.fileBytes)
}

// Compact rewrites the file keeping only the newest version of each key
// (tombstones included, so replicas and indexes can still learn of
// deletions), then atomically swaps it in. The vBucket stays readable
// and writable from the caller's perspective; only this file's own
// operations serialize with the copy.
func (v *VBFile) Compact() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	startEv := events.New(events.Compaction, events.SevInfo, "compaction started")
	startEv.Fields = map[string]string{
		"path":       v.path,
		"file_bytes": strconv.FormatInt(v.fileBytes, 10),
		"live_bytes": strconv.FormatInt(v.liveBytes, 10),
	}
	events.Default.Publish(startEv)
	tmpPath := v.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	// After a successful rename the temp path no longer exists; on any
	// failure path this cleans up the partial file. Either way a
	// removal error (other than "already gone") is counted, not lost.
	defer func() {
		if err := os.Remove(tmpPath); err != nil && !os.IsNotExist(err) {
			mRemoveErrors.Inc()
		}
	}()

	infos := make([]recInfo, 0, len(v.byID))
	for _, info := range v.byID {
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Seqno < infos[j].Seqno })

	newIndex := make(map[string]recInfo, len(infos))
	var buf []byte
	var off int64
	var live int64
	for _, info := range infos {
		rec, err := v.readAtLocked(info)
		if err != nil {
			closeCounted(tmp)
			return err
		}
		buf = encodeRecord(buf[:0], &rec)
		if _, err := tmp.Write(buf); err != nil {
			closeCounted(tmp)
			return err
		}
		size := int64(len(buf))
		newIndex[rec.Key] = recInfo{Meta: rec.Meta, offset: off, size: size}
		off += size
		live += size
	}
	if err := tmp.Sync(); err != nil {
		closeCounted(tmp)
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, v.path); err != nil {
		return err
	}
	nf, err := os.OpenFile(v.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(off, io.SeekStart); err != nil {
		closeCounted(nf)
		return err
	}
	// The swap already succeeded; a close failure on the replaced
	// handle cannot be propagated meaningfully, only counted.
	closeCounted(v.f)
	v.f = nf
	mCompactions.Inc()
	reclaimed := v.fileBytes - off
	if reclaimed > 0 {
		mBytesReclaimed.Add(uint64(reclaimed))
	}
	doneEv := events.New(events.Compaction, events.SevInfo, "compaction done")
	doneEv.Fields = map[string]string{
		"path":            v.path,
		"file_bytes":      strconv.FormatInt(off, 10),
		"reclaimed_bytes": strconv.FormatInt(reclaimed, 10),
	}
	events.Default.Publish(doneEv)
	v.byID = newIndex
	v.fileBytes = off
	v.liveBytes = live
	return nil
}

// Close releases the file handle.
func (v *VBFile) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil
	}
	v.closed = true
	return v.f.Close()
}

// Remove closes and deletes the file (vBucket dropped from this node).
// A close failure does not stop the removal; both errors are reported.
func (v *VBFile) Remove() error {
	return errors.Join(v.Close(), os.Remove(v.path))
}

// Store manages the per-vBucket files of one bucket on one node.
type Store struct {
	mu    sync.Mutex
	dir   string
	sync  bool
	files map[int]*VBFile
}

// NewStore creates a store rooted at dir (created if needed).
func NewStore(dir string, syncOnWrite bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, sync: syncOnWrite, files: make(map[int]*VBFile)}, nil
}

// VB returns (opening lazily) the file for vBucket vb.
func (s *Store) VB(vb int) (*VBFile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[vb]; ok {
		return f, nil
	}
	f, err := Open(filepath.Join(s.dir, fmt.Sprintf("vb_%04d.couch", vb)), s.sync)
	if err != nil {
		return nil, err
	}
	s.files[vb] = f
	return f, nil
}

// DropVB deletes vb's file (after a rebalance moves the partition away).
func (s *Store) DropVB(vb int) error {
	s.mu.Lock()
	f, ok := s.files[vb]
	delete(s.files, vb)
	s.mu.Unlock()
	if !ok {
		p := filepath.Join(s.dir, fmt.Sprintf("vb_%04d.couch", vb))
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
		return nil
	}
	return f.Remove()
}

// Close closes every open file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = make(map[int]*VBFile)
	return first
}
