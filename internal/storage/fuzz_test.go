package storage

import (
	"bytes"
	"testing"
)

// FuzzRecordDecode feeds arbitrary bytes to the append-only file's
// record parser — the code path recovery runs over a torn or corrupted
// tail. decodeRecord must never panic, must report a consumed length
// within the input when it accepts, and anything encodeRecord produces
// must decode back to the same record.
func FuzzRecordDecode(f *testing.F) {
	seed := &Record{
		Meta:  Meta{Key: "k", Seqno: 7, CAS: 9, RevSeqno: 1, Flags: 2, Expiry: 3},
		Value: []byte("v"),
	}
	enc := encodeRecord(nil, seed)
	f.Add(enc)
	f.Add(enc[:len(enc)-1]) // torn tail
	f.Add([]byte{})
	corrupt := append([]byte(nil), enc...)
	corrupt[len(corrupt)-1] ^= 0xFF // bad CRC
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, ok := decodeRecord(data)
		if !ok {
			if n != 0 {
				t.Fatalf("rejected input but consumed %d bytes", n)
			}
		} else {
			if n < headerSize+4 || n > len(data) {
				t.Fatalf("accepted input but consumed %d of %d bytes", n, len(data))
			}
			if len(rec.Key) > len(data) || len(rec.Value) > len(data) {
				t.Fatalf("decoded lengths exceed input: key=%d value=%d input=%d",
					len(rec.Key), len(rec.Value), len(data))
			}
		}

		// Encode a record derived from the fuzz input and require an
		// exact decode round-trip.
		k := len(data) / 2
		if k > 0xFFFF {
			k = 0xFFFF
		}
		in := Record{
			Meta: Meta{
				Key:      string(data[:k]),
				Seqno:    uint64(len(data)),
				CAS:      42,
				RevSeqno: 3,
				Flags:    0xDEAD,
				Expiry:   -1,
				Deleted:  len(data)%2 == 0,
			},
			Value: data[k:],
		}
		enc := encodeRecord(nil, &in)
		out, n2, ok2 := decodeRecord(enc)
		if !ok2 {
			t.Fatalf("encodeRecord output rejected by decodeRecord")
		}
		if n2 != len(enc) {
			t.Fatalf("round-trip consumed %d of %d bytes", n2, len(enc))
		}
		if out.Key != in.Key || out.Seqno != in.Seqno || out.CAS != in.CAS ||
			out.RevSeqno != in.RevSeqno || out.Flags != in.Flags ||
			out.Expiry != in.Expiry || out.Deleted != in.Deleted ||
			!bytes.Equal(out.Value, in.Value) {
			t.Fatalf("round-trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
	})
}
