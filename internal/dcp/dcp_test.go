package dcp

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// memSource is a SnapshotSource over an in-memory latest-version map.
type memSource struct {
	mu    sync.Mutex
	items map[string]Mutation
	high  uint64
}

func newMemSource() *memSource { return &memSource{items: map[string]Mutation{}} }

func (m *memSource) apply(mut Mutation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.items[mut.Key] = mut
	if mut.Seqno > m.high {
		m.high = mut.Seqno
	}
}

func (m *memSource) Snapshot(from uint64) ([]Mutation, uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Mutation
	for _, it := range m.items {
		if it.Seqno > from {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seqno < out[j].Seqno })
	return out, m.high, nil
}

// publish applies to the source and the producer, as the vBucket layer
// does under its table lock.
func publish(src *memSource, p *Producer, m Mutation) {
	src.apply(m)
	p.Publish(m)
}

func collect(t *testing.T, s *Stream, n int) []Mutation {
	t.Helper()
	var out []Mutation
	timeout := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case m, ok := <-s.C():
			if !ok {
				t.Fatalf("stream closed after %d of %d mutations", len(out), n)
			}
			out = append(out, m)
		case <-timeout:
			t.Fatalf("timeout after %d of %d mutations", len(out), n)
		}
	}
	return out
}

func TestLiveStreamDeliversInOrder(t *testing.T) {
	src := newMemSource()
	p := NewProducer(3, src)
	defer p.Close()
	s, err := p.OpenStream("test", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 20; i++ {
		publish(src, p, Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}
	got := collect(t, s, 20)
	for i, m := range got {
		if m.Seqno != uint64(i+1) {
			t.Fatalf("mutation %d has seqno %d", i, m.Seqno)
		}
		if m.VB != 3 {
			t.Fatalf("vb not stamped: %+v", m)
		}
	}
}

func TestBackfillThenLive(t *testing.T) {
	src := newMemSource()
	p := NewProducer(0, src)
	defer p.Close()
	// Pre-existing state: k1..k5, with k2 rewritten (dedup expected).
	for i := 1; i <= 5; i++ {
		publish(src, p, Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}
	publish(src, p, Mutation{Key: "k2", Seqno: 6})

	s, err := p.OpenStream("late", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Live traffic after the stream opens.
	publish(src, p, Mutation{Key: "k7", Seqno: 7})
	got := collect(t, s, 6)
	// Backfill: k1@1, k3@3, k4@4, k5@5, k2@6 (deduplicated), then live k7@7.
	var seqnos []uint64
	for _, m := range got {
		seqnos = append(seqnos, m.Seqno)
	}
	want := []uint64{1, 3, 4, 5, 6, 7}
	for i := range want {
		if seqnos[i] != want[i] {
			t.Fatalf("seqnos = %v, want %v", seqnos, want)
		}
	}
}

func TestStreamFromNonZeroSeqno(t *testing.T) {
	src := newMemSource()
	p := NewProducer(0, src)
	defer p.Close()
	for i := 1; i <= 10; i++ {
		publish(src, p, Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}
	s, err := p.OpenStream("resume", 7)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := collect(t, s, 3)
	if got[0].Seqno != 8 || got[2].Seqno != 10 {
		t.Fatalf("resume delivered %+v", got)
	}
}

func TestNoDuplicatesAcrossBackfillLiveBoundary(t *testing.T) {
	// Hammer the boundary: open streams while publishing concurrently;
	// each stream must see every seqno at most once and miss none after
	// its start point (modulo dedup of superseded versions).
	src := newMemSource()
	p := NewProducer(0, src)
	defer p.Close()

	var mu sync.Mutex
	seq := uint64(0)
	next := func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		seq++
		s := seq
		return s
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := next()
			// Unique keys so dedup never hides a seqno.
			mu.Lock()
			publish(src, p, Mutation{Key: fmt.Sprintf("k%d", s), Seqno: s})
			mu.Unlock()
		}
	}()

	for i := 0; i < 5; i++ {
		time.Sleep(2 * time.Millisecond)
		s, err := p.OpenStream(fmt.Sprintf("s%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, s, 30)
		seen := map[uint64]bool{}
		last := uint64(0)
		for _, m := range got {
			if seen[m.Seqno] {
				t.Fatalf("duplicate seqno %d", m.Seqno)
			}
			seen[m.Seqno] = true
			if m.Seqno <= last {
				t.Fatalf("out of order: %d after %d", m.Seqno, last)
			}
			last = m.Seqno
		}
		s.Close()
	}
	close(stop)
	wg.Wait()
}

func TestSlowConsumerDoesNotBlockPublisher(t *testing.T) {
	src := newMemSource()
	p := NewProducer(0, src)
	defer p.Close()
	s, _ := p.OpenStream("slow", 0)
	defer s.Close()
	// Publish far more than the channel buffer without reading.
	done := make(chan struct{})
	go func() {
		for i := 1; i <= 5000; i++ {
			publish(src, p, Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on slow consumer")
	}
	got := collect(t, s, 5000)
	if got[4999].Seqno != 5000 {
		t.Fatal("tail mutation wrong")
	}
}

func TestCloseStream(t *testing.T) {
	src := newMemSource()
	p := NewProducer(0, src)
	defer p.Close()
	s, _ := p.OpenStream("x", 0)
	s.Close()
	s.Close() // idempotent
	// Channel eventually closes.
	timeout := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-s.C():
			if !ok {
				return
			}
		case <-timeout:
			t.Fatal("channel never closed")
		}
	}
}

func TestProducerCloseEndsStreams(t *testing.T) {
	src := newMemSource()
	p := NewProducer(0, src)
	s, _ := p.OpenStream("x", 0)
	p.Close()
	timeout := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-s.C():
			if !ok {
				goto closedOK
			}
		case <-timeout:
			t.Fatal("stream not ended by producer close")
		}
	}
closedOK:
	if _, err := p.OpenStream("y", 0); err != ErrClosed {
		t.Errorf("open on closed producer: %v", err)
	}
	p.Publish(Mutation{Seqno: 1}) // must not panic
}

func TestDeletionsFlowThroughStreams(t *testing.T) {
	src := newMemSource()
	p := NewProducer(0, src)
	defer p.Close()
	publish(src, p, Mutation{Key: "k", Seqno: 1})
	publish(src, p, Mutation{Key: "k", Seqno: 2, Deleted: true})
	s, _ := p.OpenStream("x", 0)
	defer s.Close()
	got := collect(t, s, 1)
	if !got[0].Deleted || got[0].Seqno != 2 {
		t.Fatalf("tombstone not delivered: %+v", got[0])
	}
}

func TestHighSeqnoTracking(t *testing.T) {
	src := newMemSource()
	p := NewProducer(0, src)
	defer p.Close()
	if p.HighSeqno() != 0 {
		t.Fatal("fresh producer high seqno != 0")
	}
	publish(src, p, Mutation{Key: "a", Seqno: 9})
	if p.HighSeqno() != 9 {
		t.Fatalf("high = %d", p.HighSeqno())
	}
}

func TestStreamLagsSlowConsumer(t *testing.T) {
	src := newMemSource()
	p := NewProducer(0, src)
	defer p.Close()
	s, err := p.OpenStream("gsi-projector", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Publish 200 mutations without draining the stream. The out
	// channel buffers 64, so processed can reach at most 64 and the
	// reported lag must stay >= 136.
	for i := 1; i <= 200; i++ {
		publish(src, p, Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}
	lags := p.StreamLags()
	if lag := lags["gsi-projector"]; lag < 136 {
		t.Fatalf("slow consumer lag = %d, want >= 136", lag)
	}
	// Catch up: drain everything, then the lag must fall to zero.
	collect(t, s, 200)
	deadline := time.Now().Add(5 * time.Second)
	for {
		// The caught-up stream must still be listed, at lag zero —
		// a missing entry would read as a vanished gauge series.
		lag, ok := p.StreamLags()["gsi-projector"]
		if ok && lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag stuck at %d (listed=%v) after catch-up", lag, ok)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFreshStreamBackfillCountsAsLag(t *testing.T) {
	src := newMemSource()
	p := NewProducer(0, src)
	defer p.Close()
	// Pre-existing data, no stream yet.
	for i := 1; i <= 100; i++ {
		publish(src, p, Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}
	s, err := p.OpenStream("late", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing drained: the whole backfill minus the 64-slot channel
	// buffer is still owed to the consumer.
	if lag := p.StreamLags()["late"]; lag < 36 {
		t.Fatalf("fresh stream lag = %d, want >= 36", lag)
	}
	collect(t, s, 100)
	deadline := time.Now().Add(5 * time.Second)
	for {
		lag, ok := p.StreamLags()["late"]
		if ok && lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag stuck at %d (listed=%v) after drain", lag, ok)
		}
		time.Sleep(time.Millisecond)
	}
}
