// Package dcp implements the Database Change Protocol (paper §4.3.2):
// "Couchbase has an internal Database Change Protocol (DCP) that is
// utilized to keep all of the different components in sync and to move
// data between the components at high speed. DCP lies at the heart of
// Couchbase Server and supports its memory-first architecture by
// decoupling potential I/O bottlenecks from many critical functions."
//
// A Producer exists per vBucket on the node holding a copy of that
// vBucket. Consumers — replicas, the view engine, the GSI projector,
// the FTS indexer, and XDCR — open named streams from a start sequence
// number. A stream first delivers a backfill snapshot (the deduplicated
// latest versions of documents past the start seqno, sourced from the
// cache/storage), then seamlessly switches to the live in-memory feed.
// Delivery is strictly seqno-ordered; consumers never observe a gap
// they cannot detect.
package dcp

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned when operating on a closed producer or stream.
var ErrClosed = errors.New("dcp: closed")

// Mutation is one document change flowing through the protocol.
type Mutation struct {
	VB       int
	Key      string
	Value    []byte
	Seqno    uint64
	CAS      uint64
	RevSeqno uint64
	Flags    uint32
	Expiry   int64
	Deleted  bool
}

// SnapshotSource provides deduplicated backfill state: every document
// (including tombstones) whose latest seqno is greater than
// fromExclusive, plus the seqno high-water mark of the snapshot. The
// vBucket layer implements this over the object-managed cache, falling
// back to the storage engine for evicted values.
type SnapshotSource interface {
	Snapshot(fromExclusive uint64) (items []Mutation, snapshotHigh uint64, err error)
}

// Producer fans one vBucket's mutation sequence out to streams.
type Producer struct {
	vb     int
	source SnapshotSource

	mu      sync.Mutex
	streams map[*Stream]struct{}
	high    uint64
	closed  bool
}

// NewProducer creates a producer for vb backed by the snapshot source.
func NewProducer(vb int, source SnapshotSource) *Producer {
	return &Producer{vb: vb, source: source, streams: make(map[*Stream]struct{})}
}

// Publish delivers a mutation to all open streams. The caller must
// invoke Publish in seqno order (the cache's OnMutate hook guarantees
// this). Publish never blocks on slow consumers: each stream has an
// unbounded in-memory queue, the protocol's "memory-first" decoupling.
func (p *Producer) Publish(m Mutation) {
	m.VB = p.vb
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if m.Seqno > p.high {
		p.high = m.Seqno
	}
	for s := range p.streams {
		s.enqueueLive(m)
	}
}

// HighSeqno reports the highest seqno published so far.
func (p *Producer) HighSeqno() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.high
}

// StreamLags reports items-remaining per open stream: the producer's
// high seqno minus the seqno last delivered to each consumer — the
// paper's §4.3.4 index-freshness metric, generalized to every DCP
// consumer. Seqnos are dense per vBucket, so the difference counts
// undelivered mutations.
func (p *Producer) StreamLags() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.streams) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(p.streams))
	for s := range p.streams {
		var lag uint64
		if done := s.processed.Load(); p.high > done {
			lag = p.high - done
		}
		// Streams sharing a name (same consumer across reopen) keep
		// the worst lag. Caught-up streams still report an entry, so
		// a scrape sees lag 0 rather than a vanished series.
		if cur, ok := out[s.Name]; !ok || lag > cur {
			out[s.Name] = lag
		}
	}
	return out
}

// Close terminates the producer and all its streams.
func (p *Producer) Close() {
	p.mu.Lock()
	streams := make([]*Stream, 0, len(p.streams))
	for s := range p.streams {
		streams = append(streams, s)
	}
	p.closed = true
	p.streams = make(map[*Stream]struct{})
	p.mu.Unlock()
	for _, s := range streams {
		s.Close()
	}
}

// OpenStream starts a named stream delivering every change after
// fromSeqno: first a backfill snapshot, then live mutations. The name
// identifies the consumer in stats and tests.
func (p *Producer) OpenStream(name string, fromSeqno uint64) (*Stream, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	s := &Stream{
		Name:            name,
		producer:        p,
		out:             make(chan Mutation, 64),
		wake:            make(chan struct{}, 1),
		backfillPending: true,
	}
	s.processed.Store(fromSeqno)
	p.streams[s] = struct{}{}
	p.mu.Unlock()

	// Snapshot after attaching to the live feed: anything published
	// between attach and scan is either in the snapshot or queued live
	// with a seqno above the snapshot watermark; the pump dedups.
	items, high, err := p.source.Snapshot(fromSeqno)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.mu.Lock()
	s.backfill = items
	s.snapshotHigh = high
	s.backfillPending = false
	s.mu.Unlock()
	// Existing data a fresh stream must backfill counts as lag, so the
	// producer's watermark covers the snapshot even before the first
	// live publish.
	p.mu.Lock()
	if high > p.high {
		p.high = high
	}
	p.mu.Unlock()
	s.kick()
	go s.pump()
	return s, nil
}

// Stream is one consumer's ordered view of a vBucket's changes.
// Mutations arrive on C; the channel closes when the stream ends.
type Stream struct {
	Name     string
	producer *Producer

	mu              sync.Mutex
	backfill        []Mutation
	backfillPending bool
	snapshotHigh    uint64
	live            []Mutation
	closed          bool

	// processed is the seqno of the last mutation handed to the
	// consumer (plus anything sitting in the small out buffer); the
	// producer reads it to compute stream lag.
	processed atomic.Uint64

	out  chan Mutation
	wake chan struct{}
}

// Processed returns the seqno of the last mutation delivered to the
// consumer side of the stream.
func (s *Stream) Processed() uint64 { return s.processed.Load() }

// C returns the delivery channel.
func (s *Stream) C() <-chan Mutation { return s.out }

func (s *Stream) enqueueLive(m Mutation) {
	s.mu.Lock()
	if !s.closed {
		s.live = append(s.live, m)
	}
	s.mu.Unlock()
	s.kick()
}

func (s *Stream) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pump moves queued mutations to the out channel: the entire backfill
// first (in seqno order), then live mutations with seqno beyond the
// snapshot high-water mark.
func (s *Stream) pump() {
	defer close(s.out)
	sentBackfill := false
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		var batch []Mutation
		if !sentBackfill {
			if s.backfillPending {
				s.mu.Unlock()
				<-s.wake
				continue
			}
			batch = s.backfill
			s.backfill = nil
			sentBackfill = true
			s.mu.Unlock()
			for _, m := range batch {
				if !s.send(m) {
					return
				}
			}
			continue
		}
		if len(s.live) == 0 {
			s.mu.Unlock()
			<-s.wake
			continue
		}
		batch = s.live
		s.live = nil
		high := s.snapshotHigh
		s.mu.Unlock()
		for _, m := range batch {
			if m.Seqno <= high {
				continue // already covered by the backfill snapshot
			}
			if !s.send(m) {
				return
			}
		}
	}
}

func (s *Stream) send(m Mutation) bool {
	for {
		select {
		case s.out <- m:
			s.processed.Store(m.Seqno)
			return true
		case <-s.wake:
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return false
			}
		}
	}
}

// Close detaches the stream from the producer and closes C after the
// pump drains.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.producer.mu.Lock()
	delete(s.producer.streams, s)
	s.producer.mu.Unlock()
	s.kick()
}
