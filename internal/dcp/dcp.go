// Package dcp implements the Database Change Protocol (paper §4.3.2):
// "Couchbase has an internal Database Change Protocol (DCP) that is
// utilized to keep all of the different components in sync and to move
// data between the components at high speed. DCP lies at the heart of
// Couchbase Server and supports its memory-first architecture by
// decoupling potential I/O bottlenecks from many critical functions."
//
// A Producer exists per vBucket on the node holding a copy of that
// vBucket. Consumers — replicas, the view engine, the GSI projector,
// the FTS indexer, and XDCR — open named streams from a start sequence
// number. A stream first delivers a backfill snapshot (the deduplicated
// latest versions of documents past the start seqno, sourced from the
// cache/storage), then seamlessly switches to the live in-memory feed.
// Delivery is strictly seqno-ordered; consumers never observe a gap
// they cannot detect.
package dcp

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"couchgo/internal/events"
	"couchgo/internal/trace"
)

// ErrClosed is returned when operating on a closed producer or stream.
var ErrClosed = errors.New("dcp: closed")

// FailoverEntry is one branch of a vBucket's mutation history: the
// UUID minted when a copy took over as active, and the seqno at which
// that branch began. The newest entry is last; its UUID is the
// vBucket's current UUID.
type FailoverEntry struct {
	UUID  uint64 `json:"uuid"`
	Seqno uint64 `json:"seqno"`
}

// RollbackError is returned by ResumeStream when the consumer's
// (UUID, seqno) position lies on a branch of history this producer
// does not have: mutations past Seqno on the presented branch were
// never seen by the current lineage and must be rewound. The consumer
// rolls its state back to at most Seqno and re-streams.
type RollbackError struct {
	// UUID is the producer's current vBucket UUID, for the consumer's
	// next resume attempt.
	UUID uint64
	// Seqno is the highest seqno of the presented history that is also
	// part of this producer's lineage (the divergence point).
	Seqno uint64
}

func (e *RollbackError) Error() string {
	return fmt.Sprintf("dcp: rollback to seqno %d (vbucket uuid %d)", e.Seqno, e.UUID)
}

// uuidCounter mints process-unique vBucket UUIDs. Real DCP uses random
// 64-bit UUIDs; a counter gives the same uniqueness deterministically.
var uuidCounter atomic.Uint64

func nextUUID() uint64 { return uuidCounter.Add(1) }

// MutationStream is the consumer-side view of one open DCP stream:
// ordered mutations on C, the vBucket UUID the stream was opened
// under, and the last seqno delivered. *Stream implements it for the
// in-process path; the transport layer implements it over a socket so
// feed consumers resume via (UUID, seqno) across processes without
// knowing which side of a wire the producer lives on.
type MutationStream interface {
	// C returns the delivery channel; it closes when the stream ends.
	C() <-chan Mutation
	// StreamUUID is the vBucket UUID the stream was opened under — the
	// consumer records it alongside its applied seqno as resume state.
	StreamUUID() uint64
	// Processed is the seqno of the last mutation handed to the
	// consumer side.
	Processed() uint64
	// Close detaches the stream.
	Close()
}

// StreamSource is the producer-side seam feed consumers attach to:
// everything a resumable DCP consumer needs from "the copy of this
// vBucket, wherever it lives". *Producer implements it directly
// (loopback); the transport layer's remote producer implements it by
// speaking the memcproto DCP opcodes to the owning node.
type StreamSource interface {
	// ResumeStream reopens a named stream at a recorded (uuid, seqno)
	// position, validating it against the failover log; uuid 0 skips
	// validation (a fresh consumer, or an explicit from-scratch open).
	ResumeStream(name string, uuid, fromSeqno uint64) (MutationStream, error)
	// HighSeqno reports the highest seqno published so far.
	HighSeqno() uint64
	// FailoverLog returns the vBucket's history branches, oldest first.
	FailoverLog() []FailoverEntry
}

var (
	_ StreamSource   = (*Producer)(nil)
	_ MutationStream = (*Stream)(nil)
)

// Mutation is one document change flowing through the protocol.
type Mutation struct {
	VB       int
	Key      string
	Value    []byte
	Seqno    uint64
	CAS      uint64
	RevSeqno uint64
	Flags    uint32
	Expiry   int64
	Deleted  bool
	// Trace, when non-nil, is the sampled trace of the originating
	// client write; downstream consumers (flusher, replicas, feeds)
	// attach their apply spans to it so the trace shows every
	// asynchronous hop. Backfill snapshots carry no trace.
	Trace *trace.Trace
}

// SnapshotSource provides deduplicated backfill state: every document
// (including tombstones) whose latest seqno is greater than
// fromExclusive, plus the seqno high-water mark of the snapshot. The
// vBucket layer implements this over the object-managed cache, falling
// back to the storage engine for evicted values.
type SnapshotSource interface {
	Snapshot(fromExclusive uint64) (items []Mutation, snapshotHigh uint64, err error)
}

// Producer fans one vBucket's mutation sequence out to streams.
type Producer struct {
	vb     int
	source SnapshotSource

	mu      sync.Mutex
	streams map[*Stream]struct{}
	high    uint64
	closed  bool
	// failover is the vBucket's failover log, oldest branch first. It
	// always has at least one entry; the last entry's UUID is current.
	failover []FailoverEntry
}

// NewProducer creates a producer for vb backed by the snapshot source.
// The fresh vBucket starts a new history branch at seqno 0.
func NewProducer(vb int, source SnapshotSource) *Producer {
	return &Producer{
		vb:       vb,
		source:   source,
		streams:  make(map[*Stream]struct{}),
		failover: []FailoverEntry{{UUID: nextUUID(), Seqno: 0}},
	}
}

// UUID returns the vBucket's current UUID (the newest failover entry).
func (p *Producer) UUID() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failover[len(p.failover)-1].UUID
}

// FailoverLog returns a copy of the failover log, oldest branch first.
func (p *Producer) FailoverLog() []FailoverEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]FailoverEntry(nil), p.failover...)
}

// SetFailoverLog replaces the producer's failover log. Replica copies
// adopt the active's log so that, if they are later promoted, they can
// validate consumer histories recorded against the old active.
func (p *Producer) SetFailoverLog(entries []FailoverEntry) {
	if len(entries) == 0 {
		return
	}
	p.mu.Lock()
	p.failover = append([]FailoverEntry(nil), entries...)
	p.mu.Unlock()
}

// Takeover appends a new branch to the failover log: this copy became
// active with history up to seqno. Mutations another lineage assigned
// beyond seqno are not part of this producer's history, and consumers
// resuming past it will be told to roll back.
func (p *Producer) Takeover(seqno uint64) {
	p.mu.Lock()
	p.failover = append(p.failover, FailoverEntry{UUID: nextUUID(), Seqno: seqno})
	if seqno > p.high {
		p.high = seqno
	}
	p.mu.Unlock()
}

// Publish delivers a mutation to all open streams. The caller must
// invoke Publish in seqno order (the cache's OnMutate hook guarantees
// this). Publish never blocks on slow consumers: each stream has an
// unbounded in-memory queue, the protocol's "memory-first" decoupling.
func (p *Producer) Publish(m Mutation) {
	m.VB = p.vb
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if m.Seqno > p.high {
		p.high = m.Seqno
	}
	for s := range p.streams {
		s.enqueueLive(m)
	}
}

// HighSeqno reports the highest seqno published so far.
func (p *Producer) HighSeqno() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.high
}

// StreamLags reports items-remaining per open stream: the producer's
// high seqno minus the seqno last delivered to each consumer — the
// paper's §4.3.4 index-freshness metric, generalized to every DCP
// consumer. Seqnos are dense per vBucket, so the difference counts
// undelivered mutations.
func (p *Producer) StreamLags() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.streams) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(p.streams))
	for s := range p.streams {
		var lag uint64
		if done := s.processed.Load(); p.high > done {
			lag = p.high - done
		}
		// Streams sharing a name (same consumer across reopen) keep
		// the worst lag. Caught-up streams still report an entry, so
		// a scrape sees lag 0 rather than a vanished series.
		if cur, ok := out[s.Name]; !ok || lag > cur {
			out[s.Name] = lag
		}
	}
	return out
}

// Close terminates the producer and all its streams.
func (p *Producer) Close() {
	p.mu.Lock()
	streams := make([]*Stream, 0, len(p.streams))
	for s := range p.streams {
		streams = append(streams, s)
	}
	p.closed = true
	p.streams = make(map[*Stream]struct{})
	p.mu.Unlock()
	for _, s := range streams {
		s.Close()
	}
}

// OpenStream starts a named stream delivering every change after
// fromSeqno: first a backfill snapshot, then live mutations. The name
// identifies the consumer in stats and tests. OpenStream trusts the
// caller's fromSeqno without history validation — replica bootstrap
// and index backfill use it; resumable consumers use ResumeStream.
func (p *Producer) OpenStream(name string, fromSeqno uint64) (*Stream, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	s := &Stream{
		Name:            name,
		UUID:            p.failover[len(p.failover)-1].UUID,
		producer:        p,
		out:             make(chan Mutation, 64),
		wake:            make(chan struct{}, 1),
		backfillPending: true,
	}
	s.processed.Store(fromSeqno)
	p.streams[s] = struct{}{}
	p.mu.Unlock()

	// Snapshot after attaching to the live feed: anything published
	// between attach and scan is either in the snapshot or queued live
	// with a seqno above the snapshot watermark; the pump dedups.
	items, high, err := p.source.Snapshot(fromSeqno)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.mu.Lock()
	s.backfill = items
	s.snapshotHigh = high
	s.backfillPending = false
	s.mu.Unlock()
	// Existing data a fresh stream must backfill counts as lag, so the
	// producer's watermark covers the snapshot even before the first
	// live publish.
	p.mu.Lock()
	if high > p.high {
		p.high = high
	}
	p.mu.Unlock()
	s.kick()
	go s.pump()
	return s, nil
}

// ResumeStream reopens a named stream at a position the consumer
// recorded earlier: uuid is the vBucket UUID the consumer last
// streamed under and fromSeqno the last seqno it applied. The producer
// checks the pair against its failover log; if the consumer's branch
// diverged before fromSeqno — it holds mutations a failed-over active
// never saw — ResumeStream returns a *RollbackError carrying the
// seqno to rewind to. uuid 0 (a consumer with no history) skips
// validation and behaves like OpenStream.
func (p *Producer) ResumeStream(name string, uuid, fromSeqno uint64) (MutationStream, error) {
	if uuid != 0 && fromSeqno > 0 {
		p.mu.Lock()
		branch := -1
		for i, e := range p.failover {
			if e.UUID == uuid {
				branch = i
				break
			}
		}
		cur := p.failover[len(p.failover)-1].UUID
		switch {
		case branch < 0:
			// Unknown lineage entirely: nothing past 0 is trustworthy.
			p.mu.Unlock()
			publishRollbackRequired(p.vb, name, uuid, fromSeqno, 0)
			return nil, &RollbackError{UUID: cur, Seqno: 0}
		case branch < len(p.failover)-1:
			// The consumer's branch ended at the next entry's start
			// seqno; anything it applied beyond that was lost history.
			if upper := p.failover[branch+1].Seqno; fromSeqno > upper {
				p.mu.Unlock()
				publishRollbackRequired(p.vb, name, uuid, fromSeqno, upper)
				return nil, &RollbackError{UUID: cur, Seqno: upper}
			}
		}
		p.mu.Unlock()
	}
	s, err := p.OpenStream(name, fromSeqno)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// publishRollbackRequired journals a rejected resume: the consumer
// presented a (uuid, seqno) from a branch of history this producer
// does not share past rollbackTo.
func publishRollbackRequired(vb int, stream string, uuid, fromSeqno, rollbackTo uint64) {
	e := events.New(events.DCP, events.SevInfo, "stream resume rejected: rollback required")
	e.VB = vb
	e.Fields = map[string]string{
		"stream":      stream,
		"uuid":        strconv.FormatUint(uuid, 10),
		"from_seqno":  strconv.FormatUint(fromSeqno, 10),
		"rollback_to": strconv.FormatUint(rollbackTo, 10),
	}
	events.Default.Publish(e)
}

// Stream is one consumer's ordered view of a vBucket's changes.
// Mutations arrive on C; the channel closes when the stream ends.
// UUID is the vBucket UUID the stream was opened under; a resumable
// consumer records it alongside its applied seqno.
type Stream struct {
	Name     string
	UUID     uint64
	producer *Producer

	mu              sync.Mutex
	backfill        []Mutation
	backfillPending bool
	snapshotHigh    uint64
	live            []Mutation
	closed          bool

	// processed is the seqno of the last mutation handed to the
	// consumer (plus anything sitting in the small out buffer); the
	// producer reads it to compute stream lag.
	processed atomic.Uint64

	out  chan Mutation
	wake chan struct{}
}

// Processed returns the seqno of the last mutation delivered to the
// consumer side of the stream.
func (s *Stream) Processed() uint64 { return s.processed.Load() }

// StreamUUID returns the vBucket UUID the stream was opened under
// (the UUID field, behind the MutationStream seam).
func (s *Stream) StreamUUID() uint64 { return s.UUID }

// C returns the delivery channel.
func (s *Stream) C() <-chan Mutation { return s.out }

func (s *Stream) enqueueLive(m Mutation) {
	s.mu.Lock()
	if !s.closed {
		s.live = append(s.live, m)
	}
	s.mu.Unlock()
	s.kick()
}

func (s *Stream) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pump moves queued mutations to the out channel: the entire backfill
// first (in seqno order), then live mutations with seqno beyond the
// snapshot high-water mark.
func (s *Stream) pump() {
	defer close(s.out)
	sentBackfill := false
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		var batch []Mutation
		if !sentBackfill {
			if s.backfillPending {
				s.mu.Unlock()
				<-s.wake
				continue
			}
			batch = s.backfill
			s.backfill = nil
			sentBackfill = true
			s.mu.Unlock()
			for _, m := range batch {
				if !s.send(m) {
					return
				}
			}
			continue
		}
		if len(s.live) == 0 {
			s.mu.Unlock()
			<-s.wake
			continue
		}
		batch = s.live
		s.live = nil
		high := s.snapshotHigh
		s.mu.Unlock()
		for _, m := range batch {
			if m.Seqno <= high {
				continue // already covered by the backfill snapshot
			}
			if !s.send(m) {
				return
			}
		}
	}
}

func (s *Stream) send(m Mutation) bool {
	for {
		select {
		case s.out <- m:
			s.processed.Store(m.Seqno)
			return true
		case <-s.wake:
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return false
			}
		}
	}
}

// Close detaches the stream from the producer and closes C after the
// pump drains.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.producer.mu.Lock()
	delete(s.producer.streams, s)
	s.producer.mu.Unlock()
	s.kick()
}
