package dcp

import (
	"errors"
	"fmt"
	"testing"
)

func TestFailoverLogSeedAndTakeover(t *testing.T) {
	src := newMemSource()
	p := NewProducer(0, src)
	defer p.Close()

	log := p.FailoverLog()
	if len(log) != 1 || log[0].Seqno != 0 {
		t.Fatalf("fresh log = %+v, want one entry at seqno 0", log)
	}
	if p.UUID() != log[0].UUID {
		t.Fatalf("UUID() = %d, want %d", p.UUID(), log[0].UUID)
	}

	p.Takeover(7)
	log2 := p.FailoverLog()
	if len(log2) != 2 {
		t.Fatalf("log after takeover = %+v, want 2 entries", log2)
	}
	if log2[0] != log[0] {
		t.Fatalf("takeover rewrote history: %+v", log2)
	}
	if log2[1].Seqno != 7 || log2[1].UUID == log[0].UUID {
		t.Fatalf("takeover entry = %+v", log2[1])
	}
	if p.UUID() != log2[1].UUID {
		t.Fatalf("UUID() = %d after takeover, want %d", p.UUID(), log2[1].UUID)
	}
	if p.HighSeqno() != 7 {
		t.Fatalf("HighSeqno() = %d after takeover at 7", p.HighSeqno())
	}
}

func TestStreamCarriesVBucketUUID(t *testing.T) {
	src := newMemSource()
	p := NewProducer(0, src)
	defer p.Close()
	s, err := p.OpenStream("c", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.UUID != p.UUID() {
		t.Fatalf("stream UUID %d, producer UUID %d", s.UUID, p.UUID())
	}
}

func TestResumeStreamValidation(t *testing.T) {
	src := newMemSource()
	p := NewProducer(0, src)
	defer p.Close()
	for i := 1; i <= 10; i++ {
		publish(src, p, Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}
	firstUUID := p.UUID()
	// This copy took over at seqno 5: seqnos 6..10 of the first branch
	// are not part of the new lineage.
	p.Takeover(5)
	curUUID := p.UUID()

	// A consumer that stopped at 4 on the old branch resumes cleanly.
	s, err := p.ResumeStream("ok", firstUUID, 4)
	if err != nil {
		t.Fatalf("resume within shared history: %v", err)
	}
	s.Close()

	// Exactly at the divergence point is still shared history.
	s, err = p.ResumeStream("edge", firstUUID, 5)
	if err != nil {
		t.Fatalf("resume at divergence point: %v", err)
	}
	s.Close()

	// Past the divergence point: rollback to it.
	_, err = p.ResumeStream("stale", firstUUID, 9)
	var rb *RollbackError
	if !errors.As(err, &rb) {
		t.Fatalf("resume past divergence: %v, want RollbackError", err)
	}
	if rb.Seqno != 5 || rb.UUID != curUUID {
		t.Fatalf("rollback point = %+v, want seqno 5 uuid %d", rb, curUUID)
	}

	// Unknown lineage: nothing past 0 is trustworthy.
	_, err = p.ResumeStream("foreign", 999999, 3)
	if !errors.As(err, &rb) || rb.Seqno != 0 {
		t.Fatalf("resume on unknown uuid: %v, want rollback to 0", err)
	}

	// Current branch resumes without validation trouble.
	s, err = p.ResumeStream("cur", curUUID, 8)
	if err != nil {
		t.Fatalf("resume on current branch: %v", err)
	}
	s.Close()

	// uuid 0 (no recorded history) behaves like OpenStream.
	s, err = p.ResumeStream("fresh", 0, 9)
	if err != nil {
		t.Fatalf("trust-mode resume: %v", err)
	}
	s.Close()
}

func TestSetFailoverLogAdoption(t *testing.T) {
	src := newMemSource()
	active := NewProducer(0, src)
	defer active.Close()
	for i := 1; i <= 6; i++ {
		publish(src, active, Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}

	// The replica adopts the active's log; after promotion at seqno 4 it
	// can validate a consumer that streamed from the old active.
	replicaSrc := newMemSource()
	replica := NewProducer(0, replicaSrc)
	defer replica.Close()
	replica.SetFailoverLog(active.FailoverLog())
	if replica.UUID() != active.UUID() {
		t.Fatalf("replica UUID %d after adoption, want %d", replica.UUID(), active.UUID())
	}
	replica.Takeover(4)

	_, err := replica.ResumeStream("consumer", active.UUID(), 6)
	var rb *RollbackError
	if !errors.As(err, &rb) || rb.Seqno != 4 {
		t.Fatalf("resume past promoted history: %v, want rollback to 4", err)
	}
	s, err := replica.ResumeStream("consumer", active.UUID(), 3)
	if err != nil {
		t.Fatalf("resume within promoted history: %v", err)
	}
	s.Close()

	// Empty adoption is ignored.
	replica.SetFailoverLog(nil)
	if len(replica.FailoverLog()) != 2 {
		t.Fatalf("empty SetFailoverLog clobbered the log: %+v", replica.FailoverLog())
	}
}
