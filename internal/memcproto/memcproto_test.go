package memcproto

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	frames := []Frame{
		{Magic: MagicReq, Opcode: OpGet, VBucket: 512, Opaque: 7, Key: []byte("k1")},
		{
			Magic: MagicReq, Opcode: OpSet, VBucket: 3, Opaque: 0xdeadbeef,
			CAS:    0x0102030405060708,
			Extras: MutateExtras{Flags: 9, Expiry: 123, ReplicateTo: 1, Persist: true, TimeoutMillis: 2500}.Encode(),
			Key:    []byte("user::42"),
			Value:  []byte(`{"name":"ada"}`),
		},
		{Magic: MagicRes, Opcode: OpGet, Status: StatusKeyNotFound, Opaque: 7, Extras: AppendEpoch(nil, 12)},
		{
			Magic: MagicRes, Opcode: OpGet, Status: StatusNotMyVBucket, Opaque: 8,
			Extras: AppendEpoch(nil, 13), Value: []byte(`{"rev":13}`),
		},
		{Magic: MagicPush, Opcode: OpDCPMutation, VBucket: 17, Opaque: 99,
			CAS:    42,
			Extras: AppendItemMeta(nil, ItemMeta{Seqno: 5, RevSeqno: 2, Flags: 1, Expiry: 0, Resident: true}),
			Key:    []byte("doc"), Value: []byte("v")},
		{Magic: MagicReq, Opcode: OpNoop},
	}
	for i, in := range frames {
		wire, err := in.Encode()
		if err != nil {
			t.Fatalf("frame %d: encode: %v", i, err)
		}
		out, n, err := Decode(wire)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if n != len(wire) {
			t.Fatalf("frame %d: consumed %d of %d bytes", i, n, len(wire))
		}
		assertFrameEq(t, &in, out)

		// Same frame through the io.Reader path, with trailing bytes
		// to prove Read stops at the frame boundary.
		r := bytes.NewReader(append(append([]byte(nil), wire...), 0xff, 0xee))
		out2, err := Read(r)
		if err != nil {
			t.Fatalf("frame %d: read: %v", i, err)
		}
		assertFrameEq(t, &in, out2)
		if r.Len() != 2 {
			t.Fatalf("frame %d: Read consumed trailing bytes", i)
		}
	}
}

func assertFrameEq(t *testing.T, want, got *Frame) {
	t.Helper()
	if got.Magic != want.Magic || got.Opcode != want.Opcode ||
		got.Datatype != want.Datatype || got.Opaque != want.Opaque ||
		got.CAS != want.CAS {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if want.Magic == MagicRes {
		if got.Status != want.Status {
			t.Fatalf("status: got %v want %v", got.Status, want.Status)
		}
	} else if got.VBucket != want.VBucket {
		t.Fatalf("vbucket: got %d want %d", got.VBucket, want.VBucket)
	}
	if !bytes.Equal(got.Extras, want.Extras) ||
		!bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
		t.Fatalf("body mismatch: got %+v want %+v", got, want)
	}
}

func TestDecodeErrors(t *testing.T) {
	ok, _ := (&Frame{Magic: MagicReq, Opcode: OpGet, Key: []byte("k")}).Encode()

	t.Run("short header", func(t *testing.T) {
		if _, _, err := Decode(ok[:HeaderLen-1]); err != ErrShortFrame {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("torn body", func(t *testing.T) {
		if _, _, err := Decode(ok[:len(ok)-1]); err != ErrShortFrame {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), ok...)
		b[0] = 0x13
		if _, _, err := Decode(b); err != ErrBadMagic {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("oversized body claim", func(t *testing.T) {
		b := append([]byte(nil), ok...)
		b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
		if _, _, err := Decode(b); err != ErrFrameSize {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("key longer than body", func(t *testing.T) {
		b := append([]byte(nil), ok...)
		b[2], b[3] = 0x00, 0x09 // keylen 9 > bodylen 1
		if _, _, err := Decode(b); err != ErrBadLengths {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("oversized key claim", func(t *testing.T) {
		b := append([]byte(nil), ok...)
		b[2], b[3] = 0xff, 0xff
		if _, _, err := Decode(b); err != ErrFrameSize {
			t.Fatalf("got %v", err)
		}
	})
}

func TestEncodeRejectsOversize(t *testing.T) {
	f := &Frame{Magic: MagicReq, Opcode: OpSet, Key: make([]byte, MaxKeyLen+1)}
	if _, err := f.Encode(); err != ErrFrameSize {
		t.Fatalf("oversized key: got %v", err)
	}
	f = &Frame{Magic: 0x01, Opcode: OpSet}
	if _, err := f.Encode(); err != ErrBadMagic {
		t.Fatalf("bad magic: got %v", err)
	}
	f = &Frame{Magic: MagicReq, Opcode: OpSet, Extras: make([]byte, 300)}
	if _, err := f.Encode(); err != ErrFrameSize {
		t.Fatalf("oversized extras: got %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	t.Run("clean eof", func(t *testing.T) {
		if _, err := Read(strings.NewReader("")); err != io.EOF {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("torn header", func(t *testing.T) {
		if _, err := Read(strings.NewReader("abc")); err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("torn body", func(t *testing.T) {
		wire, _ := (&Frame{Magic: MagicReq, Opcode: OpGet, Key: []byte("key")}).Encode()
		if _, err := Read(bytes.NewReader(wire[:len(wire)-2])); err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("hostile body claim rejected before alloc", func(t *testing.T) {
		var h [HeaderLen]byte
		h[0] = MagicReq
		h[8], h[9], h[10], h[11] = 0x7f, 0xff, 0xff, 0xff
		if _, err := Read(bytes.NewReader(h[:])); err != ErrFrameSize {
			t.Fatalf("got %v", err)
		}
	})
}

func TestDecodeAliasesInput(t *testing.T) {
	wire, _ := (&Frame{Magic: MagicReq, Opcode: OpSet, Key: []byte("k"), Value: []byte("vvv")}).Encode()
	f, _, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	wire[HeaderLen] = 'X' // first key byte
	if f.Key[0] != 'X' {
		t.Fatal("Decode copied the body; expected aliasing")
	}
}

func TestNames(t *testing.T) {
	if OpDCPStreamReq.String() != "dcp_stream_req" {
		t.Fatalf("opcode name: %s", OpDCPStreamReq)
	}
	if Opcode(0xfe).Known() || !OpGet.Known() {
		t.Fatal("Known misclassifies")
	}
	if StatusNotMyVBucket.String() != "not_my_vbucket" {
		t.Fatalf("status name: %s", StatusNotMyVBucket)
	}
	if got := Status(0x7777).String(); got != "status_0x7777" {
		t.Fatalf("unknown status name: %s", got)
	}
}

func TestExtrasRoundTrip(t *testing.T) {
	me := MutateExtras{Flags: 0xa5a5a5a5, Expiry: -1, ReplicateTo: 2, Persist: true, TimeoutMillis: 777}
	got, err := DecodeMutateExtras(me.Encode())
	if err != nil || got != me {
		t.Fatalf("mutate extras: %+v %v", got, err)
	}
	if _, err := DecodeMutateExtras(nil); !errors.Is(err, ErrBadExtras) {
		t.Fatalf("short mutate extras: %v", err)
	}

	im := ItemMeta{Seqno: 10, RevSeqno: 4, Flags: 3, Expiry: 99, Deleted: true, Resident: true}
	got2, err := DecodeItemMeta(AppendItemMeta(nil, im))
	if err != nil || got2 != im {
		t.Fatalf("item meta: %+v %v", got2, err)
	}

	xe := XDCRExtras{RevSeqno: 8, Flags: 1, Expiry: 5, Deleted: true}
	got3, err := DecodeXDCRExtras(xe.Encode())
	if err != nil || got3 != xe {
		t.Fatalf("xdcr extras: %+v %v", got3, err)
	}

	sr := StreamReqExtras{UUID: 0xabc, FromSeqno: 17}
	got4, err := DecodeStreamReqExtras(sr.Encode())
	if err != nil || got4 != sr {
		t.Fatalf("stream req extras: %+v %v", got4, err)
	}

	ext := AppendEpoch(nil, 42)
	if e, ok := Epoch(ext); !ok || e != 42 {
		t.Fatalf("epoch: %d %v", e, ok)
	}
	if _, ok := Epoch(ext[:4]); ok {
		t.Fatal("short epoch accepted")
	}

	if v, ok := Uint64At(AppendUint64(nil, 7), 0); !ok || v != 7 {
		t.Fatalf("uint64: %d %v", v, ok)
	}
	if f, ok := Float64At(AppendFloat64(nil, 2.5), 0); !ok || f != 2.5 {
		t.Fatalf("float64: %g %v", f, ok)
	}

	extras, value := SubdocBody("a.b[0]", []byte(`{"x":1}`))
	path, payload, err := SplitSubdocBody(extras, value)
	if err != nil || path != "a.b[0]" || string(payload) != `{"x":1}` {
		t.Fatalf("subdoc: %q %q %v", path, payload, err)
	}
	if _, _, err := SplitSubdocBody(extras, value[:2]); !errors.Is(err, ErrBadLengths) {
		t.Fatalf("subdoc truncated value: %v", err)
	}
	if _, _, err := SplitSubdocBody(nil, value); !errors.Is(err, ErrBadExtras) {
		t.Fatalf("subdoc no extras: %v", err)
	}
}
