package memcproto

import "testing"

// TestFrameAppendZeroAlloc gates the wire encode path: appending a
// frame into a caller-provided buffer with enough capacity must not
// allocate — the transport's buffer pool depends on it.
func TestFrameAppendZeroAlloc(t *testing.T) {
	f := &Frame{
		Magic:   MagicReq,
		Opcode:  OpSet,
		VBucket: 7,
		Opaque:  42,
		CAS:     99,
		Key:     []byte("user4316891766"),
		Extras:  make([]byte, 8),
		Value:   make([]byte, 1024),
	}
	buf := make([]byte, 0, 2048)
	n := testing.AllocsPerRun(1000, func() {
		var err error
		if buf, err = f.Append(buf[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("Frame.Append into sized buffer allocates %.1f times per op, want 0", n)
	}
}

func BenchmarkFrameAppend(b *testing.B) {
	f := &Frame{
		Magic:   MagicReq,
		Opcode:  OpSet,
		VBucket: 7,
		Opaque:  42,
		Key:     []byte("user4316891766"),
		Extras:  make([]byte, 8),
		Value:   make([]byte, 1024),
	}
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if buf, err = f.Append(buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}
