package memcproto

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrBadExtras reports extras too short for the opcode's layout.
var ErrBadExtras = errors.New("memcproto: bad extras")

// EpochLen is the size of the cluster-map epoch prefix every response's
// extras carry.
const EpochLen = 8

// AppendEpoch prepends nothing — it appends the 8-byte map epoch that
// must be the first extras field of every response.
func AppendEpoch(dst []byte, epoch int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(epoch))
	return append(dst, b[:]...)
}

// Epoch reads a response's map-epoch prefix.
func Epoch(extras []byte) (int64, bool) {
	if len(extras) < EpochLen {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(extras[:EpochLen])), true
}

// TraceContext is the distributed-trace propagation field: the caller's
// trace ID, the span the remote work should hang under, and whether the
// trace is sampled. It rides the TAIL of a frame's extras (requests and
// DCP mutation pushes), announced by the DatatypeTraceCtx header flag,
// so every opcode's existing extras layout keeps its offsets and old
// peers that never set the flag interoperate unchanged.
type TraceContext struct {
	TraceID uint64
	// SpanID is the index of the parent span within the originating
	// node's portion of the trace (the root span is 0).
	SpanID  uint32
	Sampled bool
}

// TraceContextLen is the encoded size of a TraceContext.
const TraceContextLen = 8 + 4 + 1

// Valid reports whether the context names a real trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// AppendTraceContext appends the wire form to extras. The caller must
// also set DatatypeTraceCtx on the frame, and must append it last —
// the decoder takes it from the extras tail.
func AppendTraceContext(extras []byte, tc TraceContext) []byte {
	var b [TraceContextLen]byte
	binary.BigEndian.PutUint64(b[0:8], tc.TraceID)
	binary.BigEndian.PutUint32(b[8:12], tc.SpanID)
	if tc.Sampled {
		b[12] = 1
	}
	return append(extras, b[:]...)
}

// SplitTraceContext strips a frame's trace context, if any, returning
// it and the remaining (opcode-specific) extras. Frames without the
// DatatypeTraceCtx flag pass through untouched — old-frame decoding is
// unaffected. A flagged frame whose extras are too short to hold the
// context is rejected with ErrBadExtras before any field is consumed;
// nothing here allocates, so hostile lengths cost nothing.
func SplitTraceContext(f *Frame) (TraceContext, []byte, error) {
	if f.Datatype&DatatypeTraceCtx == 0 {
		return TraceContext{}, f.Extras, nil
	}
	n := len(f.Extras) - TraceContextLen
	if n < 0 {
		return TraceContext{}, nil, ErrBadExtras
	}
	tail := f.Extras[n:]
	return TraceContext{
		TraceID: binary.BigEndian.Uint64(tail[0:8]),
		SpanID:  binary.BigEndian.Uint32(tail[8:12]),
		Sampled: tail[12] != 0,
	}, f.Extras[:n], nil
}

// MutateExtras is the request extras of SET/ADD/REPLACE/APPEND/PREPEND:
// document flags, expiry, and the per-mutation durability options of
// §2.3.2 (the server performs the replication/persistence wait before
// acknowledging). DELETE sends the same layout with Flags/Expiry zero.
type MutateExtras struct {
	Flags       uint32
	Expiry      int64
	ReplicateTo uint8
	Persist     bool
	// TimeoutMillis bounds the durability wait; 0 means the server
	// default (10s).
	TimeoutMillis uint32
}

const mutateExtrasLen = 4 + 8 + 1 + 1 + 4

// Encode returns the wire form.
func (e MutateExtras) Encode() []byte {
	b := make([]byte, mutateExtrasLen)
	binary.BigEndian.PutUint32(b[0:4], e.Flags)
	binary.BigEndian.PutUint64(b[4:12], uint64(e.Expiry))
	b[12] = e.ReplicateTo
	if e.Persist {
		b[13] = 1
	}
	binary.BigEndian.PutUint32(b[14:18], e.TimeoutMillis)
	return b
}

// DecodeMutateExtras parses the wire form.
func DecodeMutateExtras(b []byte) (MutateExtras, error) {
	if len(b) < mutateExtrasLen {
		return MutateExtras{}, ErrBadExtras
	}
	return MutateExtras{
		Flags:         binary.BigEndian.Uint32(b[0:4]),
		Expiry:        int64(binary.BigEndian.Uint64(b[4:12])),
		ReplicateTo:   b[12],
		Persist:       b[13] != 0,
		TimeoutMillis: binary.BigEndian.Uint32(b[14:18]),
	}, nil
}

// ItemMeta is the document metadata riding response extras (after the
// epoch) and DCP mutation push extras: everything a client or replica
// needs to reconstruct a cache.Item besides key, value, and the CAS
// already carried in the header.
type ItemMeta struct {
	Seqno    uint64
	RevSeqno uint64
	Flags    uint32
	Expiry   int64
	Deleted  bool
	Resident bool
}

const itemMetaLen = 8 + 8 + 4 + 8 + 1

// AppendItemMeta appends the wire form to dst.
func AppendItemMeta(dst []byte, m ItemMeta) []byte {
	var b [itemMetaLen]byte
	binary.BigEndian.PutUint64(b[0:8], m.Seqno)
	binary.BigEndian.PutUint64(b[8:16], m.RevSeqno)
	binary.BigEndian.PutUint32(b[16:20], m.Flags)
	binary.BigEndian.PutUint64(b[20:28], uint64(m.Expiry))
	var bits byte
	if m.Deleted {
		bits |= 1
	}
	if m.Resident {
		bits |= 2
	}
	b[28] = bits
	return append(dst, b[:]...)
}

// DecodeItemMeta parses the wire form.
func DecodeItemMeta(b []byte) (ItemMeta, error) {
	if len(b) < itemMetaLen {
		return ItemMeta{}, ErrBadExtras
	}
	return ItemMeta{
		Seqno:    binary.BigEndian.Uint64(b[0:8]),
		RevSeqno: binary.BigEndian.Uint64(b[8:16]),
		Flags:    binary.BigEndian.Uint32(b[16:20]),
		Expiry:   int64(binary.BigEndian.Uint64(b[20:28])),
		Deleted:  b[28]&1 != 0,
		Resident: b[28]&2 != 0,
	}, nil
}

// XDCRExtras carries a cross-cluster mutation's metadata for the
// §4.6.1 conflict-resolution rule on the receiving side (the CAS rides
// the header's CAS field).
type XDCRExtras struct {
	RevSeqno uint64
	Flags    uint32
	Expiry   int64
	Deleted  bool
}

const xdcrExtrasLen = 8 + 4 + 8 + 1

// Encode returns the wire form.
func (e XDCRExtras) Encode() []byte {
	b := make([]byte, xdcrExtrasLen)
	binary.BigEndian.PutUint64(b[0:8], e.RevSeqno)
	binary.BigEndian.PutUint32(b[8:12], e.Flags)
	binary.BigEndian.PutUint64(b[12:20], uint64(e.Expiry))
	if e.Deleted {
		b[20] = 1
	}
	return b
}

// DecodeXDCRExtras parses the wire form.
func DecodeXDCRExtras(b []byte) (XDCRExtras, error) {
	if len(b) < xdcrExtrasLen {
		return XDCRExtras{}, ErrBadExtras
	}
	return XDCRExtras{
		RevSeqno: binary.BigEndian.Uint64(b[0:8]),
		Flags:    binary.BigEndian.Uint32(b[8:12]),
		Expiry:   int64(binary.BigEndian.Uint64(b[12:20])),
		Deleted:  b[20] != 0,
	}, nil
}

// AppendUint64 / Uint64At are the tiny helpers the single-field extras
// use: TOUCH and GETANDLOCK carry one 8-byte expiry/lock duration,
// DCPACK one acked seqno, SUBDOC_COUNTER one float64 delta.
func AppendUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// Uint64At reads the 8-byte big-endian field starting at off.
func Uint64At(b []byte, off int) (uint64, bool) {
	if len(b) < off+8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(b[off : off+8]), true
}

// AppendFloat64 appends a float64's IEEE-754 bits.
func AppendFloat64(dst []byte, v float64) []byte {
	return AppendUint64(dst, math.Float64bits(v))
}

// Float64At reads a float64 encoded by AppendFloat64.
func Float64At(b []byte, off int) (float64, bool) {
	u, ok := Uint64At(b, off)
	return math.Float64frombits(u), ok
}

// StreamReqExtras is the DCP stream request position: the (vBucket
// UUID, seqno) pair the consumer recorded, exactly the resume
// handshake of the in-process feed layer.
type StreamReqExtras struct {
	UUID      uint64
	FromSeqno uint64
}

const streamReqExtrasLen = 16

// Encode returns the wire form.
func (e StreamReqExtras) Encode() []byte {
	b := make([]byte, streamReqExtrasLen)
	binary.BigEndian.PutUint64(b[0:8], e.UUID)
	binary.BigEndian.PutUint64(b[8:16], e.FromSeqno)
	return b
}

// DecodeStreamReqExtras parses the wire form.
func DecodeStreamReqExtras(b []byte) (StreamReqExtras, error) {
	if len(b) < streamReqExtrasLen {
		return StreamReqExtras{}, ErrBadExtras
	}
	return StreamReqExtras{
		UUID:      binary.BigEndian.Uint64(b[0:8]),
		FromSeqno: binary.BigEndian.Uint64(b[8:16]),
	}, nil
}

// SubdocBody encodes a subdoc request's value: the path followed by an
// optional JSON payload, with the path length in the 2-byte extras.
func SubdocBody(path string, payload []byte) (extras, value []byte) {
	extras = make([]byte, 2)
	binary.BigEndian.PutUint16(extras, uint16(len(path)))
	value = make([]byte, 0, len(path)+len(payload))
	value = append(value, path...)
	value = append(value, payload...)
	return extras, value
}

// SplitSubdocBody reverses SubdocBody.
func SplitSubdocBody(extras, value []byte) (path string, payload []byte, err error) {
	if len(extras) < 2 {
		return "", nil, ErrBadExtras
	}
	n := int(binary.BigEndian.Uint16(extras[:2]))
	if n > len(value) {
		return "", nil, ErrBadLengths
	}
	return string(value[:n]), value[n:], nil
}
