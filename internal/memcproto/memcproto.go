// Package memcproto defines couchgo's binary KV wire protocol: a
// memcached-heritage framing (the paper's §4.1 smart clients "speak
// the memcached binary protocol directly to the node owning each
// partition"), extended with DCP stream messages so replication and
// feed consumers work across sockets, and with cluster-map admin
// opcodes so nodes and clients exchange topology.
//
// Every message is one frame: a fixed 24-byte header followed by
// extras, key, and value. The layout matches the classic memcached
// binary protocol so the field meanings are instantly recognizable:
//
//	offset  size  field
//	0       1     magic (0x80 request, 0x81 response, 0x82 server push)
//	1       1     opcode
//	2       2     key length
//	4       1     extras length
//	5       1     datatype (flag bits; bit 0 = trace context in extras)
//	6       2     vbucket id (request/push) or status (response)
//	8       4     total body length (extras + key + value)
//	12      4     opaque (echoed verbatim)
//	16      8     CAS
//
// The datatype byte, reserved (always 0) in earlier versions, is now a
// flag field. DatatypeTraceCtx (bit 0) marks that the LAST
// TraceContextLen bytes of the frame's extras are a distributed trace
// context (trace ID + parent span ID + sampled flag) injected by the
// smart client and adopted by the server session, so server-side spans
// join the client's trace. Frames from older peers carry datatype 0 and
// decode exactly as before; frames with the flag but truncated extras
// are rejected with ErrBadExtras before any field is used.
//
// Response extras always begin with the sender's 8-byte cluster-map
// epoch (the map revision), so every reply a smart client receives
// tells it whether its cached map is stale — the paper's "the cluster
// updates each connected client library with the new cluster map",
// piggybacked on the data path. A not-my-vbucket response additionally
// carries the full map JSON in its value (a "fat" NMVB, as in the real
// server), so the client refreshes without another round trip.
//
// The package is dependency-free (stdlib only) and allocation-bounded:
// Decode never allocates more than the input it was handed, and Read
// rejects frames whose claimed body exceeds MaxBodyLen before
// allocating anything.
package memcproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// HeaderLen is the fixed frame header size.
const HeaderLen = 24

// MaxBodyLen bounds extras+key+value; larger claims are rejected
// before allocation. 24 MiB comfortably exceeds the 20 MiB document
// cap of the real server.
const MaxBodyLen = 24 << 20

// MaxKeyLen bounds document keys (memcached's classic 250-byte limit
// is too tight for compound IDs; 4 KiB matches our REST layer).
const MaxKeyLen = 4096

// Frame magics.
const (
	MagicReq  = 0x80 // client -> server request
	MagicRes  = 0x81 // server -> client response (status set)
	MagicPush = 0x82 // server -> client unsolicited (DCP stream traffic)
)

// Datatype flag bits. The datatype header byte was reserved (always 0)
// until the trace-context extension; unknown bits are ignored so the
// field can grow.
const (
	// DatatypeTraceCtx marks that the last TraceContextLen bytes of
	// the frame's extras are a TraceContext.
	DatatypeTraceCtx = 0x01
)

// Opcode identifies the operation of a frame.
type Opcode uint8

// KV opcodes (client requests routed by vbucket).
const (
	OpGet           Opcode = 0x00
	OpSet           Opcode = 0x01
	OpAdd           Opcode = 0x02
	OpReplace       Opcode = 0x03
	OpDelete        Opcode = 0x04
	OpTouch         Opcode = 0x05
	OpGetAndLock    Opcode = 0x06
	OpUnlock        Opcode = 0x07
	OpAppendVal     Opcode = 0x08
	OpPrependVal    Opcode = 0x09
	OpGetMeta       Opcode = 0x0a
	OpObserve       Opcode = 0x0b
	OpSubdocGet     Opcode = 0x10
	OpSubdocSet     Opcode = 0x11
	OpSubdocRemove  Opcode = 0x12
	OpSubdocArrAdd  Opcode = 0x13
	OpSubdocCounter Opcode = 0x14
	OpXDCRSet       Opcode = 0x18
)

// Admin opcodes (not vbucket-routed).
const (
	OpNoop          Opcode = 0x20
	OpHello         Opcode = 0x21
	OpGetClusterMap Opcode = 0x22
	OpSetClusterMap Opcode = 0x23
	OpJoin          Opcode = 0x24
	OpStats         Opcode = 0x25
	OpHeartbeat     Opcode = 0x26
	// OpFederate is the observability federation round trip: Key names
	// an observability domain ("metrics", "health", "events", "trace",
	// "trace-config"), Value carries a JSON request payload, and the
	// response value is the queried node's JSON payload. Any node can
	// aggregate the whole cluster's view over its existing KV conns.
	OpFederate Opcode = 0x27
)

// DCP opcodes. A stream request converts the connection into push mode
// for that stream: the server sends OpDCPMutation/OpDCPStreamEnd push
// frames with the stream request's opaque, and the consumer may send
// OpDCPAck frames back to acknowledge applied seqnos (replica
// durability).
const (
	OpDCPStreamReq   Opcode = 0x50
	OpDCPMutation    Opcode = 0x51
	OpDCPSnapshot    Opcode = 0x52
	OpDCPStreamEnd   Opcode = 0x53
	OpDCPFailoverLog Opcode = 0x54
	OpDCPAck         Opcode = 0x55
)

var opcodeNames = map[Opcode]string{
	OpGet: "get", OpSet: "set", OpAdd: "add", OpReplace: "replace",
	OpDelete: "delete", OpTouch: "touch", OpGetAndLock: "getandlock",
	OpUnlock: "unlock", OpAppendVal: "append", OpPrependVal: "prepend",
	OpGetMeta: "getmeta", OpObserve: "observe",
	OpSubdocGet: "subdoc_get", OpSubdocSet: "subdoc_set",
	OpSubdocRemove: "subdoc_remove", OpSubdocArrAdd: "subdoc_arrayappend",
	OpSubdocCounter: "subdoc_counter", OpXDCRSet: "xdcr_set",
	OpNoop: "noop", OpHello: "hello", OpGetClusterMap: "get_cluster_map",
	OpSetClusterMap: "set_cluster_map", OpJoin: "join", OpStats: "stats",
	OpHeartbeat: "heartbeat", OpFederate: "federate",
	OpDCPStreamReq: "dcp_stream_req", OpDCPMutation: "dcp_mutation",
	OpDCPSnapshot: "dcp_snapshot", OpDCPStreamEnd: "dcp_stream_end",
	OpDCPFailoverLog: "dcp_failover_log", OpDCPAck: "dcp_ack",
}

// String names the opcode for metrics labels and logs.
func (o Opcode) String() string {
	if n, ok := opcodeNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op_0x%02x", uint8(o))
}

// Known reports whether the opcode is part of the protocol table.
func (o Opcode) Known() bool { _, ok := opcodeNames[o]; return ok }

// Status is the response outcome, carried where requests carry the
// vbucket ID.
type Status uint16

// Response statuses.
const (
	StatusOK                Status = 0x0000
	StatusKeyNotFound       Status = 0x0001
	StatusKeyExists         Status = 0x0002
	StatusCASMismatch       Status = 0x0003
	StatusLocked            Status = 0x0004
	StatusNotMyVBucket      Status = 0x0007
	StatusNoSuchBucket      Status = 0x0008
	StatusDurabilityTimeout Status = 0x0009
	StatusSubdocPath        Status = 0x000a
	StatusRollback          Status = 0x0023
	StatusBadRequest        Status = 0x0084
	StatusNotSupported      Status = 0x0083
	StatusTmpFail           Status = 0x0086
	StatusInternal          Status = 0x0085
)

var statusNames = map[Status]string{
	StatusOK: "ok", StatusKeyNotFound: "key_not_found",
	StatusKeyExists: "key_exists", StatusCASMismatch: "cas_mismatch",
	StatusLocked: "locked", StatusNotMyVBucket: "not_my_vbucket",
	StatusNoSuchBucket:      "no_such_bucket",
	StatusDurabilityTimeout: "durability_timeout",
	StatusSubdocPath:        "subdoc_path", StatusRollback: "rollback",
	StatusBadRequest: "bad_request", StatusNotSupported: "not_supported",
	StatusTmpFail: "tmp_fail", StatusInternal: "internal",
}

// String names the status.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("status_0x%04x", uint16(s))
}

// Framing errors.
var (
	ErrShortFrame = errors.New("memcproto: short frame")
	ErrBadMagic   = errors.New("memcproto: bad magic")
	ErrFrameSize  = errors.New("memcproto: frame exceeds size limits")
	ErrBadLengths = errors.New("memcproto: inconsistent body lengths")
)

// Frame is one decoded protocol message. VBucket is meaningful on
// requests and pushes; Status on responses (they share header bytes
// 6-7, exactly as in memcached).
type Frame struct {
	Magic    byte
	Opcode   Opcode
	Datatype byte
	VBucket  uint16
	Status   Status
	Opaque   uint32
	CAS      uint64

	Extras []byte
	Key    []byte
	Value  []byte
}

// BodyLen returns extras+key+value length.
func (f *Frame) BodyLen() int { return len(f.Extras) + len(f.Key) + len(f.Value) }

// validate checks the frame's fields fit the wire encoding.
func (f *Frame) validate() error {
	if f.Magic != MagicReq && f.Magic != MagicRes && f.Magic != MagicPush {
		return ErrBadMagic
	}
	if len(f.Key) > MaxKeyLen || len(f.Extras) > 0xff {
		return ErrFrameSize
	}
	if f.BodyLen() > MaxBodyLen {
		return ErrFrameSize
	}
	return nil
}

// Append encodes the frame onto dst and returns the extended slice.
func (f *Frame) Append(dst []byte) ([]byte, error) {
	if err := f.validate(); err != nil {
		return dst, err
	}
	var h [HeaderLen]byte
	h[0] = f.Magic
	h[1] = byte(f.Opcode)
	binary.BigEndian.PutUint16(h[2:4], uint16(len(f.Key)))
	h[4] = byte(len(f.Extras))
	h[5] = f.Datatype
	if f.Magic == MagicRes {
		binary.BigEndian.PutUint16(h[6:8], uint16(f.Status))
	} else {
		binary.BigEndian.PutUint16(h[6:8], f.VBucket)
	}
	binary.BigEndian.PutUint32(h[8:12], uint32(f.BodyLen()))
	binary.BigEndian.PutUint32(h[12:16], f.Opaque)
	binary.BigEndian.PutUint64(h[16:24], f.CAS)
	dst = append(dst, h[:]...)
	dst = append(dst, f.Extras...)
	dst = append(dst, f.Key...)
	dst = append(dst, f.Value...)
	return dst, nil
}

// Encode returns the frame's wire bytes.
func (f *Frame) Encode() ([]byte, error) { return f.Append(nil) }

// WriteTo writes the encoded frame to w.
func (f *Frame) WriteTo(w io.Writer) (int64, error) {
	b, err := f.Encode()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}

// Decode parses one frame from the start of b, returning the frame and
// the number of bytes consumed. The returned frame's Extras/Key/Value
// alias b — Decode never allocates body storage, so a hostile header
// cannot make it over-allocate. An incomplete or inconsistent prefix
// returns an error (ErrShortFrame when more bytes may complete it).
func Decode(b []byte) (*Frame, int, error) {
	if len(b) < HeaderLen {
		return nil, 0, ErrShortFrame
	}
	magic := b[0]
	if magic != MagicReq && magic != MagicRes && magic != MagicPush {
		return nil, 0, ErrBadMagic
	}
	keyLen := int(binary.BigEndian.Uint16(b[2:4]))
	extLen := int(b[4])
	bodyLen := int(binary.BigEndian.Uint32(b[8:12]))
	if bodyLen > MaxBodyLen || keyLen > MaxKeyLen {
		return nil, 0, ErrFrameSize
	}
	if extLen+keyLen > bodyLen {
		return nil, 0, ErrBadLengths
	}
	total := HeaderLen + bodyLen
	if len(b) < total {
		return nil, 0, ErrShortFrame
	}
	f := &Frame{
		Magic:    magic,
		Opcode:   Opcode(b[1]),
		Datatype: b[5],
		Opaque:   binary.BigEndian.Uint32(b[12:16]),
		CAS:      binary.BigEndian.Uint64(b[16:24]),
	}
	if magic == MagicRes {
		f.Status = Status(binary.BigEndian.Uint16(b[6:8]))
	} else {
		f.VBucket = binary.BigEndian.Uint16(b[6:8])
	}
	body := b[HeaderLen:total]
	if extLen > 0 {
		f.Extras = body[:extLen:extLen]
	}
	if keyLen > 0 {
		f.Key = body[extLen : extLen+keyLen : extLen+keyLen]
	}
	if v := body[extLen+keyLen:]; len(v) > 0 {
		f.Value = v
	}
	return f, total, nil
}

// Read reads exactly one frame from r. The body is validated against
// MaxBodyLen before any body allocation, so a torn or hostile header
// cannot balloon memory; a clean EOF before the first header byte
// returns io.EOF, a torn header or body returns io.ErrUnexpectedEOF.
func Read(r io.Reader) (*Frame, error) {
	var h [HeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, err
	}
	bodyLen := int(binary.BigEndian.Uint32(h[8:12]))
	keyLen := int(binary.BigEndian.Uint16(h[2:4]))
	if bodyLen > MaxBodyLen || keyLen > MaxKeyLen {
		return nil, ErrFrameSize
	}
	if int(h[4])+keyLen > bodyLen {
		return nil, ErrBadLengths
	}
	buf := make([]byte, HeaderLen+bodyLen)
	copy(buf, h[:])
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	f, _, err := Decode(buf)
	return f, err
}
