package memcproto

import (
	"bytes"
	"errors"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	base := AppendUint64(nil, 12345) // opcode-specific extras prefix
	tc := TraceContext{TraceID: 0xdeadbeefcafe0001, SpanID: 42, Sampled: true}
	f := &Frame{
		Magic:    MagicReq,
		Opcode:   OpSet,
		Datatype: DatatypeTraceCtx,
		Extras:   AppendTraceContext(base, tc),
		Key:      []byte("k"),
	}
	// Across an encode/decode cycle, like a real request.
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	gtc, bare, err := SplitTraceContext(got)
	if err != nil {
		t.Fatal(err)
	}
	if gtc != tc {
		t.Fatalf("trace context: got %+v, want %+v", gtc, tc)
	}
	if !bytes.Equal(bare, base) {
		t.Fatalf("remaining extras: got %x, want %x", bare, base)
	}
	if !gtc.Valid() {
		t.Fatal("round-tripped context reports invalid")
	}
}

// TestTraceContextOldFrames: the flag is the only announcement, so
// decoding is unaffected in both directions — an unflagged frame
// passes through Split untouched (even if its extras end in bytes
// that happen to look like a context), and a flagged frame stripped
// of its context is indistinguishable from an old frame.
func TestTraceContextOldFrames(t *testing.T) {
	// Old frame, no flag: extras come back byte-identical, no context.
	extras := AppendUint64(nil, 7)
	f := &Frame{Magic: MagicReq, Opcode: OpGet, Extras: extras}
	tc, bare, err := SplitTraceContext(f)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Valid() || tc != (TraceContext{}) {
		t.Fatalf("unflagged frame produced context %+v", tc)
	}
	if !bytes.Equal(bare, extras) {
		t.Fatalf("unflagged extras changed: %x != %x", bare, extras)
	}

	// No flag + extras that end in exactly TraceContextLen bytes: still
	// untouched — length alone must never imply a context.
	long := AppendTraceContext(extras, TraceContext{TraceID: 1, SpanID: 2, Sampled: true})
	f = &Frame{Magic: MagicReq, Opcode: OpGet, Extras: long}
	tc, bare, err = SplitTraceContext(f)
	if err != nil || tc.Valid() || !bytes.Equal(bare, long) {
		t.Fatalf("unflagged long extras: tc=%+v bare=%x err=%v", tc, bare, err)
	}
}

// TestTraceContextHostileLengths: a flagged frame whose extras are
// too short to hold the context (every truncation 0..12) must error
// with ErrBadExtras before any field is consumed, and the rejection
// path must not allocate.
func TestTraceContextHostileLengths(t *testing.T) {
	for n := 0; n < TraceContextLen; n++ {
		f := &Frame{
			Magic:    MagicReq,
			Opcode:   OpSet,
			Datatype: DatatypeTraceCtx,
			Extras:   make([]byte, n),
		}
		if _, _, err := SplitTraceContext(f); !errors.Is(err, ErrBadExtras) {
			t.Errorf("extras len %d: got %v, want ErrBadExtras", n, err)
		}
	}

	short := &Frame{Magic: MagicReq, Opcode: OpSet, Datatype: DatatypeTraceCtx, Extras: make([]byte, 5)}
	if allocs := testing.AllocsPerRun(100, func() {
		_, _, _ = SplitTraceContext(short)
	}); allocs != 0 {
		t.Fatalf("rejecting a truncated trace context allocated %.0f times per run", allocs)
	}
}

// FuzzTraceContext throws arbitrary extras and datatype bytes at the
// splitter: it must never panic, never allocate from hostile lengths,
// and whatever it parses must re-append to the original tail.
func FuzzTraceContext(f *testing.F) {
	f.Add([]byte{}, byte(0))
	f.Add(AppendTraceContext(nil, TraceContext{TraceID: 1, SpanID: 2, Sampled: true}), byte(DatatypeTraceCtx))
	f.Add(AppendTraceContext(AppendUint64(nil, 9), TraceContext{TraceID: ^uint64(0), SpanID: ^uint32(0)}), byte(DatatypeTraceCtx))
	f.Add(make([]byte, TraceContextLen-1), byte(DatatypeTraceCtx))
	f.Add(bytes.Repeat([]byte{0xff}, 255), byte(0xff))

	f.Fuzz(func(t *testing.T, extras []byte, datatype byte) {
		fr := &Frame{Magic: MagicReq, Opcode: OpSet, Datatype: datatype, Extras: extras}
		tc, bare, err := SplitTraceContext(fr)
		if datatype&DatatypeTraceCtx == 0 {
			if err != nil || !bytes.Equal(bare, extras) || tc != (TraceContext{}) {
				t.Fatalf("unflagged frame mutated: tc=%+v err=%v", tc, err)
			}
			return
		}
		if err != nil {
			if !errors.Is(err, ErrBadExtras) {
				t.Fatalf("unexpected error type: %v", err)
			}
			if len(extras) >= TraceContextLen {
				t.Fatalf("long enough extras (%d) rejected", len(extras))
			}
			return
		}
		if len(bare)+TraceContextLen != len(extras) {
			t.Fatalf("split lengths: %d + %d != %d", len(bare), TraceContextLen, len(extras))
		}
		// Re-appending the parsed context must rebuild the original
		// (modulo the sampled byte, which canonicalizes nonzero to 1).
		rebuilt := AppendTraceContext(append([]byte(nil), bare...), tc)
		if !bytes.Equal(rebuilt[:len(rebuilt)-1], extras[:len(extras)-1]) {
			t.Fatalf("re-append mismatch:\n in  %x\n out %x", extras, rebuilt)
		}
		if tc.Sampled != (extras[len(extras)-1] != 0) {
			t.Fatalf("sampled flag lost: %v vs %x", tc.Sampled, extras[len(extras)-1])
		}
	})
}
