package memcproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"testing"
)

// hostileHeader builds a syntactically valid 24-byte request header
// with attacker-chosen length fields.
func hostileHeader(keyLen uint16, extLen uint8, bodyLen uint32) []byte {
	h := make([]byte, HeaderLen)
	h[0] = MagicReq
	h[1] = byte(OpGet)
	binary.BigEndian.PutUint16(h[2:4], keyLen)
	h[4] = extLen
	binary.BigEndian.PutUint32(h[8:12], bodyLen)
	return h
}

// TestHostileLengthFields feeds headers whose length fields claim
// absurd sizes — bodyLen near MaxUint32, keyLen at the uint16 max,
// extLen inconsistent with the body — and asserts both decode paths
// return a typed error instead of allocating what the header claims.
func TestHostileLengthFields(t *testing.T) {
	cases := []struct {
		name    string
		keyLen  uint16
		extLen  uint8
		bodyLen uint32
		wantErr error
	}{
		{name: "body_max_uint32", bodyLen: 0xFFFFFFFF, wantErr: ErrFrameSize},
		{name: "body_just_over_max", bodyLen: MaxBodyLen + 1, wantErr: ErrFrameSize},
		{name: "key_max_uint16", keyLen: 0xFFFF, bodyLen: 0x10000, wantErr: ErrFrameSize},
		{name: "key_just_over_max", keyLen: MaxKeyLen + 1, bodyLen: MaxKeyLen + 1, wantErr: ErrFrameSize},
		{name: "key_and_body_max", keyLen: 0xFFFF, bodyLen: 0xFFFFFFFF, wantErr: ErrFrameSize},
		{name: "ext_exceeds_body", extLen: 0xFF, bodyLen: 16, wantErr: ErrBadLengths},
		{name: "key_exceeds_body", keyLen: MaxKeyLen, bodyLen: 64, wantErr: ErrBadLengths},
		{name: "ext_plus_key_overflow_body", keyLen: 4000, extLen: 0xFF, bodyLen: 4100, wantErr: ErrBadLengths},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := hostileHeader(tc.keyLen, tc.extLen, tc.bodyLen)
			if _, err := Read(bytes.NewReader(h)); !errors.Is(err, tc.wantErr) {
				t.Errorf("Read: got %v, want %v", err, tc.wantErr)
			}
			if _, _, err := Decode(h); !errors.Is(err, tc.wantErr) {
				t.Errorf("Decode: got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestHostileLengthNoAlloc proves the "error, not alloc" property
// directly: a flood of frames each claiming a ~4GiB body must be
// rejected without the decoder ever allocating body storage. If Read
// trusted bodyLen, this loop would ask for ~400GiB and die long
// before the assertion.
func TestHostileLengthNoAlloc(t *testing.T) {
	h := hostileHeader(0xFFFF, 0xFF, 0xFFFFFFF0)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < 100; i++ {
		if _, err := Read(bytes.NewReader(h)); err == nil {
			t.Fatal("hostile frame accepted")
		}
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("rejecting 100 hostile frames allocated %d bytes; decoder is sizing buffers from the wire", grew)
	}
}

// TestTornBodyWithinBounds: a header passing the bounds checks whose
// body never arrives must fail with ErrUnexpectedEOF, not hang or
// return a partial frame.
func TestTornBodyWithinBounds(t *testing.T) {
	h := hostileHeader(4, 0, 32)
	if _, err := Read(io.MultiReader(bytes.NewReader(h), bytes.NewReader([]byte("shor")))); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn body: got %v, want %v", err, io.ErrUnexpectedEOF)
	}
}
