package memcproto

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at the frame decoder: torn,
// truncated, and hostile-length frames must never panic or allocate
// beyond the input, and anything that decodes must re-encode to the
// exact bytes consumed (for well-formed datatype/reserved fields).
func FuzzFrameDecode(f *testing.F) {
	seed := []Frame{
		{Magic: MagicReq, Opcode: OpGet, VBucket: 1, Key: []byte("k")},
		{Magic: MagicRes, Opcode: OpSet, Status: StatusOK, Opaque: 9,
			Extras: AppendEpoch(nil, 3), CAS: 77},
		{Magic: MagicPush, Opcode: OpDCPMutation, VBucket: 1023,
			Extras: AppendItemMeta(nil, ItemMeta{Seqno: 1}),
			Key:    []byte("doc"), Value: []byte("body")},
		{Magic: MagicRes, Opcode: OpGet, Status: StatusNotMyVBucket,
			Extras: AppendEpoch(nil, 8), Value: []byte(`{"rev":8}`)},
	}
	for i := range seed {
		b, err := seed[i].Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, HeaderLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := Decode(data)
		if err != nil {
			if fr != nil || n != 0 {
				t.Fatalf("error path leaked frame: %v n=%d", fr, n)
			}
			return
		}
		if n < HeaderLen || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if fr.BodyLen() != n-HeaderLen {
			t.Fatalf("body %d != consumed body %d", fr.BodyLen(), n-HeaderLen)
		}
		// Re-encode must reproduce the consumed bytes exactly.
		out, err := fr.Encode()
		if err != nil {
			t.Fatalf("decoded frame failed to encode: %v", err)
		}
		if !bytes.Equal(out, data[:n]) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data[:n], out)
		}
		// And Read over the same bytes must agree.
		fr2, err := Read(bytes.NewReader(data[:n]))
		if err != nil {
			t.Fatalf("Read disagrees with Decode: %v", err)
		}
		out2, err := fr2.Encode()
		if err != nil || !bytes.Equal(out2, data[:n]) {
			t.Fatalf("Read round-trip mismatch: %v", err)
		}
	})
}
