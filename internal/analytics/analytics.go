// Package analytics implements the operational-analytics service from
// the paper's medium-term plans (§6.2): "the planned analytical service
// will be another new service that is fed via in-memory DCP and that
// can be scaled either out or up independently with respect to other
// services, especially the data service (to provide performance
// isolation for the all-important front-end OLTP workloads). The new
// analytics service will support a much wider range of queries ...
// such as large joins, aggregations, grouping."
//
// The engine maintains a DCP-fed shadow dataset per bucket — queries
// never touch the data service's cache or storage, giving the
// workload isolation the paper demands — and executes the full N1QL
// surface plus general (non-key) joins via the executor's
// KeyspaceScanner extension (hash join / nested loop).
//
// The paper planned to build this on Apache AsterixDB; per the
// reproduction rules the substitution here is a native shadow-dataset
// engine with the same architectural properties (DCP feed, isolation,
// richer joins). See DESIGN.md.
package analytics

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"

	"couchgo/internal/dcp"
	"couchgo/internal/executor"
	"couchgo/internal/feed"
	"couchgo/internal/n1ql"
	"couchgo/internal/planner"
	"couchgo/internal/value"
)

// Errors returned by the analytics service.
var (
	ErrNotEnabled = errors.New("analytics: dataset not enabled (call Enable first)")
	ErrDML        = errors.New("analytics: the analytics service is read-only; run DML on the data service")
)

// entry is one shadowed document.
type entry struct {
	doc  any
	meta n1ql.Meta
}

// Engine shadows one bucket for analytical querying. DCP consumption
// goes through the shared feed layer: vBucket producers register with
// the engine's hub, and Enable subscribes the engine itself as the
// single "analytics" consumer.
type Engine struct {
	keyspace string
	hub      *feed.Hub

	mu      sync.Mutex
	enabled bool
	// docs key: "<vb>\x00<docID>" so DetachVB can drop one partition.
	docs      map[string]entry
	processed map[int]uint64
	cond      *sync.Cond
	closed    bool
}

// NewEngine creates a disabled engine for one bucket (keyspace).
func NewEngine(keyspace string) *Engine {
	e := &Engine{
		keyspace:  keyspace,
		hub:       feed.NewHub("analytics"),
		docs:      make(map[string]entry),
		processed: make(map[int]uint64),
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// AttachVB registers a vBucket's producer. If the dataset is enabled,
// shadowing starts immediately; otherwise Enable starts it later.
func (e *Engine) AttachVB(vb int, p dcp.StreamSource) error {
	return e.hub.AttachVB(vb, p)
}

// DetachVB stops shadowing a vBucket and removes its documents.
func (e *Engine) DetachVB(vb int) {
	e.hub.DetachVB(vb)
	e.Rollback(vb, 0)
}

// Enable starts shadowing: a DCP feed per attached vBucket backfills
// the dataset from seqno 0, then follows live mutations.
func (e *Engine) Enable() error {
	e.mu.Lock()
	if e.enabled {
		e.mu.Unlock()
		return nil
	}
	e.enabled = true
	e.mu.Unlock()
	if _, err := e.hub.Subscribe("analytics", e); err != nil {
		e.mu.Lock()
		e.enabled = false
		e.mu.Unlock()
		return err
	}
	return nil
}

// Enabled reports whether the dataset is live.
func (e *Engine) Enabled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enabled
}

// FeedStats describes the engine's feed (empty until enabled).
func (e *Engine) FeedStats() []feed.Stat {
	return e.hub.Stats()
}

// Rollback implements feed.Rollbacker: drop the vBucket's shadow
// documents and seqno state; the feed re-streams the partition from
// the promoted copy's history.
func (e *Engine) Rollback(vb int, _ uint64) uint64 {
	e.mu.Lock()
	delete(e.processed, vb)
	prefix := strconv.Itoa(vb) + "\x00"
	for k := range e.docs {
		if strings.HasPrefix(k, prefix) {
			delete(e.docs, k)
		}
	}
	e.mu.Unlock()
	return 0
}

// Apply implements feed.Consumer: shadow one mutation.
func (e *Engine) Apply(vb int, m dcp.Mutation) {
	key := strconv.Itoa(vb) + "\x00" + m.Key
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	if m.Deleted {
		delete(e.docs, key)
	} else if doc, ok := value.Parse(m.Value); ok {
		e.docs[key] = entry{doc: doc, meta: n1ql.Meta{ID: m.Key, CAS: m.CAS, Seqno: m.Seqno}}
	}
	if m.Seqno > e.processed[vb] {
		e.processed[vb] = m.Seqno
	}
	e.cond.Broadcast()
}

// waitFor blocks until the shadow covers the seqno vector.
func (e *Engine) waitFor(seqnos map[int]uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for !e.closed {
		ok := true
		for vb, want := range seqnos {
			if want > 0 && e.processed[vb] < want {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		e.cond.Wait()
	}
}

// DatasetSize reports the shadowed document count.
func (e *Engine) DatasetSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.docs)
}

// Close stops all streams.
func (e *Engine) Close() {
	e.hub.Close()
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// QueryOptions parameterize an analytics query.
type QueryOptions struct {
	Params map[string]any
	// WaitSeqnos, when set, makes the query wait until the shadow has
	// processed the given data-service seqno vector (read-your-writes
	// into analytics).
	WaitSeqnos map[int]uint64
}

// Query parses, plans, and executes a SELECT against the shadow
// dataset. The full N1QL grammar is accepted, including the general
// joins the operational query service rejects. DML is refused: the
// analytics copy is read-only.
func (e *Engine) Query(statement string, opts QueryOptions) ([]any, error) {
	if !e.Enabled() {
		return nil, ErrNotEnabled
	}
	stmt, err := n1ql.Parse(statement)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*n1ql.Select)
	if !ok {
		if _, isExplain := stmt.(*n1ql.Explain); isExplain {
			return e.explain(stmt.(*n1ql.Explain), opts)
		}
		return nil, ErrDML
	}
	if opts.WaitSeqnos != nil {
		e.waitFor(opts.WaitSeqnos)
	}
	p, err := planner.PlanSelect(sel, shadowCatalog{e})
	if err != nil {
		return nil, err
	}
	return executor.ExecuteSelect(p, &shadowStore{e}, executor.Options{Params: opts.Params})
}

func (e *Engine) explain(ex *n1ql.Explain, opts QueryOptions) ([]any, error) {
	sel, ok := ex.Target.(*n1ql.Select)
	if !ok {
		return nil, ErrDML
	}
	p, err := planner.PlanSelect(sel, shadowCatalog{e})
	if err != nil {
		return nil, err
	}
	return []any{p.Describe()}, nil
}

// shadowCatalog: the shadow dataset exposes a single synthetic primary
// index per keyspace — every scan is a dataset scan, the analytics
// profile ("a typical workload ... will include richer (and more
// expensive) queries").
type shadowCatalog struct{ e *Engine }

func (c shadowCatalog) KeyspaceExists(name string) bool { return name == c.e.keyspace }

func (c shadowCatalog) Indexes(string) []planner.IndexInfo {
	return []planner.IndexInfo{{
		Name: "#shadow-primary", IsPrimary: true,
		SecCanonical: []string{"meta().id"}, Built: true,
	}}
}

// shadowStore implements executor.Datastore + KeyspaceScanner over the
// shadow dataset. It never touches the data service.
type shadowStore struct{ e *Engine }

func (s *shadowStore) snapshot() []executor.ScannedDoc {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	out := make([]executor.ScannedDoc, 0, len(s.e.docs))
	for _, en := range s.e.docs {
		out = append(out, executor.ScannedDoc{ID: en.meta.ID, Doc: en.doc, Meta: en.meta})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *shadowStore) Fetch(_ context.Context, _ string, id string) (any, n1ql.Meta, error) {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	for _, en := range s.e.docs {
		if en.meta.ID == id {
			return en.doc, en.meta, nil
		}
	}
	return nil, n1ql.Meta{}, executor.ErrNotFound
}

func (s *shadowStore) ScanIndex(_ context.Context, _, _ string, _ n1ql.IndexUsing, opts executor.IndexScanOpts) ([]executor.IndexEntry, error) {
	docs := s.snapshot()
	var out []executor.IndexEntry
	for _, d := range docs {
		key := []any{d.ID}
		if opts.HasEqual {
			if value.Compare(key, opts.EqualKey) != 0 {
				continue
			}
		}
		if opts.Low != nil {
			c := value.Compare([]any{d.ID}[:min(1, len(opts.Low))], opts.Low[:min(1, len(opts.Low))])
			if c < 0 || (c == 0 && !opts.LowIncl) {
				continue
			}
		}
		if opts.High != nil {
			c := value.Compare([]any{d.ID}[:min(1, len(opts.High))], opts.High[:min(1, len(opts.High))])
			if c > 0 || (c == 0 && !opts.HighIncl) {
				continue
			}
		}
		out = append(out, executor.IndexEntry{ID: d.ID, SecKey: key})
		if opts.Limit > 0 && len(out) >= opts.Limit && !opts.Reverse {
			break
		}
	}
	if opts.Reverse {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		if opts.Limit > 0 && len(out) > opts.Limit {
			out = out[:opts.Limit]
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ScanKeyspace implements executor.KeyspaceScanner: the hook that
// unlocks general joins.
func (s *shadowStore) ScanKeyspace(keyspace string) ([]executor.ScannedDoc, error) {
	if keyspace != s.e.keyspace {
		return nil, errors.New("analytics: unknown keyspace " + keyspace)
	}
	return s.snapshot(), nil
}

func (s *shadowStore) ConsistencyVector(string) map[int]uint64 { return nil }

// The analytics copy is read-only.
func (s *shadowStore) InsertDoc(context.Context, string, string, any, bool) error {
	return ErrDML
}
func (s *shadowStore) UpdateDoc(context.Context, string, string, any) error { return ErrDML }
func (s *shadowStore) DeleteDoc(context.Context, string, string) error      { return ErrDML }
