package analytics

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"couchgo/internal/storage"
	"couchgo/internal/vbucket"
)

type harness struct {
	engine *Engine
	vbs    []*vbucket.VBucket
}

func newHarness(t *testing.T, nvb int) *harness {
	t.Helper()
	h := &harness{engine: NewEngine("store")}
	dir := t.TempDir()
	for i := 0; i < nvb; i++ {
		f, err := storage.Open(filepath.Join(dir, fmt.Sprintf("vb%d.couch", i)), false)
		if err != nil {
			t.Fatal(err)
		}
		vb := vbucket.New(i, f, vbucket.Active, vbucket.Config{})
		h.vbs = append(h.vbs, vb)
		if err := h.engine.AttachVB(i, vb.Producer()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { vb.Close(); f.Close() })
	}
	t.Cleanup(h.engine.Close)
	return h
}

func (h *harness) put(t *testing.T, vb int, key, doc string) {
	t.Helper()
	if _, err := h.vbs[vb].Set(context.Background(), key, []byte(doc), 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func (h *harness) fresh() map[int]uint64 {
	out := map[int]uint64{}
	for _, vb := range h.vbs {
		out[vb.ID] = vb.HighSeqno()
	}
	return out
}

func (h *harness) query(t *testing.T, stmt string) []any {
	t.Helper()
	rows, err := h.engine.Query(stmt, QueryOptions{WaitSeqnos: h.fresh()})
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return rows
}

// loadStore populates the standard two-doc-type analytic fixture.
func (h *harness) loadStore(t *testing.T) {
	t.Helper()
	for i := 0; i < 6; i++ {
		h.put(t, i%len(h.vbs), fmt.Sprintf("customer::%d", i),
			fmt.Sprintf(`{"type": "customer", "cid": %d, "region": "%s"}`, i, []string{"west", "east"}[i%2]))
	}
	for i := 0; i < 20; i++ {
		h.put(t, i%len(h.vbs), fmt.Sprintf("order::%d", i),
			fmt.Sprintf(`{"type": "order", "customer": %d, "total": %d}`, i%6, (i+1)*10))
	}
}

func TestQueryRequiresEnable(t *testing.T) {
	h := newHarness(t, 1)
	if _, err := h.engine.Query("SELECT 1", QueryOptions{}); err != ErrNotEnabled {
		t.Fatalf("err = %v", err)
	}
	if err := h.engine.Enable(); err != nil {
		t.Fatal(err)
	}
	if !h.engine.Enabled() {
		t.Fatal("not enabled")
	}
	if err := h.engine.Enable(); err != nil {
		t.Fatal("double enable should be fine")
	}
}

func TestShadowBackfillsExistingData(t *testing.T) {
	h := newHarness(t, 2)
	h.loadStore(t)
	// Enable AFTER data exists: backfill covers it.
	if err := h.engine.Enable(); err != nil {
		t.Fatal(err)
	}
	rows := h.query(t, `SELECT COUNT(*) AS n FROM store`)
	if rows[0].(map[string]any)["n"] != 26.0 {
		t.Fatalf("count: %v", rows)
	}
	if h.engine.DatasetSize() != 26 {
		t.Fatalf("dataset size: %d", h.engine.DatasetSize())
	}
}

func TestShadowFollowsMutations(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Enable()
	h.put(t, 0, "d1", `{"v": 1}`)
	rows := h.query(t, `SELECT v FROM store USE KEYS "d1"`)
	if rows[0].(map[string]any)["v"] != 1.0 {
		t.Fatalf("rows: %v", rows)
	}
	h.put(t, 0, "d1", `{"v": 2}`)
	rows = h.query(t, `SELECT v FROM store USE KEYS "d1"`)
	if rows[0].(map[string]any)["v"] != 2.0 {
		t.Fatalf("after update: %v", rows)
	}
	h.vbs[0].Delete(context.Background(), "d1", 0, 0)
	rows = h.query(t, `SELECT v FROM store USE KEYS "d1"`)
	if len(rows) != 0 {
		t.Fatalf("after delete: %v", rows)
	}
}

func TestGeneralHashJoin(t *testing.T) {
	h := newHarness(t, 2)
	h.loadStore(t)
	h.engine.Enable()
	// The general join N1QL §3.2.4 forbids: orders joined to customers
	// on a secondary attribute, not a document key.
	rows := h.query(t, `
		SELECT c.region, SUM(o.total) AS revenue
		FROM store o
		JOIN store c ON o.customer = c.cid AND c.type = "customer"
		WHERE o.type = "order"
		GROUP BY c.region
		ORDER BY c.region`)
	if len(rows) != 2 {
		t.Fatalf("join groups: %v", rows)
	}
	east := rows[0].(map[string]any)
	west := rows[1].(map[string]any)
	if east["region"] != "east" || west["region"] != "west" {
		t.Fatalf("regions: %v", rows)
	}
	// Total revenue = sum of 10..200 = 2100, split across regions.
	if east["revenue"].(float64)+west["revenue"].(float64) != 2100.0 {
		t.Fatalf("revenue: %v", rows)
	}
}

func TestGeneralJoinEquiDetection(t *testing.T) {
	// The hash-join path and the nested-loop fallback must agree.
	h := newHarness(t, 1)
	h.loadStore(t)
	h.engine.Enable()
	hashRows := h.query(t, `
		SELECT COUNT(*) AS n FROM store o
		JOIN store c ON o.customer = c.cid
		WHERE o.type = "order"`)
	// Non-equi condition → nested loop.
	loopRows := h.query(t, `
		SELECT COUNT(*) AS n FROM store o
		JOIN store c ON o.customer = c.cid AND 1 = 1
		WHERE o.type = "order"`)
	hn := hashRows[0].(map[string]any)["n"]
	ln := loopRows[0].(map[string]any)["n"]
	if hn != ln {
		t.Fatalf("hash join %v != nested loop %v", hn, ln)
	}
	if hn != 20.0 {
		t.Fatalf("join rows: %v", hn)
	}
}

func TestGeneralLeftJoinAndNest(t *testing.T) {
	h := newHarness(t, 1)
	h.put(t, 0, "c1", `{"type": "customer", "cid": 1}`)
	h.put(t, 0, "c2", `{"type": "customer", "cid": 2}`)
	h.put(t, 0, "o1", `{"type": "order", "customer": 1, "total": 5}`)
	h.engine.Enable()
	// LEFT JOIN keeps the order-less customer.
	rows := h.query(t, `
		SELECT c.cid, o.total FROM store c
		LEFT JOIN store o ON o.customer = c.cid
		WHERE c.type = "customer" ORDER BY c.cid`)
	if len(rows) != 2 {
		t.Fatalf("left join: %v", rows)
	}
	if _, has := rows[1].(map[string]any)["total"]; has {
		t.Fatalf("unmatched row should lack total: %v", rows[1])
	}
	// General NEST collects matches into an array.
	rows = h.query(t, `
		SELECT c.cid, orders FROM store c
		NEST store AS orders ON orders.customer = c.cid
		WHERE c.type = "customer"`)
	if len(rows) != 1 {
		t.Fatalf("inner nest: %v", rows)
	}
	arr := rows[0].(map[string]any)["orders"].([]any)
	if len(arr) != 1 {
		t.Fatalf("nested: %v", arr)
	}
}

func TestAnalyticsIsReadOnly(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Enable()
	if _, err := h.engine.Query(`INSERT INTO store (KEY, VALUE) VALUES ("x", {})`, QueryOptions{}); err != ErrDML {
		t.Fatalf("insert: %v", err)
	}
	if _, err := h.engine.Query(`DELETE FROM store`, QueryOptions{}); err != ErrDML {
		t.Fatalf("delete: %v", err)
	}
}

func TestRicherAggregationsAndGrouping(t *testing.T) {
	h := newHarness(t, 2)
	h.loadStore(t)
	h.engine.Enable()
	rows := h.query(t, `
		SELECT o.customer AS cust, COUNT(*) AS n, SUM(o.total) AS sum, AVG(o.total) AS avg
		FROM store o WHERE o.type = "order"
		GROUP BY o.customer
		HAVING COUNT(*) >= 3
		ORDER BY cust`)
	if len(rows) != 6 {
		t.Fatalf("groups: %v", rows)
	}
	first := rows[0].(map[string]any)
	if first["n"].(float64) < 3 {
		t.Fatalf("having violated: %v", first)
	}
}

func TestDetachRemovesPartition(t *testing.T) {
	h := newHarness(t, 2)
	h.put(t, 0, "a", `{"v": 1}`)
	h.put(t, 1, "b", `{"v": 1}`)
	h.engine.Enable()
	h.query(t, "SELECT * FROM store") // sync
	h.engine.DetachVB(1)
	rows, err := h.engine.Query("SELECT COUNT(*) AS n FROM store", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].(map[string]any)["n"] != 1.0 {
		t.Fatalf("after detach: %v", rows)
	}
}

func TestExplainOnAnalytics(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Enable()
	rows, err := h.engine.Query(`EXPLAIN SELECT a.x FROM store a JOIN store b ON a.k = b.k`, QueryOptions{})
	if err != nil || len(rows) != 1 {
		t.Fatalf("explain: %v %v", rows, err)
	}
}

func TestParseErrorsSurface(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Enable()
	if _, err := h.engine.Query("SELEKT", QueryOptions{}); err == nil {
		t.Fatal("parse error expected")
	}
	if _, err := h.engine.Query("SELECT * FROM otherks", QueryOptions{}); err == nil {
		t.Fatal("unknown keyspace expected")
	}
}

func TestQueryParameters(t *testing.T) {
	h := newHarness(t, 1)
	h.loadStore(t)
	h.engine.Enable()
	rows, err := h.engine.Query(
		`SELECT COUNT(*) AS n FROM store o WHERE o.type = "order" AND o.total >= $min`,
		QueryOptions{Params: map[string]any{"min": 150.0}, WaitSeqnos: h.fresh()})
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0].(map[string]any)["n"]; got != 6.0 {
		t.Fatalf("parameterized count: %v", got)
	}
	// Missing parameter surfaces an error.
	if _, err := h.engine.Query("SELECT $nope FROM store", QueryOptions{}); err == nil {
		t.Fatal("missing param should error")
	}
}
