package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// UnlockedEscape infers, per struct type with a mutex field, which
// sibling fields that mutex guards — any field *written* while a
// method holds the mutex — and then flags methods that read or write a
// guarded field without acquiring the lock. Methods whose names end in
// "Locked" are exempt by convention: they document that the caller
// holds the lock. Fields of sync/atomic types manage themselves and
// are never considered guarded.
var UnlockedEscape = &Analyzer{
	Name: "unlockedescape",
	Doc:  "mutex-guarded field accessed by a method that does not hold the lock",
	Run:  runUnlockedEscape,
}

// fieldAccess is one recv.field touch inside a method body.
type fieldAccess struct {
	field *types.Var
	pos   token.Pos
	write bool
	held  map[string]bool // mutex field names held at this point
}

// methodInfo is the per-method access summary for one receiver type.
type methodInfo struct {
	decl     *ast.FuncDecl
	accesses []fieldAccess
}

func runUnlockedEscape(pkg *Package) []Diagnostic {
	// Group methods by receiver base type (named structs only).
	byType := make(map[*types.Named][]*methodInfo)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 {
				continue
			}
			named := receiverNamed(pkg, fn)
			if named == nil {
				continue
			}
			if _, ok := named.Underlying().(*types.Struct); !ok {
				continue
			}
			byType[named] = append(byType[named], collectAccesses(pkg, named, fn))
		}
	}

	var diags []Diagnostic
	for named, methods := range byType {
		mutexes := mutexFieldNames(named)
		if len(mutexes) == 0 {
			continue
		}
		// A field is guarded by mutex m when some method writes it
		// while holding m. A write under several mutexes at once (a
		// double-locked rebalance, say) guards the field with each;
		// holding any one of them at an access site is accepted.
		guardedBy := make(map[*types.Var]map[string]bool)
		for _, mi := range methods {
			for _, acc := range mi.accesses {
				if !acc.write {
					continue
				}
				for m := range acc.held {
					if guardedBy[acc.field] == nil {
						guardedBy[acc.field] = make(map[string]bool)
					}
					guardedBy[acc.field][m] = true
				}
			}
		}
		for _, mi := range methods {
			if strings.HasSuffix(mi.decl.Name.Name, "Locked") {
				continue
			}
			for _, acc := range mi.accesses {
				guards := guardedBy[acc.field]
				if len(guards) == 0 || holdsAny(acc.held, guards) {
					continue
				}
				verb := "reads"
				if acc.write {
					verb = "writes"
				}
				diags = append(diags, Diagnostic{
					Pos:  pkg.pos(acc.pos),
					Rule: "unlockedescape",
					Message: fmt.Sprintf("%s %s field %s.%s without holding %s (guarded in sibling methods)",
						funcName(mi.decl), verb, named.Obj().Name(), acc.field.Name(), guardNames(guards)),
				})
			}
		}
	}
	return diags
}

// receiverNamed resolves a method's receiver to its named base type.
func receiverNamed(pkg *Package, fn *ast.FuncDecl) *types.Named {
	names := fn.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	obj := pkg.Info.Defs[names[0]]
	if obj == nil {
		return nil
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// mutexFieldNames lists fields of named's struct whose type is
// sync.Mutex or sync.RWMutex.
func mutexFieldNames(named *types.Named) []string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		t := f.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		n, ok := t.(*types.Named)
		if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
			continue
		}
		if name := n.Obj().Name(); name == "Mutex" || name == "RWMutex" {
			out = append(out, f.Name())
		}
	}
	return out
}

// accessWalker records receiver-field accesses with the set of
// receiver mutexes held at each point, using the same sequential
// region model as lockblock.
type accessWalker struct {
	pkg      *Package
	recv     types.Object // receiver variable
	recvName string
	named    *types.Named
	out      *methodInfo
}

func collectAccesses(pkg *Package, named *types.Named, fn *ast.FuncDecl) *methodInfo {
	mi := &methodInfo{decl: fn}
	names := fn.Recv.List[0].Names
	w := &accessWalker{
		pkg:      pkg,
		recv:     pkg.Info.Defs[names[0]],
		recvName: names[0].Name,
		named:    named,
		out:      mi,
	}
	w.walkStmts(fn.Body.List, map[string]bool{})
	return mi
}

// recvMutexOp reports whether call locks/unlocks a mutex field of the
// receiver (recv.m.Lock() and friends) and returns the field name.
func (w *accessWalker) recvMutexOp(call *ast.CallExpr) (field string, op lockOp) {
	key, op := mutexOp(w.pkg, call)
	if op == opNone {
		return "", opNone
	}
	prefix := w.recvName + "."
	if !strings.HasPrefix(key, prefix) {
		return "", opNone
	}
	field = strings.TrimPrefix(key, prefix)
	if strings.Contains(field, ".") {
		return "", opNone
	}
	return field, op
}

func (w *accessWalker) walkStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *accessWalker) walkStmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if field, op := w.recvMutexOp(call); op != opNone {
				if op == opLock {
					held[field] = true
				} else {
					delete(held, field)
				}
				return
			}
		}
		w.scanExpr(s.X, held, false)
	case *ast.DeferStmt:
		if _, op := w.recvMutexOp(s.Call); op != opNone {
			return // defer recv.m.Unlock(): held until return
		}
		for _, a := range s.Call.Args {
			w.scanExpr(a, held, false)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, copyBoolSet(held))
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.scanExpr(a, held, false)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, map[string]bool{})
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held, false)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, held, true)
		}
	case *ast.IncDecStmt:
		w.scanExpr(s.X, held, true)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, held, false)
		w.scanExpr(s.Value, held, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e, held, false)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held, false)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held, false)
		w.walkStmts(s.Body.List, copyBoolSet(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyBoolSet(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held, false)
		}
		w.walkStmts(s.Body.List, copyBoolSet(held))
	case *ast.RangeStmt:
		w.scanExpr(s.X, held, false)
		w.walkStmts(s.Body.List, copyBoolSet(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, held, false)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyBoolSet(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyBoolSet(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, copyBoolSet(held))
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	}
}

// scanExpr records receiver-field accesses in e. write applies to the
// outermost selector only (a[i] = x writes a; x = a[i] reads it).
func (w *accessWalker) scanExpr(e ast.Expr, held map[string]bool, write bool) {
	if e == nil {
		return
	}
	// Peel write-through wrappers: recv.f[i] = x and *recv.f = x write
	// the field; &recv.f escapes it (treated as a write, conservatively).
	target := ast.Unparen(e)
	for {
		switch t := target.(type) {
		case *ast.IndexExpr:
			w.scanExpr(t.Index, held, false)
			target = ast.Unparen(t.X)
			continue
		case *ast.StarExpr:
			target = ast.Unparen(t.X)
			continue
		case *ast.UnaryExpr:
			if t.Op == token.AND {
				write = true
				target = ast.Unparen(t.X)
				continue
			}
		}
		break
	}
	if sel, ok := target.(*ast.SelectorExpr); ok && w.recordIfRecvField(sel, held, write) {
		// The selector itself is recorded; still scan deeper for
		// nested expressions on the base (none: base is the receiver).
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(n.Body.List, copyBoolSet(held))
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && w.recordIfRecvField(sel, held, true) {
					return false
				}
			}
		case *ast.SelectorExpr:
			if w.recordIfRecvField(n, held, false) {
				return false
			}
		}
		return true
	})
}

// recordIfRecvField records sel when it is recv.f for a plain data
// field f of the receiver struct (mutex and sync/atomic fields are
// skipped). Reports whether it recorded.
func (w *accessWalker) recordIfRecvField(sel *ast.SelectorExpr, held map[string]bool, write bool) bool {
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || w.pkg.Info.Uses[base] != w.recv {
		return false
	}
	obj := fieldObject(w.pkg, sel)
	if obj == nil || isSyncOrAtomicType(obj.Type()) {
		return false
	}
	w.out.accesses = append(w.out.accesses, fieldAccess{
		field: obj,
		pos:   sel.Pos(),
		write: write,
		held:  copyBoolSet(held),
	})
	return true
}

func holdsAny(held, guards map[string]bool) bool {
	for m := range guards {
		if held[m] {
			return true
		}
	}
	return false
}

// guardNames renders a guard set as "m" or "one of m1, m2".
func guardNames(guards map[string]bool) string {
	names := make([]string, 0, len(guards))
	for m := range guards {
		names = append(names, m)
	}
	sort.Strings(names)
	if len(names) == 1 {
		return names[0]
	}
	return "one of " + strings.Join(names, ", ")
}

func copyBoolSet(in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
