package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeakedGoroutine flags `go` statements that launch an infinite loop
// (`for { ... }`) with no way to stop: no channel receive, no select,
// no context.Done, and no return or break. Such goroutines outlive
// their owner — the leak shape that matters for per-vBucket drain and
// pull loops, which must die when the stream or service closes.
// Ranging over a channel is inherently stoppable (close the channel)
// and is never flagged.
var LeakedGoroutine = &Analyzer{
	Name: "leakedgoroutine",
	Doc:  "go statement launches an unstoppable infinite loop",
	Run:  runLeakedGoroutine,
}

func runLeakedGoroutine(pkg *Package) []Diagnostic {
	// Index same-package function declarations so `go w.run()` can be
	// checked through the call.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pkg.Info.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goTargetBody(pkg, decls, g.Call)
			if body == nil {
				return true
			}
			if loop := unstoppableLoop(body); loop != nil {
				diags = append(diags, Diagnostic{
					Pos:     pkg.pos(g.Pos()),
					Rule:    "leakedgoroutine",
					Message: "goroutine runs an infinite loop with no stop signal (no channel receive, select, context, return, or break)",
				})
			}
			return true
		})
	}
	return diags
}

// goTargetBody resolves the body the go statement will run: a function
// literal, or a function/method declared in this package.
func goTargetBody(pkg *Package, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn := decls[pkg.Info.Uses[fun]]; fn != nil {
			return fn.Body
		}
	case *ast.SelectorExpr:
		if fn := decls[pkg.Info.Uses[fun.Sel]]; fn != nil {
			return fn.Body
		}
	}
	return nil
}

// unstoppableLoop returns the first `for { ... }` in body (not nested
// inside another function literal) that contains no stop signal.
func unstoppableLoop(body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !hasStopSignal(n.Body) {
				found = n
				return false
			}
		}
		return true
	})
	return found
}

// hasStopSignal reports whether the loop body contains anything that
// can end or park the loop: a receive, select, range-over-channel
// (detected syntactically as any range — conservative), return, break,
// goto, or a call to a Done method (context-style).
func hasStopSignal(body *ast.BlockStmt) bool {
	stop := false
	ast.Inspect(body, func(n ast.Node) bool {
		if stop {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				stop = true
			}
		case *ast.SelectStmt, *ast.RangeStmt, *ast.ReturnStmt:
			stop = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				stop = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "Done" {
				stop = true
			}
		}
		return !stop
	})
	return stop
}
