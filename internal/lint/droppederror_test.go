package lint

import "testing"

func TestDroppedError(t *testing.T) {
	fixtures := []fixture{
		{name: "critical_package", path: ModulePath + "/internal/storage", src: `
package storage

import "os"

func bare(f *os.File) {
	f.Close() // want: droppederror
}

func blank(f *os.File) {
	_ = f.Close() // want: droppederror
}

func multi(path string) *os.File {
	f, _ := os.Create(path) // want: droppederror
	return f
}

func deferred(f *os.File) {
	defer f.Close() // want: droppederror
}

func background(f *os.File) {
	go f.Close() // want: droppederror
}

func propagated(f *os.File) error {
	return f.Close()
}

func handled(f *os.File) {
	if err := f.Close(); err != nil {
		panic(err)
	}
}

func nonError(path string) {
	_, _ = len(path), cap([]int{}) // ints, not errors
}
`},
		{name: "other_package_not_gated", path: ModulePath + "/internal/query", src: `
package query

import "os"

func bare(f *os.File) {
	f.Close()
}

func blank(f *os.File) {
	_ = f.Close()
}
`},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) { checkFixture(t, DroppedError, fx) })
	}
}
