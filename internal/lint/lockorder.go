package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition graph and reports
// cycles — the structural precondition for an ABBA deadlock. Nodes are
// type-scoped lock identities (every instance of T.mu is one node;
// see lockIdent). An edge A→B is recorded when lock B is acquired
// while A is held, either directly in one function or transitively:
// calling an in-module function that may itself acquire B (computed by
// a fixpoint over the call graph) while holding A orders the pair at
// the call site. Any strongly connected component with two or more
// locks means two code paths disagree about acquisition order, and a
// diagnostic is emitted at every edge inside the component so both
// sides of the inversion are visible.
//
// Known imprecision, chosen deliberately: instances of one type are
// collapsed (so hand-over-hand locking over two T's is invisible —
// self-edges are dropped rather than reported), and calls through
// interfaces or function values do not propagate (no summary exists
// for them). Both trade recall for a zero-noise gate.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "cycle in the module-wide lock-acquisition graph (potential ABBA deadlock)",
	RunModule: runLockOrder,
}

// lockCallSite is one call to an in-module function with the lock set
// held at the moment of the call.
type lockCallSite struct {
	callee string
	held   []string
	pos    token.Position
}

// lockSummary is everything lockorder needs to know about one function.
type lockSummary struct {
	acquires map[string]bool // locks taken directly
	edges    []lockEdge      // direct held→acquired pairs
	calls    []lockCallSite
}

type lockEdge struct {
	from, to string
	pos      token.Position
}

func runLockOrder(pkgs []*Package) []Diagnostic {
	st := &lockOrderState{sums: make(map[string]*lockSummary)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				sum := &lockSummary{acquires: make(map[string]bool)}
				w := &orderWalker{pkg: pkg, sum: sum, st: st}
				w.stmts(fn.Body.List, map[string]bool{})
				st.sums[funcFullID(obj)] = sum
			}
		}
	}
	sums := st.sums

	// Transitive closure: mayAcquire(F) = direct acquires plus
	// everything any in-module callee may acquire, to a fixpoint.
	mayAcq := make(map[string]map[string]bool, len(sums))
	for id, sum := range sums {
		set := make(map[string]bool, len(sum.acquires))
		for l := range sum.acquires {
			set[l] = true
		}
		mayAcq[id] = set
	}
	for changed := true; changed; {
		changed = false
		for id, sum := range sums {
			mine := mayAcq[id]
			for _, c := range sum.calls {
				for l := range mayAcq[c.callee] {
					if !mine[l] {
						mine[l] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge set: direct edges, plus held × mayAcquire(callee) at every
	// call site, first position wins per ordered pair.
	edges := make(map[[2]string]token.Position)
	addEdge := func(e lockEdge) {
		if e.from == e.to {
			return
		}
		key := [2]string{e.from, e.to}
		if old, ok := edges[key]; !ok || posLess(e.pos, old) {
			edges[key] = e.pos
		}
	}
	for _, sum := range sums {
		for _, e := range sum.edges {
			addEdge(e)
		}
		for _, c := range sum.calls {
			if len(c.held) == 0 {
				continue
			}
			for l := range mayAcq[c.callee] {
				for _, h := range c.held {
					addEdge(lockEdge{from: h, to: l, pos: c.pos})
				}
			}
		}
	}

	return lockOrderCycles(edges)
}

// lockOrderState is the module-wide summary registry; goroutine
// bodies get synthetic entries so their acquisitions stay on their own
// stack instead of inflating the launcher's.
type lockOrderState struct {
	sums map[string]*lockSummary
	ngo  int
}

// orderWalker threads the held-lock set through a function body,
// recording direct acquisitions, direct ordering edges, and in-module
// call sites. Branch bodies get a copy of the held set, mirroring
// lockblock's scoping; non-goroutine function literals are analyzed
// with a fresh held set but their records accrue to the enclosing
// declaration (the enclosing function may run that code).
type orderWalker struct {
	pkg *Package
	sum *lockSummary
	st  *lockOrderState
}

func (w *orderWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *orderWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if _, op := mutexOp(w.pkg, call); op != opNone {
				ident := lockIdent(w.pkg, call.Fun.(*ast.SelectorExpr).X)
				if ident == "" {
					return
				}
				if op == opLock {
					w.sum.acquires[ident] = true
					pos := w.pkg.pos(call.Pos())
					for h := range held {
						w.sum.edges = append(w.sum.edges, lockEdge{from: h, to: ident, pos: pos})
					}
					held[ident] = true
				} else {
					delete(held, ident)
				}
				return
			}
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		if _, op := mutexOp(w.pkg, s.Call); op != opNone {
			// defer mu.Unlock(): held for the rest of the function.
			return
		}
		w.expr(s.Call, held)
	case *ast.GoStmt:
		// Arguments are evaluated on the launcher's stack with its
		// locks held; the goroutine body runs on its own stack with
		// nothing held, and its acquisitions belong to a synthetic
		// summary so they never count as the launcher's.
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			gsum := &lockSummary{acquires: make(map[string]bool)}
			w.st.ngo++
			w.st.sums[fmt.Sprintf("go#%d", w.st.ngo)] = gsum
			gw := &orderWalker{pkg: w.pkg, sum: gsum, st: w.st}
			gw.stmts(lit.Body.List, map[string]bool{})
		}
		// A named function launched via `go f()` contributes through
		// its own declaration's summary; the launch is not a call.
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, copyHeldSet(held))
				}
				w.stmts(cc.Body, copyHeldSet(held))
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, copyHeldSet(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeldSet(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		w.stmts(s.Body.List, copyHeldSet(held))
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, copyHeldSet(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeldSet(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeldSet(held))
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	}
}

// expr records every in-module call under the current held set and
// walks function literals with a fresh one.
func (w *orderWalker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, map[string]bool{})
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(w.pkg, n); moduleFunc(fn) {
				w.sum.calls = append(w.sum.calls, lockCallSite{
					callee: funcFullID(fn),
					held:   heldSetKeys(held),
					pos:    w.pkg.pos(n.Pos()),
				})
			}
		}
		return true
	})
}

// lockOrderCycles runs Tarjan's SCC over the edge set and emits one
// diagnostic per edge inside a multi-lock component.
func lockOrderCycles(edges map[[2]string]token.Position) []Diagnostic {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
		nodes[key[0]] = true
		nodes[key[1]] = true
	}
	for _, succ := range adj {
		sort.Strings(succ)
	}

	// Tarjan's strongly connected components, iteratively indexed.
	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	comp := make(map[string]int, len(nodes))
	var stack []string
	next, ncomp := 0, 0

	var strongConnect func(v string)
	strongConnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, u := range adj[v] {
			if _, seen := index[u]; !seen {
				strongConnect(u)
				if low[u] < low[v] {
					low[v] = low[u]
				}
			} else if onStack[u] && index[u] < low[v] {
				low[v] = index[u]
			}
		}
		if low[v] == index[v] {
			for {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[u] = false
				comp[u] = ncomp
				if u == v {
					break
				}
			}
			ncomp++
		}
	}
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		if _, seen := index[n]; !seen {
			strongConnect(n)
		}
	}

	members := make(map[int][]string)
	for n, c := range comp {
		members[c] = append(members[c], n)
	}

	var diags []Diagnostic
	for key, pos := range edges {
		from, to := key[0], key[1]
		c := comp[from]
		if c != comp[to] || len(members[c]) < 2 {
			continue
		}
		cyc := append([]string(nil), members[c]...)
		sort.Strings(cyc)
		for i := range cyc {
			cyc[i] = shortLock(cyc[i])
		}
		diags = append(diags, Diagnostic{
			Pos:  pos,
			Rule: "lockorder",
			Message: fmt.Sprintf("acquires %s while holding %s — lock-order cycle through {%s}; potential deadlock",
				shortLock(to), shortLock(from), strings.Join(cyc, ", ")),
		})
	}
	return diags
}

// shortLock trims the module prefix off a lock identity for readable
// messages: couchgo/internal/vbucket.VBucket.mu -> vbucket.VBucket.mu.
func shortLock(l string) string {
	l = strings.TrimPrefix(l, ModulePath+"/internal/")
	l = strings.TrimPrefix(l, ModulePath+"/")
	return l
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func heldSetKeys(held map[string]bool) []string {
	if len(held) == 0 {
		return nil
	}
	out := make([]string, 0, len(held))
	for k := range held {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func copyHeldSet(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
