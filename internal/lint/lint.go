// Package lint is couchvet's analysis engine: a repo-specific static
// analyzer built only on the standard library's go/ast, go/parser,
// go/types, and go/token. It enforces invariants that stock `go vet`
// cannot see — the concurrency and error-handling conventions the
// memory-first data service, DCP producers, and asynchronous consumer
// services (paper §4.3, §5) uphold today only by discipline:
//
//   - lockblock:        no mutex held across a channel send/receive,
//     select, socket write, or call into another internal package
//   - mixedatomic:      no struct field accessed both via sync/atomic
//     and via plain loads/stores
//   - unlockedescape:   no method touching mutex-guarded fields
//     without acquiring the lock its siblings use
//   - leakedgoroutine:  no `go` statement launching an infinite loop
//     with no stop channel, context, or exit path
//   - droppederror:     no silently discarded error returns in the
//     storage/cache/feed packages
//
// Deliberate exceptions are annotated in source with
//
//	//couchvet:ignore <rule> [<rule>...]  -- reason
//
// on the offending line or the line above it. The driver suppresses
// matching diagnostics; `//couchvet:ignore all` suppresses every rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of this repository's module.
// The analyzers use it to tell in-repo internal packages apart from
// the standard library.
const ModulePath = "couchgo"

// Diagnostic is one finding, positioned for editor-clickable output.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Package is one loaded, type-checked package under analysis.
type Package struct {
	Path  string // import path, e.g. couchgo/internal/feed
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one couchvet rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Diagnostic
}

// All is every analyzer couchvet runs, in report order.
var All = []*Analyzer{
	LockBlock,
	MixedAtomic,
	UnlockedEscape,
	LeakedGoroutine,
	DroppedError,
}

// NewInfo returns a types.Info with every map the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load parses and type-checks every non-test package under root (the
// module directory). Vendored, hidden, and testdata directories are
// skipped. Dependencies — standard library and in-module alike — are
// resolved from source via the stdlib importer, so the analyzer needs
// nothing beyond the go toolchain.
func Load(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// packageDirs walks root for directories containing buildable .go files.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func loadDir(fset *token.FileSet, imp types.Importer, root, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := ModulePath
	if rel != "." {
		path = ModulePath + "/" + filepath.ToSlash(rel)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Run executes the analyzers over pkgs, drops pragma-suppressed
// findings, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		ignored := ignoreLines(pkg)
		for _, a := range analyzers {
			for _, d := range a.Run(pkg) {
				if suppressed(ignored, d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// ignoreKey identifies one pragma-covered source line.
type ignoreKey struct {
	file string
	line int
	rule string
}

const ignorePragma = "//couchvet:ignore"

// ignoreLines collects every //couchvet:ignore pragma in the package,
// keyed by file, line, and rule ("all" matches any rule).
func ignoreLines(pkg *Package) map[ignoreKey]bool {
	out := make(map[ignoreKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePragma) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePragma)
				// Allow a trailing justification after " -- ".
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i]
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, rule := range strings.Fields(rest) {
					out[ignoreKey{pos.Filename, pos.Line, rule}] = true
				}
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by a pragma on its own line
// or the line directly above.
func suppressed(ignored map[ignoreKey]bool, d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, rule := range []string{d.Rule, "all"} {
			if ignored[ignoreKey{d.Pos.Filename, line, rule}] {
				return true
			}
		}
	}
	return false
}
