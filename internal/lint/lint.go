// Package lint is couchvet's analysis engine: a repo-specific static
// analyzer built only on the standard library's go/ast, go/parser,
// go/types, and go/token. It enforces invariants that stock `go vet`
// cannot see — the concurrency and error-handling conventions the
// memory-first data service, DCP producers, and asynchronous consumer
// services (paper §4.3, §5) uphold today only by discipline:
//
//   - lockblock:        no mutex held across a channel send/receive,
//     select, socket write, or call into another internal package
//   - mixedatomic:      no struct field accessed both via sync/atomic
//     and via plain loads/stores
//   - unlockedescape:   no method touching mutex-guarded fields
//     without acquiring the lock its siblings use
//   - leakedgoroutine:  no `go` statement launching an infinite loop
//     with no stop channel, context, or exit path
//   - droppederror:     no silently discarded error returns in the
//     storage/cache/feed packages
//   - lockorder:        no cycle in the module-wide lock-acquisition
//     graph (a lock taken — directly or via a called in-repo function —
//     while another is held orders the pair; a cycle is a potential
//     deadlock)
//   - ctxflow:          no function that receives a context.Context and
//     then blocks (socket I/O, channel op, Wait, time.Sleep) without
//     consuming the ctx — wire-facing code must stay cancellable
//   - framebound:       no allocation in internal/memcproto sized by a
//     wire-derived length without a preceding bounds check against a
//     declared maximum
//
// lockblock and the first four rules are intra-procedural; lockorder
// and ctxflow run once over the whole loaded module and follow calls
// across package boundaries (Analyzer.RunModule).
//
// Deliberate exceptions are annotated in source with
//
//	//couchvet:ignore <rule> [<rule>...]  -- reason
//
// on the offending line or the line above it. The driver suppresses
// matching diagnostics; `//couchvet:ignore all` suppresses every rule.
// A pragma that suppresses nothing for a rule that actually ran is
// itself reported (rule "unusedpragma") by RunAll, so stale
// justifications cannot rot in place.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of this repository's module.
// The analyzers use it to tell in-repo internal packages apart from
// the standard library.
const ModulePath = "couchgo"

// Diagnostic is one finding, positioned for editor-clickable output.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Package is one loaded, type-checked package under analysis.
type Package struct {
	Path  string // import path, e.g. couchgo/internal/feed
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one couchvet rule. Exactly one of Run (per-package,
// intra-procedural) and RunModule (once over every loaded package,
// inter-procedural) is set.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Package) []Diagnostic
	RunModule func([]*Package) []Diagnostic
}

// All is every analyzer couchvet runs, in report order.
var All = []*Analyzer{
	LockBlock,
	MixedAtomic,
	UnlockedEscape,
	LeakedGoroutine,
	DroppedError,
	LockOrder,
	CtxFlow,
	FrameBound,
}

// NewInfo returns a types.Info with every map the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load parses and type-checks every non-test package under root (the
// module directory). Vendored, hidden, and testdata directories are
// skipped. Dependencies — standard library and in-module alike — are
// resolved from source via the stdlib importer, so the analyzer needs
// nothing beyond the go toolchain.
func Load(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// packageDirs walks root for directories containing buildable .go files.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func loadDir(fset *token.FileSet, imp types.Importer, root, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := ModulePath
	if rel != "." {
		path = ModulePath + "/" + filepath.ToSlash(rel)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Run executes the analyzers over pkgs, drops pragma-suppressed
// findings, and returns the rest sorted by position. Module-level
// analyzers (RunModule) see every package at once; their diagnostics
// are suppressed by pragmas exactly like per-package ones.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := run(pkgs, analyzers)
	return diags
}

// RunAll is Run plus pragma hygiene: any //couchvet:ignore pragma
// naming a rule that ran but suppressed nothing is reported as a
// finding (rule "unusedpragma"), so justifications that stopped being
// necessary — because the code or the rule changed — surface instead
// of rotting. Pragmas for rules that were not selected this run are
// left alone, so `-rules` subsetting does not spray warnings.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, unused := run(pkgs, analyzers)
	return sortDiags(append(diags, unused...))
}

func run(pkgs []*Package, analyzers []*Analyzer) (diags, unused []Diagnostic) {
	pragmas := collectPragmas(pkgs)
	suppress := func(d Diagnostic) bool {
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, rule := range []string{d.Rule, "all"} {
				if p := pragmas[ignoreKey{d.Pos.Filename, line, rule}]; p != nil {
					p.used = true
					return true
				}
			}
		}
		return false
	}
	emit := func(ds []Diagnostic) {
		for _, d := range ds {
			if !suppress(d) {
				diags = append(diags, d)
			}
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run != nil {
				emit(a.Run(pkg))
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule != nil {
			emit(a.RunModule(pkgs))
		}
	}

	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, p := range pragmas {
		if p.used || (p.rule != "all" && !ran[p.rule]) {
			continue
		}
		unused = append(unused, Diagnostic{
			Pos:     p.pos,
			Rule:    "unusedpragma",
			Message: fmt.Sprintf("couchvet:ignore %s suppresses nothing — delete the pragma or fix the justification", p.rule),
		})
	}
	return sortDiags(diags), sortDiags(unused)
}

func sortDiags(out []Diagnostic) []Diagnostic {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// ignoreKey identifies one pragma-covered source line.
type ignoreKey struct {
	file string
	line int
	rule string
}

// pragmaEntry is one (pragma comment, rule) pair with its suppression
// history for unused-pragma reporting.
type pragmaEntry struct {
	rule string
	pos  token.Position
	used bool
}

const ignorePragma = "//couchvet:ignore"

// collectPragmas gathers every //couchvet:ignore pragma across all
// packages, keyed by file, line, and rule ("all" matches any rule).
func collectPragmas(pkgs []*Package) map[ignoreKey]*pragmaEntry {
	out := make(map[ignoreKey]*pragmaEntry)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePragma) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignorePragma)
					// Allow a trailing justification after " -- ".
					if i := strings.Index(rest, "--"); i >= 0 {
						rest = rest[:i]
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, rule := range strings.Fields(rest) {
						key := ignoreKey{pos.Filename, pos.Line, rule}
						if out[key] == nil {
							out[key] = &pragmaEntry{rule: rule, pos: pos}
						}
					}
				}
			}
		}
	}
	return out
}
