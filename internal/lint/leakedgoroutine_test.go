package lint

import "testing"

func TestLeakedGoroutine(t *testing.T) {
	fixtures := []fixture{
		{name: "busy_loop_literal", src: `
package a

func bad() {
	n := 0
	go func() { // want: leakedgoroutine
		for {
			n++
		}
	}()
	_ = n
}
`},
		{name: "stop_channel_select", src: `
package a

func good(stop chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}
`},
		{name: "range_over_channel", src: `
package a

func good(ch chan int) {
	n := 0
	go func() {
		for v := range ch {
			n += v
		}
	}()
	_ = n
}
`},
		{name: "named_method_target", src: `
package a

type W struct {
	n int
}

func (w *W) loop() {
	for {
		w.n++
	}
}

func (w *W) Start() {
	go w.loop() // want: leakedgoroutine
}
`},
		{name: "break_makes_stoppable", src: `
package a

type W struct {
	n int
}

func (w *W) Start() {
	go func() {
		for {
			w.n++
			if w.n > 10 {
				break
			}
		}
	}()
}
`},
		{name: "conditional_loop_not_flagged", src: `
package a

func good(done *bool) {
	n := 0
	go func() {
		for !*done {
			n++
		}
	}()
	_ = n
}
`},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) { checkFixture(t, LeakedGoroutine, fx) })
	}
}
