package lint

import "testing"

// TestCtxFlow exercises the context-consumption rule: sleeps in ctx
// functions, unconsumed blocking ops, the inter-procedural
// dropped-before-a-call case, and the consumption credits (Done
// select, pass-through to the real blocker, goroutine boundary).
func TestCtxFlow(t *testing.T) {
	fixtures := []fixture{
		{name: "sleep_always_flagged", src: `
package a

import (
	"context"
	"time"
)

func f(ctx context.Context) {
	time.Sleep(time.Second) // want: ctxflow
}
`},
		{name: "retry_backoff_sleep", src: `
package a

import (
	"context"
	"time"
)

// The real-tree bug shape: a retry loop that backs off with a bare
// sleep, parking a cancelled request between attempts.
func retryOp(ctx context.Context, attempts int) error {
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(time.Duration(i) * time.Millisecond) // want: ctxflow
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}
`},
		{name: "unconsumed_chan_recv", src: `
package a

import "context"

func recv(ctx context.Context, ch chan int) int {
	return <-ch // want: ctxflow
}
`},
		{name: "select_with_done_clean", src: `
package a

import "context"

func ok(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}
`},
		{name: "calls_blocking_helper_without_ctx", src: `
package a

import "context"

func helper(ch chan int) int {
	return <-ch
}

func f(ctx context.Context, ch chan int) int {
	return helper(ch) // want: ctxflow
}
`},
		{name: "pass_through_credit_clean", src: `
package a

import "context"

func blocker(ctx context.Context, ch chan int) {
	select {
	case <-ch:
	case <-ctx.Done():
	}
}

// Forwarding ctx to the function that does the blocking counts as
// consumption: the wait is cancellable even though this frame never
// touches Done itself.
func wrapper(ctx context.Context, ch chan int) {
	blocker(ctx, ch)
	<-ch
}
`},
		{name: "goroutine_boundary_clean", src: `
package a

import "context"

// The goroutine blocks on its own stack; the launcher returns
// immediately and holds no obligation to consume ctx for it.
func launch(ctx context.Context, ch chan int) {
	go func() {
		<-ch
	}()
}
`},
		{name: "external_callee_credit_clean", src: `
package a

import (
	"context"
	"net"
)

type dialer interface {
	DialContext(ctx context.Context, network, addr string) (net.Conn, error)
}

// Handing ctx to an interface method (body unknown) is consumption
// credit; the subsequent socket write is reachable only on the
// ctx-aware path.
func connect(ctx context.Context, d dialer, payload []byte) error {
	c, err := d.DialContext(ctx, "tcp", "host:11210")
	if err != nil {
		return err
	}
	_, err = c.Write(payload)
	return err
}
`},
		{name: "pragma_suppresses", src: `
package a

import (
	"context"
	"time"
)

func slow(ctx context.Context) {
	time.Sleep(time.Millisecond) //couchvet:ignore ctxflow -- fixture: bounded settle delay
}
`},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) { checkFixture(t, CtxFlow, fx) })
	}
}
