package lint

import "testing"

func TestLockBlock(t *testing.T) {
	fixtures := []fixture{
		{name: "send_while_locked", src: `
package a

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) bad() {
	s.mu.Lock()
	s.ch <- 1 // want: lockblock
	s.mu.Unlock()
}

func (s *S) good() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}
`},
		{name: "receive_under_defer_unlock", src: `
package a

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) bad() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want: lockblock
}
`},
		{name: "select_under_rlock", src: `
package a

import "sync"

type S struct {
	mu   sync.RWMutex
	ch   chan int
	done chan struct{}
}

func (s *S) bad() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	select { // want: lockblock
	case <-s.ch:
	case <-s.done:
	}
}

func (s *S) good() {
	s.mu.RLock()
	s.mu.RUnlock()
	select {
	case <-s.ch:
	case <-s.done:
	}
}
`},
		{name: "range_over_channel", src: `
package a

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func (s *S) bad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want: lockblock
		s.n += v
	}
}

func (s *S) goodSlice(xs []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range xs {
		s.n += v
	}
}
`},
		{name: "branch_unlock_scoped", src: `
package a

import "sync"

type S struct {
	mu     sync.Mutex
	ch     chan int
	closed bool
}

func (s *S) good() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.ch <- 1
		return
	}
	s.closed = true
	s.mu.Unlock()
}
`},
		{name: "cross_internal_call", src: `
package a

import (
	"sync"

	"couchgo/internal/dcp"
	"couchgo/internal/metrics"
)

type S struct {
	mu sync.Mutex
	p  *dcp.Producer
}

func (s *S) bad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p = dcp.NewProducer(0, nil) // want: lockblock
}

func (s *S) goodAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.p = dcp.NewProducer(0, nil)
}

func (s *S) goodExempt() {
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Default.Counter("couchgo_fixture_total", "op", "x").Inc()
}
`},
		{name: "goroutine_gets_fresh_lock_set", src: `
package a

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) good() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}
`},
		{name: "event_fanout", src: `
package a

import (
	"sync"

	"couchgo/internal/events"
)

type J struct {
	mu   sync.Mutex
	subs []chan int
}

// The journal's fan-out shape: snapshot subscribers under the lock,
// deliver only after releasing it, with select/default so a slow
// subscriber is dropped, never waited on. Clean under lockblock.
func (j *J) publish(v int) {
	j.mu.Lock()
	subs := make([]chan int, len(j.subs))
	copy(subs, j.subs)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- v:
		default:
		}
	}
}

type S struct {
	mu sync.Mutex
}

// events is an exempt leaf: Publish never blocks, so emitting while
// holding a caller's lock cannot extend a wait-for cycle.
func (s *S) goodExemptPublish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	events.Default.Publish(events.New(events.Config, events.SevInfo, "x"))
}

// But the naive shape — fanning out while still holding the lock —
// is exactly what the rule exists to catch.
func (j *J) badFanOutUnderLock(v int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, ch := range j.subs {
		ch <- v // want: lockblock
	}
}
`},
		{name: "socket_write_under_lock", src: `
package a

import (
	"net"
	"sync"
)

type S struct {
	mu sync.Mutex
	nc net.Conn
}

// The shape the transport layer must never take: a socket write
// blocks for as long as the peer's receive window is closed, so a
// slow peer stalls every other goroutine wanting the lock.
func (s *S) bad(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nc.Write(buf) // want: lockblock
}

// counting is a byte-counting decorator; its Write is declared
// locally, but the receiver still implements net.Conn, so the write
// is still a socket write.
type counting struct {
	net.Conn
	n int64
}

func (c *counting) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.n += int64(n)
	return n, err
}

func (s *S) badWrapped(c *counting, buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Write(buf) // want: lockblock
}

func (s *S) goodAfterUnlock(buf []byte) {
	s.mu.Lock()
	s.mu.Unlock()
	s.nc.Write(buf)
}
`},
		{name: "transport_write_loop_clean", src: `
package a

import "net"

// The transport writer-goroutine shape: one goroutine owns the socket
// and drains a channel; no lock is ever held across socket I/O, so
// the read/write loops are clean by construction.
type conn struct {
	nc      net.Conn
	writeCh chan []byte
	closed  chan struct{}
}

func (c *conn) writeLoop() {
	for {
		select {
		case buf := <-c.writeCh:
			if _, err := c.nc.Write(buf); err != nil {
				return
			}
		case <-c.closed:
			return
		}
	}
}

func (c *conn) readLoop(handle func([]byte)) {
	buf := make([]byte, 4096)
	for {
		n, err := c.nc.Read(buf)
		if err != nil {
			return
		}
		handle(buf[:n])
	}
}
`},
		{name: "distinct_mutexes_tracked_separately", src: `
package a

import "sync"

type S struct {
	opMu sync.Mutex
	mu   sync.Mutex
	ch   chan int
}

func (s *S) bad() {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1 // want: lockblock
}
`},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) { checkFixture(t, LockBlock, fx) })
	}
}
