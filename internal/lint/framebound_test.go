package lint

import "testing"

// TestFrameBound exercises the wire-bounds rule on the decode shapes
// that matter: unguarded BigEndian reads reaching make(), single-byte
// header loads, guard-then-alloc (clean), len()-relative guards
// (clean), and the full frame-read shape where bodyLen comes off the
// header with no max check.
func TestFrameBound(t *testing.T) {
	const path = ModulePath + "/internal/memcproto"
	fixtures := []fixture{
		{name: "unguarded_uint32", path: path, src: `
package memcproto

import "encoding/binary"

func decode(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	return make([]byte, n) // want: framebound
}
`},
		{name: "guarded_by_const_clean", path: path, src: `
package memcproto

import "encoding/binary"

const maxBody = 1 << 20

func decode(b []byte) ([]byte, bool) {
	n := binary.BigEndian.Uint32(b)
	if n > maxBody {
		return nil, false
	}
	return make([]byte, n), true
}
`},
		{name: "byte_index_ext_len", path: path, src: `
package memcproto

func ext(b []byte) []byte {
	extLen := b[4]
	return make([]byte, extLen) // want: framebound
}
`},
		{name: "guarded_by_len_clean", path: path, src: `
package memcproto

import "encoding/binary"

func bounded(b []byte) []byte {
	n := binary.BigEndian.Uint16(b)
	if int(n) > len(b) {
		return nil
	}
	return make([]byte, n)
}
`},
		{name: "read_frame_shape", path: path, src: `
package memcproto

import (
	"encoding/binary"
	"io"
)

// The real-tree bug shape: Read trusts the header's bodyLen and
// allocates before any check — one hostile 24-byte frame asks for a
// multi-gigabyte buffer.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	bodyLen := binary.BigEndian.Uint32(hdr[8:12])
	body := make([]byte, bodyLen) // want: framebound
	_, err := io.ReadFull(r, body)
	return body, err
}
`},
		{name: "inline_read_in_make", path: path, src: `
package memcproto

import "encoding/binary"

func inline(b []byte) []byte {
	return make([]byte, binary.BigEndian.Uint16(b[2:4])) // want: framebound
}
`},
		{name: "reassignment_invalidates_guard", path: path, src: `
package memcproto

import "encoding/binary"

const maxKey = 4096

func reread(b []byte) []byte {
	n := binary.BigEndian.Uint16(b)
	if n > maxKey {
		return nil
	}
	n = binary.BigEndian.Uint16(b[2:])
	return make([]byte, n) // want: framebound
}
`},
		{name: "other_package_not_gated", src: `
package a

import "encoding/binary"

// Same shape outside internal/memcproto: not this rule's business.
func decode(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	return make([]byte, n)
}
`},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) { checkFixture(t, FrameBound, fx) })
	}
}
