package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// Fixtures share one FileSet and one source importer so the standard
// library is type-checked once per test binary, not once per case.
var (
	testFset     = token.NewFileSet()
	testImporter = importer.ForCompiler(testFset, "source", nil)
)

// fixture is one table-driven analyzer test case: source with expected
// diagnostics embedded as `// want: <rule> [<rule>...]` comments on
// the offending lines.
type fixture struct {
	name string
	path string // import path to type-check under (affects path-gated rules)
	src  string
}

// checkFixture type-checks src as a single-file package, runs analyzer
// a through the driver (including pragma suppression), and compares
// the diagnostics' (line, rule) pairs against the // want: comments.
func checkFixture(t *testing.T, a *Analyzer, fx fixture) {
	t.Helper()
	checkFixtureWith(t, a, fx, Run)
}

// checkFixtureAll is checkFixture through RunAll, so unusedpragma
// warnings participate in the comparison.
func checkFixtureAll(t *testing.T, a *Analyzer, fx fixture) {
	t.Helper()
	checkFixtureWith(t, a, fx, RunAll)
}

func checkFixtureWith(t *testing.T, a *Analyzer, fx fixture, run func([]*Package, []*Analyzer) []Diagnostic) {
	t.Helper()
	filename := fmt.Sprintf("%s_%s.go", a.Name, fx.name)
	file, err := parser.ParseFile(testFset, filename, fx.src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	path := fx.path
	if path == "" {
		path = ModulePath + "/internal/fixture"
	}
	info := NewInfo()
	conf := types.Config{Importer: testImporter}
	tpkg, err := conf.Check(path, testFset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	pkg := &Package{Path: path, Fset: testFset, Files: []*ast.File{file}, Types: tpkg, Info: info}

	var got []string
	for _, d := range run([]*Package{pkg}, []*Analyzer{a}) {
		got = append(got, fmt.Sprintf("%d:%s", d.Pos.Line, d.Rule))
	}
	want := wantDiags(pkg, file)
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("diagnostics mismatch\n got: %v\nwant: %v", got, want)
	}
}

// wantDiags extracts `// want: rule [rule...]` expectations as
// "line:rule" strings.
func wantDiags(pkg *Package, file *ast.File) []string {
	var out []string
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			// Substring, not prefix: a want marker may trail another
			// comment (e.g. a pragma under test).
			idx := strings.Index(c.Text, "// want:")
			if idx < 0 {
				continue
			}
			text := c.Text[idx+len("// want:"):]
			line := pkg.Fset.Position(c.Pos()).Line
			for _, rule := range strings.Fields(text) {
				out = append(out, fmt.Sprintf("%d:%s", line, rule))
			}
		}
	}
	return out
}

// TestLoadRepo loads and analyzes the entire module — the same work
// `go run ./cmd/couchvet ./...` does — and requires a clean result, so
// a finding introduced anywhere in the tree fails this package's tests
// too, not just the CI lint step.
func TestLoadRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module typecheck is slow; run without -short")
	}
	pkgs, err := Load("../..")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("Load found %d packages, expected the full tree (>=20)", len(pkgs))
	}
	for _, want := range []string{ModulePath, ModulePath + "/internal/feed", ModulePath + "/cmd/couchvet"} {
		found := false
		for _, p := range pkgs {
			if p.Path == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Load missed package %s", want)
		}
	}
	// RunAll, not Run: the gate also requires every //couchvet:ignore
	// pragma in the tree to still be earning its keep.
	if diags := RunAll(pkgs, All); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

// TestIgnorePragma exercises the suppression pragma through the
// driver: same-line and line-above placement, rule matching, and the
// "all" wildcard.
func TestIgnorePragma(t *testing.T) {
	fixtures := []fixture{
		{name: "same_line", src: `
package a

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) f() {
	s.mu.Lock()
	s.ch <- 1 //couchvet:ignore lockblock -- fixture
	s.mu.Unlock()
}
`},
		{name: "line_above", src: `
package a

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) f() {
	s.mu.Lock()
	//couchvet:ignore lockblock -- fixture
	s.ch <- 1
	s.mu.Unlock()
}
`},
		{name: "all_wildcard", src: `
package a

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) f() {
	s.mu.Lock()
	s.ch <- 1 //couchvet:ignore all -- fixture
	s.mu.Unlock()
}
`},
		{name: "wrong_rule_does_not_suppress", src: `
package a

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) f() {
	s.mu.Lock()
	s.ch <- 1 //couchvet:ignore droppederror -- wrong rule // want: lockblock
	s.mu.Unlock()
}
`},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) { checkFixture(t, LockBlock, fx) })
	}
}

// TestUnusedPragma exercises the RunAll audit: a pragma whose rule ran
// but suppressed nothing is itself a finding; a pragma for a rule that
// did not run is left alone (a -rules subset must not condemn other
// rules' pragmas); a pragma doing real work stays silent.
func TestUnusedPragma(t *testing.T) {
	fixtures := []fixture{
		{name: "stale_pragma_flagged", src: `
package a

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

// The send was fixed long ago; the pragma lingers.
func (s *S) f() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1 //couchvet:ignore lockblock -- stale // want: unusedpragma
}
`},
		{name: "working_pragma_silent", src: `
package a

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) f() {
	s.mu.Lock()
	s.ch <- 1 //couchvet:ignore lockblock -- fixture
	s.mu.Unlock()
}
`},
		{name: "other_rules_pragma_exempt", src: `
package a

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

// droppederror is not in this run's analyzer set, so its pragma
// cannot be judged unused.
func (s *S) f() {
	s.mu.Lock()
	s.ch <- 1 //couchvet:ignore droppederror -- wrong rule // want: lockblock
	s.mu.Unlock()
}
`},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) { checkFixtureAll(t, LockBlock, fx) })
	}
}
