package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MixedAtomic flags struct fields that are accessed through sync/atomic
// functions in one place (atomic.AddUint64(&s.n, 1)) and through plain
// loads or stores elsewhere (s.n++ / x := s.n). Mixing the two races:
// the plain access is invisible to the atomic protocol. Fields declared
// as atomic.Uint64 etc. are safe by construction and not tracked.
var MixedAtomic = &Analyzer{
	Name: "mixedatomic",
	Doc:  "struct field accessed both via sync/atomic and via plain load/store",
	Run:  runMixedAtomic,
}

func runMixedAtomic(pkg *Package) []Diagnostic {
	// Pass 1: fields passed by address to a sync/atomic function, and
	// the positions of those (sanctioned) selector uses.
	atomicFields := make(map[*types.Var]string) // field -> atomic func name
	sanctioned := make(map[token.Pos]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleePackage(pkg, call) != "sync/atomic" {
				return true
			}
			fn := ""
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				fn = sel.Sel.Name
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := fieldObject(pkg, sel)
				if obj == nil {
					continue
				}
				atomicFields[obj] = fn
				sanctioned[sel.Pos()] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other selector use of those fields is a plain
	// access racing the atomic protocol.
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel.Pos()] {
				return true
			}
			obj := fieldObject(pkg, sel)
			if obj == nil {
				return true
			}
			if fn, tracked := atomicFields[obj]; tracked {
				diags = append(diags, Diagnostic{
					Pos:  pkg.pos(sel.Pos()),
					Rule: "mixedatomic",
					Message: fmt.Sprintf(
						"plain access to field %s, which is accessed via atomic.%s elsewhere",
						obj.Name(), fn),
				})
			}
			return true
		})
	}
	return diags
}

// fieldObject resolves sel to the struct-field object it selects, or
// nil when sel is not a field selection.
func fieldObject(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
