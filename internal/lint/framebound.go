package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FrameBound guards the wire-decode paths of internal/memcproto: any
// allocation whose size derives from a wire field must be dominated by
// a bounds check against a declared maximum. A hostile peer owns every
// byte of a frame header; `make([]byte, bodyLen)` with an unchecked
// bodyLen turns one 24-byte frame into a multi-gigabyte allocation.
// The rule makes "error, not alloc" a structural property instead of a
// fuzz-only hope.
//
// Taint sources are binary.BigEndian.Uint16/32/64 reads and single
// byte loads from a []byte (wire buffers are the only []byte a decode
// path touches). Taint propagates through assignments, conversions,
// and arithmetic. len(x) sanitizes: the length of a slice already in
// memory is not attacker-amplifiable. A tainted variable is cleared by
// a comparison against an untainted bound — a constant (MaxBodyLen,
// MaxKeyLen) or a len() of an existing buffer — anywhere earlier in
// the function (source order approximates dominance; decode functions
// here are straight-line guard-then-use code). Sinks are make() calls
// whose size expression is still tainted.
//
// The rule is gated to internal/memcproto: that is where wire bytes
// become Go values, and where the invariant is cheap to state exactly.
var FrameBound = &Analyzer{
	Name: "framebound",
	Doc:  "wire-derived length reaches an allocation without a bounds check",
	Run:  runFrameBound,
}

func runFrameBound(pkg *Package) []Diagnostic {
	if pkg.Path != ModulePath+"/internal/memcproto" {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &frameWalker{pkg: pkg, tainted: map[string]bool{}, guarded: map[string]bool{}}
			w.stmts(fn.Body.List)
			diags = append(diags, w.diags...)
		}
	}
	return diags
}

type frameWalker struct {
	pkg     *Package
	tainted map[string]bool
	guarded map[string]bool
	diags   []Diagnostic
}

// stmts processes a body in source order; guard state flows forward
// only. Branch bodies share the walker — a guard established inside
// an `if` leaks to the rest of the function, which over-approximates
// domination, but decode code that checks a bound on any path and
// then allocates is exactly the guard-then-use shape being required.
func (w *frameWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *frameWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkSinks(e)
		}
		w.propagate(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						w.checkSinks(v)
						if w.taintedExpr(v) && i < len(vs.Names) {
							w.tainted[vs.Names[i].Name] = true
						}
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.guardsFromCond(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ExprStmt:
		w.checkSinks(s.X)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkSinks(e)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.guardsFromCond(s.Cond)
		}
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// propagate transfers taint across an assignment.
func (w *frameWalker) propagate(s *ast.AssignStmt) {
	taintLHS := func(i int, tainted bool) {
		id, ok := s.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if tainted {
			w.tainted[id.Name] = true
			delete(w.guarded, id.Name) // reassignment invalidates an old guard
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			taintLHS(i, w.taintedExpr(rhs))
		}
		return
	}
	// Multi-value: taint every target if the single RHS is tainted.
	if len(s.Rhs) == 1 && w.taintedExpr(s.Rhs[0]) {
		for i := range s.Lhs {
			taintLHS(i, true)
		}
	}
}

// guardsFromCond scans a condition (through && and ||) for comparisons
// of a tainted variable against an untainted bound, and marks those
// variables guarded.
func (w *frameWalker) guardsFromCond(cond ast.Expr) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch be.Op {
	case token.LAND, token.LOR:
		w.guardsFromCond(be.X)
		w.guardsFromCond(be.Y)
		return
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	w.guardSide(be.X, be.Y)
	w.guardSide(be.Y, be.X)
}

// guardSide marks tainted identifiers in side as guarded when bound is
// an acceptable limit: a compile-time constant or an expression built
// from len() and untainted values.
func (w *frameWalker) guardSide(side, bound ast.Expr) {
	ids := w.taintedIdents(side)
	if len(ids) == 0 {
		return
	}
	if !w.isBound(bound) {
		return
	}
	for _, id := range ids {
		w.guarded[id] = true
	}
}

// isBound reports whether e is a legitimate limit to compare a wire
// length against: a constant expression (declared max) or anything
// untainted (len of a real buffer, a caller-supplied cap).
func (w *frameWalker) isBound(e ast.Expr) bool {
	if tv, ok := w.pkg.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	return !w.taintedExpr(e)
}

// checkSinks reports make() calls whose size is still tainted.
func (w *frameWalker) checkSinks(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		for _, arg := range call.Args[1:] {
			if w.taintedExpr(arg) {
				w.diags = append(w.diags, Diagnostic{
					Pos:     w.pkg.pos(call.Pos()),
					Rule:    "framebound",
					Message: fmt.Sprintf("allocation sized by wire-derived %s without a bounds check against a declared max", describeTaint(arg)),
				})
				break
			}
		}
		return true
	})
}

// taintedExpr reports whether e still carries unguarded wire taint:
// it contains a raw taint source (a BigEndian read or a byte load
// from a []byte) or mentions a tainted, unguarded variable. len()
// subtrees are skipped — a slice's length is not wire-controlled
// beyond memory already allocated.
func (w *frameWalker) taintedExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "len" || id.Name == "cap") {
					return false
				}
			}
			if isWireRead(w.pkg, n) {
				found = true
				return false
			}
		case *ast.IndexExpr:
			if isByteSlice(w.pkg.Info.TypeOf(n.X)) {
				found = true
				return false
			}
		case *ast.Ident:
			if w.tainted[n.Name] && !w.guarded[n.Name] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// taintedIdents collects tainted (guarded or not) variable names in e.
func (w *frameWalker) taintedIdents(e ast.Expr) []string {
	set := map[string]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && w.tainted[id.Name] {
			set[id.Name] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// describeTaint names the tainted variables in a sink's size for the
// message, falling back to "length" for inline reads.
func describeTaint(e ast.Expr) string {
	var names []string
	seen := map[string]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !seen[id.Name] && id.Obj != nil {
			seen[id.Name] = true
			names = append(names, id.Name)
		}
		return true
	})
	if len(names) == 0 {
		return "length"
	}
	sort.Strings(names)
	if len(names) == 1 {
		return names[0]
	}
	return names[0] + " (and others)"
}

// isWireRead reports whether call is binary.BigEndian.UintNN (or the
// LittleEndian twin) — the canonical multi-byte wire-field load.
func isWireRead(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Uint16", "Uint32", "Uint64":
	default:
		return false
	}
	fn := calleeFunc(pkg, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary"
}

// isByteSlice reports whether t is []byte (after named-type unwrap).
func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
