package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// DroppedError flags silently discarded error returns — `_ = f()`,
// bare-call statements, `go f()`, and `defer f()` where f returns an
// error — inside the packages where a swallowed error corrupts or
// loses data: the storage engine's compaction/recovery paths, the
// cache's eviction/flush paths, and the feed layer's stream lifecycle.
// Elsewhere, discarding an error is often a reasonable judgment call;
// in these packages it must be propagated, logged, or counted.
var DroppedError = &Analyzer{
	Name: "droppederror",
	Doc:  "discarded error return in an error-critical package",
	Run:  runDroppedError,
}

// droppedErrorPackages is the error-critical package set the rule
// applies to.
var droppedErrorPackages = map[string]bool{
	ModulePath + "/internal/storage": true,
	ModulePath + "/internal/cache":   true,
	ModulePath + "/internal/feed":    true,
}

func runDroppedError(pkg *Package) []Diagnostic {
	if !droppedErrorPackages[pkg.Path] {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, form string) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.pos(n.Pos()),
			Rule:    "droppederror",
			Message: fmt.Sprintf("%s discards an error return", form),
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && returnsError(pkg, call) {
					report(n, "bare call")
				}
			case *ast.DeferStmt:
				if returnsError(pkg, n.Call) {
					report(n, "deferred call")
				}
			case *ast.GoStmt:
				if returnsError(pkg, n.Call) {
					report(n, "go statement")
				}
			case *ast.AssignStmt:
				diags = append(diags, blankErrorAssigns(pkg, n)...)
			}
			return true
		})
	}
	return diags
}

// blankErrorAssigns finds `_` targets that receive an error value in
// an assignment, covering both 1:1 assignments and multi-value calls.
func blankErrorAssigns(pkg *Package, as *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.pos(n.Pos()),
			Rule:    "droppederror",
			Message: "error assigned to _",
		})
	}
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && isErrorType(pkg.Info.TypeOf(as.Rhs[i])) {
				report(lhs)
			}
		}
		return diags
	}
	// Multi-value: x, _ := f()
	if len(as.Rhs) != 1 {
		return diags
	}
	tv, ok := pkg.Info.Types[as.Rhs[0]]
	if !ok {
		return diags
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok || tuple.Len() != len(as.Lhs) {
		return diags
	}
	for i, lhs := range as.Lhs {
		if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
			report(lhs)
		}
	}
	return diags
}
