package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockBlock flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: channel sends and receives, select statements,
// ranging over a channel, socket writes (a Write/WriteTo on anything
// that is or implements net.Conn — a slow peer must never stall a
// lock holder; the transport layer's writer-goroutine loops own their
// sockets lock-free and stay clean by construction), and calls into
// other in-repo internal packages (which may themselves take locks or
// block — the deadlock shape the feed/dcp/core triangle is most
// exposed to). The analysis is intra-procedural: a lock is considered
// held from a Lock()/RLock() statement (or for the rest of the
// function after `defer Unlock()`) until a matching
// Unlock()/RUnlock() in the same block sequence.
var LockBlock = &Analyzer{
	Name: "lockblock",
	Doc:  "mutex held across channel operation, select, socket write, or cross-internal-package call",
	Run:  runLockBlock,
}

// lockBlockExempt lists in-repo leaf packages that are safe to call
// with a lock held: they perform no channel operations and call no
// other internal package (storage's only internal dependency is the
// atomic-only metrics package), so they cannot extend a wait-for
// cycle. A deadlock needs a cycle; a leaf cannot close one.
var lockBlockExempt = map[string]bool{
	ModulePath + "/internal/metrics": true, // atomic counters only
	ModulePath + "/internal/value":   true, // pure functions
	ModulePath + "/internal/n1ql":    true, // pure parse/eval
	ModulePath + "/internal/btree":   true, // unsynchronized data structure
	ModulePath + "/internal/cmap":    true, // self-contained vBucket map
	ModulePath + "/internal/storage": true, // leaf; file I/O, no channels
	// events is a leaf (no internal imports) and Publish never blocks:
	// it snapshots subscribers under its own lock, releases it, then
	// delivers with select/default, dropping when a buffer is full.
	ModulePath + "/internal/events": true,
}

type lockWalker struct {
	pkg   *Package
	diags []Diagnostic
}

func runLockBlock(pkg *Package) []Diagnostic {
	w := &lockWalker{pkg: pkg}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w.walkStmts(n.Body.List, map[string]token.Pos{})
				}
				return false
			case *ast.FuncLit:
				// Only reached for literals outside any FuncDecl
				// (package-level var initializers).
				w.walkStmts(n.Body.List, map[string]token.Pos{})
				return false
			}
			return true
		})
	}
	return w.diags
}

// walkStmts interprets a statement sequence, threading the set of held
// mutexes (keyed by mutex expression). Nested control-flow bodies get
// a copy: locks acquired or released inside a branch are scoped to it,
// which keeps the common `if cond { mu.Unlock(); return }` pattern
// from poisoning the rest of the function.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op := mutexOp(w.pkg, call); op != opNone {
				if op == opLock {
					held[key] = call.Pos()
				} else {
					delete(held, key)
				}
				return
			}
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if _, op := mutexOp(w.pkg, s.Call); op != opNone {
			// `defer mu.Unlock()` keeps the lock held for the rest of
			// the function — exactly what the walker already models by
			// leaving `held` untouched.
			return
		}
		for _, a := range s.Call.Args {
			w.checkExpr(a, held)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.checkExpr(a, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, map[string]token.Pos{})
		}
	case *ast.SendStmt:
		w.report(s.Pos(), held, "channel send")
		w.checkExpr(s.Chan, held)
		w.checkExpr(s.Value, held)
	case *ast.SelectStmt:
		w.report(s.Pos(), held, "select")
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		if isChan(w.pkg.Info.TypeOf(s.X)) {
			w.report(s.Pos(), held, "range over channel")
		}
		w.checkExpr(s.X, held)
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	}
}

// checkExpr scans an expression for blocking operations (receives,
// calls into other internal packages) and walks any function literals
// with a fresh lock set.
func (w *lockWalker) checkExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(n.Body.List, map[string]token.Pos{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.report(n.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if socketWrite(w.pkg, n) {
				w.report(n.Pos(), held, "socket write")
			} else if p := calleePackage(w.pkg, n); internalPackage(p, w.pkg.Path) && !lockBlockExempt[p] {
				w.report(n.Pos(), held, fmt.Sprintf("call into %s", p))
			}
		}
		return true
	})
}

func (w *lockWalker) report(pos token.Pos, held map[string]token.Pos, what string) {
	if len(held) == 0 {
		return
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.diags = append(w.diags, Diagnostic{
		Pos:     w.pkg.pos(pos),
		Rule:    "lockblock",
		Message: fmt.Sprintf("%s while holding %s", what, strings.Join(keys, ", ")),
	})
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
