package lint

import "testing"

// TestLockOrder exercises the acquisition-graph cycle detector: direct
// AB/BA inversion, an inversion hidden behind a helper call, the
// cross-type method cycle shape (the transport-coordinator vs
// core-member pattern the rule exists for), and the clean cases —
// consistent ordering and same-type hand-over-hand (collapsed
// identities drop self-edges by design).
func TestLockOrder(t *testing.T) {
	fixtures := []fixture{
		{name: "ab_ba_direct", src: `
package a

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) f() {
	s.a.Lock()
	s.b.Lock() // want: lockorder
	s.b.Unlock()
	s.a.Unlock()
}

func (s *S) g() {
	s.b.Lock()
	s.a.Lock() // want: lockorder
	s.a.Unlock()
	s.b.Unlock()
}
`},
		{name: "inversion_via_helper", src: `
package a

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) lockB() {
	s.b.Lock()
	s.b.Unlock()
}

func (s *S) f() {
	s.a.Lock()
	s.lockB() // want: lockorder
	s.a.Unlock()
}

func (s *S) g() {
	s.b.Lock()
	s.a.Lock() // want: lockorder
	s.a.Unlock()
	s.b.Unlock()
}
`},
		{name: "cross_type_method_cycle", src: `
package a

import "sync"

// The real-tree shape this rule hunts: a coordinator that holds its
// own lock while pushing to members, and a member that holds its own
// lock while reporting back to the coordinator.

type Coordinator struct {
	mu      sync.Mutex
	members []*Member
}

type Member struct {
	mu    sync.Mutex
	coord *Coordinator
}

func (c *Coordinator) Broadcast() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		m.Push() // want: lockorder
	}
}

func (m *Member) Push() {
	m.mu.Lock()
	defer m.mu.Unlock()
}

func (m *Member) Report() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.coord.Note() // want: lockorder
}

func (c *Coordinator) Note() {
	c.mu.Lock()
	defer c.mu.Unlock()
}
`},
		{name: "consistent_order_clean", src: `
package a

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) f() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func (s *S) g() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}
`},
		{name: "released_before_second_clean", src: `
package a

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) f() {
	s.a.Lock()
	s.a.Unlock()
	s.b.Lock()
	s.b.Unlock()
}

func (s *S) g() {
	s.b.Lock()
	s.b.Unlock()
	s.a.Lock()
	s.a.Unlock()
}
`},
		{name: "same_type_collapsed_clean", src: `
package a

import "sync"

type Account struct {
	mu sync.Mutex
}

// Hand-over-hand over two instances of one type is a self-edge on the
// collapsed identity; dropped by design (documented imprecision).
func transfer(x, y *Account) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}
`},
		{name: "striped_commit_clean", src: `
package a

import "sync"

// The striped-cache shape: N bucket stripes each with its own lock,
// plus one table-level sequencing lock. Every writer acquires its
// stripe first, then enters seqMu via the commit helper; readers take
// only a stripe. The acquisition graph has the single edge
// stripe.mu -> seqMu and is acyclic.

type stripe struct {
	mu sync.Mutex
	m  map[string]int
}

type Table struct {
	seqMu   sync.Mutex
	seqno   int
	stripes [4]stripe
}

func (t *Table) commit(st *stripe, k string) {
	t.seqMu.Lock()
	t.seqno++
	st.m[k] = t.seqno
	t.seqMu.Unlock()
}

func (t *Table) Set(k string) {
	st := &t.stripes[len(k)%4]
	st.mu.Lock()
	t.commit(st, k)
	st.mu.Unlock()
}

func (t *Table) Get(k string) int {
	st := &t.stripes[len(k)%4]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m[k]
}
`},
		{name: "striped_inversion", src: `
package a

import "sync"

// The violation the striped design must never grow: a table-wide
// operation that holds seqMu while walking into stripe locks inverts
// the stripe.mu -> seqMu order and can deadlock against any writer.

type stripe struct {
	mu sync.Mutex
	m  map[string]int
}

type Table struct {
	seqMu   sync.Mutex
	seqno   int
	stripes [4]stripe
}

func (t *Table) Set(k string) {
	st := &t.stripes[len(k)%4]
	st.mu.Lock()
	t.seqMu.Lock() // want: lockorder
	t.seqno++
	st.m[k] = t.seqno
	t.seqMu.Unlock()
	st.mu.Unlock()
}

func (t *Table) Snapshot() int {
	t.seqMu.Lock()
	defer t.seqMu.Unlock()
	n := 0
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock() // want: lockorder
		n += len(st.m)
		st.mu.Unlock()
	}
	return n
}
`},
		{name: "goroutine_not_launcher", src: `
package a

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

// The goroutine acquires b on its own stack; the launcher holds a but
// never orders a before b. No cycle even though g orders b before a.
func (s *S) f() {
	s.a.Lock()
	go func() {
		s.b.Lock()
		s.b.Unlock()
	}()
	s.a.Unlock()
}

func (s *S) g() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
`},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) { checkFixture(t, LockOrder, fx) })
	}
}
