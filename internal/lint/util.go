package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockOp classifies a sync.Mutex / sync.RWMutex method call.
type lockOp int

const (
	opNone   lockOp = iota
	opLock          // Lock, RLock
	opUnlock        // Unlock, RUnlock
)

// mutexOp reports whether call is a Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, and if so returns the op and a stable
// string key for the mutex expression (e.g. "v.mu", "s", "mu").
func mutexOp(pkg *Package, call *ast.CallExpr) (key string, op lockOp) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok {
		return "", opNone
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	return exprKey(sel.X), op
}

// exprKey renders a (simple) expression as a stable identity string.
// Good enough to match `v.mu.Lock()` with `v.mu.Unlock()`.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.IndexExpr:
		return exprKey(e.X) + "[" + exprKey(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	default:
		return "?"
	}
}

// calleePackage returns the import path of the package a call's callee
// belongs to ("" when unknown, e.g. calls through function values).
func calleePackage(pkg *Package, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	obj := pkg.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isChan reports whether t's core type is a channel.
func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// returnsError reports whether call's result type is, or includes, the
// built-in error interface.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok &&
		named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return true
	}
	return types.Implements(t, errorIface)
}

// isSyncOrAtomicType reports whether t (or the type it points to) is
// declared in sync or sync/atomic — fields of such types manage their
// own synchronization.
func isSyncOrAtomicType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "sync" || p == "sync/atomic"
}

// socketWrite reports whether call writes to a network connection: a
// Write/WriteTo method on a value whose type is, or implements,
// net.Conn. Wrapper types (byte-counting decorators and the like) are
// caught through the interface check, so hiding the conn behind an
// embedding struct does not hide the write. A socket write blocks for
// as long as the peer's receive window stays closed — holding a mutex
// across one turns a slow peer into a stalled process.
func socketWrite(pkg *Package, call *ast.CallExpr) bool {
	return socketMethod(pkg, call, "Write", "WriteTo")
}

// socketRead is socketWrite's receive-side twin: a Read/ReadFrom on
// anything that is or implements net.Conn. A socket read blocks until
// the peer sends — the canonical op a context must be able to abandon.
func socketRead(pkg *Package, call *ast.CallExpr) bool {
	return socketMethod(pkg, call, "Read", "ReadFrom")
}

func socketMethod(pkg *Package, call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	found := false
	for _, n := range names {
		if sel.Sel.Name == n {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	// Direct hits: methods declared in package net (including
	// net.Conn's own interface methods, which is what a plain
	// `conn.Write` through an interface value resolves to).
	if fn.Pkg() != nil && fn.Pkg().Path() == "net" {
		return true
	}
	conn := netConnIface(pkg)
	if conn == nil {
		return false
	}
	recv := selection.Recv()
	if recv == nil {
		return false
	}
	if types.Implements(recv, conn) {
		return true
	}
	if _, isPtr := recv.(*types.Pointer); !isPtr && types.Implements(types.NewPointer(recv), conn) {
		return true
	}
	return false
}

// netConnIface finds the net.Conn interface among the package's
// direct imports (nil when the package never touches net — then no
// local type can name a net.Conn either).
func netConnIface(pkg *Package) *types.Interface {
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() != "net" {
			continue
		}
		obj, ok := imp.Scope().Lookup("Conn").(*types.TypeName)
		if !ok {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

// calleeFunc resolves a call's callee to its *types.Func (nil for
// calls through function values, conversions, and builtins).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// funcFullID is the stable cross-package identity of a function or
// method: "pkg/path.Name" or "(pkg/path.Type).Name". It is built from
// package *path strings*, so it matches even when the source importer
// has materialized two distinct types.Package instances for the same
// in-module package (the directly-checked one and the one seen through
// another package's imports).
func funcFullID(fn *types.Func) string { return fn.FullName() }

// moduleFunc reports whether fn is declared in this module.
func moduleFunc(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil &&
		(fn.Pkg().Path() == ModulePath || strings.HasPrefix(fn.Pkg().Path(), ModulePath+"/"))
}

// lockIdent resolves the mutex operand of a Lock/Unlock call to a
// type-scoped identity that is comparable across functions and
// packages: "pkg/path.Type.field" for a mutex field on a named type,
// "pkg/path.var" for a package-level mutex, "" when the mutex is a
// local variable (instance-anonymous locks cannot participate in a
// global order). Instances are deliberately collapsed: every T.mu is
// one node in the acquisition graph, which is exactly the abstraction
// a lock-ordering discipline is stated in.
func lockIdent(pkg *Package, mutexExpr ast.Expr) string {
	switch e := ast.Unparen(mutexExpr).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.SelectorExpr:
		// Field selection: identity is the receiver's named type plus
		// the field name, pointer receivers dereferenced.
		if selection, ok := pkg.Info.Selections[e]; ok {
			if v, ok := selection.Obj().(*types.Var); ok && v.IsField() {
				t := selection.Recv()
				for {
					if p, ok := t.(*types.Pointer); ok {
						t = p.Elem()
						continue
					}
					break
				}
				if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
					return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Name()
				}
			}
			return ""
		}
		// Qualified package-level var: otherpkg.mu.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
				if obj := pkg.Info.Uses[e.Sel]; obj != nil && obj.Pkg() != nil {
					return obj.Pkg().Path() + "." + obj.Name()
				}
			}
		}
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// internalPackage reports whether path is an in-module internal
// package other than self.
func internalPackage(path, self string) bool {
	return path != self &&
		strings.HasPrefix(path, ModulePath+"/internal/") &&
		path != ""
}

func (pkg *Package) pos(p token.Pos) token.Position { return pkg.Fset.Position(p) }

// funcName labels a function declaration for diagnostics.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		return "(" + exprKey(fn.Recv.List[0].Type) + ")." + fn.Name.Name
	}
	return fn.Name.Name
}
