package lint

import "testing"

func TestMixedAtomic(t *testing.T) {
	fixtures := []fixture{
		{name: "mixed_access", src: `
package a

import "sync/atomic"

type C struct {
	n uint64
}

func (c *C) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *C) badRead() uint64 {
	return c.n // want: mixedatomic
}

func (c *C) badWrite() {
	c.n = 0 // want: mixedatomic
}

func (c *C) goodLoad() uint64 {
	return atomic.LoadUint64(&c.n)
}
`},
		{name: "all_atomic_clean", src: `
package a

import "sync/atomic"

type C struct {
	n uint64
}

func (c *C) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *C) load() uint64 {
	return atomic.LoadUint64(&c.n)
}
`},
		{name: "atomic_typed_field_clean", src: `
package a

import "sync/atomic"

type C struct {
	n atomic.Uint64
}

func (c *C) inc() {
	c.n.Add(1)
}

func (c *C) load() uint64 {
	return c.n.Load()
}
`},
		{name: "untracked_field_clean", src: `
package a

import "sync/atomic"

type C struct {
	n uint64
	m uint64
}

func (c *C) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *C) bumpM() {
	c.m++
}
`},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) { checkFixture(t, MixedAtomic, fx) })
	}
}
