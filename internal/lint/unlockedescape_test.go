package lint

import "testing"

func TestUnlockedEscape(t *testing.T) {
	fixtures := []fixture{
		{name: "guarded_map", src: `
package a

import "sync"

type T struct {
	mu sync.Mutex
	m  map[string]int
}

func (t *T) Set(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
}

func (t *T) BadRead(k string) int {
	return t.m[k] // want: unlockedescape
}

func (t *T) BadWrite() {
	t.m = nil // want: unlockedescape
}

func (t *T) getLocked(k string) int {
	return t.m[k]
}

func (t *T) Good(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.getLocked(k)
}
`},
		{name: "any_of_several_guards_suffices", src: `
package a

import "sync"

type C struct {
	mu   sync.Mutex
	rb   sync.Mutex
	bkts map[string]int
}

func (c *C) add(name string) {
	c.mu.Lock()
	c.rb.Lock()
	c.bkts[name] = 1
	c.rb.Unlock()
	c.mu.Unlock()
}

func (c *C) getUnderMu(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bkts[name]
}

func (c *C) countUnderRb() int {
	c.rb.Lock()
	defer c.rb.Unlock()
	return len(c.bkts)
}

func (c *C) bad(name string) int {
	return c.bkts[name] // want: unlockedescape
}
`},
		{name: "unguarded_field_not_flagged", src: `
package a

import "sync"

type U struct {
	mu   sync.Mutex
	n    int
	name string
}

func (u *U) Init(s string) {
	u.name = s
}

func (u *U) Incr() {
	u.mu.Lock()
	u.n++
	u.mu.Unlock()
}

func (u *U) Name() string {
	return u.name
}

func (u *U) BadN() int {
	return u.n // want: unlockedescape
}
`},
		{name: "no_mutex_field_no_inference", src: `
package a

type P struct {
	n int
}

func (p *P) Set(v int) {
	p.n = v
}

func (p *P) Get() int {
	return p.n
}
`},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) { checkFixture(t, UnlockedEscape, fx) })
	}
}
