package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces that a context.Context handed to a function is not
// dropped on the floor before a blocking operation. The contract the
// wire-facing layers (core.NodeConn implementers, transport sessions,
// durability waits) live by is: if you accept a ctx and you block, the
// ctx must be able to stop you.
//
// For every function with a context.Context parameter:
//
//   - time.Sleep is always flagged — a sleep can never observe ctx;
//     use a timer in a select with ctx.Done().
//   - Direct blocking operations (channel send/receive, range over a
//     channel, select without default and without a ctx.Done() case,
//     sync Wait, socket read/write) are flagged unless the function
//     consumes the ctx: calls Done/Err/Deadline on it, or hands it to
//     a callee that can act on it — anything outside the module, an
//     interface method, a function value, or an in-module function
//     that itself blocks or (transitively) consumes.
//   - Calling an in-module function that may block *without* passing
//     the ctx is flagged (again, only when the caller never consumes
//     the ctx) — the inter-procedural case: the blocking happens two
//     frames down, but the ctx died here.
//
// "May block" is a fixpoint over the call graph. For the
// dropped-before-a-call finding it propagates only through ctx-less
// calls (a call that forwards a ctx is the callee's problem — the
// callee either consumes it or gets flagged itself); for consumption
// credit it propagates through every in-module call, so forwarding
// ctx to a thin wrapper around the real blocker still counts. A `go`
// statement is a boundary: the launched goroutine's blocking is its
// own, not the launcher's, though ctx use inside the goroutine still
// counts as consumption. Mutex operations and file I/O are
// deliberately not blocking ops: counting them would drag the storage
// and cache layers into a rule aimed at the network.
var CtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "context.Context parameter dropped before a blocking operation",
	RunModule: runCtxFlow,
}

// blockSite is one blocking operation inside a function body.
type blockSite struct {
	what  string
	pos   token.Position
	sleep bool // time.Sleep: flagged unconditionally
}

// ctxPass is one call that received the function's own ctx parameter
// as an argument; whether it counts as consumption depends on who the
// callee is (resolved after the fixpoints).
type ctxPass struct {
	callee *types.Func // nil: function value / builtin / conversion
	iface  bool
}

// ctxCallSite is one call to an in-module function.
type ctxCallSite struct {
	callee string
	label  string
	pos    token.Position
}

// ctxFuncInfo is the per-function summary ctxflow works from.
type ctxFuncInfo struct {
	id         string
	ctxName    string // "" when the function has no ctx parameter
	blocks     []blockSite
	consumesOp bool // ctx.Done / ctx.Err / ctx.Deadline observed
	passes     []ctxPass
	noCtxCalls []ctxCallSite // in-module calls without any ctx argument
	ctxCalls   []string      // in-module callees receiving some ctx

	mayBlockNoCtx bool // blocks, ignoring callees that were handed a ctx
	mayBlockAny   bool // blocks through any call chain
	usesCtx       bool // consumes, directly or through forwarding
}

func runCtxFlow(pkgs []*Package) []Diagnostic {
	var funcs []*ctxFuncInfo
	byID := make(map[string]*ctxFuncInfo)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				info := collectCtxFunc(pkg, fn, obj)
				funcs = append(funcs, info)
				byID[info.id] = info
			}
		}
	}

	for _, info := range funcs {
		info.mayBlockNoCtx = len(info.blocks) > 0
		info.mayBlockAny = len(info.blocks) > 0
	}
	for changed := true; changed; {
		changed = false
		for _, info := range funcs {
			if !info.mayBlockNoCtx {
				for _, c := range info.noCtxCalls {
					if callee := byID[c.callee]; callee != nil && callee.mayBlockNoCtx {
						info.mayBlockNoCtx = true
						changed = true
						break
					}
				}
			}
			if !info.mayBlockAny {
				for _, id := range append(info.ctxCalls, calleeIDs(info.noCtxCalls)...) {
					if callee := byID[id]; callee != nil && callee.mayBlockAny {
						info.mayBlockAny = true
						changed = true
						break
					}
				}
			}
		}
	}

	// Consumption credit: direct Done/Err/Deadline, a pass to anything
	// whose body we cannot see, or a pass to an in-module callee that
	// blocks or transitively uses the ctx.
	for _, info := range funcs {
		info.usesCtx = info.consumesOp
		for _, p := range info.passes {
			if p.callee == nil || p.iface || !moduleFunc(p.callee) {
				info.usesCtx = true
				break
			}
			if callee := byID[funcFullID(p.callee)]; callee != nil && callee.mayBlockAny {
				info.usesCtx = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, info := range funcs {
			if info.usesCtx {
				continue
			}
			for _, p := range info.passes {
				if p.callee == nil {
					continue
				}
				if callee := byID[funcFullID(p.callee)]; callee != nil && callee.usesCtx {
					info.usesCtx = true
					changed = true
					break
				}
			}
		}
	}

	var diags []Diagnostic
	for _, info := range funcs {
		if info.ctxName == "" {
			continue
		}
		for _, b := range info.blocks {
			switch {
			case b.sleep:
				diags = append(diags, Diagnostic{
					Pos:  b.pos,
					Rule: "ctxflow",
					Message: fmt.Sprintf("time.Sleep cannot observe %s; use a timer in a select with %s.Done()",
						info.ctxName, info.ctxName),
				})
			case !info.usesCtx:
				diags = append(diags, Diagnostic{
					Pos:  b.pos,
					Rule: "ctxflow",
					Message: fmt.Sprintf("%s blocks but %s is never consumed (no Done/Err/Deadline, no pass-through)",
						b.what, info.ctxName),
				})
			}
		}
		if !info.usesCtx {
			for _, c := range info.noCtxCalls {
				if callee := byID[c.callee]; callee != nil && callee.mayBlockNoCtx {
					diags = append(diags, Diagnostic{
						Pos:  c.pos,
						Rule: "ctxflow",
						Message: fmt.Sprintf("calls %s, which may block, without passing %s",
							c.label, info.ctxName),
					})
				}
			}
		}
	}
	return diags
}

func calleeIDs(calls []ctxCallSite) []string {
	out := make([]string, len(calls))
	for i, c := range calls {
		out[i] = c.callee
	}
	return out
}

// collectCtxFunc walks one function body, classifying blocking ops,
// ctx consumption, and in-module calls. Function literals are part of
// the enclosing declaration — the ctx is in scope there, and a
// closure's blocking is the function's blocking — except goroutine
// bodies, where only ctx consumption is recorded.
func collectCtxFunc(pkg *Package, fn *ast.FuncDecl, obj *types.Func) *ctxFuncInfo {
	info := &ctxFuncInfo{id: funcFullID(obj)}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if !isContextType(pkg.Info.TypeOf(field.Type)) {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					info.ctxName = name.Name
					break
				}
			}
			if info.ctxName != "" {
				break
			}
		}
	}

	isCtxIdent := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.ctxName != "" && id.Name == info.ctxName
	}

	var buildWalk func(inGo bool) func(ast.Node) bool
	buildWalk = func(inGo bool) func(ast.Node) bool {
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !inGo {
					// The goroutine blocks on its own stack; the
					// launcher does not. Arguments are evaluated here,
					// though, so walk them in the launcher's world.
					for _, a := range n.Call.Args {
						ast.Inspect(a, walk)
					}
					inner := buildWalk(true)
					if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
						ast.Inspect(lit.Body, inner)
					}
					return false
				}
			case *ast.SendStmt:
				if !inGo {
					info.blocks = append(info.blocks, blockSite{what: "channel send", pos: pkg.pos(n.Pos())})
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !inGo {
					info.blocks = append(info.blocks, blockSite{what: "channel receive", pos: pkg.pos(n.Pos())})
				}
			case *ast.RangeStmt:
				if !inGo && isChan(pkg.Info.TypeOf(n.X)) {
					info.blocks = append(info.blocks, blockSite{what: "range over channel", pos: pkg.pos(n.Pos())})
				}
			case *ast.SelectStmt:
				hasDefault, hasDone := false, false
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok {
						continue
					}
					if cc.Comm == nil {
						hasDefault = true
						continue
					}
					ast.Inspect(cc.Comm, func(m ast.Node) bool {
						if sel, ok := m.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isCtxIdent(sel.X) {
							hasDone = true
						}
						return true
					})
				}
				if hasDone {
					info.consumesOp = true
				}
				if !hasDefault && !hasDone && !inGo {
					info.blocks = append(info.blocks, blockSite{what: "select without default", pos: pkg.pos(n.Pos())})
				}
				// The comm clauses' channel ops are the select itself;
				// don't double-report them. Walk only the case bodies.
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							ast.Inspect(s, walk)
						}
					}
				}
				return false
			case *ast.SelectorExpr:
				if isCtxIdent(n.X) {
					switch n.Sel.Name {
					case "Done", "Err", "Deadline":
						info.consumesOp = true
					}
				}
			case *ast.CallExpr:
				callee := calleeFunc(pkg, n)
				if !inGo {
					switch {
					case isTimeSleep(callee):
						info.blocks = append(info.blocks, blockSite{what: "time.Sleep", pos: pkg.pos(n.Pos()), sleep: true})
					case isSyncWait(pkg, n):
						info.blocks = append(info.blocks, blockSite{what: "sync Wait", pos: pkg.pos(n.Pos())})
					case socketRead(pkg, n):
						info.blocks = append(info.blocks, blockSite{what: "socket read", pos: pkg.pos(n.Pos())})
					case socketWrite(pkg, n):
						info.blocks = append(info.blocks, blockSite{what: "socket write", pos: pkg.pos(n.Pos())})
					}
				}
				passesOwnCtx, passesAnyCtx := false, false
				for _, a := range n.Args {
					if isCtxIdent(a) {
						passesOwnCtx = true
					}
					if isContextType(pkg.Info.TypeOf(a)) {
						passesAnyCtx = true
					}
				}
				if passesOwnCtx {
					info.passes = append(info.passes, ctxPass{callee: callee, iface: interfaceMethod(callee)})
				}
				if !inGo && moduleFunc(callee) {
					if passesAnyCtx {
						info.ctxCalls = append(info.ctxCalls, funcFullID(callee))
					} else {
						info.noCtxCalls = append(info.noCtxCalls, ctxCallSite{
							callee: funcFullID(callee),
							label:  shortLock(funcFullID(callee)),
							pos:    pkg.pos(n.Pos()),
						})
					}
				}
			}
			return true
		}
		return walk
	}
	ast.Inspect(fn.Body, buildWalk(false))
	return info
}

// isTimeSleep reports whether fn is time.Sleep.
func isTimeSleep(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep"
}

// isSyncWait reports whether call is WaitGroup.Wait or Cond.Wait.
func isSyncWait(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// interfaceMethod reports whether fn is declared on an interface.
func interfaceMethod(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isIface := sig.Recv().Type().Underlying().(*types.Interface)
	return isIface
}
