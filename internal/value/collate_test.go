package value

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestCollationTypeOrder(t *testing.T) {
	// MISSING < NULL < FALSE < TRUE < number < string < array < object.
	ladder := []any{
		Missing,
		nil,
		false,
		true,
		-1.5,
		"a",
		[]any{1.0},
		map[string]any{"a": 1.0},
	}
	for i := 0; i < len(ladder); i++ {
		for j := 0; j < len(ladder); j++ {
			got := Compare(ladder[i], ladder[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(ladder[%d], ladder[%d]) = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestCompareWithinTypes(t *testing.T) {
	cases := []struct {
		a, b any
		want int
	}{
		{1.0, 2.0, -1},
		{2.0, 2.0, 0},
		{"apple", "banana", -1},
		{"b", "b", 0},
		{[]any{1.0, 2.0}, []any{1.0, 3.0}, -1},
		{[]any{1.0}, []any{1.0, 0.0}, -1}, // prefix sorts first
		{[]any{}, []any{}, 0},
		{map[string]any{"a": 1.0}, map[string]any{"a": 2.0}, -1},
		{map[string]any{"a": 1.0}, map[string]any{"b": 1.0}, -1},
		{map[string]any{"a": 1.0}, map[string]any{"a": 1.0, "b": 2.0}, -1},
		{Binary("ab"), Binary("ac"), -1},
		{Binary("ab"), Binary("ab"), 0},
		{false, true, -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(MustParse(`{"a":[1,2]}`), MustParse(`{"a":[1,2]}`)) {
		t.Error("equal documents should be Equal")
	}
	if Equal(1.0, "1") {
		t.Error("number and string are never equal")
	}
}

// randomValue builds a random JSON value of bounded depth.
func randomValue(r *rand.Rand, depth int) any {
	max := 7
	if depth <= 0 {
		max = 5 // scalars only
	}
	switch r.Intn(max) {
	case 0:
		return Missing
	case 1:
		return nil
	case 2:
		return r.Intn(2) == 0
	case 3:
		return float64(r.Intn(2000)-1000) / 4
	case 4:
		letters := []byte("abXY01\x00")
		n := r.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return string(b)
	case 5:
		n := r.Intn(4)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = randomValue(r, depth-1)
		}
		return arr
	default:
		n := r.Intn(4)
		obj := make(map[string]any, n)
		for i := 0; i < n; i++ {
			obj[string(rune('a'+r.Intn(5)))] = randomValue(r, depth-1)
		}
		return obj
	}
}

type randVal struct{ v any }

func (randVal) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randVal{randomValue(r, 3)})
}

func TestQuickCompareReflexive(t *testing.T) {
	f := func(a randVal) bool { return Compare(a.v, a.v) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b randVal) bool { return Compare(a.v, b.v) == -Compare(b.v, a.v) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodeKeyOrderPreserving is the core index-engine invariant:
// bytes.Compare(EncodeKey(a), EncodeKey(b)) must agree with Compare(a, b).
func TestQuickEncodeKeyOrderPreserving(t *testing.T) {
	f := func(a, b randVal) bool {
		vc := Compare(a.v, b.v)
		bc := bytes.Compare(EncodeKey(a.v), EncodeKey(b.v))
		if vc == 0 {
			// Distinct-but-equal values (e.g. MISSING vs MISSING) must
			// encode identically too.
			return bc == 0
		}
		return (vc < 0) == (bc < 0) && bc != 0
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitiveViaSort(t *testing.T) {
	// Sorting with Compare must yield a consistent order: after sorting,
	// every adjacent pair is <=. This catches intransitivity in practice.
	f := func(vals [12]randVal) bool {
		s := make([]any, len(vals))
		for i, v := range vals {
			s[i] = v.v
		}
		sort.Slice(s, func(i, j int) bool { return Compare(s[i], s[j]) < 0 })
		for i := 1; i < len(s); i++ {
			if Compare(s[i-1], s[i]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyStringEscaping(t *testing.T) {
	// "a\x00b" vs "a" — the embedded NUL must not make the shorter string
	// sort incorrectly.
	a, b := "a", "a\x00b"
	if Compare(a, b) >= 0 {
		t.Fatal("precondition: a < a\\x00b in string order")
	}
	if bytes.Compare(EncodeKey(a), EncodeKey(b)) >= 0 {
		t.Error("EncodeKey breaks order for strings with NUL bytes")
	}
}

func TestEncodeKeyNumbers(t *testing.T) {
	nums := []float64{-1e9, -2.5, -1, -0.25, 0, 0.25, 1, 2.5, 1e9}
	for i := 1; i < len(nums); i++ {
		a := EncodeKey(nums[i-1])
		b := EncodeKey(nums[i])
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("EncodeKey(%v) !< EncodeKey(%v)", nums[i-1], nums[i])
		}
	}
}
