package value

import (
	"bytes"
	"testing"
)

// FuzzCollate checks the collation invariants the index engines depend
// on: Compare is a total preorder (reflexive, antisymmetric,
// transitive) over anything Parse can produce — including the Binary
// fallback for non-JSON bytes — and EncodeKey's bytewise order agrees
// with Compare wherever Compare distinguishes the values. (-0 and 0
// compare equal but encode differently, so byte equality is not
// required for ties.)
func FuzzCollate(f *testing.F) {
	f.Add([]byte("null"), []byte("1"), []byte(`"s"`))
	f.Add([]byte("-0"), []byte("0"), []byte("1e3"))
	f.Add([]byte(`[1,"a"]`), []byte(`[1,"a",null]`), []byte(`{"a":1}`))
	f.Add([]byte(`{"a":1,"b":2}`), []byte(`{"a":1}`), []byte("not json"))
	f.Add([]byte("true"), []byte("false"), []byte(`""`))
	f.Add([]byte(`"a"`), []byte("\"a\x00\""), []byte(`"ab"`))
	f.Fuzz(func(t *testing.T, da, db, dc []byte) {
		va, _ := Parse(da)
		vb, _ := Parse(db)
		vc, _ := Parse(dc)
		for _, v := range []any{va, vb, vc} {
			if Compare(v, v) != 0 {
				t.Fatalf("Compare not reflexive for %#v", v)
			}
		}
		ab, bc, ac := Compare(va, vb), Compare(vb, vc), Compare(va, vc)
		if ba := Compare(vb, va); ba != -ab {
			t.Fatalf("Compare not antisymmetric: Compare(a,b)=%d Compare(b,a)=%d", ab, ba)
		}
		if ab <= 0 && bc <= 0 && ac > 0 {
			t.Fatalf("Compare not transitive: a<=b (%d), b<=c (%d), but a>c (%d)", ab, bc, ac)
		}
		if ab >= 0 && bc >= 0 && ac < 0 {
			t.Fatalf("Compare not transitive: a>=b (%d), b>=c (%d), but a<c (%d)", ab, bc, ac)
		}
		if Equal(va, vb) != (ab == 0) {
			t.Fatalf("Equal disagrees with Compare==0 (Compare=%d)", ab)
		}
		if ab != 0 {
			ka, kb := EncodeKey(va), EncodeKey(vb)
			if sgn(bytes.Compare(ka, kb)) != ab {
				t.Fatalf("EncodeKey order disagrees with Compare: Compare=%d, bytes.Compare=%d\n a=%#v\n b=%#v",
					ab, bytes.Compare(ka, kb), va, vb)
			}
		}
	})
}

func sgn(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	default:
		return 0
	}
}

// FuzzPathParse checks that sub-document path parsing never panics,
// that evaluating any parsed path against a document never panics, and
// that String() is a stable canonical form: it re-parses, and
// re-parsing is idempotent.
func FuzzPathParse(f *testing.F) {
	for _, s := range []string{
		"", "a", "a.b", "a[0]", "a[-1].b[2]", "[3]", "a..b",
		"a[", "a]", "a.b.", "ab[12][3].c", "a[999999999999999999999]",
	} {
		f.Add(s)
	}
	doc := MustParse(`{"a": {"b": [1, 2, {"c": null}]}, "x": "y"}`)
	f.Fuzz(func(t *testing.T, s string) {
		p, ok := ParsePath(s)
		_ = p.Eval(doc) // must not panic, even for the zero Path
		if !ok {
			return
		}
		s2 := p.String()
		p2, ok2 := ParsePath(s2)
		if !ok2 {
			t.Fatalf("canonical form %q of %q does not re-parse", s2, s)
		}
		if s3 := p2.String(); s3 != s2 {
			t.Fatalf("String not stable: %q -> %q", s2, s3)
		}
		if p2.Len() != p.Len() {
			t.Fatalf("round-trip changed step count: %d -> %d (%q -> %q)", p.Len(), p2.Len(), s, s2)
		}
	})
}
