// Package value implements the JSON data model shared by every layer of
// couchgo: the object-managed cache stores values, N1QL expressions
// evaluate over them, and the view and GSI engines index them.
//
// A value is one of:
//
//	Missing            — the distinguished "no such field" value
//	nil                — JSON null
//	bool               — JSON true/false
//	float64            — JSON number
//	string             — JSON string
//	[]any              — JSON array
//	map[string]any     — JSON object
//
// This is the natural encoding/json representation plus an explicit
// MISSING, which N1QL distinguishes from NULL (a field that is absent
// sorts below, and compares differently from, a field that is null).
package value

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Kind enumerates the N1QL type lattice in collation order. The order of
// the constants is the order values sort in ORDER BY and in index keys:
// MISSING < NULL < FALSE < TRUE < number < string < array < object.
type Kind int

const (
	MISSING Kind = iota
	NULL
	BOOLEAN
	NUMBER
	STRING
	ARRAY
	OBJECT
	// BINARY covers non-JSON (memcached-style blob) documents. It sorts
	// above OBJECT; it never appears inside JSON documents.
	BINARY
)

// String returns the N1QL name of the kind.
func (k Kind) String() string {
	switch k {
	case MISSING:
		return "missing"
	case NULL:
		return "null"
	case BOOLEAN:
		return "boolean"
	case NUMBER:
		return "number"
	case STRING:
		return "string"
	case ARRAY:
		return "array"
	case OBJECT:
		return "object"
	case BINARY:
		return "binary"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

type missingType struct{}

func (missingType) String() string { return "MISSING" }

// Missing is the singleton MISSING value. Field access on a document
// that lacks the field yields Missing, never nil, so that expressions
// can distinguish absent data from explicit nulls.
var Missing any = missingType{}

// Binary wraps a non-JSON document body. The data service stores
// arbitrary blobs (the memcached heritage of the system); the query and
// index layers treat them as opaque.
type Binary []byte

// IsMissing reports whether v is the MISSING value.
func IsMissing(v any) bool {
	_, ok := v.(missingType)
	return ok
}

// KindOf classifies v into the N1QL type lattice.
func KindOf(v any) Kind {
	switch v.(type) {
	case missingType:
		return MISSING
	case nil:
		return NULL
	case bool:
		return BOOLEAN
	case float64, int, int64, uint64, json.Number:
		return NUMBER
	case string:
		return STRING
	case []any:
		return ARRAY
	case map[string]any:
		return OBJECT
	case Binary:
		return BINARY
	}
	return MISSING
}

// AsNumber coerces the numeric representations KindOf accepts into a
// float64. ok is false for non-numbers.
func AsNumber(v any) (f float64, ok bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint64:
		return float64(n), true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	}
	return 0, false
}

// Truthy reports whether v satisfies a WHERE clause. Per N1QL, only the
// boolean TRUE qualifies; MISSING, NULL, FALSE, and non-booleans do not.
func Truthy(v any) bool {
	b, ok := v.(bool)
	return ok && b
}

// Parse decodes JSON bytes into the value representation. Invalid JSON
// is returned as a Binary value (the data service accepts arbitrary
// blobs), with ok=false so callers that require JSON can reject it.
func Parse(data []byte) (v any, ok bool) {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&v); err != nil {
		return Binary(append([]byte(nil), data...)), false
	}
	// Reject trailing garbage after the first JSON value.
	if dec.More() {
		return Binary(append([]byte(nil), data...)), false
	}
	return v, true
}

// MustParse decodes JSON and panics on failure. For tests and examples.
func MustParse(data string) any {
	v, ok := Parse([]byte(data))
	if !ok {
		panic("value: invalid JSON: " + data)
	}
	return v
}

// Marshal encodes a value back to JSON bytes. MISSING inside arrays or
// objects is encoded as null (it cannot appear in stored documents, but
// expression results may contain it). Binary values are returned as-is.
func Marshal(v any) []byte {
	if b, ok := v.(Binary); ok {
		return []byte(b)
	}
	data, err := json.Marshal(scrub(v))
	if err != nil {
		return []byte("null")
	}
	return data
}

func scrub(v any) any {
	switch t := v.(type) {
	case missingType:
		return nil
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = scrub(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = scrub(e)
		}
		return out
	default:
		return v
	}
}

// Copy returns a deep copy of v. Arrays and objects are duplicated;
// scalars are returned unchanged.
func Copy(v any) any {
	switch t := v.(type) {
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = Copy(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = Copy(e)
		}
		return out
	case Binary:
		return Binary(append([]byte(nil), t...))
	default:
		return t
	}
}

// Field returns v.name, or Missing if v is not an object or lacks name.
func Field(v any, name string) any {
	obj, ok := v.(map[string]any)
	if !ok {
		return Missing
	}
	f, ok := obj[name]
	if !ok {
		return Missing
	}
	return f
}

// Index returns v[i], or Missing if v is not an array or i is out of
// range. Negative indexes count from the end, as in N1QL.
func Index(v any, i int) any {
	arr, ok := v.([]any)
	if !ok {
		return Missing
	}
	if i < 0 {
		i += len(arr)
	}
	if i < 0 || i >= len(arr) {
		return Missing
	}
	return arr[i]
}

// FieldNames returns the sorted field names of an object, or nil.
func FieldNames(v any) []string {
	obj, ok := v.(map[string]any)
	if !ok {
		return nil
	}
	names := make([]string, 0, len(obj))
	for k := range obj {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// FormatNumber renders a float64 the way JSON does: integers without a
// fractional part, everything else in shortest form.
func FormatNumber(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
