package value

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestKindOf(t *testing.T) {
	cases := []struct {
		v    any
		want Kind
	}{
		{Missing, MISSING},
		{nil, NULL},
		{true, BOOLEAN},
		{false, BOOLEAN},
		{3.14, NUMBER},
		{int(7), NUMBER},
		{int64(7), NUMBER},
		{uint64(7), NUMBER},
		{json.Number("12"), NUMBER},
		{"hi", STRING},
		{[]any{1.0}, ARRAY},
		{map[string]any{"a": 1.0}, OBJECT},
		{Binary("blob"), BINARY},
	}
	for _, c := range cases {
		if got := KindOf(c.v); got != c.want {
			t.Errorf("KindOf(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := MISSING; k <= BINARY; k++ {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", k)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestAsNumber(t *testing.T) {
	for _, v := range []any{float64(5), int(5), int64(5), uint64(5), json.Number("5")} {
		f, ok := AsNumber(v)
		if !ok || f != 5 {
			t.Errorf("AsNumber(%T %v) = %v, %v", v, v, f, ok)
		}
	}
	if _, ok := AsNumber("5"); ok {
		t.Error("AsNumber(string) should fail")
	}
	if _, ok := AsNumber(json.Number("zz")); ok {
		t.Error("AsNumber(bad json.Number) should fail")
	}
}

func TestTruthy(t *testing.T) {
	if !Truthy(true) {
		t.Error("true should be truthy")
	}
	for _, v := range []any{false, nil, Missing, 1.0, "true", []any{}, map[string]any{}} {
		if Truthy(v) {
			t.Errorf("%v should not be truthy", v)
		}
	}
}

func TestParseValidJSON(t *testing.T) {
	v, ok := Parse([]byte(`{"a": [1, null, "x"], "b": true}`))
	if !ok {
		t.Fatal("expected valid JSON")
	}
	obj := v.(map[string]any)
	arr := obj["a"].([]any)
	if arr[0] != 1.0 || arr[1] != nil || arr[2] != "x" || obj["b"] != true {
		t.Errorf("parsed wrong: %#v", v)
	}
}

func TestParseInvalidJSONBecomesBinary(t *testing.T) {
	v, ok := Parse([]byte("not json at all {"))
	if ok {
		t.Fatal("expected invalid")
	}
	if _, isBin := v.(Binary); !isBin {
		t.Fatalf("expected Binary, got %T", v)
	}
}

func TestParseTrailingGarbage(t *testing.T) {
	if _, ok := Parse([]byte(`{"a":1} trailing`)); ok {
		t.Error("trailing garbage should be rejected as JSON")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	src := `{"a":[1,2,{"b":null}],"c":"str"}`
	v := MustParse(src)
	out := Marshal(v)
	v2, ok := Parse(out)
	if !ok {
		t.Fatalf("re-parse failed: %s", out)
	}
	if Compare(v, v2) != 0 {
		t.Errorf("round trip changed value: %s -> %s", src, out)
	}
}

func TestMarshalMissingInsideBecomesNull(t *testing.T) {
	v := []any{Missing, map[string]any{"m": Missing}}
	out := Marshal(v)
	want := `[null,{"m":null}]`
	if string(out) != want {
		t.Errorf("Marshal = %s, want %s", out, want)
	}
}

func TestMarshalBinaryPassThrough(t *testing.T) {
	if got := Marshal(Binary("raw")); string(got) != "raw" {
		t.Errorf("Marshal(Binary) = %q", got)
	}
}

func TestCopyIsDeep(t *testing.T) {
	orig := map[string]any{"a": []any{1.0, 2.0}, "b": Binary("xy")}
	cp := Copy(orig).(map[string]any)
	cp["a"].([]any)[0] = 99.0
	cp["b"].(Binary)[0] = 'z'
	if orig["a"].([]any)[0] != 1.0 {
		t.Error("array not deep-copied")
	}
	if orig["b"].(Binary)[0] != 'x' {
		t.Error("binary not deep-copied")
	}
}

func TestFieldAndIndex(t *testing.T) {
	doc := MustParse(`{"name":"d","tags":["a","b","c"]}`)
	if Field(doc, "name") != "d" {
		t.Error("field access failed")
	}
	if !IsMissing(Field(doc, "nope")) {
		t.Error("absent field should be MISSING")
	}
	if !IsMissing(Field("scalar", "x")) {
		t.Error("field of scalar should be MISSING")
	}
	tags := Field(doc, "tags")
	if Index(tags, 1) != "b" {
		t.Error("index access failed")
	}
	if Index(tags, -1) != "c" {
		t.Error("negative index should count from end")
	}
	if !IsMissing(Index(tags, 5)) || !IsMissing(Index(tags, -9)) {
		t.Error("out-of-range index should be MISSING")
	}
	if !IsMissing(Index(doc, 0)) {
		t.Error("index of object should be MISSING")
	}
}

func TestFieldNames(t *testing.T) {
	doc := MustParse(`{"z":1,"a":2,"m":3}`)
	names := FieldNames(doc)
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Errorf("FieldNames = %v", names)
	}
	if FieldNames("notobj") != nil {
		t.Error("FieldNames of scalar should be nil")
	}
}

func TestFormatNumber(t *testing.T) {
	cases := map[float64]string{
		0:    "0",
		42:   "42",
		-7:   "-7",
		3.5:  "3.5",
		1e20: "1e+20",
	}
	for f, want := range cases {
		if got := FormatNumber(f); got != want {
			t.Errorf("FormatNumber(%v) = %q, want %q", f, got, want)
		}
	}
}

// TestQuickMarshalParseIdentity: Marshal∘Parse is the identity on any
// JSON value (modulo MISSING→null scrubbing, excluded by the
// generator's use inside documents).
func TestQuickMarshalParseIdentity(t *testing.T) {
	f := func(a randVal) bool {
		v := scrubMissing(a.v)
		data := Marshal(v)
		back, ok := Parse(data)
		return ok && Compare(v, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func scrubMissing(v any) any {
	switch t := v.(type) {
	case missingType:
		return nil
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = scrubMissing(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = scrubMissing(e)
		}
		return out
	default:
		return v
	}
}
