package value

import (
	"math"
	"strconv"
	"strings"
)

func float64bits(f float64) uint64 { return math.Float64bits(f) }

// A Path addresses a location inside a document: a sequence of field
// names and array indexes, e.g. "address.city" or "orders[0].total".
type Path struct {
	steps []pathStep
}

type pathStep struct {
	field string
	index int
	isIdx bool
}

// ParsePath parses a dotted path with optional [n] indexing. It accepts
// the subset used by view definitions, selective indexes, and the
// sub-document KV API. An empty string addresses the document root.
func ParsePath(s string) (Path, bool) {
	var p Path
	if s == "" {
		return p, true
	}
	rest := s
	for len(rest) > 0 {
		// Field name up to '.' or '['.
		i := strings.IndexAny(rest, ".[")
		var name string
		if i < 0 {
			name, rest = rest, ""
		} else {
			name, rest = rest[:i], rest[i:]
		}
		if name != "" {
			p.steps = append(p.steps, pathStep{field: name})
		}
		// Index steps.
		for strings.HasPrefix(rest, "[") {
			j := strings.IndexByte(rest, ']')
			if j < 0 {
				return Path{}, false
			}
			n, err := strconv.Atoi(rest[1:j])
			if err != nil {
				return Path{}, false
			}
			p.steps = append(p.steps, pathStep{index: n, isIdx: true})
			rest = rest[j+1:]
		}
		if strings.HasPrefix(rest, ".") {
			rest = rest[1:]
			if rest == "" {
				return Path{}, false
			}
		} else if rest != "" && !strings.HasPrefix(rest, "[") {
			return Path{}, false
		}
	}
	return p, true
}

// MustParsePath panics on malformed paths. For tests and fixtures.
func MustParsePath(s string) Path {
	p, ok := ParsePath(s)
	if !ok {
		panic("value: bad path: " + s)
	}
	return p
}

// String renders the path back to source form.
func (p Path) String() string {
	var b strings.Builder
	for i, st := range p.steps {
		if st.isIdx {
			b.WriteByte('[')
			b.WriteString(strconv.Itoa(st.index))
			b.WriteByte(']')
		} else {
			if i > 0 {
				b.WriteByte('.')
			}
			b.WriteString(st.field)
		}
	}
	return b.String()
}

// Len returns the number of steps in the path.
func (p Path) Len() int { return len(p.steps) }

// Eval navigates the path from root v, yielding Missing on any miss.
func (p Path) Eval(v any) any {
	for _, st := range p.steps {
		if st.isIdx {
			v = Index(v, st.index)
		} else {
			v = Field(v, st.field)
		}
		if IsMissing(v) {
			return Missing
		}
	}
	return v
}

// Set writes nv at the path inside document v (which must be an object
// for non-empty paths), creating intermediate objects as needed. It
// returns the updated document and reports whether the write applied.
// Array steps only update existing elements; they never grow arrays.
func (p Path) Set(v any, nv any) (any, bool) {
	if len(p.steps) == 0 {
		return nv, true
	}
	return setSteps(v, p.steps, nv)
}

func setSteps(v any, steps []pathStep, nv any) (any, bool) {
	st := steps[0]
	if st.isIdx {
		arr, ok := v.([]any)
		if !ok {
			return v, false
		}
		i := st.index
		if i < 0 {
			i += len(arr)
		}
		if i < 0 || i >= len(arr) {
			return v, false
		}
		if len(steps) == 1 {
			arr[i] = nv
			return arr, true
		}
		child, ok := setSteps(arr[i], steps[1:], nv)
		if !ok {
			return v, false
		}
		arr[i] = child
		return arr, true
	}
	obj, ok := v.(map[string]any)
	if !ok {
		if !IsMissing(v) && v != nil {
			return v, false
		}
		obj = map[string]any{}
	}
	if len(steps) == 1 {
		obj[st.field] = nv
		return obj, true
	}
	child, exists := obj[st.field]
	if !exists {
		child = Missing
	}
	child, ok = setSteps(child, steps[1:], nv)
	if !ok {
		return obj, false
	}
	obj[st.field] = child
	return obj, true
}

// Delete removes the field addressed by the path. It reports whether a
// field was actually removed.
func (p Path) Delete(v any) (any, bool) {
	if len(p.steps) == 0 {
		return v, false
	}
	return delSteps(v, p.steps)
}

func delSteps(v any, steps []pathStep) (any, bool) {
	st := steps[0]
	if st.isIdx {
		arr, ok := v.([]any)
		if !ok {
			return v, false
		}
		i := st.index
		if i < 0 {
			i += len(arr)
		}
		if i < 0 || i >= len(arr) {
			return v, false
		}
		if len(steps) == 1 {
			return append(arr[:i], arr[i+1:]...), true
		}
		child, ok := delSteps(arr[i], steps[1:])
		if !ok {
			return v, false
		}
		arr[i] = child
		return arr, true
	}
	obj, ok := v.(map[string]any)
	if !ok {
		return v, false
	}
	if len(steps) == 1 {
		if _, exists := obj[st.field]; !exists {
			return obj, false
		}
		delete(obj, st.field)
		return obj, true
	}
	child, exists := obj[st.field]
	if !exists {
		return obj, false
	}
	child, ok = delSteps(child, steps[1:])
	if !ok {
		return obj, false
	}
	obj[st.field] = child
	return obj, true
}
