package value

import "testing"

func TestParsePath(t *testing.T) {
	good := map[string]string{
		"":                "",
		"a":               "a",
		"a.b.c":           "a.b.c",
		"a[0]":            "a[0]",
		"a[0].b":          "a[0].b",
		"a[-1]":           "a[-1]",
		"orders[2].lines": "orders[2].lines",
		"a[0][1]":         "a[0][1]",
	}
	for src, want := range good {
		p, ok := ParsePath(src)
		if !ok {
			t.Errorf("ParsePath(%q) failed", src)
			continue
		}
		if p.String() != want {
			t.Errorf("ParsePath(%q).String() = %q, want %q", src, p.String(), want)
		}
	}
	for _, bad := range []string{"a[", "a[x]", "a.", "a[1"} {
		if _, ok := ParsePath(bad); ok {
			t.Errorf("ParsePath(%q) should fail", bad)
		}
	}
}

func TestPathEval(t *testing.T) {
	doc := MustParse(`{"a":{"b":[10,20,{"c":"deep"}]},"n":null}`)
	cases := map[string]any{
		"a.b[0]":    10.0,
		"a.b[-1].c": "deep",
		"n":         nil,
	}
	for src, want := range cases {
		got := MustParsePath(src).Eval(doc)
		if Compare(got, want) != 0 {
			t.Errorf("path %q = %v, want %v", src, got, want)
		}
	}
	for _, miss := range []string{"x", "a.x", "a.b[9]", "a.b[0].q"} {
		if !IsMissing(MustParsePath(miss).Eval(doc)) {
			t.Errorf("path %q should be MISSING", miss)
		}
	}
	// Empty path is the root.
	if Compare(MustParsePath("").Eval(doc), doc) != 0 {
		t.Error("empty path should yield root")
	}
}

func TestPathSet(t *testing.T) {
	doc := MustParse(`{"a":{"b":1},"arr":[1,2,3]}`)
	out, ok := MustParsePath("a.b").Set(doc, 42.0)
	if !ok || MustParsePath("a.b").Eval(out) != 42.0 {
		t.Error("set existing field failed")
	}
	out, ok = MustParsePath("a.new.deep").Set(out, "v")
	if !ok || MustParsePath("a.new.deep").Eval(out) != "v" {
		t.Error("set should create intermediate objects")
	}
	out, ok = MustParsePath("arr[1]").Set(out, 99.0)
	if !ok || MustParsePath("arr[1]").Eval(out) != 99.0 {
		t.Error("set array element failed")
	}
	if _, ok := MustParsePath("arr[9]").Set(out, 1.0); ok {
		t.Error("set beyond array bounds should fail")
	}
	if _, ok := MustParsePath("a.b.c").Set(out, 1.0); ok {
		t.Error("set through a scalar should fail")
	}
	// Root replacement.
	root, ok := MustParsePath("").Set(doc, "whole")
	if !ok || root != "whole" {
		t.Error("empty-path set should replace root")
	}
}

func TestPathDelete(t *testing.T) {
	doc := MustParse(`{"a":{"b":1,"c":2},"arr":[1,2,3]}`)
	out, ok := MustParsePath("a.b").Delete(doc)
	if !ok || !IsMissing(MustParsePath("a.b").Eval(out)) {
		t.Error("delete field failed")
	}
	if MustParsePath("a.c").Eval(out) != 2.0 {
		t.Error("delete removed sibling")
	}
	out, ok = MustParsePath("arr[1]").Delete(out)
	if !ok {
		t.Error("delete array element failed")
	}
	if arr := MustParsePath("arr").Eval(out).([]any); len(arr) != 2 || arr[1] != 3.0 {
		t.Errorf("array after delete = %v", arr)
	}
	if _, ok := MustParsePath("zzz").Delete(out); ok {
		t.Error("delete of absent field should report false")
	}
	if _, ok := MustParsePath("").Delete(out); ok {
		t.Error("delete of root should report false")
	}
}

func TestPathLen(t *testing.T) {
	if MustParsePath("a.b[0]").Len() != 3 {
		t.Error("Len should count field and index steps")
	}
}
