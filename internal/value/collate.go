package value

// Collation implements the total order N1QL uses for ORDER BY, index
// keys, and comparison predicates:
//
//	MISSING < NULL < FALSE < TRUE < numbers < strings < arrays < objects
//
// Numbers order numerically, strings lexicographically (byte order),
// arrays element-wise then by length, objects by sorted field name then
// field value then by field count.

// Compare returns -1, 0, or +1 as a sorts before, equal to, or after b.
func Compare(a, b any) int {
	ka, kb := KindOf(a), KindOf(b)
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch ka {
	case MISSING, NULL:
		return 0
	case BOOLEAN:
		ab, bb := a.(bool), b.(bool)
		switch {
		case ab == bb:
			return 0
		case !ab:
			return -1
		default:
			return 1
		}
	case NUMBER:
		af, _ := AsNumber(a)
		bf, _ := AsNumber(b)
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	case STRING:
		as, bs := a.(string), b.(string)
		switch {
		case as < bs:
			return -1
		case as > bs:
			return 1
		default:
			return 0
		}
	case ARRAY:
		aa, ba := a.([]any), b.([]any)
		n := len(aa)
		if len(ba) < n {
			n = len(ba)
		}
		for i := 0; i < n; i++ {
			if c := Compare(aa[i], ba[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(aa) < len(ba):
			return -1
		case len(aa) > len(ba):
			return 1
		default:
			return 0
		}
	case OBJECT:
		an, bn := FieldNames(a), FieldNames(b)
		n := len(an)
		if len(bn) < n {
			n = len(bn)
		}
		for i := 0; i < n; i++ {
			if an[i] != bn[i] {
				if an[i] < bn[i] {
					return -1
				}
				return 1
			}
			ao := a.(map[string]any)[an[i]]
			bo := b.(map[string]any)[bn[i]]
			if c := Compare(ao, bo); c != 0 {
				return c
			}
		}
		switch {
		case len(an) < len(bn):
			return -1
		case len(an) > len(bn):
			return 1
		default:
			return 0
		}
	case BINARY:
		ab, bb := a.(Binary), b.(Binary)
		switch {
		case string(ab) < string(bb):
			return -1
		case string(ab) > string(bb):
			return 1
		default:
			return 0
		}
	}
	return 0
}

// Equal reports whether a and b are equal under collation. Note that
// MISSING == MISSING and NULL == NULL here; expression-level equality
// (which propagates MISSING/NULL) lives in the n1ql package.
func Equal(a, b any) bool { return Compare(a, b) == 0 }

// EncodeKey encodes a value into a byte string whose bytewise order
// matches collation order. Index engines use this for on-disk and
// in-memory key comparisons without re-parsing values.
//
// Layout: one type-tag byte, then a type-specific payload that is
// order-preserving under bytes.Compare.
func EncodeKey(v any) []byte {
	var out []byte
	return appendKey(out, v)
}

func appendKey(out []byte, v any) []byte {
	switch KindOf(v) {
	case MISSING:
		return append(out, 0x01)
	case NULL:
		return append(out, 0x02)
	case BOOLEAN:
		if v.(bool) {
			return append(out, 0x04)
		}
		return append(out, 0x03)
	case NUMBER:
		f, _ := AsNumber(v)
		return appendNumberKey(append(out, 0x05), f)
	case STRING:
		// Escape 0x00 so the terminator is unambiguous: 0x00 -> 0x00 0xFF.
		out = append(out, 0x06)
		for i := 0; i < len(v.(string)); i++ {
			c := v.(string)[i]
			out = append(out, c)
			if c == 0x00 {
				out = append(out, 0xFF)
			}
		}
		return append(out, 0x00, 0x00)
	case ARRAY:
		out = append(out, 0x07)
		for _, e := range v.([]any) {
			out = appendKey(out, e)
		}
		return append(out, 0x00)
	case OBJECT:
		out = append(out, 0x08)
		for _, name := range FieldNames(v) {
			out = appendKey(out, name)
			out = appendKey(out, v.(map[string]any)[name])
		}
		return append(out, 0x00)
	case BINARY:
		out = append(out, 0x09)
		return append(out, v.(Binary)...)
	}
	return out
}

// appendNumberKey writes an order-preserving 8-byte encoding of f:
// flip the sign bit for non-negatives, flip all bits for negatives.
func appendNumberKey(out []byte, f float64) []byte {
	bits := float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return append(out,
		byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
		byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
}
