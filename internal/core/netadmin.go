package core

import (
	"couchgo/internal/cmap"
	"couchgo/internal/vbucket"
)

// This file is the cluster's exported administration surface for the
// transport layer. A multi-process cluster is N cbserver processes,
// each running a local single-node Cluster; the transport package's
// coordinator/member logic reconciles every pushed process-level map
// against the local node through these hooks — the same promote /
// demote / drop primitives reconcileVB drives in-process, exposed one
// vBucket at a time so the reconciler can wire its replica streams
// over sockets in between.

// BucketMap returns the bucket's current cluster map — the transport
// server stamps its Rev (the epoch) on every response and ships it
// whole in fat not-my-vbucket replies.
func (c *Cluster) BucketMap(bucket string) (*cmap.Map, error) {
	b, err := c.bucket(bucket)
	if err != nil {
		return nil, err
	}
	return b.Map(), nil
}

// BucketReplicas reports the replica count the bucket was created
// with. The live map's NumReplicas clamps to nodes-1, so a 1-node
// bootstrap map says 0 even when the bucket wants replicas; a
// coordinator minting a multi-process map needs the configured value.
func (c *Cluster) BucketReplicas(bucket string) (int, error) {
	b, err := c.bucket(bucket)
	if err != nil {
		return 0, err
	}
	return b.opts.NumReplicas, nil
}

// ActiveVB returns the node's copy of a vBucket for KV dispatch. The
// copy's own state gate (requireActive) yields ErrNotMyVBucket for
// replica copies, and an absent copy reports it directly — exactly the
// signal the transport server turns into a fat not-my-vbucket frame.
func (c *Cluster) ActiveVB(node cmap.NodeID, bucket string, vbID int) (*vbucket.VBucket, error) {
	n, err := c.Node(node)
	if err != nil {
		return nil, err
	}
	return n.kvVB(bucket, vbID)
}

// NodeVB returns the node's copy of a vBucket in any state, or nil
// with no error when the node holds no copy. Replica apply loops and
// DCP ack dispatch use it.
func (c *Cluster) NodeVB(node cmap.NodeID, bucket string, vbID int) (*vbucket.VBucket, error) {
	n, err := c.Node(node)
	if err != nil {
		return nil, err
	}
	nb, err := n.bucket(bucket)
	if err != nil {
		return nil, err
	}
	return nb.vb(vbID), nil
}

// EnsureActiveVB materializes vbID as Active on the node: creating it
// fresh, or promoting a replica copy — which appends a failover-log
// takeover entry and journals "vb takeover" before consumers reattach,
// the causal chain the cluster-test asserts across processes. Any
// inbound replica stream is stopped and the durability ack set is
// pruned to the given replica names (the peer addresses that will ack
// over DCP).
func (c *Cluster) EnsureActiveVB(node cmap.NodeID, bucket string, vbID int, replicas []string) (*vbucket.VBucket, error) {
	n, err := c.Node(node)
	if err != nil {
		return nil, err
	}
	nb, err := n.bucket(bucket)
	if err != nil {
		return nil, err
	}
	vb, err := nb.createVB(vbID, vbucket.Active, n.diskDelay)
	if err != nil {
		return nil, err
	}
	if vb.State() != vbucket.Active {
		// promote journals the takeover itself (it knows the causal
		// moment relative to consumer reattachment).
		nb.promote(vbID)
	} else {
		nb.mu.Lock()
		nb.attachConsumersLocked(vb)
		nb.mu.Unlock()
		nb.stopReplStream(vbID)
	}
	vb.SetReplicaSet(replicas)
	return vb, nil
}

// EnsureReplicaVB materializes vbID as Replica on the node, demoting
// an active copy if the map moved the partition away.
func (c *Cluster) EnsureReplicaVB(node cmap.NodeID, bucket string, vbID int) (*vbucket.VBucket, error) {
	n, err := c.Node(node)
	if err != nil {
		return nil, err
	}
	nb, err := n.bucket(bucket)
	if err != nil {
		return nil, err
	}
	vb, err := nb.createVB(vbID, vbucket.Replica, n.diskDelay)
	if err != nil {
		return nil, err
	}
	if vb.State() == vbucket.Active {
		// Demotion: detach index consumers first.
		nb.detachConsumers(vbID)
	}
	vb.SetState(vbucket.Replica)
	return vb, nil
}

// DropVB removes the node's copy of vbID entirely (the map moved the
// partition off this process).
func (c *Cluster) DropVB(node cmap.NodeID, bucket string, vbID int) error {
	n, err := c.Node(node)
	if err != nil {
		return err
	}
	nb, err := n.bucket(bucket)
	if err != nil {
		return err
	}
	if nb.vb(vbID) != nil {
		nb.demoteAndDrop(vbID)
	}
	return nil
}

// SetVBReplStream installs (replacing and stopping any previous) the
// stop function of the inbound replica stream feeding the node's copy
// of vbID — the transport member registers its socket-backed stream
// here so promotion and drop tear it down exactly like the in-process
// path.
func (c *Cluster) SetVBReplStream(node cmap.NodeID, bucket string, vbID int, stop func()) error {
	n, err := c.Node(node)
	if err != nil {
		return err
	}
	nb, err := n.bucket(bucket)
	if err != nil {
		return err
	}
	nb.setReplStream(vbID, stop)
	return nil
}

// StopVBReplStream stops and forgets the node's inbound replica stream
// for vbID, if any.
func (c *Cluster) StopVBReplStream(node cmap.NodeID, bucket string, vbID int) error {
	n, err := c.Node(node)
	if err != nil {
		return err
	}
	nb, err := n.bucket(bucket)
	if err != nil {
		return err
	}
	nb.stopReplStream(vbID)
	return nil
}

// SetBucketMap replaces the bucket's cluster map wholesale. In a
// multi-process cluster the map is minted by the coordinator process
// and pushed to every member; the member installs it here so the local
// REST/stats surfaces and the map's Rev (the wire protocol's epoch)
// reflect the cluster-level topology rather than the local single-node
// view. It does NOT reconcile vBucket state — the transport member
// does that explicitly, wiring socket-backed replica streams.
func (c *Cluster) SetBucketMap(bucket string, m *cmap.Map) error {
	b, err := c.bucket(bucket)
	if err != nil {
		return err
	}
	b.setMap(m)
	return nil
}

// LoopbackConn returns the in-process NodeConn for one node — the
// transport server dispatches decoded frames through it so both
// transports execute the identical op path, and hybrid routers use it
// for the one node that lives in their own process.
func (c *Cluster) LoopbackConn(node cmap.NodeID, bucket string) (NodeConn, error) {
	n, err := c.Node(node)
	if err != nil {
		return nil, err
	}
	return loopbackConn{node: n, bucket: bucket}, nil
}
