package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"couchgo/internal/cache"
	"couchgo/internal/cmap"
	"couchgo/internal/executor"
	"couchgo/internal/views"
)

// newTestCluster builds an n-node cluster with every service on every
// node (the appendix's deployment topology), a small vBucket count for
// test speed, and one bucket with the given replica count.
func newTestCluster(t *testing.T, nNodes, nReplicas int) (*Cluster, *Client) {
	t.Helper()
	c, err := NewCluster(Config{
		Dir:         t.TempDir(),
		NumVBuckets: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < nNodes; i++ {
		if _, err := c.AddNode(cmap.NodeID(fmt.Sprintf("node%d", i)), cmap.AllServices); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateBucket("default", BucketOptions{NumReplicas: nReplicas}); err != nil {
		t.Fatal(err)
	}
	cl, err := c.OpenBucket("default")
	if err != nil {
		t.Fatal(err)
	}
	return c, cl
}

func TestKVAcrossNodes(t *testing.T) {
	_, cl := newTestCluster(t, 4, 1)
	// Keys spread across vBuckets and nodes; all operations route.
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("user::%04d", i)
		if _, err := cl.Set(context.Background(), key, []byte(fmt.Sprintf(`{"n": %d}`, i)), 0); err != nil {
			t.Fatalf("set %s: %v", key, err)
		}
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("user::%04d", i)
		it, err := cl.Get(context.Background(), key)
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if string(it.Value) != fmt.Sprintf(`{"n": %d}`, i) {
			t.Fatalf("value for %s: %s", key, it.Value)
		}
	}
	// Data actually spread across the 4 nodes.
	c := cl.cluster
	for _, st := range c.Stats("default") {
		if st.ActiveVBs == 0 {
			t.Errorf("node %s owns no active vbuckets", st.ID)
		}
	}
}

func TestCASAcrossCluster(t *testing.T) {
	_, cl := newTestCluster(t, 2, 0)
	it1, _ := cl.Set(context.Background(), "doc", []byte("v1"), 0)
	it2, _ := cl.Set(context.Background(), "doc", []byte("v2"), 0)
	if _, err := cl.Set(context.Background(), "doc", []byte("v3"), it1.CAS); err != cache.ErrCASMismatch {
		t.Fatalf("stale CAS: %v", err)
	}
	if _, err := cl.Set(context.Background(), "doc", []byte("v3"), it2.CAS); err != nil {
		t.Fatalf("fresh CAS: %v", err)
	}
	if err := cl.Delete(context.Background(), "missing", 0); err != cache.ErrKeyNotFound {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestReplicationAndDurability(t *testing.T) {
	c, cl := newTestCluster(t, 3, 2)
	// ReplicateTo(2): both replicas must ack; the write then exists in
	// three memories.
	it, err := cl.SetWithOptions(context.Background(), "durable", []byte(`{"ok": true}`), 0, 0, 0,
		DurabilityOptions{ReplicateTo: 2, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// PersistTo: flushed on the active.
	if _, err := cl.SetWithOptions(context.Background(), "persisted", []byte("x"), 0, 0, 0,
		DurabilityOptions{PersistTo: true, Timeout: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// Verify the replica copies carry the origin metadata.
	b, _ := c.bucket("default")
	m := b.Map()
	_, vbID := m.NodeForKey("durable")
	for _, rep := range m.Replicas(vbID) {
		node, _ := c.Node(rep)
		meta, err := node.kvVB("default", vbID)
		if err != nil {
			t.Fatal(err)
		}
		rit, err := meta.GetMeta("durable")
		if err != nil || rit.CAS != it.CAS || rit.Seqno != it.Seqno {
			t.Fatalf("replica meta on %s: %+v %v (want cas %d)", rep, rit, err, it.CAS)
		}
	}
}

func TestManualFailoverPromotesReplicas(t *testing.T) {
	c, cl := newTestCluster(t, 3, 1)
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("k%03d", i)
		if _, err := cl.SetWithOptions(context.Background(), k, []byte(`{"v": 1}`), 0, 0, 0,
			DurabilityOptions{ReplicateTo: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill one node and fail it over.
	if err := c.Kill("node1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Failover("node1"); err != nil {
		t.Fatal(err)
	}
	// Every key is still readable ("applications can continue to access
	// the data without incurring downtime").
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("k%03d", i)
		it, err := cl.Get(context.Background(), k)
		if err != nil || string(it.Value) != `{"v": 1}` {
			t.Fatalf("get %s after failover: %v", k, err)
		}
	}
	// And writable.
	if _, err := cl.Set(context.Background(), "post-failover", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	// The failed node owns nothing in the new map.
	b, _ := c.bucket("default")
	m := b.Map()
	if n := len(m.ActiveVBuckets("node1")); n != 0 {
		t.Errorf("failed node still active for %d vbuckets", n)
	}
}

func TestAutoFailoverViaHeartbeat(t *testing.T) {
	c, err := NewCluster(Config{
		Dir:               t.TempDir(),
		NumVBuckets:       8,
		HeartbeatInterval: 10 * time.Millisecond,
		FailoverTimeout:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		c.AddNode(cmap.NodeID(fmt.Sprintf("node%d", i)), cmap.AllServices)
	}
	c.CreateBucket("default", BucketOptions{NumReplicas: 1})
	cl, _ := c.OpenBucket("default")
	for i := 0; i < 30; i++ {
		if _, err := cl.SetWithOptions(context.Background(), fmt.Sprintf("k%d", i), []byte("v"), 0, 0, 0,
			DurabilityOptions{ReplicateTo: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Orchestrator() != "node0" {
		t.Fatalf("orchestrator = %s", c.Orchestrator())
	}
	// Crash the orchestrator itself: a new one takes over and the node
	// is failed over automatically.
	c.Kill("node0")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if c.Orchestrator() == "node1" {
			b, _ := c.bucket("default")
			if len(b.Map().ActiveVBuckets("node0")) == 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-failover did not complete")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 30; i++ {
		if _, err := cl.Get(context.Background(), fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("get after auto-failover: %v", err)
		}
	}
}

func TestRebalanceScaleOut(t *testing.T) {
	c, cl := newTestCluster(t, 2, 1)
	for i := 0; i < 80; i++ {
		if _, err := cl.Set(context.Background(), fmt.Sprintf("doc%03d", i), []byte(fmt.Sprintf(`{"i": %d}`, i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Scale out: add a node and rebalance.
	if _, err := c.AddNode("node2", cmap.AllServices); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	// The new node owns a fair share.
	b, _ := c.bucket("default")
	m := b.Map()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := len(m.ActiveVBuckets("node2")); n < 4 {
		t.Errorf("new node owns only %d vbuckets", n)
	}
	// All data survived the moves.
	for i := 0; i < 80; i++ {
		k := fmt.Sprintf("doc%03d", i)
		it, err := cl.Get(context.Background(), k)
		if err != nil || string(it.Value) != fmt.Sprintf(`{"i": %d}`, i) {
			t.Fatalf("get %s after rebalance: %v", k, err)
		}
	}
	// Writes continue.
	if _, err := cl.Set(context.Background(), "after-rebalance", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceScaleIn(t *testing.T) {
	c, cl := newTestCluster(t, 3, 1)
	for i := 0; i < 50; i++ {
		// ReplicateTo(1): without it, mutations still in flight to the
		// replica die with the killed node — the paper's explicit
		// durability tradeoff (§2.3.2).
		if _, err := cl.SetWithOptions(context.Background(), fmt.Sprintf("doc%02d", i), []byte("v"), 0, 0, 0,
			DurabilityOptions{ReplicateTo: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Graceful removal: fail the node over, then rebalance the rest.
	c.Kill("node2")
	c.Failover("node2")
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	b, _ := c.bucket("default")
	m := b.Map()
	for vb := 0; vb < m.NumVBuckets; vb++ {
		if m.Active(vb) == "node2" {
			t.Fatalf("vb %d still active on removed node", vb)
		}
		if len(m.Replicas(vb)) != 1 {
			t.Fatalf("vb %d replica count %d after rebalance", vb, len(m.Replicas(vb)))
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := cl.Get(context.Background(), fmt.Sprintf("doc%02d", i)); err != nil {
			t.Fatalf("get after scale-in: %v", err)
		}
	}
}

func TestWritesDuringRebalance(t *testing.T) {
	c, cl := newTestCluster(t, 2, 0)
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		defer close(errs)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("live%04d", i)
			if _, err := cl.Set(context.Background(), key, []byte("v"), 0); err != nil {
				errs <- fmt.Errorf("set %s: %w", key, err)
				return
			}
			i++
		}
	}()
	c.AddNode("node2", cmap.AllServices)
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err, ok := <-errs; ok && err != nil {
		t.Fatalf("writer failed during rebalance: %v", err)
	}
}

func TestViewsClusterScatterGather(t *testing.T) {
	c, cl := newTestCluster(t, 3, 0)
	if err := c.DefineView("default", views.Definition{
		Name:   "byCity",
		Map:    views.MapSpec{Key: "doc.city", Value: "doc.name"},
		Reduce: "_count",
	}); err != nil {
		t.Fatal(err)
	}
	cities := []string{"SF", "NY", "SF", "LA", "SF", "NY", "SF"}
	for i, city := range cities {
		cl.Set(context.Background(), fmt.Sprintf("u%02d", i), []byte(fmt.Sprintf(`{"city": %q, "name": "user%d"}`, city, i)), 0)
	}
	// stale=false sees everything across all nodes.
	rows, err := c.QueryView(context.Background(), "default", "byCity", views.QueryOptions{Stale: views.StaleFalse})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Results merged in key order.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Key.(string) > rows[i].Key.(string) {
			t.Fatal("merge order broken")
		}
	}
	// Reduced count across nodes.
	rows, _ = c.QueryView(context.Background(), "default", "byCity", views.QueryOptions{Stale: views.StaleFalse, Reduce: true})
	if rows[0].Value != 7.0 {
		t.Fatalf("reduce: %+v", rows)
	}
	// Grouped.
	rows, _ = c.QueryView(context.Background(), "default", "byCity", views.QueryOptions{Stale: views.StaleFalse, Reduce: true, Group: true})
	counts := map[string]float64{}
	for _, r := range rows {
		counts[r.Key.(string)] = r.Value.(float64)
	}
	if counts["SF"] != 4 || counts["NY"] != 2 || counts["LA"] != 1 {
		t.Fatalf("grouped: %v", counts)
	}
	// Key lookup with limit.
	rows, _ = c.QueryView(context.Background(), "default", "byCity", views.QueryOptions{Stale: views.StaleFalse, Key: "SF", HasKey: true, Limit: 2})
	if len(rows) != 2 {
		t.Fatalf("limited: %+v", rows)
	}
}

func TestN1QLOnCluster(t *testing.T) {
	c, cl := newTestCluster(t, 2, 0)
	for i := 0; i < 20; i++ {
		cl.Set(context.Background(), fmt.Sprintf("profile::%02d", i),
			[]byte(fmt.Sprintf(`{"name": "user%02d", "age": %d, "city": "%s"}`, i, 20+i, []string{"SF", "NY"}[i%2])), 0)
	}
	// DDL through N1QL.
	if _, err := c.Query("CREATE PRIMARY INDEX ON `default`", executor.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("CREATE INDEX byAge ON `default`(age)", executor.Options{}); err != nil {
		t.Fatal(err)
	}
	// request_plus SELECT sees all writes.
	res, err := c.Query("SELECT name FROM `default` WHERE age >= 30 ORDER BY age LIMIT 5",
		executor.Options{Consistency: executor.RequestPlus})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	if res.Rows[0].(map[string]any)["name"] != "user10" {
		t.Fatalf("first row: %+v", res.Rows[0])
	}
	// Aggregation across the cluster.
	res, err = c.Query("SELECT city, COUNT(*) AS n FROM `default` GROUP BY city ORDER BY city",
		executor.Options{Consistency: executor.RequestPlus})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[1].(map[string]any)["n"] != 10.0 {
		t.Fatalf("group: %+v", res.Rows)
	}
	// DML through N1QL: visible via KV.
	res, err = c.Query("UPDATE `default` SET vip = TRUE WHERE age >= 38", executor.Options{Consistency: executor.RequestPlus})
	if err != nil {
		t.Fatal(err)
	}
	if res.MutationCount != 2 {
		t.Fatalf("updated %d", res.MutationCount)
	}
	it, _ := cl.Get(context.Background(), "profile::19")
	if string(it.Value) == "" || !contains(string(it.Value), `"vip":true`) {
		t.Errorf("updated doc: %s", it.Value)
	}
	// EXPLAIN works on the cluster catalog.
	res, err = c.Query("EXPLAIN SELECT name FROM `default` WHERE age > 30", executor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Rows[0].(map[string]any)
	first := plan["operators"].([]any)[0].(map[string]any)
	if first["index"] != "byAge" {
		t.Errorf("explain chose %v", first["index"])
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestViewBackedIndexUSINGVIEW(t *testing.T) {
	c, cl := newTestCluster(t, 2, 0)
	for i := 0; i < 10; i++ {
		cl.Set(context.Background(), fmt.Sprintf("p%02d", i), []byte(fmt.Sprintf(`{"email": "e%02d@x.com"}`, i)), 0)
	}
	if _, err := c.Query("CREATE INDEX email ON `default`(email) USING VIEW", executor.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(`SELECT email FROM `+"`default`"+` WHERE email >= "e05@x.com" ORDER BY email`,
		executor.Options{Consistency: executor.RequestPlus})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("view-index rows: %+v", res.Rows)
	}
	// The plan uses the view index.
	pres, _ := c.Query("EXPLAIN SELECT email FROM `default` WHERE email >= \"e05@x.com\"", executor.Options{})
	first := pres.Rows[0].(map[string]any)["operators"].([]any)[0].(map[string]any)
	if first["using"] != "VIEW" {
		t.Errorf("plan not using VIEW: %+v", first)
	}
	// Drop it.
	if _, err := c.Query("DROP INDEX `default`.email", executor.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestMDSTopologyEnforcement(t *testing.T) {
	c, err := NewCluster(Config{Dir: t.TempDir(), NumVBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Data-only cluster: no query, no index service.
	c.AddNode("data0", cmap.ServiceSet(cmap.ServiceData))
	c.CreateBucket("default", BucketOptions{})
	cl, _ := c.OpenBucket("default")
	if _, err := cl.Set(context.Background(), "k", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT 1", executor.Options{}); err != ErrNoQueryNode {
		t.Fatalf("query without query node: %v", err)
	}
	// Add a query-only node: N1QL now works, but index DDL still fails.
	c.AddNode("query0", cmap.ServiceSet(cmap.ServiceQuery))
	if _, err := c.Query("SELECT RAW 1", executor.Options{}); err != nil {
		t.Fatalf("query with query node: %v", err)
	}
	if _, err := c.Query("CREATE INDEX i ON `default`(x)", executor.Options{}); err != ErrNoIndexNode {
		t.Fatalf("create index without index node: %v", err)
	}
	// Add an index node: DDL works.
	c.AddNode("index0", cmap.ServiceSet(cmap.ServiceIndex))
	if _, err := c.Query("CREATE INDEX i ON `default`(x)", executor.Options{}); err != nil {
		t.Fatalf("create index with index node: %v", err)
	}
	// The query-only node owns no vbuckets.
	b, _ := c.bucket("default")
	if len(b.Map().ActiveVBuckets("query0")) != 0 {
		t.Error("query node owns vbuckets")
	}
}

func TestFTSOnCluster(t *testing.T) {
	c, cl := newTestCluster(t, 2, 0)
	h, err := c.FTS("default")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Engine().Define(ftsIndexDef("content", "body")); err != nil {
		t.Fatal(err)
	}
	cl.Set(context.Background(), "d1", []byte(`{"body": "distributed database systems"}`), 0)
	cl.Set(context.Background(), "d2", []byte(`{"body": "key value caching"}`), 0)
	hits, err := h.Engine().SearchTerm("content", "database", ftsSearchOpts(h.ConsistencyVector()))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != "d1" {
		t.Fatalf("fts hits: %+v", hits)
	}
}

func TestGetAndLockOnCluster(t *testing.T) {
	_, cl := newTestCluster(t, 2, 0)
	cl.Set(context.Background(), "doc", []byte("v"), 0)
	locked, err := cl.GetAndLock(context.Background(), "doc", 15)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Set(context.Background(), "doc", []byte("x"), 0); err != cache.ErrLocked {
		t.Fatalf("locked write: %v", err)
	}
	if err := cl.Unlock(context.Background(), "doc", locked.CAS); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Set(context.Background(), "doc", []byte("x"), 0); err != nil {
		t.Fatalf("after unlock: %v", err)
	}
}

func TestBucketErrors(t *testing.T) {
	c, _ := newTestCluster(t, 1, 0)
	if err := c.CreateBucket("default", BucketOptions{}); err != ErrBucketExists {
		t.Errorf("dup bucket: %v", err)
	}
	if _, err := c.OpenBucket("ghost"); err != ErrNoSuchBucket {
		t.Errorf("open ghost: %v", err)
	}
	if _, err := c.AddNode("node0", cmap.AllServices); err == nil {
		t.Error("dup node should fail")
	}
	if _, err := c.Node("ghost"); err != ErrNoSuchNode {
		t.Errorf("ghost node: %v", err)
	}
}

func TestMemoryQuotaEvictsValues(t *testing.T) {
	c, err := NewCluster(Config{Dir: t.TempDir(), NumVBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.AddNode("node0", cmap.AllServices)
	// A tiny per-node quota forces the item pager to evict values.
	if err := c.CreateBucket("default", BucketOptions{MemoryQuotaBytes: 64 * 1024}); err != nil {
		t.Fatal(err)
	}
	cl, _ := c.OpenBucket("default")
	big := make([]byte, 2048)
	for i := range big {
		big[i] = 'x'
	}
	for i := 0; i < 200; i++ {
		if _, err := cl.SetWithOptions(context.Background(), fmt.Sprintf("big%03d", i), big, 0, 0, 0,
			DurabilityOptions{PersistTo: true}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the pager to bring memory under the high watermark.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var mem int64
		for _, st := range c.Stats("default") {
			mem += st.MemUsed
		}
		if mem < 64*1024 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pager never evicted: mem=%d", mem)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Every key and value remains readable (bg-fetch restores evicted
	// values from the storage engine).
	for i := 0; i < 200; i++ {
		it, err := cl.Get(context.Background(), fmt.Sprintf("big%03d", i))
		if err != nil || len(it.Value) != len(big) {
			t.Fatalf("get big%03d after eviction: %v", i, err)
		}
	}
	// Item count unchanged: only values were evicted.
	var items int64
	for _, st := range c.Stats("default") {
		items += st.Items
	}
	if items != 200 {
		t.Fatalf("items = %d", items)
	}
}

func TestAnalyticsServiceOnCluster(t *testing.T) {
	c, cl := newTestCluster(t, 2, 0)
	// Load the two-document-type analytic fixture.
	for i := 0; i < 4; i++ {
		cl.Set(context.Background(), fmt.Sprintf("customer::%d", i),
			[]byte(fmt.Sprintf(`{"type": "customer", "cid": %d}`, i)), 0)
	}
	for i := 0; i < 12; i++ {
		cl.Set(context.Background(), fmt.Sprintf("order::%d", i),
			[]byte(fmt.Sprintf(`{"type": "order", "customer": %d, "total": %d}`, i%4, i)), 0)
	}
	if err := c.EnableAnalytics("default"); err != nil {
		t.Fatal(err)
	}
	// A general (non-key) join is rejected by the N1QL query service...
	_, err := c.Query(`SELECT * FROM `+"`default`"+` o JOIN `+"`default`"+` c ON o.customer = c.cid`, executor.Options{})
	if err == nil || !contains(err.Error(), "general") {
		t.Fatalf("query service should reject general joins: %v", err)
	}
	// ...but the analytics service runs it, without touching the data
	// service.
	rows, err := c.AnalyticsQuery("default",
		`SELECT c.cid, COUNT(*) AS n FROM `+"`default`"+` o JOIN `+"`default`"+` c ON o.customer = c.cid WHERE o.type = "order" GROUP BY c.cid ORDER BY c.cid`,
		analyticsOpts(c.AnalyticsConsistencyVector("default")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].(map[string]any)["n"] != 3.0 {
		t.Fatalf("analytics join: %v", rows)
	}
}

func TestAnalyticsRequiresServiceNode(t *testing.T) {
	c, err := NewCluster(Config{Dir: t.TempDir(), NumVBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// No analytics service anywhere.
	c.AddNode("d0", cmap.ServiceSet(cmap.ServiceData|cmap.ServiceQuery|cmap.ServiceIndex))
	c.CreateBucket("default", BucketOptions{})
	if err := c.EnableAnalytics("default"); err != ErrNoAnalyticsNode {
		t.Fatalf("enable without node: %v", err)
	}
	if _, err := c.AnalyticsQuery("default", "SELECT 1", analyticsOpts(nil)); err != ErrNoAnalyticsNode {
		t.Fatalf("query without node: %v", err)
	}
	c.AddNode("a0", cmap.ServiceSet(cmap.ServiceAnalytics))
	if err := c.EnableAnalytics("default"); err != nil {
		t.Fatalf("enable with node: %v", err)
	}
}

func TestOnlineCompactionTriggersAutomatically(t *testing.T) {
	c, cl := newTestCluster(t, 1, 0)
	// Hammer one key so its vBucket file fills with stale versions. A
	// slow trickle (distinct seqno batches) prevents flusher dedup from
	// hiding the fragmentation.
	big := make([]byte, 4096)
	var last cache.Item
	for i := 0; i < 100; i++ {
		it, err := cl.SetWithOptions(context.Background(), "hot", big, 0, 0, 0, DurabilityOptions{PersistTo: true})
		if err != nil {
			t.Fatal(err)
		}
		last = it
	}
	_ = last
	// Locate the vBucket file and wait for the compactor to shrink it.
	b, _ := c.bucket("default")
	m := b.Map()
	nodeID, vbID := m.NodeForKey("hot")
	node, _ := c.Node(nodeID)
	nb, _ := node.bucket("default")
	f, err := nb.store.VB(vbID)
	if err != nil {
		t.Fatal(err)
	}
	if f.Fragmentation() < compactionThreshold {
		t.Skipf("file not fragmented enough to test (%v)", f.Fragmentation())
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.Fragmentation() > compactionThreshold {
		if time.Now().After(deadline) {
			t.Fatalf("compactor never ran: frag %v", f.Fragmentation())
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Data intact after compaction.
	it, err := cl.Get(context.Background(), "hot")
	if err != nil || len(it.Value) != len(big) {
		t.Fatalf("doc after compaction: %v", err)
	}
}

func TestExpiryPagerReapsProactively(t *testing.T) {
	c, cl := newTestCluster(t, 1, 0)
	past := time.Now().Unix() - 10
	for i := 0; i < 10; i++ {
		if _, err := cl.SetWithOptions(context.Background(), fmt.Sprintf("ttl%d", i), []byte("v"), 0, past, 0, DurabilityOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Without touching the keys, the maintenance loop tombstones them.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var items int64
		for _, st := range c.Stats("default") {
			items += st.Items
		}
		if items == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expiry pager never reaped: %d items", items)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestClusterRestartRecoversPersistedData(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Cluster, *Client) {
		c, err := NewCluster(Config{Dir: dir, NumVBuckets: 16})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := c.AddNode(cmap.NodeID(fmt.Sprintf("node%d", i)), cmap.AllServices); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.CreateBucket("default", BucketOptions{NumReplicas: 1}); err != nil {
			t.Fatal(err)
		}
		cl, _ := c.OpenBucket("default")
		return c, cl
	}
	c1, cl1 := open()
	var metas []cache.Item
	for i := 0; i < 40; i++ {
		it, err := cl1.SetWithOptions(context.Background(), fmt.Sprintf("doc%02d", i), []byte(fmt.Sprintf(`{"i": %d}`, i)),
			0, 0, 0, DurabilityOptions{PersistTo: true})
		if err != nil {
			t.Fatal(err)
		}
		metas = append(metas, it)
	}
	cl1.Delete(context.Background(), "doc00", 0)
	c1.Close()

	// Same directory, same topology: the data comes back.
	c2, cl2 := open()
	defer c2.Close()
	for i := 1; i < 40; i++ {
		it, err := cl2.Get(context.Background(), fmt.Sprintf("doc%02d", i))
		if err != nil || string(it.Value) != fmt.Sprintf(`{"i": %d}`, i) {
			t.Fatalf("doc%02d after restart: %v", i, err)
		}
		if it.CAS != metas[i].CAS {
			t.Fatalf("doc%02d CAS changed across restart: %d vs %d", i, it.CAS, metas[i].CAS)
		}
	}
	// Deletions persisted too... unless the tombstone flush raced the
	// shutdown; the delete above was not PersistTo-acknowledged, so
	// only assert the live set is a superset of what was durable.
	// New writes get CAS values beyond the recovered ones.
	it, err := cl2.Set(context.Background(), "fresh", []byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if it.CAS <= metas[39].CAS {
		t.Fatalf("CAS clock regressed after restart: %d <= %d", it.CAS, metas[39].CAS)
	}
	// Indexes built after restart see the recovered data.
	if _, err := c2.Query("CREATE PRIMARY INDEX ON `default`", executor.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := c2.Query("SELECT COUNT(*) AS n FROM `default`", executor.Options{Consistency: executor.RequestPlus})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0].(map[string]any)["n"].(float64); n < 39 {
		t.Fatalf("recovered count: %v", n)
	}
}

func TestViewsStayConsistentAcrossRebalance(t *testing.T) {
	// §4.3.3: "when a partition has migrated to a different server, the
	// documents that belong to the migrated partition should not be
	// used in the view result anymore" — and the new owner's view must
	// include them. Net effect: no lost and no duplicated view rows.
	c, cl := newTestCluster(t, 2, 0)
	if err := c.DefineView("default", views.Definition{
		Name: "byN", Map: views.MapSpec{Key: "doc.n"},
	}); err != nil {
		t.Fatal(err)
	}
	const docs = 60
	for i := 0; i < docs; i++ {
		cl.Set(context.Background(), fmt.Sprintf("d%03d", i), []byte(fmt.Sprintf(`{"n": %d}`, i)), 0)
	}
	check := func(stage string) {
		rows, err := c.QueryView(context.Background(), "default", "byN", views.QueryOptions{Stale: views.StaleFalse})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if len(rows) != docs {
			t.Fatalf("%s: %d view rows, want %d", stage, len(rows), docs)
		}
		seen := map[string]bool{}
		for _, r := range rows {
			if seen[r.ID] {
				t.Fatalf("%s: duplicate view row for %s", stage, r.ID)
			}
			seen[r.ID] = true
		}
	}
	check("before rebalance")
	c.AddNode("node2", cmap.AllServices)
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	check("after rebalance")
	// Post-rebalance mutations index on the new owners.
	cl.Set(context.Background(), "d000", []byte(`{"n": 999}`), 0)
	rows, _ := c.QueryView(context.Background(), "default", "byN", views.QueryOptions{
		Stale: views.StaleFalse, Key: 999.0, HasKey: true,
	})
	if len(rows) != 1 {
		t.Fatalf("post-rebalance update not indexed: %v", rows)
	}
}

func TestGSIStaysConsistentAcrossRebalance(t *testing.T) {
	c, cl := newTestCluster(t, 2, 0)
	if _, err := c.Query("CREATE INDEX byN ON `default`(n)", executor.Options{}); err != nil {
		t.Fatal(err)
	}
	const docs = 60
	for i := 0; i < docs; i++ {
		cl.Set(context.Background(), fmt.Sprintf("d%03d", i), []byte(fmt.Sprintf(`{"n": %d}`, i)), 0)
	}
	count := func(stage string) {
		res, err := c.Query("SELECT COUNT(*) AS c FROM `default` WHERE n >= 0",
			executor.Options{Consistency: executor.RequestPlus})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if got := res.Rows[0].(map[string]any)["c"]; got != float64(docs) {
			t.Fatalf("%s: count %v, want %d", stage, got, docs)
		}
	}
	count("before rebalance")
	c.AddNode("node2", cmap.AllServices)
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	count("after rebalance")
	// Update through the new topology; the index follows.
	cl.Set(context.Background(), "d000", []byte(`{"n": -1}`), 0)
	res, _ := c.Query("SELECT COUNT(*) AS c FROM `default` WHERE n >= 0",
		executor.Options{Consistency: executor.RequestPlus})
	if got := res.Rows[0].(map[string]any)["c"]; got != float64(docs-1) {
		t.Fatalf("post-rebalance update: count %v", got)
	}
}

func TestGSIStaysConsistentAcrossFailover(t *testing.T) {
	c, cl := newTestCluster(t, 3, 1)
	if _, err := c.Query("CREATE INDEX byN ON `default`(n)", executor.Options{}); err != nil {
		t.Fatal(err)
	}
	const docs = 45
	for i := 0; i < docs; i++ {
		if _, err := cl.SetWithOptions(context.Background(), fmt.Sprintf("d%03d", i), []byte(fmt.Sprintf(`{"n": %d}`, i)),
			0, 0, 0, DurabilityOptions{ReplicateTo: 1}); err != nil {
			t.Fatal(err)
		}
	}
	c.Kill("node2")
	if err := c.Failover("node2"); err != nil {
		t.Fatal(err)
	}
	// Wait out the promoted vBuckets' re-projection, then verify no
	// rows were lost or duplicated in the index.
	res, err := c.Query("SELECT COUNT(*) AS c FROM `default` WHERE n >= 0",
		executor.Options{Consistency: executor.RequestPlus})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0].(map[string]any)["c"]; got != float64(docs) {
		t.Fatalf("count after failover: %v, want %d", got, docs)
	}
}

func TestFullEvictionModeOnCluster(t *testing.T) {
	c, err := NewCluster(Config{Dir: t.TempDir(), NumVBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.AddNode("node0", cmap.AllServices)
	if err := c.CreateBucket("default", BucketOptions{
		MemoryQuotaBytes: 48 * 1024,
		FullEviction:     true,
	}); err != nil {
		t.Fatal(err)
	}
	cl, _ := c.OpenBucket("default")
	filler := make([]byte, 2000)
	for i := range filler {
		filler[i] = 'x'
	}
	big := []byte(fmt.Sprintf(`{"pad": "%s"}`, filler))
	for i := 0; i < 200; i++ {
		if _, err := cl.SetWithOptions(context.Background(), fmt.Sprintf("big%03d", i), big, 0, 0, 0,
			DurabilityOptions{PersistTo: true}); err != nil {
			t.Fatal(err)
		}
	}
	// The pager removes whole items: the in-memory item count drops
	// (value eviction would keep Items at 200).
	deadline := time.Now().Add(10 * time.Second)
	for {
		var items, mem int64
		for _, st := range c.Stats("default") {
			items += st.Items
			mem += st.MemUsed
		}
		if items < 200 && mem < 48*1024 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("full eviction never kicked in: items=%d mem=%d", items, mem)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Everything still readable via disk miss-fetch.
	for i := 0; i < 200; i++ {
		it, err := cl.Get(context.Background(), fmt.Sprintf("big%03d", i))
		if err != nil || len(it.Value) != len(big) {
			t.Fatalf("get big%03d after full eviction: %v", i, err)
		}
	}
	// And a request_plus query over an index sees everything, even
	// though many documents only exist on disk at index-build time.
	if _, err := c.Query("CREATE PRIMARY INDEX ON `default`", executor.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT COUNT(*) AS n FROM `default`", executor.Options{Consistency: executor.RequestPlus})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0].(map[string]any)["n"]; got != 200.0 {
		t.Fatalf("count over fully-evicted bucket: %v", got)
	}
}
