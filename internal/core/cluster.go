package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"couchgo/internal/analytics"
	"couchgo/internal/cmap"
	"couchgo/internal/dcp"
	"couchgo/internal/events"
	"couchgo/internal/feed"
	"couchgo/internal/fts"
	"couchgo/internal/gsi"
	"couchgo/internal/metrics"
	"couchgo/internal/planner"
	"couchgo/internal/vbucket"
	"couchgo/internal/views"
)

// Config tunes a cluster.
type Config struct {
	// Dir is the root directory for all node storage.
	Dir string
	// NumVBuckets defaults to cmap.NumVBuckets (1024). The paper fixes
	// this at 1024; tests and small benches may lower it.
	NumVBuckets int
	// SyncPersist fsyncs every flushed batch.
	SyncPersist bool
	// DiskDelay simulates storage device latency per flush batch.
	DiskDelay time.Duration
	// HeartbeatInterval / FailoverTimeout drive automatic failure
	// detection (§4.3.1). Zero FailoverTimeout disables auto-failover
	// (Failover can still be invoked manually).
	HeartbeatInterval time.Duration
	FailoverTimeout   time.Duration
	// SlowQueryThreshold bounds N1QL latency before a statement lands
	// in the slow-query log (default 100ms).
	SlowQueryThreshold time.Duration
	// SlowQueryLogSize caps the slow-query ring buffer (default 64).
	SlowQueryLogSize int
}

// BucketOptions configure one bucket.
type BucketOptions struct {
	// NumReplicas: "a bucket can be replicated up to 3 times".
	NumReplicas int
	// MemoryQuotaBytes is the cache quota driving eviction.
	MemoryQuotaBytes int64
	// FullEviction selects §4.3.3's full-eviction mode (keys and
	// metadata evictable too) instead of the default value eviction.
	FullEviction bool
}

// bucketState is the cluster-wide state of one bucket.
type bucketState struct {
	name string
	opts BucketOptions

	mu sync.Mutex
	cm *cmap.Map
	// gsiSvc is the bucket's index service (placed on index nodes per
	// MDS; a single logical service instance in-process).
	gsiSvc *gsi.Service
	// ftsEng is the bucket's full-text service instance.
	ftsEng *fts.Engine
	// analyticsEng is the bucket's analytics service instance (§6.2),
	// disabled until EnableAnalytics.
	analyticsEng *analytics.Engine
	// viewDefs records cluster-wide view definitions so nodes
	// provisioned later (rebalance) build them too.
	viewDefs map[string]views.Definition
	// viewIndexes is the catalog of CREATE INDEX ... USING VIEW
	// indexes, served to the planner alongside GSI metadata.
	viewIndexes map[string]planner.IndexInfo
}

func (b *bucketState) Map() *cmap.Map {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cm
}

func (b *bucketState) setMap(m *cmap.Map) {
	b.mu.Lock()
	b.cm = m
	b.mu.Unlock()
}

// Cluster is an in-process cluster of Nodes, including the cluster
// manager responsibilities of §4.3.1: membership, orchestrator
// election, failover, and rebalancing.
type Cluster struct {
	cfg Config

	mu      sync.Mutex
	nodes   map[cmap.NodeID]*Node
	buckets map[string]*bucketState
	closed  bool
	// rebalanceMu serializes topology changes.
	rebalanceMu sync.Mutex

	lastSeen map[cmap.NodeID]time.Time
	stopHB   chan struct{}
	hbDone   chan struct{}

	// slowLog retains recent statements slower than
	// cfg.SlowQueryThreshold.
	slowLog *metrics.SlowQueryLog
}

// NewCluster creates an empty cluster rooted at cfg.Dir.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.NumVBuckets <= 0 {
		cfg.NumVBuckets = cmap.NumVBuckets
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 25 * time.Millisecond
	}
	if cfg.Dir == "" {
		cfg.Dir = filepath.Join(os.TempDir(), fmt.Sprintf("couchgo-%d", time.Now().UnixNano()))
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:      cfg,
		nodes:    make(map[cmap.NodeID]*Node),
		buckets:  make(map[string]*bucketState),
		lastSeen: make(map[cmap.NodeID]time.Time),
		stopHB:   make(chan struct{}),
		hbDone:   make(chan struct{}),
		slowLog:  metrics.NewSlowQueryLog(cfg.SlowQueryThreshold, cfg.SlowQueryLogSize),
	}
	go c.heartbeatLoop()
	return c, nil
}

// AddNode joins a node with the given services to the cluster. New
// data nodes take no partitions until the next Rebalance.
func (c *Cluster) AddNode(id cmap.NodeID, services cmap.ServiceSet) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClusterClosed
	}
	if _, ok := c.nodes[id]; ok {
		return nil, fmt.Errorf("core: node %s already exists", id)
	}
	n := newNode(id, services, filepath.Join(c.cfg.Dir, string(id)))
	c.nodes[id] = n
	c.lastSeen[id] = time.Now()
	// Provision existing buckets on the new node (data service only),
	// including their recorded view definitions (views are local
	// indexes, so every data node must build them).
	for _, b := range c.buckets {
		if services.Has(cmap.ServiceData) {
			if err := n.addBucket(b.name, b.gsiSvc, b.ftsEng, b.analyticsEng, c.cfg, b.opts); err != nil {
				return nil, err
			}
			if err := defineRecordedViews(n, b); err != nil {
				return nil, err
			}
		}
	}
	e := events.New(events.Topology, events.SevInfo, "node added")
	e.Node = string(id)
	e.Fields = map[string]string{"services": services.String()}
	events.Default.Publish(e)
	return n, nil
}

// defineRecordedViews builds the bucket's recorded views on one node's
// local view engine.
func defineRecordedViews(n *Node, b *bucketState) error {
	b.mu.Lock()
	defs := make([]views.Definition, 0, len(b.viewDefs))
	for _, d := range b.viewDefs {
		defs = append(defs, d)
	}
	b.mu.Unlock()
	n.mu.Lock()
	nb := n.buckets[b.name]
	n.mu.Unlock()
	if nb == nil {
		return nil
	}
	for _, d := range defs {
		if err := nb.viewEngine.Define(d); err != nil && !errorsIsViewExists(err) {
			return err
		}
	}
	return nil
}

func errorsIsViewExists(err error) bool { return err == views.ErrViewExists }

// Node returns a cluster member.
func (c *Cluster) Node(id cmap.NodeID) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok {
		return nil, ErrNoSuchNode
	}
	return n, nil
}

// Nodes lists members in ID order.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// dataNodes returns alive nodes running the data service, sorted.
func (c *Cluster) dataNodes() []*Node {
	var out []*Node
	for _, n := range c.Nodes() {
		if n.services.Has(cmap.ServiceData) && n.Alive() {
			out = append(out, n)
		}
	}
	return out
}

// Orchestrator returns the current orchestrator: the lowest-ID alive
// node. "The nodes also elect a cluster-wide orchestrator node ... if
// the orchestrator node itself crashes, the existing nodes ... will
// elect a new orchestrator immediately." The deterministic lowest-ID
// rule is that election.
func (c *Cluster) Orchestrator() cmap.NodeID {
	for _, n := range c.Nodes() {
		if n.Alive() {
			return n.id
		}
	}
	return ""
}

// CreateBucket provisions a bucket across the current data nodes with
// a balanced vBucket map.
func (c *Cluster) CreateBucket(name string, opts BucketOptions) error {
	// Build the per-bucket engines before taking any cluster lock: the
	// index services take their own locks and must not be entered with
	// cluster state locked. A duplicate-name race loses the existence
	// check below and discards its engines unstarted.
	b := &bucketState{
		name:         name,
		opts:         opts,
		gsiSvc:       gsi.NewService(filepath.Join(c.cfg.Dir, "gsi", name)),
		ftsEng:       fts.NewEngine(),
		analyticsEng: analytics.NewEngine(name),
	}
	if err := os.MkdirAll(filepath.Join(c.cfg.Dir, "gsi", name), 0o755); err != nil {
		return err
	}
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClusterClosed
	}
	if _, ok := c.buckets[name]; ok {
		c.mu.Unlock()
		return ErrBucketExists
	}
	c.buckets[name] = b
	nodes := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.services.Has(cmap.ServiceData) && n.Alive() {
			nodes = append(nodes, n)
		}
	}
	c.mu.Unlock()

	var ids []cmap.NodeID
	for _, n := range nodes {
		if err := n.addBucket(name, b.gsiSvc, b.ftsEng, b.analyticsEng, c.cfg, opts); err != nil {
			return err
		}
		ids = append(ids, n.id)
	}
	b.setMap(cmap.BuildBalanced(1, ids, c.cfg.NumVBuckets, opts.NumReplicas))
	// Materialize every vBucket and wire replication.
	m := b.Map()
	for vb := 0; vb < m.NumVBuckets; vb++ {
		if err := c.reconcileVB(b, vb); err != nil {
			return err
		}
	}
	e := events.New(events.Topology, events.SevInfo, "bucket created")
	e.Bucket = name
	e.Fields = map[string]string{
		"replicas": fmt.Sprintf("%d", opts.NumReplicas),
		"nodes":    fmt.Sprintf("%d", len(ids)),
	}
	events.Default.Publish(e)
	return nil
}

// Bucket returns bucket state (internal and for the public API layer).
func (c *Cluster) bucket(name string) (*bucketState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.buckets[name]
	if !ok {
		return nil, ErrNoSuchBucket
	}
	return b, nil
}

// reconcileVB drives one vBucket's cluster-wide state to match the
// bucket's current map: the mapped active is Active with consumers
// attached, mapped replicas stream from the active, everyone else
// drops their copy.
func (c *Cluster) reconcileVB(b *bucketState, vbID int) error {
	m := b.Map()
	actID := m.Active(vbID)
	replicas := m.Replicas(vbID)

	actNode, err := c.Node(actID)
	if err != nil || !actNode.Alive() {
		return fmt.Errorf("core: vb %d has no live active node", vbID)
	}
	actNB, err := actNode.bucket(b.name)
	if err != nil {
		return err
	}
	actVB, err := actNB.createVB(vbID, vbucket.Active, actNode.diskDelay)
	if err != nil {
		return err
	}
	if actVB.State() != vbucket.Active {
		// promote journals the takeover itself (it knows the causal
		// moment relative to consumer reattachment).
		actNB.promote(vbID)
	} else {
		actNB.mu.Lock()
		actNB.attachConsumersLocked(actVB)
		actNB.mu.Unlock()
	}
	// Prune durability acks to the current replica set.
	names := make([]string, len(replicas))
	for i, r := range replicas {
		names[i] = string(r)
	}
	actVB.SetReplicaSet(names)

	isReplica := map[cmap.NodeID]bool{}
	for _, r := range replicas {
		isReplica[r] = true
	}
	for _, n := range c.Nodes() {
		if !n.services.Has(cmap.ServiceData) {
			continue
		}
		if n.id == actID {
			actNB.stopReplStream(vbID)
			continue
		}
		nb, err := n.bucket(b.name)
		if err != nil {
			continue // dead or unprovisioned node
		}
		if isReplica[n.id] {
			rvb, err := nb.createVB(vbID, vbucket.Replica, n.diskDelay)
			if err != nil {
				return err
			}
			if rvb.State() == vbucket.Active {
				// Demotion: detach index consumers first.
				nb.detachConsumers(vbID)
			}
			rvb.SetState(vbucket.Replica)
			c.startReplicaStream(b, vbID, actNode, n)
		} else {
			if nb.vb(vbID) != nil {
				nb.demoteAndDrop(vbID)
			}
		}
	}
	return nil
}

// startReplicaStream wires dst as a memory-to-memory DCP replica of
// src's vBucket, resuming from the replica's applied seqno. Each
// applied mutation is acknowledged back to the active for ReplicateTo
// durability waits.
func (c *Cluster) startReplicaStream(b *bucketState, vbID int, src, dst *Node) {
	srcNB, err := src.bucket(b.name)
	if err != nil {
		return
	}
	srcVB := srcNB.vb(vbID)
	dstNB, err := dst.bucket(b.name)
	if err != nil {
		return
	}
	dstVB := dstNB.vb(vbID)
	if srcVB == nil || dstVB == nil {
		return
	}
	// The replica adopts the active's failover log: if this replica is
	// later promoted, consumers that resumed on the old active's branch
	// present a (UUID, seqno) the promoted producer can validate.
	dstVB.Producer().SetFailoverLog(srcVB.Producer().FailoverLog())
	stream, err := srcVB.Producer().OpenStream("replica:"+string(dst.id), dstVB.HighSeqno())
	if err != nil {
		return
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for m := range stream.C() {
			dstVB.ApplyReplica(m)
			srcVB.AckReplica(string(dst.id), m.Seqno)
		}
	}()
	dstNB.setReplStream(vbID, func() {
		stream.Close()
		<-done
	})
}

// Failover performs hard failover of a node (§4.3.1): replicas of its
// active partitions are promoted on the surviving nodes and the
// cluster map revision is bumped so smart clients re-route.
func (c *Cluster) Failover(id cmap.NodeID) error {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	n.setAlive(false)
	e := events.New(events.Topology, events.SevWarn, "node failed over")
	e.Node = string(id)
	events.Default.Publish(e)
	c.mu.Lock()
	buckets := make([]*bucketState, 0, len(c.buckets))
	for _, b := range c.buckets {
		buckets = append(buckets, b)
	}
	c.mu.Unlock()
	for _, b := range buckets {
		old := b.Map()
		next := old.FailoverNode(id)
		b.setMap(next)
		for vb := 0; vb < next.NumVBuckets; vb++ {
			// Only vBuckets that referenced the dead node changed.
			if old.Active(vb) == id || replicaOn(old, vb, id) {
				if next.Active(vb) == "" {
					continue // all copies lost
				}
				if err := c.reconcileVB(b, vb); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func replicaOn(m *cmap.Map, vb int, id cmap.NodeID) bool {
	for _, r := range m.Replicas(vb) {
		if r == id {
			return true
		}
	}
	return false
}

// Kill simulates a node crash: the node stops serving and its DCP
// producers close, severing replication streams. Detection and
// failover then happen via the heartbeat loop (or a manual Failover).
func (c *Cluster) Kill(id cmap.NodeID) error {
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	n.setAlive(false)
	n.mu.Lock()
	nbs := make([]*nodeBucket, 0, len(n.buckets))
	for _, nb := range n.buckets {
		nbs = append(nbs, nb)
	}
	n.mu.Unlock()
	for _, nb := range nbs {
		nb.mu.Lock()
		vbs := make([]*vbucket.VBucket, 0, len(nb.vbs))
		for _, vb := range nb.vbs {
			vbs = append(vbs, vb)
		}
		nb.mu.Unlock()
		for _, vb := range vbs {
			vb.Producer().Close()
		}
	}
	e := events.New(events.Topology, events.SevWarn, "node down (simulated crash)")
	e.Node = string(id)
	events.Default.Publish(e)
	return nil
}

// Rebalance redistributes vBuckets evenly over the current alive data
// nodes (§4.3.1): new target map, per-partition movement over DCP, and
// an atomic switchover per partition.
func (c *Cluster) Rebalance() error {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	c.mu.Lock()
	buckets := make([]*bucketState, 0, len(c.buckets))
	for _, b := range c.buckets {
		buckets = append(buckets, b)
	}
	c.mu.Unlock()

	var ids []cmap.NodeID
	for _, n := range c.dataNodes() {
		ids = append(ids, n.id)
	}
	if len(ids) == 0 {
		return fmt.Errorf("core: no data nodes to rebalance onto")
	}
	e := events.New(events.Topology, events.SevInfo, "rebalance started")
	e.Fields = map[string]string{"data_nodes": fmt.Sprintf("%d", len(ids))}
	events.Default.Publish(e)
	for _, b := range buckets {
		cur := b.Map()
		target := cmap.BuildBalanced(cur.Rev+1, ids, cur.NumVBuckets, b.opts.NumReplicas)
		// Provision the bucket on any node that lacks it (fresh nodes),
		// including its recorded view definitions.
		for _, n := range c.dataNodes() {
			n.mu.Lock()
			_, has := n.buckets[b.name]
			n.mu.Unlock()
			if !has {
				if err := n.addBucket(b.name, b.gsiSvc, b.ftsEng, b.analyticsEng, c.cfg, b.opts); err != nil {
					return err
				}
				if err := defineRecordedViews(n, b); err != nil {
					return err
				}
			}
		}
		for vb := 0; vb < target.NumVBuckets; vb++ {
			if err := c.moveVB(b, vb, target.Active(vb), target.Replicas(vb)); err != nil {
				return err
			}
		}
	}
	events.Default.Publish(events.New(events.Topology, events.SevInfo, "rebalance complete"))
	return nil
}

// moveVB transitions one vBucket to its target chain: builds the new
// active via a DCP catch-up stream, performs the paper's "atomic and
// consistent switchover", then reconciles replicas.
func (c *Cluster) moveVB(b *bucketState, vbID int, tgtActive cmap.NodeID, tgtReplicas []cmap.NodeID) error {
	cur := b.Map()
	curActive := cur.Active(vbID)
	if curActive != tgtActive && curActive != "" {
		srcNode, err := c.Node(curActive)
		if err != nil {
			return err
		}
		dstNode, err := c.Node(tgtActive)
		if err != nil {
			return err
		}
		srcNB, err := srcNode.bucket(b.name)
		if err != nil {
			return err
		}
		dstNB, err := dstNode.bucket(b.name)
		if err != nil {
			return err
		}
		srcVB := srcNB.vb(vbID)
		if srcVB == nil {
			return fmt.Errorf("core: vb %d missing on %s", vbID, curActive)
		}
		// Destination builds as Pending ("rebalance marks the
		// destination partitions as being replicas until they are ready
		// to be switched to active").
		if _, err := dstNB.createVB(vbID, vbucket.Pending, dstNode.diskDelay); err != nil {
			return err
		}
		c.startReplicaStream(b, vbID, srcNode, dstNode)
		dstVB := dstNB.vb(vbID)

		// Atomic switchover: stop accepting writes on the source, let
		// the destination catch up, then flip.
		srcVB.SetState(vbucket.Dead)
		srcHigh := srcVB.HighSeqno()
		deadline := time.Now().Add(30 * time.Second)
		for dstVB.HighSeqno() < srcHigh {
			if time.Now().After(deadline) {
				return fmt.Errorf("core: vb %d takeover timed out (%d < %d)", vbID, dstVB.HighSeqno(), srcHigh)
			}
			time.Sleep(200 * time.Microsecond)
		}
		e := events.New(events.VBucket, events.SevInfo, "vb moved")
		e.Bucket = b.name
		e.VB = vbID
		e.Fields = map[string]string{"from": string(curActive), "to": string(tgtActive)}
		events.Default.Publish(e)
	}
	// Publish the new chain for this vBucket and reconcile.
	next := cur.Clone()
	next.Rev++
	// The target chain may reference nodes not yet in next.Nodes.
	next.Nodes = mergeNodeIDs(next.Nodes, append([]cmap.NodeID{tgtActive}, tgtReplicas...))
	chain := make([]int, 1+len(tgtReplicas))
	chain[0] = indexOf(next.Nodes, tgtActive)
	for i, r := range tgtReplicas {
		chain[i+1] = indexOf(next.Nodes, r)
	}
	// Preserve chain length consistency with NumReplicas.
	for len(chain) < next.NumReplicas+1 {
		chain = append(chain, -1)
	}
	if len(chain) > len(next.Chains[vbID]) {
		// Replica count grew (e.g. new nodes allow more replicas).
		next.NumReplicas = len(chain) - 1
		for vb := range next.Chains {
			for len(next.Chains[vb]) < len(chain) {
				next.Chains[vb] = append(next.Chains[vb], -1)
			}
		}
	}
	next.Chains[vbID] = chain
	b.setMap(next)
	return c.reconcileVB(b, vbID)
}

func mergeNodeIDs(base, extra []cmap.NodeID) []cmap.NodeID {
	seen := map[cmap.NodeID]bool{}
	for _, id := range base {
		seen[id] = true
	}
	for _, id := range extra {
		if id != "" && !seen[id] {
			base = append(base, id)
			seen[id] = true
		}
	}
	return base
}

func indexOf(ids []cmap.NodeID, id cmap.NodeID) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	return -1
}

// heartbeatLoop is the orchestrator's failure detector: nodes that
// miss heartbeats beyond FailoverTimeout are automatically failed over
// ("if a node in the cluster crashes ... the orchestrator notifies all
// other machines ... and promotes to active status replica partitions").
func (c *Cluster) heartbeatLoop() {
	defer close(c.hbDone)
	ticker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopHB:
			return
		case <-ticker.C:
		}
		if c.cfg.FailoverTimeout <= 0 {
			continue
		}
		now := time.Now()
		c.mu.Lock()
		type suspect struct{ id cmap.NodeID }
		var suspects []suspect
		for id, n := range c.nodes {
			if n.Alive() {
				c.lastSeen[id] = now
				continue
			}
			if now.Sub(c.lastSeen[id]) > c.cfg.FailoverTimeout {
				suspects = append(suspects, suspect{id})
			}
		}
		c.mu.Unlock()
		for _, s := range suspects {
			// Only fail over nodes still mapped somewhere.
			if c.nodeStillMapped(s.id) {
				c.Failover(s.id)
			}
		}
	}
}

func (c *Cluster) nodeStillMapped(id cmap.NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range c.buckets {
		m := b.Map()
		for vb := 0; vb < m.NumVBuckets; vb++ {
			if m.Active(vb) == id || replicaOn(m, vb, id) {
				return true
			}
		}
	}
	return false
}

// NodeMapped reports whether any bucket's map still references the
// node as an active or replica. The health watchdog uses it so a node
// check recovers to ok once failover has removed the dead node from
// every map — a failed-over node is no longer the cluster's problem.
func (c *Cluster) NodeMapped(id cmap.NodeID) bool {
	return c.nodeStillMapped(id)
}

// BucketQuota returns the bucket's cache memory quota in bytes (0 when
// the bucket is unknown or has no quota configured).
func (c *Cluster) BucketQuota(name string) int64 {
	b, err := c.bucket(name)
	if err != nil {
		return 0
	}
	return b.opts.MemoryQuotaBytes
}

// SeverReplication is a chaos-injection hook: it stops every
// intra-cluster replication stream for the bucket, so subsequent
// writes exist only on the active copies — the ingredient for
// divergent history (and DCP rollback) at failover. The chaos harness
// and failure-path tests use it; there is no production caller.
func (c *Cluster) SeverReplication(bucketName string) error {
	if _, err := c.bucket(bucketName); err != nil {
		return err
	}
	for _, n := range c.Nodes() {
		nb, err := n.bucket(bucketName)
		if err != nil {
			continue
		}
		nb.mu.Lock()
		vbs := make([]int, 0, len(nb.replStreams))
		for vb := range nb.replStreams {
			vbs = append(vbs, vb)
		}
		nb.mu.Unlock()
		for _, vb := range vbs {
			nb.stopReplStream(vb)
		}
	}
	return nil
}

// NumVBuckets returns a bucket's partition count.
func (c *Cluster) NumVBuckets(bucketName string) (int, error) {
	b, err := c.bucket(bucketName)
	if err != nil {
		return 0, err
	}
	return b.Map().NumVBuckets, nil
}

// VBProducer resolves the DCP producer of the current active copy of
// one vBucket. XDCR's topology loop uses this: it is how the
// replicator stays "cluster topology aware" — after failover or
// rebalance the next resolution lands on the new active automatically,
// and the shared feed layer reattaches (with failover-log validation)
// against it.
func (c *Cluster) VBProducer(bucketName string, vbID int) (*dcp.Producer, error) {
	b, err := c.bucket(bucketName)
	if err != nil {
		return nil, err
	}
	m := b.Map()
	nodeID := m.Active(vbID)
	if nodeID == "" {
		return nil, fmt.Errorf("core: vb %d has no active copy", vbID)
	}
	node, err := c.Node(nodeID)
	if err != nil {
		return nil, err
	}
	vb, err := node.kvVB(bucketName, vbID)
	if err != nil {
		return nil, err
	}
	return vb.Producer(), nil
}

// FeedStats aggregates the bucket's DCP feed stats across every
// consuming service: the cluster-shared GSI projector, FTS, and
// analytics feeds, plus each alive data node's local view feeds
// (annotated with the node ID).
func (c *Cluster) FeedStats(bucketName string) ([]feed.Stat, error) {
	b, err := c.bucket(bucketName)
	if err != nil {
		return nil, err
	}
	out := b.gsiSvc.FeedStats(b.name)
	out = append(out, b.ftsEng.FeedStats()...)
	out = append(out, b.analyticsEng.FeedStats()...)
	for _, n := range c.Nodes() {
		if !n.Alive() {
			continue
		}
		n.mu.Lock()
		nb := n.buckets[bucketName]
		n.mu.Unlock()
		if nb == nil {
			continue
		}
		for _, st := range nb.viewEngine.FeedStats() {
			st.Node = string(n.id)
			out = append(out, st)
		}
	}
	return out, nil
}

// Stats aggregates per-node stats for one bucket.
func (c *Cluster) Stats(bucketName string) []NodeStats {
	var out []NodeStats
	for _, n := range c.Nodes() {
		out = append(out, n.stats(bucketName))
	}
	return out
}

// HasBucket reports whether the bucket exists.
func (c *Cluster) HasBucket(name string) bool {
	_, err := c.bucket(name)
	return err == nil
}

// BucketNames lists the cluster's buckets, sorted.
func (c *Cluster) BucketNames() []string {
	c.mu.Lock()
	out := make([]string, 0, len(c.buckets))
	for name := range c.buckets {
		out = append(out, name)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// SlowQueries returns the retained slow-query log entries, most
// recent first.
func (c *Cluster) SlowQueries() []metrics.SlowQuery {
	return c.slowLog.Entries()
}

// SlowQueryThreshold reports the active slow-query cutoff.
func (c *Cluster) SlowQueryThreshold() time.Duration {
	return c.slowLog.Threshold()
}

// SlowQueryTotal counts every statement that ever crossed the
// threshold, including entries the ring has since overwritten.
func (c *Cluster) SlowQueryTotal() uint64 {
	return c.slowLog.Total()
}

// Close shuts the cluster down.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	nodes := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	buckets := make([]*bucketState, 0, len(c.buckets))
	for _, b := range c.buckets {
		buckets = append(buckets, b)
	}
	c.mu.Unlock()
	close(c.stopHB)
	<-c.hbDone
	for _, n := range nodes {
		n.mu.Lock()
		nbs := make([]*nodeBucket, 0, len(n.buckets))
		for _, nb := range n.buckets {
			nbs = append(nbs, nb)
		}
		n.buckets = make(map[string]*nodeBucket)
		n.mu.Unlock()
		for _, nb := range nbs {
			nb.close()
		}
	}
	for _, b := range buckets {
		b.gsiSvc.Close()
		b.ftsEng.Close()
		b.analyticsEng.Close()
	}
}
