package core

import (
	"context"
	"strconv"
	"time"

	"couchgo/internal/cache"
	"couchgo/internal/cmap"
	"couchgo/internal/events"
	"couchgo/internal/trace"
	"couchgo/internal/vbucket"
)

// loopbackRouter is the in-process Router: the bucket's live map and
// direct-call conns. It preserves the exact pre-transport behavior —
// the map read is always current (no epoch tracking needed) and a conn
// is a method call away.
type loopbackRouter struct {
	c      *Cluster
	bucket string
}

func (r loopbackRouter) BucketMap() (*cmap.Map, error) {
	b, err := r.c.bucket(r.bucket)
	if err != nil {
		return nil, err
	}
	return b.Map(), nil
}

func (r loopbackRouter) Conn(id cmap.NodeID) (NodeConn, error) {
	n, err := r.c.Node(id)
	if err != nil {
		return nil, err
	}
	return loopbackConn{node: n, bucket: r.bucket}, nil
}

// loopbackConn executes KV ops directly against the owning node's
// vBuckets. Durability waits run client-side here (same process, same
// semantics as always); the TCP conn ships the options in extras and
// the server performs the identical wait before acknowledging.
type loopbackConn struct {
	node   *Node
	bucket string
}

var _ NodeConn = loopbackConn{}

func (lc loopbackConn) vb(vbID int) (*vbucket.VBucket, error) {
	return lc.node.kvVB(lc.bucket, vbID)
}

func (lc loopbackConn) Get(ctx context.Context, vbID int, key string, now int64) (cache.Item, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return cache.Item{}, err
	}
	return vb.Get(ctx, key, now)
}

func (lc loopbackConn) Set(ctx context.Context, vbID int, key string, value []byte, flags uint32, expiry int64, casCheck uint64, now int64, dur DurabilityOptions) (cache.Item, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return cache.Item{}, err
	}
	it, err := vb.Set(ctx, key, value, flags, expiry, casCheck, now)
	if err != nil {
		return it, err
	}
	return it, waitDurability(ctx, vb, it.Seqno, dur)
}

func (lc loopbackConn) Add(ctx context.Context, vbID int, key string, value []byte, now int64) (cache.Item, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return cache.Item{}, err
	}
	return vb.Add(ctx, key, value, 0, 0, now)
}

func (lc loopbackConn) Replace(ctx context.Context, vbID int, key string, value []byte, casCheck uint64, now int64) (cache.Item, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return cache.Item{}, err
	}
	return vb.Replace(ctx, key, value, 0, 0, casCheck, now)
}

func (lc loopbackConn) Delete(ctx context.Context, vbID int, key string, casCheck uint64, now int64, dur DurabilityOptions) (cache.Item, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return cache.Item{}, err
	}
	it, err := vb.Delete(ctx, key, casCheck, now)
	if err != nil {
		return it, err
	}
	return it, waitDurability(ctx, vb, it.Seqno, dur)
}

func (lc loopbackConn) Touch(ctx context.Context, vbID int, key string, expiry, now int64) error {
	vb, err := lc.vb(vbID)
	if err != nil {
		return err
	}
	_, err = vb.Touch(ctx, key, expiry, now)
	return err
}

func (lc loopbackConn) GetAndLock(ctx context.Context, vbID int, key string, lockSeconds, now int64) (cache.Item, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return cache.Item{}, err
	}
	return vb.GetAndLock(ctx, key, lockSeconds, now)
}

func (lc loopbackConn) Unlock(ctx context.Context, vbID int, key string, casToken uint64, now int64) error {
	vb, err := lc.vb(vbID)
	if err != nil {
		return err
	}
	return vb.Unlock(ctx, key, casToken, now)
}

func (lc loopbackConn) Append(ctx context.Context, vbID int, key string, data []byte, casCheck uint64, now int64) (cache.Item, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return cache.Item{}, err
	}
	return vb.Append(ctx, key, data, casCheck, now)
}

func (lc loopbackConn) Prepend(ctx context.Context, vbID int, key string, data []byte, casCheck uint64, now int64) (cache.Item, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return cache.Item{}, err
	}
	return vb.Prepend(ctx, key, data, casCheck, now)
}

func (lc loopbackConn) SubdocGet(ctx context.Context, vbID int, key, path string, now int64) (any, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return nil, err
	}
	return vb.SubdocGet(ctx, key, path, now)
}

func (lc loopbackConn) SubdocSet(ctx context.Context, vbID int, key, path string, v any, casCheck uint64, now int64) (cache.Item, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return cache.Item{}, err
	}
	return vb.SubdocSet(ctx, key, path, v, casCheck, now)
}

func (lc loopbackConn) SubdocRemove(ctx context.Context, vbID int, key, path string, casCheck uint64, now int64) (cache.Item, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return cache.Item{}, err
	}
	return vb.SubdocRemove(ctx, key, path, casCheck, now)
}

func (lc loopbackConn) SubdocArrayAppend(ctx context.Context, vbID int, key, path string, v any, casCheck uint64, now int64) (cache.Item, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return cache.Item{}, err
	}
	return vb.SubdocArrayAppend(ctx, key, path, v, casCheck, now)
}

func (lc loopbackConn) SubdocCounter(ctx context.Context, vbID int, key, path string, delta float64, casCheck uint64, now int64) (float64, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return 0, err
	}
	v, _, err := vb.SubdocCounter(ctx, key, path, delta, casCheck, now)
	return v, err
}

func (lc loopbackConn) GetMeta(ctx context.Context, vbID int, key string) (cache.Item, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return cache.Item{}, err
	}
	return vb.GetMeta(key)
}

func (lc loopbackConn) XDCRApply(ctx context.Context, vbID int, key string, value []byte, deleted bool, cas, revSeqno uint64, flags uint32, expiry int64) (bool, error) {
	vb, err := lc.vb(vbID)
	if err != nil {
		return false, err
	}
	return vb.ApplyRemote(ctx, key, value, deleted, cas, revSeqno, flags, expiry)
}

// waitDurability blocks until the mutation's durability requirement
// holds. The wait gets its own span — on a slow durable write it is
// usually the whole story. Both transports end up here: the loopback
// conn calls it directly, the TCP server calls it before encoding the
// response frame.
func waitDurability(ctx context.Context, vb *vbucket.VBucket, seqno uint64, dur DurabilityOptions) error {
	if dur.ReplicateTo <= 0 && !dur.PersistTo {
		return nil
	}
	sp := trace.FromContext(ctx).Child("durability:wait")
	if sp != nil {
		sp.Annotate("replicate_to", strconv.Itoa(dur.ReplicateTo))
		sp.Annotate("persist_to", strconv.FormatBool(dur.PersistTo))
		defer sp.End()
	}
	timeout := dur.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if dur.ReplicateTo > 0 {
		if err := vb.WaitReplicas(ctx, seqno, dur.ReplicateTo, timeout); err != nil {
			sp.Error(err)
			publishDurabilityEvent(ctx, "replicate", seqno, err)
			return err
		}
	}
	if dur.PersistTo {
		if err := vb.WaitPersist(ctx, seqno, timeout); err != nil {
			sp.Error(err)
			publishDurabilityEvent(ctx, "persist", seqno, err)
			return err
		}
	}
	return nil
}

// publishDurabilityEvent journals a failed durability wait — the write
// was accepted but its replication/persistence guarantee was not met
// in time, exactly the condition an operator needs to see.
func publishDurabilityEvent(ctx context.Context, kind string, seqno uint64, err error) {
	e := events.New(events.Durability, events.SevWarn, "durability wait failed")
	e.Fields = map[string]string{
		"kind":  kind,
		"seqno": strconv.FormatUint(seqno, 10),
		"error": err.Error(),
	}
	if t := trace.TraceFromContext(ctx); t != nil {
		e.TraceID = t.ID
	}
	events.Default.Publish(e)
}
