package core

import (
	"context"
	"fmt"
	"slices"
	"testing"
	"time"

	"couchgo/internal/executor"
	"couchgo/internal/trace"
)

// withTracing enables 1-in-1 sampling on the process tracer for one
// test and restores the disabled state (with retention cleared) after.
func withTracing(t *testing.T) {
	t.Helper()
	trace.Default.SetRate(1)
	t.Cleanup(func() {
		trace.Default.SetRate(0)
		trace.Default.Clear()
	})
}

// traceNames polls until the trace's span set satisfies pred — async
// hops (flusher commit, feed apply) land after the client call returns.
func traceNames(t *testing.T, tc *trace.Trace, pred func([]string) bool) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var names []string
	for time.Now().Before(deadline) {
		names = tc.Names()
		if pred(names) {
			return names
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("trace never satisfied predicate; spans = %v", names)
	return nil
}

// TestWriteTraceSpansAllLayers is the acceptance path of the tracing
// work: one sampled client write must produce a single trace whose
// spans cross every layer — client routing, cache, storage commit,
// the DCP replica hop, and the index-service feed apply.
func TestWriteTraceSpansAllLayers(t *testing.T) {
	c, cl := newTestCluster(t, 2, 1)
	if _, err := c.Query("CREATE INDEX byN ON `default`(n)", executor.Options{}); err != nil {
		t.Fatal(err)
	}
	withTracing(t)

	ctx, sp := trace.Default.Start(context.Background(), "test:write")
	if sp == nil {
		t.Fatal("rate 1 did not sample")
	}
	if _, err := cl.SetWithOptions(ctx, "traced", []byte(`{"n": 7}`), 0, 0, 0,
		DurabilityOptions{ReplicateTo: 1, PersistTo: true}); err != nil {
		t.Fatal(err)
	}
	sp.End()

	tc := sp.Trace()
	names := traceNames(t, tc, func(ns []string) bool {
		return slices.Contains(ns, "storage:commit") && slices.Contains(ns, "feed:apply")
	})
	for _, want := range []string{
		"kv:set", "route", "cache:set", "durability:wait",
		"replica:apply", "storage:commit", "feed:apply",
	} {
		if !slices.Contains(names, want) {
			t.Errorf("trace %d missing span %q; have %v", tc.ID, want, names)
		}
	}
	// The whole journey shares one trace ID: the retained trace found
	// by ID is the same object the client write populated.
	if got := trace.Default.Get(tc.ID); got != tc {
		t.Fatalf("Get(%d) did not resolve the write's trace", tc.ID)
	}
}

// TestQueryTraceUnifiesProfileAndSpans checks that a traced N1QL
// statement records its per-operator phases as spans on the same
// trace that profiling reports, with the chosen access path annotated.
func TestQueryTraceUnifiesProfileAndSpans(t *testing.T) {
	c, cl := newTestCluster(t, 2, 1)
	if _, err := c.Query("CREATE INDEX byN ON `default`(n)", executor.Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := cl.Set(context.Background(), fmt.Sprintf("q%02d", i), []byte(fmt.Sprintf(`{"n": %d}`, i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	withTracing(t)

	prof := executor.NewProfile()
	// SELECT * defeats the covering-scan optimization, so the plan
	// includes a document fetch and the scan annotation is the plain
	// index scan.
	res, err := c.Query("SELECT * FROM `default` WHERE n >= 3",
		executor.Options{Consistency: executor.RequestPlus, Prof: prof})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}

	tc := trace.Default.Slowest("query")
	if tc == nil {
		t.Fatal("no query trace retained")
	}
	names := tc.Names()
	for _, want := range []string{"query", "query:parse", "query:plan", "query:scan", "query:fetch", "query:project"} {
		if !slices.Contains(names, want) {
			t.Errorf("query trace missing span %q; have %v", want, names)
		}
	}
	// Every profiled phase must appear as a query:<op> span — the two
	// views of execution cannot drift.
	for _, ph := range prof.Timings() {
		if !slices.Contains(names, "query:"+ph.Operator) {
			t.Errorf("profiled phase %q absent from trace spans %v", ph.Operator, names)
		}
	}
	var scanAnnotated bool
	for _, a := range tc.Tree().Annotations {
		if a.Key == "scan" {
			scanAnnotated = true
			if a.Value != "IndexScan(byN)" {
				t.Errorf("scan annotation = %q, want IndexScan(byN)", a.Value)
			}
		}
	}
	if !scanAnnotated {
		t.Error("plan's access path not annotated on the query span")
	}
}

// TestTracePropagatesThroughRollback drives the failover/rollback
// protocol with tracing on and asserts the consumer's rollback span
// lands on the trace of an originating client mutation: the write
// whose index application is being un-applied points at the rollback
// that un-applied it.
func TestTracePropagatesThroughRollback(t *testing.T) {
	c, cl := newTestCluster(t, 2, 1)
	if _, err := c.Query("CREATE INDEX byN ON `default`(n)", executor.Options{}); err != nil {
		t.Fatal(err)
	}
	count := func(stage string) int {
		t.Helper()
		res, err := c.Query("SELECT COUNT(*) AS c FROM `default` WHERE n >= 0",
			executor.Options{Consistency: executor.RequestPlus})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		return int(res.Rows[0].(map[string]any)["c"].(float64))
	}

	const base = 10
	for i := 0; i < base; i++ {
		if _, err := cl.SetWithOptions(context.Background(), fmt.Sprintf("d%03d", i), []byte(fmt.Sprintf(`{"n": %d}`, i)),
			0, 0, 0, DurabilityOptions{ReplicateTo: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := count("baseline"); got != base {
		t.Fatalf("baseline count = %d, want %d", got, base)
	}

	withTracing(t)

	// Divergent, traced writes: these exist only on the actives and in
	// the index. At least one must die with node0 for the failover to
	// force a rollback.
	severReplication(t, c, "default")
	b, _ := c.bucket("default")
	oldMap := b.Map()
	sawNode0 := false
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("x%03d", i)
		if _, err := cl.Set(context.Background(), k, []byte(`{"n": 100}`), 0); err != nil {
			t.Fatal(err)
		}
		if nodeID, _ := oldMap.NodeForKey(k); nodeID == "node0" {
			sawNode0 = true
		}
	}
	if !sawNode0 {
		t.Fatal("test premise: no divergent write landed on node0")
	}
	count("pre-failover") // let the index consume the divergent writes

	if err := c.Kill("node0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Failover("node0"); err != nil {
		t.Fatal(err)
	}
	count("post-failover") // forces feed reattach + rollback to complete

	// The rollback span attaches to the trace of the last mutation the
	// consumer applied — a kv:set trace from the divergent burst.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var found *trace.Trace
		for _, sum := range trace.Default.Traces() {
			tc := trace.Default.Get(sum.ID)
			if tc == nil {
				continue
			}
			names := tc.Names()
			if slices.Contains(names, "feed:rollback") {
				found = tc
				if !slices.Contains(names, "kv:set") {
					t.Fatalf("rollback span on a non-write trace: %v", names)
				}
				break
			}
		}
		if found != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no retained trace gained a feed:rollback span after failover")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
