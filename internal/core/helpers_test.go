package core

import (
	"couchgo/internal/analytics"
	"couchgo/internal/fts"
)

func ftsIndexDef(name string, fields ...string) fts.IndexDef {
	return fts.IndexDef{Name: name, Fields: fields}
}

func ftsSearchOpts(wait map[int]uint64) fts.SearchOptions {
	return fts.SearchOptions{WaitSeqnos: wait}
}

func analyticsOpts(wait map[int]uint64) analytics.QueryOptions {
	return analytics.QueryOptions{WaitSeqnos: wait}
}
