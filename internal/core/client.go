package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"strconv"
	"time"

	"couchgo/internal/cache"
	"couchgo/internal/events"
	"couchgo/internal/trace"
	"couchgo/internal/vbucket"
)

// Client is the smart client of §4.1/Figure 5: it caches the cluster
// map, hashes each document ID with CRC32 to its vBucket, and talks
// directly to the node owning that partition. On a stale map
// (not-my-vbucket) it refreshes and retries.
//
// Client methods are the KV tracing roots: each op makes the sampling
// decision (or joins the caller's span) and every routing attempt gets
// its own child span with node/vBucket/backoff annotations.
type Client struct {
	cluster *Cluster
	bucket  string
	// clock returns "now" in unix seconds; injectable for expiry tests.
	clock func() int64
}

// DurabilityOptions are the per-mutation durability knobs of §2.3.2:
// "client applications are given a choice of whether or not to wait
// for replication and/or for persistence on a per mutation basis."
type DurabilityOptions struct {
	// ReplicateTo waits until that many replicas acknowledged.
	ReplicateTo int
	// PersistTo, when true, waits for persistence on the active node.
	PersistTo bool
	// Timeout bounds the durability wait (default 10s).
	Timeout time.Duration
}

// ErrKeyNotFound mirrors the cache error at the client surface.
var ErrKeyNotFound = cache.ErrKeyNotFound

// OpenBucket returns a smart client for one bucket.
func (c *Cluster) OpenBucket(name string) (*Client, error) {
	if _, err := c.bucket(name); err != nil {
		return nil, err
	}
	return &Client{cluster: c, bucket: name, clock: func() int64 { return time.Now().Unix() }}, nil
}

// SetClock overrides the client's time source (expiry tests).
func (cl *Client) SetClock(fn func() int64) { cl.clock = fn }

// Bucket returns the bucket name.
func (cl *Client) Bucket() string { return cl.bucket }

const (
	maxRouteRetries  = 20
	routeBackoffBase = time.Millisecond
	routeBackoffCap  = 50 * time.Millisecond
)

// routeBackoff returns the sleep before retry attempt+1: exponential
// from 1ms, capped at 50ms, with ±50% jitter so clients retrying
// through the same failover don't stampede the new active in lockstep.
func routeBackoff(attempt int) time.Duration {
	d := routeBackoffBase << min(attempt, 10)
	if d > routeBackoffCap {
		d = routeBackoffCap
	}
	return d/2 + rand.N(d/2+1)
}

// startOp opens the root (or child) span for one client KV operation.
func (cl *Client) startOp(ctx context.Context, name, key string) (context.Context, *trace.Span) {
	ctx, sp := trace.Default.Start(ctx, name)
	if sp != nil {
		sp.Annotate("bucket", cl.bucket)
		sp.Annotate("key", key)
	}
	return ctx, sp
}

// route finds the active vBucket for key, retrying through map
// refreshes while rebalance or failover move the partition. Each
// attempt is its own span so a trace shows exactly which hops a
// request took and how long it backed off between them.
func (cl *Client) route(ctx context.Context, key string, op func(ctx context.Context, vb *vbucket.VBucket) error) error {
	b, err := cl.cluster.bucket(cl.bucket)
	if err != nil {
		return err
	}
	parent := trace.FromContext(ctx)
	var lastErr error
	for attempt := 0; attempt < maxRouteRetries; attempt++ {
		asp := parent.Child("route")
		if asp != nil {
			asp.Annotate("attempt", strconv.Itoa(attempt))
		}
		retry := func(err error) {
			lastErr = err
			d := routeBackoff(attempt)
			if asp != nil {
				asp.Error(err)
				asp.Annotate("backoff", d.String())
				asp.End()
			}
			time.Sleep(d)
		}
		m := b.Map()
		nodeID, vbID := m.NodeForKey(key)
		if nodeID == "" {
			err := errors.New("core: no active node for key (partition lost)")
			asp.Error(err)
			asp.End()
			return err
		}
		if asp != nil {
			asp.Annotate("node", string(nodeID))
			asp.Annotate("vb", strconv.Itoa(vbID))
		}
		node, err := cl.cluster.Node(nodeID)
		if err != nil {
			retry(err)
			continue
		}
		vb, err := node.kvVB(cl.bucket, vbID)
		if err != nil {
			retry(err)
			continue
		}
		err = op(trace.ContextWith(ctx, asp), vb)
		if errors.Is(err, vbucket.ErrNotMyVBucket) {
			// Stale map: "the cluster updates each connected client
			// library with the new cluster map" — here the client
			// re-reads it and retries.
			retry(err)
			continue
		}
		asp.Error(err)
		asp.End()
		return err
	}
	return lastErr
}

// Get retrieves a document.
func (cl *Client) Get(ctx context.Context, key string) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:get", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		it, err := vb.Get(ctx, key, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// Set writes a document. casCheck=0 skips optimistic locking.
func (cl *Client) Set(ctx context.Context, key string, value []byte, casCheck uint64) (cache.Item, error) {
	return cl.SetWithOptions(ctx, key, value, 0, 0, casCheck, DurabilityOptions{})
}

// SetWithOptions writes with flags, expiry, CAS, and durability.
func (cl *Client) SetWithOptions(ctx context.Context, key string, value []byte, flags uint32, expiry int64, casCheck uint64, dur DurabilityOptions) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:set", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		it, err := vb.Set(ctx, key, value, flags, expiry, casCheck, cl.clock())
		if err != nil {
			return err
		}
		out = it
		return cl.waitDurability(ctx, vb, it.Seqno, dur)
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// Add inserts a document that must not exist.
func (cl *Client) Add(ctx context.Context, key string, value []byte) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:add", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		it, err := vb.Add(ctx, key, value, 0, 0, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// Replace updates a document that must exist.
func (cl *Client) Replace(ctx context.Context, key string, value []byte, casCheck uint64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:replace", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		it, err := vb.Replace(ctx, key, value, 0, 0, casCheck, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// Delete removes a document.
func (cl *Client) Delete(ctx context.Context, key string, casCheck uint64) error {
	ctx, sp := cl.startOp(ctx, "kv:delete", key)
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		_, err := vb.Delete(ctx, key, casCheck, cl.clock())
		return err
	})
	sp.Error(err)
	sp.End()
	return err
}

// DeleteWithDurability removes a document and applies durability.
func (cl *Client) DeleteWithDurability(ctx context.Context, key string, casCheck uint64, dur DurabilityOptions) error {
	ctx, sp := cl.startOp(ctx, "kv:delete", key)
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		it, err := vb.Delete(ctx, key, casCheck, cl.clock())
		if err != nil {
			return err
		}
		return cl.waitDurability(ctx, vb, it.Seqno, dur)
	})
	sp.Error(err)
	sp.End()
	return err
}

// Touch updates a document's TTL.
func (cl *Client) Touch(ctx context.Context, key string, expiry int64) error {
	ctx, sp := cl.startOp(ctx, "kv:touch", key)
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		_, err := vb.Touch(ctx, key, expiry, cl.clock())
		return err
	})
	sp.Error(err)
	sp.End()
	return err
}

// GetAndLock takes the document hard lock (§3.1.1).
func (cl *Client) GetAndLock(ctx context.Context, key string, lockSeconds int64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:getandlock", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		it, err := vb.GetAndLock(ctx, key, lockSeconds, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// Unlock releases the hard lock.
func (cl *Client) Unlock(ctx context.Context, key string, casToken uint64) error {
	ctx, sp := cl.startOp(ctx, "kv:unlock", key)
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		return vb.Unlock(ctx, key, casToken, cl.clock())
	})
	sp.Error(err)
	sp.End()
	return err
}

// Append concatenates raw bytes to a document's value (memcached
// heritage: binary values, not JSON).
func (cl *Client) Append(ctx context.Context, key string, data []byte, casCheck uint64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:append", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		it, err := vb.Append(ctx, key, data, casCheck, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// Prepend concatenates raw bytes before a document's value.
func (cl *Client) Prepend(ctx context.Context, key string, data []byte, casCheck uint64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:prepend", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		it, err := vb.Prepend(ctx, key, data, casCheck, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// SubdocGet reads one path inside a document without fetching it all.
func (cl *Client) SubdocGet(ctx context.Context, key, path string) (any, error) {
	ctx, sp := cl.startOp(ctx, "kv:subdoc:get", key)
	var out any
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		v, err := vb.SubdocGet(ctx, key, path, cl.clock())
		out = v
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// SubdocSet writes one path inside a document atomically.
func (cl *Client) SubdocSet(ctx context.Context, key, path string, v any, casCheck uint64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:subdoc:set", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		it, err := vb.SubdocSet(ctx, key, path, v, casCheck, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// SubdocRemove deletes one path inside a document atomically.
func (cl *Client) SubdocRemove(ctx context.Context, key, path string, casCheck uint64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:subdoc:remove", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		it, err := vb.SubdocRemove(ctx, key, path, casCheck, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// SubdocArrayAppend appends to an array field atomically.
func (cl *Client) SubdocArrayAppend(ctx context.Context, key, path string, v any, casCheck uint64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:subdoc:arrayappend", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		it, err := vb.SubdocArrayAppend(ctx, key, path, v, casCheck, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// SubdocCounter adds delta to a numeric field atomically, returning
// the new value.
func (cl *Client) SubdocCounter(ctx context.Context, key, path string, delta float64, casCheck uint64) (float64, error) {
	ctx, sp := cl.startOp(ctx, "kv:subdoc:counter", key)
	var out float64
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		v, _, err := vb.SubdocCounter(ctx, key, path, delta, casCheck, cl.clock())
		out = v
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// GetMeta returns a document's metadata (tombstones included), used by
// XDCR and diagnostics.
func (cl *Client) GetMeta(ctx context.Context, key string) (cache.Item, error) {
	var out cache.Item
	err := cl.route(ctx, key, func(_ context.Context, vb *vbucket.VBucket) error {
		it, err := vb.GetMeta(key)
		out = it
		return err
	})
	return out, err
}

// XDCRApply installs a mutation replicated from another cluster,
// applying the §4.6.1 conflict-resolution rule on this side. It
// reports whether the incoming revision won.
func (cl *Client) XDCRApply(ctx context.Context, key string, value []byte, deleted bool, cas, revSeqno uint64, flags uint32, expiry int64) (bool, error) {
	ctx, sp := cl.startOp(ctx, "kv:xdcr", key)
	var applied bool
	err := cl.route(ctx, key, func(ctx context.Context, vb *vbucket.VBucket) error {
		a, err := vb.ApplyRemote(ctx, key, value, deleted, cas, revSeqno, flags, expiry)
		applied = a
		return err
	})
	sp.Error(err)
	sp.End()
	return applied, err
}

// waitDurability blocks until the mutation's durability requirement
// holds. The wait gets its own span — on a slow durable write it is
// usually the whole story.
func (cl *Client) waitDurability(ctx context.Context, vb *vbucket.VBucket, seqno uint64, dur DurabilityOptions) error {
	if dur.ReplicateTo <= 0 && !dur.PersistTo {
		return nil
	}
	sp := trace.FromContext(ctx).Child("durability:wait")
	if sp != nil {
		sp.Annotate("replicate_to", strconv.Itoa(dur.ReplicateTo))
		sp.Annotate("persist_to", strconv.FormatBool(dur.PersistTo))
		defer sp.End()
	}
	timeout := dur.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if dur.ReplicateTo > 0 {
		if err := vb.WaitReplicas(seqno, dur.ReplicateTo, timeout); err != nil {
			sp.Error(err)
			publishDurabilityEvent(ctx, "replicate", seqno, err)
			return err
		}
	}
	if dur.PersistTo {
		if err := vb.WaitPersist(seqno, timeout); err != nil {
			sp.Error(err)
			publishDurabilityEvent(ctx, "persist", seqno, err)
			return err
		}
	}
	return nil
}

// publishDurabilityEvent journals a failed durability wait — the write
// was accepted but its replication/persistence guarantee was not met
// in time, exactly the condition an operator needs to see.
func publishDurabilityEvent(ctx context.Context, kind string, seqno uint64, err error) {
	e := events.New(events.Durability, events.SevWarn, "durability wait failed")
	e.Fields = map[string]string{
		"kind":  kind,
		"seqno": strconv.FormatUint(seqno, 10),
		"error": err.Error(),
	}
	if t := trace.TraceFromContext(ctx); t != nil {
		e.TraceID = t.ID
	}
	events.Default.Publish(e)
}
