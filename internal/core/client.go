package core

import (
	"errors"
	"math/rand/v2"
	"time"

	"couchgo/internal/cache"
	"couchgo/internal/vbucket"
)

// Client is the smart client of §4.1/Figure 5: it caches the cluster
// map, hashes each document ID with CRC32 to its vBucket, and talks
// directly to the node owning that partition. On a stale map
// (not-my-vbucket) it refreshes and retries.
type Client struct {
	cluster *Cluster
	bucket  string
	// clock returns "now" in unix seconds; injectable for expiry tests.
	clock func() int64
}

// DurabilityOptions are the per-mutation durability knobs of §2.3.2:
// "client applications are given a choice of whether or not to wait
// for replication and/or for persistence on a per mutation basis."
type DurabilityOptions struct {
	// ReplicateTo waits until that many replicas acknowledged.
	ReplicateTo int
	// PersistTo, when true, waits for persistence on the active node.
	PersistTo bool
	// Timeout bounds the durability wait (default 10s).
	Timeout time.Duration
}

// ErrKeyNotFound mirrors the cache error at the client surface.
var ErrKeyNotFound = cache.ErrKeyNotFound

// OpenBucket returns a smart client for one bucket.
func (c *Cluster) OpenBucket(name string) (*Client, error) {
	if _, err := c.bucket(name); err != nil {
		return nil, err
	}
	return &Client{cluster: c, bucket: name, clock: func() int64 { return time.Now().Unix() }}, nil
}

// SetClock overrides the client's time source (expiry tests).
func (cl *Client) SetClock(fn func() int64) { cl.clock = fn }

// Bucket returns the bucket name.
func (cl *Client) Bucket() string { return cl.bucket }

const (
	maxRouteRetries  = 20
	routeBackoffBase = time.Millisecond
	routeBackoffCap  = 50 * time.Millisecond
)

// routeBackoff returns the sleep before retry attempt+1: exponential
// from 1ms, capped at 50ms, with ±50% jitter so clients retrying
// through the same failover don't stampede the new active in lockstep.
func routeBackoff(attempt int) time.Duration {
	d := routeBackoffBase << min(attempt, 10)
	if d > routeBackoffCap {
		d = routeBackoffCap
	}
	return d/2 + rand.N(d/2+1)
}

// route finds the active vBucket for key, retrying through map
// refreshes while rebalance or failover move the partition.
func (cl *Client) route(key string, op func(vb *vbucket.VBucket) error) error {
	b, err := cl.cluster.bucket(cl.bucket)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < maxRouteRetries; attempt++ {
		m := b.Map()
		nodeID, vbID := m.NodeForKey(key)
		if nodeID == "" {
			return errors.New("core: no active node for key (partition lost)")
		}
		node, err := cl.cluster.Node(nodeID)
		if err != nil {
			lastErr = err
			time.Sleep(routeBackoff(attempt))
			continue
		}
		vb, err := node.kvVB(cl.bucket, vbID)
		if err != nil {
			lastErr = err
			time.Sleep(routeBackoff(attempt))
			continue
		}
		err = op(vb)
		if errors.Is(err, vbucket.ErrNotMyVBucket) {
			// Stale map: "the cluster updates each connected client
			// library with the new cluster map" — here the client
			// re-reads it and retries.
			lastErr = err
			time.Sleep(routeBackoff(attempt))
			continue
		}
		return err
	}
	return lastErr
}

// Get retrieves a document.
func (cl *Client) Get(key string) (cache.Item, error) {
	var out cache.Item
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		it, err := vb.Get(key, cl.clock())
		out = it
		return err
	})
	return out, err
}

// Set writes a document. casCheck=0 skips optimistic locking.
func (cl *Client) Set(key string, value []byte, casCheck uint64) (cache.Item, error) {
	return cl.SetWithOptions(key, value, 0, 0, casCheck, DurabilityOptions{})
}

// SetWithOptions writes with flags, expiry, CAS, and durability.
func (cl *Client) SetWithOptions(key string, value []byte, flags uint32, expiry int64, casCheck uint64, dur DurabilityOptions) (cache.Item, error) {
	var out cache.Item
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		it, err := vb.Set(key, value, flags, expiry, casCheck, cl.clock())
		if err != nil {
			return err
		}
		out = it
		return cl.waitDurability(vb, it.Seqno, dur)
	})
	return out, err
}

// Add inserts a document that must not exist.
func (cl *Client) Add(key string, value []byte) (cache.Item, error) {
	var out cache.Item
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		it, err := vb.Add(key, value, 0, 0, cl.clock())
		out = it
		return err
	})
	return out, err
}

// Replace updates a document that must exist.
func (cl *Client) Replace(key string, value []byte, casCheck uint64) (cache.Item, error) {
	var out cache.Item
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		it, err := vb.Replace(key, value, 0, 0, casCheck, cl.clock())
		out = it
		return err
	})
	return out, err
}

// Delete removes a document.
func (cl *Client) Delete(key string, casCheck uint64) error {
	return cl.route(key, func(vb *vbucket.VBucket) error {
		_, err := vb.Delete(key, casCheck, cl.clock())
		return err
	})
}

// DeleteWithDurability removes a document and applies durability.
func (cl *Client) DeleteWithDurability(key string, casCheck uint64, dur DurabilityOptions) error {
	return cl.route(key, func(vb *vbucket.VBucket) error {
		it, err := vb.Delete(key, casCheck, cl.clock())
		if err != nil {
			return err
		}
		return cl.waitDurability(vb, it.Seqno, dur)
	})
}

// Touch updates a document's TTL.
func (cl *Client) Touch(key string, expiry int64) error {
	return cl.route(key, func(vb *vbucket.VBucket) error {
		_, err := vb.Touch(key, expiry, cl.clock())
		return err
	})
}

// GetAndLock takes the document hard lock (§3.1.1).
func (cl *Client) GetAndLock(key string, lockSeconds int64) (cache.Item, error) {
	var out cache.Item
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		it, err := vb.GetAndLock(key, lockSeconds, cl.clock())
		out = it
		return err
	})
	return out, err
}

// Unlock releases the hard lock.
func (cl *Client) Unlock(key string, casToken uint64) error {
	return cl.route(key, func(vb *vbucket.VBucket) error {
		return vb.Unlock(key, casToken, cl.clock())
	})
}

// Append concatenates raw bytes to a document's value (memcached
// heritage: binary values, not JSON).
func (cl *Client) Append(key string, data []byte, casCheck uint64) (cache.Item, error) {
	var out cache.Item
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		it, err := vb.Append(key, data, casCheck, cl.clock())
		out = it
		return err
	})
	return out, err
}

// Prepend concatenates raw bytes before a document's value.
func (cl *Client) Prepend(key string, data []byte, casCheck uint64) (cache.Item, error) {
	var out cache.Item
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		it, err := vb.Prepend(key, data, casCheck, cl.clock())
		out = it
		return err
	})
	return out, err
}

// SubdocGet reads one path inside a document without fetching it all.
func (cl *Client) SubdocGet(key, path string) (any, error) {
	var out any
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		v, err := vb.SubdocGet(key, path, cl.clock())
		out = v
		return err
	})
	return out, err
}

// SubdocSet writes one path inside a document atomically.
func (cl *Client) SubdocSet(key, path string, v any, casCheck uint64) (cache.Item, error) {
	var out cache.Item
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		it, err := vb.SubdocSet(key, path, v, casCheck, cl.clock())
		out = it
		return err
	})
	return out, err
}

// SubdocRemove deletes one path inside a document atomically.
func (cl *Client) SubdocRemove(key, path string, casCheck uint64) (cache.Item, error) {
	var out cache.Item
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		it, err := vb.SubdocRemove(key, path, casCheck, cl.clock())
		out = it
		return err
	})
	return out, err
}

// SubdocArrayAppend appends to an array field atomically.
func (cl *Client) SubdocArrayAppend(key, path string, v any, casCheck uint64) (cache.Item, error) {
	var out cache.Item
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		it, err := vb.SubdocArrayAppend(key, path, v, casCheck, cl.clock())
		out = it
		return err
	})
	return out, err
}

// SubdocCounter adds delta to a numeric field atomically, returning
// the new value.
func (cl *Client) SubdocCounter(key, path string, delta float64, casCheck uint64) (float64, error) {
	var out float64
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		v, _, err := vb.SubdocCounter(key, path, delta, casCheck, cl.clock())
		out = v
		return err
	})
	return out, err
}

// GetMeta returns a document's metadata (tombstones included), used by
// XDCR and diagnostics.
func (cl *Client) GetMeta(key string) (cache.Item, error) {
	var out cache.Item
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		it, err := vb.GetMeta(key)
		out = it
		return err
	})
	return out, err
}

// XDCRApply installs a mutation replicated from another cluster,
// applying the §4.6.1 conflict-resolution rule on this side. It
// reports whether the incoming revision won.
func (cl *Client) XDCRApply(key string, value []byte, deleted bool, cas, revSeqno uint64, flags uint32, expiry int64) (bool, error) {
	var applied bool
	err := cl.route(key, func(vb *vbucket.VBucket) error {
		a, err := vb.ApplyRemote(key, value, deleted, cas, revSeqno, flags, expiry)
		applied = a
		return err
	})
	return applied, err
}

func (cl *Client) waitDurability(vb *vbucket.VBucket, seqno uint64, dur DurabilityOptions) error {
	timeout := dur.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if dur.ReplicateTo > 0 {
		if err := vb.WaitReplicas(seqno, dur.ReplicateTo, timeout); err != nil {
			return err
		}
	}
	if dur.PersistTo {
		if err := vb.WaitPersist(seqno, timeout); err != nil {
			return err
		}
	}
	return nil
}
