package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"strconv"
	"time"

	"couchgo/internal/cache"
	"couchgo/internal/trace"
	"couchgo/internal/vbucket"
)

// Client is the smart client of §4.1/Figure 5: it caches the cluster
// map, hashes each document ID with CRC32 to its vBucket, and talks
// directly to the node owning that partition. On a stale map
// (not-my-vbucket) it refreshes and retries.
//
// The client is transport-agnostic: route resolves a key to a NodeConn
// through the Router seam, so the same code drives the in-process
// loopback path and real TCP connections to a multi-process cluster.
//
// Client methods are the KV tracing roots: each op makes the sampling
// decision (or joins the caller's span) and every routing attempt gets
// its own child span with node/vBucket/backoff annotations.
type Client struct {
	router Router
	bucket string
	// cluster is set for loopback clients only (in-process tests and
	// tools reach through it); nil when the client rides a transport.
	cluster *Cluster
	// clock returns "now" in unix seconds; injectable for expiry tests.
	clock func() int64
}

// DurabilityOptions are the per-mutation durability knobs of §2.3.2:
// "client applications are given a choice of whether or not to wait
// for replication and/or for persistence on a per mutation basis."
type DurabilityOptions struct {
	// ReplicateTo waits until that many replicas acknowledged.
	ReplicateTo int
	// PersistTo, when true, waits for persistence on the active node.
	PersistTo bool
	// Timeout bounds the durability wait (default 10s).
	Timeout time.Duration
}

// ErrKeyNotFound mirrors the cache error at the client surface.
var ErrKeyNotFound = cache.ErrKeyNotFound

// OpenBucket returns a smart client for one bucket over the in-process
// loopback transport.
func (c *Cluster) OpenBucket(name string) (*Client, error) {
	if _, err := c.bucket(name); err != nil {
		return nil, err
	}
	return &Client{
		router:  loopbackRouter{c: c, bucket: name},
		bucket:  name,
		cluster: c,
		clock:   func() int64 { return time.Now().Unix() },
	}, nil
}

// SetClock overrides the client's time source (expiry tests).
func (cl *Client) SetClock(fn func() int64) { cl.clock = fn }

// Bucket returns the bucket name.
func (cl *Client) Bucket() string { return cl.bucket }

const (
	maxRouteRetries  = 20
	routeBackoffBase = time.Millisecond
	routeBackoffCap  = 50 * time.Millisecond
)

// routeBackoff returns the sleep before retry attempt+1: exponential
// from 1ms, capped at 50ms, with ±50% jitter so clients retrying
// through the same failover don't stampede the new active in lockstep.
func routeBackoff(attempt int) time.Duration {
	d := routeBackoffBase << min(attempt, 10)
	if d > routeBackoffCap {
		d = routeBackoffCap
	}
	return d/2 + rand.N(d/2+1)
}

// sleepCtx waits d or until ctx is cancelled, whichever comes first —
// a retry backoff must never outlive the request it is retrying for.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryableRouteErr reports whether an op failure means "the topology
// moved under us, re-read the map and try again": a stale map
// (not-my-vbucket), a node that stopped serving, a node missing the
// bucket mid-provisioning, or a transport-level connection failure.
func retryableRouteErr(err error) bool {
	return errors.Is(err, vbucket.ErrNotMyVBucket) ||
		errors.Is(err, ErrNodeDown) ||
		errors.Is(err, ErrNoSuchBucket) ||
		errors.Is(err, ErrNodeUnreachable)
}

// startOp opens the root (or child) span for one client KV operation.
func (cl *Client) startOp(ctx context.Context, name, key string) (context.Context, *trace.Span) {
	ctx, sp := trace.Default.Start(ctx, name)
	if sp != nil {
		sp.Annotate("bucket", cl.bucket)
		sp.Annotate("key", key)
	}
	return ctx, sp
}

// route finds the node connection owning key's vBucket, retrying
// through map refreshes while rebalance or failover move the
// partition. Each attempt is its own span so a trace shows exactly
// which hops a request took and how long it backed off between them.
func (cl *Client) route(ctx context.Context, key string, op func(ctx context.Context, vbID int, nc NodeConn) error) error {
	parent := trace.FromContext(ctx)
	var lastErr error
	for attempt := 0; attempt < maxRouteRetries; attempt++ {
		asp := parent.Child("route")
		if asp != nil {
			asp.Annotate("attempt", strconv.Itoa(attempt))
		}
		retry := func(err error) error {
			lastErr = err
			d := routeBackoff(attempt)
			if asp != nil {
				asp.Error(err)
				asp.Annotate("backoff", d.String())
				asp.End()
			}
			return sleepCtx(ctx, d)
		}
		m, err := cl.router.BucketMap()
		if err != nil {
			asp.Error(err)
			asp.End()
			return err
		}
		nodeID, vbID := m.NodeForKey(key)
		if nodeID == "" {
			err := errors.New("core: no active node for key (partition lost)")
			asp.Error(err)
			asp.End()
			return err
		}
		if asp != nil {
			asp.Annotate("node", string(nodeID))
			asp.Annotate("vb", strconv.Itoa(vbID))
		}
		nc, err := cl.router.Conn(nodeID)
		if err != nil {
			if cerr := retry(err); cerr != nil {
				return cerr
			}
			continue
		}
		err = op(trace.ContextWith(ctx, asp), vbID, nc)
		if retryableRouteErr(err) {
			// Stale map: "the cluster updates each connected client
			// library with the new cluster map" — here the client
			// re-reads it and retries. (Over TCP the refreshed map rode
			// the not-my-vbucket response itself.)
			if cerr := retry(err); cerr != nil {
				return cerr
			}
			continue
		}
		asp.Error(err)
		asp.End()
		return err
	}
	return lastErr
}

// Get retrieves a document.
func (cl *Client) Get(ctx context.Context, key string) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:get", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		it, err := nc.Get(ctx, vbID, key, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// Set writes a document. casCheck=0 skips optimistic locking.
func (cl *Client) Set(ctx context.Context, key string, value []byte, casCheck uint64) (cache.Item, error) {
	return cl.SetWithOptions(ctx, key, value, 0, 0, casCheck, DurabilityOptions{})
}

// SetWithOptions writes with flags, expiry, CAS, and durability.
func (cl *Client) SetWithOptions(ctx context.Context, key string, value []byte, flags uint32, expiry int64, casCheck uint64, dur DurabilityOptions) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:set", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		it, err := nc.Set(ctx, vbID, key, value, flags, expiry, casCheck, cl.clock(), dur)
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// Add inserts a document that must not exist.
func (cl *Client) Add(ctx context.Context, key string, value []byte) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:add", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		it, err := nc.Add(ctx, vbID, key, value, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// Replace updates a document that must exist.
func (cl *Client) Replace(ctx context.Context, key string, value []byte, casCheck uint64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:replace", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		it, err := nc.Replace(ctx, vbID, key, value, casCheck, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// Delete removes a document.
func (cl *Client) Delete(ctx context.Context, key string, casCheck uint64) error {
	ctx, sp := cl.startOp(ctx, "kv:delete", key)
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		_, err := nc.Delete(ctx, vbID, key, casCheck, cl.clock(), DurabilityOptions{})
		return err
	})
	sp.Error(err)
	sp.End()
	return err
}

// DeleteWithDurability removes a document and applies durability.
func (cl *Client) DeleteWithDurability(ctx context.Context, key string, casCheck uint64, dur DurabilityOptions) error {
	ctx, sp := cl.startOp(ctx, "kv:delete", key)
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		_, err := nc.Delete(ctx, vbID, key, casCheck, cl.clock(), dur)
		return err
	})
	sp.Error(err)
	sp.End()
	return err
}

// Touch updates a document's TTL.
func (cl *Client) Touch(ctx context.Context, key string, expiry int64) error {
	ctx, sp := cl.startOp(ctx, "kv:touch", key)
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		return nc.Touch(ctx, vbID, key, expiry, cl.clock())
	})
	sp.Error(err)
	sp.End()
	return err
}

// GetAndLock takes the document hard lock (§3.1.1).
func (cl *Client) GetAndLock(ctx context.Context, key string, lockSeconds int64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:getandlock", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		it, err := nc.GetAndLock(ctx, vbID, key, lockSeconds, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// Unlock releases the hard lock.
func (cl *Client) Unlock(ctx context.Context, key string, casToken uint64) error {
	ctx, sp := cl.startOp(ctx, "kv:unlock", key)
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		return nc.Unlock(ctx, vbID, key, casToken, cl.clock())
	})
	sp.Error(err)
	sp.End()
	return err
}

// Append concatenates raw bytes to a document's value (memcached
// heritage: binary values, not JSON).
func (cl *Client) Append(ctx context.Context, key string, data []byte, casCheck uint64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:append", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		it, err := nc.Append(ctx, vbID, key, data, casCheck, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// Prepend concatenates raw bytes before a document's value.
func (cl *Client) Prepend(ctx context.Context, key string, data []byte, casCheck uint64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:prepend", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		it, err := nc.Prepend(ctx, vbID, key, data, casCheck, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// SubdocGet reads one path inside a document without fetching it all.
func (cl *Client) SubdocGet(ctx context.Context, key, path string) (any, error) {
	ctx, sp := cl.startOp(ctx, "kv:subdoc:get", key)
	var out any
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		v, err := nc.SubdocGet(ctx, vbID, key, path, cl.clock())
		out = v
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// SubdocSet writes one path inside a document atomically.
func (cl *Client) SubdocSet(ctx context.Context, key, path string, v any, casCheck uint64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:subdoc:set", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		it, err := nc.SubdocSet(ctx, vbID, key, path, v, casCheck, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// SubdocRemove deletes one path inside a document atomically.
func (cl *Client) SubdocRemove(ctx context.Context, key, path string, casCheck uint64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:subdoc:remove", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		it, err := nc.SubdocRemove(ctx, vbID, key, path, casCheck, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// SubdocArrayAppend appends to an array field atomically.
func (cl *Client) SubdocArrayAppend(ctx context.Context, key, path string, v any, casCheck uint64) (cache.Item, error) {
	ctx, sp := cl.startOp(ctx, "kv:subdoc:arrayappend", key)
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		it, err := nc.SubdocArrayAppend(ctx, vbID, key, path, v, casCheck, cl.clock())
		out = it
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// SubdocCounter adds delta to a numeric field atomically, returning
// the new value.
func (cl *Client) SubdocCounter(ctx context.Context, key, path string, delta float64, casCheck uint64) (float64, error) {
	ctx, sp := cl.startOp(ctx, "kv:subdoc:counter", key)
	var out float64
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		v, err := nc.SubdocCounter(ctx, vbID, key, path, delta, casCheck, cl.clock())
		out = v
		return err
	})
	sp.Error(err)
	sp.End()
	return out, err
}

// GetMeta returns a document's metadata (tombstones included), used by
// XDCR and diagnostics.
func (cl *Client) GetMeta(ctx context.Context, key string) (cache.Item, error) {
	var out cache.Item
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		it, err := nc.GetMeta(ctx, vbID, key)
		out = it
		return err
	})
	return out, err
}

// XDCRApply installs a mutation replicated from another cluster,
// applying the §4.6.1 conflict-resolution rule on this side. It
// reports whether the incoming revision won.
func (cl *Client) XDCRApply(ctx context.Context, key string, value []byte, deleted bool, cas, revSeqno uint64, flags uint32, expiry int64) (bool, error) {
	ctx, sp := cl.startOp(ctx, "kv:xdcr", key)
	var applied bool
	err := cl.route(ctx, key, func(ctx context.Context, vbID int, nc NodeConn) error {
		a, err := nc.XDCRApply(ctx, vbID, key, value, deleted, cas, revSeqno, flags, expiry)
		applied = a
		return err
	})
	sp.Error(err)
	sp.End()
	return applied, err
}
