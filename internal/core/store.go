package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"couchgo/internal/analytics"
	"couchgo/internal/cache"
	"couchgo/internal/cmap"
	"couchgo/internal/events"
	"couchgo/internal/executor"
	"couchgo/internal/fts"
	"couchgo/internal/gsi"
	"couchgo/internal/metrics"
	"couchgo/internal/n1ql"
	"couchgo/internal/planner"
	"couchgo/internal/query"
	"couchgo/internal/trace"
	"couchgo/internal/value"
	"couchgo/internal/views"
)

// ErrNoQueryNode is returned when no node runs the query service.
var ErrNoQueryNode = errors.New("core: no node runs the query service")

// ErrNoIndexNode is returned when index DDL arrives with no index node.
var ErrNoIndexNode = errors.New("core: no node runs the index service")

// clusterStore implements query.Store over the whole cluster: document
// fetches route through the data service, index scans hit the GSI
// service or scatter/gather over per-node view engines, DML routes by
// key. It is the bridge between the query service and everything else
// (§4.5.1).
type clusterStore struct {
	c *Cluster
}

// Query-service metrics: end-to-end statement latency plus how many
// statements ever crossed the slow threshold.
var (
	mQueryDuration = metrics.Default.Histogram("couchgo_query_duration_seconds")
	mSlowQueries   = metrics.Default.Counter("couchgo_query_slow_total")
)

// Query executes a N1QL statement on the cluster. The statement is
// served by the query service; ErrNoQueryNode enforces the MDS
// topology (a cluster without query nodes cannot run N1QL).
func (c *Cluster) Query(statement string, opts executor.Options) (*query.Result, error) {
	if !c.hasService(cmap.ServiceQuery) {
		return nil, ErrNoQueryNode
	}
	ctx, sp := trace.Default.Start(opts.Context(), "query")
	if sp != nil {
		sp.Annotate("statement", statement)
	}
	opts.Ctx = ctx
	t0 := time.Now()
	eng := query.NewEngine(&clusterStore{c: c})
	res, err := eng.Execute(statement, opts)
	elapsed := time.Since(t0)
	mQueryDuration.Observe(elapsed)
	if c.slowLog.Observe(statement, elapsed) {
		mSlowQueries.Inc()
		e := events.New(events.SlowOp, events.SevWarn, "slow query")
		e.Service = "query"
		e.Fields = map[string]string{
			"statement":  truncateStatement(statement),
			"elapsed_ms": fmt.Sprintf("%d", elapsed.Milliseconds()),
		}
		if t := trace.TraceFromContext(ctx); t != nil {
			e.TraceID = t.ID
		}
		events.Default.Publish(e)
	}
	if sp != nil {
		if res != nil {
			sp.Annotate("rows", fmt.Sprint(len(res.Rows)))
		}
		sp.Error(err)
		sp.End()
	}
	return res, err
}

// truncateStatement bounds a statement for embedding in an event.
func truncateStatement(s string) string {
	const max = 200
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}

func (c *Cluster) hasService(s cmap.Service) bool {
	for _, n := range c.Nodes() {
		if n.Alive() && n.services.Has(s) {
			return true
		}
	}
	return false
}

// --- planner.Catalog ---

func (s *clusterStore) KeyspaceExists(name string) bool {
	_, err := s.c.bucket(name)
	return err == nil
}

func (s *clusterStore) Indexes(keyspace string) []planner.IndexInfo {
	b, err := s.c.bucket(keyspace)
	if err != nil {
		return nil
	}
	var out []planner.IndexInfo
	for _, m := range b.gsiSvc.ListIndexes(keyspace) {
		out = append(out, planner.IndexInfo{
			Name:           m.Name,
			Using:          n1ql.UsingGSI,
			IsPrimary:      m.IsPrimary,
			SecCanonical:   m.SecCanonical,
			WhereCanonical: m.WhereCanonical,
			IsArray:        m.IsArrayIndex,
			Built:          m.Built,
		})
	}
	b.mu.Lock()
	for _, vi := range b.viewIndexes {
		out = append(out, vi)
	}
	b.mu.Unlock()
	return out
}

// --- index DDL routing (§3.3: USING GSI vs USING VIEW) ---

func (s *clusterStore) CreateIndex(ci *n1ql.CreateIndex) error {
	return s.c.CreateIndexStmt(ci)
}

func (s *clusterStore) DropIndex(keyspace, name string) error {
	return s.c.DropIndexByName(keyspace, name)
}

func (s *clusterStore) BuildIndex(keyspace, name string) error {
	b, err := s.c.bucket(keyspace)
	if err != nil {
		return err
	}
	return b.gsiSvc.BuildIndex(keyspace, name)
}

// CreateIndexStmt routes CREATE INDEX to the right service.
func (c *Cluster) CreateIndexStmt(ci *n1ql.CreateIndex) error {
	b, err := c.bucket(ci.Keyspace)
	if err != nil {
		return err
	}
	if ci.Using == n1ql.UsingView {
		return c.createViewIndex(b, ci)
	}
	if !c.hasService(cmap.ServiceIndex) {
		return ErrNoIndexNode
	}
	def := gsi.Def{
		Name:      ci.Name,
		Keyspace:  ci.Keyspace,
		IsPrimary: ci.Primary,
	}
	for _, k := range ci.Keys {
		def.SecExprs = append(def.SecExprs, k.String())
	}
	if ci.Where != nil {
		def.WhereExpr = ci.Where.String()
	}
	if ci.With != nil {
		if d, ok := ci.With["defer_build"].(bool); ok {
			def.Deferred = d
		}
		if p, ok := value.AsNumber(ci.With["num_partitions"]); ok {
			def.NumPartitions = int(p)
		}
		if m, ok := ci.With["memory_optimized"].(bool); ok && m {
			def.Mode = gsi.MemoryOptimized
		}
	}
	return b.gsiSvc.CreateIndex(def)
}

// createViewIndex implements CREATE INDEX ... USING VIEW (§3.3.1): a
// local view per data node whose map emits the index key.
func (c *Cluster) createViewIndex(b *bucketState, ci *n1ql.CreateIndex) error {
	if len(ci.Keys) != 1 && !ci.Primary {
		return fmt.Errorf("core: USING VIEW indexes support exactly one key expression")
	}
	info := planner.IndexInfo{
		Name:      ci.Name,
		Using:     n1ql.UsingView,
		IsPrimary: ci.Primary,
		Built:     true,
	}
	def := views.Definition{Name: viewIndexName(ci.Name)}
	if ci.Primary {
		info.SecCanonical = []string{"meta().id"}
		def.Map = views.MapSpec{Key: "meta().id"}
	} else {
		key := n1ql.Formalize(ci.Keys[0], ci.Keyspace)
		if _, isArr := key.(*n1ql.ArrayComprehension); isArr {
			return fmt.Errorf("core: USING VIEW does not support array indexes; use GSI")
		}
		info.SecCanonical = []string{key.String()}
		def.Map = views.MapSpec{Key: key.String()}
		// The leading key must exist for the entry to exist, matching
		// GSI behaviour.
		def.Map.Filter = "(" + key.String() + ") IS NOT MISSING"
	}
	if ci.Where != nil {
		w := n1ql.Formalize(ci.Where, ci.Keyspace)
		info.WhereCanonical = w.String()
		if def.Map.Filter != "" {
			def.Map.Filter = def.Map.Filter + " AND (" + w.String() + ")"
		} else {
			def.Map.Filter = w.String()
		}
	}
	b.mu.Lock()
	if b.viewIndexes == nil {
		b.viewIndexes = map[string]planner.IndexInfo{}
	}
	if _, dup := b.viewIndexes[ci.Name]; dup {
		b.mu.Unlock()
		return gsi.ErrIndexExists
	}
	b.viewIndexes[ci.Name] = info
	b.mu.Unlock()
	return c.DefineView(b.name, def)
}

func viewIndexName(index string) string { return "$idx:" + index }

// DropIndexByName removes a GSI or view-backed index.
func (c *Cluster) DropIndexByName(keyspace, name string) error {
	b, err := c.bucket(keyspace)
	if err != nil {
		return err
	}
	b.mu.Lock()
	_, isView := b.viewIndexes[name]
	if isView {
		delete(b.viewIndexes, name)
	}
	b.mu.Unlock()
	if isView {
		return c.DropView(keyspace, viewIndexName(name))
	}
	return b.gsiSvc.DropIndex(keyspace, name)
}

// --- executor.Datastore ---

func (s *clusterStore) Fetch(ctx context.Context, keyspace, id string) (any, n1ql.Meta, error) {
	cl, err := s.c.OpenBucket(keyspace)
	if err != nil {
		return nil, n1ql.Meta{}, err
	}
	it, err := cl.Get(ctx, id)
	if err != nil {
		if errors.Is(err, cache.ErrKeyNotFound) {
			return nil, n1ql.Meta{}, executor.ErrNotFound
		}
		return nil, n1ql.Meta{}, err
	}
	doc, _ := value.Parse(it.Value)
	return doc, n1ql.Meta{ID: id, CAS: it.CAS, Seqno: it.Seqno}, nil
}

func (s *clusterStore) ConsistencyVector(keyspace string) map[int]uint64 {
	return s.c.consistencyVector(keyspace)
}

// consistencyVector captures the data service's per-vBucket high
// seqnos — the request_plus barrier of §4.2: "the query engine will
// wait until the index is updated up to the maximum sequence number
// for each vBucket".
func (c *Cluster) consistencyVector(keyspace string) map[int]uint64 {
	b, err := c.bucket(keyspace)
	if err != nil {
		return nil
	}
	m := b.Map()
	out := make(map[int]uint64, m.NumVBuckets)
	for vb := 0; vb < m.NumVBuckets; vb++ {
		nodeID := m.Active(vb)
		if nodeID == "" {
			continue
		}
		node, err := c.Node(nodeID)
		if err != nil {
			continue
		}
		v, err := node.kvVB(keyspace, vb)
		if err != nil {
			continue
		}
		out[vb] = v.HighSeqno()
	}
	return out
}

func (s *clusterStore) ScanIndex(ctx context.Context, keyspace, index string, using n1ql.IndexUsing, opts executor.IndexScanOpts) ([]executor.IndexEntry, error) {
	if using == n1ql.UsingView {
		return s.c.scanViewIndex(ctx, keyspace, index, opts)
	}
	b, err := s.c.bucket(keyspace)
	if err != nil {
		return nil, err
	}
	gopts := gsi.ScanOptions{
		EqualKey: opts.EqualKey, HasEqual: opts.HasEqual,
		Low: opts.Low, High: opts.High,
		LowIncl: opts.LowIncl, HighIncl: opts.HighIncl,
		Limit: opts.Limit, Reverse: opts.Reverse,
		WaitSeqnos: opts.Wait,
	}
	items, err := b.gsiSvc.Scan(ctx, keyspace, index, gopts)
	if err != nil {
		return nil, err
	}
	out := make([]executor.IndexEntry, len(items))
	for i, it := range items {
		out[i] = executor.IndexEntry{ID: it.DocID, SecKey: it.SecKey}
	}
	return out, nil
}

// scanViewIndex serves an IndexScan over a view-backed index by
// scatter/gathering the per-node view engines (Figure 8).
func (c *Cluster) scanViewIndex(ctx context.Context, keyspace, index string, opts executor.IndexScanOpts) ([]executor.IndexEntry, error) {
	vopts := views.QueryOptions{Descending: opts.Reverse}
	switch {
	case opts.HasEqual:
		if len(opts.EqualKey) != 1 {
			return nil, fmt.Errorf("core: view index scans take single keys")
		}
		vopts.Key = opts.EqualKey[0]
		vopts.HasKey = true
	default:
		if opts.Low != nil {
			vopts.StartKey = opts.Low[0]
			vopts.HasStart = true
		}
		if opts.High != nil {
			vopts.EndKey = opts.High[0]
			vopts.HasEnd = true
			vopts.InclusiveEnd = opts.HighIncl
		}
	}
	if opts.Wait != nil {
		vopts.Stale = views.StaleFalse
	}
	rows, err := c.queryViewRows(ctx, keyspace, viewIndexName(index), vopts, opts.Wait)
	if err != nil {
		return nil, err
	}
	var out []executor.IndexEntry
	for _, r := range rows {
		// Exclusive low bound: the view API's start is inclusive.
		if opts.Low != nil && !opts.LowIncl && value.Compare(r.Key, opts.Low[0]) == 0 {
			continue
		}
		out = append(out, executor.IndexEntry{ID: r.ID, SecKey: []any{r.Key}})
		if opts.Limit > 0 && len(out) >= opts.Limit {
			break
		}
	}
	return out, nil
}

// --- DML (routed through the data service) ---

func (s *clusterStore) InsertDoc(ctx context.Context, keyspace, id string, doc any, upsert bool) error {
	cl, err := s.c.OpenBucket(keyspace)
	if err != nil {
		return err
	}
	data := value.Marshal(doc)
	if upsert {
		_, err = cl.Set(ctx, id, data, 0)
		return err
	}
	_, err = cl.Add(ctx, id, data)
	return err
}

func (s *clusterStore) UpdateDoc(ctx context.Context, keyspace, id string, doc any) error {
	cl, err := s.c.OpenBucket(keyspace)
	if err != nil {
		return err
	}
	_, err = cl.Replace(ctx, id, value.Marshal(doc), 0)
	return err
}

func (s *clusterStore) DeleteDoc(ctx context.Context, keyspace, id string) error {
	cl, err := s.c.OpenBucket(keyspace)
	if err != nil {
		return err
	}
	return cl.Delete(ctx, id, 0)
}

// --- view management + scatter/gather querying ---

// DefineView creates a view on every data node (views are local
// indexes co-located with the data, §3.3.1) and records it so nodes
// provisioned later build it too.
func (c *Cluster) DefineView(bucketName string, def views.Definition) error {
	b, err := c.bucket(bucketName)
	if err != nil {
		return err
	}
	b.mu.Lock()
	if b.viewDefs == nil {
		b.viewDefs = map[string]views.Definition{}
	}
	if _, dup := b.viewDefs[def.Name]; dup {
		b.mu.Unlock()
		return views.ErrViewExists
	}
	b.viewDefs[def.Name] = def
	b.mu.Unlock()
	for _, n := range c.Nodes() {
		if !n.services.Has(cmap.ServiceData) || !n.Alive() {
			continue
		}
		nb, err := n.bucket(bucketName)
		if err != nil {
			continue
		}
		if err := nb.viewEngine.Define(def); err != nil && !errors.Is(err, views.ErrViewExists) {
			return err
		}
	}
	return nil
}

// DropView removes a view cluster-wide.
func (c *Cluster) DropView(bucketName, name string) error {
	b, err := c.bucket(bucketName)
	if err != nil {
		return err
	}
	b.mu.Lock()
	_, ok := b.viewDefs[name]
	delete(b.viewDefs, name)
	b.mu.Unlock()
	if !ok {
		return views.ErrNoSuchView
	}
	for _, n := range c.Nodes() {
		if !n.services.Has(cmap.ServiceData) || !n.Alive() {
			continue
		}
		if nb, err := n.bucket(bucketName); err == nil {
			nb.viewEngine.Drop(name)
		}
	}
	return nil
}

// QueryView runs a view query with scatter/gather over the data nodes
// (Figure 8: "queries are sent to a randomly selected server within
// the cluster [which] sends the request to the other relevant servers
// ... and then aggregates their results").
func (c *Cluster) QueryView(ctx context.Context, bucketName, view string, opts views.QueryOptions) ([]views.Row, error) {
	var wait map[int]uint64
	if opts.Stale == views.StaleFalse {
		wait = c.consistencyVector(bucketName)
	}
	return c.queryViewRows(ctx, bucketName, view, opts, wait)
}

func (c *Cluster) queryViewRows(ctx context.Context, bucketName, view string, opts views.QueryOptions, wait map[int]uint64) ([]views.Row, error) {
	b, err := c.bucket(bucketName)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	def, ok := b.viewDefs[view]
	b.mu.Unlock()
	if !ok {
		return nil, views.ErrNoSuchView
	}
	m := b.Map()
	var parts [][]views.Row
	for _, n := range c.Nodes() {
		if !n.services.Has(cmap.ServiceData) || !n.Alive() {
			continue
		}
		nb, err := n.bucket(bucketName)
		if err != nil {
			continue
		}
		nodeOpts := opts
		// Per-node wait vector: only the vBuckets active on this node.
		if wait != nil {
			nodeOpts.Stale = views.StaleFalse
			nodeOpts.WaitSeqnos = map[int]uint64{}
			for _, vb := range m.ActiveVBuckets(n.id) {
				if s, ok := wait[vb]; ok {
					nodeOpts.WaitSeqnos[vb] = s
				}
			}
		}
		// Skip/limit cannot be pushed below the merge; trim after.
		nodeOpts.Skip = 0
		if opts.Limit > 0 {
			nodeOpts.Limit = opts.Limit + opts.Skip
		}
		rows, err := nb.viewEngine.Query(ctx, view, nodeOpts)
		if err != nil {
			return nil, err
		}
		parts = append(parts, rows)
	}
	mergeReduce := ""
	if opts.Reduce {
		mergeReduce = def.Reduce
	}
	merged := views.MergeRows(mergeReduce, opts.Group, parts)
	if opts.Reduce && def.Reduce != "" && !opts.Group {
		return merged, nil
	}
	if opts.Descending {
		// MergeRows sorts ascending; flip for descending queries.
		for i, j := 0, len(merged)-1; i < j; i, j = i+1, j-1 {
			merged[i], merged[j] = merged[j], merged[i]
		}
	}
	if opts.Skip > 0 {
		if opts.Skip >= len(merged) {
			merged = nil
		} else {
			merged = merged[opts.Skip:]
		}
	}
	if opts.Limit > 0 && len(merged) > opts.Limit {
		merged = merged[:opts.Limit]
	}
	return merged, nil
}

// FTS returns the bucket's full-text service instance.
func (c *Cluster) FTS(bucketName string) (*ftsHandle, error) {
	b, err := c.bucket(bucketName)
	if err != nil {
		return nil, err
	}
	return &ftsHandle{c: c, b: b}, nil
}

// ErrNoAnalyticsNode enforces the MDS topology for the analytics
// service (§6.2).
var ErrNoAnalyticsNode = errors.New("core: no node runs the analytics service")

// EnableAnalytics starts shadowing a bucket into the analytics service
// ("fed via in-memory DCP"). Requires an analytics node.
func (c *Cluster) EnableAnalytics(bucketName string) error {
	if !c.hasService(cmap.ServiceAnalytics) {
		return ErrNoAnalyticsNode
	}
	b, err := c.bucket(bucketName)
	if err != nil {
		return err
	}
	return b.analyticsEng.Enable()
}

// AnalyticsQuery runs a query on the analytics service's shadow
// dataset — never touching the data service's cache or storage, the
// §6.2 performance-isolation property. General (non-key) joins are
// allowed here, unlike in the operational N1QL service.
func (c *Cluster) AnalyticsQuery(bucketName, statement string, opts analytics.QueryOptions) ([]any, error) {
	if !c.hasService(cmap.ServiceAnalytics) {
		return nil, ErrNoAnalyticsNode
	}
	b, err := c.bucket(bucketName)
	if err != nil {
		return nil, err
	}
	return b.analyticsEng.Query(statement, opts)
}

// AnalyticsConsistencyVector captures the data service's current seqno
// vector for read-your-own-writes analytics queries.
func (c *Cluster) AnalyticsConsistencyVector(bucketName string) map[int]uint64 {
	return c.consistencyVector(bucketName)
}

// ftsHandle wraps the FTS engine with cluster-level consistency.
type ftsHandle struct {
	c *Cluster
	b *bucketState
}

// Engine exposes the underlying engine (Define/Drop/Search*).
func (h *ftsHandle) Engine() *fts.Engine { return h.b.ftsEng }

// ConsistencyVector captures the current data-service seqnos for
// read-your-own-writes FTS queries.
func (h *ftsHandle) ConsistencyVector() map[int]uint64 {
	return h.c.consistencyVector(h.b.name)
}
