package core

import (
	"context"
	"fmt"
	"testing"

	"couchgo/internal/executor"
	"couchgo/internal/metrics"
)

// severReplication stops every intra-cluster replication stream so
// subsequent writes exist only on the active copies — the ingredient
// for divergent history at failover.
func severReplication(t *testing.T, c *Cluster, bucket string) {
	t.Helper()
	for _, n := range c.Nodes() {
		nb, err := n.bucket(bucket)
		if err != nil {
			continue
		}
		nb.mu.Lock()
		vbs := make([]int, 0, len(nb.replStreams))
		for vb := range nb.replStreams {
			vbs = append(vbs, vb)
		}
		nb.mu.Unlock()
		for _, vb := range vbs {
			nb.stopReplStream(vb)
		}
	}
}

// TestFeedRollbackOnFailover drives the full rollback protocol through
// the cluster: a GSI consumer streams past the point the replicas have
// seen, the active fails over, and on reattach the promoted producer's
// failover log forces the feed to roll the index back and re-converge
// on the surviving history — counted in couchgo_feed_rollbacks_total.
func TestFeedRollbackOnFailover(t *testing.T) {
	c, cl := newTestCluster(t, 2, 1)
	if _, err := c.Query("CREATE INDEX byN ON `default`(n)", executor.Options{}); err != nil {
		t.Fatal(err)
	}
	count := func(stage string) int {
		t.Helper()
		res, err := c.Query("SELECT COUNT(*) AS c FROM `default` WHERE n >= 0",
			executor.Options{Consistency: executor.RequestPlus})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		return int(res.Rows[0].(map[string]any)["c"].(float64))
	}

	// Replicated baseline.
	const base = 20
	for i := 0; i < base; i++ {
		if _, err := cl.SetWithOptions(context.Background(), fmt.Sprintf("d%03d", i), []byte(fmt.Sprintf(`{"n": %d}`, i)),
			0, 0, 0, DurabilityOptions{ReplicateTo: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := count("baseline"); got != base {
		t.Fatalf("baseline count = %d, want %d", got, base)
	}

	// Sever replication, then write documents that only the actives
	// (and the index, which feeds from the actives) will ever see.
	severReplication(t, c, "default")
	b, _ := c.bucket("default")
	oldMap := b.Map()
	const divergent = 40
	surviving := base
	sawNode0 := false
	for i := 0; i < divergent; i++ {
		k := fmt.Sprintf("x%03d", i)
		if _, err := cl.Set(context.Background(), k, []byte(`{"n": 100}`), 0); err != nil {
			t.Fatal(err)
		}
		if nodeID, _ := oldMap.NodeForKey(k); nodeID == "node0" {
			sawNode0 = true // this write dies with node0
		} else {
			surviving++
		}
	}
	if !sawNode0 {
		t.Fatal("test premise: no divergent write landed on node0")
	}
	// The index consumed the divergent writes: its feeds are now ahead
	// of every replica's history.
	if got := count("pre-failover"); got != base+divergent {
		t.Fatalf("pre-failover count = %d, want %d", got, base+divergent)
	}

	rollbacks := metrics.Default.Counter("couchgo_feed_rollbacks_total", "service", "gsi")
	before := rollbacks.Value()

	if err := c.Kill("node0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Failover("node0"); err != nil {
		t.Fatal(err)
	}

	// The promoted replicas' takeover entries sit below the feeds'
	// resume seqnos, so reattachment must roll the index back; the
	// re-streamed index then matches exactly the surviving documents —
	// no phantom entries from the lost branch, nothing missing.
	if got := count("post-failover"); got != surviving {
		t.Fatalf("post-failover count = %d, want %d", got, surviving)
	}
	if got := rollbacks.Value(); got <= before {
		t.Fatalf("couchgo_feed_rollbacks_total = %d, want > %d", got, before)
	}

	// The cluster stays writable and the index follows new mutations.
	if _, err := cl.Set(context.Background(), "post", []byte(`{"n": 1}`), 0); err != nil {
		t.Fatal(err)
	}
	if got := count("post-failover write"); got != surviving+1 {
		t.Fatalf("count after new write = %d, want %d", got, surviving+1)
	}
}
