package core

import (
	"context"
	"errors"
	"time"

	"couchgo/internal/cache"
	"couchgo/internal/cmap"
)

// ErrNodeUnreachable marks transient transport failures (dial refused,
// connection reset, pool drained). The client's route loop retries them
// with the same capped backoff it uses for a stale map, because they
// mean the same thing operationally: the topology the client believes
// in and the one that exists have diverged for a moment.
var ErrNodeUnreachable = errors.New("core: node unreachable")

// NodeConn is one node's KV surface as a smart client sees it: every
// vBucket-routed operation, addressed by (vbID, key). Two
// implementations exist — the in-process loopback that calls straight
// into the owning *Node (exactly the pre-transport call path), and the
// transport layer's TCP connection that encodes each call as a
// memcproto frame. The client neither knows nor cares which it got;
// that indifference is the seam the multi-process cluster hangs on.
//
// The `now` parameter is the client's unix-seconds clock, threaded
// through so expiry semantics follow the client's (injectable) time
// source on both transports.
type NodeConn interface {
	Get(ctx context.Context, vbID int, key string, now int64) (cache.Item, error)
	Set(ctx context.Context, vbID int, key string, value []byte, flags uint32, expiry int64, casCheck uint64, now int64, dur DurabilityOptions) (cache.Item, error)
	Add(ctx context.Context, vbID int, key string, value []byte, now int64) (cache.Item, error)
	Replace(ctx context.Context, vbID int, key string, value []byte, casCheck uint64, now int64) (cache.Item, error)
	Delete(ctx context.Context, vbID int, key string, casCheck uint64, now int64, dur DurabilityOptions) (cache.Item, error)
	Touch(ctx context.Context, vbID int, key string, expiry, now int64) error
	GetAndLock(ctx context.Context, vbID int, key string, lockSeconds, now int64) (cache.Item, error)
	Unlock(ctx context.Context, vbID int, key string, casToken uint64, now int64) error
	Append(ctx context.Context, vbID int, key string, data []byte, casCheck uint64, now int64) (cache.Item, error)
	Prepend(ctx context.Context, vbID int, key string, data []byte, casCheck uint64, now int64) (cache.Item, error)
	SubdocGet(ctx context.Context, vbID int, key, path string, now int64) (any, error)
	SubdocSet(ctx context.Context, vbID int, key, path string, v any, casCheck uint64, now int64) (cache.Item, error)
	SubdocRemove(ctx context.Context, vbID int, key, path string, casCheck uint64, now int64) (cache.Item, error)
	SubdocArrayAppend(ctx context.Context, vbID int, key, path string, v any, casCheck uint64, now int64) (cache.Item, error)
	SubdocCounter(ctx context.Context, vbID int, key, path string, delta float64, casCheck uint64, now int64) (float64, error)
	GetMeta(ctx context.Context, vbID int, key string) (cache.Item, error)
	XDCRApply(ctx context.Context, vbID int, key string, value []byte, deleted bool, cas, revSeqno uint64, flags uint32, expiry int64) (bool, error)
}

// Router is how a smart client resolves "who owns this key and how do
// I talk to them": the cached cluster map plus a connection per node.
// The loopback router reads the bucket's live map and hands out
// in-process conns; the transport router caches the map it last saw on
// the wire (every response carries the server's map epoch) and hands
// out pooled TCP conns.
type Router interface {
	// BucketMap returns the router's current view of the cluster map.
	BucketMap() (*cmap.Map, error)
	// Conn returns the connection for the named node.
	Conn(node cmap.NodeID) (NodeConn, error)
}

// NewClient builds a smart client over an arbitrary Router — the
// entry point the transport layer (and tests) use to drive the full
// client surface over TCP. In-process callers keep using
// Cluster.OpenBucket, which wires the loopback router.
func NewClient(r Router, bucket string) *Client {
	return &Client{
		router: r,
		bucket: bucket,
		clock:  func() int64 { return time.Now().Unix() },
	}
}
