// Package core implements the paper's primary contribution: the
// integrated Couchbase-style server. A Node is one cluster member
// running a configurable set of services (multi-dimensional scaling,
// §4.4); a Cluster wires Nodes together — hash-partitioned data service
// with the memory-first write path (§4.2), DCP-fed intra-cluster
// replication (§4.1.1), per-node view engines (§4.3.3), the GSI
// projector/indexer split (§4.3.4), the N1QL query service (§4.3.5),
// the cluster manager with orchestrator election, failover, and
// rebalance (§4.3.1), and the smart-client routing of Figure 5.
package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"couchgo/internal/analytics"
	"couchgo/internal/cache"
	"couchgo/internal/cmap"
	"couchgo/internal/events"
	"couchgo/internal/fts"
	"couchgo/internal/gsi"
	"couchgo/internal/storage"
	"couchgo/internal/trace"
	"couchgo/internal/vbucket"
	"couchgo/internal/views"
)

// Errors surfaced by the data service.
var (
	ErrNodeDown      = errors.New("core: node is not responding")
	ErrNoSuchBucket  = errors.New("core: no such bucket")
	ErrNoSuchNode    = errors.New("core: no such node")
	ErrNotDataNode   = errors.New("core: node does not run the data service")
	ErrBucketExists  = errors.New("core: bucket already exists")
	ErrClusterClosed = errors.New("core: cluster is closed")
)

// Node is one cluster member.
type Node struct {
	id       cmap.NodeID
	services cmap.ServiceSet
	dir      string

	mu sync.Mutex
	// alive simulates process liveness: a "down" node stops serving
	// requests and stops heartbeating (§4.3.1 failure detection).
	alive bool
	// buckets: per-bucket data-service state on this node.
	buckets map[string]*nodeBucket
	// diskDelay simulates device latency on the flusher path.
	diskDelay time.Duration
}

// nodeBucket is one bucket's data-service footprint on one node.
type nodeBucket struct {
	// nodeID and bucketName identify this footprint in journal events.
	nodeID     string
	bucketName string

	store *storage.Store
	mu    sync.Mutex
	vbs   map[int]*vbucket.VBucket
	// pagerStop ends the item-pager goroutine (set when the bucket has
	// a memory quota).
	pagerStop chan struct{}
	// maintStop ends the maintenance goroutine (compactor + expiry
	// pager).
	maintStop chan struct{}
	// viewEngine indexes this node's active vBuckets (views are local
	// indexes co-located with the data, §3.3.1).
	viewEngine *views.Engine
	// projector feeds GSI with this node's active vBuckets' mutations.
	projector *gsi.Projector
	// ftsAttach mirrors the projector for the full-text service.
	fts *fts.Engine
	// analytics mirrors the projector for the analytics service (§6.2).
	analytics *analytics.Engine
	// vbCfg configures the node's vBuckets for this bucket.
	vbCfg vbucket.Config
	// replStreams: replication consumers running on THIS node for
	// vBuckets whose active copy is elsewhere. vb -> stop func.
	replStreams map[int]func()
}

func newNode(id cmap.NodeID, services cmap.ServiceSet, dir string) *Node {
	return &Node{
		id:       id,
		services: services,
		dir:      dir,
		alive:    true,
		buckets:  make(map[string]*nodeBucket),
	}
}

// ID returns the node's identity.
func (n *Node) ID() cmap.NodeID { return n.id }

// Services returns the node's service set.
func (n *Node) Services() cmap.ServiceSet { return n.services }

// Alive reports simulated liveness.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

func (n *Node) setAlive(v bool) {
	n.mu.Lock()
	n.alive = v
	n.mu.Unlock()
}

func (n *Node) bucket(name string) (*nodeBucket, error) {
	if !n.Alive() {
		return nil, ErrNodeDown
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	nb, ok := n.buckets[name]
	if !ok {
		return nil, ErrNoSuchBucket
	}
	return nb, nil
}

// addBucket provisions the bucket's storage and engines on this node.
// A nonzero memory quota bounds this node's cache for the bucket and
// starts the item pager (§4.3.3 value or full eviction).
func (n *Node) addBucket(name string, svc *gsi.Service, ftsEng *fts.Engine, anEng *analytics.Engine, cfg Config, opts BucketOptions) error {
	// Build everything before taking n.mu: store creation touches disk
	// and the engine constructors enter other services' locks. A
	// concurrent duplicate loses the insert race below and is released.
	store, err := storage.NewStore(filepath.Join(n.dir, "data", name), cfg.SyncPersist)
	if err != nil {
		return err
	}
	nb := &nodeBucket{
		nodeID:      string(n.id),
		bucketName:  name,
		store:       store,
		vbs:         make(map[int]*vbucket.VBucket),
		viewEngine:  views.NewEngine(),
		replStreams: make(map[int]func()),
		fts:         ftsEng,
		analytics:   anEng,
		vbCfg: vbucket.Config{
			DiskDelay:    cfg.DiskDelay,
			FullEviction: opts.FullEviction,
		},
	}
	if svc != nil {
		nb.projector = gsi.NewProjector(svc, name)
	}
	n.mu.Lock()
	if _, ok := n.buckets[name]; ok {
		n.mu.Unlock()
		store.Close()
		return ErrBucketExists
	}
	if opts.MemoryQuotaBytes > 0 {
		nb.pagerStop = make(chan struct{})
		go nb.pagerLoop(opts.MemoryQuotaBytes, opts.FullEviction)
	}
	nb.maintStop = make(chan struct{})
	go nb.maintenanceLoop()
	n.buckets[name] = nb
	n.diskDelay = cfg.DiskDelay
	n.mu.Unlock()
	return nil
}

// compactionThreshold is the fragmentation fraction that triggers an
// online compaction of a vBucket file (§4.3.3: "compaction is
// periodically run, based on a fragmentation threshold, and while the
// system is online"). The real server defaults to 30%; we compact a
// file once more than half of it is stale versions.
const compactionThreshold = 0.5

// compactionCooldown is the minimum interval between two compactions
// of the same vBucket file. Without it an update-heavy workload
// refragments a small hot file within a tick and the compactor
// rewrites (and fsyncs, and holds the file mutex of) the same file
// several times per second — pure write amplification that showed up
// as hundreds-of-milliseconds front-end latency outliers. Steady-state
// fragmentation stays bounded: the file is still compacted, just at
// most once per cooldown.
const compactionCooldown = 5 * time.Second

// maxCompactionsPerTick bounds how many vBucket files one maintenance
// tick may rewrite. An update-heavy phase fragments every file at
// roughly the same rate, so they all cross the threshold on the same
// tick; compacting the whole set at once is a burst of file rewrites
// and fsyncs that front-end operations feel. Two per tick drains a
// 64-vBucket backlog in ~8s while keeping background write
// amplification smooth.
const maxCompactionsPerTick = 2

// maintenanceLoop runs the background chores of the data service: the
// online compactor and the proactive expiry pager.
func (nb *nodeBucket) maintenanceLoop() {
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
	lastCompact := map[int]time.Time{}
	for {
		select {
		case <-nb.maintStop:
			return
		case <-ticker.C:
		}
		nb.mu.Lock()
		vbs := make([]*vbucket.VBucket, 0, len(nb.vbs))
		for _, vb := range nb.vbs {
			vbs = append(vbs, vb)
		}
		nb.mu.Unlock()
		var tables []*cache.HashTable
		compacted := 0
		for _, vb := range vbs {
			tables = append(tables, vb.Table)
			f, err := nb.store.VB(vb.ID)
			if err != nil {
				continue
			}
			st := f.Stats()
			// Only compact files big enough for it to matter, not more
			// often than the cooldown allows, and never more than a few
			// per tick (vbs comes from map iteration, so the candidates
			// skipped by the cap rotate tick to tick).
			if compacted < maxCompactionsPerTick &&
				st.FileBytes > 64*1024 && f.Fragmentation() > compactionThreshold &&
				time.Since(lastCompact[vb.ID]) >= compactionCooldown {
				compacted++
				lastCompact[vb.ID] = time.Now()
				// Compactions are rare and interesting, so they bypass
				// the sampling tick: every one is traced while tracing
				// is enabled at all.
				_, sp := trace.Default.Force(context.Background(), "storage:compact")
				if sp != nil {
					sp.Annotate("vb", strconv.Itoa(vb.ID))
					sp.Annotate("file_bytes", strconv.FormatInt(st.FileBytes, 10))
				}
				err := f.Compact()
				if sp != nil {
					sp.Error(err)
					sp.End()
				}
			}
		}
		cache.ExpiryPager(tables, time.Now().Unix())
	}
}

// pagerLoop periodically evicts not-recently-used values when the
// node's cache use for this bucket crosses the high watermark: "the
// associated values can be evicted based on usage" while every key and
// its metadata stay resident.
func (nb *nodeBucket) pagerLoop(quota int64, fullEviction bool) {
	pager := &cache.Pager{Quota: cache.Quota{Bytes: quota}, FullEviction: fullEviction}
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-nb.pagerStop:
			return
		case <-ticker.C:
		}
		nb.mu.Lock()
		vbs := make([]*vbucket.VBucket, 0, len(nb.vbs))
		for _, vb := range nb.vbs {
			vbs = append(vbs, vb)
		}
		nb.mu.Unlock()
		// Query the vBuckets after releasing nb.mu: PersistedSeqno takes
		// vbucket-internal locks.
		tables := make([]*cache.HashTable, 0, len(vbs))
		persisted := make([]uint64, 0, len(vbs))
		for _, vb := range vbs {
			tables = append(tables, vb.Table)
			persisted = append(persisted, vb.PersistedSeqno())
		}
		if pager.NeedsEviction(tables) {
			pager.Run(tables, persisted, time.Now().Unix())
		}
	}
}

// createVB instantiates a vBucket in the given state. Active vBuckets
// are attached to the view engine, GSI projector, and FTS engine.
func (nb *nodeBucket) createVB(id int, state vbucket.State, diskDelay time.Duration) (*vbucket.VBucket, error) {
	nb.mu.Lock()
	defer nb.mu.Unlock()
	if vb, ok := nb.vbs[id]; ok {
		return vb, nil
	}
	f, err := nb.store.VB(id)
	if err != nil {
		return nil, err
	}
	cfg := nb.vbCfg
	cfg.DiskDelay = diskDelay
	// Creation, warmup, and map insert must be atomic under nb.mu so a
	// concurrent createVB neither double-builds nor observes a cold
	// vBucket. The vbucket layer never calls back into core, so the
	// lock order nb.mu -> vbucket is acyclic.
	vb := vbucket.New(id, f, state, cfg) //couchvet:ignore lockblock -- atomic create+insert; vbucket never re-enters core
	// Restart warmup: a pre-existing file means a previous incarnation
	// persisted data here; replay it into the cache before any
	// consumer attaches.
	if f.HighSeqno() > 0 {
		if err := vb.WarmUp(); err != nil { //couchvet:ignore lockblock -- atomic create+insert; vbucket never re-enters core
			vb.Close() //couchvet:ignore lockblock -- atomic create+insert; vbucket never re-enters core
			return nil, err
		}
	}
	nb.vbs[id] = vb
	if state == vbucket.Active {
		nb.attachConsumersLocked(vb)
	}
	return vb, nil
}

func (nb *nodeBucket) attachConsumersLocked(vb *vbucket.VBucket) {
	nb.viewEngine.AttachVB(vb.ID, vb.Producer())
	if nb.projector != nil {
		nb.projector.AttachVB(vb.ID, vb.Producer())
	}
	if nb.fts != nil {
		nb.fts.AttachVB(vb.ID, vb.Producer())
	}
	if nb.analytics != nil {
		nb.analytics.AttachVB(vb.ID, vb.Producer())
	}
}

// detachConsumers removes the vBucket from this node's PER-NODE
// consumers only (the view engine, §4.3.3 — views are co-located with
// the data). The GSI projector, FTS, and analytics engines are shared
// across the cluster: when a vBucket moves, the new active node's
// AttachVB replaces the shared feeds' producer (closing the old
// streams), so detaching them here would wipe index state that the
// promoted copy still serves.
func (nb *nodeBucket) detachConsumers(vbID int) {
	nb.viewEngine.DetachVB(vbID)
}

// vb returns the vBucket, or nil.
func (nb *nodeBucket) vb(id int) *vbucket.VBucket {
	nb.mu.Lock()
	defer nb.mu.Unlock()
	return nb.vbs[id]
}

// promote flips a replica/pending vBucket to active and attaches the
// index consumers ("the cluster will promote one of the replica
// partitions to active status").
func (nb *nodeBucket) promote(vbID int) {
	nb.mu.Lock()
	vb := nb.vbs[vbID]
	if vb == nil {
		nb.mu.Unlock()
		return
	}
	// State flip, failover-log append, and consumer attach are one
	// atomic promotion under nb.mu; the vbucket/dcp layers never call
	// back into core, so the lock order is acyclic.
	vb.SetState(vbucket.Active) //couchvet:ignore lockblock -- atomic promotion; vbucket/dcp never re-enter core
	// Takeover: append a new (UUID, high-seqno) entry to the failover
	// log. Consumers that resumed past this point on the old active
	// branch get a rollback to here when they reattach (§4.1.1).
	highSeqno := vb.HighSeqno()       //couchvet:ignore lockblock -- atomic promotion; vbucket/dcp never re-enter core
	vb.Producer().Takeover(highSeqno) //couchvet:ignore lockblock -- atomic promotion; vbucket/dcp never re-enter core
	// Journal the takeover before reattaching consumers: a consumer
	// whose resume position lies past the takeover point rolls back
	// during the attach below, and the journal must show takeover →
	// rollback in causal order.
	e := events.New(events.VBucket, events.SevInfo, "vb takeover: replica promoted to active")
	e.Node = nb.nodeID
	e.Bucket = nb.bucketName
	e.VB = vbID
	e.Fields = map[string]string{"high_seqno": strconv.FormatUint(highSeqno, 10)}
	events.Default.Publish(e)
	nb.attachConsumersLocked(vb)
	nb.mu.Unlock()
	nb.stopReplStream(vbID)
}

// demoteAndDrop removes a vBucket from this node entirely (rebalance
// moved it away).
func (nb *nodeBucket) demoteAndDrop(vbID int) {
	nb.stopReplStream(vbID)
	nb.mu.Lock()
	vb := nb.vbs[vbID]
	delete(nb.vbs, vbID)
	nb.mu.Unlock()
	if vb == nil {
		return
	}
	vb.SetState(vbucket.Dead)
	nb.detachConsumers(vbID)
	vb.Close()
	nb.store.DropVB(vbID)
}

func (nb *nodeBucket) setReplStream(vbID int, stop func()) {
	nb.mu.Lock()
	old := nb.replStreams[vbID]
	nb.replStreams[vbID] = stop
	nb.mu.Unlock()
	if old != nil {
		old()
	}
}

func (nb *nodeBucket) stopReplStream(vbID int) {
	nb.mu.Lock()
	stop := nb.replStreams[vbID]
	delete(nb.replStreams, vbID)
	nb.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// close shuts down all vBuckets and engines for this bucket.
func (nb *nodeBucket) close() {
	if nb.pagerStop != nil {
		close(nb.pagerStop)
	}
	if nb.maintStop != nil {
		close(nb.maintStop)
	}
	nb.mu.Lock()
	stops := make([]func(), 0, len(nb.replStreams))
	for _, s := range nb.replStreams {
		stops = append(stops, s)
	}
	nb.replStreams = make(map[int]func())
	vbs := make([]*vbucket.VBucket, 0, len(nb.vbs))
	for _, vb := range nb.vbs {
		vbs = append(vbs, vb)
	}
	nb.vbs = make(map[int]*vbucket.VBucket)
	nb.mu.Unlock()
	for _, s := range stops {
		s()
	}
	nb.viewEngine.Close()
	for _, vb := range vbs {
		vb.Close()
	}
	nb.store.Close()
}

// NodeStats summarizes a node's data-service footprint.
type NodeStats struct {
	ID         cmap.NodeID
	Services   cmap.ServiceSet
	Alive      bool
	ActiveVBs  int
	ReplicaVBs int
	Items      int64
	MemUsed    int64
	// Tombstones and NonResident describe cache composition: deleted
	// metadata retained for replication, and value-evicted items.
	Tombstones  int64
	NonResident int64
	// QueueDepth is the summed disk-write queue backlog across this
	// node's active vBuckets (Figure 6's drain queue).
	QueueDepth int
	// DiskBytes / DiskLiveBytes describe the append-only files; their
	// difference is reclaimable fragmentation.
	DiskBytes     int64
	DiskLiveBytes int64
	// DCPLags sums items-remaining per DCP stream name (e.g.
	// "replica:node1", "gsi-projector") across this node's vBuckets.
	DCPLags map[string]uint64 `json:",omitempty"`
}

// stats gathers per-node counters for one bucket.
func (n *Node) stats(bucketName string) NodeStats {
	st := NodeStats{ID: n.id, Services: n.services, Alive: n.Alive()}
	n.mu.Lock()
	nb := n.buckets[bucketName]
	n.mu.Unlock()
	if nb == nil {
		return st
	}
	nb.mu.Lock()
	vbs := make([]*vbucket.VBucket, 0, len(nb.vbs))
	for _, vb := range nb.vbs {
		vbs = append(vbs, vb)
	}
	nb.mu.Unlock()
	// Per-vBucket queries take vbucket/dcp/storage locks; do them after
	// releasing nb.mu.
	for _, vb := range vbs {
		switch vb.State() {
		case vbucket.Active:
			st.ActiveVBs++
			ts := vb.Table.Stats()
			st.Items += ts.Items
			st.MemUsed += ts.MemUsed
			st.Tombstones += ts.Tombstones
			st.NonResident += ts.NonResident
			st.QueueDepth += vb.QueueDepth()
			if f, err := nb.store.VB(vb.ID); err == nil {
				fs := f.Stats()
				st.DiskBytes += fs.FileBytes
				st.DiskLiveBytes += fs.LiveBytes
			}
			for name, lag := range vb.Producer().StreamLags() {
				if st.DCPLags == nil {
					st.DCPLags = make(map[string]uint64)
				}
				st.DCPLags[name] += lag
			}
		case vbucket.Replica, vbucket.Pending:
			st.ReplicaVBs++
		}
	}
	return st
}

// --- node-level KV entry points (invoked by the cluster router) ---

func (n *Node) kvGet(ctx context.Context, bucket string, vbID int, key string, now int64) (cache.Item, error) {
	nb, err := n.bucket(bucket)
	if err != nil {
		return cache.Item{}, err
	}
	vb := nb.vb(vbID)
	if vb == nil {
		return cache.Item{}, fmt.Errorf("%w (vb %d absent)", vbucket.ErrNotMyVBucket, vbID)
	}
	return vb.Get(ctx, key, now)
}

func (n *Node) kvVB(bucket string, vbID int) (*vbucket.VBucket, error) {
	nb, err := n.bucket(bucket)
	if err != nil {
		return nil, err
	}
	vb := nb.vb(vbID)
	if vb == nil {
		return nil, fmt.Errorf("%w (vb %d absent)", vbucket.ErrNotMyVBucket, vbID)
	}
	return vb, nil
}
