package rest

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"couchgo/internal/dcp"
	"couchgo/internal/events"
	"couchgo/internal/feed"
	"couchgo/internal/health"
	"couchgo/internal/metrics"
)

func TestEventsEndpoint(t *testing.T) {
	s, _ := newServer(t)
	mark := events.Default.LastSeq()

	e := events.New(events.Config, events.SevInfo, "test config event")
	events.Default.Publish(e)
	e = events.New(events.FeedEvent, events.SevWarn, "test feed event")
	e.Service = "gsi"
	events.Default.Publish(e)

	rec := do(t, s, "GET", fmt.Sprintf("/events?since=%d", mark), "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("events: %d %s", rec.Code, rec.Body)
	}
	out := decode(t, rec)
	if got := len(out["events"].([]any)); got != 2 {
		t.Fatalf("got %d events, want 2: %s", got, rec.Body)
	}
	if out["last_seq"].(float64) < float64(mark)+2 {
		t.Fatalf("last_seq = %v", out["last_seq"])
	}

	rec = do(t, s, "GET", fmt.Sprintf("/events?since=%d&type=config", mark), "", nil)
	if got := len(decode(t, rec)["events"].([]any)); got != 1 {
		t.Fatalf("type filter: %d events, want 1", got)
	}
	rec = do(t, s, "GET", fmt.Sprintf("/events?since=%d&severity=warn", mark), "", nil)
	if got := len(decode(t, rec)["events"].([]any)); got != 1 {
		t.Fatalf("severity filter: %d events, want 1", got)
	}
	rec = do(t, s, "GET", fmt.Sprintf("/events?since=%d&limit=1", mark), "", nil)
	evs := decode(t, rec)["events"].([]any)
	if len(evs) != 1 || evs[0].(map[string]any)["msg"] != "test feed event" {
		t.Fatalf("limit should keep the newest event: %s", rec.Body)
	}

	// Bad parameters are 400s, not silently ignored.
	for _, q := range []string{"type=nonsense", "severity=loud", "since=abc", "limit=-1", "limit=x"} {
		rec = do(t, s, "GET", "/events?"+q, "", nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET /events?%s = %d, want 400", q, rec.Code)
		}
	}
}

func TestEventsStream(t *testing.T) {
	s, _ := newServer(t)
	mark := events.Default.LastSeq()

	// No new events within the timeout: empty list, same last_seq.
	rec := do(t, s, "GET", fmt.Sprintf("/events/stream?since=%d&timeout=50ms", mark), "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream timeout: %d %s", rec.Code, rec.Body)
	}
	out := decode(t, rec)
	if len(out["events"].([]any)) != 0 || out["last_seq"].(float64) != float64(mark) {
		t.Fatalf("timed-out stream = %s", rec.Body)
	}

	// Backlog already present: returns immediately.
	events.Default.Publish(events.New(events.Config, events.SevInfo, "backlog event"))
	rec = do(t, s, "GET", fmt.Sprintf("/events/stream?since=%d&timeout=5s", mark), "", nil)
	out = decode(t, rec)
	if len(out["events"].([]any)) == 0 {
		t.Fatalf("stream missed backlog: %s", rec.Body)
	}
	next := uint64(out["last_seq"].(float64))

	// Event published mid-poll wakes the long-poll up.
	stop := time.AfterFunc(20*time.Millisecond, func() {
		events.Default.Publish(events.New(events.Config, events.SevInfo, "live event"))
	})
	defer stop.Stop()
	start := time.Now()
	rec = do(t, s, "GET", fmt.Sprintf("/events/stream?since=%d&timeout=30s", next), "", nil)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("long-poll did not wake on publish (took %s)", elapsed)
	}
	out = decode(t, rec)
	evs := out["events"].([]any)
	if len(evs) == 0 || evs[0].(map[string]any)["msg"] != "live event" {
		t.Fatalf("stream = %s", rec.Body)
	}

	rec = do(t, s, "GET", "/events/stream?since=abc", "", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad since: %d", rec.Code)
	}
	rec = do(t, s, "GET", "/events/stream?timeout=bogus", "", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad timeout: %d", rec.Code)
	}
}

func TestHealthEndpointNoWatchdog(t *testing.T) {
	s, _ := newServer(t)
	rec := do(t, s, "GET", "/health", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("health: %d %s", rec.Code, rec.Body)
	}
	if decode(t, rec)["status"] != "ok" {
		t.Fatalf("health body: %s", rec.Body)
	}
}

// streamNullSource / streamGatedConsumer inject a real feed stall for
// the REST-level health test.
type streamNullSource struct{}

func (streamNullSource) Snapshot(uint64) ([]dcp.Mutation, uint64, error) { return nil, 0, nil }

type streamGatedConsumer struct{ gate chan struct{} }

func (g *streamGatedConsumer) Apply(int, dcp.Mutation) { <-g.gate }

// TestHealthEndpointFeedStallTransitions is the acceptance scenario at
// the HTTP surface: GET /health follows an injected feed stall from ok
// through warn to critical (503), then back to ok once the stall
// clears — with hysteresis, so each phase is one transition.
func TestHealthEndpointFeedStallTransitions(t *testing.T) {
	s, c := newServer(t)

	var clockMu sync.Mutex
	now := time.Unix(2000, 0)
	cfg := health.ClusterCheckConfig{
		FeedStallCritAfter: 5 * time.Second,
		Now: func() time.Time {
			clockMu.Lock()
			defer clockMu.Unlock()
			return now
		},
	}
	w := health.New(health.Options{
		Interval: time.Hour, RaiseAfter: 2, ClearAfter: 2,
		Journal: events.NewJournal(64),
	})
	health.RegisterClusterChecks(w, c, cfg)
	s.SetHealth(w)

	getHealth := func() (int, map[string]any) {
		rec := do(t, s, "GET", "/health", "", nil)
		return rec.Code, decode(t, rec)
	}

	w.Tick()
	if code, out := getHealth(); code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("baseline health: %d %v", code, out["status"])
	}

	// Inject the stall: 1-slot buffer, consumer parked on a gate.
	src := dcp.NewProducer(0, streamNullSource{})
	defer src.Close()
	cons := &streamGatedConsumer{gate: make(chan struct{})}
	f := feed.New("rest-health-stall", cons, feed.Config{Service: "rest-health-test", Buffer: 1})
	defer f.Close()
	if err := f.Attach(0, src); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		src.Publish(dcp.Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}
	stalled := metrics.Default.Gauge("couchgo_feed_stalled", "service", "rest-health-test")
	waitForCond(t, "stall gauge raised", func() bool { return stalled.Value() > 0 })

	w.Tick()
	w.Tick()
	if code, out := getHealth(); code != http.StatusOK || out["status"] != "warn" {
		t.Fatalf("stalled health: %d %v", code, out["status"])
	}

	clockMu.Lock()
	now = now.Add(6 * time.Second)
	clockMu.Unlock()
	w.Tick()
	w.Tick()
	code, out := getHealth()
	if code != http.StatusServiceUnavailable || out["status"] != "critical" {
		t.Fatalf("aged stall health: %d %v", code, out["status"])
	}
	// The per-check detail names the culprit.
	found := false
	for _, raw := range out["checks"].([]any) {
		chk := raw.(map[string]any)
		if chk["name"] == "feed:stalls" && chk["state"] == "critical" {
			found = true
		}
	}
	if !found {
		t.Fatalf("feed:stalls not critical in %s", out)
	}

	close(cons.gate)
	waitForCond(t, "stall gauge cleared", func() bool { return stalled.Value() == 0 })
	w.Tick()
	w.Tick()
	if code, out := getHealth(); code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("recovered health: %d %v", code, out["status"])
	}
}

func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMetricsContentTypeAndMethod(t *testing.T) {
	s, _ := newServer(t)
	rec := do(t, s, "GET", "/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Fatalf("Content-Type = %q, want exact exposition type", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "couchgo_build_info{") || !strings.Contains(body, "couchgo_uptime_seconds ") {
		t.Fatalf("metrics missing build info / uptime:\n%s", body[:min(len(body), 400)])
	}
	if !strings.Contains(body, "couchgo_events_published_total") {
		t.Fatal("metrics missing event journal accounting")
	}

	for _, method := range []string{"POST", "PUT", "DELETE"} {
		rec = do(t, s, method, "/metrics", "", nil)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s /metrics = %d, want 405", method, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); allow != "GET" {
			t.Errorf("%s /metrics Allow = %q, want GET", method, allow)
		}
	}
}

func TestStatsDetailServerBlock(t *testing.T) {
	s, _ := newServer(t)
	rec := do(t, s, "GET", "/stats/detail", "", nil)
	srv, ok := decode(t, rec)["server"].(map[string]any)
	if !ok {
		t.Fatalf("no server block: %s", rec.Body)
	}
	if srv["version"] == "" || srv["go"] == "" {
		t.Fatalf("server block = %v", srv)
	}
	if _, ok := srv["uptime_seconds"].(float64); !ok {
		t.Fatalf("uptime_seconds missing: %v", srv)
	}
}

// TestTracesErrorPaths covers the /traces surface's failure modes.
func TestTracesErrorPaths(t *testing.T) {
	s, _ := newServer(t)

	rec := do(t, s, "GET", "/traces/notanumber", "", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("non-numeric trace id: %d", rec.Code)
	}
	rec = do(t, s, "GET", "/traces/999999999", "", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace id: %d", rec.Code)
	}
	rec = do(t, s, "GET", "/traces?op=bogus", "", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad op filter: %d %s", rec.Code, rec.Body)
	}
	rec = do(t, s, "GET", "/traces?op=kv:set", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("valid op filter: %d", rec.Code)
	}
	rec = do(t, s, "POST", "/traces/config", `{not json`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed trace config: %d", rec.Code)
	}
	rec = do(t, s, "POST", "/traces/config", `{"thresholds": {"kv:set": "not-a-duration"}}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad threshold duration: %d", rec.Code)
	}
	// And the happy path still emits a config event.
	mark := events.Default.LastSeq()
	rec = do(t, s, "POST", "/traces/config", `{"rate": 0}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("trace config: %d %s", rec.Code, rec.Body)
	}
	evs := events.Default.Events(events.Filter{Type: events.Config, SinceSeq: mark})
	if len(evs) == 0 {
		t.Fatal("no config event journaled for trace config change")
	}
}
