package rest

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
)

// promParse validates a Prometheus text exposition body: every TYPE
// line appears once per family with a known kind, every sample follows
// its family's TYPE line, and no sample key repeats. It returns the
// samples keyed by `name{labels}`.
func promParse(t *testing.T, body string) map[string]float64 {
	t.Helper()
	types := map[string]string{}
	samples := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, kind := parts[2], parts[3]
			if _, dup := types[name]; dup {
				t.Fatalf("duplicate TYPE line for %s", name)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("unknown kind %q in %q", kind, line)
			}
			types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = v
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suf); trimmed != name && types[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no preceding TYPE line", key)
		}
	}
	return samples
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := newServer(t)
	for i := 0; i < 25; i++ {
		key := "mkey" + strconv.Itoa(i)
		if rec := do(t, s, "PUT", "/buckets/default/docs/"+key, `{"i": `+strconv.Itoa(i)+`}`, nil); rec.Code != http.StatusOK {
			t.Fatalf("put %s: %d", key, rec.Code)
		}
		if rec := do(t, s, "GET", "/buckets/default/docs/"+key, "", nil); rec.Code != http.StatusOK {
			t.Fatalf("get %s: %d", key, rec.Code)
		}
	}
	if rec := do(t, s, "POST", "/query", `{"statement": "SELECT META().id FROM default USE KEYS [\"mkey1\"]"}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}

	rec := do(t, s, "GET", "/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	samples := promParse(t, rec.Body.String())

	// Required coverage: KV latency + ops, cache hit/miss, flusher
	// queue depth, query timings, per-bucket and node gauges. (The
	// registry is process-global, so counter values may include other
	// tests' traffic; assert lower bounds only.)
	for _, key := range []string{
		`couchgo_kv_op_duration_seconds_count{op="get"}`,
		`couchgo_kv_op_duration_seconds_count{op="set"}`,
		`couchgo_kv_ops_total{op="set"}`,
		`couchgo_cache_hits_total`,
		`couchgo_cache_misses_total`,
		`couchgo_query_duration_seconds_count`,
		`couchgo_query_phase_duration_seconds_count{phase="parse"}`,
		`couchgo_flusher_queue_depth{bucket="default",node="node0"}`,
		`couchgo_bucket_items{bucket="default",node="node0"}`,
		`couchgo_storage_file_bytes{bucket="default",node="node0"}`,
		`couchgo_node_up{node="node0"}`,
		`couchgo_node_up{node="node1"}`,
	} {
		if _, ok := samples[key]; !ok {
			t.Errorf("missing sample %s", key)
		}
	}
	if samples[`couchgo_kv_ops_total{op="set"}`] < 25 {
		t.Errorf("set ops = %v, want >= 25", samples[`couchgo_kv_ops_total{op="set"}`])
	}
	if samples[`couchgo_cache_hits_total`] < 25 {
		t.Errorf("cache hits = %v, want >= 25", samples[`couchgo_cache_hits_total`])
	}
	if samples[`couchgo_query_duration_seconds_count`] < 1 {
		t.Errorf("query count = %v, want >= 1", samples[`couchgo_query_duration_seconds_count`])
	}
	// Replica DCP streams are open (replicas=1), so lag gauges exist
	// even when fully drained.
	foundLag := false
	for key := range samples {
		if strings.HasPrefix(key, `couchgo_dcp_lag{bucket="default"`) {
			foundLag = true
			break
		}
	}
	if !foundLag {
		t.Error("no couchgo_dcp_lag sample for bucket default")
	}
}

func TestStatsDetailRoundTrip(t *testing.T) {
	c, err := core.NewCluster(core.Config{
		Dir:                t.TempDir(),
		NumVBuckets:        8,
		SlowQueryThreshold: time.Nanosecond, // every statement is "slow"
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.AddNode(cmap.NodeID("node0"), cmap.AllServices)
	if err := c.CreateBucket("default", core.BucketOptions{}); err != nil {
		t.Fatal(err)
	}
	s := NewServer(c)
	do(t, s, "PUT", "/buckets/default/docs/d1", `{"x": 1}`, nil)
	if rec := do(t, s, "POST", "/query", `{"statement": "SELECT * FROM default USE KEYS [\"d1\"]"}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}

	rec := do(t, s, "GET", "/stats/detail", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats/detail: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	out := decode(t, rec)
	for _, k := range []string{"orchestrator", "nodes", "buckets", "metrics", "slow_queries"} {
		if _, ok := out[k]; !ok {
			t.Errorf("missing top-level key %q", k)
		}
	}
	buckets := out["buckets"].(map[string]any)
	if _, ok := buckets["default"]; !ok {
		t.Fatalf("missing bucket default: %v", buckets)
	}
	mets := out["metrics"].(map[string]any)
	qd, ok := mets["couchgo_query_duration_seconds"].(map[string]any)
	if !ok {
		t.Fatal("metrics missing couchgo_query_duration_seconds")
	}
	stats := qd[""].(map[string]any)
	if stats["count"].(float64) < 1 {
		t.Errorf("query histogram count %v, want >= 1", stats["count"])
	}
	slow := out["slow_queries"].(map[string]any)
	if slow["total"].(float64) < 1 {
		t.Errorf("slow query total %v, want >= 1 (threshold 1ns)", slow["total"])
	}
	entries := slow["entries"].([]any)
	found := false
	for _, e := range entries {
		if strings.Contains(e.(map[string]any)["statement"].(string), "SELECT * FROM default") {
			found = true
		}
	}
	if !found {
		t.Errorf("slow query entries missing the SELECT: %v", entries)
	}
	// The whole document must survive a JSON round-trip.
	if _, err := json.Marshal(out); err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
}

func TestStatsUnknownBucket(t *testing.T) {
	s, _ := newServer(t)
	rec := do(t, s, "GET", "/buckets/nope/stats", "", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown bucket stats: %d, want 404", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	if msg := decode(t, rec)["error"]; msg == nil {
		t.Error("missing error body")
	}
}

func TestQueryProfileTimings(t *testing.T) {
	s, _ := newServer(t)
	for i := 0; i < 5; i++ {
		do(t, s, "PUT", "/buckets/default/docs/p"+strconv.Itoa(i), `{"n": `+strconv.Itoa(i)+`}`, nil)
	}
	rec := do(t, s, "POST", "/query",
		`{"statement": "SELECT p.n FROM default p USE KEYS [\"p0\", \"p1\", \"p2\"] WHERE p.n >= 1", "profile": "timings"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	out := decode(t, rec)
	prof, ok := out["profile"].(map[string]any)
	if !ok {
		t.Fatalf("no profile section: %v", out)
	}
	if _, ok := prof["elapsedTime"].(string); !ok {
		t.Errorf("missing elapsedTime: %v", prof)
	}
	timings, ok := prof["executionTimings"].([]any)
	if !ok || len(timings) == 0 {
		t.Fatalf("missing executionTimings: %v", prof)
	}
	phases := map[string]bool{}
	for _, tm := range timings {
		m := tm.(map[string]any)
		op, _ := m["#operator"].(string)
		if op == "" {
			t.Errorf("timing without #operator: %v", m)
		}
		if _, err := time.ParseDuration(m["execTime"].(string)); err != nil {
			t.Errorf("bad execTime in %v: %v", m, err)
		}
		phases[op] = true
	}
	for _, want := range []string{"parse", "plan", "fetch", "filter", "project"} {
		if !phases[want] {
			t.Errorf("missing phase %q in %v", want, timings)
		}
	}

	// Without profile, no profile section appears.
	rec = do(t, s, "POST", "/query", `{"statement": "SELECT 1"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("plain query: %d %s", rec.Code, rec.Body)
	}
	if _, ok := decode(t, rec)["profile"]; ok {
		t.Error("unsolicited profile section")
	}
}
