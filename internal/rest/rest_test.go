package rest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
)

func newServer(t *testing.T) (*Server, *core.Cluster) {
	t.Helper()
	c, err := core.NewCluster(core.Config{Dir: t.TempDir(), NumVBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 2; i++ {
		c.AddNode(cmap.NodeID(fmt.Sprintf("node%d", i)), cmap.AllServices)
	}
	if err := c.CreateBucket("default", core.BucketOptions{NumReplicas: 1}); err != nil {
		t.Fatal(err)
	}
	return NewServer(c), c
}

func do(t *testing.T, s *Server, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func decode(t *testing.T, rec *httptest.ResponseRecorder) map[string]any {
	t.Helper()
	var out map[string]any
	if err := json.NewDecoder(bytes.NewReader(rec.Body.Bytes())).Decode(&out); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return out
}

func TestKVEndpoints(t *testing.T) {
	s, _ := newServer(t)
	rec := do(t, s, "PUT", "/buckets/default/docs/user::1", `{"name": "Dipti"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("put: %d %s", rec.Code, rec.Body)
	}
	cas := decode(t, rec)["cas"].(string)
	rec = do(t, s, "GET", "/buckets/default/docs/user::1", "", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "Dipti") {
		t.Fatalf("get: %d %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-CAS") != cas {
		t.Errorf("cas header: %s vs %s", rec.Header().Get("X-CAS"), cas)
	}
	// CAS conflict.
	do(t, s, "PUT", "/buckets/default/docs/user::1", `{"v": 2}`, nil)
	rec = do(t, s, "PUT", "/buckets/default/docs/user::1", `{"v": 3}`, map[string]string{"X-CAS": cas})
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale cas put: %d", rec.Code)
	}
	// Durability knobs parse.
	rec = do(t, s, "PUT", "/buckets/default/docs/durable?replicate_to=1&persist_to=true", `{"x": 1}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("durable put: %d %s", rec.Code, rec.Body)
	}
	// Delete and 404.
	rec = do(t, s, "DELETE", "/buckets/default/docs/user::1", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d", rec.Code)
	}
	rec = do(t, s, "GET", "/buckets/default/docs/user::1", "", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("get deleted: %d", rec.Code)
	}
	rec = do(t, s, "GET", "/buckets/nope/docs/x", "", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("bad bucket: %d", rec.Code)
	}
}

func TestViewEndpoints(t *testing.T) {
	s, _ := newServer(t)
	rec := do(t, s, "PUT", "/buckets/default/views/profile",
		`{"filter": "doc.name IS NOT MISSING", "key": "doc.name", "value": "doc.email"}`, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("define view: %d %s", rec.Code, rec.Body)
	}
	do(t, s, "PUT", "/buckets/default/docs/borkar123", `{"name": "Dipti", "email": "dipti@couchbase.com"}`, nil)
	do(t, s, "PUT", "/buckets/default/docs/anon", `{"email": "x@y.z"}`, nil)
	// The paper's REST example: ?key="Dipti"&stale=false
	rec = do(t, s, "GET", `/buckets/default/views/profile?key=%22Dipti%22&stale=false`, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("query view: %d %s", rec.Code, rec.Body)
	}
	out := decode(t, rec)
	rows := out["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("rows: %v", out)
	}
	row := rows[0].(map[string]any)
	if row["value"] != "dipti@couchbase.com" || row["id"] != "borkar123" {
		t.Errorf("row: %v", row)
	}
	// Bad key param.
	rec = do(t, s, "GET", `/buckets/default/views/profile?key=notjson`, "", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad key: %d", rec.Code)
	}
	// Unknown view.
	rec = do(t, s, "GET", `/buckets/default/views/nope`, "", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown view: %d", rec.Code)
	}
	// Drop.
	rec = do(t, s, "DELETE", "/buckets/default/views/profile", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("drop view: %d", rec.Code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s, _ := newServer(t)
	for i := 0; i < 5; i++ {
		do(t, s, "PUT", fmt.Sprintf("/buckets/default/docs/p%d", i), fmt.Sprintf(`{"age": %d}`, 20+i), nil)
	}
	rec := do(t, s, "POST", "/query", `{"statement": "CREATE PRIMARY INDEX ON default"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ddl: %d %s", rec.Code, rec.Body)
	}
	rec = do(t, s, "POST", "/query",
		`{"statement": "SELECT COUNT(*) AS n FROM default WHERE age >= $min", "args": {"min": 22}, "scan_consistency": "request_plus"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("select: %d %s", rec.Code, rec.Body)
	}
	out := decode(t, rec)
	results := out["results"].([]any)
	if results[0].(map[string]any)["n"] != 3.0 {
		t.Fatalf("results: %v", out)
	}
	// Parse error surfaces as 400.
	rec = do(t, s, "POST", "/query", `{"statement": "SELEKT"}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad stmt: %d", rec.Code)
	}
	rec = do(t, s, "POST", "/query", `not json`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", rec.Code)
	}
}

func TestFTSEndpoints(t *testing.T) {
	s, _ := newServer(t)
	rec := do(t, s, "PUT", "/buckets/default/fts/content", `{"fields": ["title"]}`, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("define fts: %d %s", rec.Code, rec.Body)
	}
	do(t, s, "PUT", "/buckets/default/docs/d1", `{"title": "distributed systems"}`, nil)
	rec = do(t, s, "GET", "/buckets/default/fts/content?q=distributed&consistent=true", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body)
	}
	out := decode(t, rec)
	if hits := out["hits"].([]any); len(hits) != 1 {
		t.Fatalf("hits: %v", out)
	}
	rec = do(t, s, "GET", "/buckets/default/fts/content?q=dist&kind=prefix&consistent=true", "", nil)
	out = decode(t, rec)
	if hits := out["hits"].([]any); len(hits) != 1 {
		t.Fatalf("prefix hits: %v", out)
	}
}

func TestAdminEndpoints(t *testing.T) {
	s, c := newServer(t)
	rec := do(t, s, "GET", "/cluster", "", nil)
	out := decode(t, rec)
	if out["orchestrator"] != "node0" {
		t.Fatalf("cluster: %v", out)
	}
	if len(out["nodes"].([]any)) != 2 {
		t.Fatalf("nodes: %v", out)
	}
	rec = do(t, s, "GET", "/buckets/default/stats", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	// Failover needs a node param.
	rec = do(t, s, "POST", "/cluster/failover", "", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("failover no node: %d", rec.Code)
	}
	c.Kill("node1")
	rec = do(t, s, "POST", "/cluster/failover?node=node1", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover: %d %s", rec.Code, rec.Body)
	}
	rec = do(t, s, "POST", "/cluster/rebalance", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("rebalance: %d %s", rec.Code, rec.Body)
	}
}

func TestAnalyticsEndpoints(t *testing.T) {
	s, _ := newServer(t)
	do(t, s, "PUT", "/buckets/default/docs/c1", `{"type": "c", "cid": 1}`, nil)
	do(t, s, "PUT", "/buckets/default/docs/o1", `{"type": "o", "customer": 1, "total": 7}`, nil)
	rec := do(t, s, "POST", "/buckets/default/analytics/enable", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("enable: %d %s", rec.Code, rec.Body)
	}
	rec = do(t, s, "POST", "/buckets/default/analytics/query",
		`{"statement": "SELECT c.cid, o.total FROM default o JOIN default c ON o.customer = c.cid WHERE o.type = \"o\"", "consistent": true}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	out := decode(t, rec)
	results := out["results"].([]any)
	if len(results) != 1 || results[0].(map[string]any)["total"] != 7.0 {
		t.Fatalf("results: %v", out)
	}
	// DML rejected.
	rec = do(t, s, "POST", "/buckets/default/analytics/query",
		`{"statement": "DELETE FROM default"}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("dml: %d", rec.Code)
	}
}

func TestPutWithExpiry(t *testing.T) {
	s, _ := newServer(t)
	past := time.Now().Unix() - 5
	rec := do(t, s, "PUT", fmt.Sprintf("/buckets/default/docs/gone?expiry=%d", past), `{"x":1}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("put with expiry: %d", rec.Code)
	}
	rec = do(t, s, "GET", "/buckets/default/docs/gone", "", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("expired doc over rest: %d", rec.Code)
	}
}
