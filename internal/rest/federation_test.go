package rest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"couchgo/internal/trace"
)

// fakeFed wires two in-process rest.Servers into a two-"process"
// federation: fetches for the peer delegate to its Observe, exactly
// what the wire's OpFederate handler does, minus the socket.
type fakeFed struct {
	self  string
	peers map[string]*Server // node -> peer server (self excluded)
	nodes []string
	errs  map[string]error // node -> forced fetch failure
}

func (f *fakeFed) Self() string    { return f.self }
func (f *fakeFed) Nodes() []string { return f.nodes }
func (f *fakeFed) Fetch(_ context.Context, node, domain string, payload []byte) ([]byte, error) {
	if err := f.errs[node]; err != nil {
		return nil, err
	}
	p, ok := f.peers[node]
	if !ok {
		return nil, fmt.Errorf("no such node %s", node)
	}
	return p.Observe(domain, payload)
}

func TestClusterEndpointsSingleProcess(t *testing.T) {
	s, _ := newServer(t) // fed nil: one-node degenerate cluster

	rec := do(t, s, "GET", "/cluster/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d %s", rec.Code, rec.Body)
	}
	out := decode(t, rec)
	nodes, _ := out["nodes"].(map[string]any)
	local, _ := nodes["local"].(map[string]any)
	if local == nil {
		t.Fatalf("no local node payload: %v", out)
	}
	if local["node"] != "local" {
		t.Fatalf("payload not node-labeled: %v", local["node"])
	}
	if _, ok := local["metrics"].(map[string]any); !ok {
		t.Fatal("local payload missing metrics snapshot")
	}

	rec = do(t, s, "GET", "/cluster/health", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("health: %d %s", rec.Code, rec.Body)
	}
	if decode(t, rec)["status"] != "ok" {
		t.Fatalf("health status: %s", rec.Body)
	}

	rec = do(t, s, "GET", "/cluster/events", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("events: %d %s", rec.Code, rec.Body)
	}
}

func TestClusterFanoutAndWorstOf(t *testing.T) {
	a, _ := newServer(t)
	b, _ := newServer(t)
	a.SetNodeID("nodeA")
	b.SetNodeID("nodeB")
	fed := &fakeFed{
		self:  "nodeA",
		peers: map[string]*Server{"nodeB": b},
		nodes: []string{"nodeA", "nodeB", "nodeC"},
		errs:  map[string]error{"nodeC": fmt.Errorf("dial nodeC: connection refused")},
	}
	a.SetFederation(fed)

	// Metrics: both reachable members answer with their own label, the
	// unreachable one lands in errors.
	rec := do(t, a, "GET", "/cluster/metrics", "", nil)
	out := decode(t, rec)
	nodes, _ := out["nodes"].(map[string]any)
	for _, want := range []string{"nodeA", "nodeB"} {
		nm, _ := nodes[want].(map[string]any)
		if nm == nil || nm["node"] != want {
			t.Fatalf("node %s payload missing or mislabeled: %v", want, nodes)
		}
	}
	errs, _ := out["errors"].(map[string]any)
	if _, ok := errs["nodeC"]; !ok {
		t.Fatalf("unreachable node not reported: %v", out)
	}

	// Health: an unreachable member makes the roll-up critical → 503.
	rec = do(t, a, "GET", "/cluster/health", "", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("health with dead member: %d, want 503", rec.Code)
	}
	if decode(t, rec)["status"] != "critical" {
		t.Fatalf("worst-of status: %s", rec.Body)
	}

	// Events: merged tail entries carry their origin.
	rec = do(t, a, "GET", "/cluster/events?limit=5", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("events: %d %s", rec.Code, rec.Body)
	}
	var evOut struct {
		Events []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &evOut); err != nil {
		t.Fatal(err)
	}
	for _, e := range evOut.Events {
		if o, _ := e["origin"].(string); o != "nodeA" && o != "nodeB" {
			t.Fatalf("event without origin tag: %v", e)
		}
	}
}

func TestTraceConfigStrictAndBroadcast(t *testing.T) {
	s, _ := newServer(t)
	t.Cleanup(func() {
		trace.Default.SetRate(0)
		trace.Default.Clear()
	})

	// Unknown fields are a 400 naming the field, nothing applied.
	trace.Default.SetRate(0)
	rec := do(t, s, "POST", "/traces/config", `{"rate": 5, "thresolds": {}}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %s, want 400", rec.Code, rec.Body)
	}
	if msg, _ := decode(t, rec)["error"].(string); !strings.Contains(msg, "thresolds") {
		t.Fatalf("400 does not name the field: %q", msg)
	}
	if trace.Default.Rate() != 0 {
		t.Fatalf("rejected config applied rate %d", trace.Default.Rate())
	}

	// Valid config applies and, with federation, broadcasts to peers.
	b, _ := newServer(t)
	b.SetNodeID("nodeB")
	fetched := false
	s.SetFederation(&fedSpy{fakeFed{
		self:  "nodeA",
		peers: map[string]*Server{"nodeB": b},
		nodes: []string{"nodeA", "nodeB"},
	}, &fetched})
	rec = do(t, s, "POST", "/traces/config", `{"rate": 16}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("valid config: %d %s", rec.Code, rec.Body)
	}
	out := decode(t, rec)
	if int(out["rate"].(float64)) != 16 {
		t.Fatalf("rate in response: %v", out["rate"])
	}
	cluster, _ := out["cluster"].(map[string]any)
	if cluster["nodeB"] != "ok" {
		t.Fatalf("broadcast result: %v", out["cluster"])
	}
	if !fetched {
		t.Fatal("config never reached the peer")
	}
}

type fedSpy struct {
	fakeFed
	hit *bool
}

func (f *fedSpy) Fetch(ctx context.Context, node, domain string, payload []byte) ([]byte, error) {
	if domain == "trace-config" {
		*f.hit = true
	}
	return f.fakeFed.Fetch(ctx, node, domain, payload)
}

func TestStitchedTraceEndpoint(t *testing.T) {
	s, _ := newServer(t)
	s.SetNodeID("nodeA")
	s.SetFederation(&fakeFed{self: "nodeA", peers: map[string]*Server{}, nodes: []string{"nodeA"}})
	trace.Default.SetRate(1)
	t.Cleanup(func() {
		trace.Default.SetRate(0)
		trace.Default.Clear()
	})

	rec := do(t, s, "PUT", "/buckets/default/docs/traced::1", `{"v":1}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("put: %d %s", rec.Code, rec.Body)
	}
	id := rec.Header().Get("X-Trace-Id")
	if id == "" {
		t.Fatal("sampled write returned no X-Trace-Id")
	}

	rec = do(t, s, "GET", "/traces/"+id, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stitched trace: %d %s", rec.Code, rec.Body)
	}
	out := decode(t, rec)
	if out["op"] != "rest:put" {
		t.Fatalf("root op: %v", out["op"])
	}
	nodes, _ := out["nodes"].([]any)
	if len(nodes) != 1 || nodes[0] != "nodeA" {
		t.Fatalf("contributing nodes: %v", nodes)
	}
	spans, _ := out["spans"].(map[string]any)
	if spans == nil || spans["name"] != "rest:put" || spans["node"] != "nodeA" {
		t.Fatalf("stitched root span: %v", spans)
	}

	// Unknown ID fans out, finds nothing anywhere, 404s.
	rec = do(t, s, "GET", "/traces/999999999", "", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing trace: %d %s", rec.Code, rec.Body)
	}
}
