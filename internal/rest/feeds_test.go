package rest

import (
	"net/http"
	"testing"
)

func TestFeedsEndpoint(t *testing.T) {
	s, c := newServer(t)
	// Give the bucket at least one feed: a view subscribes per node.
	rec := do(t, s, "PUT", "/buckets/default/views/byName",
		`{"key": "name"}`, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("define view: %d %s", rec.Code, rec.Body)
	}

	rec = do(t, s, "GET", "/buckets/default/feeds", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("feeds: %d %s", rec.Code, rec.Body)
	}
	body := decode(t, rec)
	feeds, ok := body["feeds"].([]any)
	if !ok {
		t.Fatalf("feeds payload = %v", body)
	}
	views := 0
	for _, f := range feeds {
		st := f.(map[string]any)
		if st["service"] == "views" {
			views++
			if st["node"] == "" || st["node"] == nil {
				t.Fatalf("view feed missing node annotation: %v", st)
			}
		}
	}
	if views != 2 { // one view feed per data node
		t.Fatalf("view feeds = %d, want 2: %v", feeds, views)
	}

	// Service filter narrows to one service.
	rec = do(t, s, "GET", "/buckets/default/feeds/views", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("feeds/views: %d %s", rec.Code, rec.Body)
	}
	for _, f := range decode(t, rec)["feeds"].([]any) {
		if svc := f.(map[string]any)["service"]; svc != "views" {
			t.Fatalf("filtered feeds leaked service %v", svc)
		}
	}

	// A valid service with no subscriptions is an empty 200 list, not
	// an error.
	rec = do(t, s, "GET", "/buckets/default/feeds/fts", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("feeds/fts: %d %s", rec.Code, rec.Body)
	}
	if feeds := decode(t, rec)["feeds"].([]any); len(feeds) != 0 {
		t.Fatalf("fts feeds = %v, want empty", feeds)
	}

	// Unknown bucket and unknown service are 404s, not empty 200s.
	rec = do(t, s, "GET", "/buckets/nope/feeds", "", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown bucket: %d %s", rec.Code, rec.Body)
	}
	rec = do(t, s, "GET", "/buckets/default/feeds/bogus", "", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown service: %d %s", rec.Code, rec.Body)
	}
	_ = c
}
