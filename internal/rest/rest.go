// Package rest exposes a couchgo cluster over HTTP: the admin surface
// (cluster map, rebalance, failover), the KV document API, view
// queries (§3.1.2's REST API with its stale parameter), the N1QL query
// service endpoint, and full-text search. cmd/cbserver serves it;
// cmd/cbq talks to the query endpoint.
package rest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"couchgo/internal/analytics"
	"couchgo/internal/cache"
	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/executor"
	"couchgo/internal/feed"
	"couchgo/internal/fts"
	"couchgo/internal/health"
	"couchgo/internal/trace"
	"couchgo/internal/views"
)

// Server is the HTTP facade over a cluster.
type Server struct {
	c      *core.Cluster
	mux    *http.ServeMux
	health *health.Watchdog

	// kvClients overrides the per-bucket document client — cbserver's
	// network mode installs a hybrid smart client here (loopback to
	// the local node, sockets to peers) so REST document requests
	// route cluster-wide. Set before serving; read-only afterwards.
	kvClients map[string]*core.Client
	// transportStats, when set, contributes a "transport" block to
	// /stats/detail (wire connections, bytes, NotMyVBucket count).
	transportStats func() any
	// nodeID labels this process's payloads in federated views; fed,
	// when set, fans /cluster/* and stitched-trace fetches out to the
	// cluster's members (see federation.go).
	nodeID string
	fed    Federation
}

// NewServer builds the handler tree for a cluster.
func NewServer(c *core.Cluster) *Server {
	s := &Server{c: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /cluster", s.handleCluster)
	s.mux.HandleFunc("POST /cluster/rebalance", s.handleRebalance)
	s.mux.HandleFunc("POST /cluster/failover", s.handleFailover)
	s.mux.HandleFunc("GET /buckets/{bucket}/stats", s.handleStats)
	s.mux.HandleFunc("GET /buckets/{bucket}/feeds", s.handleFeeds)
	s.mux.HandleFunc("GET /buckets/{bucket}/feeds/{service}", s.handleFeeds)
	s.mux.HandleFunc("GET /buckets/{bucket}/docs/{key}", s.handleGet)
	s.mux.HandleFunc("PUT /buckets/{bucket}/docs/{key}", s.handlePut)
	s.mux.HandleFunc("DELETE /buckets/{bucket}/docs/{key}", s.handleDelete)
	s.mux.HandleFunc("PUT /buckets/{bucket}/views/{view}", s.handleDefineView)
	s.mux.HandleFunc("GET /buckets/{bucket}/views/{view}", s.handleQueryView)
	s.mux.HandleFunc("DELETE /buckets/{bucket}/views/{view}", s.handleDropView)
	s.mux.HandleFunc("PUT /buckets/{bucket}/fts/{index}", s.handleDefineFTS)
	s.mux.HandleFunc("GET /buckets/{bucket}/fts/{index}", s.handleSearch)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /buckets/{bucket}/analytics/enable", s.handleAnalyticsEnable)
	s.mux.HandleFunc("POST /buckets/{bucket}/analytics/query", s.handleAnalyticsQuery)
	// /metrics registers without a method verb: Prometheus scrapers get
	// an explicit 405 + Allow header on non-GET, not the mux's generic
	// one, and the handler owns the exposition Content-Type.
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /stats/detail", s.handleStatsDetail)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.HandleFunc("GET /events/stream", s.handleEventsStream)
	s.mux.HandleFunc("GET /health", s.handleHealth)
	s.mux.HandleFunc("GET /traces", s.handleTraces)
	s.mux.HandleFunc("GET /traces/{id}", s.handleTrace)
	s.mux.HandleFunc("POST /traces/config", s.handleTraceConfig)
	s.mux.HandleFunc("GET /cluster/metrics", s.handleClusterMetrics)
	s.mux.HandleFunc("GET /cluster/health", s.handleClusterHealth)
	s.mux.HandleFunc("GET /cluster/events", s.handleClusterEvents)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, cache.ErrKeyNotFound), errors.Is(err, core.ErrNoSuchBucket),
		errors.Is(err, views.ErrNoSuchView), errors.Is(err, fts.ErrNoSuchIndex):
		status = http.StatusNotFound
	case errors.Is(err, cache.ErrCASMismatch), errors.Is(err, cache.ErrKeyExists),
		errors.Is(err, cache.ErrLocked):
		status = http.StatusConflict
	case errors.Is(err, core.ErrNoQueryNode), errors.Is(err, core.ErrNoIndexNode):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"error": err.Error()})
}

// --- admin ---

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var nodes []map[string]any
	for _, n := range s.c.Nodes() {
		nodes = append(nodes, map[string]any{
			"id":       string(n.ID()),
			"services": n.Services().String(),
			"alive":    n.Alive(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"orchestrator": string(s.c.Orchestrator()),
		"nodes":        nodes,
	})
}

func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	if err := s.c.Rebalance(); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "rebalanced"})
}

func (s *Server) handleFailover(w http.ResponseWriter, r *http.Request) {
	node := r.URL.Query().Get("node")
	if node == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "node parameter required"})
		return
	}
	if err := s.c.Failover(cmap.NodeID(node)); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "failed over", "node": node})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	bucket := r.PathValue("bucket")
	if !s.c.HasBucket(bucket) {
		writeErr(w, core.ErrNoSuchBucket)
		return
	}
	stats := s.c.Stats(bucket)
	var out []map[string]any
	for _, st := range stats {
		out = append(out, map[string]any{
			"node":        string(st.ID),
			"alive":       st.Alive,
			"active_vbs":  st.ActiveVBs,
			"replica_vbs": st.ReplicaVBs,
			"items":       st.Items,
			"mem_used":    st.MemUsed,
			"tombstones":  st.Tombstones,
			"queue_depth": st.QueueDepth,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"bucket": bucket, "nodes": out})
}

// feedServices whitelists the {service} path segment of the feeds
// endpoint; anything else is a 404, not an empty 200.
var feedServices = map[string]bool{
	"gsi": true, "views": true, "fts": true, "analytics": true,
}

func (s *Server) handleFeeds(w http.ResponseWriter, r *http.Request) {
	bucket := r.PathValue("bucket")
	stats, err := s.c.FeedStats(bucket)
	if err != nil {
		writeErr(w, err) // unknown bucket -> 404
		return
	}
	if service := r.PathValue("service"); service != "" {
		if !feedServices[service] {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "rest: no such feed service " + service})
			return
		}
		filtered := stats[:0]
		for _, st := range stats {
			if st.Service == service {
				filtered = append(filtered, st)
			}
		}
		stats = filtered
	}
	if stats == nil {
		stats = []feed.Stat{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"bucket": bucket, "feeds": stats})
}

// --- KV ---

// SetKVClient routes a bucket's document endpoints through cl instead
// of an in-process OpenBucket client. Must be called before serving.
func (s *Server) SetKVClient(bucket string, cl *core.Client) {
	if s.kvClients == nil {
		s.kvClients = map[string]*core.Client{}
	}
	s.kvClients[bucket] = cl
}

// SetTransportStats adds a wire-transport block to /stats/detail.
// Must be called before serving.
func (s *Server) SetTransportStats(fn func() any) { s.transportStats = fn }

func (s *Server) client(bucket string) (*core.Client, error) {
	if cl, ok := s.kvClients[bucket]; ok {
		return cl, nil
	}
	return s.c.OpenBucket(bucket)
}

// startDocSpan samples a REST-level root span for a document op.
// When sampled, the trace ID goes back in X-Trace-Id — the handle a
// client feeds to GET /traces/{id} — and the span rides the request
// ctx so the wire client propagates it to whichever node serves the
// key (and onward to replicas).
func startDocSpan(w http.ResponseWriter, r *http.Request, name string) (*http.Request, *trace.Span) {
	ctx, span := trace.Start(r.Context(), name)
	if span == nil {
		return r, nil
	}
	span.Annotate("key", r.PathValue("key"))
	w.Header().Set("X-Trace-Id", strconv.FormatUint(span.Trace().ID, 10))
	return r.WithContext(ctx), span
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	cl, err := s.client(r.PathValue("bucket"))
	if err != nil {
		writeErr(w, err)
		return
	}
	r, span := startDocSpan(w, r, "rest:get")
	defer span.End()
	it, err := cl.Get(r.Context(), r.PathValue("key"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-CAS", strconv.FormatUint(it.CAS, 10))
	w.WriteHeader(http.StatusOK)
	w.Write(it.Value)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	cl, err := s.client(r.PathValue("bucket"))
	if err != nil {
		writeErr(w, err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 20<<20))
	if err != nil {
		writeErr(w, err)
		return
	}
	var casCheck uint64
	if h := r.Header.Get("X-CAS"); h != "" {
		casCheck, err = strconv.ParseUint(h, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad X-CAS header"})
			return
		}
	}
	dur := core.DurabilityOptions{}
	if n, _ := strconv.Atoi(r.URL.Query().Get("replicate_to")); n > 0 {
		dur.ReplicateTo = n
	}
	if r.URL.Query().Get("persist_to") == "true" {
		dur.PersistTo = true
	}
	var expiry int64
	if e := r.URL.Query().Get("expiry"); e != "" {
		expiry, _ = strconv.ParseInt(e, 10, 64)
	}
	r, span := startDocSpan(w, r, "rest:put")
	defer span.End()
	it, err := cl.SetWithOptions(r.Context(), r.PathValue("key"), body, 0, expiry, casCheck, dur)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"cas": strconv.FormatUint(it.CAS, 10), "seqno": it.Seqno})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	cl, err := s.client(r.PathValue("bucket"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var casCheck uint64
	if h := r.Header.Get("X-CAS"); h != "" {
		casCheck, _ = strconv.ParseUint(h, 10, 64)
	}
	r, span := startDocSpan(w, r, "rest:delete")
	defer span.End()
	if err := cl.Delete(r.Context(), r.PathValue("key"), casCheck); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "deleted"})
}

// --- views ---

func (s *Server) handleDefineView(w http.ResponseWriter, r *http.Request) {
	var def struct {
		Filter string `json:"filter"`
		Key    string `json:"key"`
		Value  string `json:"value"`
		Reduce string `json:"reduce"`
	}
	if err := json.NewDecoder(r.Body).Decode(&def); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	err := s.c.DefineView(r.PathValue("bucket"), views.Definition{
		Name:   r.PathValue("view"),
		Map:    views.MapSpec{Filter: def.Filter, Key: def.Key, Value: def.Value},
		Reduce: def.Reduce,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"status": "created"})
}

func (s *Server) handleDropView(w http.ResponseWriter, r *http.Request) {
	if err := s.c.DropView(r.PathValue("bucket"), r.PathValue("view")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "dropped"})
}

// handleQueryView implements the §3.1.2 REST query surface, e.g.
// ?key="Dipti"&stale=false.
func (s *Server) handleQueryView(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opts := views.QueryOptions{}
	parseJSONParam := func(name string) (any, bool, error) {
		raw := q.Get(name)
		if raw == "" {
			return nil, false, nil
		}
		var v any
		if err := json.Unmarshal([]byte(raw), &v); err != nil {
			return nil, false, fmt.Errorf("bad %s parameter: %w", name, err)
		}
		return v, true, nil
	}
	var err error
	if opts.Key, opts.HasKey, err = parseJSONParam("key"); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if opts.StartKey, opts.HasStart, err = parseJSONParam("startkey"); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if opts.EndKey, opts.HasEnd, err = parseJSONParam("endkey"); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if keysRaw, ok, err := parseJSONParam("keys"); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	} else if ok {
		if arr, isArr := keysRaw.([]any); isArr {
			opts.Keys = arr
		}
	}
	opts.InclusiveEnd = q.Get("inclusive_end") != "false"
	opts.Descending = q.Get("descending") == "true"
	opts.Reduce = q.Get("reduce") == "true"
	opts.Group = q.Get("group") == "true"
	if n, _ := strconv.Atoi(q.Get("limit")); n > 0 {
		opts.Limit = n
	}
	if n, _ := strconv.Atoi(q.Get("skip")); n > 0 {
		opts.Skip = n
	}
	switch q.Get("stale") {
	case "false":
		opts.Stale = views.StaleFalse
	case "ok":
		opts.Stale = views.StaleOK
	default:
		opts.Stale = views.StaleUpdateAfter
	}
	rows, err := s.c.QueryView(r.Context(), r.PathValue("bucket"), r.PathValue("view"), opts)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]map[string]any, 0, len(rows))
	for _, row := range rows {
		m := map[string]any{"key": row.Key, "value": row.Value}
		if row.ID != "" {
			m["id"] = row.ID
		}
		out = append(out, m)
	}
	writeJSON(w, http.StatusOK, map[string]any{"total_rows": len(out), "rows": out})
}

// --- N1QL ---

// handleQuery is the query service endpoint: POST {"statement": "...",
// "args": {...}, "scan_consistency": "request_plus", "profile":
// "timings"}.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Statement       string         `json:"statement"`
		Args            map[string]any `json:"args"`
		ScanConsistency string         `json:"scan_consistency"`
		Profile         string         `json:"profile"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	opts := executor.Options{Params: req.Args, Ctx: r.Context()}
	if strings.EqualFold(req.ScanConsistency, "request_plus") {
		opts.Consistency = executor.RequestPlus
	}
	profiling := strings.EqualFold(req.Profile, "timings")
	if profiling {
		opts.Prof = executor.NewProfile()
	}
	t0 := time.Now()
	res, err := s.c.Query(req.Statement, opts)
	if err != nil {
		// Topology problems are the server's fault, not the request's.
		if errors.Is(err, core.ErrNoQueryNode) || errors.Is(err, core.ErrNoIndexNode) {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	out := map[string]any{
		"status":        res.Status,
		"results":       res.Rows,
		"mutationCount": res.MutationCount,
	}
	if profiling {
		out["profile"] = map[string]any{
			"elapsedTime":      time.Since(t0).String(),
			"executionTimings": res.Profile,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// --- tracing ---

// handleTraces lists retained traces, newest first. Filter with
// ?op=kv:set (exact root-op match) or ?slow=true.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	sums := trace.Default.Traces()
	op := r.URL.Query().Get("op")
	// Root ops are always "service:verb" (kv:set, query:exec, ...); a
	// filter without the colon can never match, so reject it loudly
	// instead of returning a confusingly empty list.
	if op != "" && !strings.Contains(op, ":") {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("bad op filter %q: want service:verb", op)})
		return
	}
	slowOnly := r.URL.Query().Get("slow") == "true"
	out := make([]trace.Summary, 0, len(sums))
	for _, t := range sums {
		if op != "" && t.Op != op {
			continue
		}
		if slowOnly && !t.Slow {
			continue
		}
		out = append(out, t)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"rate":   trace.Default.Rate(),
		"traces": out,
	})
}

// handleTrace returns one trace's full span tree. With federation
// wired, any node answers for the whole cluster: the trace's
// portions are fetched from every member and stitched into one
// cross-process tree, so the client's write shows its server, DCP,
// and replica spans regardless of which node it asks.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad trace id"})
		return
	}
	if s.fed != nil {
		out, errs := s.stitchedTrace(r.Context(), id)
		if out == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"error":  "no such trace on any reachable member (evicted or never sampled)",
				"errors": errs,
			})
			return
		}
		if len(errs) > 0 {
			out["errors"] = errs
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	t := trace.Default.Get(id)
	if t == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no such trace (evicted or never sampled)"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":          id,
		"op":          t.Op,
		"start":       t.Start,
		"duration_us": t.Duration().Microseconds(),
		"spans":       t.Tree(),
	})
}

// --- analytics (§6.2) ---

func (s *Server) handleAnalyticsEnable(w http.ResponseWriter, r *http.Request) {
	if err := s.c.EnableAnalytics(r.PathValue("bucket")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "enabled"})
}

func (s *Server) handleAnalyticsQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Statement  string         `json:"statement"`
		Args       map[string]any `json:"args"`
		Consistent bool           `json:"consistent"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	bucket := r.PathValue("bucket")
	opts := analytics.QueryOptions{Params: req.Args}
	if req.Consistent {
		opts.WaitSeqnos = s.c.AnalyticsConsistencyVector(bucket)
	}
	rows, err := s.c.AnalyticsQuery(bucket, req.Statement, opts)
	if err != nil {
		if errors.Is(err, core.ErrNoSuchBucket) {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "success", "results": rows})
}

// --- FTS ---

func (s *Server) handleDefineFTS(w http.ResponseWriter, r *http.Request) {
	var def struct {
		Fields []string `json:"fields"`
	}
	if err := json.NewDecoder(r.Body).Decode(&def); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	h, err := s.c.FTS(r.PathValue("bucket"))
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := h.Engine().Define(fts.IndexDef{Name: r.PathValue("index"), Fields: def.Fields}); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"status": "created"})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	h, err := s.c.FTS(r.PathValue("bucket"))
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	text := q.Get("q")
	limit, _ := strconv.Atoi(q.Get("limit"))
	opts := fts.SearchOptions{Limit: limit}
	if q.Get("consistent") == "true" {
		opts.WaitSeqnos = h.ConsistencyVector()
	}
	var hits []fts.Hit
	switch q.Get("kind") {
	case "prefix":
		hits, err = h.Engine().SearchPrefix(r.PathValue("index"), text, opts)
	case "phrase":
		hits, err = h.Engine().SearchPhrase(r.PathValue("index"), text, opts)
	default:
		hits, err = h.Engine().SearchTerm(r.PathValue("index"), text, opts)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"hits": hits})
}
