package rest

import (
	"net/http"
	"strconv"
	"time"

	"couchgo/internal/events"
	"couchgo/internal/health"
)

// SetHealth attaches a watchdog so GET /health reports real check
// states. Without one the endpoint degrades to a liveness probe.
func (s *Server) SetHealth(w *health.Watchdog) { s.health = w }

// handleEvents serves the journal: GET /events?type=&severity=&since=
// &limit=. All filters are optional; bad values are the client's
// problem, not silently ignored.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var f events.Filter
	if v := q.Get("type"); v != "" {
		t := events.Type(v)
		if !events.ValidType(t) {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "unknown event type " + v})
			return
		}
		f.Type = t
	}
	if v := q.Get("severity"); v != "" {
		sev, ok := events.ParseSeverity(v)
		if !ok {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "unknown severity " + v})
			return
		}
		f.MinSeverity = sev
	}
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad since parameter"})
			return
		}
		f.SinceSeq = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad limit parameter"})
			return
		}
		f.Limit = n
	}
	evs := events.Default.Events(f)
	if evs == nil {
		evs = []events.Event{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"events":   evs,
		"last_seq": events.Default.LastSeq(),
	})
}

// handleEventsStream long-polls the journal: GET /events/stream?since=
// &timeout=. It returns as soon as at least one event newer than since
// exists (draining whatever else is immediately available), or an
// empty list at the timeout. Clients loop, feeding last_seq back as
// since — cbtop's event tail runs on this.
func (s *Server) handleEventsStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since := events.Default.LastSeq()
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad since parameter"})
			return
		}
		since = n
	}
	timeout := 30 * time.Second
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad timeout parameter"})
			return
		}
		if d > time.Minute {
			d = time.Minute
		}
		timeout = d
	}

	respond := func(evs []events.Event) {
		if evs == nil {
			evs = []events.Event{}
		}
		last := since
		for _, e := range evs {
			if e.Seq > last {
				last = e.Seq
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"events": evs, "last_seq": last})
	}

	// Subscribe before reading the backlog: an event published between
	// the two shows up in the backlog read, and one published after is
	// caught by the subscription — no gap either way.
	sub := events.Default.Subscribe(64)
	defer sub.Close()
	if backlog := events.Default.Events(events.Filter{SinceSeq: since}); len(backlog) > 0 {
		respond(backlog)
		return
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case e := <-sub.C():
			if e.Seq <= since {
				continue
			}
			evs := []events.Event{e}
			// Drain whatever else is already buffered so a burst comes
			// back as one response.
			for {
				select {
				case more := <-sub.C():
					if more.Seq > since {
						evs = append(evs, more)
					}
					continue
				default:
				}
				break
			}
			respond(evs)
			return
		case <-timer.C:
			respond(nil)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealth reports the watchdog's published view. The status code
// carries the overall verdict — 503 only when some check is critical —
// so load balancers and scripts can use it without parsing the body.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.health == nil {
		// No watchdog attached: a liveness probe is all we can offer.
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"checks": []health.CheckStatus{},
			"note":   "no watchdog attached; liveness only",
		})
		return
	}
	overall := s.health.State()
	status := http.StatusOK
	if overall == health.Critical {
		status = http.StatusServiceUnavailable
	}
	checks := s.health.Snapshot()
	if checks == nil {
		checks = []health.CheckStatus{}
	}
	writeJSON(w, status, map[string]any{
		"status": overall.String(),
		"checks": checks,
	})
}
