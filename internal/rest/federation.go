// Cluster-wide observability: every node exposes its local metrics,
// health, events, and trace portions through Observe (served to peers
// over the KV wire as OpFederate requests), and the /cluster/*
// endpoints on any node fan the same fetches out to every member and
// aggregate — so one HTTP request against one node answers for the
// whole cluster.

package rest

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"couchgo/internal/buildinfo"
	"couchgo/internal/events"
	"couchgo/internal/health"
	"couchgo/internal/metrics"
	"couchgo/internal/trace"
)

// Federation is the transport-provided view of the cluster's members
// for observability fan-out. Self is this node's process identity
// (its KV address); Fetch retrieves one named domain from a peer over
// the wire. transport.(*ClusterNode).Federation() implements it; nil
// means single-process mode and the /cluster/* endpoints degrade to a
// one-node cluster.
type Federation interface {
	Self() string
	Nodes() []string
	Fetch(ctx context.Context, node, domain string, payload []byte) ([]byte, error)
}

// SetNodeID labels this node's own series in federated responses.
// Must be called before serving; defaults to "local".
func (s *Server) SetNodeID(id string) { s.nodeID = id }

// SetFederation attaches the cluster fan-out surface. Must be called
// before serving.
func (s *Server) SetFederation(f Federation) { s.fed = f }

// node is the label for this process's own payloads.
func (s *Server) node() string {
	if s.fed != nil {
		return s.fed.Self()
	}
	if s.nodeID != "" {
		return s.nodeID
	}
	return "local"
}

// fanoutTimeout bounds each per-peer observability fetch; a stuck
// member turns into an entry in "errors", not a hung aggregate
// endpoint.
const fanoutTimeout = 3 * time.Second

// Observe serves one observability domain for this node. It is the
// callback behind the wire's OpFederate opcode (peers calling in) and
// the local half of every /cluster/* aggregate. The payload is the
// domain's request body (filters, trace ID, config JSON); the reply
// is always a JSON object labeled with this node's identity.
func (s *Server) Observe(domain string, payload []byte) ([]byte, error) {
	switch domain {
	case "metrics":
		return json.Marshal(s.nodeMetrics())
	case "health":
		return json.Marshal(s.nodeHealth())
	case "events":
		return s.observeEvents(payload)
	case "trace":
		return s.observeTrace(payload)
	case "trace-config":
		return s.observeTraceConfig(payload)
	}
	return nil, fmt.Errorf("rest: unknown observe domain %q", domain)
}

// nodeMetrics is one node's slice of the federated metrics view: the
// full registry snapshot (KV cache ops, wire per-opcode latency
// histograms, transport counters) plus the scrape-time transport
// block.
func (s *Server) nodeMetrics() map[string]any {
	out := map[string]any{
		"node":           s.node(),
		"metrics":        metrics.Default.Snapshot(),
		"uptime_seconds": time.Since(processStart).Seconds(),
		"version":        buildinfo.Version,
		"go":             runtime.Version(),
	}
	if s.transportStats != nil {
		out["transport"] = s.transportStats()
	}
	// DCP replication lag per bucket/stream, summed over local
	// vBuckets — the federated view shows each node's own backlog.
	lags := map[string]uint64{}
	for _, b := range s.c.BucketNames() {
		for _, st := range s.c.Stats(b) {
			for name, lag := range st.DCPLags {
				lags[b+"/"+name] += lag
			}
		}
	}
	if len(lags) > 0 {
		out["dcp_lag"] = lags
	}
	return out
}

func (s *Server) nodeHealth() map[string]any {
	out := map[string]any{"node": s.node()}
	if s.health == nil {
		out["status"] = health.OK.String()
		out["checks"] = []health.CheckStatus{}
		return out
	}
	checks := s.health.Snapshot()
	if checks == nil {
		checks = []health.CheckStatus{}
	}
	out["status"] = s.health.State().String()
	out["checks"] = checks
	return out
}

// eventsQuery is the events domain's request payload; zero values
// mean "no filter".
type eventsQuery struct {
	Since    uint64 `json:"since,omitempty"`
	Limit    int    `json:"limit,omitempty"`
	Type     string `json:"type,omitempty"`
	Severity string `json:"severity,omitempty"`
}

func (s *Server) observeEvents(payload []byte) ([]byte, error) {
	var q eventsQuery
	if len(payload) > 0 {
		if err := json.Unmarshal(payload, &q); err != nil {
			return nil, fmt.Errorf("rest: bad events query: %w", err)
		}
	}
	f := events.Filter{SinceSeq: q.Since, Limit: q.Limit}
	if q.Type != "" {
		t := events.Type(q.Type)
		if !events.ValidType(t) {
			return nil, fmt.Errorf("rest: unknown event type %q", q.Type)
		}
		f.Type = t
	}
	if q.Severity != "" {
		sev, ok := events.ParseSeverity(q.Severity)
		if !ok {
			return nil, fmt.Errorf("rest: unknown severity %q", q.Severity)
		}
		f.MinSeverity = sev
	}
	evs := events.Default.Events(f)
	if evs == nil {
		evs = []events.Event{}
	}
	return json.Marshal(map[string]any{
		"node":     s.node(),
		"events":   evs,
		"last_seq": events.Default.LastSeq(),
	})
}

// tracePortions is the trace domain's reply: every locally retained
// portion of the requested trace (the live local trace, a foreign
// portion adopted off the wire, or both when a node dialed itself).
type tracePortions struct {
	Node     string         `json:"node"`
	Portions []trace.Export `json:"portions"`
}

func (s *Server) observeTrace(payload []byte) ([]byte, error) {
	var q struct {
		ID uint64 `json:"id"`
	}
	if err := json.Unmarshal(payload, &q); err != nil {
		return nil, fmt.Errorf("rest: bad trace query: %w", err)
	}
	node := s.node()
	out := tracePortions{Node: node, Portions: []trace.Export{}}
	for _, t := range trace.Default.Portions(q.ID) {
		out.Portions = append(out.Portions, t.Export(node))
	}
	return json.Marshal(out)
}

func (s *Server) observeTraceConfig(payload []byte) ([]byte, error) {
	cfg, err := trace.Default.ApplyConfigJSON(payload)
	if err != nil {
		return nil, err
	}
	publishTraceConfigEvent(cfg)
	return json.Marshal(traceConfigState(s.node()))
}

func publishTraceConfigEvent(cfg trace.Config) {
	e := events.New(events.Config, events.SevInfo, "trace config changed")
	e.Service = "rest"
	e.Fields = map[string]string{"rate": strconv.Itoa(trace.Default.Rate())}
	if cfg.Clear {
		e.Fields["cleared"] = "true"
	}
	events.Default.Publish(e)
}

func traceConfigState(node string) map[string]any {
	thresholds := map[string]string{}
	for op, d := range trace.Default.Thresholds() {
		thresholds[op] = d.String()
	}
	return map[string]any{
		"node":       node,
		"rate":       trace.Default.Rate(),
		"thresholds": thresholds,
	}
}

// --- fan-out ---

// members is the fan-out target list: the cluster map's nodes, or
// just this process when federation isn't wired.
func (s *Server) members() []string {
	if s.fed == nil {
		return []string{s.node()}
	}
	return s.fed.Nodes()
}

// fanout collects one domain from every member in parallel: this
// node answers by function call, peers over the wire. Unreachable or
// failing members land in the errors map under their node label.
func (s *Server) fanout(ctx context.Context, domain string, payload []byte) (map[string]json.RawMessage, map[string]string) {
	results := map[string]json.RawMessage{}
	errs := map[string]string{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, node := range s.members() {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			var raw []byte
			var err error
			if s.fed == nil || node == s.fed.Self() {
				raw, err = s.Observe(domain, payload)
			} else {
				fctx, cancel := context.WithTimeout(ctx, fanoutTimeout)
				raw, err = s.fed.Fetch(fctx, node, domain, payload)
				cancel()
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[node] = err.Error()
				return
			}
			results[node] = raw
		}(node)
	}
	wg.Wait()
	return results, errs
}

// --- aggregate endpoints ---

// handleClusterMetrics serves GET /cluster/metrics: every member's
// metrics snapshot, keyed and labeled by node.
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	results, errs := s.fanout(r.Context(), "metrics", nil)
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":  results,
		"errors": errs,
	})
}

// handleClusterHealth serves GET /cluster/health: a worst-of roll-up
// across members. An unreachable member counts as critical — a node
// that cannot answer a health probe is not healthy — and the HTTP
// status carries the cluster verdict (503 on critical) so scripts
// can use it without parsing.
func (s *Server) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	results, errs := s.fanout(r.Context(), "health", nil)
	rank := map[string]int{"ok": 0, "warn": 1, "critical": 2}
	worst := "ok"
	nodes := map[string]any{}
	for node, raw := range results {
		var v struct {
			Status string `json:"status"`
		}
		status := "warn" // answered but unparseable: suspicious, not fatal
		if err := json.Unmarshal(raw, &v); err == nil && v.Status != "" {
			status = v.Status
		}
		if rank[status] > rank[worst] {
			worst = status
		}
		nodes[node] = json.RawMessage(raw)
	}
	for range errs {
		worst = "critical"
	}
	code := http.StatusOK
	if worst == "critical" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status": worst,
		"nodes":  nodes,
		"errors": errs,
	})
}

// clusterEvent is one journal entry in the merged cluster tail,
// tagged with the member it came from (Event.Node is the logical
// node that emitted it; Origin is the process that retained it).
type clusterEvent struct {
	Origin string `json:"origin"`
	events.Event
}

// handleClusterEvents serves GET /cluster/events: each member's
// journal tail merged into one time-ordered list. Per-node seqs are
// independent, so the merge orders by timestamp (seq breaks ties
// from the same origin).
func (s *Server) handleClusterEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad limit parameter"})
			return
		}
		limit = n
	}
	payload, err := json.Marshal(eventsQuery{
		Limit:    limit,
		Type:     q.Get("type"),
		Severity: q.Get("severity"),
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	results, errs := s.fanout(r.Context(), "events", payload)
	var merged []clusterEvent
	for node, raw := range results {
		var v struct {
			Events []events.Event `json:"events"`
		}
		if err := json.Unmarshal(raw, &v); err != nil {
			errs[node] = "bad events payload: " + err.Error()
			continue
		}
		for _, e := range v.Events {
			merged = append(merged, clusterEvent{Origin: node, Event: e})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if !merged[i].Time.Equal(merged[j].Time) {
			return merged[i].Time.Before(merged[j].Time)
		}
		if merged[i].Origin != merged[j].Origin {
			return merged[i].Origin < merged[j].Origin
		}
		return merged[i].Seq < merged[j].Seq
	})
	if limit > 0 && len(merged) > limit {
		merged = merged[len(merged)-limit:] // keep the newest tail
	}
	if merged == nil {
		merged = []clusterEvent{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"events": merged,
		"errors": errs,
	})
}

// stitchedTrace collects every member's portions of one trace and
// grafts them into a single cross-process tree. Returns nil when no
// member retains any portion.
func (s *Server) stitchedTrace(ctx context.Context, id uint64) (map[string]any, map[string]string) {
	payload, _ := json.Marshal(map[string]any{"id": id})
	results, errs := s.fanout(ctx, "trace", payload)
	var portions []trace.Export
	nodes := []string{}
	for node, raw := range results {
		var v tracePortions
		if err := json.Unmarshal(raw, &v); err != nil {
			errs[node] = "bad trace payload: " + err.Error()
			continue
		}
		if len(v.Portions) > 0 {
			nodes = append(nodes, node)
		}
		portions = append(portions, v.Portions...)
	}
	root := trace.Stitch(portions)
	if root == nil {
		return nil, errs
	}
	sort.Strings(nodes)
	// Root-portion metadata: the originating (non-foreign) portion if
	// any node still holds it, else the earliest.
	var rootPortion *trace.Export
	for i := range portions {
		p := &portions[i]
		if len(p.Spans) == 0 {
			continue
		}
		switch {
		case rootPortion == nil:
			rootPortion = p
		case !p.Foreign && rootPortion.Foreign:
			rootPortion = p
		case p.Foreign == rootPortion.Foreign && p.StartUnixUS < rootPortion.StartUnixUS:
			rootPortion = p
		}
	}
	out := map[string]any{
		"id":    id,
		"nodes": nodes,
		"spans": root,
	}
	if rootPortion != nil {
		out["op"] = rootPortion.Op
		out["start_unix_us"] = rootPortion.StartUnixUS
		// Cross-process duration: the stitched trace spans from the
		// earliest portion start to the latest portion end.
		start, end := portions[0].StartUnixUS, int64(0)
		for _, p := range portions {
			if len(p.Spans) == 0 {
				continue
			}
			if p.StartUnixUS < start {
				start = p.StartUnixUS
			}
			if e := p.StartUnixUS + p.DurationUS; e > end {
				end = e
			}
		}
		out["duration_us"] = end - start
	}
	return out, errs
}

// handleTraceConfigBody applies a runtime tracing config locally
// (strict JSON: unknown fields are a 400 naming the field) and, when
// federation is wired, broadcasts the same config to every peer so
// one POST retunes the whole cluster.
func (s *Server) handleTraceConfig(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErr(w, err)
		return
	}
	cfg, err := trace.Default.ApplyConfigJSON(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	publishTraceConfigEvent(cfg)
	out := traceConfigState(s.node())
	if s.fed != nil {
		cluster := map[string]string{}
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, node := range s.members() {
			if node == s.fed.Self() {
				continue
			}
			wg.Add(1)
			go func(node string) {
				defer wg.Done()
				fctx, cancel := context.WithTimeout(r.Context(), fanoutTimeout)
				_, ferr := s.fed.Fetch(fctx, node, "trace-config", body)
				cancel()
				mu.Lock()
				defer mu.Unlock()
				if ferr != nil {
					cluster[node] = ferr.Error()
					return
				}
				cluster[node] = "ok"
			}(node)
		}
		wg.Wait()
		out["cluster"] = cluster
	}
	writeJSON(w, http.StatusOK, out)
}
