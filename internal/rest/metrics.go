package rest

import (
	"net/http"
	"runtime"
	"sort"
	"time"

	"couchgo/internal/buildinfo"
	"couchgo/internal/core"
	"couchgo/internal/events"
	"couchgo/internal/metrics"
)

// processStart anchors couchgo_uptime_seconds; package init is close
// enough to process start for an observability gauge.
var processStart = time.Now()

// handleMetrics serves Prometheus text exposition format: everything
// registered in metrics.Default, plus gauges computed from cluster
// state at scrape time (queue depths, DCP lag, per-bucket residency).
// Computing the latter on demand instead of maintaining registered
// gauges means they can never drift from the truth.
//
// The Content-Type is exactly the exposition spec's `text/plain;
// version=0.0.4` — some scrapers match the header verbatim — and
// non-GET methods get an explicit 405 with an Allow header.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, map[string]any{"error": "method not allowed; /metrics is GET-only"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	tw := metrics.NewTextWriter(w)
	tw.Gauge("couchgo_build_info",
		metrics.LabelString("goversion", runtime.Version(), "version", buildinfo.Version), 1)
	tw.Gauge("couchgo_uptime_seconds", "", time.Since(processStart).Seconds())
	metrics.Default.WriteTo(tw)
	writeClusterGauges(tw, s.c)
	writeJournalGauges(tw)
}

// writeJournalGauges exposes the event journal's own accounting so a
// scraper can see fan-out drops without hitting /events.
func writeJournalGauges(tw *metrics.TextWriter) {
	st := events.Default.Stats()
	tw.Counter("couchgo_events_published_total", "", st.Published)
	tw.Counter("couchgo_events_dropped_total", "", st.Dropped)
	tw.Gauge("couchgo_events_subscribers", "", float64(st.Subscribers))
	types := make([]events.Type, 0, len(st.Retained))
	for t := range st.Retained {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		tw.Gauge("couchgo_events_retained", metrics.LabelString("type", string(t)), float64(st.Retained[t]))
	}
}

// writeClusterGauges emits scrape-time gauges family by family so each
// family's samples stay contiguous, as the exposition format requires.
func writeClusterGauges(tw *metrics.TextWriter, c *core.Cluster) {
	buckets := c.BucketNames()
	type row struct {
		bucket string
		st     core.NodeStats
	}
	var rows []row
	for _, b := range buckets {
		for _, st := range c.Stats(b) {
			rows = append(rows, row{b, st})
		}
	}
	emit := func(name string, v func(row) float64) {
		for _, r := range rows {
			tw.Gauge(name, metrics.LabelString("bucket", r.bucket, "node", string(r.st.ID)), v(r))
		}
	}
	emit("couchgo_bucket_items", func(r row) float64 { return float64(r.st.Items) })
	emit("couchgo_bucket_mem_used_bytes", func(r row) float64 { return float64(r.st.MemUsed) })
	emit("couchgo_bucket_tombstones", func(r row) float64 { return float64(r.st.Tombstones) })
	emit("couchgo_bucket_nonresident_items", func(r row) float64 { return float64(r.st.NonResident) })
	emit("couchgo_flusher_queue_depth", func(r row) float64 { return float64(r.st.QueueDepth) })
	emit("couchgo_storage_file_bytes", func(r row) float64 { return float64(r.st.DiskBytes) })
	emit("couchgo_storage_live_bytes", func(r row) float64 { return float64(r.st.DiskLiveBytes) })

	// DCP lag per bucket and stream name, summed across nodes.
	for _, b := range buckets {
		lags := map[string]uint64{}
		for _, r := range rows {
			if r.bucket != b {
				continue
			}
			for name, lag := range r.st.DCPLags {
				lags[name] += lag
			}
		}
		names := make([]string, 0, len(lags))
		for name := range lags {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			tw.Gauge("couchgo_dcp_lag", metrics.LabelString("bucket", b, "stream", name), float64(lags[name]))
		}
	}

	for _, n := range c.Nodes() {
		up := 0.0
		if n.Alive() {
			up = 1.0
		}
		tw.Gauge("couchgo_node_up", metrics.LabelString("node", string(n.ID())), up)
	}
	tw.Gauge("couchgo_slow_queries_retained", "", float64(len(c.SlowQueries())))
}

// handleStatsDetail returns the structured-JSON twin of /metrics:
// extended per-node stats for every bucket, the full registry
// snapshot (histograms as percentile summaries), and the slow-query
// log.
func (s *Server) handleStatsDetail(w http.ResponseWriter, r *http.Request) {
	var nodes []map[string]any
	for _, n := range s.c.Nodes() {
		nodes = append(nodes, map[string]any{
			"id":       string(n.ID()),
			"services": n.Services().String(),
			"alive":    n.Alive(),
		})
	}
	buckets := map[string]any{}
	for _, b := range s.c.BucketNames() {
		buckets[b] = map[string]any{"nodes": s.c.Stats(b)}
	}
	out := map[string]any{
		"orchestrator": string(s.c.Orchestrator()),
		"nodes":        nodes,
		"buckets":      buckets,
		"metrics":      metrics.Default.Snapshot(),
		"slow_queries": map[string]any{
			"threshold_ms": float64(s.c.SlowQueryThreshold().Milliseconds()),
			"total":        s.c.SlowQueryTotal(),
			"entries":      s.c.SlowQueries(),
		},
		"server": map[string]any{
			"version":        buildinfo.Version,
			"go":             runtime.Version(),
			"uptime_seconds": time.Since(processStart).Seconds(),
		},
	}
	if s.health != nil {
		out["health"] = map[string]any{
			"status": s.health.State().String(),
			"checks": s.health.Snapshot(),
		}
	}
	if s.transportStats != nil {
		out["transport"] = s.transportStats()
	}
	writeJSON(w, http.StatusOK, out)
}
