// Package events is the cluster's structured event journal — the
// third observability pillar next to metrics (counters: how much) and
// traces (spans: how slow). An event records that something *happened*
// as a first-class, queryable fact: "vb 12 promoted after failover",
// "feed gsi stalled", "compaction reclaimed 4 MiB". This is the
// reproduction's analogue of ns_server's event log, which clients and
// operators consume for topology changes and which the chaos harness
// asserts against.
//
// Design constraints mirror internal/feed's fan-out discipline:
//
//   - Bounded memory: each event type keeps its own fixed-size ring, so
//     a rebalance storm of vbucket events can never evict the one
//     durability-timeout event an operator is hunting.
//   - Non-blocking publish: Publish appends to the ring and offers the
//     event to each subscriber with a select/default send. A slow
//     subscriber loses events (counted, per subscriber) rather than
//     stalling the emitter — emitters hold arbitrary locks (core's
//     rebalance mutex, storage file locks) and must never wait on a
//     consumer.
//   - stdlib only, no in-repo imports: every layer (core, feed, dcp,
//     storage, cache, xdcr, rest) can emit without creating a cycle.
package events

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Severity classifies an event's urgency.
type Severity uint8

const (
	SevInfo Severity = iota
	SevWarn
	SevCritical
)

// String returns the lowercase name used in JSON and query params.
func (s Severity) String() string {
	switch s {
	case SevWarn:
		return "warn"
	case SevCritical:
		return "critical"
	default:
		return "info"
	}
}

// MarshalJSON encodes the severity as its string name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a severity from its string name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	v, ok := ParseSeverity(string(trimQuotes(b)))
	if !ok {
		return errBadSeverity
	}
	*s = v
	return nil
}

type badSeverityError struct{}

func (badSeverityError) Error() string { return "events: unknown severity" }

var errBadSeverity = badSeverityError{}

func trimQuotes(b []byte) []byte {
	if len(b) >= 2 && b[0] == '"' && b[len(b)-1] == '"' {
		return b[1 : len(b)-1]
	}
	return b
}

// ParseSeverity maps a string name to a Severity.
func ParseSeverity(s string) (Severity, bool) {
	switch s {
	case "info":
		return SevInfo, true
	case "warn", "warning":
		return SevWarn, true
	case "critical", "crit":
		return SevCritical, true
	}
	return SevInfo, false
}

// Type names an event category. Each type gets its own bounded ring in
// the journal.
type Type string

const (
	Topology   Type = "topology"   // node add/kill/failover, bucket create, rebalance
	VBucket    Type = "vbucket"    // vb promote/takeover/move
	FeedEvent  Type = "feed"       // feed stall, feed rollback
	DCP        Type = "dcp"        // stream resume rejected (rollback required)
	Compaction Type = "compaction" // compaction start/done
	SlowOp     Type = "slowop"     // slow query / slow KV op
	Durability Type = "durability" // durability wait timeout
	Config     Type = "config"     // runtime config change
	Health     Type = "health"     // health check state transition
	CacheEvent Type = "cache"      // pager eviction pass, watermark crossings
	XDCR       Type = "xdcr"       // replication start/stop
)

// Types returns every known event type, sorted. REST uses it to
// validate ?type= filters.
func Types() []Type {
	return []Type{CacheEvent, Compaction, Config, DCP, Durability,
		FeedEvent, Health, SlowOp, Topology, VBucket, XDCR}
}

// ValidType reports whether t names a known event type.
func ValidType(t Type) bool {
	for _, k := range Types() {
		if k == t {
			return true
		}
	}
	return false
}

// NoVB marks an event not tied to a particular vBucket.
const NoVB = -1

// Event is one journal entry. Seq is a journal-wide monotone sequence
// number assigned at publish; ?since= filters and the long-poll cursor
// are built on it. TraceID links the event to the originating request's
// trace when that request was sampled (0 otherwise).
type Event struct {
	Seq      uint64            `json:"seq"`
	Time     time.Time         `json:"time"`
	Type     Type              `json:"type"`
	Severity Severity          `json:"severity"`
	Node     string            `json:"node,omitempty"`
	Bucket   string            `json:"bucket,omitempty"`
	VB       int               `json:"vb"` // NoVB when not applicable
	Service  string            `json:"service,omitempty"`
	Msg      string            `json:"msg"`
	TraceID  uint64            `json:"trace_id,omitempty"`
	Fields   map[string]string `json:"fields,omitempty"`
}

// New builds an event with VB defaulted to NoVB; callers fill in the
// fields they know before publishing.
func New(t Type, sev Severity, msg string) Event {
	return Event{Type: t, Severity: sev, Msg: msg, VB: NoVB}
}

// Filter selects events from the journal.
type Filter struct {
	Type        Type     // zero: all types
	MinSeverity Severity // events at or above this severity
	SinceSeq    uint64   // only events with Seq > SinceSeq
	Limit       int      // keep the newest Limit events; 0: no limit
}

// Subscription is one consumer's bounded, non-blocking event tap.
type Subscription struct {
	j       *Journal
	ch      chan Event
	done    chan struct{}
	dropped atomic.Uint64
	once    sync.Once
}

// C returns the event channel. The journal never closes it (a publisher
// racing Close must not send on a closed channel); consumers should
// select on C() and Done() together.
func (s *Subscription) C() <-chan Event { return s.ch }

// Done is closed when the subscription is closed.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Dropped returns how many events were discarded because the
// subscriber's buffer was full at publish time.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close deregisters the subscription. Events already buffered on C()
// remain readable.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.j.unsubscribe(s)
		close(s.done)
	})
}

// Journal is the bounded event store plus fan-out hub.
type Journal struct {
	cap int

	mu    sync.Mutex
	seq   uint64
	rings map[Type]*ring
	subs  map[*Subscription]struct{}

	published atomic.Uint64 // total events published
	dropped   atomic.Uint64 // total subscriber-side drops, all subs
}

// ring is a fixed-capacity overwrite-oldest buffer of events.
type ring struct {
	buf   []Event
	next  int
	total int
}

func (r *ring) add(e Event) {
	if r.total < len(r.buf) {
		r.buf[r.total] = e
		r.total++
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
}

// snapshot appends the ring's events, oldest first, to dst.
func (r *ring) snapshot(dst []Event) []Event {
	if r.total < len(r.buf) {
		return append(dst, r.buf[:r.total]...)
	}
	dst = append(dst, r.buf[r.next:]...)
	return append(dst, r.buf[:r.next]...)
}

// DefaultCapacity is the per-type ring size of the Default journal —
// large enough that a full-cluster rebalance (one vbucket event per
// moved vb) doesn't wrap mid-investigation.
const DefaultCapacity = 512

// NewJournal creates a journal keeping perTypeCap events per type
// (DefaultCapacity when <= 0).
func NewJournal(perTypeCap int) *Journal {
	if perTypeCap <= 0 {
		perTypeCap = DefaultCapacity
	}
	return &Journal{
		cap:   perTypeCap,
		rings: make(map[Type]*ring),
		subs:  make(map[*Subscription]struct{}),
	}
}

// Default is the process-wide journal, mirroring metrics.Default and
// trace.Default.
var Default = NewJournal(DefaultCapacity)

// Publish stamps the event with the next sequence number and the
// current time, stores it in its type's ring, and offers it to every
// subscriber without blocking. It returns the stamped event.
func (j *Journal) Publish(e Event) Event {
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r := j.rings[e.Type]
	if r == nil {
		r = &ring{buf: make([]Event, j.cap)}
		j.rings[e.Type] = r
	}
	r.add(e)
	var subs []*Subscription
	if len(j.subs) > 0 {
		subs = make([]*Subscription, 0, len(j.subs))
		for s := range j.subs {
			subs = append(subs, s)
		}
	}
	j.mu.Unlock()
	j.published.Add(1)

	// Fan out after unlocking: the sends never block (select/default),
	// but holding the journal lock across them would still couple every
	// emitter to the subscriber count.
	for _, s := range subs {
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
			j.dropped.Add(1)
		}
	}
	return e
}

// LastSeq returns the sequence number of the most recently published
// event (0 if none).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Events returns journal entries matching f, ordered by ascending
// sequence number. With a Limit, the newest Limit matches are kept.
func (j *Journal) Events(f Filter) []Event {
	j.mu.Lock()
	var all []Event
	if f.Type != "" {
		if r := j.rings[f.Type]; r != nil {
			all = r.snapshot(nil)
		}
	} else {
		for _, r := range j.rings {
			all = r.snapshot(all)
		}
	}
	j.mu.Unlock()

	out := all[:0]
	for _, e := range all {
		if e.Severity < f.MinSeverity || e.Seq <= f.SinceSeq {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Subscribe registers a tap with the given buffer size (minimum 1).
// The caller must Close it when done.
func (j *Journal) Subscribe(buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{
		j:    j,
		ch:   make(chan Event, buf),
		done: make(chan struct{}),
	}
	j.mu.Lock()
	j.subs[s] = struct{}{}
	j.mu.Unlock()
	return s
}

func (j *Journal) unsubscribe(s *Subscription) {
	j.mu.Lock()
	delete(j.subs, s)
	j.mu.Unlock()
}

// Stats describes journal-wide accounting for /metrics.
type Stats struct {
	Published   uint64       // events published, lifetime
	Dropped     uint64       // subscriber-side drops, lifetime
	Subscribers int          // currently registered subscriptions
	Retained    map[Type]int // events currently held, per ring
	LastSeq     uint64       // newest sequence number
}

// Stats returns a snapshot of journal accounting.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	retained := make(map[Type]int, len(j.rings))
	for t, r := range j.rings {
		retained[t] = r.total
		if r.total > len(r.buf) {
			retained[t] = len(r.buf)
		}
	}
	st := Stats{
		Subscribers: len(j.subs),
		Retained:    retained,
		LastSeq:     j.seq,
	}
	j.mu.Unlock()
	st.Published = j.published.Load()
	st.Dropped = j.dropped.Load()
	return st
}
