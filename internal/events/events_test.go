package events

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestPublishAssignsMonotoneSeq(t *testing.T) {
	j := NewJournal(8)
	var last uint64
	for i := 0; i < 5; i++ {
		e := j.Publish(New(Topology, SevInfo, "x"))
		if e.Seq <= last {
			t.Fatalf("seq not monotone: %d after %d", e.Seq, last)
		}
		last = e.Seq
	}
	if j.LastSeq() != last {
		t.Fatalf("LastSeq = %d, want %d", j.LastSeq(), last)
	}
}

func TestRingBoundedPerType(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Publish(New(VBucket, SevInfo, "vb"))
	}
	// A storm of vbucket events must not evict the lone feed event.
	feedEv := j.Publish(New(FeedEvent, SevWarn, "stall"))
	for i := 0; i < 10; i++ {
		j.Publish(New(VBucket, SevInfo, "vb"))
	}
	got := j.Events(Filter{Type: VBucket})
	if len(got) != 4 {
		t.Fatalf("vbucket ring holds %d, want 4", len(got))
	}
	// Ring keeps the newest: the oldest surviving seq must be from the
	// final storm.
	if got[0].Seq <= feedEv.Seq {
		t.Fatalf("ring did not overwrite oldest: first seq %d <= %d", got[0].Seq, feedEv.Seq)
	}
	fe := j.Events(Filter{Type: FeedEvent})
	if len(fe) != 1 || fe[0].Seq != feedEv.Seq {
		t.Fatalf("feed event lost: %+v", fe)
	}
}

func TestEventsFiltering(t *testing.T) {
	j := NewJournal(16)
	a := j.Publish(New(Topology, SevInfo, "a"))
	b := j.Publish(New(FeedEvent, SevWarn, "b"))
	c := j.Publish(New(Health, SevCritical, "c"))

	if got := j.Events(Filter{}); len(got) != 3 {
		t.Fatalf("all: got %d events", len(got))
	}
	got := j.Events(Filter{MinSeverity: SevWarn})
	if len(got) != 2 || got[0].Seq != b.Seq || got[1].Seq != c.Seq {
		t.Fatalf("severity filter: %+v", got)
	}
	got = j.Events(Filter{SinceSeq: a.Seq})
	if len(got) != 2 || got[0].Seq != b.Seq {
		t.Fatalf("since filter: %+v", got)
	}
	got = j.Events(Filter{Limit: 2})
	if len(got) != 2 || got[0].Seq != b.Seq || got[1].Seq != c.Seq {
		t.Fatalf("limit keeps newest: %+v", got)
	}
	if got := j.Events(Filter{Type: DCP}); len(got) != 0 {
		t.Fatalf("empty type: %+v", got)
	}
}

func TestSubscribeFanOutAndDrops(t *testing.T) {
	j := NewJournal(16)
	fast := j.Subscribe(8)
	defer fast.Close()
	slow := j.Subscribe(1)
	defer slow.Close()

	for i := 0; i < 4; i++ {
		j.Publish(New(Config, SevInfo, "change"))
	}
	if got := len(fast.C()); got != 4 {
		t.Fatalf("fast subscriber buffered %d, want 4", got)
	}
	// slow has buffer 1: first event delivered, three dropped.
	if got := slow.Dropped(); got != 3 {
		t.Fatalf("slow dropped %d, want 3", got)
	}
	st := j.Stats()
	if st.Dropped != 3 || st.Published != 4 || st.Subscribers != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// After Close the subscription no longer receives (or drops).
	slow.Close()
	j.Publish(New(Config, SevInfo, "late"))
	if got := slow.Dropped(); got != 3 {
		t.Fatalf("closed subscriber accounted a drop: %d", got)
	}
	select {
	case <-slow.Done():
	default:
		t.Fatal("Done not closed after Close")
	}
}

func TestPublishConcurrent(t *testing.T) {
	j := NewJournal(32)
	sub := j.Subscribe(4) // deliberately small: forces drop accounting under race
	defer sub.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j.Publish(New(SlowOp, SevWarn, "op"))
			}
		}()
	}
	wg.Wait()
	st := j.Stats()
	if st.Published != 400 {
		t.Fatalf("published %d, want 400", st.Published)
	}
	if st.LastSeq != 400 {
		t.Fatalf("last seq %d, want 400", st.LastSeq)
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	e := New(Durability, SevCritical, "timeout")
	e.VB = 7
	e.TraceID = 99
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Severity != SevCritical || back.VB != 7 || back.TraceID != 99 {
		t.Fatalf("round trip: %+v", back)
	}
	if _, ok := ParseSeverity("nope"); ok {
		t.Fatal("ParseSeverity accepted junk")
	}
	var s Severity
	if err := s.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Fatal("UnmarshalJSON accepted junk")
	}
}

func TestValidType(t *testing.T) {
	for _, typ := range Types() {
		if !ValidType(typ) {
			t.Fatalf("ValidType(%q) = false", typ)
		}
	}
	if ValidType("nonsense") {
		t.Fatal("ValidType accepted junk")
	}
}
