// Package vbucket implements one logical partition of a bucket: the
// memory-first write path of the paper's Figure 6.
//
// "When data is written to Couchbase, it is first stored in the hash
// tables in the integrated (managed) cache. At this point, an initial
// acknowledgement of receipt of the mutation is sent back to the client
// SDK. This mutation is then asynchronously written to disk via the
// disk write queue, and at the same time it is also pushed into the
// in-memory replication queue to be replicated to other nodes."
//
// A VBucket combines a cache.HashTable (the hash table for this
// partition), a storage.VBFile (its append-only file), a flusher
// goroutine draining the disk-write queue, and a dcp.Producer feeding
// every downstream consumer. Per-mutation durability options
// (ReplicateTo / PersistTo, §2.3.2) are implemented as waits on the
// persistence and replication seqno watermarks — the write path itself
// never becomes synchronous.
package vbucket

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"couchgo/internal/cache"
	"couchgo/internal/dcp"
	"couchgo/internal/events"
	"couchgo/internal/metrics"
	"couchgo/internal/storage"
	"couchgo/internal/trace"
)

// KV-path metrics, shared across every vBucket in the process. Gets
// resolve one of three ways — value served from RAM (hit), value
// restored from the storage engine (bgfetch), or key absent (miss) —
// so gets_total = hits + bgfetches + misses. Latency histograms are
// sampled (metrics.Sample) because two clock reads are material
// against a sub-microsecond cache hit; mutation ops are counted
// unsampled via couchgo_kv_ops_total.
var (
	mCacheHits   = metrics.Default.Counter("couchgo_cache_hits_total")
	mCacheMisses = metrics.Default.Counter("couchgo_cache_misses_total")
	mBgFetches   = metrics.Default.Counter("couchgo_cache_bgfetches_total")

	mGetLatency    = metrics.Default.Histogram("couchgo_kv_op_duration_seconds", "op", "get")
	mSetLatency    = metrics.Default.Histogram("couchgo_kv_op_duration_seconds", "op", "set")
	mCasLatency    = metrics.Default.Histogram("couchgo_kv_op_duration_seconds", "op", "cas")
	mDeleteLatency = metrics.Default.Histogram("couchgo_kv_op_duration_seconds", "op", "delete")

	mSetOps    = metrics.Default.Counter("couchgo_kv_ops_total", "op", "set")
	mCasOps    = metrics.Default.Counter("couchgo_kv_ops_total", "op", "cas")
	mDeleteOps = metrics.Default.Counter("couchgo_kv_ops_total", "op", "delete")

	mFlushBatchItems = metrics.Default.ValueHistogram("couchgo_flusher_batch_items")
	mFlushDuration   = metrics.Default.Histogram("couchgo_flusher_flush_duration_seconds")
	// mFlushQueueDepth is the process-wide disk-write queue backlog
	// (entries enqueued by onMutate, not yet handed to storage). A
	// persistently high value means the flushers cannot keep up.
	mFlushQueueDepth = metrics.Default.Gauge("couchgo_flusher_queue_depth")
)

// slowOpThreshold is how long one flusher disk commit may take before
// a slow-op event is journaled naming the blocking site. The 374ms+
// front-end max-latency outliers in BENCH_transport.json traced to
// disk commits (fsync, and compaction competing for the device)
// monopolizing the core; the journal entry makes the next stall
// attributable without a profiler attached. Variable, so tests can
// lower it.
var slowOpThreshold = 100 * time.Millisecond

// State is the partition state machine from §4.3.1: "Throughout the
// migration and redistribution of partitions among servers, any given
// partition on a server will be in one of the following states."
type State int

const (
	// Dead: "This server is not in any way responsible for this
	// partition."
	Dead State = iota
	// Replica: "The server hosting the partition cannot handle client
	// requests, but it will receive replication commands."
	Replica
	// Pending is a rebalance destination being built (treated as a
	// replica until the atomic switchover).
	Pending
	// Active: "The server hosting the partition is servicing all types
	// of requests for this partition."
	Active
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Replica:
		return "replica"
	case Pending:
		return "pending"
	default:
		return "dead"
	}
}

// Errors specific to vBucket request routing and durability.
var (
	// ErrNotMyVBucket tells a smart client its cluster map is stale.
	ErrNotMyVBucket = errors.New("vbucket: not my vbucket")
	ErrTimeout      = errors.New("vbucket: durability wait timed out")
	ErrClosed       = errors.New("vbucket: closed")
)

// Config tunes a vBucket.
type Config struct {
	// SyncOnPersist fsyncs each flushed batch.
	SyncOnPersist bool
	// DiskDelay simulates device latency per flushed batch (used by the
	// durability ablation to model spinning disks; zero for SSD/none).
	DiskDelay time.Duration
	// MaxBatch bounds how many queued mutations one flush drains.
	MaxBatch int
	// FullEviction enables §4.3.3's full-eviction mode: the item pager
	// may remove keys and metadata entirely, and reads/writes of absent
	// keys consult the storage engine before concluding "not found".
	FullEviction bool
}

// VBucket is one partition's engine on one node.
type VBucket struct {
	ID int

	mu    sync.Mutex
	state State

	Table    *cache.HashTable
	file     *storage.VBFile
	producer *dcp.Producer

	cfg Config

	// Disk-write queue (Figure 6). The flusher drains it in order.
	// Entries keep the originating mutation's trace so the commit hop
	// shows up in sampled traces.
	queueMu   sync.Mutex
	queue     []flushEntry
	queueCond *sync.Cond
	closed    bool
	flushDone chan struct{}

	// Durability watermarks and their waiters.
	durMu          sync.Mutex
	persistedSeqno uint64
	replicaSeqnos  map[string]uint64 // replica name -> acked seqno
	durCond        *sync.Cond
}

// New creates a vBucket in the given state over the provided storage
// file. The cache hash table starts empty; WarmUp loads persisted
// documents' metadata (and values) back into it.
func New(id int, file *storage.VBFile, state State, cfg Config) *VBucket {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	vb := &VBucket{
		ID:            id,
		state:         state,
		Table:         cache.NewHashTable(),
		file:          file,
		cfg:           cfg,
		flushDone:     make(chan struct{}),
		replicaSeqnos: make(map[string]uint64),
	}
	vb.queueCond = sync.NewCond(&vb.queueMu)
	vb.durCond = sync.NewCond(&vb.durMu)
	vb.producer = dcp.NewProducer(id, (*snapshotSource)(vb))
	vb.Table.OnMutate(vb.onMutate)
	vb.durMu.Lock()
	vb.persistedSeqno = file.HighSeqno()
	vb.durMu.Unlock()
	go vb.flusher()
	return vb
}

// WarmUp repopulates the cache from storage after a restart: every
// persisted document's key, metadata, and value return to memory. The
// replayed documents are already durable, so Restore bypasses the
// mutation observer (no re-persistence, no DCP publication).
func (vb *VBucket) WarmUp() error {
	err := vb.file.ScanBySeqno(0, vb.file.HighSeqno(), func(r storage.Record) bool {
		vb.Table.Restore(cache.Item{
			Key: r.Key, Value: r.Value, CAS: r.CAS, RevSeqno: r.RevSeqno,
			Seqno: r.Seqno, Flags: r.Flags, Expiry: r.Expiry, Deleted: r.Deleted,
		})
		return true
	})
	vb.Table.SetHighSeqno(vb.file.HighSeqno())
	return err
}

// missFetch restores a fully-evicted document's state from the storage
// engine. Returns true when something was restored.
func (vb *VBucket) missFetch(key string) bool {
	meta, err := vb.file.GetMeta(key)
	if err != nil {
		return false
	}
	it := cache.Item{
		Key: key, CAS: meta.CAS, RevSeqno: meta.RevSeqno, Seqno: meta.Seqno,
		Flags: meta.Flags, Expiry: meta.Expiry, Deleted: meta.Deleted,
	}
	if !meta.Deleted {
		rec, err := vb.file.Get(key)
		if err != nil {
			return false
		}
		it.Value = rec.Value
	}
	vb.Table.Restore(it)
	return true
}

// ensureResident brings an absent key's durable state back into the
// cache before an operation that depends on it (full-eviction mode's
// read-before-write: CAS checks and rev lineage need the metadata).
func (vb *VBucket) ensureResident(key string) {
	if !vb.cfg.FullEviction {
		return
	}
	if _, err := vb.Table.GetMeta(key); err == cache.ErrKeyNotFound {
		vb.missFetch(key)
	}
}

// flushEntry is one disk-write queue element: the record plus the
// originating mutation's sampled trace (nil almost always).
type flushEntry struct {
	rec storage.Record
	tr  *trace.Trace
}

// onMutate runs under the hash-table lock for every applied mutation,
// in seqno order: enqueue for disk and publish to DCP atomically with
// the cache write. The context is the mutating caller's; its sampled
// trace (if any) rides both the disk-write queue entry and the DCP
// mutation so the asynchronous hops land in the same trace.
func (vb *VBucket) onMutate(ctx context.Context, it cache.Item) {
	tr := trace.TraceFromContext(ctx)
	rec := storage.Record{
		Meta: storage.Meta{
			Key: it.Key, Seqno: it.Seqno, CAS: it.CAS, RevSeqno: it.RevSeqno,
			Flags: it.Flags, Expiry: it.Expiry, Deleted: it.Deleted,
		},
		Value: it.Value,
	}
	vb.queueMu.Lock()
	vb.queue = append(vb.queue, flushEntry{rec: rec, tr: tr})
	vb.queueMu.Unlock()
	mFlushQueueDepth.Add(1)
	vb.queueCond.Signal()

	vb.producer.Publish(dcp.Mutation{
		Key: it.Key, Value: it.Value, Seqno: it.Seqno, CAS: it.CAS,
		RevSeqno: it.RevSeqno, Flags: it.Flags, Expiry: it.Expiry, Deleted: it.Deleted,
		Trace: tr,
	})
}

// journalSlowCommit publishes a slow-op event naming the blocking
// site. The write path itself never waits on the disk, but a slow
// commit delays the persistence watermark (durability waiters) and —
// on a saturated machine — starves the front-end of CPU; the journal
// entry pins the stall to storage.Append rather than leaving a bare
// latency outlier in the histograms.
func (vb *VBucket) journalSlowCommit(d time.Duration, items int) {
	vb.queueMu.Lock()
	depth := len(vb.queue)
	vb.queueMu.Unlock()
	ev := events.New(events.SlowOp, events.SevWarn, "slow disk commit")
	ev.Fields = map[string]string{
		"site":        "storage.Append",
		"vb":          strconv.Itoa(vb.ID),
		"duration":    d.String(),
		"batch_items": strconv.Itoa(items),
		"queue_depth": strconv.Itoa(depth),
	}
	events.Default.Publish(ev)
}

// flusher drains the disk-write queue. Repeated updates to a document
// within one batch are deduplicated — "asynchrony ... provides an
// opportunity for repeated updates to an object to be aggregated at the
// level of persistence" (§2.3.2).
func (vb *VBucket) flusher() {
	defer close(vb.flushDone)
	for {
		vb.queueMu.Lock()
		for len(vb.queue) == 0 && !vb.closed {
			vb.queueCond.Wait()
		}
		if vb.closed && len(vb.queue) == 0 {
			vb.queueMu.Unlock()
			return
		}
		n := len(vb.queue)
		if n > vb.cfg.MaxBatch {
			n = vb.cfg.MaxBatch
		}
		batch := vb.queue[:n]
		vb.queue = append([]flushEntry(nil), vb.queue[n:]...)
		vb.queueMu.Unlock()
		mFlushQueueDepth.Add(int64(-n))

		batch = dedupBatch(batch)
		mFlushBatchItems.ObserveValue(uint64(len(batch)))
		recs := make([]storage.Record, len(batch))
		var commitSpans []*trace.Span
		var seenTr map[*trace.Trace]bool
		for i := range batch {
			recs[i] = batch[i].rec
			// One commit span per distinct trace in the batch, parented
			// at the trace root (the client span ended long ago).
			if tr := batch[i].tr; tr != nil {
				if seenTr == nil {
					seenTr = make(map[*trace.Trace]bool)
				}
				if !seenTr[tr] {
					seenTr[tr] = true
					sp := tr.StartSpan("storage:commit")
					sp.Annotate("vb", strconv.Itoa(vb.ID))
					sp.Annotate("batch_items", strconv.Itoa(len(batch)))
					commitSpans = append(commitSpans, sp)
				}
			}
		}
		t0 := time.Now()
		if vb.cfg.DiskDelay > 0 {
			time.Sleep(vb.cfg.DiskDelay)
		}
		if err := vb.file.Append(recs); err != nil {
			// The file is closed (shutdown) or the disk failed; either
			// way the flusher stops. Unpersisted mutations remain in
			// memory and in replicas — the paper's durability model.
			for _, sp := range commitSpans {
				sp.Error(err)
				sp.End()
			}
			return
		}
		mFlushDuration.ObserveSince(t0)
		if d := time.Since(t0); d > slowOpThreshold {
			vb.journalSlowCommit(d, len(recs))
		}
		for _, sp := range commitSpans {
			sp.End()
		}
		var high uint64
		for i := range recs {
			if recs[i].Seqno > high {
				high = recs[i].Seqno
			}
		}
		vb.durMu.Lock()
		if high > vb.persistedSeqno {
			vb.persistedSeqno = high
		}
		vb.durMu.Unlock()
		vb.durCond.Broadcast()
	}
}

// dedupBatch keeps only the newest record per key, preserving seqno
// order of the survivors.
func dedupBatch(batch []flushEntry) []flushEntry {
	if len(batch) <= 1 {
		return batch
	}
	newest := make(map[string]uint64, len(batch))
	for i := range batch {
		if batch[i].rec.Seqno > newest[batch[i].rec.Key] {
			newest[batch[i].rec.Key] = batch[i].rec.Seqno
		}
	}
	out := batch[:0]
	for i := range batch {
		if batch[i].rec.Seqno == newest[batch[i].rec.Key] {
			out = append(out, batch[i])
		}
	}
	return out
}

// State returns the current partition state.
func (vb *VBucket) State() State {
	vb.mu.Lock()
	defer vb.mu.Unlock()
	return vb.state
}

// SetState transitions the partition (rebalance switchover, failover
// promotion). Promoting to Active lets the seqno clock continue from
// whatever the replica had applied.
func (vb *VBucket) SetState(s State) {
	vb.mu.Lock()
	vb.state = s
	vb.mu.Unlock()
}

func (vb *VBucket) requireActive() error {
	if vb.State() != Active {
		return fmt.Errorf("%w (vb %d is %s)", ErrNotMyVBucket, vb.ID, vb.State())
	}
	return nil
}

// Producer exposes the vBucket's DCP producer for consumers (replicas,
// views, GSI, FTS, XDCR).
func (vb *VBucket) Producer() *dcp.Producer { return vb.producer }

// HighSeqno is the vBucket's current mutation high-water mark.
func (vb *VBucket) HighSeqno() uint64 { return vb.Table.HighSeqno() }

// PersistedSeqno is the highest seqno known flushed to disk.
func (vb *VBucket) PersistedSeqno() uint64 {
	vb.durMu.Lock()
	defer vb.durMu.Unlock()
	return vb.persistedSeqno
}

// QueueDepth is the number of mutations waiting in the disk-write
// queue — the drain backlog operators watch on a memory-first store.
func (vb *VBucket) QueueDepth() int {
	vb.queueMu.Lock()
	defer vb.queueMu.Unlock()
	return len(vb.queue)
}

// --- KV operations (active copies only) ---

// cacheSpan opens a child span under the caller's trace (never a new
// root — sampling decisions belong to the client/query entry points).
// With no sampled parent it returns ctx unchanged and a nil span.
func cacheSpan(ctx context.Context, name string) (context.Context, *trace.Span) {
	sp := trace.FromContext(ctx).Child(name)
	return trace.ContextWith(ctx, sp), sp
}

// Get returns the document, transparently restoring evicted values from
// the storage engine (a "background fetch" in the real server).
func (vb *VBucket) Get(ctx context.Context, key string, now int64) (cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return cache.Item{}, err
	}
	sp := trace.FromContext(ctx).Child("cache:get")
	defer sp.End()
	if t0, ok := metrics.Sample(); ok {
		defer mGetLatency.ObserveSince(t0)
	}
	vb.ensureResident(key)
	it, err := vb.Table.Get(key, now)
	if err == cache.ErrValueEvicted {
		mBgFetches.Inc()
		sp.Annotate("bgfetch", "true")
		rec, rerr := vb.file.Get(key)
		if rerr != nil {
			return cache.Item{}, fmt.Errorf("vbucket: bgfetch %s: %w", key, rerr)
		}
		vb.Table.RestoreValue(key, it.CAS, rec.Value)
		return vb.Table.Get(key, now)
	}
	if err == nil {
		mCacheHits.Inc()
	} else {
		mCacheMisses.Inc()
	}
	sp.Error(err)
	return it, err
}

// GetMeta returns metadata (tombstones included) without state checks;
// XDCR conflict resolution uses it on both sides.
func (vb *VBucket) GetMeta(key string) (cache.Item, error) {
	return vb.Table.GetMeta(key)
}

// Set writes a document (CAS semantics per cache.HashTable.Set).
func (vb *VBucket) Set(ctx context.Context, key string, value []byte, flags uint32, expiry int64, casCheck uint64, now int64) (cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return cache.Item{}, err
	}
	ops, lat := mSetOps, mSetLatency
	if casCheck != 0 {
		ops, lat = mCasOps, mCasLatency
	}
	ops.Inc()
	if t0, ok := metrics.Sample(); ok {
		defer lat.ObserveSince(t0)
	}
	ctx, sp := cacheSpan(ctx, "cache:set")
	defer sp.End()
	vb.ensureResident(key)
	it, err := vb.Table.Set(ctx, key, value, flags, expiry, casCheck, now)
	sp.Error(err)
	if sp != nil && err == nil {
		sp.Annotate("seqno", strconv.FormatUint(it.Seqno, 10))
	}
	return it, err
}

// Add inserts a document that must not already exist.
func (vb *VBucket) Add(ctx context.Context, key string, value []byte, flags uint32, expiry int64, now int64) (cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return cache.Item{}, err
	}
	ctx, sp := cacheSpan(ctx, "cache:add")
	defer sp.End()
	vb.ensureResident(key)
	return vb.Table.Add(ctx, key, value, flags, expiry, now)
}

// Replace updates a document that must already exist.
func (vb *VBucket) Replace(ctx context.Context, key string, value []byte, flags uint32, expiry int64, casCheck uint64, now int64) (cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return cache.Item{}, err
	}
	ctx, sp := cacheSpan(ctx, "cache:replace")
	defer sp.End()
	vb.ensureResident(key)
	return vb.Table.Replace(ctx, key, value, flags, expiry, casCheck, now)
}

// Delete tombstones a document.
func (vb *VBucket) Delete(ctx context.Context, key string, casCheck uint64, now int64) (cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return cache.Item{}, err
	}
	mDeleteOps.Inc()
	if t0, ok := metrics.Sample(); ok {
		defer mDeleteLatency.ObserveSince(t0)
	}
	ctx, sp := cacheSpan(ctx, "cache:delete")
	defer sp.End()
	vb.ensureResident(key)
	it, err := vb.Table.Delete(ctx, key, casCheck, now)
	sp.Error(err)
	return it, err
}

// Touch updates a document's expiry.
func (vb *VBucket) Touch(ctx context.Context, key string, expiry int64, now int64) (cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return cache.Item{}, err
	}
	_, sp := cacheSpan(ctx, "cache:touch")
	defer sp.End()
	vb.ensureResident(key)
	return vb.Table.Touch(key, expiry, now)
}

// GetAndLock takes the document-level hard lock.
func (vb *VBucket) GetAndLock(ctx context.Context, key string, lockSeconds int64, now int64) (cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return cache.Item{}, err
	}
	_, sp := cacheSpan(ctx, "cache:getandlock")
	defer sp.End()
	vb.ensureResident(key)
	return vb.Table.GetAndLock(key, lockSeconds, now)
}

// Unlock releases the hard lock.
func (vb *VBucket) Unlock(ctx context.Context, key string, casToken uint64, now int64) error {
	if err := vb.requireActive(); err != nil {
		return err
	}
	_, sp := cacheSpan(ctx, "cache:unlock")
	defer sp.End()
	return vb.Table.Unlock(key, casToken, now)
}

// Append concatenates raw bytes after the document's value.
func (vb *VBucket) Append(ctx context.Context, key string, data []byte, casCheck uint64, now int64) (cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return cache.Item{}, err
	}
	ctx, sp := cacheSpan(ctx, "cache:append")
	defer sp.End()
	return vb.Table.Append(ctx, key, data, casCheck, now)
}

// Prepend concatenates raw bytes before the document's value.
func (vb *VBucket) Prepend(ctx context.Context, key string, data []byte, casCheck uint64, now int64) (cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return cache.Item{}, err
	}
	ctx, sp := cacheSpan(ctx, "cache:prepend")
	defer sp.End()
	return vb.Table.Prepend(ctx, key, data, casCheck, now)
}

// SubdocGet reads one path inside a document (sub-document lookup).
func (vb *VBucket) SubdocGet(ctx context.Context, key, path string, now int64) (any, error) {
	if err := vb.requireActive(); err != nil {
		return nil, err
	}
	_, sp := cacheSpan(ctx, "cache:subdoc:get")
	defer sp.End()
	v, err := vb.Table.SubdocGet(key, path, now)
	if err == cache.ErrValueEvicted {
		if rec, rerr := vb.file.Get(key); rerr == nil {
			it, _ := vb.Table.GetMeta(key)
			vb.Table.RestoreValue(key, it.CAS, rec.Value)
			return vb.Table.SubdocGet(key, path, now)
		}
	}
	return v, err
}

// SubdocSet writes one path inside a document atomically.
func (vb *VBucket) SubdocSet(ctx context.Context, key, path string, v any, casCheck uint64, now int64) (cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return cache.Item{}, err
	}
	ctx, sp := cacheSpan(ctx, "cache:subdoc:set")
	defer sp.End()
	return vb.Table.SubdocSet(ctx, key, path, v, casCheck, now)
}

// SubdocRemove deletes one path inside a document atomically.
func (vb *VBucket) SubdocRemove(ctx context.Context, key, path string, casCheck uint64, now int64) (cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return cache.Item{}, err
	}
	ctx, sp := cacheSpan(ctx, "cache:subdoc:remove")
	defer sp.End()
	return vb.Table.SubdocRemove(ctx, key, path, casCheck, now)
}

// SubdocArrayAppend appends to an array inside a document atomically.
func (vb *VBucket) SubdocArrayAppend(ctx context.Context, key, path string, v any, casCheck uint64, now int64) (cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return cache.Item{}, err
	}
	ctx, sp := cacheSpan(ctx, "cache:subdoc:arrayappend")
	defer sp.End()
	return vb.Table.SubdocArrayAppend(ctx, key, path, v, casCheck, now)
}

// SubdocCounter adds delta to a numeric field atomically.
func (vb *VBucket) SubdocCounter(ctx context.Context, key, path string, delta float64, casCheck uint64, now int64) (float64, cache.Item, error) {
	if err := vb.requireActive(); err != nil {
		return 0, cache.Item{}, err
	}
	ctx, sp := cacheSpan(ctx, "cache:subdoc:counter")
	defer sp.End()
	return vb.Table.SubdocCounter(ctx, key, path, delta, casCheck, now)
}

// ApplyReplica installs a mutation received over a DCP replication
// stream, preserving origin metadata. Valid in Replica/Pending states.
func (vb *VBucket) ApplyReplica(m dcp.Mutation) {
	ctx := context.Background()
	if m.Trace != nil {
		sp := m.Trace.StartSpan("replica:apply")
		sp.Annotate("vb", strconv.Itoa(vb.ID))
		defer sp.End()
		ctx = trace.ContextWith(ctx, sp)
	}
	vb.Table.ApplyMeta(ctx, cache.Item{
		Key: m.Key, Value: m.Value, CAS: m.CAS, RevSeqno: m.RevSeqno,
		Seqno: m.Seqno, Flags: m.Flags, Expiry: m.Expiry, Deleted: m.Deleted,
	})
}

// ApplyRemote applies an XDCR mutation with conflict resolution on the
// active copy, reporting whether the incoming revision won.
func (vb *VBucket) ApplyRemote(ctx context.Context, key string, value []byte, deleted bool, cas, revSeqno uint64, flags uint32, expiry int64) (bool, error) {
	if err := vb.requireActive(); err != nil {
		return false, err
	}
	ctx, sp := cacheSpan(ctx, "cache:xdcr")
	defer sp.End()
	return vb.Table.ApplyRemote(ctx, key, value, deleted, cas, revSeqno, flags, expiry), nil
}

// --- Durability (per-mutation options, §2.3.2) ---

// AckReplica records that the named replica has applied up to seqno.
// The intra-cluster replicator calls this as acks arrive.
func (vb *VBucket) AckReplica(name string, seqno uint64) {
	vb.durMu.Lock()
	if seqno > vb.replicaSeqnos[name] {
		vb.replicaSeqnos[name] = seqno
	}
	vb.durMu.Unlock()
	vb.durCond.Broadcast()
}

// SetReplicaSet prunes acknowledgement state to the given replica
// names. Rebalance/failover call this so durability waits never count
// acks from replicas that no longer exist.
func (vb *VBucket) SetReplicaSet(names []string) {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	vb.durMu.Lock()
	for n := range vb.replicaSeqnos {
		if !keep[n] {
			delete(vb.replicaSeqnos, n)
		}
	}
	vb.durMu.Unlock()
	vb.durCond.Broadcast()
}

// WaitPersist blocks until seqno is flushed to this node's disk —
// PersistTo(1) in SDK terms — or ctx is cancelled.
func (vb *VBucket) WaitPersist(ctx context.Context, seqno uint64, timeout time.Duration) error {
	//couchvet:ignore unlockedescape -- the condition closure runs under durMu inside waitDur (sync.Cond pattern)
	return vb.waitDur(ctx, timeout, func() bool { return vb.persistedSeqno >= seqno })
}

// WaitReplicas blocks until at least n replicas acknowledged seqno —
// ReplicateTo(n) — or ctx is cancelled. "Since replication is
// memory-to-memory, the latency hit with the replication option is
// significantly less than waiting for persistence."
func (vb *VBucket) WaitReplicas(ctx context.Context, seqno uint64, n int, timeout time.Duration) error {
	return vb.waitDur(ctx, timeout, func() bool {
		count := 0
		//couchvet:ignore unlockedescape -- the condition closure runs under durMu inside waitDur (sync.Cond pattern)
		for _, s := range vb.replicaSeqnos {
			if s >= seqno {
				count++
			}
		}
		return count >= n
	})
}

// waitDur waits on the durability condition with a deadline. The
// condition is evaluated under durMu. Both the timeout and ctx
// cancellation wake the wait through the condition variable's
// Broadcast, so an abandoned request releases its waiter immediately
// instead of holding it until the durability timeout fires.
func (vb *VBucket) waitDur(ctx context.Context, timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() { vb.durCond.Broadcast() })
	defer timer.Stop()
	stop := context.AfterFunc(ctx, func() { vb.durCond.Broadcast() })
	defer stop()
	vb.durMu.Lock()
	defer vb.durMu.Unlock()
	for !cond() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return ErrTimeout
		}
		vb.durCond.Wait()
	}
	return nil
}

// DrainDisk blocks until every mutation issued so far is persisted.
// Tests and orderly shutdown use it; neither has a request ctx.
func (vb *VBucket) DrainDisk(timeout time.Duration) error {
	return vb.WaitPersist(context.Background(), vb.HighSeqno(), timeout)
}

// Close stops the flusher after draining the queue and shuts down DCP.
// The storage file itself is owned by the Store and closed separately.
func (vb *VBucket) Close() {
	vb.queueMu.Lock()
	if vb.closed {
		vb.queueMu.Unlock()
		return
	}
	vb.closed = true
	vb.queueMu.Unlock()
	vb.queueCond.Broadcast()
	<-vb.flushDone
	vb.producer.Close()
}

// snapshotSource adapts the vBucket to dcp.SnapshotSource: the
// deduplicated latest versions (including tombstones) come from the
// hash table, with evicted values restored from storage.
type snapshotSource VBucket

func (s *snapshotSource) Snapshot(fromExclusive uint64) ([]dcp.Mutation, uint64, error) {
	vb := (*VBucket)(s)
	var items []dcp.Mutation
	var readErr error
	// high is the max seqno observed in the table snapshot itself, NOT
	// Table.HighSeqno() read afterwards: a mutation applied during the
	// scan may be missing from the snapshot, and a too-high watermark
	// would make the stream dedup (drop) its live copy.
	var high uint64
	inCache := map[string]bool{}
	vb.Table.ForEachAll(func(it cache.Item) bool {
		inCache[it.Key] = true
		if it.Seqno > high {
			high = it.Seqno
		}
		if it.Seqno <= fromExclusive {
			return true
		}
		m := dcp.Mutation{
			Key: it.Key, Value: it.Value, Seqno: it.Seqno, CAS: it.CAS,
			RevSeqno: it.RevSeqno, Flags: it.Flags, Expiry: it.Expiry, Deleted: it.Deleted,
		}
		if !it.Deleted && !it.Resident {
			rec, err := vb.file.Get(it.Key)
			if err != nil {
				readErr = err
				return false
			}
			m.Value = rec.Value
		}
		items = append(items, m)
		return true
	})
	if readErr != nil {
		return nil, 0, readErr
	}
	// Full-eviction mode: documents may exist only on disk. Merge the
	// storage engine's latest versions for keys absent from the cache
	// (anything present in the cache is at least as new in memory).
	if vb.cfg.FullEviction {
		err := vb.file.ScanBySeqno(fromExclusive, vb.file.HighSeqno(), func(r storage.Record) bool {
			if inCache[r.Key] {
				return true
			}
			items = append(items, dcp.Mutation{
				Key: r.Key, Value: r.Value, Seqno: r.Seqno, CAS: r.CAS,
				RevSeqno: r.RevSeqno, Flags: r.Flags, Expiry: r.Expiry, Deleted: r.Deleted,
			})
			if r.Seqno > high {
				high = r.Seqno
			}
			return true
		})
		if err != nil {
			return nil, 0, err
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Seqno < items[j].Seqno })
	return items, high, nil
}
