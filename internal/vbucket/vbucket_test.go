package vbucket

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"couchgo/internal/cache"
	"couchgo/internal/dcp"
	"couchgo/internal/storage"
)

var bg = context.Background()

func newVB(t *testing.T, state State, cfg Config) (*VBucket, *storage.VBFile) {
	t.Helper()
	f, err := storage.Open(filepath.Join(t.TempDir(), "vb.couch"), false)
	if err != nil {
		t.Fatal(err)
	}
	vb := New(0, f, state, cfg)
	t.Cleanup(func() { vb.Close(); f.Close() })
	return vb, f
}

func TestMemoryFirstWritePath(t *testing.T) {
	vb, f := newVB(t, Active, Config{})
	it, err := vb.Set(bg, "k", []byte(`{"v":1}`), 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The write is acknowledged from memory; it reaches disk async.
	got, err := vb.Get(bg, "k", 0)
	if err != nil || string(got.Value) != `{"v":1}` {
		t.Fatalf("read-your-write from cache: %+v %v", got, err)
	}
	if err := vb.WaitPersist(context.Background(), it.Seqno, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rec, err := f.Get("k")
	if err != nil || string(rec.Value) != `{"v":1}` {
		t.Fatalf("persisted doc: %+v %v", rec, err)
	}
	if rec.Seqno != it.Seqno || rec.CAS != it.CAS {
		t.Error("persisted metadata mismatch")
	}
}

func TestNonActiveRejectsKVOps(t *testing.T) {
	vb, _ := newVB(t, Replica, Config{})
	ops := []func() error{
		func() error { _, err := vb.Get(bg, "k", 0); return err },
		func() error { _, err := vb.Set(bg, "k", nil, 0, 0, 0, 0); return err },
		func() error { _, err := vb.Add(bg, "k", nil, 0, 0, 0); return err },
		func() error { _, err := vb.Replace(bg, "k", nil, 0, 0, 0, 0); return err },
		func() error { _, err := vb.Delete(bg, "k", 0, 0); return err },
		func() error { _, err := vb.Touch(bg, "k", 0, 0); return err },
		func() error { _, err := vb.GetAndLock(bg, "k", 1, 0); return err },
		func() error { return vb.Unlock(bg, "k", 1, 0) },
	}
	for i, op := range ops {
		if err := op(); err == nil || !isNotMyVBucket(err) {
			t.Errorf("op %d on replica: %v", i, err)
		}
	}
	// Promotion makes them work.
	vb.SetState(Active)
	if _, err := vb.Set(bg, "k", []byte("v"), 0, 0, 0, 0); err != nil {
		t.Errorf("after promotion: %v", err)
	}
}

func isNotMyVBucket(err error) bool {
	for e := err; e != nil; {
		if e == ErrNotMyVBucket {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func TestDCPStreamSeesWrites(t *testing.T) {
	vb, _ := newVB(t, Active, Config{})
	s, err := vb.Producer().OpenStream("consumer", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	vb.Set(bg, "a", []byte("1"), 0, 0, 0, 0)
	vb.Set(bg, "b", []byte("2"), 0, 0, 0, 0)
	vb.Delete(bg, "a", 0, 0)
	var muts []dcp.Mutation
	timeout := time.After(5 * time.Second)
	for len(muts) < 3 {
		select {
		case m := <-s.C():
			muts = append(muts, m)
		case <-timeout:
			t.Fatalf("got %d mutations", len(muts))
		}
	}
	if muts[0].Key != "a" || muts[1].Key != "b" || !muts[2].Deleted {
		t.Errorf("stream: %+v", muts)
	}
}

func TestDCPBackfillRestoresEvictedValues(t *testing.T) {
	vb, _ := newVB(t, Active, Config{})
	it, _ := vb.Set(bg, "cold", []byte("payload"), 0, 0, 0, 0)
	vb.WaitPersist(context.Background(), it.Seqno, 5*time.Second)
	vb.Table.EvictValue("cold")
	s, err := vb.Producer().OpenStream("late", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	select {
	case m := <-s.C():
		if string(m.Value) != "payload" {
			t.Errorf("backfill value = %q", m.Value)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no backfill")
	}
}

func TestGetBGFetchesEvictedValue(t *testing.T) {
	vb, _ := newVB(t, Active, Config{})
	it, _ := vb.Set(bg, "k", []byte("big-value"), 0, 0, 0, 0)
	vb.WaitPersist(context.Background(), it.Seqno, 5*time.Second)
	if freed := vb.Table.EvictValue("k"); freed <= 0 {
		t.Fatal("evict failed")
	}
	got, err := vb.Get(bg, "k", 0)
	if err != nil || string(got.Value) != "big-value" {
		t.Fatalf("bgfetch: %+v %v", got, err)
	}
	// The value is resident again.
	if _, err := vb.Table.Get("k", 0); err != nil {
		t.Errorf("value should be resident after bgfetch: %v", err)
	}
}

func TestDurabilityReplicateTo(t *testing.T) {
	vb, _ := newVB(t, Active, Config{})
	it, _ := vb.Set(bg, "k", []byte("v"), 0, 0, 0, 0)
	// No replicas acked: wait times out.
	if err := vb.WaitReplicas(context.Background(), it.Seqno, 1, 50*time.Millisecond); err != ErrTimeout {
		t.Fatalf("expected timeout, got %v", err)
	}
	// Ack arrives asynchronously.
	go func() {
		time.Sleep(20 * time.Millisecond)
		vb.AckReplica("replica-1", it.Seqno)
	}()
	if err := vb.WaitReplicas(context.Background(), it.Seqno, 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Two replicas required but only one acked.
	if err := vb.WaitReplicas(context.Background(), it.Seqno, 2, 50*time.Millisecond); err != ErrTimeout {
		t.Fatalf("expected timeout for 2 replicas, got %v", err)
	}
}

func TestFlusherDedupsBatch(t *testing.T) {
	f, err := storage.Open(filepath.Join(t.TempDir(), "vb.couch"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Slow disk so updates pile up in the queue and aggregate.
	vb := New(0, f, Active, Config{DiskDelay: 30 * time.Millisecond})
	defer vb.Close()
	var last cache.Item
	for i := 0; i < 200; i++ {
		last, _ = vb.Set(bg, "hot", []byte(fmt.Sprintf("v%d", i)), 0, 0, 0, 0)
	}
	if err := vb.WaitPersist(context.Background(), last.Seqno, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	// 200 updates but far fewer records hit disk thanks to aggregation.
	if st.Items != 1 {
		t.Fatalf("items = %d", st.Items)
	}
	if frag := f.Fragmentation(); frag > 0.9 {
		t.Errorf("aggregation ineffective: frag %v", frag)
	}
	rec, _ := f.Get("hot")
	if string(rec.Value) != "v199" {
		t.Errorf("final value = %q", rec.Value)
	}
}

func TestWarmUpAfterRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vb.couch")
	f, _ := storage.Open(path, false)
	vb := New(0, f, Active, Config{})
	var last cache.Item
	for i := 0; i < 20; i++ {
		last, _ = vb.Set(bg, fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%d", i)), 0, 0, 0, 0)
	}
	vb.Delete(bg, "k00", 0, 0)
	vb.DrainDisk(5 * time.Second)
	_ = last
	vb.Close()
	f.Close()

	f2, err := storage.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	vb2 := New(0, f2, Active, Config{})
	defer func() { vb2.Close(); f2.Close() }()
	if err := vb2.WarmUp(); err != nil {
		t.Fatal(err)
	}
	got, err := vb2.Get(bg, "k07", 0)
	if err != nil || string(got.Value) != "v7" {
		t.Fatalf("warmed doc: %v %v", got, err)
	}
	if _, err := vb2.Get(bg, "k00", 0); err != cache.ErrKeyNotFound {
		t.Errorf("deleted doc after warmup: %v", err)
	}
	// Seqno clock continues past the recovered history.
	it, _ := vb2.Set(bg, "new", []byte("nv"), 0, 0, 0, 0)
	if it.Seqno <= vb2.PersistedSeqno() && it.Seqno <= 21 {
		t.Errorf("seqno did not continue: %d", it.Seqno)
	}
}

func TestApplyReplicaPreservesMetadata(t *testing.T) {
	vb, _ := newVB(t, Replica, Config{})
	vb.ApplyReplica(dcp.Mutation{Key: "k", Value: []byte("v"), Seqno: 42, CAS: 7, RevSeqno: 3})
	meta, err := vb.GetMeta("k")
	if err != nil || meta.CAS != 7 || meta.RevSeqno != 3 || meta.Seqno != 42 {
		t.Fatalf("replica meta: %+v %v", meta, err)
	}
	// Replica mutations are persisted too.
	if err := vb.WaitPersist(context.Background(), 42, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Promote and continue the seqno lineage.
	vb.SetState(Active)
	it, _ := vb.Set(bg, "k2", []byte("v2"), 0, 0, 0, 0)
	if it.Seqno != 43 {
		t.Errorf("promoted seqno = %d, want 43", it.Seqno)
	}
}

func TestDrainDiskAndClose(t *testing.T) {
	vb, f := newVB(t, Active, Config{})
	for i := 0; i < 50; i++ {
		vb.Set(bg, fmt.Sprintf("k%d", i), []byte("v"), 0, 0, 0, 0)
	}
	if err := vb.DrainDisk(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if f.HighSeqno() != 50 {
		t.Errorf("persisted high = %d", f.HighSeqno())
	}
	vb.Close()
	vb.Close() // idempotent
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Active: "active", Replica: "replica", Pending: "pending", Dead: "dead"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestFullEvictionRoundTrip(t *testing.T) {
	f, err := storage.Open(filepath.Join(t.TempDir(), "vb.couch"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	vb := New(0, f, Active, Config{FullEviction: true})
	defer vb.Close()

	it, _ := vb.Set(bg, "k", []byte(`{"v": 1}`), 7, 0, 0, 0)
	vb.WaitPersist(context.Background(), it.Seqno, 5*time.Second)
	// Fully evict: key + metadata gone from memory.
	if !vb.Table.EvictItem("k", vb.PersistedSeqno(), 0) {
		t.Fatal("evict failed")
	}
	if _, err := vb.Table.GetMeta("k"); err != cache.ErrKeyNotFound {
		t.Fatal("item should be gone from cache")
	}
	// Read restores from disk with the original metadata.
	got, err := vb.Get(bg, "k", 0)
	if err != nil || string(got.Value) != `{"v": 1}` {
		t.Fatalf("get after full eviction: %+v %v", got, err)
	}
	if got.CAS != it.CAS || got.Seqno != it.Seqno || got.Flags != 7 {
		t.Fatalf("metadata lost: %+v vs %+v", got, it)
	}
}

func TestFullEvictionRevLineageContinues(t *testing.T) {
	f, _ := storage.Open(filepath.Join(t.TempDir(), "vb.couch"), false)
	defer f.Close()
	vb := New(0, f, Active, Config{FullEviction: true})
	defer vb.Close()
	it, _ := vb.Set(bg, "k", []byte("v1"), 0, 0, 0, 0)
	it2, _ := vb.Set(bg, "k", []byte("v2"), 0, 0, 0, 0)
	vb.WaitPersist(context.Background(), it2.Seqno, 5*time.Second)
	vb.Table.EvictItem("k", vb.PersistedSeqno(), 0)
	// A write to the evicted key must continue the rev lineage (3),
	// not restart it — XDCR conflict resolution depends on this.
	it3, err := vb.Set(bg, "k", []byte("v3"), 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if it3.RevSeqno != 3 {
		t.Fatalf("rev lineage broke: %d, want 3", it3.RevSeqno)
	}
	// CAS against the pre-eviction CAS still works.
	vb.WaitPersist(context.Background(), it3.Seqno, 5*time.Second)
	vb.Table.EvictItem("k", vb.PersistedSeqno(), 0)
	if _, err := vb.Set(bg, "k", []byte("v4"), 0, 0, it2.CAS, 0); err != cache.ErrCASMismatch {
		t.Fatalf("stale CAS on evicted key: %v", err)
	}
	if _, err := vb.Set(bg, "k", []byte("v4"), 0, 0, it3.CAS, 0); err != nil {
		t.Fatalf("fresh CAS on evicted key: %v", err)
	}
	// Add on an evicted key conflicts (the key exists on disk).
	vb.DrainDisk(5 * time.Second)
	vb.Table.EvictItem("k", vb.PersistedSeqno(), 0)
	if _, err := vb.Add(bg, "k", []byte("x"), 0, 0, 0); err != cache.ErrKeyExists {
		t.Fatalf("Add on evicted key: %v", err)
	}
	_ = it
}

func TestFullEvictionDCPSnapshotMergesDisk(t *testing.T) {
	f, _ := storage.Open(filepath.Join(t.TempDir(), "vb.couch"), false)
	defer f.Close()
	vb := New(0, f, Active, Config{FullEviction: true})
	defer vb.Close()
	for i := 0; i < 20; i++ {
		vb.Set(bg, fmt.Sprintf("k%02d", i), []byte("v"), 0, 0, 0, 0)
	}
	vb.DrainDisk(5 * time.Second)
	// Evict half the items entirely.
	for i := 0; i < 20; i += 2 {
		if !vb.Table.EvictItem(fmt.Sprintf("k%02d", i), vb.PersistedSeqno(), 0) {
			t.Fatalf("evict k%02d failed", i)
		}
	}
	// A late-joining DCP stream must still see all 20 documents.
	s, err := vb.Producer().OpenStream("late", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	seen := map[string]bool{}
	timeout := time.After(5 * time.Second)
	for len(seen) < 20 {
		select {
		case m := <-s.C():
			if seen[m.Key] {
				t.Fatalf("duplicate %s in merged snapshot", m.Key)
			}
			seen[m.Key] = true
		case <-timeout:
			t.Fatalf("merged snapshot delivered only %d docs", len(seen))
		}
	}
}
