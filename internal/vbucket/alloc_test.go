package vbucket

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"couchgo/internal/events"
	"couchgo/internal/storage"
)

// TestSetPublishAllocBudget bounds the full hot write path: cache
// install, disk-queue enqueue, and DCP publish with a live stream
// draining. AllocsPerRun counts process-wide mallocs, so the budget
// includes the flusher and stream consumer riding along — it is a
// tripwire against per-op garbage creeping into any layer of the
// path, not an exact count.
func TestSetPublishAllocBudget(t *testing.T) {
	vb, _ := newVB(t, Active, Config{})

	s, err := vb.Producer().ResumeStream("gate", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range s.C() {
		}
	}()

	value := make([]byte, 1024)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "user" + strconv.Itoa(1000000+i)
	}
	i := 0
	n := testing.AllocsPerRun(500, func() {
		if _, err := vb.Set(bg, keys[i%len(keys)], value, 0, 0, 0, 0); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// Measured ~8 (item box + flush entry + DCP mutation + batch
	// bookkeeping across goroutines); 16 leaves headroom for scheduling
	// variance while still catching a path that starts copying values
	// or building strings per op.
	const budget = 16
	if n > budget {
		t.Errorf("Set→enqueue→publish allocates %.1f times per op, budget %d", n, budget)
	}
}

// TestSlowCommitJournaled is the regression test for the max-latency
// outliers: when a disk commit stalls, the front-end write path must
// stay fast (memory-first acknowledgement), and the stall itself must
// surface as a SlowOp journal event naming the blocking site — not
// just as an anonymous latency spike.
func TestSlowCommitJournaled(t *testing.T) {
	old := slowOpThreshold
	slowOpThreshold = time.Millisecond
	defer func() { slowOpThreshold = old }()

	vb, _ := newVB(t, Active, Config{DiskDelay: 20 * time.Millisecond})

	start := time.Now()
	it, err := vb.Set(bg, "k", []byte("v"), 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Errorf("front-end Set took %v; must not wait on the slow disk", d)
	}

	if err := vb.WaitPersist(bg, it.Seqno, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		var found *events.Event
		for _, ev := range events.Default.Events(events.Filter{Type: events.SlowOp}) {
			if ev.Fields["site"] == "storage.Append" && ev.Fields["vb"] == "0" {
				found = &ev
				break
			}
		}
		if found != nil {
			if !strings.Contains(found.Msg, "slow disk commit") {
				t.Errorf("unexpected slow-op message %q", found.Msg)
			}
			if found.Fields["duration"] == "" || found.Fields["batch_items"] == "" {
				t.Errorf("slow-op event missing fields: %+v", found.Fields)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no SlowOp event journaled for the stalled commit")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func BenchmarkSetPublish(b *testing.B) {
	f, err := storage.Open(filepath.Join(b.TempDir(), "vb.couch"), false)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	vb := New(0, f, Active, Config{})
	defer vb.Close()
	value := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vb.Set(bg, "user4316891766", value, 0, 0, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
