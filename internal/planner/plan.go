// Package planner implements N1QL query planning (paper §4.5): "the
// N1QL query planner analyzes the query and available access path
// options for each keyspace in the query to pick an appropriate plan
// ... The planner needs to first select the access path for each
// bucket, determine the join order, and then determine the type of the
// join operation."
//
// The access paths are the three scans of §4.5.3 — KeyScan (USE KEYS),
// IndexScan (a qualifying view or GSI secondary index), and PrimaryScan
// (the full-scan fallback) — plus the covering-index optimization of
// §5.1.2 that skips the Fetch entirely when the index already contains
// every field the query needs.
package planner

import (
	"fmt"

	"couchgo/internal/n1ql"
)

// IndexInfo is the catalog's description of one available index.
type IndexInfo struct {
	Name           string
	Using          n1ql.IndexUsing
	IsPrimary      bool
	SecCanonical   []string // formalized key expressions
	WhereCanonical string   // formalized partial-index predicate
	IsArray        bool
	Built          bool
}

// Catalog resolves keyspaces and their indexes (the Query Catalog
// component of §4.3.5).
type Catalog interface {
	KeyspaceExists(name string) bool
	Indexes(keyspace string) []IndexInfo
}

// Span is a one-dimensional range over an index's leading keys. All
// bound expressions must be constant (literals/parameters), evaluated
// once at execution start.
type Span struct {
	// Equal, when set, is a full equality key on the leading columns.
	Equal    []n1ql.Expr
	Low      []n1ql.Expr
	High     []n1ql.Expr
	LowIncl  bool
	HighIncl bool
}

// IsFull reports whether the span covers the whole index.
func (s Span) IsFull() bool {
	return s.Equal == nil && s.Low == nil && s.High == nil
}

func exprStrings(es []n1ql.Expr) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.String()
	}
	return out
}

// Describe renders the span for EXPLAIN output.
func (s Span) Describe() map[string]any {
	out := map[string]any{}
	if s.Equal != nil {
		out["equal"] = exprStrings(s.Equal)
	}
	if s.Low != nil {
		out["low"] = exprStrings(s.Low)
		out["low_inclusive"] = s.LowIncl
	}
	if s.High != nil {
		out["high"] = exprStrings(s.High)
		out["high_inclusive"] = s.HighIncl
	}
	if s.IsFull() {
		out["full"] = true
	}
	return out
}

// Scan is the chosen keyspace access path.
type Scan interface {
	Describe() map[string]any
}

// KeyScan retrieves documents for explicitly provided IDs (USE KEYS,
// §4.5.3: "when specific document IDs (primary keys) are available").
type KeyScan struct {
	Keys n1ql.Expr
}

func (k *KeyScan) Describe() map[string]any {
	return map[string]any{"#operator": "KeyScan", "keys": k.Keys.String()}
}

// IndexScan filters the keyspace through a secondary index, returning
// qualifying document IDs (and key values, for covering scans).
type IndexScan struct {
	Index   string
	Using   n1ql.IndexUsing
	Span    Span
	Reverse bool
	// Covering: the scan satisfies the whole query; no Fetch needed.
	Covering bool
	// Limit pushed into the scan when no residual filtering can drop
	// rows (exact span, no joins).
	PushedLimit bool
}

func (s *IndexScan) Describe() map[string]any {
	out := map[string]any{
		"#operator": "IndexScan",
		"index":     s.Index,
		"using":     s.Using.String(),
		"spans":     s.Span.Describe(),
	}
	if s.Covering {
		out["covering"] = true
	}
	if s.Reverse {
		out["reverse"] = true
	}
	return out
}

// PrimaryScan is the full-scan fallback (§4.5.3: "the equivalent of a
// full table scan ... quite expensive, and the average time to return
// results increases linearly with the number of documents").
type PrimaryScan struct {
	Index string
	Using n1ql.IndexUsing
	Span  Span // meta().id ranges still sarg onto the primary index
}

func (s *PrimaryScan) Describe() map[string]any {
	return map[string]any{
		"#operator": "PrimaryScan",
		"index":     s.Index,
		"using":     s.Using.String(),
		"spans":     s.Span.Describe(),
	}
}

// ScanSummary names a plan's access path in one token — e.g.
// "IndexScan(idx_age)" or "PrimaryScan" — compact enough for a trace
// annotation or log line where Describe() would be too much.
func ScanSummary(s Scan) string {
	switch t := s.(type) {
	case *KeyScan:
		return "KeyScan"
	case *IndexScan:
		if t.Covering {
			return "IndexScan(" + t.Index + ",covering)"
		}
		return "IndexScan(" + t.Index + ")"
	case *PrimaryScan:
		return "PrimaryScan(" + t.Index + ")"
	case nil:
		return "ExpressionScan"
	default:
		return fmt.Sprintf("%T", s)
	}
}

// SelectPlan is the full plan for a SELECT: the scan followed by the
// Figure-11 operator pipeline (Fetch → Join/Nest/Unnest → Filter →
// Group → Project → Distinct → Sort → Offset → Limit).
type SelectPlan struct {
	Keyspace string
	Alias    string
	Scan     Scan
	// Fetch is false for covering scans and FROM-less selects.
	Fetch bool

	Joins   []n1ql.JoinTerm
	Unnests []n1ql.UnnestTerm

	// Where is the residual filter (possibly cover-rewritten).
	Where n1ql.Expr

	GroupBy []n1ql.Expr
	Having  n1ql.Expr
	// Aggregates collected from projection/having/order, in discovery
	// order; the executor binds their results per group.
	Aggregates []*n1ql.FuncCall

	Projection []n1ql.ResultTerm
	Raw        bool
	Distinct   bool

	OrderBy []n1ql.OrderTerm
	// OrderFromIndex: the index scan already delivers ORDER BY order.
	OrderFromIndex bool
	Limit, Offset  n1ql.Expr

	// CoverIDName / CoverNames: binding names the executor populates
	// from the index scan for covering plans. CoverNames[i] receives
	// SecKey[i].
	CoverIDName string
	CoverNames  []string
}

// Describe renders the plan tree for EXPLAIN (§4.5.3's EXPLAIN
// statement), operator by operator in execution order.
func (p *SelectPlan) Describe() map[string]any {
	var ops []map[string]any
	if p.Scan != nil {
		ops = append(ops, p.Scan.Describe())
	}
	if p.Fetch {
		ops = append(ops, map[string]any{"#operator": "Fetch", "keyspace": p.Keyspace, "as": p.Alias})
	}
	for _, j := range p.Joins {
		name := "Join"
		if j.Nest {
			name = "Nest"
		}
		op := map[string]any{"#operator": name, "keyspace": j.Keyspace, "as": j.Alias}
		if j.OnKeys != nil {
			op["on_keys"] = j.OnKeys.String()
		} else if j.OnCond != nil {
			op["on"] = j.OnCond.String()
			op["method"] = "hash/nested-loop"
		}
		if j.Kind == n1ql.JoinLeftOuter {
			op["outer"] = true
		}
		ops = append(ops, op)
	}
	for _, u := range p.Unnests {
		op := map[string]any{"#operator": "Unnest", "expr": u.Expr.String(), "as": u.Alias}
		if u.Kind == n1ql.JoinLeftOuter {
			op["outer"] = true
		}
		ops = append(ops, op)
	}
	if p.Where != nil {
		ops = append(ops, map[string]any{"#operator": "Filter", "condition": p.Where.String()})
	}
	if len(p.GroupBy) > 0 || len(p.Aggregates) > 0 {
		op := map[string]any{"#operator": "Group", "by": exprStrings(p.GroupBy)}
		var aggs []string
		for _, a := range p.Aggregates {
			aggs = append(aggs, a.String())
		}
		op["aggregates"] = aggs
		ops = append(ops, op)
		if p.Having != nil {
			ops = append(ops, map[string]any{"#operator": "Filter", "condition": p.Having.String()})
		}
	}
	var proj []string
	for _, rt := range p.Projection {
		switch {
		case rt.Star && rt.Expr == nil:
			proj = append(proj, "*")
		case rt.Star:
			proj = append(proj, rt.Expr.String()+".*")
		default:
			proj = append(proj, rt.Expr.String())
		}
	}
	ops = append(ops, map[string]any{"#operator": "InitialProject", "result_terms": proj})
	if p.Distinct {
		ops = append(ops, map[string]any{"#operator": "Distinct"})
	}
	if len(p.OrderBy) > 0 && !p.OrderFromIndex {
		var terms []string
		for _, ot := range p.OrderBy {
			s := ot.Expr.String()
			if ot.Desc {
				s += " DESC"
			}
			terms = append(terms, s)
		}
		ops = append(ops, map[string]any{"#operator": "Sort", "terms": terms})
	}
	if p.Offset != nil {
		ops = append(ops, map[string]any{"#operator": "Offset", "expr": p.Offset.String()})
	}
	if p.Limit != nil {
		ops = append(ops, map[string]any{"#operator": "Limit", "expr": p.Limit.String()})
	}
	ops = append(ops, map[string]any{"#operator": "FinalProject"})
	return map[string]any{"#operator": "Sequence", "operators": ops, "keyspace": p.Keyspace}
}

// PlanError wraps planning failures with the offending statement part.
type PlanError struct {
	Part string
	Err  error
}

func (e *PlanError) Error() string { return fmt.Sprintf("planner: %s: %v", e.Part, e.Err) }
func (e *PlanError) Unwrap() error { return e.Err }
