package planner

import (
	"strings"
	"testing"

	"couchgo/internal/n1ql"
)

// fakeCatalog serves a fixed index set for keyspace "Profile".
type fakeCatalog struct {
	indexes []IndexInfo
}

func (f *fakeCatalog) KeyspaceExists(name string) bool { return name == "Profile" || name == "orders" }
func (f *fakeCatalog) Indexes(string) []IndexInfo      { return f.indexes }

func idx(name string, primary bool, keys ...string) IndexInfo {
	return IndexInfo{Name: name, IsPrimary: primary, SecCanonical: keys, Built: true}
}

func plan(t *testing.T, src string, cat Catalog) *SelectPlan {
	t.Helper()
	stmt, err := n1ql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	p, err := PlanSelect(stmt.(*n1ql.Select), cat)
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	return p
}

func planErr(t *testing.T, src string, cat Catalog) error {
	t.Helper()
	stmt, err := n1ql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	_, err = PlanSelect(stmt.(*n1ql.Select), cat)
	if err == nil {
		t.Fatalf("plan %q should fail", src)
	}
	return err
}

func TestUseKeysBecomesKeyScan(t *testing.T) {
	cat := &fakeCatalog{}
	p := plan(t, `SELECT * FROM Profile USE KEYS "k1"`, cat)
	if _, ok := p.Scan.(*KeyScan); !ok {
		t.Fatalf("scan = %T", p.Scan)
	}
	if !p.Fetch {
		t.Error("keyscan needs fetch")
	}
}

func TestNoIndexErrors(t *testing.T) {
	cat := &fakeCatalog{}
	err := planErr(t, "SELECT * FROM Profile WHERE age > 1", cat)
	if !strings.Contains(err.Error(), "no index available") {
		t.Errorf("err = %v", err)
	}
	err = planErr(t, "SELECT * FROM nope", cat)
	if !strings.Contains(err.Error(), "keyspace not found") {
		t.Errorf("err = %v", err)
	}
}

func TestPrimaryScanFallback(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{
		{Name: "#primary", IsPrimary: true, SecCanonical: []string{"meta().id"}, Built: true},
	}}
	p := plan(t, "SELECT * FROM Profile WHERE age > 1", cat)
	ps, ok := p.Scan.(*PrimaryScan)
	if !ok {
		t.Fatalf("scan = %T", p.Scan)
	}
	if !ps.Span.IsFull() {
		t.Error("unrestricted primary scan should have a full span")
	}
	if !p.Fetch {
		t.Error("primary scan needs fetch")
	}
}

func TestWorkloadEPlansAsPrimaryRange(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{
		{Name: "#primary", IsPrimary: true, SecCanonical: []string{"meta().id"}, Built: true},
	}}
	p := plan(t, "SELECT meta().id AS id FROM Profile WHERE meta().id >= $1 LIMIT $2", cat)
	ps, ok := p.Scan.(*PrimaryScan)
	if !ok {
		t.Fatalf("scan = %T", p.Scan)
	}
	if len(ps.Span.Low) != 1 || ps.Span.Low[0].String() != "$1" || !ps.Span.LowIncl {
		t.Errorf("span: %+v", ps.Span.Describe())
	}
	// meta().id is always derivable: the scan covers the query.
	if p.Fetch {
		t.Error("meta().id-only query should not fetch")
	}
}

func TestEqualityPrefersMostSpecificIndex(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{
		idx("#primary", true, "meta().id"),
		idx("byAge", false, "self.age"),
		idx("byCityAge", false, "self.city", "self.age"),
	}}
	p := plan(t, `SELECT name FROM Profile WHERE city = "SF" AND age = 30`, cat)
	is, ok := p.Scan.(*IndexScan)
	if !ok {
		t.Fatalf("scan = %T", p.Scan)
	}
	if is.Index != "byCityAge" {
		t.Errorf("chose %s", is.Index)
	}
	if len(is.Span.Equal) != 2 {
		t.Errorf("span: %+v", is.Span.Describe())
	}
}

func TestRangeSpans(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{idx("byAge", false, "self.age")}}
	p := plan(t, "SELECT name FROM Profile WHERE age > 21 AND age <= 65", cat)
	is := p.Scan.(*IndexScan)
	sp := is.Span
	if sp.Low == nil || sp.Low[0].String() != "21" || sp.LowIncl {
		t.Errorf("low: %+v", sp.Describe())
	}
	if sp.High == nil || sp.High[0].String() != "65" || !sp.HighIncl {
		t.Errorf("high: %+v", sp.Describe())
	}
	// Reversed operand order sargs too.
	p = plan(t, "SELECT name FROM Profile WHERE 21 < age", cat)
	sp = p.Scan.(*IndexScan).Span
	if sp.Low == nil || sp.Low[0].String() != "21" {
		t.Errorf("flipped: %+v", sp.Describe())
	}
	// BETWEEN.
	p = plan(t, "SELECT name FROM Profile WHERE age BETWEEN 20 AND 30", cat)
	sp = p.Scan.(*IndexScan).Span
	if sp.Low[0].String() != "20" || !sp.LowIncl || sp.High[0].String() != "30" || !sp.HighIncl {
		t.Errorf("between: %+v", sp.Describe())
	}
}

func TestEqualityPrefixPlusRange(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{idx("byCityAge", false, "self.city", "self.age")}}
	p := plan(t, `SELECT name FROM Profile WHERE city = "SF" AND age > 30`, cat)
	sp := p.Scan.(*IndexScan).Span
	if len(sp.Low) != 2 || sp.Low[0].String() != `"SF"` || sp.Low[1].String() != "30" || sp.LowIncl {
		t.Errorf("low: %+v", sp.Describe())
	}
	if len(sp.High) != 1 || !sp.HighIncl {
		t.Errorf("high: %+v", sp.Describe())
	}
}

func TestPartialIndexRequiresPredicate(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{
		idx("#primary", true, "meta().id"),
		{Name: "over21", SecCanonical: []string{"self.age"}, WhereCanonical: "(self.age > 21)", Built: true},
	}}
	// Query that includes the index predicate verbatim can use it.
	p := plan(t, "SELECT name FROM Profile WHERE age > 21", cat)
	if is, ok := p.Scan.(*IndexScan); !ok || is.Index != "over21" {
		t.Errorf("scan = %#v", p.Scan)
	}
	// Query without it must not.
	p = plan(t, "SELECT name FROM Profile WHERE age > 10", cat)
	if _, ok := p.Scan.(*PrimaryScan); !ok {
		t.Errorf("partial index must not serve a wider predicate; scan = %T", p.Scan)
	}
}

func TestUnbuiltIndexSkipped(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{
		idx("#primary", true, "meta().id"),
		{Name: "deferred", SecCanonical: []string{"self.age"}, Built: false},
	}}
	p := plan(t, "SELECT name FROM Profile WHERE age = 1", cat)
	if _, ok := p.Scan.(*PrimaryScan); !ok {
		t.Errorf("deferred index used: %T", p.Scan)
	}
}

func TestCoveringIndex(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{
		idx("#primary", true, "meta().id"),
		idx("emailAge", false, "self.email", "self.age"),
	}}
	// Query touching only indexed fields: covered, no fetch.
	p := plan(t, `SELECT email, age FROM Profile WHERE email > "a"`, cat)
	is := p.Scan.(*IndexScan)
	if !is.Covering || p.Fetch {
		t.Fatalf("should cover: %+v fetch=%v", is, p.Fetch)
	}
	// Rewritten projection reads cover bindings.
	if p.Projection[0].Expr.String() != "`$cover:0`" {
		t.Errorf("projection rewrite: %s", p.Projection[0].Expr)
	}
	if p.Where.String() != "(`$cover:0` > \"a\")" {
		t.Errorf("where rewrite: %s", p.Where)
	}
	if len(p.CoverNames) != 2 || p.CoverIDName == "" {
		t.Errorf("cover names: %+v", p.CoverNames)
	}
	// meta().id is free.
	p = plan(t, `SELECT meta().id, email FROM Profile WHERE email = "x"`, cat)
	if p.Fetch {
		t.Error("meta().id + indexed field should cover")
	}
	// Touching a non-indexed field forces the fetch.
	p = plan(t, `SELECT name FROM Profile WHERE email = "x"`, cat)
	if !p.Fetch || p.Scan.(*IndexScan).Covering {
		t.Error("non-indexed projection must fetch")
	}
	// SELECT * needs the document.
	p = plan(t, `SELECT * FROM Profile WHERE email = "x"`, cat)
	if !p.Fetch {
		t.Error("SELECT * must fetch")
	}
}

func TestCoveringFullIndexScan(t *testing.T) {
	// No sargable predicate, but the query only needs indexed fields: a
	// covering full-index scan beats the primary scan.
	cat := &fakeCatalog{indexes: []IndexInfo{
		idx("#primary", true, "meta().id"),
		idx("byEmail", false, "self.email"),
	}}
	p := plan(t, "SELECT email FROM Profile", cat)
	is, ok := p.Scan.(*IndexScan)
	if !ok || !is.Covering || !is.Span.IsFull() {
		t.Fatalf("scan = %#v", p.Scan)
	}
}

func TestArrayIndexMatchesAnyPredicate(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{
		idx("#primary", true, "meta().id"),
		{Name: "byCat", SecCanonical: []string{"ARRAY c FOR c IN self.categories END"}, IsArray: true, Built: true},
	}}
	p := plan(t, `SELECT name FROM Profile WHERE ANY c IN categories SATISFIES c = "db" END`, cat)
	is, ok := p.Scan.(*IndexScan)
	if !ok || is.Index != "byCat" {
		t.Fatalf("scan = %#v", p.Scan)
	}
	if len(is.Span.Equal) != 1 || is.Span.Equal[0].String() != `"db"` {
		t.Errorf("span: %+v", is.Span.Describe())
	}
	// Different bound variable name still matches.
	p = plan(t, `SELECT name FROM Profile WHERE ANY zz IN categories SATISFIES "db" = zz END`, cat)
	if is, ok := p.Scan.(*IndexScan); !ok || is.Index != "byCat" {
		t.Errorf("alpha-renamed ANY: %#v", p.Scan)
	}
	// EVERY does not match an array index.
	p = plan(t, `SELECT name FROM Profile WHERE EVERY c IN categories SATISFIES c = "db" END`, cat)
	if _, ok := p.Scan.(*PrimaryScan); !ok {
		t.Errorf("EVERY should not use the array index: %T", p.Scan)
	}
}

func TestOrderFromIndex(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{
		idx("#primary", true, "meta().id"),
		idx("byTitle", false, "self.title"),
	}}
	p := plan(t, `SELECT title FROM Profile WHERE title > "a" ORDER BY title`, cat)
	if !p.OrderFromIndex {
		t.Error("index order should eliminate the sort")
	}
	p = plan(t, `SELECT title FROM Profile WHERE title > "a" ORDER BY title DESC`, cat)
	if p.OrderFromIndex {
		t.Error("descending order must not claim index order")
	}
}

func TestAggregateCollection(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{idx("#primary", true, "meta().id")}}
	p := plan(t, "SELECT city, COUNT(*) AS n, SUM(age) FROM Profile GROUP BY city HAVING COUNT(*) > 1", cat)
	if len(p.Aggregates) != 2 {
		t.Fatalf("aggregates: %d", len(p.Aggregates))
	}
	// Aggregates in WHERE are rejected.
	stmt, _ := n1ql.Parse("SELECT 1 FROM Profile WHERE COUNT(*) > 1")
	if _, err := PlanSelect(stmt.(*n1ql.Select), cat); err == nil {
		t.Error("aggregate in WHERE should fail planning")
	}
}

func TestExplainDescribe(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{
		idx("#primary", true, "meta().id"),
		idx("byTitle", false, "self.title"),
	}}
	p := plan(t, `SELECT title FROM Profile WHERE title > "a" ORDER BY title LIMIT 5 OFFSET 1`, cat)
	desc := p.Describe()
	ops := desc["operators"].([]map[string]any)
	var names []string
	for _, op := range ops {
		names = append(names, op["#operator"].(string))
	}
	joined := strings.Join(names, ",")
	// Figure 11's pipeline: scan → (no fetch: covered) → filter →
	// project → offset → limit → final project. Sort is absent (index
	// order).
	if !strings.Contains(joined, "IndexScan") || strings.Contains(joined, "Sort") {
		t.Errorf("operators: %v", names)
	}
	if names[len(names)-1] != "FinalProject" {
		t.Errorf("last op: %v", names)
	}
	// With a join, the Join operator appears.
	p = plan(t, `SELECT * FROM Profile USE KEYS "k" INNER JOIN orders o ON KEYS Profile.oid`, &fakeCatalog{})
	desc = p.Describe()
	found := false
	for _, op := range desc["operators"].([]map[string]any) {
		if op["#operator"] == "Join" {
			found = true
		}
	}
	if !found {
		t.Error("join operator missing from describe")
	}
}

func TestFromlessSelect(t *testing.T) {
	p := plan(t, "SELECT 1 + 1 AS two", &fakeCatalog{})
	if p.Scan != nil || p.Fetch {
		t.Error("fromless select needs no scan")
	}
}

func TestJoinsDisableCovering(t *testing.T) {
	cat := &fakeCatalog{indexes: []IndexInfo{
		idx("#primary", true, "meta().id"),
		idx("byEmail", false, "self.email"),
	}}
	p := plan(t, `SELECT p.email FROM Profile p INNER JOIN orders o ON KEYS p.oid WHERE p.email = "x"`, cat)
	if !p.Fetch {
		t.Error("joins require fetched documents")
	}
}
