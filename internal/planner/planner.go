package planner

import (
	"errors"
	"fmt"
	"strings"

	"couchgo/internal/n1ql"
)

// ErrNoUsableIndex is returned when a query needs a scan but the
// keyspace has neither a qualifying secondary index nor a primary
// index — the real system's "no index available" planning error.
var ErrNoUsableIndex = errors.New("planner: no index available on keyspace (create a primary or secondary index)")

// ErrNoSuchKeyspace rejects queries over unknown buckets.
var ErrNoSuchKeyspace = errors.New("planner: keyspace not found")

// PlanSelect builds the execution plan for a SELECT.
func PlanSelect(sel *n1ql.Select, cat Catalog) (*SelectPlan, error) {
	p := &SelectPlan{
		Keyspace:   sel.Keyspace,
		Alias:      sel.Alias,
		Joins:      sel.Joins,
		Unnests:    sel.Unnests,
		Where:      sel.Where,
		GroupBy:    sel.GroupBy,
		Having:     sel.Having,
		Projection: sel.Projection,
		Raw:        sel.Raw,
		Distinct:   sel.Distinct,
		OrderBy:    sel.OrderBy,
		Limit:      sel.Limit,
		Offset:     sel.Offset,
	}
	if err := collectAggregates(p, sel); err != nil {
		return nil, err
	}
	if sel.Keyspace == "" {
		// FROM-less SELECT: a single empty row flows through the
		// pipeline (SELECT 1+1).
		return p, nil
	}
	if !cat.KeyspaceExists(sel.Keyspace) {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchKeyspace, sel.Keyspace)
	}

	// Access path 1 (§4.5.3 Keyscan): USE KEYS.
	if sel.UseKeys != nil {
		p.Scan = &KeyScan{Keys: sel.UseKeys}
		p.Fetch = true
		return p, nil
	}

	// Access paths 2 and 3: qualifying IndexScan, else PrimaryScan.
	conjuncts := n1ql.ConjunctsOf(sel.Where)
	best := chooseIndex(cat.Indexes(sel.Keyspace), conjuncts, sel)
	if best == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoUsableIndex, sel.Keyspace)
	}
	p.Scan = best.scan
	p.Fetch = !best.covering
	if best.covering {
		applyCoverRewrite(p, best)
	}
	if best.orderFromIndex {
		p.OrderFromIndex = true
	}
	return p, nil
}

// candidate scores one possible access path.
type candidate struct {
	info           IndexInfo
	scan           Scan
	span           Span
	eqKeys         int // number of leading equality keys
	hasRange       bool
	covering       bool
	orderFromIndex bool
	coverNames     []string
	coverIDName    string
	rewrites       map[string]string // canonical -> binding name
	alias          string
}

// chooseIndex picks the best access path: most leading equality keys,
// then a range beats none, then covering beats fetching, with the
// primary index as the fallback of last resort.
func chooseIndex(indexes []IndexInfo, conjuncts []n1ql.Expr, sel *n1ql.Select) *candidate {
	var best *candidate
	var primary *IndexInfo
	for i := range indexes {
		info := indexes[i]
		if !info.Built {
			continue
		}
		if info.IsPrimary && primary == nil {
			primary = &indexes[i]
		}
		c := sargIndex(info, conjuncts, sel)
		if c == nil {
			continue
		}
		if best == nil || betterCandidate(c, best) {
			best = c
		}
	}
	if best != nil {
		return best
	}
	if primary != nil {
		// PrimaryScan; meta().id predicates still restrict the span.
		c := sargIndex(*primary, conjuncts, sel)
		if c == nil {
			c = &candidate{info: *primary, span: Span{}, alias: sel.Alias}
		}
		return &candidate{
			info:           c.info,
			scan:           &PrimaryScan{Index: primary.Name, Using: primary.Using, Span: c.span},
			span:           c.span,
			covering:       c.covering,
			coverNames:     c.coverNames,
			coverIDName:    c.coverIDName,
			rewrites:       c.rewrites,
			orderFromIndex: c.orderFromIndex,
			alias:          sel.Alias,
		}
	}
	return nil
}

func betterCandidate(a, b *candidate) bool {
	if a.eqKeys != b.eqKeys {
		return a.eqKeys > b.eqKeys
	}
	if a.hasRange != b.hasRange {
		return a.hasRange
	}
	if a.covering != b.covering {
		return a.covering
	}
	// Prefer secondary over primary when otherwise equal.
	if a.info.IsPrimary != b.info.IsPrimary {
		return !a.info.IsPrimary
	}
	return false
}

// sargIndex determines whether the index qualifies for the query and
// builds its scan span ("sargable": search-argument-able).
func sargIndex(info IndexInfo, conjuncts []n1ql.Expr, sel *n1ql.Select) *candidate {
	alias := sel.Alias
	// A partial index applies only when its predicate appears verbatim
	// among the query's conjuncts (simple but sound implication).
	if info.WhereCanonical != "" {
		found := false
		for _, cj := range conjuncts {
			if canonicalOf(cj, alias) == info.WhereCanonical {
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	if len(info.SecCanonical) == 0 {
		return nil
	}

	// Match conjuncts against the leading index keys, position by
	// position: equalities extend the prefix; the first range stops it.
	c := &candidate{info: info, alias: alias}
	var equals []n1ql.Expr
	pos := 0
	for ; pos < len(info.SecCanonical); pos++ {
		keyCanon := info.SecCanonical[pos]
		eq, lo, hi, loIncl, hiIncl := matchKey(keyCanon, conjuncts, alias, info.IsArray && pos == 0)
		if eq != nil {
			equals = append(equals, eq)
			continue
		}
		if lo != nil || hi != nil {
			c.hasRange = true
			c.span = Span{Low: nil, High: nil}
			if len(equals) > 0 {
				// Equality prefix + range on the next key.
				if lo != nil {
					c.span.Low = append(append([]n1ql.Expr{}, equals...), lo)
					c.span.LowIncl = loIncl
				} else {
					c.span.Low = append([]n1ql.Expr{}, equals...)
					c.span.LowIncl = true
				}
				if hi != nil {
					c.span.High = append(append([]n1ql.Expr{}, equals...), hi)
					c.span.HighIncl = hiIncl
				} else {
					c.span.High = append([]n1ql.Expr{}, equals...)
					c.span.HighIncl = true
				}
			} else {
				if lo != nil {
					c.span.Low = []n1ql.Expr{lo}
					c.span.LowIncl = loIncl
				}
				if hi != nil {
					c.span.High = []n1ql.Expr{hi}
					c.span.HighIncl = hiIncl
				}
			}
			break
		}
		break
	}
	c.eqKeys = len(equals)
	if len(equals) == len(info.SecCanonical) && len(equals) > 0 {
		c.span = Span{Equal: equals}
	} else if len(equals) > 0 && !c.hasRange {
		// Equality on a leading prefix only: scan that prefix range.
		c.span = Span{Low: equals, High: equals, LowIncl: true, HighIncl: true}
		c.hasRange = true
	}
	if c.eqKeys == 0 && !c.hasRange && !info.IsPrimary {
		// The index doesn't filter anything. It can still win as a
		// covering full-index scan; otherwise reject.
		if !tryCovering(c, sel) {
			return nil
		}
		c.scan = &IndexScan{Index: info.Name, Using: info.Using, Span: c.span, Covering: true}
		c.orderFromIndex = orderMatchesIndex(sel, info)
		return c
	}
	tryCovering(c, sel)
	c.orderFromIndex = orderMatchesIndex(sel, info)
	if info.IsPrimary {
		c.scan = &PrimaryScan{Index: info.Name, Using: info.Using, Span: c.span}
	} else {
		c.scan = &IndexScan{Index: info.Name, Using: info.Using, Span: c.span, Covering: c.covering}
	}
	return c
}

func canonicalOf(e n1ql.Expr, alias string) string {
	return n1ql.Formalize(e, alias).String()
}

// matchKey scans the conjuncts for predicates sargable on one index
// key, returning an equality expression or range bounds.
func matchKey(keyCanon string, conjuncts []n1ql.Expr, alias string, arrayKey bool) (eq, lo, hi n1ql.Expr, loIncl, hiIncl bool) {
	for _, cj := range conjuncts {
		if arrayKey {
			if e := matchArrayPredicate(keyCanon, cj, alias); e != nil {
				return e, nil, nil, false, false
			}
			continue
		}
		switch t := cj.(type) {
		case *n1ql.Binary:
			keySide, constSide, op, ok := orientBinary(t, keyCanon, alias)
			if !ok {
				continue
			}
			_ = keySide
			switch op {
			case n1ql.OpEq:
				return constSide, nil, nil, false, false
			case n1ql.OpGt:
				if lo == nil {
					lo, loIncl = constSide, false
				}
			case n1ql.OpGe:
				if lo == nil {
					lo, loIncl = constSide, true
				}
			case n1ql.OpLt:
				if hi == nil {
					hi, hiIncl = constSide, false
				}
			case n1ql.OpLe:
				if hi == nil {
					hi, hiIncl = constSide, true
				}
			}
		case *n1ql.Between:
			if t.Not {
				continue
			}
			if canonicalOf(t.Operand, alias) == keyCanon && n1ql.IsConstant(t.Lo) && n1ql.IsConstant(t.Hi) {
				if lo == nil {
					lo, loIncl = t.Lo, true
				}
				if hi == nil {
					hi, hiIncl = t.Hi, true
				}
			}
		}
	}
	return nil, lo, hi, loIncl, hiIncl
}

// orientBinary normalizes `key op const` / `const op key` comparisons.
func orientBinary(b *n1ql.Binary, keyCanon, alias string) (keySide, constSide n1ql.Expr, op n1ql.BinOp, ok bool) {
	flip := map[n1ql.BinOp]n1ql.BinOp{
		n1ql.OpEq: n1ql.OpEq, n1ql.OpLt: n1ql.OpGt, n1ql.OpLe: n1ql.OpGe,
		n1ql.OpGt: n1ql.OpLt, n1ql.OpGe: n1ql.OpLe,
	}
	if _, known := flip[b.Op]; !known {
		return nil, nil, 0, false
	}
	if canonicalOf(b.LHS, alias) == keyCanon && n1ql.IsConstant(b.RHS) {
		return b.LHS, b.RHS, b.Op, true
	}
	if canonicalOf(b.RHS, alias) == keyCanon && n1ql.IsConstant(b.LHS) {
		return b.RHS, b.LHS, flip[b.Op], true
	}
	return nil, nil, 0, false
}

// matchArrayPredicate matches `ANY v IN coll SATISFIES v = const END`
// against an array index whose key is `ARRAY v FOR v IN coll END`
// (§6.1.2).
func matchArrayPredicate(keyCanon string, cj n1ql.Expr, alias string) n1ql.Expr {
	cp, ok := cj.(*n1ql.CollPredicate)
	if !ok || cp.Kind != n1ql.CollAny {
		return nil
	}
	sat, ok := cp.Satisfies.(*n1ql.Binary)
	if !ok || sat.Op != n1ql.OpEq {
		return nil
	}
	var elemConst n1ql.Expr
	if id, isIdent := sat.LHS.(*n1ql.Ident); isIdent && id.Name == cp.Var && n1ql.IsConstant(sat.RHS) {
		elemConst = sat.RHS
	} else if id, isIdent := sat.RHS.(*n1ql.Ident); isIdent && id.Name == cp.Var && n1ql.IsConstant(sat.LHS) {
		elemConst = sat.LHS
	}
	if elemConst == nil {
		return nil
	}
	// The predicate's comprehension form must match the index key:
	// ARRAY <var> FOR <var> IN <coll> END.
	equivalent := &n1ql.ArrayComprehension{
		Mapper: &n1ql.Ident{Name: cp.Var},
		Var:    cp.Var,
		Coll:   cp.Coll,
	}
	if canonicalOf(equivalent, alias) != normalizeArrayVar(keyCanon, cp.Var) {
		return nil
	}
	return elemConst
}

// normalizeArrayVar rewrites the index key's bound variable name to the
// predicate's so the canonical comparison is alpha-insensitive.
func normalizeArrayVar(keyCanon, wantVar string) string {
	// keyCanon looks like "ARRAY x FOR x IN self.field END".
	const prefix = "ARRAY "
	if !strings.HasPrefix(keyCanon, prefix) {
		return keyCanon
	}
	rest := keyCanon[len(prefix):]
	sp := strings.Index(rest, " FOR ")
	if sp < 0 {
		return keyCanon
	}
	mapper := rest[:sp]
	rest2 := rest[sp+len(" FOR "):]
	sp2 := strings.Index(rest2, " IN ")
	if sp2 < 0 {
		return keyCanon
	}
	v := rest2[:sp2]
	if mapper != v {
		return keyCanon // only plain element indexes normalize
	}
	tail := rest2[sp2:]
	return prefix + wantVar + " FOR " + wantVar + tail
}

// orderMatchesIndex reports whether ORDER BY is exactly an ascending
// prefix of the index keys (index order can replace the Sort).
func orderMatchesIndex(sel *n1ql.Select, info IndexInfo) bool {
	if len(sel.OrderBy) == 0 || len(sel.OrderBy) > len(info.SecCanonical) {
		return false
	}
	for i, ot := range sel.OrderBy {
		if ot.Desc {
			return false
		}
		if canonicalOf(ot.Expr, sel.Alias) != info.SecCanonical[i] {
			return false
		}
	}
	// Joins/unnests multiply rows unpredictably; keep the Sort then.
	return len(sel.Joins) == 0 && len(sel.Unnests) == 0
}

// tryCovering checks §5.1.2: "a covering index includes all of the
// information needed to satisfy the query". On success it fills the
// candidate's cover bindings.
func tryCovering(c *candidate, sel *n1ql.Select) bool {
	if c.info.IsArray {
		return false // array index entries don't reconstruct the array
	}
	if len(sel.Joins) > 0 {
		return false // joined keyspaces need fetched documents
	}
	keys := map[string]int{}
	for i, k := range c.info.SecCanonical {
		keys[k] = i
	}
	// Every expression the query evaluates must be derivable.
	exprs := collectQueryExprs(sel)
	for _, e := range exprs {
		if !coveredExpr(e, c.alias, keys) {
			return false
		}
	}
	c.covering = true
	c.coverIDName = "$cover:id"
	for i := range c.info.SecCanonical {
		c.coverNames = append(c.coverNames, fmt.Sprintf("$cover:%d", i))
	}
	return true
}

func collectQueryExprs(sel *n1ql.Select) []n1ql.Expr {
	var out []n1ql.Expr
	for _, rt := range sel.Projection {
		if rt.Star {
			// SELECT * needs the whole document.
			out = append(out, &n1ql.Self{})
			continue
		}
		out = append(out, rt.Expr)
	}
	if sel.Where != nil {
		out = append(out, sel.Where)
	}
	for _, g := range sel.GroupBy {
		out = append(out, g)
	}
	if sel.Having != nil {
		out = append(out, sel.Having)
	}
	for _, ot := range sel.OrderBy {
		out = append(out, ot.Expr)
	}
	for _, u := range sel.Unnests {
		out = append(out, u.Expr)
	}
	return out
}

// coveredExpr reports whether e can be computed from the index keys
// plus meta().id.
func coveredExpr(e n1ql.Expr, alias string, keys map[string]int) bool {
	if e == nil {
		return true
	}
	canon := canonicalOf(e, alias)
	if _, ok := keys[canon]; ok {
		return true
	}
	if canon == "meta().id" {
		return true
	}
	if n1ql.IsConstant(e) {
		return true
	}
	switch t := e.(type) {
	case *n1ql.Binary:
		return coveredExpr(t.LHS, alias, keys) && coveredExpr(t.RHS, alias, keys)
	case *n1ql.Unary:
		return coveredExpr(t.Operand, alias, keys)
	case *n1ql.Is:
		return coveredExpr(t.Operand, alias, keys)
	case *n1ql.Between:
		return coveredExpr(t.Operand, alias, keys) && coveredExpr(t.Lo, alias, keys) && coveredExpr(t.Hi, alias, keys)
	case *n1ql.FuncCall:
		for _, a := range t.Args {
			if !coveredExpr(a, alias, keys) {
				return false
			}
		}
		return true
	case *n1ql.ArrayConstruct:
		for _, el := range t.Elems {
			if !coveredExpr(el, alias, keys) {
				return false
			}
		}
		return true
	case *n1ql.ObjectConstruct:
		for _, v := range t.Vals {
			if !coveredExpr(v, alias, keys) {
				return false
			}
		}
		return true
	case *n1ql.CaseExpr:
		if !coveredExpr(t.Operand, alias, keys) || !coveredExpr(t.Else, alias, keys) {
			return false
		}
		for i := range t.Whens {
			if !coveredExpr(t.Whens[i], alias, keys) || !coveredExpr(t.Thens[i], alias, keys) {
				return false
			}
		}
		return true
	}
	// Any other doc reference (bare field, comprehension, meta().cas)
	// requires the document.
	return false
}

// applyCoverRewrite rewrites the plan's expressions so covered
// sub-expressions read from scan bindings instead of the document.
func applyCoverRewrite(p *SelectPlan, c *candidate) {
	keys := map[string]int{}
	for i, k := range c.info.SecCanonical {
		keys[k] = i
	}
	rw := func(e n1ql.Expr) n1ql.Expr { return coverRewrite(e, c.alias, keys, c) }
	p.Where = rw(p.Where)
	p.Having = rw(p.Having)
	for i := range p.GroupBy {
		p.GroupBy[i] = rw(p.GroupBy[i])
	}
	proj := make([]n1ql.ResultTerm, len(p.Projection))
	copy(proj, p.Projection)
	for i := range proj {
		if !proj[i].Star {
			// Pin the derived result name before the rewrite hides the
			// original field reference behind a cover binding.
			if proj[i].Alias == "" {
				switch t := proj[i].Expr.(type) {
				case *n1ql.Ident:
					proj[i].Alias = t.Name
				case *n1ql.Field:
					proj[i].Alias = t.Name
				}
			}
			proj[i].Expr = rw(proj[i].Expr)
		}
	}
	p.Projection = proj
	ob := make([]n1ql.OrderTerm, len(p.OrderBy))
	copy(ob, p.OrderBy)
	for i := range ob {
		ob[i].Expr = rw(ob[i].Expr)
	}
	p.OrderBy = ob
	for i := range p.Aggregates {
		rewritten := rw(p.Aggregates[i])
		if fc, ok := rewritten.(*n1ql.FuncCall); ok {
			p.Aggregates[i] = fc
		}
	}
	p.CoverIDName = c.coverIDName
	p.CoverNames = c.coverNames
}

// coverRewrite replaces covered sub-expressions with Ident references
// to the scan's cover bindings.
func coverRewrite(e n1ql.Expr, alias string, keys map[string]int, c *candidate) n1ql.Expr {
	if e == nil {
		return nil
	}
	canon := canonicalOf(e, alias)
	if i, ok := keys[canon]; ok {
		return &n1ql.Ident{Name: fmt.Sprintf("$cover:%d", i)}
	}
	if canon == "meta().id" {
		return &n1ql.Ident{Name: "$cover:id"}
	}
	switch t := e.(type) {
	case *n1ql.Binary:
		return &n1ql.Binary{Op: t.Op, LHS: coverRewrite(t.LHS, alias, keys, c), RHS: coverRewrite(t.RHS, alias, keys, c)}
	case *n1ql.Unary:
		return &n1ql.Unary{Op: t.Op, Operand: coverRewrite(t.Operand, alias, keys, c)}
	case *n1ql.Is:
		return &n1ql.Is{Kind: t.Kind, Operand: coverRewrite(t.Operand, alias, keys, c)}
	case *n1ql.Between:
		return &n1ql.Between{
			Operand: coverRewrite(t.Operand, alias, keys, c),
			Lo:      coverRewrite(t.Lo, alias, keys, c),
			Hi:      coverRewrite(t.Hi, alias, keys, c),
			Not:     t.Not,
		}
	case *n1ql.FuncCall:
		out := &n1ql.FuncCall{Name: t.Name, Distinct: t.Distinct, Star: t.Star}
		for _, a := range t.Args {
			out.Args = append(out.Args, coverRewrite(a, alias, keys, c))
		}
		return out
	case *n1ql.ArrayConstruct:
		out := &n1ql.ArrayConstruct{}
		for _, el := range t.Elems {
			out.Elems = append(out.Elems, coverRewrite(el, alias, keys, c))
		}
		return out
	case *n1ql.ObjectConstruct:
		out := &n1ql.ObjectConstruct{Names: t.Names}
		for _, v := range t.Vals {
			out.Vals = append(out.Vals, coverRewrite(v, alias, keys, c))
		}
		return out
	case *n1ql.CaseExpr:
		out := &n1ql.CaseExpr{
			Operand: coverRewrite(t.Operand, alias, keys, c),
			Else:    coverRewrite(t.Else, alias, keys, c),
		}
		for i := range t.Whens {
			out.Whens = append(out.Whens, coverRewrite(t.Whens[i], alias, keys, c))
			out.Thens = append(out.Thens, coverRewrite(t.Thens[i], alias, keys, c))
		}
		return out
	}
	return e
}

// collectAggregates finds aggregate calls in projection/having/order
// and validates aggregate placement.
func collectAggregates(p *SelectPlan, sel *n1ql.Select) error {
	seen := map[string]*n1ql.FuncCall{}
	var order []*n1ql.FuncCall
	collect := func(e n1ql.Expr) {
		n1ql.WalkExpr(e, func(x n1ql.Expr) bool {
			if fc, ok := x.(*n1ql.FuncCall); ok && n1ql.IsAggregate(fc.Name) {
				if _, dup := seen[fc.String()]; !dup {
					seen[fc.String()] = fc
					order = append(order, fc)
				}
				return false
			}
			return true
		})
	}
	for _, rt := range sel.Projection {
		if !rt.Star {
			collect(rt.Expr)
		}
	}
	collect(sel.Having)
	for _, ot := range sel.OrderBy {
		collect(ot.Expr)
	}
	if sel.Where != nil && n1ql.HasAggregate(sel.Where) {
		return &PlanError{Part: "WHERE", Err: errors.New("aggregates are not allowed in WHERE")}
	}
	p.Aggregates = order
	return nil
}
