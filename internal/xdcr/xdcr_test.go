package xdcr

import (
	"context"
	"fmt"
	"testing"
	"time"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
)

// newCluster builds a small cluster. Different node counts per cluster
// exercise the topology-awareness claim.
func newCluster(t *testing.T, name string, nodes int) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Config{Dir: t.TempDir(), NumVBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < nodes; i++ {
		if _, err := c.AddNode(cmap.NodeID(fmt.Sprintf("%s-n%d", name, i)), cmap.AllServices); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateBucket("default", core.BucketOptions{}); err != nil {
		t.Fatal(err)
	}
	return c
}

// waitFor polls until cond or the deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBasicReplication(t *testing.T) {
	src := newCluster(t, "west", 2)
	dst := newCluster(t, "east", 3) // different topology
	r, err := Start(src, "default", dst, "default", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	scl, _ := src.OpenBucket("default")
	dcl, _ := dst.OpenBucket("default")
	for i := 0; i < 40; i++ {
		if _, err := scl.Set(context.Background(), fmt.Sprintf("doc%02d", i), []byte(fmt.Sprintf(`{"i": %d}`, i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "replication of 40 docs", func() bool {
		for i := 0; i < 40; i++ {
			if _, err := dcl.Get(context.Background(), fmt.Sprintf("doc%02d", i)); err != nil {
				return false
			}
		}
		return true
	})
	// Values and metadata match.
	sit, _ := scl.Get(context.Background(), "doc07")
	dit, _ := dcl.Get(context.Background(), "doc07")
	if string(dit.Value) != string(sit.Value) || dit.CAS != sit.CAS || dit.RevSeqno != sit.RevSeqno {
		t.Errorf("replica mismatch: %+v vs %+v", dit, sit)
	}
}

func TestDeletesReplicate(t *testing.T) {
	src := newCluster(t, "west", 1)
	dst := newCluster(t, "east", 1)
	r, err := Start(src, "default", dst, "default", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	scl, _ := src.OpenBucket("default")
	dcl, _ := dst.OpenBucket("default")
	scl.Set(context.Background(), "gone", []byte("v"), 0)
	waitFor(t, "initial doc", func() bool {
		_, err := dcl.Get(context.Background(), "gone")
		return err == nil
	})
	scl.Delete(context.Background(), "gone", 0)
	waitFor(t, "tombstone", func() bool {
		_, err := dcl.Get(context.Background(), "gone")
		return err == core.ErrKeyNotFound
	})
}

func TestFilteredReplication(t *testing.T) {
	// §4.6: "filtered replication (based on a regular expression on the
	// document ID)".
	src := newCluster(t, "west", 1)
	dst := newCluster(t, "east", 1)
	r, err := Start(src, "default", dst, "default", Options{FilterExpr: "^user::"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	scl, _ := src.OpenBucket("default")
	dcl, _ := dst.OpenBucket("default")
	scl.Set(context.Background(), "user::1", []byte("u"), 0)
	scl.Set(context.Background(), "session::1", []byte("s"), 0)
	scl.Set(context.Background(), "user::2", []byte("u"), 0)
	waitFor(t, "filtered docs", func() bool {
		_, e1 := dcl.Get(context.Background(), "user::1")
		_, e2 := dcl.Get(context.Background(), "user::2")
		return e1 == nil && e2 == nil
	})
	if _, err := dcl.Get(context.Background(), "session::1"); err != core.ErrKeyNotFound {
		t.Fatalf("filtered-out doc replicated: %v", err)
	}
	if st := r.Stats(); st.Filtered == 0 {
		t.Errorf("stats: %+v", st)
	}
	if _, err := Start(src, "default", dst, "default", Options{FilterExpr: "("}); err == nil {
		t.Error("bad filter regex should fail")
	}
}

func TestConflictResolutionMostUpdatesWins(t *testing.T) {
	// §4.6.1: "the document with the most updates is considered the
	// winner", applied identically on both clusters.
	west := newCluster(t, "west", 1)
	east := newCluster(t, "east", 1)
	wcl, _ := west.OpenBucket("default")
	ecl, _ := east.OpenBucket("default")

	// Both clusters mutate the same key before any replication: west
	// updates it 3 times, east once.
	for i := 0; i < 3; i++ {
		wcl.Set(context.Background(), "conflict", []byte(fmt.Sprintf(`{"site": "west", "v": %d}`, i)), 0)
	}
	ecl.Set(context.Background(), "conflict", []byte(`{"site": "east", "v": 0}`), 0)

	// Bidirectional replication.
	r1, err := Start(west, "default", east, "default", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Stop()
	r2, err := Start(east, "default", west, "default", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Stop()

	// Both converge on west's copy (rev 3 beats rev 1).
	waitFor(t, "convergence", func() bool {
		w, err1 := wcl.Get(context.Background(), "conflict")
		e, err2 := ecl.Get(context.Background(), "conflict")
		return err1 == nil && err2 == nil &&
			string(w.Value) == string(e.Value) &&
			w.RevSeqno == e.RevSeqno
	})
	w, _ := wcl.Get(context.Background(), "conflict")
	if string(w.Value) != `{"site": "west", "v": 2}` {
		t.Errorf("winner: %s", w.Value)
	}
}

func TestConflictTiebreakIsDeterministic(t *testing.T) {
	// Same rev count on both sides: CAS breaks the tie the same way on
	// both clusters.
	west := newCluster(t, "west", 1)
	east := newCluster(t, "east", 1)
	wcl, _ := west.OpenBucket("default")
	ecl, _ := east.OpenBucket("default")
	wcl.Set(context.Background(), "tie", []byte(`{"site": "west"}`), 0)
	ecl.Set(context.Background(), "tie", []byte(`{"site": "east"}`), 0) // same rev (1), later CAS

	r1, _ := Start(west, "default", east, "default", Options{})
	defer r1.Stop()
	r2, _ := Start(east, "default", west, "default", Options{})
	defer r2.Stop()

	waitFor(t, "tie convergence", func() bool {
		w, err1 := wcl.Get(context.Background(), "tie")
		e, err2 := ecl.Get(context.Background(), "tie")
		return err1 == nil && err2 == nil && string(w.Value) == string(e.Value)
	})
	w, _ := wcl.Get(context.Background(), "tie")
	e, _ := ecl.Get(context.Background(), "tie")
	if w.CAS != e.CAS {
		t.Errorf("CAS mismatch after convergence: %d vs %d", w.CAS, e.CAS)
	}
}

func TestContinuousWritesEventuallyConsistent(t *testing.T) {
	src := newCluster(t, "west", 2)
	dst := newCluster(t, "east", 2)
	r, _ := Start(src, "default", dst, "default", Options{})
	defer r.Stop()
	scl, _ := src.OpenBucket("default")
	dcl, _ := dst.OpenBucket("default")
	// Interleave writes and overwrites.
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			scl.Set(context.Background(), fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf(`{"round": %d}`, round)), 0)
		}
	}
	waitFor(t, "all final values", func() bool {
		for i := 0; i < 20; i++ {
			it, err := dcl.Get(context.Background(), fmt.Sprintf("k%02d", i))
			if err != nil || string(it.Value) != `{"round": 4}` {
				return false
			}
		}
		return true
	})
	st := r.Stats()
	if st.Applied == 0 || st.Sent < st.Applied {
		t.Errorf("stats: %+v", st)
	}
}

func TestReplicationSurvivesSourceFailover(t *testing.T) {
	src := newCluster(t, "west", 3)
	// Bucket with replicas so failover preserves data.
	dst := newCluster(t, "east", 1)

	// Recreate source bucket with replicas: cluster helper created it
	// without, so use a second bucket.
	if err := src.CreateBucket("rep", core.BucketOptions{NumReplicas: 1}); err != nil {
		t.Fatal(err)
	}
	if err := dst.CreateBucket("rep", core.BucketOptions{}); err != nil {
		t.Fatal(err)
	}
	r, err := Start(src, "rep", dst, "rep", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	scl, _ := src.OpenBucket("rep")
	dcl, _ := dst.OpenBucket("rep")
	for i := 0; i < 30; i++ {
		if _, err := scl.SetWithOptions(context.Background(), fmt.Sprintf("k%02d", i), []byte("v1"), 0, 0, 0,
			core.DurabilityOptions{ReplicateTo: 1}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "pre-failover replication", func() bool {
		for i := 0; i < 30; i++ {
			if _, err := dcl.Get(context.Background(), fmt.Sprintf("k%02d", i)); err != nil {
				return false
			}
		}
		return true
	})
	// Kill a source node; XDCR reattaches to promoted actives.
	src.Kill("west-n1")
	if err := src.Failover("west-n1"); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 50; i++ {
		if _, err := scl.Set(context.Background(), fmt.Sprintf("k%02d", i), []byte("v2"), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "post-failover replication", func() bool {
		for i := 30; i < 50; i++ {
			if _, err := dcl.Get(context.Background(), fmt.Sprintf("k%02d", i)); err != nil {
				return false
			}
		}
		return true
	})
}

func TestStopIsIdempotent(t *testing.T) {
	src := newCluster(t, "west", 1)
	dst := newCluster(t, "east", 1)
	r, _ := Start(src, "default", dst, "default", Options{})
	r.Stop()
	r.Stop()
	if _, err := Start(src, "nope", dst, "default", Options{}); err == nil {
		t.Error("unknown source bucket should fail")
	}
	if _, err := Start(src, "default", dst, "nope", Options{}); err == nil {
		t.Error("unknown dest bucket should fail")
	}
}
