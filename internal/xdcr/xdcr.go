// Package xdcr implements Cross Datacenter Replication (paper §4.6):
// "XDCR provides a way to replicate active data to multiple,
// geographically diverse datacenters ... XDCR is also a consumer of the
// internal DCP stream, as it uses the DCP stream to push in-memory
// document mutations to the destination cluster."
//
// Properties reproduced from the paper:
//
//   - Per-bucket setup, with optional filtered replication "based on a
//     regular expression on the document ID".
//   - Cluster-topology awareness: the source streams from whichever
//     node currently holds each active vBucket, and the destination
//     apply routes by key through the destination's own cluster map —
//     the two clusters may have different node counts and partitioning.
//   - Eventual consistency with deterministic conflict resolution
//     (§4.6.1): most-updates (RevSeqno) wins, metadata (CAS) tiebreak,
//     applied identically on both sides, so bidirectional replication
//     converges to the same winner.
package xdcr

import (
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"couchgo/internal/core"
	"couchgo/internal/dcp"
)

// Options configure one replication.
type Options struct {
	// FilterExpr, when non-empty, is a regular expression on document
	// IDs; only matching documents replicate.
	FilterExpr string
	// RetryInterval between stream re-opens after topology changes.
	RetryInterval time.Duration
}

// Replicator pushes one source bucket's mutations to a destination
// cluster's bucket.
type Replicator struct {
	source       *core.Cluster
	sourceBucket string
	dest         *core.Client
	filter       *regexp.Regexp
	retry        time.Duration

	mu      sync.Mutex
	stopped bool
	stopCh  chan struct{}
	wg      sync.WaitGroup

	// lastSeqno per vb, for stream resumption across re-opens.
	lastSeqno []atomic.Uint64

	// Stats.
	sent     atomic.Int64
	applied  atomic.Int64
	rejected atomic.Int64 // lost conflict resolution at the destination
	filtered atomic.Int64
}

// Start begins replicating source/bucket into dest/destBucket.
func Start(source *core.Cluster, sourceBucket string, dest *core.Cluster, destBucket string, opts Options) (*Replicator, error) {
	nvb, err := source.NumVBuckets(sourceBucket)
	if err != nil {
		return nil, err
	}
	destClient, err := dest.OpenBucket(destBucket)
	if err != nil {
		return nil, err
	}
	r := &Replicator{
		source:       source,
		sourceBucket: sourceBucket,
		dest:         destClient,
		retry:        opts.RetryInterval,
		stopCh:       make(chan struct{}),
		lastSeqno:    make([]atomic.Uint64, nvb),
	}
	if r.retry <= 0 {
		r.retry = 20 * time.Millisecond
	}
	if opts.FilterExpr != "" {
		re, err := regexp.Compile(opts.FilterExpr)
		if err != nil {
			return nil, err
		}
		r.filter = re
	}
	for vb := 0; vb < nvb; vb++ {
		r.wg.Add(1)
		go r.replicateVB(vb)
	}
	return r, nil
}

// replicateVB follows one source vBucket forever: open a stream on the
// current active copy, push mutations, and re-open on stream end (the
// topology-awareness loop — failover/rebalance close producer streams,
// and the re-open lands on the new active).
func (r *Replicator) replicateVB(vb int) {
	defer r.wg.Done()
	for {
		select {
		case <-r.stopCh:
			return
		default:
		}
		stream, err := r.source.VBStream(r.sourceBucket, vb, "xdcr", r.lastSeqno[vb].Load())
		if err != nil {
			select {
			case <-r.stopCh:
				return
			case <-time.After(r.retry):
			}
			continue
		}
		r.consume(vb, stream)
		select {
		case <-r.stopCh:
			return
		case <-time.After(r.retry):
		}
	}
}

// consume drains one stream until it closes (producer gone) or the
// replicator stops.
func (r *Replicator) consume(vb int, stream *dcp.Stream) {
	defer stream.Close()
	for {
		select {
		case <-r.stopCh:
			return
		case m, ok := <-stream.C():
			if !ok {
				return
			}
			r.lastSeqno[vb].Store(m.Seqno)
			if r.filter != nil && !r.filter.MatchString(m.Key) {
				r.filtered.Add(1)
				continue
			}
			r.sent.Add(1)
			applied, err := r.dest.XDCRApply(m.Key, m.Value, m.Deleted, m.CAS, m.RevSeqno, m.Flags, m.Expiry)
			if err != nil {
				// Destination unavailable for this key right now; the
				// stream position was advanced, so rely on the next
				// full pass. In a production system this would queue
				// and retry; here topology changes re-open from the
				// recorded seqno.
				continue
			}
			if applied {
				r.applied.Add(1)
			} else {
				r.rejected.Add(1)
			}
		}
	}
}

// Stop halts replication. Mutations already queued may still land.
func (r *Replicator) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	close(r.stopCh)
	r.mu.Unlock()
	r.wg.Wait()
}

// Stats reports replication counters.
type Stats struct {
	Sent     int64
	Applied  int64
	Rejected int64
	Filtered int64
}

// Stats returns a snapshot of the counters.
func (r *Replicator) Stats() Stats {
	return Stats{
		Sent:     r.sent.Load(),
		Applied:  r.applied.Load(),
		Rejected: r.rejected.Load(),
		Filtered: r.filtered.Load(),
	}
}
