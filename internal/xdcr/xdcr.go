// Package xdcr implements Cross Datacenter Replication (paper §4.6):
// "XDCR provides a way to replicate active data to multiple,
// geographically diverse datacenters ... XDCR is also a consumer of the
// internal DCP stream, as it uses the DCP stream to push in-memory
// document mutations to the destination cluster."
//
// Properties reproduced from the paper:
//
//   - Per-bucket setup, with optional filtered replication "based on a
//     regular expression on the document ID".
//   - Cluster-topology awareness: the source streams from whichever
//     node currently holds each active vBucket, and the destination
//     apply routes by key through the destination's own cluster map —
//     the two clusters may have different node counts and partitioning.
//   - Eventual consistency with deterministic conflict resolution
//     (§4.6.1): most-updates (RevSeqno) wins, metadata (CAS) tiebreak,
//     applied identically on both sides, so bidirectional replication
//     converges to the same winner.
//
// DCP consumption goes through the shared feed layer (internal/feed):
// a topology loop resolves each vBucket's current active producer and
// (re)attaches the replicator's feed to it; the feed owns stream
// lifecycle, resume seqnos, and failover-log rollback. On rollback the
// replicator keeps its resume point — the destination's conflict
// resolution deduplicates any re-sent mutations.
package xdcr

import (
	"context"
	"fmt"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"couchgo/internal/core"
	"couchgo/internal/dcp"
	"couchgo/internal/events"
	"couchgo/internal/feed"
	"couchgo/internal/trace"
)

// Options configure one replication.
type Options struct {
	// FilterExpr, when non-empty, is a regular expression on document
	// IDs; only matching documents replicate.
	FilterExpr string
	// RetryInterval between topology re-resolution passes.
	RetryInterval time.Duration
}

// Replicator pushes one source bucket's mutations to a destination
// cluster's bucket.
type Replicator struct {
	source       *core.Cluster
	sourceBucket string
	dest         *core.Client
	filter       *regexp.Regexp
	retry        time.Duration
	nvb          int
	feed         *feed.Feed

	mu      sync.Mutex
	stopped bool
	stopCh  chan struct{}
	wg      sync.WaitGroup

	// Stats.
	sent     atomic.Int64
	applied  atomic.Int64
	rejected atomic.Int64 // lost conflict resolution at the destination
	filtered atomic.Int64
}

// Start begins replicating source/bucket into dest/destBucket.
func Start(source *core.Cluster, sourceBucket string, dest *core.Cluster, destBucket string, opts Options) (*Replicator, error) {
	nvb, err := source.NumVBuckets(sourceBucket)
	if err != nil {
		return nil, err
	}
	destClient, err := dest.OpenBucket(destBucket)
	if err != nil {
		return nil, err
	}
	r := &Replicator{
		source:       source,
		sourceBucket: sourceBucket,
		dest:         destClient,
		retry:        opts.RetryInterval,
		nvb:          nvb,
		stopCh:       make(chan struct{}),
	}
	if r.retry <= 0 {
		r.retry = 20 * time.Millisecond
	}
	if opts.FilterExpr != "" {
		re, err := regexp.Compile(opts.FilterExpr)
		if err != nil {
			return nil, err
		}
		r.filter = re
	}
	r.feed = feed.New("xdcr", r, feed.Config{Service: "xdcr"})
	r.wg.Add(1)
	go r.topologyLoop()
	e := events.New(events.XDCR, events.SevInfo, "replication started")
	e.Bucket = sourceBucket
	e.Service = "xdcr"
	e.Fields = map[string]string{"dest_bucket": destBucket, "filter": opts.FilterExpr}
	events.Default.Publish(e)
	return r, nil
}

// topologyLoop keeps the feed attached to each vBucket's current
// active producer: failover/rebalance close producer streams, the feed
// drain exits, and the next pass re-resolves and reattaches on the new
// active, resuming from the recorded (uuid, seqno).
func (r *Replicator) topologyLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.retry)
	defer t.Stop()
	for {
		for vb := 0; vb < r.nvb; vb++ {
			p, err := r.source.VBProducer(r.sourceBucket, vb)
			if err != nil {
				continue // vBucket has no alive active right now
			}
			// Attach is idempotent for a live unchanged producer;
			// errors (producer closed under us mid-pass) retry on the
			// next tick.
			_ = r.feed.Attach(vb, p)
		}
		select {
		case <-r.stopCh:
			return
		case <-t.C:
		}
	}
}

// Apply implements feed.Consumer: push one mutation to the
// destination.
func (r *Replicator) Apply(_ int, m dcp.Mutation) {
	if r.filter != nil && !r.filter.MatchString(m.Key) {
		r.filtered.Add(1)
		return
	}
	r.sent.Add(1)
	// When the mutation carries its originating trace, the cross-cluster
	// hop rides along: the destination's kv:xdcr span lands under an
	// xdcr:send span in the source write's trace.
	ctx := context.Background()
	if m.Trace != nil {
		sp := m.Trace.StartSpan("xdcr:send")
		sp.Annotate("key", m.Key)
		defer sp.End()
		ctx = trace.ContextWith(ctx, sp)
	}
	applied, err := r.dest.XDCRApply(ctx, m.Key, m.Value, m.Deleted, m.CAS, m.RevSeqno, m.Flags, m.Expiry)
	if err != nil {
		// Destination unavailable for this key right now; rely on the
		// next topology pass. In a production system this would queue
		// and retry; here topology changes re-stream from the recorded
		// seqno.
		return
	}
	if applied {
		r.applied.Add(1)
	} else {
		r.rejected.Add(1)
	}
}

// Rollback implements feed.Rollbacker: XDCR keeps its position — the
// destination's conflict resolution (RevSeqno/CAS) deduplicates any
// mutations re-sent from the rollback point.
func (r *Replicator) Rollback(_ int, toSeqno uint64) uint64 {
	return toSeqno
}

// Stop halts replication. Mutations already queued may still land.
func (r *Replicator) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	close(r.stopCh)
	r.mu.Unlock()
	r.wg.Wait()
	r.feed.Close()
	st := r.Stats()
	e := events.New(events.XDCR, events.SevInfo, "replication stopped")
	e.Bucket = r.sourceBucket
	e.Service = "xdcr"
	e.Fields = map[string]string{
		"sent":    fmt.Sprintf("%d", st.Sent),
		"applied": fmt.Sprintf("%d", st.Applied),
	}
	events.Default.Publish(e)
}

// FeedStats describes the replication feed.
func (r *Replicator) FeedStats() []feed.Stat {
	return []feed.Stat{{
		Service:   "xdcr",
		Name:      r.feed.Name(),
		VBuckets:  r.nvb,
		Processed: r.feed.Processed(),
	}}
}

// Stats reports replication counters.
type Stats struct {
	Sent     int64
	Applied  int64
	Rejected int64
	Filtered int64
}

// Stats returns a snapshot of the counters.
func (r *Replicator) Stats() Stats {
	return Stats{
		Sent:     r.sent.Load(),
		Applied:  r.applied.Load(),
		Rejected: r.rejected.Load(),
		Filtered: r.filtered.Load(),
	}
}
