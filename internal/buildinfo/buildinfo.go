// Package buildinfo holds the version identity stamped into /metrics
// (couchgo_build_info), /stats/detail, and cbtop. A dedicated leaf
// package keeps the constant importable from rest and the commands
// without dragging either's dependencies along.
package buildinfo

// Version is the release identifier reported by the server.
const Version = "0.6.0"
