package feed

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"couchgo/internal/dcp"
	"couchgo/internal/metrics"
)

// memSource is an in-memory SnapshotSource of latest document versions.
type memSource struct {
	mu    sync.Mutex
	items map[string]dcp.Mutation
	high  uint64
}

func newMemSource() *memSource { return &memSource{items: map[string]dcp.Mutation{}} }

func (s *memSource) Snapshot(from uint64) ([]dcp.Mutation, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []dcp.Mutation
	for _, it := range s.items {
		if it.Seqno > from {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seqno < out[j].Seqno })
	return out, s.high, nil
}

func (s *memSource) publish(p *dcp.Producer, m dcp.Mutation) {
	s.mu.Lock()
	s.items[m.Key] = m
	if m.Seqno > s.high {
		s.high = m.Seqno
	}
	s.mu.Unlock()
	p.Publish(m)
}

// docs returns the source's live document keys.
func (s *memSource) docs() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.items))
	for k, m := range s.items {
		if !m.Deleted {
			out[k] = m.Seqno
		}
	}
	return out
}

// recordingConsumer stores applied documents per vBucket and logs every
// Apply call; Rollback wipes the partition.
type recordingConsumer struct {
	mu      sync.Mutex
	docs    map[int]map[string]uint64
	applied []uint64 // every applied seqno, in call order
	gate    chan struct{}
}

func newRecordingConsumer() *recordingConsumer {
	return &recordingConsumer{docs: map[int]map[string]uint64{}}
}

func (c *recordingConsumer) Apply(vb int, m dcp.Mutation) {
	if c.gate != nil {
		<-c.gate
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.docs[vb] == nil {
		c.docs[vb] = map[string]uint64{}
	}
	if m.Deleted {
		delete(c.docs[vb], m.Key)
	} else {
		c.docs[vb][m.Key] = m.Seqno
	}
	c.applied = append(c.applied, m.Seqno)
}

func (c *recordingConsumer) Rollback(vb int, _ uint64) uint64 {
	c.mu.Lock()
	delete(c.docs, vb)
	c.mu.Unlock()
	return 0
}

func (c *recordingConsumer) snapshot(vb int) map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.docs[vb]))
	for k, v := range c.docs[vb] {
		out[k] = v
	}
	return out
}

func (c *recordingConsumer) appliedSeqnos() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]uint64(nil), c.applied...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func equalDocs(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func TestFeedDeliversInOrder(t *testing.T) {
	src := newMemSource()
	p := dcp.NewProducer(0, src)
	defer p.Close()
	c := newRecordingConsumer()
	f := New("t-deliver", c, Config{Service: "test"})
	defer f.Close()
	if err := f.Attach(0, p); err != nil {
		t.Fatal(err)
	}
	// Attach is idempotent for a live unchanged producer.
	if err := f.Attach(0, p); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		src.publish(p, dcp.Mutation{Key: fmt.Sprintf("k%02d", i), Seqno: uint64(i)})
	}
	waitFor(t, "all mutations applied", func() bool { return len(c.snapshot(0)) == 50 })
	seqs := c.appliedSeqnos()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("out-of-order delivery: %d then %d", seqs[i-1], seqs[i])
		}
	}
	if got := f.Processed()[0]; got != 50 {
		t.Fatalf("Processed()[0] = %d, want 50", got)
	}
}

// TestStaleResumeRollsBackAndReconverges is the failover scenario: the
// consumer streamed to seqno 10 from the old active, the promoted
// replica only has history to seqno 5 plus its own new branch, and on
// reattach the consumer must roll back and converge to the survivor's
// state — counted in couchgo_feed_rollbacks_total.
func TestStaleResumeRollsBackAndReconverges(t *testing.T) {
	rollbacks := metrics.Default.Counter("couchgo_feed_rollbacks_total", "service", "test")
	before := rollbacks.Value()

	srcA := newMemSource()
	active := dcp.NewProducer(0, srcA)
	c := newRecordingConsumer()
	f := New("t-rollback", c, Config{Service: "test"})
	defer f.Close()
	if err := f.Attach(0, active); err != nil {
		t.Fatal(err)
	}
	// Shared history 1..5, then divergent writes 6..10 the replica
	// never saw.
	for i := 1; i <= 10; i++ {
		src := srcA
		src.publish(active, dcp.Mutation{Key: fmt.Sprintf("a%02d", i), Seqno: uint64(i)})
	}
	waitFor(t, "consumer caught up on old active", func() bool { return f.Processed()[0] == 10 })

	// The promoted replica: shared history up to 5, adopted failover
	// log, takeover at 5, then its own post-promotion writes.
	srcB := newMemSource()
	replica := dcp.NewProducer(0, srcB)
	defer replica.Close()
	srcB.mu.Lock()
	for i := 1; i <= 5; i++ {
		k := fmt.Sprintf("a%02d", i)
		srcB.items[k] = dcp.Mutation{Key: k, Seqno: uint64(i)}
	}
	srcB.high = 5
	srcB.mu.Unlock()
	replica.SetFailoverLog(active.FailoverLog())
	replica.Takeover(5)
	active.Close()

	if err := f.Attach(0, replica); err != nil {
		t.Fatal(err)
	}
	srcB.publish(replica, dcp.Mutation{Key: "b06", Seqno: 6})

	waitFor(t, "consumer re-converged on promoted replica", func() bool {
		return equalDocs(c.snapshot(0), srcB.docs())
	})
	if got := rollbacks.Value(); got != before+1 {
		t.Fatalf("couchgo_feed_rollbacks_total = %d, want %d", got, before+1)
	}
	// The divergent documents are gone from the consumer.
	if _, ok := c.snapshot(0)["a07"]; ok {
		t.Fatal("rolled-back document a07 survived in the consumer")
	}
}

// TestReattachAfterProducerClose: a caught-up consumer survives its
// producer closing (node death) and reattaches to the successor with
// no duplicate and no lost mutations.
func TestReattachAfterProducerClose(t *testing.T) {
	src := newMemSource()
	a := dcp.NewProducer(0, src)
	c := newRecordingConsumer()
	f := New("t-reattach", c, Config{Service: "test"})
	defer f.Close()
	if err := f.Attach(0, a); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		src.publish(a, dcp.Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}
	waitFor(t, "first five applied", func() bool { return f.Processed()[0] == 5 })
	a.Close()

	// Successor over the same history (same source, adopted log, no
	// takeover — a clean handoff, e.g. rebalance).
	b := dcp.NewProducer(0, src)
	defer b.Close()
	b.SetFailoverLog(a.FailoverLog())
	if err := f.Attach(0, b); err != nil {
		t.Fatal(err)
	}
	for i := 6; i <= 8; i++ {
		src.publish(b, dcp.Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}
	waitFor(t, "post-reattach mutations applied", func() bool { return f.Processed()[0] == 8 })

	seqs := c.appliedSeqnos()
	if len(seqs) != 8 {
		t.Fatalf("applied %d mutations, want exactly 8 (no dup, no loss): %v", len(seqs), seqs)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("applied seqnos = %v, want 1..8 in order", seqs)
		}
	}
}

func TestBackpressureStallCounter(t *testing.T) {
	stalls := metrics.Default.Counter("couchgo_feed_backpressure_stalls_total", "service", "test")
	before := stalls.Value()

	src := newMemSource()
	p := dcp.NewProducer(0, src)
	defer p.Close()
	c := newRecordingConsumer()
	c.gate = make(chan struct{})
	f := New("t-stall", c, Config{Service: "test", Buffer: 1})
	defer f.Close()
	if err := f.Attach(0, p); err != nil {
		t.Fatal(err)
	}
	// With the consumer blocked and a 1-slot buffer, the puller must
	// stall: slot 1 fills, the next pull hits a full buffer.
	for i := 1; i <= 8; i++ {
		src.publish(p, dcp.Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}
	waitFor(t, "backpressure stall recorded", func() bool { return stalls.Value() > before })
	close(c.gate)
	waitFor(t, "backlog drained after release", func() bool { return f.Processed()[0] == 8 })
}

func TestDetachForgetsResumeState(t *testing.T) {
	src := newMemSource()
	p := dcp.NewProducer(0, src)
	defer p.Close()
	c := newRecordingConsumer()
	f := New("t-detach", c, Config{Service: "test"})
	defer f.Close()
	if err := f.Attach(0, p); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		src.publish(p, dcp.Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}
	waitFor(t, "initial mutations applied", func() bool { return f.Processed()[0] == 3 })
	f.Detach(0)
	if len(f.Processed()) != 0 {
		t.Fatal("Detach left resume state behind")
	}
	// Reattach streams from scratch: the three documents re-apply.
	if err := f.Attach(0, p); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-stream after detach", func() bool { return len(c.appliedSeqnos()) >= 6 })
}

func TestHubFansOutAndUnsubscribes(t *testing.T) {
	src0, src1 := newMemSource(), newMemSource()
	p0, p1 := dcp.NewProducer(0, src0), dcp.NewProducer(1, src1)
	defer p0.Close()
	defer p1.Close()
	h := NewHub("test")
	defer h.Close()
	if err := h.AttachVB(0, p0); err != nil {
		t.Fatal(err)
	}
	c1 := newRecordingConsumer()
	f1, err := h.Subscribe("h-one", c1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Subscribe("h-one", newRecordingConsumer()); err == nil {
		t.Fatal("duplicate subscription accepted")
	}
	// A producer attached after subscription reaches existing feeds; a
	// feed subscribed after attachment sees existing producers.
	if err := h.AttachVB(1, p1); err != nil {
		t.Fatal(err)
	}
	c2 := newRecordingConsumer()
	f2, err := h.Subscribe("h-two", c2)
	if err != nil {
		t.Fatal(err)
	}
	src0.publish(p0, dcp.Mutation{Key: "x", Seqno: 1})
	src1.publish(p1, dcp.Mutation{Key: "y", Seqno: 1})
	waitFor(t, "both feeds cover both vbuckets", func() bool {
		return f1.Processed()[0] == 1 && f1.Processed()[1] == 1 &&
			f2.Processed()[0] == 1 && f2.Processed()[1] == 1
	})
	st := h.Stats()
	if len(st) != 2 || st[0].Name != "h-one" || st[1].Name != "h-two" {
		t.Fatalf("hub stats = %+v", st)
	}
	if st[0].Service != "test" || st[0].VBuckets != 2 {
		t.Fatalf("stat fields = %+v", st[0])
	}

	h.Unsubscribe("h-two")
	src0.publish(p0, dcp.Mutation{Key: "x2", Seqno: 2})
	waitFor(t, "surviving feed advances", func() bool { return f1.Processed()[0] == 2 })
	if got := f2.Processed()[0]; got == 2 {
		t.Fatal("unsubscribed feed still consuming")
	}

	h.DetachVB(0)
	waitFor(t, "detach drops the vbucket", func() bool {
		_, ok := f1.Processed()[0]
		return !ok
	})
	h.Close()
	if err := h.AttachVB(0, p0); err != ErrClosed {
		t.Fatalf("AttachVB on closed hub: %v", err)
	}
	if _, err := h.Subscribe("late", newRecordingConsumer()); err != ErrClosed {
		t.Fatalf("Subscribe on closed hub: %v", err)
	}
}
