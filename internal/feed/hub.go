package feed

import (
	"fmt"
	"sort"
	"sync"

	"couchgo/internal/dcp"
)

// Hub multiplexes one service's set of feeds over one set of vBucket
// producers. Engines that maintain several named consumers over the
// same vBuckets (one feed per view, per FTS index, per GSI keyspace
// projector) register producers once via AttachVB and subscribe each
// consumer by name; the hub attaches every feed to every producer and
// keeps both sides reconciled as either set changes.
type Hub struct {
	service string

	mu        sync.Mutex
	closed    bool
	producers map[int]dcp.StreamSource
	feeds     map[string]*Feed
}

// NewHub creates an empty hub; service labels all subscribed feeds'
// metrics.
func NewHub(service string) *Hub {
	return &Hub{
		service:   service,
		producers: make(map[int]dcp.StreamSource),
		feeds:     make(map[string]*Feed),
	}
}

// AttachVB registers (or replaces) a vBucket's producer and attaches
// every subscribed feed to it. Idempotent for an unchanged producer.
func (h *Hub) AttachVB(vb int, p dcp.StreamSource) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrClosed
	}
	h.producers[vb] = p
	feeds := h.feedListLocked()
	h.mu.Unlock()
	for _, f := range feeds {
		if err := f.Attach(vb, p); err != nil {
			return err
		}
	}
	return nil
}

// DetachVB forgets a vBucket's producer and detaches every feed from
// it, dropping resume state.
func (h *Hub) DetachVB(vb int) {
	h.mu.Lock()
	delete(h.producers, vb)
	feeds := h.feedListLocked()
	h.mu.Unlock()
	for _, f := range feeds {
		f.Detach(vb)
	}
}

// Subscribe creates a feed named name delivering to c and attaches it
// to every registered producer. The name doubles as the DCP stream
// name.
func (h *Hub) Subscribe(name string, c Consumer) (*Feed, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := h.feeds[name]; ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("feed: duplicate subscription %q", name)
	}
	f := New(name, c, Config{Service: h.service})
	h.feeds[name] = f
	producers := make(map[int]dcp.StreamSource, len(h.producers))
	for vb, p := range h.producers {
		producers[vb] = p
	}
	h.mu.Unlock()
	for vb, p := range producers {
		if err := f.Attach(vb, p); err != nil {
			h.Unsubscribe(name)
			return nil, err
		}
	}
	return f, nil
}

// Unsubscribe removes and closes a named feed.
func (h *Hub) Unsubscribe(name string) {
	h.mu.Lock()
	f := h.feeds[name]
	delete(h.feeds, name)
	h.mu.Unlock()
	if f != nil {
		f.Close()
	}
}

// Producers returns a copy of the registered producer set (index
// backfill iterates it).
func (h *Hub) Producers() map[int]dcp.StreamSource {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[int]dcp.StreamSource, len(h.producers))
	for vb, p := range h.producers {
		out[vb] = p
	}
	return out
}

// Stats describes every subscribed feed, sorted by name.
func (h *Hub) Stats() []Stat {
	h.mu.Lock()
	feeds := h.feedListLocked()
	service := h.service
	h.mu.Unlock()
	out := make([]Stat, 0, len(feeds))
	for _, f := range feeds {
		processed := f.Processed()
		out = append(out, Stat{
			Service:   service,
			Name:      f.Name(),
			VBuckets:  len(processed),
			Processed: processed,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Close closes every feed; further Attach/Subscribe calls fail.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	feeds := h.feedListLocked()
	h.feeds = make(map[string]*Feed)
	h.producers = make(map[int]dcp.StreamSource)
	h.mu.Unlock()
	for _, f := range feeds {
		f.Close()
	}
}

// feedListLocked snapshots the feed set; callers hold h.mu.
func (h *Hub) feedListLocked() []*Feed {
	out := make([]*Feed, 0, len(h.feeds))
	for _, f := range h.feeds {
		out = append(out, f)
	}
	return out
}
