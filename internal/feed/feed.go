// Package feed is the shared DCP-consumer layer (paper §4.4): every
// secondary service — GSI projector, views, FTS, analytics, XDCR — is
// a DCP consumer, and the value of DCP is precisely its shared
// semantics: ordered per-vBucket delivery, snapshot/backfill handoff,
// and failure recovery via failover logs and rollback. Rather than
// each service carrying its own producer/stream maps and drain loops,
// a service implements Consumer (and usually Rollbacker) and a Feed
// owns everything else:
//
//   - per-vBucket producer attachment and stream lifecycle,
//   - resume state: the (vBucket UUID, seqno) position of the last
//     applied mutation, carried across producer changes so failover
//     and rebalance re-attachments resume rather than rebuild,
//   - rollback: a resume the producer rejects (stale branch of
//     history) rewinds the consumer via Rollback before re-streaming,
//   - a bounded-buffer drain loop with backpressure accounting.
//
// Feed metrics are exported through metrics.Default per service:
// couchgo_feed_mutations_total, couchgo_feed_rollbacks_total,
// couchgo_feed_stalls_total (alias couchgo_feed_backpressure_stalls_total),
// and the couchgo_feed_buffer_high_watermark gauge (the deepest the
// drain buffer has been per service — how far behind the consumer got).
//
// Mutations carrying a sampled trace gain a per-hop apply span, and a
// rollback attaches its span to the trace of the last mutation the
// consumer applied — so a KV write's trace shows both its index-apply
// hop and, after a failover onto divergent history, the rollback that
// un-applied it.
package feed

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"

	"couchgo/internal/dcp"
	"couchgo/internal/events"
	"couchgo/internal/metrics"
	"couchgo/internal/trace"
)

// ErrClosed is returned when attaching to a closed feed or hub.
var ErrClosed = errors.New("feed: closed")

// Consumer applies one vBucket's mutations in seqno order. Apply is
// called from the feed's drain goroutine for that vBucket; different
// vBuckets may apply concurrently.
type Consumer interface {
	Apply(vb int, m dcp.Mutation)
}

// Rollbacker is implemented by consumers that can rewind a vBucket's
// state to a seqno. Rollback must discard every applied mutation with
// a seqno greater than toSeqno and return the seqno it actually
// rewound to (at most toSeqno; 0 means "discarded the partition",
// after which the feed re-streams from scratch). Consumers that do
// not implement it are restarted from seqno 0 on rollback, which is
// only safe if re-applying history removes stale state — partition
// wipes via Rollback are the reliable path.
type Rollbacker interface {
	Rollback(vb int, toSeqno uint64) uint64
}

// Config tunes one feed.
type Config struct {
	// Service labels the feed's metrics (one label value per consumer
	// service: "gsi", "views", "fts", "analytics", "xdcr"). Defaults
	// to the feed name.
	Service string
	// Buffer is the drain buffer capacity in mutations (default 64).
	// When the consumer falls behind by more than Buffer, the stall
	// counter increments and the puller blocks until space frees.
	Buffer int
}

// Feed connects one Consumer to any number of vBucket producers,
// surviving producer changes (failover, rebalance) via resume state
// and the DCP failover log.
type Feed struct {
	name     string
	service  string
	consumer Consumer
	buffer   int

	mMutations *metrics.Counter
	mRollbacks *metrics.Counter
	mStalls    *metrics.Counter
	// mStallsAlias keeps the original backpressure-stalls name live for
	// existing dashboards; both count the same events.
	mStallsAlias *metrics.Counter
	mHighWater   *metrics.Gauge
	// mStalled counts drain goroutines currently blocked on a full
	// buffer — nonzero means a consumer is stalled *right now*, which
	// is what the health watchdog ages (the stall counter only says a
	// stall began, not that it is ongoing).
	mStalled *metrics.Gauge

	// opMu serializes Attach/Detach/Close so stream replacement and
	// drain shutdown never interleave.
	opMu sync.Mutex

	mu     sync.Mutex
	closed bool
	vbs    map[int]*vbFeed
}

// vbFeed is one vBucket's attachment state.
type vbFeed struct {
	producer dcp.StreamSource
	stream   dcp.MutationStream
	// uuid is the vBucket UUID the stream was opened under and seqno
	// the last mutation handed to the consumer — together the resume
	// position presented to the next producer.
	uuid  uint64
	seqno atomic.Uint64
	// done closes when the drain goroutine has exited (no more Apply
	// calls for this vBucket).
	done chan struct{}
	// lastTrace is the trace of the last mutation handed to the
	// consumer. Written only by the drain goroutine; read after its
	// exit (close(done) orders the accesses) to attach rollback spans
	// to the originating mutation's trace.
	lastTrace *trace.Trace
}

// New creates a feed delivering to c. The name becomes the DCP stream
// name on every attached producer.
func New(name string, c Consumer, cfg Config) *Feed {
	if cfg.Service == "" {
		cfg.Service = name
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	return &Feed{
		name:         name,
		service:      cfg.Service,
		consumer:     c,
		buffer:       cfg.Buffer,
		mMutations:   metrics.Default.Counter("couchgo_feed_mutations_total", "service", cfg.Service),
		mRollbacks:   metrics.Default.Counter("couchgo_feed_rollbacks_total", "service", cfg.Service),
		mStalls:      metrics.Default.Counter("couchgo_feed_stalls_total", "service", cfg.Service),
		mStallsAlias: metrics.Default.Counter("couchgo_feed_backpressure_stalls_total", "service", cfg.Service),
		mHighWater:   metrics.Default.Gauge("couchgo_feed_buffer_high_watermark", "service", cfg.Service),
		mStalled:     metrics.Default.Gauge("couchgo_feed_stalled", "service", cfg.Service),
	}
}

// Name returns the feed (and stream) name.
func (f *Feed) Name() string { return f.name }

// Attach connects the feed to a vBucket's producer, resuming from the
// recorded (UUID, seqno) position. Re-attaching the same producer
// while its drain is live is a no-op, so reconciliation can call it
// idempotently. A changed producer — the vBucket moved or failed over
// — stops the old drain first, then resumes on the new producer; if
// the producer rejects the resume position (stale branch of history),
// the consumer is rolled back and the stream reopened from the
// rollback point. The producer may be an in-process *dcp.Producer or a
// transport-layer remote source — the feed only sees the seam.
func (f *Feed) Attach(vb int, p dcp.StreamSource) error {
	f.opMu.Lock()
	defer f.opMu.Unlock()

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	cur := f.vbs[vb]
	f.mu.Unlock()

	// opMu is the lifecycle serializer and is *designed* to be held
	// across stream teardown and resume: drain goroutines never take
	// it, and the dcp layer never calls back into feed, so waiting on
	// a drain to exit here cannot cycle.
	var uuid, seqno uint64
	if cur != nil {
		if cur.producer == p && drainAlive(cur) {
			return nil
		}
		cur.stream.Close() //couchvet:ignore lockblock -- opMu lifecycle serializer; dcp never re-enters feed
		<-cur.done         //couchvet:ignore lockblock -- drain exits on stream close; it never takes opMu
		uuid = cur.uuid
		seqno = cur.seqno.Load()
	}

	s, err := p.ResumeStream(f.name, uuid, seqno) //couchvet:ignore lockblock -- opMu lifecycle serializer; dcp never re-enters feed
	var rb *dcp.RollbackError
	if errors.As(err, &rb) {
		f.mRollbacks.Inc()
		// The rollback belongs to the trace of the last mutation this
		// consumer applied — that write (or one before it) is being
		// un-applied as a stale branch of history.
		var rsp *trace.Span
		if cur != nil && cur.lastTrace != nil {
			rsp = cur.lastTrace.StartSpan("feed:rollback")             //couchvet:ignore lockblock -- trace ops take only the trace's own mutex, never block
			rsp.Annotate("service", f.service)                         //couchvet:ignore lockblock -- trace ops take only the trace's own mutex, never block
			rsp.Annotate("vb", strconv.Itoa(vb))                       //couchvet:ignore lockblock -- trace ops take only the trace's own mutex, never block
			rsp.Annotate("to_seqno", strconv.FormatUint(rb.Seqno, 10)) //couchvet:ignore lockblock -- trace ops take only the trace's own mutex, never block
		}
		to := rb.Seqno
		if r, ok := f.consumer.(Rollbacker); ok {
			if got := r.Rollback(vb, rb.Seqno); got < to {
				to = got
			}
		} else {
			to = 0
		}
		if rsp != nil {
			rsp.Annotate("rewound_to", strconv.FormatUint(to, 10)) //couchvet:ignore lockblock -- trace ops take only the trace's own mutex, never block
			rsp.End()                                              //couchvet:ignore lockblock -- trace ops take only the trace's own mutex, never block
		}
		// Journal the rollback, linked to the trace of the last applied
		// mutation — the same trace the span above landed in — so an
		// operator can jump from the event to the write it un-applied.
		re := events.New(events.FeedEvent, events.SevWarn, "feed rollback: stale branch of history")
		re.Service = f.service
		re.VB = vb
		re.Fields = map[string]string{
			"to_seqno":   strconv.FormatUint(rb.Seqno, 10),
			"rewound_to": strconv.FormatUint(to, 10),
		}
		if cur != nil && cur.lastTrace != nil {
			re.TraceID = cur.lastTrace.ID
		}
		events.Default.Publish(re)
		s, err = p.ResumeStream(f.name, 0, to) //couchvet:ignore lockblock -- opMu lifecycle serializer; dcp never re-enters feed
		seqno = to
	}
	if err != nil {
		return err
	}

	vf := &vbFeed{producer: p, stream: s, uuid: s.StreamUUID(), done: make(chan struct{})} //couchvet:ignore lockblock -- StreamUUID is a field read behind the stream seam; never blocks
	vf.seqno.Store(seqno)

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		s.Close() //couchvet:ignore lockblock -- opMu lifecycle serializer; dcp never re-enters feed
		return ErrClosed
	}
	if f.vbs == nil {
		f.vbs = make(map[int]*vbFeed)
	}
	f.vbs[vb] = vf
	f.mu.Unlock()

	go f.drain(vb, vf)
	return nil
}

func drainAlive(vf *vbFeed) bool {
	select {
	case <-vf.done:
		return false
	default:
		return true
	}
}

// drain pumps the stream through a bounded buffer into the consumer.
// The pull side counts a backpressure stall whenever the buffer is
// full — the consumer is more than `buffer` mutations behind — and
// then blocks, so a slow consumer is visible in metrics without
// unbounded memory growth in this layer. (The dcp layer's per-stream
// queue stays unbounded, preserving the never-block-the-publisher
// memory-first contract.)
func (f *Feed) drain(vb int, vf *vbFeed) {
	buf := make(chan dcp.Mutation, f.buffer)
	go func() {
		defer close(buf)
		for m := range vf.stream.C() {
			select {
			case buf <- m:
			default:
				f.mStalls.Inc()
				f.mStallsAlias.Inc()
				// The event carries the high-watermark gauge's current
				// value so journal and metrics tell one story: the
				// buffer was this deep when backpressure hit.
				e := events.New(events.FeedEvent, events.SevWarn, "feed stall: consumer backpressure")
				e.Service = f.service
				e.VB = vb
				e.Fields = map[string]string{
					"buffer":         strconv.Itoa(f.buffer),
					"high_watermark": strconv.FormatInt(f.mHighWater.Value(), 10),
				}
				events.Default.Publish(e)
				f.mStalled.Add(1)
				buf <- m
				f.mStalled.Add(-1)
			}
		}
	}()
	defer close(vf.done)
	highWater := 0
	for m := range buf {
		// Track the deepest backlog this drain has seen; the gauge is
		// monotone per service so operators see worst-case lag depth.
		if d := len(buf) + 1; d > highWater {
			highWater = d
			f.mHighWater.SetMax(int64(d))
		}
		if m.Trace != nil {
			sp := m.Trace.StartSpan("feed:apply")
			sp.Annotate("service", f.service)
			sp.Annotate("vb", strconv.Itoa(vb))
			sp.Annotate("seqno", strconv.FormatUint(m.Seqno, 10))
			f.consumer.Apply(vb, m)
			sp.End()
		} else {
			f.consumer.Apply(vb, m)
		}
		vf.lastTrace = m.Trace
		vf.seqno.Store(m.Seqno)
		f.mMutations.Inc()
	}
}

// Detach disconnects a vBucket and forgets its resume state. The next
// Attach for the vBucket streams from scratch.
func (f *Feed) Detach(vb int) {
	f.opMu.Lock()
	defer f.opMu.Unlock()
	f.mu.Lock()
	vf := f.vbs[vb]
	delete(f.vbs, vb)
	f.mu.Unlock()
	if vf != nil {
		vf.stream.Close() //couchvet:ignore lockblock -- opMu lifecycle serializer; dcp never re-enters feed
		<-vf.done         //couchvet:ignore lockblock -- drain exits on stream close; it never takes opMu
	}
}

// Close stops every drain. Apply is never called after Close returns.
func (f *Feed) Close() {
	f.opMu.Lock()
	defer f.opMu.Unlock()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	vbs := f.vbs
	f.vbs = nil
	f.mu.Unlock()
	for _, vf := range vbs {
		vf.stream.Close() //couchvet:ignore lockblock -- opMu lifecycle serializer; dcp never re-enters feed
		<-vf.done         //couchvet:ignore lockblock -- drain exits on stream close; it never takes opMu
	}
}

// Processed returns the per-vBucket seqno of the last mutation handed
// to the consumer.
func (f *Feed) Processed() map[int]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[int]uint64, len(f.vbs))
	for vb, vf := range f.vbs {
		out[vb] = vf.seqno.Load()
	}
	return out
}

// Stat describes one feed for the REST stats surface.
type Stat struct {
	Service string `json:"service"`
	Name    string `json:"name"`
	// Node is set for per-node feeds (views); empty for cluster-level
	// services.
	Node      string         `json:"node,omitempty"`
	VBuckets  int            `json:"vbuckets"`
	Processed map[int]uint64 `json:"processed,omitempty"`
}
