package executor

import (
	"fmt"

	"couchgo/internal/n1ql"
	"couchgo/internal/planner"
	"couchgo/internal/value"
)

// MutationResult reports a DML statement's effect.
type MutationResult struct {
	MutationCount int
	Returning     []any
}

// ExecuteInsert runs INSERT/UPSERT INTO ... (KEY, VALUE) VALUES ...
func ExecuteInsert(ins *n1ql.Insert, ds Datastore, cat planner.Catalog, opts Options) (*MutationResult, error) {
	if !cat.KeyspaceExists(ins.Keyspace) {
		return nil, fmt.Errorf("%w: %s", planner.ErrNoSuchKeyspace, ins.Keyspace)
	}
	res := &MutationResult{}
	pctx := &n1ql.Context{Params: opts.Params}
	for i := range ins.KeyExprs {
		kv, err := n1ql.Eval(ins.KeyExprs[i], pctx)
		if err != nil {
			return nil, err
		}
		key, ok := kv.(string)
		if !ok {
			return nil, fmt.Errorf("executor: INSERT key must be a string, got %s", value.KindOf(kv))
		}
		doc, err := n1ql.Eval(ins.ValExprs[i], pctx)
		if err != nil {
			return nil, err
		}
		if err := ds.InsertDoc(opts.Context(), ins.Keyspace, key, doc, ins.Upsert); err != nil {
			return nil, err
		}
		res.MutationCount++
		if len(ins.Returning) > 0 {
			ctx := n1ql.NewContext(ins.Keyspace, doc, n1ql.Meta{ID: key})
			ctx.Params = opts.Params
			out, err := projectReturning(ins.Returning, ctx)
			if err != nil {
				return nil, err
			}
			res.Returning = append(res.Returning, out)
		}
	}
	return res, nil
}

// mutationTargets scans for the documents a DELETE/UPDATE affects.
func mutationTargets(keyspace, alias string, useKeys, where, limit n1ql.Expr, ds Datastore, cat planner.Catalog, opts Options) ([]row, error) {
	sel := &n1ql.Select{
		Keyspace:   keyspace,
		Alias:      alias,
		UseKeys:    useKeys,
		Where:      where,
		Limit:      limit,
		Projection: []n1ql.ResultTerm{{Star: true}}, // force document fetch
	}
	p, err := planner.PlanSelect(sel, cat)
	if err != nil {
		return nil, err
	}
	ex := &selectExec{p: p, ds: ds, opts: opts}
	lim, _, err := ex.limitOffset()
	if err != nil {
		return nil, err
	}
	rows, err := ex.scanAndAssemble(lim, 0)
	if err != nil {
		return nil, err
	}
	if p.Where != nil {
		rows, err = filterRows(rows, p.Where)
		if err != nil {
			return nil, err
		}
	}
	if lim >= 0 && len(rows) > lim {
		rows = rows[:lim]
	}
	return rows, nil
}

// ExecuteDelete runs DELETE FROM ...
func ExecuteDelete(del *n1ql.Delete, ds Datastore, cat planner.Catalog, opts Options) (*MutationResult, error) {
	rows, err := mutationTargets(del.Keyspace, del.Alias, del.UseKeys, del.Where, del.Limit, ds, cat, opts)
	if err != nil {
		return nil, err
	}
	res := &MutationResult{}
	for _, r := range rows {
		id := r.ctx.Metas[del.Alias].ID
		if err := ds.DeleteDoc(opts.Context(), del.Keyspace, id); err != nil {
			continue // concurrently deleted
		}
		res.MutationCount++
		if len(del.Returning) > 0 {
			out, err := projectReturning(del.Returning, r.ctx)
			if err != nil {
				return nil, err
			}
			res.Returning = append(res.Returning, out)
		}
	}
	return res, nil
}

// ExecuteUpdate runs UPDATE ... SET/UNSET.
func ExecuteUpdate(upd *n1ql.Update, ds Datastore, cat planner.Catalog, opts Options) (*MutationResult, error) {
	rows, err := mutationTargets(upd.Keyspace, upd.Alias, upd.UseKeys, upd.Where, upd.Limit, ds, cat, opts)
	if err != nil {
		return nil, err
	}
	res := &MutationResult{}
	for _, r := range rows {
		id := r.ctx.Metas[upd.Alias].ID
		doc := value.Copy(r.ctx.Bindings[upd.Alias])
		for _, sc := range upd.Sets {
			nv, err := n1ql.Eval(sc.Val, r.ctx)
			if err != nil {
				return nil, err
			}
			doc, err = applyPathSet(doc, sc.Path, upd.Alias, nv, r.ctx)
			if err != nil {
				return nil, err
			}
		}
		for _, un := range upd.Unsets {
			doc, err = applyPathUnset(doc, un, upd.Alias, r.ctx)
			if err != nil {
				return nil, err
			}
		}
		if err := ds.UpdateDoc(opts.Context(), upd.Keyspace, id, doc); err != nil {
			continue
		}
		res.MutationCount++
		if len(upd.Returning) > 0 {
			ctx := n1ql.NewContext(upd.Alias, doc, n1ql.Meta{ID: id})
			ctx.Params = opts.Params
			out, err := projectReturning(upd.Returning, ctx)
			if err != nil {
				return nil, err
			}
			res.Returning = append(res.Returning, out)
		}
	}
	return res, nil
}

// pathOf converts a SET/UNSET target expression (Ident/Field/Element
// chain) into a value.Path rooted at the document. The leading alias
// qualifier, when present, is stripped.
func pathOf(e n1ql.Expr, alias string, ctx *n1ql.Context) (value.Path, error) {
	var steps []string
	cur := e
	for {
		switch t := cur.(type) {
		case *n1ql.Ident:
			if t.Name != alias {
				steps = append(steps, t.Name)
			}
			goto done
		case *n1ql.Field:
			steps = append(steps, t.Name)
			cur = t.Recv
		case *n1ql.Element:
			idx, err := n1ql.Eval(t.Index, ctx)
			if err != nil {
				return value.Path{}, err
			}
			f, ok := value.AsNumber(idx)
			if !ok {
				return value.Path{}, fmt.Errorf("executor: non-numeric array index in SET path %s", e)
			}
			steps = append(steps, fmt.Sprintf("[%d]", int(f)))
			cur = t.Recv
		default:
			return value.Path{}, fmt.Errorf("executor: unsupported SET path %s", e)
		}
	}
done:
	// steps collected leaf-to-root; reverse and join.
	src := ""
	for i := len(steps) - 1; i >= 0; i-- {
		s := steps[i]
		if len(s) > 0 && s[0] == '[' {
			src += s
		} else if src == "" {
			src = s
		} else {
			src += "." + s
		}
	}
	p, ok := value.ParsePath(src)
	if !ok {
		return value.Path{}, fmt.Errorf("executor: bad SET path %q", src)
	}
	return p, nil
}

func applyPathSet(doc any, pathExpr n1ql.Expr, alias string, nv any, ctx *n1ql.Context) (any, error) {
	p, err := pathOf(pathExpr, alias, ctx)
	if err != nil {
		return nil, err
	}
	if p.Len() == 0 {
		return nil, fmt.Errorf("executor: cannot SET the document root")
	}
	out, ok := p.Set(doc, nv)
	if !ok {
		return doc, nil // non-applicable path: no-op, as in N1QL
	}
	return out, nil
}

func applyPathUnset(doc any, pathExpr n1ql.Expr, alias string, ctx *n1ql.Context) (any, error) {
	p, err := pathOf(pathExpr, alias, ctx)
	if err != nil {
		return nil, err
	}
	out, _ := p.Delete(doc)
	return out, nil
}

func projectReturning(terms []n1ql.ResultTerm, ctx *n1ql.Context) (any, error) {
	obj := make(map[string]any)
	for ti, rt := range terms {
		if rt.Star {
			if err := projectStar(obj, rt, ctx); err != nil {
				return nil, err
			}
			continue
		}
		v, err := n1ql.Eval(rt.Expr, ctx)
		if err != nil {
			return nil, err
		}
		if value.IsMissing(v) {
			continue
		}
		obj[resultName(rt, ti)] = v
	}
	return obj, nil
}
