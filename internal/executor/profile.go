package executor

import (
	"strconv"
	"time"

	"couchgo/internal/metrics"
	"couchgo/internal/trace"
)

// PhaseTiming is one operator's contribution to a statement, the unit
// of the `profile: timings` response section (§4.5.3 exposes plans;
// this exposes where the time went at execution).
type PhaseTiming struct {
	Operator string        `json:"#operator"`
	Elapsed  time.Duration `json:"-"`
	ExecTime string        `json:"execTime"`
	Items    int           `json:"items,omitempty"`
}

// Profile accumulates per-operator timings for one statement. A nil
// *Profile records nothing per-query, so execution threads it
// unconditionally; the process-wide per-phase histograms are fed
// either way.
type Profile struct {
	phases []PhaseTiming
}

// NewProfile returns an empty profile (request carried `profile:
// timings`).
func NewProfile() *Profile { return &Profile{} }

// phaseHists are the process-wide per-phase latency histograms,
// resolved once so Record stays off the registry mutex.
var phaseHists = func() map[string]*metrics.Histogram {
	m := map[string]*metrics.Histogram{}
	for _, ph := range []string{
		"parse", "plan", "scan", "fetch", "join", "unnest",
		"filter", "group", "project", "sort",
	} {
		m[ph] = metrics.Default.Histogram("couchgo_query_phase_duration_seconds", "phase", ph)
	}
	return m
}()

// Record logs one operator phase that started at t0 and produced
// items rows. Safe on a nil receiver.
func (p *Profile) Record(op string, t0 time.Time, items int) {
	d := time.Since(t0)
	if h := phaseHists[op]; h != nil {
		h.Observe(d)
	}
	if p == nil {
		return
	}
	p.phases = append(p.phases, PhaseTiming{
		Operator: op, Elapsed: d, ExecTime: d.String(), Items: items,
	})
}

// Record logs one operator phase through every observability surface
// at once: the per-query profile (`profile: timings`), the process-wide
// phase histograms, and — when the request is traced — a completed
// "query:<op>" span on the request trace. Operators call this instead
// of Prof.Record directly so profiling and tracing can never drift.
func (o Options) Record(op string, t0 time.Time, items int) {
	o.Prof.Record(op, t0, items)
	if sp := trace.FromContext(o.Context()); sp != nil {
		sp.Completed("query:"+op, t0, "items", strconv.Itoa(items))
	}
}

// Timings returns the recorded phases in execution order (nil for a
// nil or empty profile).
func (p *Profile) Timings() []PhaseTiming {
	if p == nil {
		return nil
	}
	return p.phases
}
