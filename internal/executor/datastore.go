// Package executor implements N1QL query execution: the operator
// pipeline of the paper's Figure 11 (scan → fetch → join/nest/unnest →
// filter → group → project → distinct → sort → offset → limit) plus
// DML execution. "Some operations, like query parsing and planning, are
// done serially, while other operations, like fetch, join, and sort,
// are done in a local parallel (based on multicore) manner" — the Fetch
// operator here fans out across a worker pool.
package executor

import (
	"context"
	"errors"

	"couchgo/internal/n1ql"
)

// ErrNotFound is returned by Datastore.Fetch for absent documents.
var ErrNotFound = errors.New("executor: document not found")

// IndexEntry is one index scan result handed to the executor.
type IndexEntry struct {
	ID     string
	SecKey []any
}

// IndexScanOpts mirrors the index service scan surface without binding
// the executor to a concrete index implementation.
type IndexScanOpts struct {
	EqualKey          []any
	HasEqual          bool
	Low, High         []any
	LowIncl, HighIncl bool
	Limit             int
	Reverse           bool
	// Wait is the request_plus consistency vector (nil = not_bounded).
	Wait map[int]uint64
}

// Datastore is the query service's view of the data and index services
// (§4.5.1: "the query service issues all key-value access requests ...
// an index simply returns the document ID for each attribute match").
type Datastore interface {
	// Fetch retrieves one document and its metadata by ID. ctx carries
	// the query's trace so KV fetches chain into the query trace.
	Fetch(ctx context.Context, keyspace, id string) (doc any, meta n1ql.Meta, err error)
	// ScanIndex runs an index scan (GSI or view-backed, §3.3).
	ScanIndex(ctx context.Context, keyspace, index string, using n1ql.IndexUsing, opts IndexScanOpts) ([]IndexEntry, error)
	// ConsistencyVector reports the data service's current per-vBucket
	// high seqnos, captured at query start for request_plus.
	ConsistencyVector(keyspace string) map[int]uint64

	// DML surface.
	InsertDoc(ctx context.Context, keyspace, id string, doc any, upsert bool) error
	UpdateDoc(ctx context.Context, keyspace, id string, doc any) error
	DeleteDoc(ctx context.Context, keyspace, id string) error
}

// Consistency selects the §3.2.3 scan_consistency level.
type Consistency int

const (
	// NotBounded "returns the query with the lowest latency ... the
	// query output can be arbitrarily out-of-date".
	NotBounded Consistency = iota
	// RequestPlus "requires all mutations, up to the moment of the
	// query request, to be processed before query execution can begin".
	RequestPlus
)

// Options parameterize one execution.
type Options struct {
	Params      map[string]any
	Consistency Consistency
	// FetchParallelism bounds the fetch worker pool (default 8).
	FetchParallelism int
	// Prof, when non-nil, collects per-operator timings for the
	// response's `profile: timings` section.
	Prof *Profile
	// Ctx carries the request trace (and future cancellation) through
	// execution. A zero Options executes with context.Background().
	Ctx context.Context
}

// Context returns opts.Ctx, or context.Background() when unset.
func (o Options) Context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}
