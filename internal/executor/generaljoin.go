package executor

import (
	"fmt"

	"couchgo/internal/n1ql"
	"couchgo/internal/value"
)

// General (non-key) join execution. N1QL proper forbids these
// (§3.2.4); the analytics service (§6.2 — "richer (and more expensive)
// queries such as large joins") provides a datastore that implements
// KeyspaceScanner, unlocking this path. The implementation is the
// "parallel database inspired" classic: a hash join when the condition
// has an extractable equi-join key, falling back to a nested-loop
// cross product with a filter otherwise.

// ScannedDoc is one document from a full keyspace scan.
type ScannedDoc struct {
	ID   string
	Doc  any
	Meta n1ql.Meta
}

// KeyspaceScanner is the optional Datastore extension general joins
// require: iterate every document of a keyspace. Only the analytics
// shadow store implements it — the operational data service
// deliberately does not, which is how the §3.2.4 restriction stays
// enforced at execution depth too.
type KeyspaceScanner interface {
	ScanKeyspace(keyspace string) ([]ScannedDoc, error)
}

// generalJoin executes JOIN/NEST ... ON <cond>.
func (ex *selectExec) generalJoin(rows []row, j n1ql.JoinTerm) ([]row, error) {
	scanner, ok := ex.ds.(KeyspaceScanner)
	if !ok {
		return nil, fmt.Errorf("executor: general joins require the analytics service (N1QL §3.2.4 allows only ON KEYS joins)")
	}
	inner, err := scanner.ScanKeyspace(j.Keyspace)
	if err != nil {
		return nil, err
	}
	outerExpr, innerExpr := equiJoinKeys(j.OnCond, j.Alias)
	if outerExpr != nil {
		return ex.hashJoin(rows, j, inner, outerExpr, innerExpr)
	}
	return ex.nestedLoopJoin(rows, j, inner)
}

// equiJoinKeys detects `outerSide = innerSide` conditions where one
// side references only the inner alias and the other does not touch it
// at all — the hash-join opportunity.
func equiJoinKeys(cond n1ql.Expr, innerAlias string) (outerExpr, innerExpr n1ql.Expr) {
	b, ok := cond.(*n1ql.Binary)
	if !ok || b.Op != n1ql.OpEq {
		return nil, nil
	}
	lInner := referencesAlias(b.LHS, innerAlias)
	rInner := referencesAlias(b.RHS, innerAlias)
	switch {
	case rInner && !lInner && onlyAlias(b.RHS, innerAlias):
		return b.LHS, b.RHS
	case lInner && !rInner && onlyAlias(b.LHS, innerAlias):
		return b.RHS, b.LHS
	}
	return nil, nil
}

// referencesAlias reports whether e mentions alias (as a binding root).
func referencesAlias(e n1ql.Expr, alias string) bool {
	found := false
	n1ql.WalkExpr(e, func(x n1ql.Expr) bool {
		if id, ok := x.(*n1ql.Ident); ok && id.Name == alias {
			found = true
			return false
		}
		if m, ok := x.(*n1ql.MetaExpr); ok && m.Alias == alias {
			found = true
			return false
		}
		return true
	})
	return found
}

// onlyAlias reports whether every data reference in e is rooted at
// alias: the expression can be evaluated against an inner document
// alone. Bare identifiers that are not the alias would resolve against
// the outer default binding, so they disqualify.
func onlyAlias(e n1ql.Expr, alias string) bool {
	ok := true
	n1ql.WalkExpr(e, func(x n1ql.Expr) bool {
		switch t := x.(type) {
		case *n1ql.Ident:
			if t.Name != alias {
				ok = false
			}
			return false
		case *n1ql.Self:
			ok = false
			return false
		case *n1ql.MetaExpr:
			if t.Alias != alias {
				ok = false
			}
			return false
		case *n1ql.Field:
			// Descend only into the receiver; the field name itself is
			// not a reference.
			n1ql.WalkExpr(t.Recv, func(y n1ql.Expr) bool { return walkRef(y, alias, &ok) })
			return false
		}
		return true
	})
	return ok
}

func walkRef(x n1ql.Expr, alias string, ok *bool) bool {
	switch t := x.(type) {
	case *n1ql.Ident:
		if t.Name != alias {
			*ok = false
		}
		return false
	case *n1ql.Self:
		*ok = false
		return false
	case *n1ql.MetaExpr:
		if t.Alias != alias {
			*ok = false
		}
		return false
	}
	return true
}

// hashJoin builds a hash table on the inner side's join key and probes
// it with each outer row.
func (ex *selectExec) hashJoin(rows []row, j n1ql.JoinTerm, inner []ScannedDoc, outerExpr, innerExpr n1ql.Expr) ([]row, error) {
	table := make(map[string][]ScannedDoc, len(inner))
	for _, d := range inner {
		ctx := &n1ql.Context{
			Bindings: map[string]any{j.Alias: d.Doc},
			Metas:    map[string]n1ql.Meta{j.Alias: d.Meta},
			Params:   ex.opts.Params,
			Default:  j.Alias,
		}
		k, err := n1ql.Eval(innerExpr, ctx)
		if err != nil {
			return nil, err
		}
		if value.IsMissing(k) || k == nil {
			continue // NULL/MISSING never equi-join
		}
		ek := string(value.EncodeKey(k))
		table[ek] = append(table[ek], d)
	}
	var out []row
	for _, r := range rows {
		k, err := n1ql.Eval(outerExpr, r.ctx)
		if err != nil {
			return nil, err
		}
		var matches []ScannedDoc
		if !value.IsMissing(k) && k != nil {
			matches = table[string(value.EncodeKey(k))]
		}
		out = appendJoinRows(out, r, j, matches)
	}
	return out, nil
}

// nestedLoopJoin evaluates the condition for every (outer, inner) pair.
func (ex *selectExec) nestedLoopJoin(rows []row, j n1ql.JoinTerm, inner []ScannedDoc) ([]row, error) {
	var out []row
	for _, r := range rows {
		var matches []ScannedDoc
		for _, d := range inner {
			ctx := r.ctx.Child(j.Alias, d.Doc)
			ctx.Metas = withMeta(r.ctx.Metas, j.Alias, d.Meta)
			v, err := n1ql.Eval(j.OnCond, ctx)
			if err != nil {
				return nil, err
			}
			if value.Truthy(v) {
				matches = append(matches, d)
			}
		}
		out = appendJoinRows(out, r, j, matches)
	}
	return out, nil
}

// appendJoinRows emits result rows per the JOIN/NEST and INNER/LEFT
// semantics shared with key joins.
func appendJoinRows(out []row, r row, j n1ql.JoinTerm, matches []ScannedDoc) []row {
	if j.Nest {
		if len(matches) == 0 {
			if j.Kind == n1ql.JoinLeftOuter {
				nr := r
				nr.ctx = r.ctx.Child(j.Alias, value.Missing)
				out = append(out, nr)
			}
			return out
		}
		docs := make([]any, len(matches))
		for i, d := range matches {
			docs[i] = d.Doc
		}
		nr := r
		nr.ctx = r.ctx.Child(j.Alias, docs)
		return append(out, nr)
	}
	if len(matches) == 0 {
		if j.Kind == n1ql.JoinLeftOuter {
			nr := r
			nr.ctx = r.ctx.Child(j.Alias, value.Missing)
			out = append(out, nr)
		}
		return out
	}
	for _, d := range matches {
		nr := r
		nr.ctx = r.ctx.Child(j.Alias, d.Doc)
		nr.ctx.Metas = withMeta(r.ctx.Metas, j.Alias, d.Meta)
		out = append(out, nr)
	}
	return out
}
