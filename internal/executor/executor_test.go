package executor

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"couchgo/internal/n1ql"
	"couchgo/internal/planner"
	"couchgo/internal/value"
)

// stubDS is a minimal Datastore for unit-testing individual operators.
type stubDS struct {
	mu   sync.Mutex
	docs map[string]any
	// fetchConcurrency observes the parallel Fetch operator.
	inFlight, maxInFlight atomic.Int32
	fetches               atomic.Int32
}

func newStubDS() *stubDS { return &stubDS{docs: map[string]any{}} }

func (s *stubDS) put(id, doc string) { s.docs[id] = value.MustParse(doc) }

func (s *stubDS) Fetch(_ context.Context, _ string, id string) (any, n1ql.Meta, error) {
	cur := s.inFlight.Add(1)
	for {
		max := s.maxInFlight.Load()
		if cur <= max || s.maxInFlight.CompareAndSwap(max, cur) {
			break
		}
	}
	// Hold the slot briefly so overlap is observable even on one CPU.
	time.Sleep(200 * time.Microsecond)
	defer s.inFlight.Add(-1)
	s.fetches.Add(1)
	s.mu.Lock()
	doc, ok := s.docs[id]
	s.mu.Unlock()
	if !ok {
		return nil, n1ql.Meta{}, ErrNotFound
	}
	return doc, n1ql.Meta{ID: id}, nil
}

func (s *stubDS) ScanIndex(_ context.Context, _, _ string, _ n1ql.IndexUsing, opts IndexScanOpts) ([]IndexEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []IndexEntry
	for id := range s.docs {
		out = append(out, IndexEntry{ID: id, SecKey: []any{id}})
	}
	// Deterministic order.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].ID < out[i].ID {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	return out, nil
}

func (s *stubDS) ConsistencyVector(string) map[int]uint64 { return nil }

func (s *stubDS) InsertDoc(_ context.Context, _, id string, doc any, upsert bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[id]; ok && !upsert {
		return fmt.Errorf("exists")
	}
	s.docs[id] = doc
	return nil
}

func (s *stubDS) UpdateDoc(_ context.Context, _, id string, doc any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[id]; !ok {
		return ErrNotFound
	}
	s.docs[id] = doc
	return nil
}

func (s *stubDS) DeleteDoc(_ context.Context, _, id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[id]; !ok {
		return ErrNotFound
	}
	delete(s.docs, id)
	return nil
}

type stubCat struct{}

func (stubCat) KeyspaceExists(string) bool { return true }
func (stubCat) Indexes(string) []planner.IndexInfo {
	return []planner.IndexInfo{{Name: "#primary", IsPrimary: true, SecCanonical: []string{"meta().id"}, Built: true}}
}

func planOf(t *testing.T, src string) *planner.SelectPlan {
	t.Helper()
	stmt, err := n1ql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := planner.PlanSelect(stmt.(*n1ql.Select), stubCat{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFetchIsParallelAndOrdered(t *testing.T) {
	ds := newStubDS()
	for i := 0; i < 64; i++ {
		ds.put(fmt.Sprintf("doc%02d", i), fmt.Sprintf(`{"i": %d}`, i))
	}
	p := planOf(t, "SELECT i FROM b")
	rows, err := ExecuteSelect(p, ds, Options{FetchParallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 64 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Scan order (by id) is preserved through the parallel fetch.
	for i, r := range rows {
		if got := r.(map[string]any)["i"]; got != float64(i) {
			t.Fatalf("row %d = %v", i, got)
		}
	}
	if ds.maxInFlight.Load() < 2 {
		t.Errorf("fetch not parallel: max in flight %d", ds.maxInFlight.Load())
	}
}

func TestMissingDocsDropFromKeyScan(t *testing.T) {
	ds := newStubDS()
	ds.put("a", `{"v": 1}`)
	p := planOf(t, `SELECT v FROM b USE KEYS ["a", "ghost", "also-ghost"]`)
	rows, err := ExecuteSelect(p, ds, Options{})
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows: %v, %v", rows, err)
	}
}

func TestUseKeysTypeErrors(t *testing.T) {
	ds := newStubDS()
	p := planOf(t, `SELECT v FROM b USE KEYS 42`)
	if _, err := ExecuteSelect(p, ds, Options{}); err == nil {
		t.Error("numeric USE KEYS should fail")
	}
	// Array with non-strings: non-strings skipped.
	ds.put("a", `{"v": 1}`)
	p = planOf(t, `SELECT v FROM b USE KEYS ["a", 42]`)
	rows, err := ExecuteSelect(p, ds, Options{})
	if err != nil || len(rows) != 1 {
		t.Fatalf("mixed keys: %v %v", rows, err)
	}
}

func TestLimitOffsetValidation(t *testing.T) {
	ds := newStubDS()
	for _, src := range []string{
		"SELECT v FROM b LIMIT -1",
		`SELECT v FROM b LIMIT "x"`,
		"SELECT v FROM b OFFSET -2",
	} {
		p := planOf(t, src)
		if _, err := ExecuteSelect(p, ds, Options{}); err == nil {
			t.Errorf("%s should fail", src)
		}
	}
	// Offset beyond result set yields empty.
	ds.put("a", `{"v": 1}`)
	p := planOf(t, "SELECT v FROM b OFFSET 10")
	rows, err := ExecuteSelect(p, ds, Options{})
	if err != nil || len(rows) != 0 {
		t.Fatalf("big offset: %v %v", rows, err)
	}
}

func TestGroupEmptyInputProducesOneRow(t *testing.T) {
	ds := newStubDS() // no docs
	p := planOf(t, "SELECT COUNT(*) AS n, SUM(v) AS s FROM b")
	rows, err := ExecuteSelect(p, ds, Options{})
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows: %v %v", rows, err)
	}
	obj := rows[0].(map[string]any)
	if obj["n"] != 0.0 {
		t.Errorf("count: %v", obj)
	}
	if _, has := obj["s"]; has && obj["s"] != nil {
		t.Errorf("sum of nothing should be null: %v", obj["s"])
	}
}

func TestGroupByWithExpressionKeys(t *testing.T) {
	ds := newStubDS()
	ds.put("a", `{"age": 21}`)
	ds.put("b", `{"age": 29}`)
	ds.put("c", `{"age": 35}`)
	p := planOf(t, "SELECT FLOOR(age / 10) AS decade, COUNT(*) AS n FROM b GROUP BY FLOOR(age / 10) ORDER BY decade")
	rows, err := ExecuteSelect(p, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups: %v", rows)
	}
	if rows[0].(map[string]any)["n"] != 2.0 {
		t.Errorf("decade 2 count: %v", rows[0])
	}
}

func TestInsertReturningAndErrors(t *testing.T) {
	ds := newStubDS()
	stmt, _ := n1ql.Parse(`INSERT INTO b (KEY, VALUE) VALUES ("k1", {"v": 1}) RETURNING meta().id AS id`)
	res, err := ExecuteInsert(stmt.(*n1ql.Insert), ds, stubCat{}, Options{})
	if err != nil || res.MutationCount != 1 {
		t.Fatalf("insert: %+v %v", res, err)
	}
	if res.Returning[0].(map[string]any)["id"] != "k1" {
		t.Errorf("returning: %v", res.Returning)
	}
	// Duplicate.
	if _, err := ExecuteInsert(stmt.(*n1ql.Insert), ds, stubCat{}, Options{}); err == nil {
		t.Error("duplicate insert should fail")
	}
	// Non-string key.
	stmt, _ = n1ql.Parse(`INSERT INTO b (KEY, VALUE) VALUES (5, {})`)
	if _, err := ExecuteInsert(stmt.(*n1ql.Insert), ds, stubCat{}, Options{}); err == nil {
		t.Error("numeric key should fail")
	}
}

func TestUpdatePathHandling(t *testing.T) {
	ds := newStubDS()
	ds.put("k", `{"a": {"b": 1}, "arr": [10, 20]}`)
	run := func(src string) {
		t.Helper()
		stmt, err := n1ql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ExecuteUpdate(stmt.(*n1ql.Update), ds, stubCat{}, Options{}); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	run(`UPDATE b USE KEYS "k" SET a.b = 2`)
	run(`UPDATE b USE KEYS "k" SET arr[1] = 99`)
	run(`UPDATE b USE KEYS "k" SET fresh.deep.field = "v"`)
	run(`UPDATE b USE KEYS "k" UNSET a.b`)
	doc := ds.docs["k"]
	if value.MustParsePath("arr[1]").Eval(doc) != 99.0 {
		t.Errorf("array set: %v", doc)
	}
	if value.MustParsePath("fresh.deep.field").Eval(doc) != "v" {
		t.Errorf("deep create: %v", doc)
	}
	if !value.IsMissing(value.MustParsePath("a.b").Eval(doc)) {
		t.Errorf("unset: %v", doc)
	}
	// Alias-qualified path.
	run(`UPDATE b AS d USE KEYS "k" SET d.viaAlias = TRUE`)
	if value.MustParsePath("viaAlias").Eval(ds.docs["k"]) != true {
		t.Errorf("alias path: %v", ds.docs["k"])
	}
}

func TestDeleteWithLimit(t *testing.T) {
	ds := newStubDS()
	for i := 0; i < 10; i++ {
		ds.put(fmt.Sprintf("k%d", i), `{"v": 1}`)
	}
	stmt, _ := n1ql.Parse("DELETE FROM b WHERE v = 1 LIMIT 4")
	res, err := ExecuteDelete(stmt.(*n1ql.Delete), ds, stubCat{}, Options{})
	if err != nil || res.MutationCount != 4 {
		t.Fatalf("delete: %+v %v", res, err)
	}
	if len(ds.docs) != 6 {
		t.Errorf("remaining: %d", len(ds.docs))
	}
}

func TestDistinctOnProjectedValues(t *testing.T) {
	ds := newStubDS()
	ds.put("a", `{"city": "SF", "x": 1}`)
	ds.put("b", `{"city": "SF", "x": 2}`)
	ds.put("c", `{"city": "NY", "x": 3}`)
	p := planOf(t, "SELECT DISTINCT city FROM b")
	rows, err := ExecuteSelect(p, ds, Options{})
	if err != nil || len(rows) != 2 {
		t.Fatalf("distinct: %v %v", rows, err)
	}
}

func TestUnnestLeftOuter(t *testing.T) {
	ds := newStubDS()
	ds.put("a", `{"name": "hasitems", "items": [1, 2]}`)
	ds.put("b", `{"name": "noitems"}`)
	// INNER UNNEST drops rows without the array.
	p := planOf(t, "SELECT name FROM b UNNEST items AS it")
	rows, _ := ExecuteSelect(p, ds, Options{})
	if len(rows) != 2 {
		t.Fatalf("inner unnest: %v", rows)
	}
	// LEFT OUTER UNNEST keeps them.
	p = planOf(t, "SELECT name FROM b LEFT UNNEST items AS it")
	rows, _ = ExecuteSelect(p, ds, Options{})
	if len(rows) != 3 {
		t.Fatalf("left unnest: %v", rows)
	}
}

func TestSortDescendingAndTies(t *testing.T) {
	ds := newStubDS()
	ds.put("a", `{"g": 1, "n": "x"}`)
	ds.put("b", `{"g": 2, "n": "y"}`)
	ds.put("c", `{"g": 1, "n": "z"}`)
	p := planOf(t, "SELECT g, n FROM b ORDER BY g DESC, n ASC")
	rows, err := ExecuteSelect(p, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := rows[0].(map[string]any)
	if first["g"] != 2.0 {
		t.Fatalf("desc order: %v", rows)
	}
	second := rows[1].(map[string]any)
	if second["n"] != "x" {
		t.Fatalf("tie break: %v", rows)
	}
}
