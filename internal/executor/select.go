package executor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"couchgo/internal/n1ql"
	"couchgo/internal/planner"
	"couchgo/internal/value"
)

// row is one item flowing through the pipeline.
type row struct {
	ctx *n1ql.Context
	// projected and sortKey are filled late in the pipeline.
	projected any
	sortKey   []any
}

// ExecuteSelect runs a planned SELECT and returns the result values
// (one JSON value per row).
func ExecuteSelect(p *planner.SelectPlan, ds Datastore, opts Options) ([]any, error) {
	ex := &selectExec{p: p, ds: ds, opts: opts}
	return ex.run()
}

type selectExec struct {
	p    *planner.SelectPlan
	ds   Datastore
	opts Options
}

func (ex *selectExec) paramCtx() *n1ql.Context {
	return &n1ql.Context{Params: ex.opts.Params}
}

func (ex *selectExec) run() ([]any, error) {
	p := ex.p

	limit, offset, err := ex.limitOffset()
	if err != nil {
		return nil, err
	}

	rows, err := ex.scanAndAssemble(limit, offset)
	if err != nil {
		return nil, err
	}

	// Join / Nest / Unnest expand or restructure rows.
	for _, j := range p.Joins {
		t0 := time.Now()
		rows, err = ex.join(rows, j)
		if err != nil {
			return nil, err
		}
		ex.opts.Record("join", t0, len(rows))
	}
	for _, u := range p.Unnests {
		t0 := time.Now()
		rows, err = ex.unnest(rows, u)
		if err != nil {
			return nil, err
		}
		ex.opts.Record("unnest", t0, len(rows))
	}

	// Filter.
	if p.Where != nil {
		t0 := time.Now()
		rows, err = filterRows(rows, p.Where)
		if err != nil {
			return nil, err
		}
		ex.opts.Record("filter", t0, len(rows))
	}

	// Group / aggregate.
	if len(p.GroupBy) > 0 || len(p.Aggregates) > 0 {
		t0 := time.Now()
		rows, err = ex.group(rows)
		if err != nil {
			return nil, err
		}
		if p.Having != nil {
			having := aggRewrite(p.Having, p.Aggregates)
			rows, err = filterRows(rows, having)
			if err != nil {
				return nil, err
			}
		}
		ex.opts.Record("group", t0, len(rows))
	}

	// Project (and compute sort keys while contexts are still around).
	tProject := time.Now()
	if err := ex.project(rows); err != nil {
		return nil, err
	}

	// Distinct.
	if p.Distinct {
		rows = distinctRows(rows)
	}
	ex.opts.Record("project", tProject, len(rows))

	// Sort.
	if len(p.OrderBy) > 0 && !p.OrderFromIndex {
		tSort := time.Now()
		sort.SliceStable(rows, func(i, j int) bool {
			for k := range rows[i].sortKey {
				c := value.Compare(rows[i].sortKey[k], rows[j].sortKey[k])
				if c == 0 {
					continue
				}
				if ex.p.OrderBy[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		ex.opts.Record("sort", tSort, len(rows))
	}

	// Offset / Limit.
	if offset > 0 {
		if offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[offset:]
		}
	}
	if limit >= 0 && len(rows) > limit {
		rows = rows[:limit]
	}

	out := make([]any, len(rows))
	for i := range rows {
		out[i] = rows[i].projected
	}
	return out, nil
}

// limitOffset evaluates LIMIT/OFFSET expressions (-1 = no limit).
func (ex *selectExec) limitOffset() (limit, offset int, err error) {
	limit = -1
	if ex.p.Limit != nil {
		v, err := n1ql.Eval(ex.p.Limit, ex.paramCtx())
		if err != nil {
			return 0, 0, err
		}
		f, ok := value.AsNumber(v)
		if !ok || f < 0 {
			return 0, 0, fmt.Errorf("executor: LIMIT must be a non-negative number, got %v", v)
		}
		limit = int(f)
	}
	if ex.p.Offset != nil {
		v, err := n1ql.Eval(ex.p.Offset, ex.paramCtx())
		if err != nil {
			return 0, 0, err
		}
		f, ok := value.AsNumber(v)
		if !ok || f < 0 {
			return 0, 0, fmt.Errorf("executor: OFFSET must be a non-negative number, got %v", v)
		}
		offset = int(f)
	}
	return limit, offset, nil
}

// scanAndAssemble runs the access path and builds initial row contexts
// (including the parallel Fetch of Figure 11 when the scan does not
// cover the query).
func (ex *selectExec) scanAndAssemble(limit, offset int) ([]row, error) {
	p := ex.p
	if p.Scan == nil {
		// FROM-less SELECT: one empty row.
		ctx := &n1ql.Context{Bindings: map[string]any{}, Params: ex.opts.Params}
		return []row{{ctx: ctx}}, nil
	}

	tScan := time.Now()
	switch scan := p.Scan.(type) {
	case *planner.KeyScan:
		ids, err := ex.keyScanIDs(scan)
		if err != nil {
			return nil, err
		}
		ex.opts.Record("scan", tScan, len(ids))
		return ex.fetchRows(ids)
	case *planner.IndexScan:
		entries, err := ex.indexScan(scan.Index, scan.Using, scan.Span, scan.Reverse, limit, offset)
		if err != nil {
			return nil, err
		}
		ex.opts.Record("scan", tScan, len(entries))
		if scan.Covering {
			return ex.coverRows(entries), nil
		}
		ids := make([]string, len(entries))
		for i, e := range entries {
			ids[i] = e.ID
		}
		return ex.fetchRows(ids)
	case *planner.PrimaryScan:
		entries, err := ex.indexScan(scan.Index, scan.Using, scan.Span, false, limit, offset)
		if err != nil {
			return nil, err
		}
		ex.opts.Record("scan", tScan, len(entries))
		if !ex.p.Fetch {
			return ex.coverRows(entries), nil
		}
		ids := make([]string, len(entries))
		for i, e := range entries {
			ids[i] = e.ID
		}
		return ex.fetchRows(ids)
	}
	return nil, fmt.Errorf("executor: unknown scan %T", p.Scan)
}

func (ex *selectExec) keyScanIDs(scan *planner.KeyScan) ([]string, error) {
	v, err := n1ql.Eval(scan.Keys, ex.paramCtx())
	if err != nil {
		return nil, err
	}
	switch t := v.(type) {
	case string:
		return []string{t}, nil
	case []any:
		var ids []string
		for _, el := range t {
			if s, ok := el.(string); ok {
				ids = append(ids, s)
			}
		}
		return ids, nil
	}
	return nil, fmt.Errorf("executor: USE KEYS requires a string or array of strings, got %s", value.KindOf(v))
}

// indexScan evaluates the span and runs the scan, pushing the limit
// down when no later operator can drop or reorder rows.
func (ex *selectExec) indexScan(index string, using n1ql.IndexUsing, span planner.Span, reverse bool, limit, offset int) ([]IndexEntry, error) {
	opts := IndexScanOpts{Reverse: reverse}
	evalAll := func(es []n1ql.Expr) ([]any, error) {
		out := make([]any, len(es))
		for i, e := range es {
			v, err := n1ql.Eval(e, ex.paramCtx())
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var err error
	if span.Equal != nil {
		if opts.EqualKey, err = evalAll(span.Equal); err != nil {
			return nil, err
		}
		opts.HasEqual = true
	} else {
		if span.Low != nil {
			if opts.Low, err = evalAll(span.Low); err != nil {
				return nil, err
			}
			opts.LowIncl = span.LowIncl
		}
		if span.High != nil {
			if opts.High, err = evalAll(span.High); err != nil {
				return nil, err
			}
			opts.HighIncl = span.HighIncl
		}
	}
	if ex.limitPushable() && limit >= 0 {
		opts.Limit = limit + offset
	}
	if ex.opts.Consistency == RequestPlus {
		opts.Wait = ex.ds.ConsistencyVector(ex.p.Keyspace)
	}
	return ex.ds.ScanIndex(ex.opts.Context(), ex.p.Keyspace, index, using, opts)
}

// limitPushable: no residual operator may drop rows before the limit.
func (ex *selectExec) limitPushable() bool {
	p := ex.p
	return p.Where == nil && len(p.Joins) == 0 && len(p.Unnests) == 0 &&
		len(p.GroupBy) == 0 && len(p.Aggregates) == 0 && !p.Distinct &&
		(len(p.OrderBy) == 0 || p.OrderFromIndex)
}

// coverRows builds rows straight from index entries (§5.1.2: "covered
// queries ... deliver better performance" by skipping the fetch).
func (ex *selectExec) coverRows(entries []IndexEntry) []row {
	rows := make([]row, len(entries))
	for i, e := range entries {
		ctx := &n1ql.Context{
			Bindings: map[string]any{},
			Metas:    map[string]n1ql.Meta{ex.p.Alias: {ID: e.ID}},
			Params:   ex.opts.Params,
			Default:  ex.p.Alias,
		}
		ctx.Bind(ex.p.CoverIDName, e.ID)
		for k, name := range ex.p.CoverNames {
			if k < len(e.SecKey) {
				ctx.Bind(name, e.SecKey[k])
			} else {
				ctx.Bind(name, value.Missing)
			}
		}
		rows[i] = row{ctx: ctx}
	}
	return rows
}

// fetchRows is the parallel Fetch operator: it retrieves documents by
// ID with a worker pool, preserving scan order. Missing IDs drop out.
func (ex *selectExec) fetchRows(ids []string) ([]row, error) {
	tFetch := time.Now()
	par := ex.opts.FetchParallelism
	if par <= 0 {
		par = 8
	}
	type slot struct {
		doc  any
		meta n1ql.Meta
		ok   bool
	}
	slots := make([]slot, len(ids))
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := range ids {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			doc, meta, err := ex.ds.Fetch(ex.opts.Context(), ex.p.Keyspace, ids[i])
			if err == nil {
				slots[i] = slot{doc: doc, meta: meta, ok: true}
			}
		}(i)
	}
	wg.Wait()
	rows := make([]row, 0, len(ids))
	for i := range slots {
		if !slots[i].ok {
			continue
		}
		ctx := &n1ql.Context{
			Bindings: map[string]any{ex.p.Alias: slots[i].doc},
			Metas:    map[string]n1ql.Meta{ex.p.Alias: slots[i].meta},
			Params:   ex.opts.Params,
			Default:  ex.p.Alias,
		}
		rows = append(rows, row{ctx: ctx})
	}
	ex.opts.Record("fetch", tFetch, len(rows))
	return rows, nil
}

// join is the nested-loop key join of §4.5.3: "for each of the
// qualifying documents from [the outer keyspace], a KEYSCAN will occur
// on [the inner] based on the key in the [outer] document." General
// (ON <cond>) joins divert to the analytics join path.
func (ex *selectExec) join(rows []row, j n1ql.JoinTerm) ([]row, error) {
	if j.OnCond != nil {
		return ex.generalJoin(rows, j)
	}
	var out []row
	for _, r := range rows {
		keysVal, err := n1ql.Eval(j.OnKeys, r.ctx)
		if err != nil {
			return nil, err
		}
		var ids []string
		switch t := keysVal.(type) {
		case string:
			ids = []string{t}
		case []any:
			for _, el := range t {
				if s, ok := el.(string); ok {
					ids = append(ids, s)
				}
			}
		}
		var docs []any
		var metas []n1ql.Meta
		for _, id := range ids {
			doc, meta, err := ex.ds.Fetch(ex.opts.Context(), j.Keyspace, id)
			if err != nil {
				continue
			}
			docs = append(docs, doc)
			metas = append(metas, meta)
		}
		if j.Nest {
			// NEST: "it produces a single result for each left-hand
			// input while its right-hand input is collected into an
			// array and nested".
			if len(docs) == 0 {
				if j.Kind == n1ql.JoinLeftOuter {
					nr := r
					nr.ctx = r.ctx.Child(j.Alias, value.Missing)
					out = append(out, nr)
				}
				continue
			}
			nr := r
			nr.ctx = r.ctx.Child(j.Alias, docs)
			out = append(out, nr)
			continue
		}
		// JOIN: one result per matched inner document.
		if len(docs) == 0 {
			if j.Kind == n1ql.JoinLeftOuter {
				nr := r
				nr.ctx = r.ctx.Child(j.Alias, value.Missing)
				out = append(out, nr)
			}
			continue
		}
		for i, doc := range docs {
			nr := r
			nr.ctx = r.ctx.Child(j.Alias, doc)
			nr.ctx.Metas = withMeta(r.ctx.Metas, j.Alias, metas[i])
			out = append(out, nr)
		}
	}
	return out, nil
}

func withMeta(m map[string]n1ql.Meta, alias string, meta n1ql.Meta) map[string]n1ql.Meta {
	out := make(map[string]n1ql.Meta, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	out[alias] = meta
	return out
}

// unnest flattens a nested array: "a join operation between a parent
// and a child object containing a nested array ... the parent object is
// repeated for each child array item."
func (ex *selectExec) unnest(rows []row, u n1ql.UnnestTerm) ([]row, error) {
	var out []row
	for _, r := range rows {
		v, err := n1ql.Eval(u.Expr, r.ctx)
		if err != nil {
			return nil, err
		}
		arr, ok := v.([]any)
		if !ok || len(arr) == 0 {
			if u.Kind == n1ql.JoinLeftOuter {
				nr := r
				nr.ctx = r.ctx.Child(u.Alias, value.Missing)
				out = append(out, nr)
			}
			continue
		}
		for _, el := range arr {
			nr := r
			nr.ctx = r.ctx.Child(u.Alias, el)
			out = append(out, nr)
		}
	}
	return out, nil
}

func filterRows(rows []row, cond n1ql.Expr) ([]row, error) {
	out := rows[:0]
	for _, r := range rows {
		v, err := n1ql.Eval(cond, r.ctx)
		if err != nil {
			return nil, err
		}
		if value.Truthy(v) {
			out = append(out, r)
		}
	}
	return out, nil
}

// group implements the Group operator: hash grouping on the GROUP BY
// keys with one Aggregator per aggregate call per group.
func (ex *selectExec) group(rows []row) ([]row, error) {
	p := ex.p
	type groupState struct {
		first *n1ql.Context
		aggs  []*n1ql.Aggregator
	}
	groups := map[string]*groupState{}
	var order []string
	for _, r := range rows {
		keyParts := make([]any, len(p.GroupBy))
		for i, g := range p.GroupBy {
			v, err := n1ql.Eval(g, r.ctx)
			if err != nil {
				return nil, err
			}
			keyParts[i] = v
		}
		key := string(value.EncodeKey(keyParts))
		gs, ok := groups[key]
		if !ok {
			gs = &groupState{first: r.ctx}
			for _, fc := range p.Aggregates {
				gs.aggs = append(gs.aggs, n1ql.NewAggregator(fc))
			}
			groups[key] = gs
			order = append(order, key)
		}
		for i, fc := range p.Aggregates {
			if fc.Star {
				gs.aggs[i].Add(true) // COUNT(*) counts rows
				continue
			}
			v, err := n1ql.Eval(fc.Args[0], r.ctx)
			if err != nil {
				return nil, err
			}
			gs.aggs[i].Add(v)
		}
	}
	// Aggregate-only query over zero rows still yields one row
	// (SELECT COUNT(*) ... on an empty set returns 0).
	if len(groups) == 0 && len(p.GroupBy) == 0 {
		gs := &groupState{first: &n1ql.Context{Bindings: map[string]any{}, Params: ex.opts.Params, Default: p.Alias}}
		for _, fc := range p.Aggregates {
			gs.aggs = append(gs.aggs, n1ql.NewAggregator(fc))
		}
		groups[""] = gs
		order = append(order, "")
	}
	var out []row
	for _, key := range order {
		gs := groups[key]
		ctx := gs.first
		for i, fc := range p.Aggregates {
			ctx = ctx.Child(aggName(fc), gs.aggs[i].Result())
		}
		out = append(out, row{ctx: ctx})
	}
	return out, nil
}

func aggName(fc *n1ql.FuncCall) string { return "$agg:" + fc.String() }

// aggRewrite replaces aggregate calls with references to the group's
// computed bindings.
func aggRewrite(e n1ql.Expr, aggs []*n1ql.FuncCall) n1ql.Expr {
	if e == nil {
		return nil
	}
	for _, fc := range aggs {
		if e.String() == fc.String() {
			return &n1ql.Ident{Name: aggName(fc)}
		}
	}
	switch t := e.(type) {
	case *n1ql.Binary:
		return &n1ql.Binary{Op: t.Op, LHS: aggRewrite(t.LHS, aggs), RHS: aggRewrite(t.RHS, aggs)}
	case *n1ql.Unary:
		return &n1ql.Unary{Op: t.Op, Operand: aggRewrite(t.Operand, aggs)}
	case *n1ql.Is:
		return &n1ql.Is{Kind: t.Kind, Operand: aggRewrite(t.Operand, aggs)}
	case *n1ql.FuncCall:
		out := &n1ql.FuncCall{Name: t.Name, Distinct: t.Distinct, Star: t.Star}
		for _, a := range t.Args {
			out.Args = append(out.Args, aggRewrite(a, aggs))
		}
		return out
	case *n1ql.CaseExpr:
		out := &n1ql.CaseExpr{Operand: aggRewrite(t.Operand, aggs), Else: aggRewrite(t.Else, aggs)}
		for i := range t.Whens {
			out.Whens = append(out.Whens, aggRewrite(t.Whens[i], aggs))
			out.Thens = append(out.Thens, aggRewrite(t.Thens[i], aggs))
		}
		return out
	}
	return e
}

// project fills each row's projected value and sort key. This is
// InitialProject + FinalProject: shrink to the referenced fields, then
// shape the result JSON.
func (ex *selectExec) project(rows []row) error {
	p := ex.p
	sortExprs := make([]n1ql.Expr, len(p.OrderBy))
	for i, ot := range p.OrderBy {
		sortExprs[i] = aggRewrite(ot.Expr, p.Aggregates)
	}
	projTerms := make([]n1ql.ResultTerm, len(p.Projection))
	copy(projTerms, p.Projection)
	for i := range projTerms {
		if !projTerms[i].Star {
			projTerms[i].Expr = aggRewrite(projTerms[i].Expr, p.Aggregates)
		}
	}
	for i := range rows {
		ctx := rows[i].ctx
		if p.Raw {
			v, err := n1ql.Eval(projTerms[0].Expr, ctx)
			if err != nil {
				return err
			}
			if value.IsMissing(v) {
				v = nil
			}
			rows[i].projected = v
		} else {
			obj := make(map[string]any)
			for ti, rt := range projTerms {
				if rt.Star {
					if err := projectStar(obj, rt, ctx); err != nil {
						return err
					}
					continue
				}
				v, err := n1ql.Eval(rt.Expr, ctx)
				if err != nil {
					return err
				}
				if value.IsMissing(v) {
					continue // MISSING projections are omitted
				}
				obj[resultName(rt, ti)] = v
			}
			rows[i].projected = obj
		}
		if len(sortExprs) > 0 && !p.OrderFromIndex {
			key := make([]any, len(sortExprs))
			for k, se := range sortExprs {
				v, err := n1ql.Eval(se, ctx)
				if err != nil {
					return err
				}
				key[k] = v
			}
			rows[i].sortKey = key
		}
	}
	return nil
}

// projectStar merges * or alias.* into the result object. Plain *
// yields {alias: document} per N1QL semantics; alias.* splices the
// document's own fields.
func projectStar(obj map[string]any, rt n1ql.ResultTerm, ctx *n1ql.Context) error {
	if rt.Expr == nil {
		// Plain *: every keyspace/join/unnest binding under its alias.
		// Internal bindings ($cover:…, $agg:…) are not part of *.
		for name, doc := range ctx.Bindings {
			if len(name) > 0 && name[0] == '$' {
				continue
			}
			if !value.IsMissing(doc) {
				obj[name] = doc
			}
		}
		return nil
	}
	v, err := n1ql.Eval(rt.Expr, ctx)
	if err != nil {
		return err
	}
	if m, ok := v.(map[string]any); ok {
		for k, f := range m {
			obj[k] = f
		}
	}
	return nil
}

// resultName derives a projection's field name: explicit alias, else
// the trailing path component, else $<position> (1-based).
func resultName(rt n1ql.ResultTerm, pos int) string {
	if rt.Alias != "" {
		return rt.Alias
	}
	switch t := rt.Expr.(type) {
	case *n1ql.Ident:
		return t.Name
	case *n1ql.Field:
		return t.Name
	}
	return fmt.Sprintf("$%d", pos+1)
}

func distinctRows(rows []row) []row {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		key := string(value.EncodeKey(r.projected))
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
	}
	return out
}
