package health

import (
	"fmt"
	"time"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/metrics"
)

// ClusterCheckConfig tunes the standard rule set. Zero values take the
// documented defaults.
type ClusterCheckConfig struct {
	// FeedStallCritAfter: a feed stall persisting this long is critical
	// (default 5s). Any ongoing stall is at least warn.
	FeedStallCritAfter time.Duration
	// DCPLagWarn / DCPLagCrit bound total undelivered mutations across
	// all DCP streams (defaults 1000 / 10000).
	DCPLagWarn, DCPLagCrit uint64
	// FlushBacklogWarn / FlushBacklogCrit bound the summed flusher
	// queue depth (defaults 500 / 5000).
	FlushBacklogWarn, FlushBacklogCrit int
	// ResidencyWarn / ResidencyCrit: a bucket whose resident fraction
	// (1 - nonresident/items) falls below these is degraded
	// (defaults 0.5 / 0.2).
	ResidencyWarn, ResidencyCrit float64
	// MemoryWarn / MemoryCrit: used/quota fractions (defaults 0.85 /
	// 0.95, the pager watermarks). Buckets without a quota are skipped.
	MemoryWarn, MemoryCrit float64
	// SlowOpWarnPerSec / SlowOpCritPerSec bound the slow-query rate
	// (defaults 1 / 10 per second).
	SlowOpWarnPerSec, SlowOpCritPerSec float64
	// Registry supplies feed metrics (default metrics.Default).
	Registry *metrics.Registry
	// Now overrides the clock for stall-age and rate computations
	// (tests and demos); defaults to time.Now.
	Now func() time.Time
}

func (cfg *ClusterCheckConfig) defaults() {
	if cfg.FeedStallCritAfter <= 0 {
		cfg.FeedStallCritAfter = 5 * time.Second
	}
	if cfg.DCPLagWarn == 0 {
		cfg.DCPLagWarn = 1000
	}
	if cfg.DCPLagCrit == 0 {
		cfg.DCPLagCrit = 10000
	}
	if cfg.FlushBacklogWarn == 0 {
		cfg.FlushBacklogWarn = 500
	}
	if cfg.FlushBacklogCrit == 0 {
		cfg.FlushBacklogCrit = 5000
	}
	if cfg.ResidencyWarn == 0 {
		cfg.ResidencyWarn = 0.5
	}
	if cfg.ResidencyCrit == 0 {
		cfg.ResidencyCrit = 0.2
	}
	if cfg.MemoryWarn == 0 {
		cfg.MemoryWarn = 0.85
	}
	if cfg.MemoryCrit == 0 {
		cfg.MemoryCrit = 0.95
	}
	if cfg.SlowOpWarnPerSec == 0 {
		cfg.SlowOpWarnPerSec = 1
	}
	if cfg.SlowOpCritPerSec == 0 {
		cfg.SlowOpCritPerSec = 10
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.Default
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
}

// RegisterClusterChecks installs the standard rule set over a cluster:
// per-node liveness, feed stall age, DCP lag, flush backlog, cache
// residency/memory, and slow-op rate. Node checks are registered for
// the nodes present at call time (the in-process cluster adds nodes up
// front; re-register after topology growth if needed).
func RegisterClusterChecks(w *Watchdog, c *core.Cluster, cfg ClusterCheckConfig) {
	cfg.defaults()

	for _, n := range c.Nodes() {
		id := n.ID()
		node := n
		w.Register("node:"+string(id), func() (State, string) {
			if node.Alive() {
				return OK, "alive"
			}
			// A dead node still holding partitions is the emergency;
			// once failover unmaps it everywhere it is history, not a
			// problem — the check recovers so /health can go green.
			if c.NodeMapped(id) {
				return Critical, "node down with mapped partitions"
			}
			return OK, "down (failed over, unmapped)"
		})
	}

	w.Register("feed:stalls", feedStallCheck(cfg))
	w.Register("dcp:lag", dcpLagCheck(c, cfg))
	w.Register("flush:backlog", flushBacklogCheck(c, cfg))
	w.Register("cache:residency", residencyCheck(c, cfg))
	w.Register("cache:memory", memoryCheck(c, cfg))
	w.Register("query:slowops", slowOpCheck(c, cfg))
}

// feedStallCheck ages the couchgo_feed_stalled gauge: any drain
// currently blocked on a full buffer is at least warn, and a stall
// that persists past FeedStallCritAfter is critical. The closure's
// state is safe because the watchdog runs checks sequentially.
func feedStallCheck(cfg ClusterCheckConfig) CheckFunc {
	var stalledSince time.Time
	return func() (State, string) {
		stalled := sumGauge(cfg.Registry, "couchgo_feed_stalled")
		if stalled <= 0 {
			stalledSince = time.Time{}
			return OK, "no feeds stalled"
		}
		now := cfg.Now()
		if stalledSince.IsZero() {
			stalledSince = now
		}
		age := now.Sub(stalledSince)
		detail := fmt.Sprintf("%d drain(s) stalled for %s", stalled, age.Round(time.Millisecond))
		if age >= cfg.FeedStallCritAfter {
			return Critical, detail
		}
		return Warn, detail
	}
}

func dcpLagCheck(c *core.Cluster, cfg ClusterCheckConfig) CheckFunc {
	return func() (State, string) {
		var total uint64
		for _, b := range c.BucketNames() {
			for _, st := range c.Stats(b) {
				for _, lag := range st.DCPLags {
					total += lag
				}
			}
		}
		detail := fmt.Sprintf("%d undelivered mutations", total)
		switch {
		case total >= cfg.DCPLagCrit:
			return Critical, detail
		case total >= cfg.DCPLagWarn:
			return Warn, detail
		}
		return OK, detail
	}
}

func flushBacklogCheck(c *core.Cluster, cfg ClusterCheckConfig) CheckFunc {
	return func() (State, string) {
		total := 0
		for _, b := range c.BucketNames() {
			for _, st := range c.Stats(b) {
				total += st.QueueDepth
			}
		}
		detail := fmt.Sprintf("%d queued mutations", total)
		switch {
		case total >= cfg.FlushBacklogCrit:
			return Critical, detail
		case total >= cfg.FlushBacklogWarn:
			return Warn, detail
		}
		return OK, detail
	}
}

func residencyCheck(c *core.Cluster, cfg ClusterCheckConfig) CheckFunc {
	return func() (State, string) {
		worst, worstBucket := 1.0, ""
		for _, b := range c.BucketNames() {
			var items, nonResident int64
			for _, st := range c.Stats(b) {
				items += st.Items
				nonResident += st.NonResident
			}
			if items == 0 {
				continue
			}
			r := 1 - float64(nonResident)/float64(items)
			if worstBucket == "" || r < worst {
				worst, worstBucket = r, b
			}
		}
		if worstBucket == "" {
			return OK, "no items"
		}
		detail := fmt.Sprintf("bucket %s %.0f%% resident", worstBucket, worst*100)
		switch {
		case worst < cfg.ResidencyCrit:
			return Critical, detail
		case worst < cfg.ResidencyWarn:
			return Warn, detail
		}
		return OK, detail
	}
}

func memoryCheck(c *core.Cluster, cfg ClusterCheckConfig) CheckFunc {
	return func() (State, string) {
		worst, worstBucket := 0.0, ""
		for _, b := range c.BucketNames() {
			quota := c.BucketQuota(b)
			if quota <= 0 {
				continue
			}
			var used int64
			for _, st := range c.Stats(b) {
				used += st.MemUsed
			}
			f := float64(used) / float64(quota)
			if f > worst {
				worst, worstBucket = f, b
			}
		}
		if worstBucket == "" {
			return OK, "no quotas configured"
		}
		detail := fmt.Sprintf("bucket %s at %.0f%% of quota", worstBucket, worst*100)
		switch {
		case worst >= cfg.MemoryCrit:
			return Critical, detail
		case worst >= cfg.MemoryWarn:
			return Warn, detail
		}
		return OK, detail
	}
}

// slowOpCheck rates slow-query arrivals between ticks.
func slowOpCheck(c *core.Cluster, cfg ClusterCheckConfig) CheckFunc {
	var prev uint64
	var prevAt time.Time
	return func() (State, string) {
		cur := c.SlowQueryTotal()
		now := cfg.Now()
		if prevAt.IsZero() {
			prev, prevAt = cur, now
			return OK, "collecting baseline"
		}
		dt := now.Sub(prevAt).Seconds()
		delta := cur - prev
		prev, prevAt = cur, now
		if dt <= 0 {
			return OK, "no interval"
		}
		rate := float64(delta) / dt
		detail := fmt.Sprintf("%.1f slow ops/s", rate)
		switch {
		case rate >= cfg.SlowOpCritPerSec:
			return Critical, detail
		case rate >= cfg.SlowOpWarnPerSec:
			return Warn, detail
		}
		return OK, detail
	}
}

// sumGauge totals every series of a gauge family in the registry
// snapshot.
func sumGauge(r *metrics.Registry, family string) int64 {
	var total int64
	for _, v := range r.Snapshot()[family] {
		if g, ok := v.(int64); ok {
			total += g
		}
	}
	return total
}

// NodeIDFromCheck extracts the node ID from a "node:<id>" check name
// ("" for other checks) — the auto-failover wiring in cbserver keys
// off it.
func NodeIDFromCheck(name string) cmap.NodeID {
	const prefix = "node:"
	if len(name) > len(prefix) && name[:len(prefix)] == prefix {
		return cmap.NodeID(name[len(prefix):])
	}
	return ""
}
