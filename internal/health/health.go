// Package health is the reproduction's watchdog: the piece of
// ns_server that "continuously monitors the health of the nodes" and
// turns raw metrics into operator-facing ok/warn/critical states and,
// ultimately, auto-failover decisions. Checks are plain functions
// evaluated on a fixed tick; the watchdog owns the state machine
// around them.
//
// Flap suppression is structural, not per-check: a check's raw result
// must hold for RaiseAfter consecutive ticks before the watchdog
// raises the published state (and ClearAfter ticks before it clears),
// so a metric oscillating around a threshold produces one transition,
// not one per tick. Every transition is recorded in the event journal
// and handed to an optional callback — cbserver wires that callback to
// core's failover path for flag-gated auto-failover.
package health

import (
	"fmt"
	"sync"
	"time"

	"couchgo/internal/events"
)

// State is a check's published condition.
type State uint8

const (
	OK State = iota
	Warn
	Critical
)

// String returns the lowercase name used in JSON.
func (s State) String() string {
	switch s {
	case Warn:
		return "warn"
	case Critical:
		return "critical"
	default:
		return "ok"
	}
}

// MarshalJSON encodes the state as its string name.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// CheckFunc evaluates one rule, returning the raw state and a
// human-readable detail line. It runs on the watchdog goroutine with
// no watchdog locks held, so it may freely take cluster or registry
// locks.
type CheckFunc func() (State, string)

// CheckStatus is the published view of one check.
type CheckStatus struct {
	Name        string    `json:"name"`
	State       State     `json:"state"`
	Detail      string    `json:"detail,omitempty"`
	Since       time.Time `json:"since"`       // when the current state was entered
	Transitions uint64    `json:"transitions"` // lifetime state changes
}

// Options configure a watchdog.
type Options struct {
	// Interval between evaluation ticks (default 1s).
	Interval time.Duration
	// RaiseAfter is how many consecutive ticks a worse raw state must
	// hold before the published state raises (default 2).
	RaiseAfter int
	// ClearAfter is how many consecutive ticks a better raw state must
	// hold before the published state clears (default 3) — recoveries
	// are held longer than degradations, the usual alarm asymmetry.
	ClearAfter int
	// Journal receives a health event per transition
	// (default events.Default).
	Journal *events.Journal
	// Node labels emitted events with the observing node's ID.
	Node string
}

// Watchdog periodically evaluates registered checks and publishes
// debounced state transitions.
type Watchdog struct {
	opts Options

	mu      sync.Mutex
	checks  []*check
	onTrans func(CheckStatus)
	started bool
	stop    chan struct{}
	done    chan struct{}
}

type check struct {
	name string
	fn   CheckFunc

	state  State // published state
	detail string
	since  time.Time
	trans  uint64

	candidate State // raw state accumulating toward a transition
	streak    int
}

// New creates a watchdog; Register checks, then Start it (or drive it
// manually with Tick in tests).
func New(opts Options) *Watchdog {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.RaiseAfter <= 0 {
		opts.RaiseAfter = 2
	}
	if opts.ClearAfter <= 0 {
		opts.ClearAfter = 3
	}
	if opts.Journal == nil {
		opts.Journal = events.Default
	}
	return &Watchdog{opts: opts}
}

// Register adds a named check. Checks are evaluated in registration
// order; registering after Start is allowed.
func (w *Watchdog) Register(name string, fn CheckFunc) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.checks = append(w.checks, &check{
		name:      name,
		fn:        fn,
		since:     time.Now(),
		candidate: OK,
	})
}

// OnTransition sets a callback invoked (on the watchdog goroutine,
// with no locks held) after each published state change. cbserver uses
// it to trigger auto-failover from sustained-critical node checks.
func (w *Watchdog) OnTransition(fn func(CheckStatus)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.onTrans = fn
}

// Start launches the periodic evaluation loop.
func (w *Watchdog) Start() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		return
	}
	w.started = true
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go w.run(w.stop, w.done)
}

func (w *Watchdog) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.Tick()
		}
	}
}

// Stop halts the evaluation loop. The watchdog can be restarted.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	if !w.started {
		w.mu.Unlock()
		return
	}
	w.started = false
	stop, done := w.stop, w.done
	w.mu.Unlock()
	close(stop)
	<-done
}

// Tick runs one evaluation pass over every check. Exported so tests
// and demos can drive the state machine deterministically.
func (w *Watchdog) Tick() {
	w.mu.Lock()
	checks := make([]*check, len(w.checks))
	copy(checks, w.checks)
	onTrans := w.onTrans
	w.mu.Unlock()

	// Evaluate outside the watchdog lock: check functions take cluster
	// and registry locks of their own.
	type result struct {
		raw    State
		detail string
	}
	results := make([]result, len(checks))
	for i, c := range checks {
		raw, detail := c.fn()
		results[i] = result{raw, detail}
	}

	var fired []CheckStatus
	w.mu.Lock()
	for i, c := range checks {
		raw, detail := results[i].raw, results[i].detail
		c.detail = detail
		if raw == c.state {
			// Raw agrees with published: any pending transition is
			// abandoned.
			c.candidate = c.state
			c.streak = 0
			continue
		}
		if raw == c.candidate {
			c.streak++
		} else {
			c.candidate = raw
			c.streak = 1
		}
		need := w.opts.RaiseAfter
		if raw < c.state { // improvement: hold recoveries longer
			need = w.opts.ClearAfter
		}
		if c.streak < need {
			continue
		}
		c.state = raw
		c.since = time.Now()
		c.trans++
		c.streak = 0
		fired = append(fired, CheckStatus{
			Name:        c.name,
			State:       c.state,
			Detail:      detail,
			Since:       c.since,
			Transitions: c.trans,
		})
	}
	w.mu.Unlock()

	for _, st := range fired {
		sev := events.SevInfo
		switch st.State {
		case Warn:
			sev = events.SevWarn
		case Critical:
			sev = events.SevCritical
		}
		e := events.New(events.Health, sev,
			fmt.Sprintf("health check %s -> %s", st.Name, st.State))
		e.Node = w.opts.Node
		e.Fields = map[string]string{
			"check":  st.Name,
			"state":  st.State.String(),
			"detail": st.Detail,
		}
		w.opts.Journal.Publish(e)
		if onTrans != nil {
			onTrans(st)
		}
	}
}

// Snapshot returns the published status of every check, in
// registration order.
func (w *Watchdog) Snapshot() []CheckStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]CheckStatus, 0, len(w.checks))
	for _, c := range w.checks {
		out = append(out, CheckStatus{
			Name:        c.name,
			State:       c.state,
			Detail:      c.detail,
			Since:       c.since,
			Transitions: c.trans,
		})
	}
	return out
}

// State returns the worst published state across all checks (OK when
// no checks are registered).
func (w *Watchdog) State() State {
	w.mu.Lock()
	defer w.mu.Unlock()
	worst := OK
	for _, c := range w.checks {
		if c.state > worst {
			worst = c.state
		}
	}
	return worst
}
