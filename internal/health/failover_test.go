package health

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/events"
	"couchgo/internal/executor"
	"couchgo/internal/trace"
)

// TestAutoFailoverCausalChain is the tentpole acceptance test: the
// watchdog observes a killed node, its sustained-critical node check
// triggers the failover path, and the journal records the causal chain
// in order — health critical, then the vb takeover, then the feed
// rollback — with the rollback event carrying the trace ID of the last
// mutation the index applied. All of it runs under concurrent client
// load (and under -race via the repo's race gate).
func TestAutoFailoverCausalChain(t *testing.T) {
	mark := events.Default.LastSeq()

	// Sample every operation so mutations carry traces and the rollback
	// event can link back to its originating write.
	trace.SetRate(1)
	t.Cleanup(func() { trace.SetRate(0) })

	c, err := core.NewCluster(core.Config{Dir: t.TempDir(), NumVBuckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 2; i++ {
		if _, err := c.AddNode(cmap.NodeID(fmt.Sprintf("node%d", i)), cmap.AllServices); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateBucket("default", core.BucketOptions{NumReplicas: 1}); err != nil {
		t.Fatal(err)
	}
	cl, err := c.OpenBucket("default")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("CREATE INDEX byN ON `default`(n)", executor.Options{}); err != nil {
		t.Fatal(err)
	}

	// Watchdog with auto-failover wiring: a sustained-critical node
	// check invokes the existing failover path, exactly as cbserver's
	// -auto-failover flag wires it.
	w := New(Options{Interval: 5 * time.Millisecond, RaiseAfter: 2, ClearAfter: 2})
	RegisterClusterChecks(w, c, ClusterCheckConfig{})
	w.OnTransition(func(st CheckStatus) {
		if id := NodeIDFromCheck(st.Name); id != "" && st.State == Critical {
			if err := c.Failover(id); err != nil {
				t.Logf("auto-failover %s: %v", id, err)
			}
		}
	})
	w.Start()
	t.Cleanup(w.Stop)

	// Replicated baseline, then divergence: sever replication and write
	// documents only the actives (and the index feeds) ever see.
	for i := 0; i < 20; i++ {
		if _, err := cl.SetWithOptions(context.Background(), fmt.Sprintf("d%03d", i),
			[]byte(fmt.Sprintf(`{"n": %d}`, i)), 0, 0, 0,
			core.DurabilityOptions{ReplicateTo: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SeverReplication("default"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := cl.Set(context.Background(), fmt.Sprintf("x%03d", i), []byte(`{"n": 100}`), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Force the index to consume the divergent writes so its feeds sit
	// past the replicas' history.
	if _, err := c.Query("SELECT COUNT(*) AS c FROM `default` WHERE n >= 0",
		executor.Options{Consistency: executor.RequestPlus}); err != nil {
		t.Fatal(err)
	}

	// Client load through the failover: writes race the takeover and
	// may fail while routing catches up — only the journal's story is
	// asserted.
	stopLoad := make(chan struct{})
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		i := 0
		for {
			select {
			case <-stopLoad:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			_, _ = cl.Set(ctx, fmt.Sprintf("load%04d", i), []byte(`{"n": 1}`), 0)
			cancel()
			i++
		}
	}()
	defer func() {
		close(stopLoad)
		loadWG.Wait()
	}()

	// Kill the node. The heartbeat auto-failover is disabled
	// (FailoverTimeout zero), so only the watchdog can trigger failover.
	if err := c.Kill("node0"); err != nil {
		t.Fatal(err)
	}

	// Wait for the full causal chain to land in the journal.
	var healthSeq, takeoverSeq, rollbackSeq uint64
	var rollbackTrace uint64
	waitFor(t, "causal chain in journal", func() bool {
		healthSeq, takeoverSeq, rollbackSeq, rollbackTrace = 0, 0, 0, 0
		for _, e := range events.Default.Events(events.Filter{SinceSeq: mark}) {
			switch {
			case e.Type == events.Health && e.Severity == events.SevCritical &&
				e.Fields["check"] == "node:node0" && healthSeq == 0:
				healthSeq = e.Seq
			case e.Type == events.VBucket && e.Node == "node1" && takeoverSeq == 0:
				takeoverSeq = e.Seq
			case e.Type == events.FeedEvent && e.Service == "gsi" &&
				e.TraceID != 0 && rollbackSeq == 0:
				rollbackSeq = e.Seq
				rollbackTrace = e.TraceID
			}
		}
		return healthSeq != 0 && takeoverSeq != 0 && rollbackSeq != 0
	})
	if !(healthSeq < takeoverSeq && takeoverSeq < rollbackSeq) {
		t.Fatalf("causal order violated: health=%d takeover=%d rollback=%d",
			healthSeq, takeoverSeq, rollbackSeq)
	}
	if rollbackTrace == 0 {
		t.Fatal("rollback event carries no trace ID")
	}

	// The topology events are there too: the watchdog-triggered
	// failover itself was journaled.
	found := false
	for _, e := range events.Default.Events(events.Filter{Type: events.Topology, SinceSeq: mark}) {
		if e.Node == "node0" && e.Msg == "node failed over" {
			found = true
		}
	}
	if !found {
		t.Fatal("no 'node failed over' topology event in journal")
	}

	// And the node check recovers: once failover unmapped node0, the
	// critical condition clears (back to ok with hysteresis).
	waitFor(t, "node check recovery", func() bool {
		for _, st := range w.Snapshot() {
			if st.Name == "node:node0" {
				return st.State == OK
			}
		}
		return false
	})
}
