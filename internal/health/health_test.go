package health

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"couchgo/internal/dcp"
	"couchgo/internal/events"
	"couchgo/internal/feed"
	"couchgo/internal/metrics"
)

// settableCheck is a CheckFunc whose raw result the test controls.
type settableCheck struct {
	mu     sync.Mutex
	state  State
	detail string
}

func (s *settableCheck) set(st State, d string) {
	s.mu.Lock()
	s.state, s.detail = st, d
	s.mu.Unlock()
}

func (s *settableCheck) fn() (State, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state, s.detail
}

func healthEvents(j *events.Journal, since uint64) []events.Event {
	return j.Events(events.Filter{Type: events.Health, SinceSeq: since})
}

func TestHysteresisDebouncesTransitions(t *testing.T) {
	j := events.NewJournal(64)
	w := New(Options{Interval: time.Hour, RaiseAfter: 2, ClearAfter: 3, Journal: j})
	chk := &settableCheck{}
	w.Register("test", chk.fn)

	var fired []CheckStatus
	var firedMu sync.Mutex
	w.OnTransition(func(st CheckStatus) {
		firedMu.Lock()
		fired = append(fired, st)
		firedMu.Unlock()
	})

	// One bad tick is not a transition.
	chk.set(Warn, "blip")
	w.Tick()
	if got := w.State(); got != OK {
		t.Fatalf("state after 1 bad tick = %s, want ok", got)
	}
	// A flap back to ok abandons the pending raise.
	chk.set(OK, "fine")
	w.Tick()
	chk.set(Warn, "blip")
	w.Tick()
	if got := w.State(); got != OK {
		t.Fatalf("state after flap = %s, want ok", got)
	}
	// Two consecutive warn ticks raise.
	w.Tick()
	if got := w.State(); got != Warn {
		t.Fatalf("state after sustained warn = %s, want warn", got)
	}
	// Recovery needs ClearAfter=3 consecutive ok ticks.
	chk.set(OK, "recovered")
	w.Tick()
	w.Tick()
	if got := w.State(); got != Warn {
		t.Fatalf("state cleared too early: %s", got)
	}
	w.Tick()
	if got := w.State(); got != OK {
		t.Fatalf("state after sustained ok = %s, want ok", got)
	}

	firedMu.Lock()
	defer firedMu.Unlock()
	if len(fired) != 2 || fired[0].State != Warn || fired[1].State != OK {
		t.Fatalf("transitions = %+v, want [warn ok]", fired)
	}
	evs := healthEvents(j, 0)
	if len(evs) != 2 {
		t.Fatalf("journal has %d health events, want 2: %+v", len(evs), evs)
	}
	if evs[0].Severity != events.SevWarn || evs[1].Severity != events.SevInfo {
		t.Fatalf("event severities = %s, %s", evs[0].Severity, evs[1].Severity)
	}
	if evs[0].Fields["check"] != "test" {
		t.Fatalf("event fields = %+v", evs[0].Fields)
	}
}

func TestWatchdogStartStop(t *testing.T) {
	j := events.NewJournal(64)
	w := New(Options{Interval: time.Millisecond, RaiseAfter: 1, ClearAfter: 1, Journal: j})
	chk := &settableCheck{}
	chk.set(Critical, "down")
	w.Register("svc", chk.fn)
	w.Start()
	deadline := time.Now().Add(5 * time.Second)
	for w.State() != Critical {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never evaluated")
		}
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	snap := w.Snapshot()
	if len(snap) != 1 || snap[0].Name != "svc" || snap[0].State != Critical {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Stop is idempotent and Start works again.
	w.Stop()
	w.Start()
	w.Stop()
}

// nullSource is an empty SnapshotSource for standalone producers.
type nullSource struct{}

func (nullSource) Snapshot(uint64) ([]dcp.Mutation, uint64, error) { return nil, 0, nil }

// gatedConsumer blocks every Apply until the gate opens.
type gatedConsumer struct{ gate chan struct{} }

func (g *gatedConsumer) Apply(int, dcp.Mutation) { <-g.gate }

// TestFeedStallHysteresis drives the acceptance scenario: an injected
// feed stall takes the feed:stalls check ok→warn→critical, clearing
// the stall takes it back to ok, and hysteresis yields exactly those
// three transitions — no flapping.
func TestFeedStallHysteresis(t *testing.T) {
	j := events.NewJournal(64)

	// Fake clock so stall age is deterministic.
	var clockMu sync.Mutex
	now := time.Unix(1000, 0)
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}
	cfg := ClusterCheckConfig{
		FeedStallCritAfter: 5 * time.Second,
		Now: func() time.Time {
			clockMu.Lock()
			defer clockMu.Unlock()
			return now
		},
	}
	cfg.defaults()

	w := New(Options{Interval: time.Hour, RaiseAfter: 2, ClearAfter: 2, Journal: j})
	w.Register("feed:stalls", feedStallCheck(cfg))

	// Inject a real stall: 1-slot buffer, consumer blocked on a gate.
	src := dcp.NewProducer(0, nullSource{})
	defer src.Close()
	cons := &gatedConsumer{gate: make(chan struct{})}
	f := feed.New("health-stall-test", cons, feed.Config{Service: "health-test", Buffer: 1})
	defer f.Close()
	if err := f.Attach(0, src); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		src.Publish(dcp.Mutation{Key: fmt.Sprintf("k%d", i), Seqno: uint64(i)})
	}
	stalled := metrics.Default.Gauge("couchgo_feed_stalled", "service", "health-test")
	waitFor(t, "stall gauge raised", func() bool { return stalled.Value() > 0 })

	// Two ticks with an ongoing young stall: ok -> warn.
	w.Tick()
	w.Tick()
	if got := w.State(); got != Warn {
		t.Fatalf("state after sustained stall = %s, want warn", got)
	}
	// Age the stall past the critical threshold: warn -> critical.
	advance(6 * time.Second)
	w.Tick()
	w.Tick()
	if got := w.State(); got != Critical {
		t.Fatalf("state after aged stall = %s, want critical", got)
	}
	// Clear the stall; after ClearAfter ticks the check recovers.
	close(cons.gate)
	waitFor(t, "stall gauge cleared", func() bool { return stalled.Value() == 0 })
	w.Tick()
	w.Tick()
	if got := w.State(); got != OK {
		t.Fatalf("state after cleared stall = %s, want ok", got)
	}

	// The journal shows exactly warn -> critical -> ok: hysteresis
	// produced one transition per phase, no flapping.
	evs := healthEvents(j, 0)
	if len(evs) != 3 {
		t.Fatalf("journal has %d health events, want 3: %+v", len(evs), evs)
	}
	want := []events.Severity{events.SevWarn, events.SevCritical, events.SevInfo}
	for i, e := range evs {
		if e.Severity != want[i] {
			t.Fatalf("event %d severity = %s, want %s", i, e.Severity, want[i])
		}
		if e.Fields["check"] != "feed:stalls" {
			t.Fatalf("event %d fields = %+v", i, e.Fields)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNodeIDFromCheck(t *testing.T) {
	if got := NodeIDFromCheck("node:node3"); got != "node3" {
		t.Fatalf("NodeIDFromCheck = %q", got)
	}
	if got := NodeIDFromCheck("feed:stalls"); got != "" {
		t.Fatalf("NodeIDFromCheck(feed:stalls) = %q", got)
	}
}
