package transport

import (
	"context"
	"testing"
	"time"

	"couchgo/internal/memcproto"
	"couchgo/internal/metrics"
	"couchgo/internal/trace"
)

// TestWireTracePropagation drives one sampled write through the wire
// client and asserts the server adopted the caller's trace: the
// request's trace context produces a foreign portion under the same
// trace ID whose server:set span is remote-parented to the client's
// root span.
func TestWireTracePropagation(t *testing.T) {
	_, _, cl := newServedCluster(t, 0)
	trace.Default.SetRate(1)
	t.Cleanup(func() {
		trace.Default.SetRate(0)
		trace.Default.Clear()
	})

	ctx, root := trace.Default.Start(context.Background(), "client:op")
	if root == nil {
		t.Fatal("rate 1 did not sample")
	}
	id := root.Trace().ID
	_, rootWire, ok := trace.FromContext(ctx).WireContext()
	if !ok {
		t.Fatal("no wire context on sampled span")
	}
	if _, err := cl.Set(ctx, "traced", []byte(`{}`), 0); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if _, err := cl.Get(ctx, "traced"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	root.End()

	// Same process plays client and server, so the tracer holds two
	// portions of the trace: the local root and the foreign portion
	// the server session adopted off the wire.
	portions := trace.Default.Portions(id)
	if len(portions) != 2 {
		t.Fatalf("portions: %d, want 2 (local + adopted)", len(portions))
	}
	var foreign, local *trace.Export
	for _, p := range portions {
		ex := p.Export("srv")
		if ex.Foreign {
			foreign = &ex
		} else {
			local = &ex
		}
	}
	if foreign == nil || local == nil {
		t.Fatalf("want one local and one adopted portion (foreign=%v local=%v)", foreign != nil, local != nil)
	}
	names := map[string]bool{}
	for _, sp := range foreign.Spans {
		names[sp.Name] = true
	}
	if !names["server:set"] || !names["server:get"] {
		t.Fatalf("adopted spans: %v, want server:set and server:get", names)
	}
	// Adopted spans remote-parent to a span the client actually sent
	// (the innermost client span at the wire seam — the root itself,
	// or a kv child under it); server-local children (cache:*) carry
	// local parents instead.
	clientSpans := map[uint32]bool{rootWire: true}
	for _, sp := range local.Spans {
		clientSpans[sp.ID] = true
	}
	remotes := 0
	for _, sp := range foreign.Spans {
		if sp.RemoteParent != nil {
			remotes++
			if !clientSpans[*sp.RemoteParent] {
				t.Fatalf("span %s remote-parented to %d, not a client span", sp.Name, *sp.RemoteParent)
			}
		} else if sp.Parent == nil {
			t.Fatalf("span %s has neither local nor remote parent", sp.Name)
		}
	}
	if remotes == 0 {
		t.Fatal("no adopted span carries a remote parent")
	}

	// And the two portions stitch into one tree rooted at the client.
	tree := trace.Stitch([]trace.Export{portions[0].Export("cli"), portions[1].Export("srv")})
	if tree == nil || tree.Name != "client:op" {
		t.Fatalf("stitched root: %+v", tree)
	}
	if len(tree.Children) == 0 {
		t.Fatal("server spans did not graft under the client root")
	}

	// Server-side op latency carries the result label.
	if n := opHistogram("set", "ok").Snapshot().Count; n == 0 {
		t.Fatal(`no samples under couchgo_transport_op_seconds{opcode="set",result="ok"}`)
	}
}

// TestUnsampledRequestAddsNothing: without a sampled span in ctx the
// request frame carries no trace context and datatype stays zero —
// wire-identical to an old client.
func TestUnsampledRequestAddsNothing(t *testing.T) {
	extras := []byte{1, 2, 3}
	out, datatype := injectTraceCtx(extras, context.Background())
	if datatype != 0 || len(out) != len(extras) {
		t.Fatalf("unsampled ctx mutated the frame: datatype=%d extras=%d", datatype, len(out))
	}
}

// TestFederateOpcode: OpFederate dispatches to the ServerConfig's
// Observe callback; without one it is NOT_SUPPORTED, never a hang or
// a KV dispatch.
func TestFederateOpcode(t *testing.T) {
	_, srv, _ := newServedCluster(t, 0) // Observe nil
	pool := NewPool()
	t.Cleanup(pool.Close)
	conn, err := pool.Get(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	resp, err := conn.Roundtrip(ctx, &memcproto.Frame{
		Magic:  memcproto.MagicReq,
		Opcode: memcproto.OpFederate,
		Key:    []byte("metrics"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != memcproto.StatusNotSupported {
		t.Fatalf("OpFederate without provider: %s, want NOT_SUPPORTED", resp.Status)
	}
}

// TestNMVBCounterPerOpcode: the per-opcode NMVB series must track the
// originating op alongside the unlabeled total.
func TestNMVBCounterPerOpcode(t *testing.T) {
	before := metrics.Default.Counter("couchgo_notmyvbucket_total", "opcode", "get").Value()
	nmvbCounter("get").Inc()
	after := metrics.Default.Counter("couchgo_notmyvbucket_total", "opcode", "get").Value()
	if after != before+1 {
		t.Fatalf("labeled NMVB counter: %d -> %d", before, after)
	}
}
