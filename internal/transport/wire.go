package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"couchgo/internal/cache"
	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/memcproto"
	"couchgo/internal/trace"
	"couchgo/internal/vbucket"
)

// statusTable maps canonical storage errors to wire statuses and back.
// The client reconstructs the same sentinel error the loopback conn
// would have returned, so callers' errors.Is checks behave identically
// on both transports.
var statusTable = []struct {
	status memcproto.Status
	err    error
}{
	{memcproto.StatusKeyNotFound, cache.ErrKeyNotFound},
	{memcproto.StatusKeyExists, cache.ErrKeyExists},
	{memcproto.StatusCASMismatch, cache.ErrCASMismatch},
	{memcproto.StatusLocked, cache.ErrLocked},
	{memcproto.StatusNotMyVBucket, vbucket.ErrNotMyVBucket},
	{memcproto.StatusNoSuchBucket, core.ErrNoSuchBucket},
	{memcproto.StatusDurabilityTimeout, vbucket.ErrTimeout},
	{memcproto.StatusSubdocPath, cache.ErrPathNotFound},
}

// statusOf picks the wire status for a server-side error.
func statusOf(err error) memcproto.Status {
	for _, e := range statusTable {
		if errors.Is(err, e.err) {
			return e.status
		}
	}
	switch {
	case errors.Is(err, cache.ErrNotLocked), errors.Is(err, cache.ErrNotJSON),
		errors.Is(err, memcproto.ErrBadExtras), errors.Is(err, memcproto.ErrBadLengths):
		return memcproto.StatusBadRequest
	case errors.Is(err, core.ErrNodeDown):
		return memcproto.StatusTmpFail
	}
	return memcproto.StatusInternal
}

// errOf reconstructs the client-side error for a non-OK status. The
// server's message rides the value; sentinel statuses wrap the
// canonical error so errors.Is works across the wire.
func errOf(status memcproto.Status, msg []byte) error {
	for _, e := range statusTable {
		if status == e.status {
			if len(msg) > 0 {
				return fmt.Errorf("%s: %w", msg, e.err)
			}
			return e.err
		}
	}
	if status == memcproto.StatusTmpFail {
		return fmt.Errorf("%s: %w", msg, core.ErrNodeDown)
	}
	return fmt.Errorf("transport: %s: %s", status, msg)
}

// itemMetaOf projects a cache.Item's metadata for response extras.
func itemMetaOf(it cache.Item) memcproto.ItemMeta {
	return memcproto.ItemMeta{
		Seqno:    it.Seqno,
		RevSeqno: it.RevSeqno,
		Flags:    it.Flags,
		Expiry:   it.Expiry,
		Deleted:  it.Deleted,
		Resident: it.Resident,
	}
}

// itemFromFrame rebuilds the cache.Item a loopback call would have
// returned, from a response frame's extras (epoch ‖ item meta), CAS
// header, and value.
func itemFromFrame(key string, f *memcproto.Frame) (cache.Item, error) {
	if len(f.Extras) < memcproto.EpochLen {
		return cache.Item{}, memcproto.ErrBadExtras
	}
	meta, err := memcproto.DecodeItemMeta(f.Extras[memcproto.EpochLen:])
	if err != nil {
		return cache.Item{}, err
	}
	it := cache.Item{
		Key:      key,
		CAS:      f.CAS,
		Seqno:    meta.Seqno,
		RevSeqno: meta.RevSeqno,
		Flags:    meta.Flags,
		Expiry:   meta.Expiry,
		Deleted:  meta.Deleted,
		Resident: meta.Resident,
	}
	if len(f.Value) > 0 {
		// Alias, don't copy: a response frame read off the wire owns a
		// dedicated body buffer (memcproto.Read allocates one per frame)
		// and is demuxed to exactly one waiter, so the item can take the
		// value without a per-Get allocation and memcpy.
		it.Value = f.Value
	}
	return it, nil
}

// injectTraceCtx appends the caller's trace context (trace ID +
// parent span wire ID + sampled flag) to request extras when ctx
// carries a sampled span, returning the extras and the datatype flag
// announcing the field. Requests outside a sampled trace add nothing
// and keep datatype 0, so the disabled path is wire-identical to
// older peers.
func injectTraceCtx(extras []byte, ctx context.Context) ([]byte, byte) {
	traceID, spanID, ok := trace.FromContext(ctx).WireContext()
	if !ok {
		return extras, 0
	}
	tc := memcproto.TraceContext{TraceID: traceID, SpanID: spanID, Sampled: true}
	return memcproto.AppendTraceContext(extras, tc), memcproto.DatatypeTraceCtx
}

// decodeMap parses a fat not-my-vbucket value (or cluster-map
// response) into a map.
func decodeMap(value []byte) (*cmap.Map, error) {
	var m cmap.Map
	if err := json.Unmarshal(value, &m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
