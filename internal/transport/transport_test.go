package transport

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"couchgo/internal/cache"
	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/vbucket"
)

// newServedCluster starts an in-process cluster behind a TCP server,
// returning the server and a smart client routed entirely over the
// wire.
func newServedCluster(t *testing.T, nReplicas int) (*core.Cluster, *Server, *core.Client) {
	t.Helper()
	c, err := core.NewCluster(core.Config{Dir: t.TempDir(), NumVBuckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	nodes := 1 + nReplicas
	for i := 0; i < nodes; i++ {
		if _, err := c.AddNode(cmap.NodeID(fmt.Sprintf("node%d", i)), cmap.AllServices); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateBucket("default", core.BucketOptions{NumReplicas: nReplicas}); err != nil {
		t.Fatal(err)
	}
	// One server per node would need one port per node; for the wire
	// round-trip test a single node's server suffices, so use a
	// single-node cluster when nReplicas == 0.
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Cluster: c,
		Node:    "node0",
		Bucket:  "default",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	pool := NewPool()
	t.Cleanup(pool.Close)
	router := NewRouter("default", []string{srv.Addr()}, pool)
	// Route every node of the in-process map to the one server; it
	// dispatches to node0, so only node0's vBuckets answer OK — the
	// single-node case routes everything there.
	return c, srv, core.NewClient(&rewriteRouter{inner: router, addr: srv.Addr()}, "default")
}

// rewriteRouter maps every node ID to one server address (the wire
// test serves a whole single-node cluster from one listener).
type rewriteRouter struct {
	inner *NetRouter
	addr  string
}

func (r *rewriteRouter) BucketMap() (*cmap.Map, error) { return r.inner.BucketMap() }
func (r *rewriteRouter) Conn(node cmap.NodeID) (core.NodeConn, error) {
	return r.inner.Conn(cmap.NodeID(r.addr))
}

func TestWireKVRoundTrip(t *testing.T) {
	_, _, cl := newServedCluster(t, 0)
	ctx := context.Background()

	it, err := cl.Set(ctx, "greeting", []byte(`{"msg":"hello"}`), 0)
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	if it.CAS == 0 {
		t.Fatal("Set returned zero CAS")
	}

	got, err := cl.Get(ctx, "greeting")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got.Value) != `{"msg":"hello"}` {
		t.Fatalf("Get value = %q", got.Value)
	}
	if got.CAS != it.CAS {
		t.Fatalf("Get CAS %d != Set CAS %d", got.CAS, it.CAS)
	}

	if _, err := cl.Get(ctx, "absent"); !errors.Is(err, cache.ErrKeyNotFound) {
		t.Fatalf("Get absent = %v, want ErrKeyNotFound", err)
	}

	// CAS conflict surfaces as the canonical sentinel across the wire.
	if _, err := cl.Replace(ctx, "greeting", []byte(`{}`), it.CAS+99); !errors.Is(err, cache.ErrCASMismatch) {
		t.Fatalf("Replace bad CAS = %v, want ErrCASMismatch", err)
	}

	// Add on an existing key.
	if _, err := cl.Add(ctx, "greeting", []byte(`{}`)); !errors.Is(err, cache.ErrKeyExists) {
		t.Fatalf("Add existing = %v, want ErrKeyExists", err)
	}

	// Subdoc ops.
	if _, err := cl.SubdocSet(ctx, "greeting", "count", 3, 0); err != nil {
		t.Fatalf("SubdocSet: %v", err)
	}
	v, err := cl.SubdocGet(ctx, "greeting", "count")
	if err != nil {
		t.Fatalf("SubdocGet: %v", err)
	}
	if f, ok := v.(float64); !ok || f != 3 {
		t.Fatalf("SubdocGet = %v (%T), want 3", v, v)
	}
	n, err := cl.SubdocCounter(ctx, "greeting", "count", 4, 0)
	if err != nil {
		t.Fatalf("SubdocCounter: %v", err)
	}
	if n != 7 {
		t.Fatalf("SubdocCounter = %v, want 7", n)
	}

	// Locking.
	locked, err := cl.GetAndLock(ctx, "greeting", 30)
	if err != nil {
		t.Fatalf("GetAndLock: %v", err)
	}
	if _, err := cl.Set(ctx, "greeting", []byte(`{}`), 0); !errors.Is(err, cache.ErrLocked) {
		t.Fatalf("Set on locked = %v, want ErrLocked", err)
	}
	if err := cl.Unlock(ctx, "greeting", locked.CAS); err != nil {
		t.Fatalf("Unlock: %v", err)
	}

	// Delete round-trips and the tombstone is visible to GetMeta.
	if err := cl.Delete(ctx, "greeting", 0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := cl.Get(ctx, "greeting"); !errors.Is(err, cache.ErrKeyNotFound) {
		t.Fatalf("Get deleted = %v, want ErrKeyNotFound", err)
	}
}

func TestWireDurability(t *testing.T) {
	// Single node, ReplicateTo=1 can never be satisfied: the server
	// must hold the response until the durability timeout and ship the
	// canonical error back.
	_, _, cl := newServedCluster(t, 0)
	ctx := context.Background()
	_, err := cl.SetWithOptions(ctx, "k", []byte(`{}`), 0, 0, 0, core.DurabilityOptions{
		ReplicateTo: 1,
		Timeout:     150 * time.Millisecond,
	})
	if !errors.Is(err, vbucket.ErrTimeout) {
		t.Fatalf("durable Set on 1-node = %v, want vbucket.ErrTimeout", err)
	}

	// PersistTo succeeds once the flusher catches up.
	if _, err := cl.SetWithOptions(ctx, "k2", []byte(`{}`), 0, 0, 0, core.DurabilityOptions{
		PersistTo: true,
		Timeout:   5 * time.Second,
	}); err != nil {
		t.Fatalf("persist Set: %v", err)
	}
}

func TestWireNotMyVBucketRefresh(t *testing.T) {
	// Two servers front a two-node in-process cluster. A client whose
	// map routes everything to server 0 must be corrected by the fat
	// not-my-vbucket response (which ships the real map) and land every
	// op without ever asking for the map out of band.
	c, err := core.NewCluster(core.Config{Dir: t.TempDir(), NumVBuckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 2; i++ {
		if _, err := c.AddNode(cmap.NodeID(fmt.Sprintf("node%d", i)), cmap.AllServices); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateBucket("default", core.BucketOptions{NumReplicas: 0}); err != nil {
		t.Fatal(err)
	}

	// Each server advertises a map whose node IDs are the *addresses*,
	// exactly as the multi-process layer does.
	addrs := map[cmap.NodeID]cmap.NodeID{}
	translated := func() *cmap.Map {
		m, err := c.BucketMap("default")
		if err != nil {
			return nil
		}
		tm := m.Clone()
		for i, n := range tm.Nodes {
			if a, ok := addrs[n]; ok {
				tm.Nodes[i] = a
			}
		}
		return tm
	}
	var servers []*Server
	for i := 0; i < 2; i++ {
		node := cmap.NodeID(fmt.Sprintf("node%d", i))
		srv, err := Listen("127.0.0.1:0", ServerConfig{
			Cluster: c, Node: node, Bucket: "default", Map: translated,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		addrs[node] = cmap.NodeID(srv.Addr())
		servers = append(servers, srv)
	}

	pool := NewPool()
	t.Cleanup(pool.Close)
	router := NewRouter("default", []string{servers[0].Addr()}, pool)
	cl := core.NewClient(router, "default")

	// Poison the router: an older map routing every vBucket to server
	// 0 only.
	bad := translated()
	bad.Rev--
	for vb := range bad.Chains {
		bad.Chains[vb] = []int{0}
	}
	router.installMap(bad)

	before := mNotMyVB.Value()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("route-%d", i)
		if _, err := cl.Set(ctx, key, []byte(`{}`), 0); err != nil {
			t.Fatalf("Set %s with stale map: %v", key, err)
		}
		if _, err := cl.Get(ctx, key); err != nil {
			t.Fatalf("Get %s: %v", key, err)
		}
	}
	if mNotMyVB.Value() == before {
		t.Fatal("expected at least one not-my-vbucket bounce with a poisoned map")
	}
	// The router must have adopted the server's (newer) map.
	m, err := router.BucketMap()
	if err != nil {
		t.Fatal(err)
	}
	if m.Rev <= bad.Rev {
		t.Fatalf("router map rev %d not refreshed past poisoned rev %d", m.Rev, bad.Rev)
	}
}

func TestProcessClusterFormationAndFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process-shaped cluster test is slow")
	}
	// Three ClusterNodes in one process, each with its own single-node
	// core cluster — the same wiring cbserver -kv-addr/-join uses.
	const numVB = 8
	mk := func(name string) (*core.Cluster, cmap.NodeID) {
		c, err := core.NewCluster(core.Config{Dir: t.TempDir(), NumVBuckets: numVB})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		id := cmap.NodeID(name)
		if _, err := c.AddNode(id, cmap.AllServices); err != nil {
			t.Fatal(err)
		}
		if err := c.CreateBucket("default", core.BucketOptions{NumReplicas: 1}); err != nil {
			t.Fatal(err)
		}
		return c, id
	}

	c0, id0 := mk("local0")
	seed, err := StartNode(NodeOptions{
		Cluster: c0, LocalNode: id0, Bucket: "default",
		KVAddr: "127.0.0.1:0", ClusterSize: 3,
		HeartbeatInterval: 50 * time.Millisecond,
		FailoverAfter:     250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()

	var peers []*ClusterNode
	for i := 1; i < 3; i++ {
		c, id := mk(fmt.Sprintf("local%d", i))
		n, err := StartNode(NodeOptions{
			Cluster: c, LocalNode: id, Bucket: "default",
			KVAddr: "127.0.0.1:0", Join: seed.KVAddr(),
			HeartbeatInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, n)
	}
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()

	// Wait for formation: every node reports the same minted map.
	waitFor(t, 10*time.Second, func() bool {
		m := seed.member.CurrentMap()
		if m == nil || len(m.Nodes) != 3 {
			return false
		}
		for _, p := range peers {
			pm := p.member.CurrentMap()
			if pm == nil || pm.Rev != m.Rev {
				return false
			}
		}
		return true
	})

	// Write through the seed's hybrid router with ReplicateTo=1 —
	// every write is acked only after a peer's replica applied it over
	// a socket.
	cl := core.NewClient(seed.Router(), "default")
	ctx := context.Background()
	const writes = 40
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if _, err := cl.SetWithOptions(ctx, key, []byte(fmt.Sprintf(`{"i":%d}`, i)), 0, 0, 0, core.DurabilityOptions{
			ReplicateTo: 1, Timeout: 10 * time.Second,
		}); err != nil {
			t.Fatalf("durable Set %s: %v", key, err)
		}
	}

	// Kill one peer abruptly (close its listener and cluster node —
	// the in-process stand-in for kill -9).
	victim := peers[0]
	victimAddr := victim.KVAddr()
	victim.Close()

	// Auto-failover: the coordinator must mint a new map in which the
	// victim holds no vBucket. (FailoverNode keeps the dead node in the
	// Nodes list and scrubs it from the chains, like a real failover —
	// the node is out of service, not forgotten.)
	preRev := seed.member.CurrentMap().Rev
	waitFor(t, 15*time.Second, func() bool {
		m := seed.member.CurrentMap()
		if m == nil || m.Rev <= preRev {
			return false
		}
		for vb := 0; vb < m.NumVBuckets; vb++ {
			if string(m.Active(vb)) == victimAddr {
				return false
			}
			for _, r := range m.Replicas(vb) {
				if string(r) == victimAddr {
					return false
				}
			}
		}
		return true
	})

	// No acked write lost: every durable write must still be readable.
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("doc-%d", i)
		var got cache.Item
		var err error
		deadline := time.Now().Add(10 * time.Second)
		for {
			got, err = cl.Get(ctx, key)
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("Get %s after failover: %v", key, err)
		}
		if len(got.Value) == 0 {
			t.Fatalf("Get %s after failover: empty value", key)
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("condition not met in time")
		}
		time.Sleep(25 * time.Millisecond)
	}
}
