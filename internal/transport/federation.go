package transport

import (
	"context"
	"sort"

	"couchgo/internal/memcproto"
)

// Federation is a ClusterNode's view of its peers for observability
// fan-out: the REST layer asks it who the members are and fetches a
// named domain ("metrics", "health", "events", "trace", ...) from any
// of them over the KV wire. Fetches reuse the node's pooled
// multiplexed connections, so a metrics poll never pays a dial after
// the first request to a peer.
type Federation struct {
	self   string
	pool   *Pool
	member *Member
}

// Federation returns the node's observability fan-out handle.
func (n *ClusterNode) Federation() *Federation {
	return &Federation{self: n.self, pool: n.pool, member: n.member}
}

// Self is this node's process-level identity (its advertised KV
// address), the label its own series carry in federated views.
func (f *Federation) Self() string { return f.self }

// Nodes lists the cluster's member addresses (self included), sorted
// for stable output. Before the coordinator has minted a map the node
// only knows itself.
func (f *Federation) Nodes() []string {
	m := f.member.CurrentMap()
	if m == nil || len(m.Nodes) == 0 {
		return []string{f.self}
	}
	nodes := make([]string, 0, len(m.Nodes))
	seen := false
	for _, id := range m.Nodes {
		if string(id) == f.self {
			seen = true
		}
		nodes = append(nodes, string(id))
	}
	if !seen {
		nodes = append(nodes, f.self)
	}
	sort.Strings(nodes)
	return nodes
}

// Fetch retrieves one observability domain from a peer as a single
// OpFederate request/response exchange. The domain rides the key, the
// request payload (may be nil) rides the value, and the peer's JSON
// reply comes back verbatim.
func (f *Federation) Fetch(ctx context.Context, node, domain string, payload []byte) ([]byte, error) {
	conn, err := f.pool.Get(node)
	if err != nil {
		return nil, err
	}
	resp, err := conn.Roundtrip(ctx, &memcproto.Frame{
		Magic:  memcproto.MagicReq,
		Opcode: memcproto.OpFederate,
		Key:    []byte(domain),
		Value:  payload,
	})
	if err != nil {
		return nil, err
	}
	if resp.Status != memcproto.StatusOK {
		return nil, errOf(resp.Status, resp.Value)
	}
	return resp.Value, nil
}
