// Package transport moves the cluster's node-to-node and
// client-to-node seams onto real sockets. It speaks the binary KV
// wire protocol of internal/memcproto over TCP: a per-node client
// pool (Pool/Conn) multiplexes request/response frames by opaque, the
// Server decodes frames and dispatches them through the same
// core.NodeConn surface the in-process loopback uses, and a
// NetRouter implements core.Router so the smart client routes over
// the wire without knowing it. DCP streams get a dedicated
// connection each: the producer side pushes mutation frames, the
// consumer side acks seqnos, and resume is the same (UUID, seqno)
// handshake as in-process — just across a socket.
//
// The Coordinator/Member pair in cluster.go turns N independent
// cbserver processes into one cluster: members join the seed, the
// coordinator mints a balanced process-level map once the expected
// cluster size is reached, and every member reconciles its local
// node against each pushed map, wiring socket-backed replica streams
// between processes.
package transport

import (
	"net"
	"sync/atomic"
	"time"

	"couchgo/internal/memcproto"
	"couchgo/internal/metrics"
)

// Transport metric families. Conns counts live sockets on each side;
// bytes are raw framed traffic split by direction; notmyvbucket
// counts stale-map bounces (the router's refresh trigger); the
// per-opcode histogram is server-side handling latency including any
// durability wait.
var (
	mConns      = metrics.Default.Gauge("couchgo_transport_conns", "side", "server")
	mConnsCli   = metrics.Default.Gauge("couchgo_transport_conns", "side", "client")
	mBytesIn    = metrics.Default.Counter("couchgo_transport_bytes_total", "dir", "in")
	mBytesOut   = metrics.Default.Counter("couchgo_transport_bytes_total", "dir", "out")
	mNotMyVB    = metrics.Default.Counter("couchgo_notmyvbucket_total")
	mDialErrors = metrics.Default.Counter("couchgo_transport_dial_errors_total")
)

// opHistogram is server-side handling latency per opcode, labeled by
// result so fast NOT_MY_VBUCKET bounces don't flatter the op's
// quantiles: an NMVB retry counts (and is visible) against the
// originating op's series instead of hiding inside "ok".
func opHistogram(opcode, result string) *metrics.Histogram {
	return metrics.Default.Histogram("couchgo_transport_op_seconds", "opcode", opcode, "result", result)
}

// opHistOK caches the result="ok" histogram per opcode byte: the
// registry lookup (label-string build + locked map access) is too
// expensive to repeat on every request, and "ok" is the overwhelmingly
// common outcome. Error results stay on the slow lookup path, where
// Opcode.String() is also deferred to.
var opHistOK [256]atomic.Pointer[metrics.Histogram]

func opObserve(op memcproto.Opcode, result string, t0 time.Time) {
	if result == "ok" {
		h := opHistOK[byte(op)].Load()
		if h == nil {
			h = opHistogram(op.String(), "ok")
			opHistOK[byte(op)].Store(h)
		}
		h.ObserveSince(t0)
		return
	}
	opHistogram(op.String(), result).ObserveSince(t0)
}

// nmvbCounter attributes a client-observed NMVB bounce to the op that
// triggered it.
func nmvbCounter(opcode string) *metrics.Counter {
	return metrics.Default.Counter("couchgo_notmyvbucket_total", "opcode", opcode)
}

// countingConn wraps a net.Conn so every byte in or out lands in the
// transport byte counters — both sides wrap their sockets with it.
type countingConn struct {
	net.Conn
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		mBytesIn.Add(uint64(n))
	}
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		mBytesOut.Add(uint64(n))
	}
	return n, err
}

// StatsSnapshot is the transport block surfaced in /stats/detail.
type StatsSnapshot struct {
	ServerConns    int64  `json:"server_conns"`
	ClientConns    int64  `json:"client_conns"`
	BytesIn        uint64 `json:"bytes_in"`
	BytesOut       uint64 `json:"bytes_out"`
	NotMyVBucket   uint64 `json:"not_my_vbucket"`
	DialErrors     uint64 `json:"dial_errors"`
	StreamsServing int64  `json:"dcp_streams_serving"`
}

// streamsServing counts DCP streams currently being pumped by servers
// in this process.
var streamsServing atomic.Int64

// Stats returns the current transport counters.
func Stats() StatsSnapshot {
	return StatsSnapshot{
		ServerConns:    mConns.Value(),
		ClientConns:    mConnsCli.Value(),
		BytesIn:        mBytesIn.Value(),
		BytesOut:       mBytesOut.Value(),
		NotMyVBucket:   mNotMyVB.Value(),
		DialErrors:     mDialErrors.Value(),
		StreamsServing: streamsServing.Load(),
	}
}
