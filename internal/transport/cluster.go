package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/dcp"
	"couchgo/internal/events"
	"couchgo/internal/health"
	"couchgo/internal/memcproto"
	"couchgo/internal/vbucket"
)

// This file turns N independent cbserver processes into one cluster.
// Each process runs a local single-node core.Cluster plus a Server; a
// Member reconciles the local node against every coordinator-pushed
// process-level map (node IDs are KV addresses), and the seed process
// additionally runs the coordinator: it admits joins, mints one
// balanced map when the expected cluster size is reached, heartbeats
// the members through its health watchdog, and fails over a member
// held critical — re-minting and re-broadcasting the map so every
// process (and every smart client, via the epoch in response headers)
// converges on the new topology. Deliberate limitation, documented in
// DESIGN.md §9: membership is fixed at formation (no incremental
// rebalance of a live process cluster) and the coordinator itself is
// not failover-able.

// NodeOptions wire one cbserver process into a networked cluster.
type NodeOptions struct {
	// Cluster is the process-local single-node cluster with Bucket
	// already created.
	Cluster *core.Cluster
	// LocalNode is the local node's ID inside Cluster (distinct from
	// its process-level identity, which is its advertised KV address).
	LocalNode cmap.NodeID
	Bucket    string
	// KVAddr is the wire-protocol listen address (port 0 for
	// ephemeral).
	KVAddr string
	// Advertise overrides the address peers dial (defaults to the
	// bound address, with unspecified hosts rewritten to 127.0.0.1).
	Advertise string
	// Join is the seed's KV address; empty makes this process the
	// coordinator seed.
	Join string
	// ClusterSize is the member count (including the seed) the
	// coordinator waits for before minting the map. Coordinator only.
	ClusterSize int
	// HeartbeatInterval paces member heartbeats and the coordinator's
	// health ticks (default 500ms).
	HeartbeatInterval time.Duration
	// FailoverAfter is heartbeat silence before a member's health
	// check turns critical (default 5 intervals).
	FailoverAfter time.Duration
	// Observe serves cluster-observability fetches (metrics, health,
	// events, traces) arriving over the wire as OpFederate requests
	// from peer nodes. Nil disables federation on this node.
	Observe func(domain string, payload []byte) ([]byte, error)
}

// ClusterNode is one process's networked-cluster runtime.
type ClusterNode struct {
	srv    *Server
	member *Member
	coord  *coordinator
	router *NetRouter
	pool   *Pool
	self   string
	closed chan struct{}
}

// StartNode binds the KV listener, wires the member (and, for the
// seed, the coordinator), and starts serving.
func StartNode(opts NodeOptions) (*ClusterNode, error) {
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 500 * time.Millisecond
	}
	if opts.FailoverAfter <= 0 {
		opts.FailoverAfter = 5 * opts.HeartbeatInterval
	}
	lc, err := opts.Cluster.LoopbackConn(opts.LocalNode, opts.Bucket)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", opts.KVAddr)
	if err != nil {
		return nil, err
	}
	self := opts.Advertise
	if self == "" {
		self = advertiseAddr(ln.Addr())
	}

	pool := NewPool()
	seeds := []string{self}
	if opts.Join != "" {
		seeds = []string{opts.Join, self}
	}
	router := NewRouter(opts.Bucket, seeds, pool)
	router.SetLocal(cmap.NodeID(self), lc)

	member := &Member{
		cluster:   opts.Cluster,
		localNode: opts.LocalNode,
		bucket:    opts.Bucket,
		self:      self,
		pool:      pool,
		router:    router,
		links:     map[int]*replLink{},
		closed:    make(chan struct{}),
	}

	n := &ClusterNode{member: member, router: router, pool: pool, self: self, closed: member.closed}
	cfg := ServerConfig{
		Cluster:  opts.Cluster,
		Node:     opts.LocalNode,
		Bucket:   opts.Bucket,
		Map:      member.CurrentMap,
		OnSetMap: member.ApplyMap,
		Stats: func() map[string]any {
			return map[string]any{"node": self, "map_rev": member.rev()}
		},
		Observe: opts.Observe,
	}

	if opts.Join == "" {
		size := opts.ClusterSize
		if size <= 0 {
			size = 1
		}
		n.coord = newCoordinator(opts.Cluster, opts.Bucket, self, size, pool,
			opts.HeartbeatInterval, opts.FailoverAfter, member.ApplyMap)
		cfg.OnJoin = n.coord.onJoin
		cfg.OnHeartbeat = n.coord.heartbeat
	}

	n.srv = Serve(ln, cfg)
	if opts.Join == "" {
		n.coord.start()
		// A solo "cluster" forms immediately.
		n.coord.maybeMint()
	} else {
		go member.joinLoop(opts.Join, opts.HeartbeatInterval)
	}
	return n, nil
}

// KVAddr is the address peers and clients dial.
func (n *ClusterNode) KVAddr() string { return n.self }

// Router is the process's hybrid smart-client router: loopback to the
// local node, sockets to peers. The REST layer serves documents
// through a client built on it.
func (n *ClusterNode) Router() *NetRouter { return n.router }

// Close stops serving and tears down member state.
func (n *ClusterNode) Close() {
	if n.coord != nil {
		n.coord.stop()
	}
	n.member.close()
	n.srv.Close()
	n.pool.Close()
}

// advertiseAddr rewrites a bound listen address into one peers can
// dial.
func advertiseAddr(a net.Addr) string {
	ta, ok := a.(*net.TCPAddr)
	if !ok {
		return a.String()
	}
	ip := ta.IP
	if ip == nil || ip.IsUnspecified() {
		return net.JoinHostPort("127.0.0.1", strconv.Itoa(ta.Port))
	}
	return net.JoinHostPort(ip.String(), strconv.Itoa(ta.Port))
}

// ---------------------------------------------------------------------------
// Coordinator

type coordinator struct {
	cluster   *core.Cluster
	bucket    string
	self      string
	size      int
	pool      *Pool
	interval  time.Duration
	failAfter time.Duration
	apply     func(*cmap.Map) error
	wd        *health.Watchdog

	// closed fires on stop(): in-flight push retry loops bail instead
	// of sleeping out their remaining attempts against a dead cluster.
	closed   chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	members map[string]time.Time
	m       *cmap.Map
	failed  map[string]bool
}

func newCoordinator(cluster *core.Cluster, bucket, self string, size int, pool *Pool,
	interval, failAfter time.Duration, apply func(*cmap.Map) error) *coordinator {
	co := &coordinator{
		cluster:   cluster,
		bucket:    bucket,
		self:      self,
		size:      size,
		pool:      pool,
		interval:  interval,
		failAfter: failAfter,
		apply:     apply,
		closed:    make(chan struct{}),
		members:   map[string]time.Time{self: time.Now()},
		failed:    map[string]bool{},
	}
	co.wd = health.New(health.Options{Interval: interval, Node: self})
	co.wd.OnTransition(co.onHealthTransition)
	co.registerCheck(self)
	return co
}

func (co *coordinator) start() { co.wd.Start() }

func (co *coordinator) stop() {
	co.wd.Stop()
	co.stopOnce.Do(func() { close(co.closed) })
}

// onJoin admits a member and returns the current map (nil until the
// cluster has formed).
func (co *coordinator) onJoin(addr string) (*cmap.Map, error) {
	co.mu.Lock()
	_, known := co.members[addr]
	co.members[addr] = time.Now()
	minted := co.m
	co.mu.Unlock()

	if !known {
		e := events.New(events.Topology, events.SevInfo, "member joined cluster")
		e.Node, e.Bucket = co.self, co.bucket
		e.Fields = map[string]string{"member": addr}
		events.Default.Publish(e)
		co.registerCheck(addr)
		if minted != nil {
			// Late joiner after formation: admitted as a heartbeating
			// member but not rebalanced in (documented limitation).
			return minted, nil
		}
		co.maybeMint()
		co.mu.Lock()
		minted = co.m
		co.mu.Unlock()
	}
	return minted, nil
}

func (co *coordinator) heartbeat(addr string) {
	co.mu.Lock()
	co.members[addr] = time.Now()
	co.mu.Unlock()
}

// maybeMint builds and broadcasts the process-level map once the
// expected member count is reached.
func (co *coordinator) maybeMint() {
	local, err := co.cluster.BucketMap(co.bucket)
	if err != nil {
		return
	}
	// The local bootstrap map clamps NumReplicas to its single node;
	// mint with the bucket's configured count (BuildBalanced re-clamps
	// to the real member count).
	replicas, err := co.cluster.BucketReplicas(co.bucket)
	if err != nil {
		replicas = local.NumReplicas
	}
	co.mu.Lock()
	if co.m != nil || len(co.members) < co.size {
		co.mu.Unlock()
		return
	}
	nodes := make([]cmap.NodeID, 0, len(co.members))
	for addr := range co.members {
		nodes = append(nodes, cmap.NodeID(addr))
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	// Rev starts above every process's local bootstrap map so the
	// pushed map always wins member-side staleness checks.
	m := cmap.BuildBalanced(local.Rev+1, nodes, local.NumVBuckets, replicas)
	co.m = m
	co.mu.Unlock()

	e := events.New(events.Topology, events.SevInfo, "cluster map minted")
	e.Node, e.Bucket = co.self, co.bucket
	e.Fields = map[string]string{
		"rev":   strconv.FormatInt(m.Rev, 10),
		"nodes": strconv.Itoa(len(nodes)),
	}
	events.Default.Publish(e)
	co.broadcast(m)
}

// broadcast pushes a map to every member (self by function call,
// peers over the wire with retries).
func (co *coordinator) broadcast(m *cmap.Map) {
	value, err := json.Marshal(m)
	if err != nil {
		return
	}
	if err := co.apply(m); err != nil {
		e := events.New(events.Topology, events.SevWarn, "local map apply failed")
		e.Node, e.Bucket = co.self, co.bucket
		e.Fields = map[string]string{"error": err.Error()}
		events.Default.Publish(e)
	}
	co.mu.Lock()
	peers := make([]string, 0, len(co.members))
	for addr := range co.members {
		if addr != co.self && !co.failed[addr] {
			peers = append(peers, addr)
		}
	}
	co.mu.Unlock()
	for _, addr := range peers {
		go co.pushMap(addr, value)
	}
}

func (co *coordinator) pushMap(addr string, value []byte) {
	for attempt := 0; attempt < 5; attempt++ {
		conn, err := co.pool.Get(addr)
		if err == nil {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			resp, rerr := conn.Roundtrip(ctx, &memcproto.Frame{
				Magic:  memcproto.MagicReq,
				Opcode: memcproto.OpSetClusterMap,
				Key:    []byte(co.bucket),
				Value:  value,
			})
			cancel()
			if rerr == nil && resp.Status == memcproto.StatusOK {
				return
			}
		}
		if !sleepOr(co.interval, co.closed, nil) {
			return
		}
	}
	e := events.New(events.Topology, events.SevWarn, "cluster map push failed")
	e.Node, e.Bucket = co.self, co.bucket
	e.Fields = map[string]string{"member": addr}
	events.Default.Publish(e)
}

// registerCheck adds a member-liveness check to the watchdog: silence
// past FailoverAfter goes critical, and the watchdog's RaiseAfter
// hysteresis means a member must be held critical for consecutive
// ticks before the transition fires the auto-failover.
func (co *coordinator) registerCheck(addr string) {
	if addr == co.self {
		return
	}
	co.wd.Register("member:"+addr, func() (health.State, string) {
		co.mu.Lock()
		last, ok := co.members[addr]
		failed := co.failed[addr]
		co.mu.Unlock()
		if failed {
			return health.Critical, "failed over"
		}
		if !ok {
			return health.OK, "not yet joined"
		}
		age := time.Since(last)
		switch {
		case age > co.failAfter:
			return health.Critical, fmt.Sprintf("no heartbeat for %v", age.Round(time.Millisecond))
		case age > co.failAfter/2:
			return health.Warn, fmt.Sprintf("heartbeat lagging (%v)", age.Round(time.Millisecond))
		}
		return health.OK, "heartbeating"
	})
}

// onHealthTransition is the auto-failover trigger: a member check
// raising to critical fails the member over and re-broadcasts the
// map.
func (co *coordinator) onHealthTransition(st health.CheckStatus) {
	if st.State != health.Critical || !strings.HasPrefix(st.Name, "member:") {
		return
	}
	co.failover(strings.TrimPrefix(st.Name, "member:"))
}

func (co *coordinator) failover(addr string) {
	co.mu.Lock()
	if co.m == nil || co.failed[addr] {
		co.mu.Unlock()
		return
	}
	in := false
	for _, n := range co.m.Nodes {
		if string(n) == addr {
			in = true
			break
		}
	}
	if !in {
		co.mu.Unlock()
		return
	}
	co.failed[addr] = true
	m := co.m.FailoverNode(cmap.NodeID(addr))
	co.m = m
	co.mu.Unlock()

	co.pool.Drop(addr)
	e := events.New(events.Topology, events.SevWarn, "auto-failover: member failed over")
	e.Node, e.Bucket = co.self, co.bucket
	e.Fields = map[string]string{
		"member": addr,
		"rev":    strconv.FormatInt(m.Rev, 10),
	}
	events.Default.Publish(e)
	co.broadcast(m)
}

// currentMap is the minted process map, nil before formation.
func (co *coordinator) currentMap() *cmap.Map {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.m
}

// ---------------------------------------------------------------------------
// Member

// replLink is one inbound socket-backed replica stream.
type replLink struct {
	src  string
	stop chan struct{}
	once sync.Once
	done chan struct{}
}

func (l *replLink) halt() { l.once.Do(func() { close(l.stop) }) }

// alive reports whether the link's replica goroutine is still running
// (non-blocking probe).
func (l *replLink) alive() bool {
	select {
	case <-l.done:
		return false
	default:
		return true
	}
}

// Member reconciles the local node against coordinator-pushed maps:
// promote/demote/drop each vBucket through the core admin hooks and
// wire socket-backed replica streams between processes.
type Member struct {
	cluster   *core.Cluster
	localNode cmap.NodeID
	bucket    string
	self      string
	pool      *Pool
	router    *NetRouter

	applyMu sync.Mutex // serializes reconciles

	mu        sync.Mutex
	cur       *cmap.Map
	links     map[int]*replLink
	closed    chan struct{}
	closeOnce sync.Once
}

// CurrentMap is the last applied process map (nil before formation).
func (mb *Member) CurrentMap() *cmap.Map {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.cur
}

func (mb *Member) rev() int64 {
	if m := mb.CurrentMap(); m != nil {
		return m.Rev
	}
	return 0
}

func (mb *Member) close() {
	mb.closeOnce.Do(func() { close(mb.closed) })
	mb.mu.Lock()
	links := mb.links
	mb.links = map[int]*replLink{}
	mb.mu.Unlock()
	for _, l := range links {
		l.halt()
	}
}

// ApplyMap reconciles the local node against a pushed process map.
func (mb *Member) ApplyMap(m *cmap.Map) error {
	mb.applyMu.Lock()
	defer mb.applyMu.Unlock()

	mb.mu.Lock()
	if mb.cur != nil && m.Rev <= mb.cur.Rev {
		mb.mu.Unlock()
		return nil
	}
	mb.cur = m
	mb.mu.Unlock()

	// The local bucket map becomes the process map: REST/stats and the
	// epoch on every response now reflect cluster-level topology.
	if err := mb.cluster.SetBucketMap(mb.bucket, m); err != nil { //couchvet:ignore lockblock -- applyMu reconcile serializer; core never calls back into transport
		return err
	}
	mb.router.InstallMap(m)

	selfID := cmap.NodeID(mb.self)
	var firstErr error
	for vb := 0; vb < m.NumVBuckets; vb++ {
		active := m.Active(vb)
		replicas := m.Replicas(vb)
		var err error
		switch {
		case active == selfID:
			err = mb.ensureActive(vb, replicas)
		case containsNode(replicas, selfID):
			err = mb.ensureReplica(vb, string(active))
		case active != "":
			mb.stopLink(vb)
			err = mb.cluster.DropVB(mb.localNode, mb.bucket, vb) //couchvet:ignore lockblock -- applyMu reconcile serializer; core never calls back into transport
		default:
			// Partition lost cluster-wide; keep whatever copy we hold.
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	e := events.New(events.Topology, events.SevInfo, "applied cluster map")
	e.Node, e.Bucket = mb.self, mb.bucket
	e.Fields = map[string]string{"rev": strconv.FormatInt(m.Rev, 10)}
	events.Default.Publish(e)
	return firstErr
}

// ensureActive makes vb active locally. Re-applying an unchanged map
// must not re-attach consumers, so an already-active copy only has
// its durability ack set refreshed.
func (mb *Member) ensureActive(vb int, replicas []cmap.NodeID) error {
	mb.stopLink(vb)
	names := make([]string, 0, len(replicas))
	for _, r := range replicas {
		if r != "" {
			names = append(names, string(r))
		}
	}
	cvb, err := mb.cluster.NodeVB(mb.localNode, mb.bucket, vb)
	if err != nil {
		return err
	}
	if cvb != nil && cvb.State() == vbucket.Active {
		cvb.SetReplicaSet(names)
		return nil
	}
	_, err = mb.cluster.EnsureActiveVB(mb.localNode, mb.bucket, vb, names)
	return err
}

// ensureReplica makes vb a replica locally, fed from the active's
// process over a dedicated DCP connection.
func (mb *Member) ensureReplica(vb int, srcAddr string) error {
	if _, err := mb.cluster.EnsureReplicaVB(mb.localNode, mb.bucket, vb); err != nil {
		return err
	}
	mb.mu.Lock()
	if l := mb.links[vb]; l != nil {
		if l.src == srcAddr && l.alive() {
			mb.mu.Unlock()
			return nil
		}
		l.halt()
	}
	l := &replLink{src: srcAddr, stop: make(chan struct{}), done: make(chan struct{})}
	mb.links[vb] = l
	mb.mu.Unlock()

	// Promotion and drop tear the stream down exactly like the
	// in-process path: through the vBucket's registered stop hook.
	if err := mb.cluster.SetVBReplStream(mb.localNode, mb.bucket, vb, l.halt); err != nil {
		l.halt()
		return err
	}
	go mb.runReplica(vb, srcAddr, l)
	return nil
}

func (mb *Member) stopLink(vb int) {
	mb.mu.Lock()
	l := mb.links[vb]
	delete(mb.links, vb)
	mb.mu.Unlock()
	if l != nil {
		l.halt()
	}
}

// runReplica keeps one replica stream alive: adopt the active's
// failover log, resume at the local high seqno, apply and ack each
// mutation, and reconnect (with backoff) until stopped or the local
// copy stops being a replica.
func (mb *Member) runReplica(vb int, src string, l *replLink) {
	defer close(l.done)
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-l.stop:
			return
		case <-mb.closed:
			return
		default:
		}
		cvb, err := mb.cluster.NodeVB(mb.localNode, mb.bucket, vb)
		if err != nil || cvb == nil || cvb.State() != vbucket.Replica {
			return
		}
		rs, err := mb.openReplicaStream(cvb, vb, src)
		if err != nil {
			if !sleepOr(backoff, l.stop, mb.closed) {
				return
			}
			backoff = min(backoff*2, time.Second)
			continue
		}
		backoff = 50 * time.Millisecond
		mb.drainReplicaStream(cvb, rs, l)
	}
}

// openReplicaStream performs the resume handshake, handling one
// rollback bounce by rewinding to the producer's divergence point.
func (mb *Member) openReplicaStream(cvb *vbucket.VBucket, vb int, src string) (*RemoteStream, error) {
	rp := NewRemoteProducer(src, vb)
	flog, _, err := rp.failoverLog()
	if err != nil {
		return nil, err
	}
	if len(flog) > 0 {
		cvb.Producer().SetFailoverLog(flog)
	}
	var uuid uint64
	if len(flog) > 0 {
		uuid = flog[len(flog)-1].UUID
	}
	from := cvb.HighSeqno()
	name := "replica:" + mb.self
	ms, err := rp.ResumeStream(name, uuid, from)
	var rb *dcp.RollbackError
	if errors.As(err, &rb) {
		e := events.New(events.FeedEvent, events.SevWarn, "replica stream rollback")
		e.Node, e.Bucket, e.VB = mb.self, mb.bucket, vb
		e.Fields = map[string]string{
			"rollback_to": strconv.FormatUint(rb.Seqno, 10),
			"uuid":        strconv.FormatUint(rb.UUID, 10),
			"from_seqno":  strconv.FormatUint(from, 10),
		}
		events.Default.Publish(e)
		ms, err = rp.ResumeStream(name, rb.UUID, rb.Seqno)
	}
	if err != nil {
		return nil, err
	}
	rs, ok := ms.(*RemoteStream)
	if !ok {
		ms.Close()
		return nil, fmt.Errorf("transport: unexpected stream type")
	}
	return rs, nil
}

func (mb *Member) drainReplicaStream(cvb *vbucket.VBucket, rs *RemoteStream, l *replLink) {
	defer rs.Close()
	for {
		select {
		case m, ok := <-rs.C():
			if !ok {
				return
			}
			cvb.ApplyReplica(m)
			high := m.Seqno
			// Apply everything already delivered before acking:
			// AckReplica is a high-watermark, so one ack frame covers
			// the whole run. Under load this collapses per-mutation
			// ack traffic (frame encode + two socket crossings +
			// producer-side bookkeeping) into one per burst; durability
			// waiters see the same watermark, just in one hop.
		buffered:
			for {
				select {
				case m2, ok := <-rs.C():
					if !ok {
						rs.Ack(high)
						return
					}
					cvb.ApplyReplica(m2)
					high = m2.Seqno
				default:
					break buffered
				}
			}
			rs.Ack(high)
		case <-l.stop:
			return
		case <-mb.closed:
			return
		}
	}
}

// joinLoop joins the seed until admitted with a map, then heartbeats,
// refetching the map whenever the seed's epoch outruns ours.
func (mb *Member) joinLoop(seed string, interval time.Duration) {
	for {
		select {
		case <-mb.closed:
			return
		default:
		}
		m, err := mb.exchange(seed, memcproto.OpJoin)
		if err == nil && m != nil {
			mb.ApplyMap(m)
			break
		}
		if !sleepOr(interval, mb.closed, nil) {
			return
		}
	}
	for {
		if !sleepOr(interval, mb.closed, nil) {
			return
		}
		m, err := mb.exchange(seed, memcproto.OpHeartbeat)
		if err == nil && m != nil {
			mb.ApplyMap(m)
		}
	}
}

// exchange sends one join/heartbeat and returns a newer map when the
// seed has one.
func (mb *Member) exchange(seed string, opcode memcproto.Opcode) (*cmap.Map, error) {
	conn, err := mb.pool.Get(seed)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	resp, err := conn.Roundtrip(ctx, &memcproto.Frame{
		Magic:  memcproto.MagicReq,
		Opcode: opcode,
		Key:    []byte(mb.self),
	})
	if err != nil {
		return nil, err
	}
	if resp.Status != memcproto.StatusOK {
		return nil, errOf(resp.Status, resp.Value)
	}
	if opcode == memcproto.OpJoin && len(resp.Value) > 0 {
		return decodeMap(resp.Value)
	}
	// Heartbeat replies carry only the epoch; refetch on a newer one.
	if epoch, ok := memcproto.Epoch(resp.Extras); ok && epoch > mb.rev() {
		return fetchMap(mb.pool, seed, mb.bucket)
	}
	return nil, nil
}

func containsNode(ids []cmap.NodeID, id cmap.NodeID) bool {
	for _, n := range ids {
		if n == id {
			return true
		}
	}
	return false
}

// sleepOr sleeps d unless one of the stop channels fires first;
// returns false when stopped.
func sleepOr(d time.Duration, stop1, stop2 chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	if stop2 == nil {
		select {
		case <-t.C:
			return true
		case <-stop1:
			return false
		}
	}
	select {
	case <-t.C:
		return true
	case <-stop1:
		return false
	case <-stop2:
		return false
	}
}
