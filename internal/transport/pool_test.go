package transport

import (
	"errors"
	"testing"
	"time"

	"couchgo/internal/core"
)

// TestReconnectBackoffBounds checks the fail-fast window math: always
// positive, never above the cap plus its 50% jitter headroom, and
// growing (in expectation) until the cap takes over.
func TestReconnectBackoffBounds(t *testing.T) {
	const maxWithJitter = reconnectMaxBackoff + reconnectMaxBackoff/2
	for failures := 1; failures <= 20; failures++ {
		for i := 0; i < 200; i++ {
			d := reconnectBackoff(failures)
			if d <= 0 {
				t.Fatalf("failures=%d: non-positive backoff %v", failures, d)
			}
			if d > maxWithJitter {
				t.Fatalf("failures=%d: backoff %v exceeds cap %v (+50%% jitter)", failures, d, maxWithJitter)
			}
		}
	}
	// The pre-cap exponential must stay under its nominal bound too:
	// 2^min(n,10) ms, +50% jitter.
	for i := 0; i < 200; i++ {
		if d := reconnectBackoff(3); d > 12*time.Millisecond {
			t.Fatalf("failures=3: backoff %v exceeds 8ms +50%% jitter", d)
		}
	}
}

// TestPoolGetFailFast asserts Get never sleeps a backoff out: a Get
// inside the reconnect window returns ErrNodeUnreachable immediately
// instead of parking the caller until the window expires.
func TestPoolGetFailFast(t *testing.T) {
	p := NewPool()
	defer p.Close()
	// A port from the dynamic range with no listener: connect is
	// refused immediately, so the first Get fails fast and opens the
	// backoff window.
	addr := "127.0.0.1:59999"
	if _, err := p.Get(addr); err == nil {
		t.Skip("unexpected listener on test port")
	}
	start := time.Now()
	_, err := p.Get(addr)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("second Get inside backoff window succeeded")
	}
	if !errors.Is(err, core.ErrNodeUnreachable) {
		t.Fatalf("want ErrNodeUnreachable, got %v", err)
	}
	// Generous bound: immediate return, not a slept-out backoff (the
	// window after one failure is ~2ms nominal but the assertion is
	// about sleeping at all, not the exact window).
	if elapsed > 100*time.Millisecond {
		t.Fatalf("Get slept %v inside backoff window; want immediate error", elapsed)
	}
}

// TestCoordinatorStopUnblocksPush asserts the push retry loop's
// inter-attempt sleep is cancellable: stopping the coordinator fires
// its closed channel, and sleepOr returns false instead of running
// the interval out.
func TestCoordinatorStopUnblocksPush(t *testing.T) {
	co := newCoordinator(nil, "b", "self", 1, NewPool(), time.Hour, time.Hour, nil)
	done := make(chan bool, 1)
	go func() {
		done <- sleepOr(co.interval, co.closed, nil)
	}()
	co.stop()
	select {
	case slept := <-done:
		if slept {
			t.Fatal("sleepOr ran the full interval despite stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sleepOr did not observe coordinator stop")
	}
	// stop is idempotent.
	co.stop()
}
