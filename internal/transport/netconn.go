package transport

import (
	"context"
	"encoding/json"

	"couchgo/internal/cache"
	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/memcproto"
)

// mapSink is what a netConn tells about cluster-map intelligence it
// picks up on the wire: the epoch stamped on every response, and the
// fat map riding a not-my-vbucket bounce. The NetRouter implements it;
// a nil sink (bare conn, tests) just drops the signal.
type mapSink interface {
	observeEpoch(epoch int64)
	installMap(m *cmap.Map)
}

// netConn implements core.NodeConn by encoding each call as one
// memcproto request frame on the node's pooled multiplexed conn. It
// is stateless (addr + pool + sink), so routers mint them freely.
type netConn struct {
	addr string
	pool *Pool
	sink mapSink
}

var _ core.NodeConn = netConn{}

// NewNodeConn returns a core.NodeConn speaking the wire protocol to
// addr. sink may be nil.
func NewNodeConn(addr string, pool *Pool, sink mapSink) core.NodeConn {
	return netConn{addr: addr, pool: pool, sink: sink}
}

// baseExtras starts a KV request's extras with the client's
// unix-seconds clock, so expiry semantics follow the client's
// (injectable) time source on both transports.
func baseExtras(now int64) []byte {
	return memcproto.AppendUint64(nil, uint64(now))
}

// call performs one request/response exchange, handling the epoch
// stamp and fat not-my-vbucket map on every response.
func (nc netConn) call(ctx context.Context, opcode memcproto.Opcode, vbID int, key string, extras, value []byte, cas uint64) (*memcproto.Frame, error) {
	conn, err := nc.pool.Get(nc.addr)
	if err != nil {
		return nil, err
	}
	extras, datatype := injectTraceCtx(extras, ctx)
	req := &memcproto.Frame{
		Magic:    memcproto.MagicReq,
		Opcode:   opcode,
		Datatype: datatype,
		VBucket:  uint16(vbID),
		CAS:      cas,
		Extras:   extras,
		Key:      []byte(key),
		Value:    value,
	}
	resp, err := conn.Roundtrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if nc.sink != nil {
		if epoch, ok := memcproto.Epoch(resp.Extras); ok {
			nc.sink.observeEpoch(epoch)
		}
	}
	if resp.Status == memcproto.StatusOK {
		return resp, nil
	}
	if resp.Status == memcproto.StatusNotMyVBucket {
		mNotMyVB.Inc()
		// Attribute the bounce to the originating op, so per-op retry
		// rates are visible next to that op's latency series.
		nmvbCounter(opcode.String()).Inc()
		// Fat response: the server's current map rides the value, so
		// the router refreshes without a second round trip.
		if nc.sink != nil && len(resp.Value) > 0 {
			if m, err := decodeMap(resp.Value); err == nil {
				nc.sink.installMap(m)
			}
		}
		return nil, errOf(resp.Status, nil)
	}
	return nil, errOf(resp.Status, resp.Value)
}

// itemCall is a call whose OK response carries an item.
func (nc netConn) itemCall(ctx context.Context, opcode memcproto.Opcode, vbID int, key string, extras, value []byte, cas uint64) (cache.Item, error) {
	resp, err := nc.call(ctx, opcode, vbID, key, extras, value, cas)
	if err != nil {
		return cache.Item{}, err
	}
	return itemFromFrame(key, resp)
}

func mutateExtras(now int64, flags uint32, expiry int64, dur core.DurabilityOptions) []byte {
	me := memcproto.MutateExtras{
		Flags:       flags,
		Expiry:      expiry,
		ReplicateTo: uint8(max(dur.ReplicateTo, 0)),
		Persist:     dur.PersistTo,
	}
	if dur.Timeout > 0 {
		me.TimeoutMillis = uint32(dur.Timeout.Milliseconds())
	}
	return append(baseExtras(now), me.Encode()...)
}

func (nc netConn) Get(ctx context.Context, vbID int, key string, now int64) (cache.Item, error) {
	return nc.itemCall(ctx, memcproto.OpGet, vbID, key, baseExtras(now), nil, 0)
}

func (nc netConn) Set(ctx context.Context, vbID int, key string, value []byte, flags uint32, expiry int64, casCheck uint64, now int64, dur core.DurabilityOptions) (cache.Item, error) {
	return nc.itemCall(ctx, memcproto.OpSet, vbID, key, mutateExtras(now, flags, expiry, dur), value, casCheck)
}

func (nc netConn) Add(ctx context.Context, vbID int, key string, value []byte, now int64) (cache.Item, error) {
	return nc.itemCall(ctx, memcproto.OpAdd, vbID, key, mutateExtras(now, 0, 0, core.DurabilityOptions{}), value, 0)
}

func (nc netConn) Replace(ctx context.Context, vbID int, key string, value []byte, casCheck uint64, now int64) (cache.Item, error) {
	return nc.itemCall(ctx, memcproto.OpReplace, vbID, key, mutateExtras(now, 0, 0, core.DurabilityOptions{}), value, casCheck)
}

func (nc netConn) Delete(ctx context.Context, vbID int, key string, casCheck uint64, now int64, dur core.DurabilityOptions) (cache.Item, error) {
	return nc.itemCall(ctx, memcproto.OpDelete, vbID, key, mutateExtras(now, 0, 0, dur), nil, casCheck)
}

func (nc netConn) Touch(ctx context.Context, vbID int, key string, expiry, now int64) error {
	extras := memcproto.AppendUint64(baseExtras(now), uint64(expiry))
	_, err := nc.call(ctx, memcproto.OpTouch, vbID, key, extras, nil, 0)
	return err
}

func (nc netConn) GetAndLock(ctx context.Context, vbID int, key string, lockSeconds, now int64) (cache.Item, error) {
	extras := memcproto.AppendUint64(baseExtras(now), uint64(lockSeconds))
	return nc.itemCall(ctx, memcproto.OpGetAndLock, vbID, key, extras, nil, 0)
}

func (nc netConn) Unlock(ctx context.Context, vbID int, key string, casToken uint64, now int64) error {
	_, err := nc.call(ctx, memcproto.OpUnlock, vbID, key, baseExtras(now), nil, casToken)
	return err
}

func (nc netConn) Append(ctx context.Context, vbID int, key string, data []byte, casCheck uint64, now int64) (cache.Item, error) {
	return nc.itemCall(ctx, memcproto.OpAppendVal, vbID, key, baseExtras(now), data, casCheck)
}

func (nc netConn) Prepend(ctx context.Context, vbID int, key string, data []byte, casCheck uint64, now int64) (cache.Item, error) {
	return nc.itemCall(ctx, memcproto.OpPrependVal, vbID, key, baseExtras(now), data, casCheck)
}

// subdocExtras lays out now(8) ‖ pathlen(2) [‖ delta(8)]; the value is
// path ‖ payload per memcproto.SubdocBody.
func subdocExtras(now int64, path string) ([]byte, []byte) {
	se, value := memcproto.SubdocBody(path, nil)
	return append(baseExtras(now), se...), value
}

func (nc netConn) SubdocGet(ctx context.Context, vbID int, key, path string, now int64) (any, error) {
	extras, value := subdocExtras(now, path)
	resp, err := nc.call(ctx, memcproto.OpSubdocGet, vbID, key, extras, value, 0)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(resp.Value, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func (nc netConn) subdocMutate(ctx context.Context, opcode memcproto.Opcode, vbID int, key, path string, v any, casCheck uint64, now int64) (cache.Item, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return cache.Item{}, err
	}
	se, value := memcproto.SubdocBody(path, payload)
	extras := append(baseExtras(now), se...)
	return nc.itemCall(ctx, opcode, vbID, key, extras, value, casCheck)
}

func (nc netConn) SubdocSet(ctx context.Context, vbID int, key, path string, v any, casCheck uint64, now int64) (cache.Item, error) {
	return nc.subdocMutate(ctx, memcproto.OpSubdocSet, vbID, key, path, v, casCheck, now)
}

func (nc netConn) SubdocRemove(ctx context.Context, vbID int, key, path string, casCheck uint64, now int64) (cache.Item, error) {
	extras, value := subdocExtras(now, path)
	return nc.itemCall(ctx, memcproto.OpSubdocRemove, vbID, key, extras, value, casCheck)
}

func (nc netConn) SubdocArrayAppend(ctx context.Context, vbID int, key, path string, v any, casCheck uint64, now int64) (cache.Item, error) {
	return nc.subdocMutate(ctx, memcproto.OpSubdocArrAdd, vbID, key, path, v, casCheck, now)
}

func (nc netConn) SubdocCounter(ctx context.Context, vbID int, key, path string, delta float64, casCheck uint64, now int64) (float64, error) {
	se, value := memcproto.SubdocBody(path, nil)
	extras := memcproto.AppendFloat64(append(baseExtras(now), se...), delta)
	resp, err := nc.call(ctx, memcproto.OpSubdocCounter, vbID, key, extras, value, casCheck)
	if err != nil {
		return 0, err
	}
	var v float64
	if err := json.Unmarshal(resp.Value, &v); err != nil {
		return 0, err
	}
	return v, nil
}

func (nc netConn) GetMeta(ctx context.Context, vbID int, key string) (cache.Item, error) {
	return nc.itemCall(ctx, memcproto.OpGetMeta, vbID, key, baseExtras(0), nil, 0)
}

func (nc netConn) XDCRApply(ctx context.Context, vbID int, key string, value []byte, deleted bool, cas, revSeqno uint64, flags uint32, expiry int64) (bool, error) {
	xe := memcproto.XDCRExtras{RevSeqno: revSeqno, Flags: flags, Expiry: expiry, Deleted: deleted}
	resp, err := nc.call(ctx, memcproto.OpXDCRSet, vbID, key, xe.Encode(), value, cas)
	if err != nil {
		return false, err
	}
	return len(resp.Value) == 1 && resp.Value[0] == 1, nil
}
