package transport

import (
	"net"
	"runtime"
	"sync"

	"couchgo/internal/metrics"

	"couchgo/internal/memcproto"
)

// mFramesPerSyscall records how many wire frames each socket write
// carried. Under pipelined load the writer loops drain their queues
// into one syscall; this histogram is the proof (DESIGN.md §10).
var mFramesPerSyscall = metrics.Default.ValueHistogram("couchgo_transport_frames_per_syscall")

// maxCoalesceBytes bounds how much a writer loop flattens into one
// write. Past this the batch is flushed and draining resumes; it keeps
// the scratch buffer (and the far side's burst size) bounded when a
// DCP backfill queues hundreds of large frames.
const maxCoalesceBytes = 256 << 10

// maxPooledBufBytes caps what encode buffers the pool retains; a
// one-off giant frame (DCP backfill value) is left for the GC instead
// of pinning its capacity forever.
const maxPooledBufBytes = 64 << 10

// wireBufs recycles encode buffers between the enqueuing goroutines
// and the writer loops: encodeFrame draws one, the frame rides writeCh
// inside it, and writeCoalesced returns it once the bytes are on the
// socket (or copied into the batch scratch). On the request/response
// hot path this removes a per-frame allocation of full payload size on
// both sides of every connection. Pooled as *[]byte so Get/Put don't
// box a slice header per frame.
var wireBufs = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// encodeFrame encodes f into a pooled buffer. Ownership of the buffer
// transfers with it: whoever consumes it must recycleBuf it.
func encodeFrame(f *memcproto.Frame) (*[]byte, error) {
	pb := wireBufs.Get().(*[]byte)
	b, err := f.Append((*pb)[:0])
	if err != nil {
		wireBufs.Put(pb)
		return nil, err
	}
	*pb = b
	return pb, nil
}

// recycleBuf returns an encode buffer to the pool.
func recycleBuf(pb *[]byte) {
	if cap(*pb) > maxPooledBufBytes {
		return
	}
	wireBufs.Put(pb)
}

// writeCoalesced is the shared writer loop body: the only goroutine
// writing nc. After receiving one frame it opportunistically drains
// every frame already queued on writeCh and writes them all with a
// single syscall. Frames are flattened into one scratch buffer rather
// than handed to net.Buffers: the conns here are wrapped in
// countingConn, which hides the writev fast path and would degrade
// net.Buffers into one syscall per element.
//
// Returns nil when closed fires, or the first write error.
func writeCoalesced(nc net.Conn, writeCh <-chan *[]byte, closed <-chan struct{}) error {
	var scratch []byte
	for {
		select {
		case pb := <-writeCh:
			if len(writeCh) == 0 {
				// Nothing else queued yet — but under concurrent load
				// more producers are usually mid-enqueue. One scheduler
				// yield lets them land so their frames share this
				// syscall; if the queue is still empty afterwards the
				// connection is genuinely idle and the frame goes out
				// alone, no copy.
				runtime.Gosched()
				if len(writeCh) == 0 {
					_, err := nc.Write(*pb)
					recycleBuf(pb)
					if err != nil {
						return err
					}
					mFramesPerSyscall.ObserveValue(1)
					continue
				}
			}
			scratch = append(scratch[:0], *pb...)
			recycleBuf(pb)
			frames := uint64(1)
		drain:
			for len(scratch) < maxCoalesceBytes {
				select {
				case more := <-writeCh:
					scratch = append(scratch, *more...)
					recycleBuf(more)
					frames++
				default:
					break drain
				}
			}
			if _, err := nc.Write(scratch); err != nil {
				return err
			}
			mFramesPerSyscall.ObserveValue(frames)
			if cap(scratch) > 4*maxCoalesceBytes {
				scratch = nil // don't pin a giant buffer after a burst
			}
		case <-closed:
			return nil
		}
	}
}
